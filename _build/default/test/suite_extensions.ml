(* Tests for the extensions beyond the paper's prototype: the LU workload,
   the symbol table, home-based LRC's version gating, and wire
   fragmentation. *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* LU                                                                  *)

let test_lu_race_free_all_protocols () =
  List.iter
    (fun protocol ->
      let cfg = { Testutil.detect_cfg with protocol } in
      let app = Apps.Registry.make ~scale:Apps.Registry.Small "lu" in
      let outcome = Core.Driver.run ~cfg ~app ~nprocs:4 () in
      check Testutil.addr_list "lu race-free" [] (Core.Driver.racy_addrs outcome);
      let oracle =
        Racedetect.Oracle.racy_addrs ~nprocs:4 outcome.Core.Driver.trace
      in
      check Testutil.addr_list "oracle agrees" [] oracle)
    [ Lrc.Config.Single_writer; Lrc.Config.Multi_writer; Lrc.Config.Home_based ]

let test_lu_reference_is_lu () =
  (* multiplying the factors back together recovers the input *)
  let n = 8 in
  let a = Apps.Lu.reference { Apps.Lu.n } in
  let recovered i j =
    let acc = ref 0.0 in
    for k = 0 to min i j do
      let l = if k = i then 1.0 else a.(i).(k) in
      let u = if k <= j then a.(k).(j) else 0.0 in
      if k < i || k <= j then acc := !acc +. (l *. u)
    done;
    !acc
  in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let want = Apps.Lu.input n i j in
      if Float.abs (recovered i j -. want) > 1e-9 *. (1.0 +. Float.abs want) then
        Alcotest.fail (Printf.sprintf "L*U mismatch at (%d,%d)" i j)
    done
  done

(* ------------------------------------------------------------------ *)
(* Symbol table                                                        *)

let test_symtab_resolution () =
  let symtab = Mem.Symtab.create () in
  Mem.Symtab.register symtab ~name:"counter" ~base:1000 ~bytes:8;
  Mem.Symtab.register symtab ~name:"grid" ~base:2000 ~bytes:800;
  check Alcotest.string "exact" "counter" (Mem.Symtab.name_of symtab 1000);
  check Alcotest.string "indexed" "grid[3]" (Mem.Symtab.name_of symtab 2024);
  check Alcotest.string "unknown" "0x00000bb8" (Mem.Symtab.name_of symtab 3000);
  check Alcotest.string "offset in scalar" "counter+4" (Mem.Symtab.name_of symtab 1004)

let test_symtab_overlap_rejected () =
  let symtab = Mem.Symtab.create () in
  Mem.Symtab.register symtab ~name:"a" ~base:0 ~bytes:16;
  Alcotest.check_raises "overlap" (Invalid_argument "Symtab.register: b overlaps a")
    (fun () -> Mem.Symtab.register symtab ~name:"b" ~base:8 ~bytes:8)

let test_symbolic_race_reports () =
  let cluster = Lrc.Cluster.create ~cfg:Testutil.detect_cfg ~nprocs:2 ~pages:2 () in
  let x = Lrc.Cluster.alloc cluster 8 ~name:"shared_flag" in
  let body node =
    let open Lrc.Dsm in
    barrier node;
    if pid node = 0 then write_int node x 1;
    if pid node = 1 then ignore (read_int node x);
    barrier node
  in
  Lrc.Cluster.run cluster ~body;
  match Lrc.Cluster.races cluster with
  | [ race ] ->
      let rendered =
        Format.asprintf "%a"
          (Proto.Race.pp_named ~name_of:(Mem.Symtab.name_of (Lrc.Cluster.symtab cluster)))
          race
      in
      check Alcotest.bool "symbolic name in report" true
        (Testutil.contains rendered "shared_flag")
  | _ -> Alcotest.fail "expected one race"

(* ------------------------------------------------------------------ *)
(* Home-based LRC specifics                                            *)

let test_hb_fetch_waits_for_flush () =
  (* the home must not serve a fetch until the flush carrying the needed
     version has arrived — force the gap with a slow network *)
  let cost = { Sim.Cost.default with msg_latency_ns = 2_000_000 } in
  let cfg = { Lrc.Config.default with protocol = Lrc.Config.Home_based } in
  let cluster = Lrc.Cluster.create ~cost ~cfg ~nprocs:3 ~pages:4 () in
  let x = Lrc.Cluster.alloc cluster 8 in
  (* page 0's home is processor 0; the writer and reader are 1 and 2 *)
  let body node =
    let open Lrc.Dsm in
    barrier node;
    if pid node = 1 then with_lock node 7 (fun () -> write_int node x 42);
    if pid node = 2 then begin
      idle node 500_000.0;
      let v = with_lock node 7 (fun () -> read_int node x) in
      if v <> 42 then failwith (Printf.sprintf "hb stale read: %d" v)
    end;
    barrier node
  in
  Lrc.Cluster.run cluster ~body

let test_hb_paper_counters () =
  (* under HLRC all coherence data motion is flushes + home fetches *)
  let cfg = { Lrc.Config.default with protocol = Lrc.Config.Home_based; detect = false } in
  let app = Apps.Registry.make ~scale:Apps.Registry.Small "sor" in
  let outcome = Core.Driver.run ~cfg ~app ~nprocs:4 () in
  let stats = outcome.Core.Driver.stats in
  check Alcotest.bool "diffs flushed" true (stats.Sim.Stats.diffs_created > 0);
  check Alcotest.bool "home fetches happened" true (stats.Sim.Stats.pages_fetched > 0)

(* ------------------------------------------------------------------ *)
(* Fragmentation                                                       *)

let test_fragmentation_math () =
  let cost = { Sim.Cost.default with max_message_bytes = 1000; fragment_overhead_bytes = 10 } in
  check Alcotest.int "small payload" 1 (Sim.Cost.fragments cost ~bytes:999);
  check Alcotest.int "exact fit" 1 (Sim.Cost.fragments cost ~bytes:1000);
  check Alcotest.int "one over" 2 (Sim.Cost.fragments cost ~bytes:1001);
  check Alcotest.int "wire bytes include headers" (2501 + 20)
    (Sim.Cost.wire_bytes cost ~bytes:2501);
  check Alcotest.bool "fragmented message slower" true
    (Sim.Cost.message_ns cost ~bytes:2501 > Sim.Cost.message_ns cost ~bytes:999)

let test_fragments_counted () =
  (* a tiny MTU forces page fetches to fragment *)
  let cost = { Sim.Cost.default with max_message_bytes = 1024 } in
  let cluster = Lrc.Cluster.create ~cost ~nprocs:2 ~pages:2 () in
  let x = Lrc.Cluster.alloc cluster 8 in
  let body node =
    let open Lrc.Dsm in
    if pid node = 0 then write_int node x 5;
    barrier node;
    if pid node = 1 then ignore (read_int node x) (* 4 KB page fetch: 4+ fragments *);
    barrier node
  in
  Lrc.Cluster.run cluster ~body;
  let stats = Lrc.Cluster.stats cluster in
  check Alcotest.bool "more fragments than messages" true
    (stats.Sim.Stats.fragments > stats.Sim.Stats.messages)

(* ------------------------------------------------------------------ *)
(* Failure injection: delivery jitter must not break coherence or
   detection (per-link FIFO is preserved by the network layer)          *)

let test_jitter_coherence protocol () =
  List.iter
    (fun seed ->
      let cost = { Sim.Cost.default with jitter_ns = 400_000 } in
      let cfg = { Testutil.detect_cfg with protocol; seed } in
      let cluster = Lrc.Cluster.create ~cost ~cfg ~nprocs:4 ~pages:4 () in
      let counter = Lrc.Cluster.alloc cluster 8 in
      let racy = Lrc.Cluster.alloc cluster 8 in
      let body node =
        let open Lrc.Dsm in
        barrier node;
        for _ = 1 to 5 do
          with_lock node 3 (fun () ->
              let v = read_int node counter in
              compute node 20_000.0;
              write_int node counter (v + 1))
        done;
        if pid node = 0 then write_int node racy 1;
        if pid node = 3 then ignore (read_int node racy);
        barrier node;
        if pid node = 0 then begin
          let total = read_int node counter in
          if total <> 20 then failwith (Printf.sprintf "jitter lost updates: %d" total)
        end;
        barrier node
      in
      Lrc.Cluster.run cluster ~body;
      let detected = Testutil.racy_addrs_of cluster in
      let oracle = Racedetect.Oracle.racy_addrs ~nprocs:4 (Lrc.Cluster.trace cluster) in
      check Testutil.addr_list "detector = oracle under jitter" oracle detected;
      check Testutil.addr_list "exactly the racy word" [ racy ] detected)
    [ 1; 7; 23 ]

let test_jitter_water () =
  let cost = { Sim.Cost.default with jitter_ns = 250_000 } in
  let app = Apps.Registry.make ~scale:Apps.Registry.Small "water" in
  (* the body self-checks against the reference; jitter must not corrupt *)
  ignore (Core.Driver.run ~cost ~app ~nprocs:4 ())

(* ------------------------------------------------------------------ *)
(* Section 6.2: linear-time page-overlap via bitmaps                   *)

let interval_with ~proc ~reads ~writes =
  let vc = Proto.Vclock.create 4 in
  Proto.Vclock.set vc proc 2;
  let interval = Proto.Interval.create ~proc ~index:2 ~vc ~epoch:0 in
  List.iter (Proto.Interval.add_read_page interval) reads;
  List.iter (Proto.Interval.add_write_page interval) writes;
  interval

let prop_linear_overlap_equivalent =
  QCheck.Test.make ~name:"bitmap page-overlap = list page-overlap" ~count:200
    QCheck.(quad (list (int_bound 63)) (list (int_bound 63)) (list (int_bound 63))
              (list (int_bound 63)))
    (fun (ra, wa, rb, wb) ->
      let a = interval_with ~proc:0 ~reads:ra ~writes:wa in
      let b = interval_with ~proc:1 ~reads:rb ~writes:wb in
      Racedetect.Detector.overlapping_pages_linear ~npages:64 a b
      = Proto.Interval.overlapping_pages a b)

let suite =
  [
    ( "extensions:lu",
      [
        Alcotest.test_case "race-free, all protocols" `Quick test_lu_race_free_all_protocols;
        Alcotest.test_case "reference factorization" `Quick test_lu_reference_is_lu;
      ] );
    ( "extensions:symtab",
      [
        Alcotest.test_case "resolution" `Quick test_symtab_resolution;
        Alcotest.test_case "overlap rejected" `Quick test_symtab_overlap_rejected;
        Alcotest.test_case "symbolic race reports" `Quick test_symbolic_race_reports;
      ] );
    ( "extensions:home-based",
      [
        Alcotest.test_case "fetch waits for flush" `Quick test_hb_fetch_waits_for_flush;
        Alcotest.test_case "coherence counters" `Quick test_hb_paper_counters;
      ] );
    ( "extensions:robustness",
      [
        Alcotest.test_case "jitter: single-writer" `Quick
          (test_jitter_coherence Lrc.Config.Single_writer);
        Alcotest.test_case "jitter: multi-writer" `Quick
          (test_jitter_coherence Lrc.Config.Multi_writer);
        Alcotest.test_case "jitter: home-based" `Quick
          (test_jitter_coherence Lrc.Config.Home_based);
        Alcotest.test_case "jitter: water self-check" `Quick test_jitter_water;
        QCheck_alcotest.to_alcotest prop_linear_overlap_equivalent;
      ] );
    ( "extensions:fragmentation",
      [
        Alcotest.test_case "math" `Quick test_fragmentation_math;
        Alcotest.test_case "counted" `Quick test_fragments_counted;
      ] );
  ]
