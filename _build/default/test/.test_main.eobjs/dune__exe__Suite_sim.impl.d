test/suite_sim.ml: Alcotest Array Fun List Option QCheck QCheck_alcotest Sim Testutil
