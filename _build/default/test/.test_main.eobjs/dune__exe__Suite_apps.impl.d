test/suite_apps.ml: Alcotest Apps Array Core List Lrc Printf Proto Racedetect Sim Testutil
