test/suite_detection.ml: Alcotest Apps Core Gen Instrument List Lrc Printf Proto QCheck QCheck_alcotest Racedetect String Testutil
