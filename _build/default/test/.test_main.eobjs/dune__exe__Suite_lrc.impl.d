test/suite_lrc.ml: Alcotest Array List Lrc Option Printf Racedetect Sim Testutil
