test/suite_detector.ml: Alcotest List Mem Proto Racedetect Sim
