test/suite_instrument.ml: Alcotest Apps Binary Instrument List Printf Proto Static_analysis
