test/suite_extra.ml: Alcotest Apps Buffer Bytes Core Format List Lrc Proto Sim Testutil
