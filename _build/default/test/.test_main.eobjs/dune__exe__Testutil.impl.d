test/testutil.ml: Alcotest Format List Lrc Proto Sim String
