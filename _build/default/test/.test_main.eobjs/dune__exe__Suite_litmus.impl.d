test/suite_litmus.ml: Alcotest List Litmus Lrc
