test/suite_extensions.ml: Alcotest Apps Array Core Float Format List Lrc Mem Printf Proto QCheck QCheck_alcotest Racedetect Sim Testutil
