test/suite_proto.ml: Alcotest Array Gen Hashtbl List Proto QCheck QCheck_alcotest
