test/suite_numerics.ml: Alcotest Apps Array Float Fun Gen List QCheck QCheck_alcotest
