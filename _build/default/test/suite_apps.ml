(* Application-level tests at reduced scale: every app self-validates
   (its body raises on a wrong answer), the detector agrees with the
   oracle, and the races found are exactly the ones the paper reports:
   TSP's benign bound races, Water's potential-energy bug, and nothing
   at all for FFT and SOR. *)

let check = Alcotest.check

let run_app ?(cfg = Testutil.detect_cfg) ?(nprocs = 4) app =
  Core.Driver.run ~cfg ~app ~nprocs ()

let agrees (outcome : Core.Driver.outcome) =
  let detected = Core.Driver.racy_addrs outcome in
  let oracle =
    Racedetect.Oracle.racy_addrs ~nprocs:outcome.Core.Driver.nprocs outcome.Core.Driver.trace
  in
  check Testutil.addr_list "detector agrees with oracle" oracle detected;
  detected

let test_sor_race_free () =
  let outcome = run_app (Apps.Sor.make Apps.Sor.small_params) in
  check Testutil.addr_list "sor is race-free" [] (agrees outcome);
  check Alcotest.bool "sor really shares pages across procs" true
    (outcome.Core.Driver.stats.Sim.Stats.pages_fetched > 0)

let test_fft_race_free () =
  let outcome = run_app (Apps.Fft.make Apps.Fft.small_params) in
  check Testutil.addr_list "fft is race-free" [] (agrees outcome);
  check Alcotest.bool "fft transposes across processors" true
    (outcome.Core.Driver.stats.Sim.Stats.pages_fetched > 0)

let test_fft_rejects_bad_dims () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Fft.make: dimensions must be powers of two") (fun () ->
      ignore (Apps.Fft.make { Apps.Fft.n1 = 6; n2 = 4; n3 = 4 }))

let test_tsp_bound_races_only () =
  let outcome = run_app (Apps.Tsp.make Apps.Tsp.small_params) in
  match agrees outcome with
  | [ _bound_addr ] ->
      (* all races are on the one global-bound word, and they are
         read-write (unsynchronized prune reads vs locked updates) *)
      check Alcotest.bool "no write-write on the bound" true
        (List.for_all
           (fun r -> not (Proto.Race.is_write_write r))
           outcome.Core.Driver.races)
  | addrs ->
      Alcotest.fail (Printf.sprintf "expected exactly the bound word, got %d addrs"
           (List.length addrs))

let test_tsp_parallel_matches_reference () =
  (* correctness is asserted inside the body; both schedules must finish *)
  List.iter
    (fun nprocs -> ignore (run_app ~nprocs (Apps.Tsp.make Apps.Tsp.small_params)))
    [ 2; 4 ]

let test_water_bug_detected () =
  let outcome = run_app (Apps.Water.make Apps.Water.small_params) in
  match agrees outcome with
  | [ _potential_addr ] ->
      check Alcotest.bool "the bug includes a write-write race" true
        (List.exists Proto.Race.is_write_write outcome.Core.Driver.races)
  | addrs ->
      Alcotest.fail
        (Printf.sprintf "expected exactly the potential word, got %d addrs" (List.length addrs))

let test_water_fixed_is_race_free () =
  let params = { Apps.Water.small_params with inject_bug = false } in
  let outcome = run_app (Apps.Water.make params) in
  check Testutil.addr_list "fixed water is race-free" [] (agrees outcome)

let test_water_multi_writer () =
  let cfg = { Testutil.detect_cfg with protocol = Lrc.Config.Multi_writer } in
  let outcome = run_app ~cfg (Apps.Water.make Apps.Water.small_params) in
  check Alcotest.int "same single racy word under multi-writer" 1
    (List.length (agrees outcome))

let test_apps_across_proc_counts () =
  (* every app must self-validate at 1, 2, 3 and 5 processors (including
     non-divisors of the problem size) *)
  List.iter
    (fun name ->
      List.iter
        (fun nprocs ->
          ignore (run_app ~nprocs (Apps.Registry.make ~scale:Apps.Registry.Small name)))
        [ 1; 2; 3; 5 ])
    Apps.Registry.all_names

let test_registry () =
  check Alcotest.int "four applications" 4 (List.length (Apps.Registry.all ()));
  Alcotest.check_raises "unknown app" (Invalid_argument "Registry.make: unknown application \"nope\"")
    (fun () -> ignore (Apps.Registry.make "nope"))

let test_sequential_references () =
  (* the references themselves: SOR boundary kept, water potential
     strictly positive, TSP reference at most the NN bound *)
  let grid = Apps.Sor.reference Apps.Sor.small_params in
  check (Alcotest.float 0.0) "sor boundary pinned" 1.0 grid.(0).(0);
  let water = Apps.Water.reference Apps.Water.small_params in
  check Alcotest.bool "water potential positive" true (water.Apps.Water.potential > 0.0);
  let best = Apps.Tsp.reference Apps.Tsp.small_params in
  check Alcotest.bool "tsp tour positive" true (best > 0)

let suite =
  [
    ( "apps",
      [
        Alcotest.test_case "sor race-free" `Quick test_sor_race_free;
        Alcotest.test_case "fft race-free" `Quick test_fft_race_free;
        Alcotest.test_case "fft bad dims" `Quick test_fft_rejects_bad_dims;
        Alcotest.test_case "tsp bound races only" `Quick test_tsp_bound_races_only;
        Alcotest.test_case "tsp matches reference" `Quick test_tsp_parallel_matches_reference;
        Alcotest.test_case "water bug detected" `Quick test_water_bug_detected;
        Alcotest.test_case "water fixed race-free" `Quick test_water_fixed_is_race_free;
        Alcotest.test_case "water multi-writer" `Quick test_water_multi_writer;
        Alcotest.test_case "all apps, odd proc counts" `Slow test_apps_across_proc_counts;
        Alcotest.test_case "registry" `Quick test_registry;
        Alcotest.test_case "sequential references" `Quick test_sequential_references;
      ] );
  ]
