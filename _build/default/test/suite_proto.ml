(* Tests for the protocol data types: vector clocks, intervals and race
   reports — including the constant-time concurrency check the whole
   online scheme leans on. *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Vclock                                                              *)

let vc_of_list xs = Array.of_list xs

let test_vclock_leq () =
  check Alcotest.bool "equal leq" true (Proto.Vclock.leq (vc_of_list [ 1; 2 ]) (vc_of_list [ 1; 2 ]));
  check Alcotest.bool "pointwise" true (Proto.Vclock.leq (vc_of_list [ 1; 2 ]) (vc_of_list [ 2; 2 ]));
  check Alcotest.bool "not leq" false (Proto.Vclock.leq (vc_of_list [ 3; 0 ]) (vc_of_list [ 2; 2 ]));
  check Alcotest.bool "concurrent" true
    (Proto.Vclock.concurrent (vc_of_list [ 3; 0 ]) (vc_of_list [ 0; 3 ]))

let test_vclock_merge () =
  let a = vc_of_list [ 1; 5; 0 ] and b = vc_of_list [ 2; 3; 4 ] in
  check (Alcotest.array Alcotest.int) "merge is pointwise max" [| 2; 5; 4 |]
    (Proto.Vclock.merge a b)

let test_vclock_incr () =
  let vc = Proto.Vclock.create 3 in
  Proto.Vclock.incr vc 1;
  Proto.Vclock.incr vc 1;
  check Alcotest.int "incremented" 2 (Proto.Vclock.get vc 1);
  check Alcotest.int "others zero" 0 (Proto.Vclock.get vc 0)

let vclock_gen nprocs = QCheck.(list_of_size (Gen.return nprocs) (int_bound 20))

let prop_vclock_partial_order =
  QCheck.Test.make ~name:"vclock leq is a partial order; merge is the lub" ~count:200
    QCheck.(triple (vclock_gen 4) (vclock_gen 4) (vclock_gen 4))
    (fun (xs, ys, zs) ->
      let a = vc_of_list xs and b = vc_of_list ys and c = vc_of_list zs in
      let open Proto.Vclock in
      leq a a
      && ((not (leq a b && leq b c)) || leq a c)
      && ((not (leq a b && leq b a)) || equal a b)
      && leq a (merge a b)
      && leq b (merge a b)
      && ((not (leq a c && leq b c)) || leq (merge a b) c)
      && concurrent a b = ((not (leq a b)) && not (leq b a)))

(* ------------------------------------------------------------------ *)
(* Interval                                                            *)

(* Build intervals the way an execution would: vc.(proc) = index, and the
   vc records which intervals of other processors had been seen. *)
let interval ~proc ~index ~seen ~nprocs =
  let vc = Proto.Vclock.create nprocs in
  List.iter (fun (p, i) -> Proto.Vclock.set vc p i) seen;
  Proto.Vclock.set vc proc index;
  Proto.Interval.create ~proc ~index ~vc ~epoch:0

let test_interval_precedes_program_order () =
  let a = interval ~proc:0 ~index:1 ~seen:[] ~nprocs:2 in
  let b = interval ~proc:0 ~index:2 ~seen:[] ~nprocs:2 in
  check Alcotest.bool "program order" true (Proto.Interval.precedes a b);
  check Alcotest.bool "no reverse" false (Proto.Interval.precedes b a)

let test_interval_precedes_sync_order () =
  (* p0's interval 1 released to p1, whose interval 2 began with the
     acquire: p1's vc shows p0's index 1 *)
  let a = interval ~proc:0 ~index:1 ~seen:[] ~nprocs:2 in
  let b = interval ~proc:1 ~index:2 ~seen:[ (0, 1) ] ~nprocs:2 in
  check Alcotest.bool "release/acquire order" true (Proto.Interval.precedes a b);
  check Alcotest.bool "concurrent is false" false (Proto.Interval.concurrent a b)

let test_interval_concurrent () =
  let a = interval ~proc:0 ~index:2 ~seen:[] ~nprocs:2 in
  let b = interval ~proc:1 ~index:2 ~seen:[] ~nprocs:2 in
  check Alcotest.bool "unsynchronized intervals concurrent" true
    (Proto.Interval.concurrent a b)

let test_interval_overlap () =
  let a = interval ~proc:0 ~index:1 ~seen:[] ~nprocs:2 in
  let b = interval ~proc:1 ~index:1 ~seen:[] ~nprocs:2 in
  Proto.Interval.add_write_page a 3;
  Proto.Interval.add_read_page a 7;
  Proto.Interval.add_write_page b 7;
  Proto.Interval.add_read_page b 3;
  (* read-write overlaps both ways; no write-write *)
  check (Alcotest.list Alcotest.int) "overlapping pages" [ 3; 7 ]
    (Proto.Interval.overlapping_pages a b);
  let c = interval ~proc:1 ~index:1 ~seen:[] ~nprocs:2 in
  Proto.Interval.add_read_page c 7;
  check (Alcotest.list Alcotest.int) "read-read never overlaps" []
    (Proto.Interval.overlapping_pages a c)

let test_interval_size_bytes () =
  let a = interval ~proc:0 ~index:1 ~seen:[] ~nprocs:4 in
  Proto.Interval.add_write_page a 1;
  Proto.Interval.add_read_page a 2;
  Proto.Interval.add_read_page a 3;
  let with_notices = Proto.Interval.size_bytes ~with_read_notices:true a in
  let without = Proto.Interval.size_bytes ~with_read_notices:false a in
  check Alcotest.int "read notices cost 4 bytes each" 8 (with_notices - without);
  check Alcotest.int "read_notice_bytes" 8 (Proto.Interval.read_notice_bytes a)

let test_interval_dedup_pages () =
  let a = interval ~proc:0 ~index:1 ~seen:[] ~nprocs:2 in
  Proto.Interval.add_write_page a 5;
  Proto.Interval.add_write_page a 5;
  check (Alcotest.list Alcotest.int) "no duplicate notices" [ 5 ]
    a.Proto.Interval.write_pages

(* precedes must agree with full vector-clock comparison whenever the
   intervals come from a consistent history; build random chains. *)
let prop_precedes_matches_leq =
  QCheck.Test.make ~name:"constant-time precedes = vc comparison on histories" ~count:100
    QCheck.(list_of_size (Gen.int_range 2 30) (pair (int_bound 2) (int_bound 2)))
    (fun script ->
      (* replay a tiny 3-proc lock history: each event (proc, lock) is an
         acquire+release of that lock, creating one interval *)
      let nprocs = 3 in
      let clocks = Array.init nprocs (fun _ -> Proto.Vclock.create nprocs) in
      let lock_clock = Hashtbl.create 4 in
      let intervals = ref [] in
      List.iter
        (fun (proc, lock) ->
          (match Hashtbl.find_opt lock_clock lock with
          | Some held -> Proto.Vclock.merge_into ~dst:clocks.(proc) held
          | None -> ());
          Proto.Vclock.incr clocks.(proc) proc;
          let interval =
            Proto.Interval.create ~proc
              ~index:(Proto.Vclock.get clocks.(proc) proc)
              ~vc:(Proto.Vclock.copy clocks.(proc))
              ~epoch:0
          in
          intervals := interval :: !intervals;
          Hashtbl.replace lock_clock lock (Proto.Vclock.copy clocks.(proc)))
        script;
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              Proto.Interval.precedes a b
              = Proto.Vclock.leq a.Proto.Interval.vc b.Proto.Interval.vc
              || a == b)
            !intervals)
        !intervals)

(* ------------------------------------------------------------------ *)
(* Race                                                                *)

let race ~addr ~a ~b ~ka ~kb =
  {
    Proto.Race.addr;
    page = 0;
    word = addr / 8;
    first = (a, ka);
    second = (b, kb);
    epoch = 0;
  }

let id proc index = { Proto.Interval.proc; index }

let test_race_normalize_dedup () =
  let r1 = race ~addr:8 ~a:(id 0 1) ~b:(id 1 1) ~ka:Proto.Race.Write ~kb:Proto.Race.Read in
  let r2 = race ~addr:8 ~a:(id 1 1) ~b:(id 0 1) ~ka:Proto.Race.Read ~kb:Proto.Race.Write in
  check Alcotest.bool "symmetric pair equal" true (Proto.Race.equal r1 r2);
  check Alcotest.int "dedup" 1 (List.length (Proto.Race.dedup [ r1; r2; r1 ]))

let test_race_write_write () =
  let ww = race ~addr:0 ~a:(id 0 1) ~b:(id 1 1) ~ka:Proto.Race.Write ~kb:Proto.Race.Write in
  let rw = race ~addr:0 ~a:(id 0 1) ~b:(id 1 1) ~ka:Proto.Race.Read ~kb:Proto.Race.Write in
  check Alcotest.bool "ww" true (Proto.Race.is_write_write ww);
  check Alcotest.bool "rw" false (Proto.Race.is_write_write rw)

let suite =
  [
    ( "proto:vclock",
      [
        Alcotest.test_case "leq/concurrent" `Quick test_vclock_leq;
        Alcotest.test_case "merge" `Quick test_vclock_merge;
        Alcotest.test_case "incr" `Quick test_vclock_incr;
        QCheck_alcotest.to_alcotest prop_vclock_partial_order;
      ] );
    ( "proto:interval",
      [
        Alcotest.test_case "program order" `Quick test_interval_precedes_program_order;
        Alcotest.test_case "sync order" `Quick test_interval_precedes_sync_order;
        Alcotest.test_case "concurrency" `Quick test_interval_concurrent;
        Alcotest.test_case "page overlap" `Quick test_interval_overlap;
        Alcotest.test_case "wire size" `Quick test_interval_size_bytes;
        Alcotest.test_case "notice dedup" `Quick test_interval_dedup_pages;
        QCheck_alcotest.to_alcotest prop_precedes_matches_leq;
      ] );
    ( "proto:race",
      [
        Alcotest.test_case "normalize/dedup" `Quick test_race_normalize_dedup;
        Alcotest.test_case "write-write" `Quick test_race_write_write;
      ] );
  ]
