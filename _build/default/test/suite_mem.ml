(* Unit and property tests for the memory substrate: geometry, bitmaps,
   pages and diffs. *)

let check = Alcotest.check

let geometry = Mem.Geometry.create ~page_size:4096 ~word_size:8 ~pages:4 ()

(* ------------------------------------------------------------------ *)
(* Geometry                                                            *)

let test_geometry_bounds () =
  check Alcotest.bool "base shared" true (Mem.Geometry.in_shared geometry geometry.base);
  check Alcotest.bool "below base private" false
    (Mem.Geometry.in_shared geometry (geometry.base - 8));
  check Alcotest.bool "limit private" false
    (Mem.Geometry.in_shared geometry (Mem.Geometry.limit geometry));
  check Alcotest.int "shared bytes" (4 * 4096) (Mem.Geometry.shared_bytes geometry)

let test_geometry_roundtrip () =
  for page = 0 to 3 do
    for word = 0 to 511 do
      let addr = Mem.Geometry.addr_of geometry ~page ~word in
      check Alcotest.int "page roundtrip" page (Mem.Geometry.page_of_addr geometry addr);
      check Alcotest.int "word roundtrip" word (Mem.Geometry.word_in_page geometry addr)
    done
  done

let test_geometry_errors () =
  Alcotest.check_raises "private address" (Invalid_argument
      "Geometry.page_of_addr: address not shared") (fun () ->
      ignore (Mem.Geometry.page_of_addr geometry 0));
  Alcotest.check_raises "bad page" (Invalid_argument "Geometry.addr_of: bad page") (fun () ->
      ignore (Mem.Geometry.addr_of geometry ~page:4 ~word:0))

(* ------------------------------------------------------------------ *)
(* Bitmap                                                              *)

let test_bitmap_set_get () =
  let bitmap = Mem.Bitmap.create 100 in
  check Alcotest.bool "fresh empty" true (Mem.Bitmap.is_empty bitmap);
  Mem.Bitmap.set bitmap 0;
  Mem.Bitmap.set bitmap 63;
  Mem.Bitmap.set bitmap 99;
  check Alcotest.bool "bit 0" true (Mem.Bitmap.get bitmap 0);
  check Alcotest.bool "bit 1" false (Mem.Bitmap.get bitmap 1);
  check Alcotest.bool "bit 99" true (Mem.Bitmap.get bitmap 99);
  check Alcotest.int "cardinal" 3 (Mem.Bitmap.cardinal bitmap);
  check (Alcotest.list Alcotest.int) "indices" [ 0; 63; 99 ] (Mem.Bitmap.set_indices bitmap);
  Mem.Bitmap.clear_all bitmap;
  check Alcotest.bool "cleared" true (Mem.Bitmap.is_empty bitmap)

let test_bitmap_intersection () =
  let a = Mem.Bitmap.create 64 and b = Mem.Bitmap.create 64 in
  Mem.Bitmap.set a 3;
  Mem.Bitmap.set a 10;
  Mem.Bitmap.set b 10;
  Mem.Bitmap.set b 20;
  check Alcotest.bool "intersects" true (Mem.Bitmap.intersects a b);
  check (Alcotest.list Alcotest.int) "common word" [ 10 ] (Mem.Bitmap.inter_indices a b);
  let c = Mem.Bitmap.create 64 in
  Mem.Bitmap.set c 3;
  check Alcotest.bool "false sharing: disjoint" false (Mem.Bitmap.intersects b c)

let test_bitmap_union_copy () =
  let a = Mem.Bitmap.create 32 and b = Mem.Bitmap.create 32 in
  Mem.Bitmap.set a 1;
  Mem.Bitmap.set b 2;
  let snapshot = Mem.Bitmap.copy a in
  Mem.Bitmap.union_into ~dst:a b;
  check (Alcotest.list Alcotest.int) "union" [ 1; 2 ] (Mem.Bitmap.set_indices a);
  check (Alcotest.list Alcotest.int) "copy unaffected" [ 1 ] (Mem.Bitmap.set_indices snapshot)

let test_bitmap_length_mismatch () =
  let a = Mem.Bitmap.create 8 and b = Mem.Bitmap.create 16 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Bitmap: length mismatch") (fun () ->
      ignore (Mem.Bitmap.intersects a b))

let prop_bitmap_inter_naive =
  QCheck.Test.make ~name:"bitmap inter_indices equals naive intersection" ~count:100
    QCheck.(pair (list (int_bound 127)) (list (int_bound 127)))
    (fun (xs, ys) ->
      let a = Mem.Bitmap.create 128 and b = Mem.Bitmap.create 128 in
      List.iter (Mem.Bitmap.set a) xs;
      List.iter (Mem.Bitmap.set b) ys;
      let naive =
        List.sort_uniq compare (List.filter (fun x -> List.mem x ys) xs)
      in
      Mem.Bitmap.inter_indices a b = naive
      && Mem.Bitmap.intersects a b = (naive <> []))

let prop_bitmap_cardinal =
  QCheck.Test.make ~name:"bitmap cardinal equals distinct count" ~count:100
    QCheck.(list (int_bound 255))
    (fun xs ->
      let bitmap = Mem.Bitmap.create 256 in
      List.iter (Mem.Bitmap.set bitmap) xs;
      Mem.Bitmap.cardinal bitmap = List.length (List.sort_uniq compare xs))

(* ------------------------------------------------------------------ *)
(* Page                                                                *)

let test_page_roundtrip () =
  let page = Mem.Page.create ~page_size:4096 ~word_size:8 in
  Mem.Page.set_int64 page 0 42L;
  Mem.Page.set_float page 1 3.25;
  Mem.Page.set_int64 page 511 (-1L);
  check Alcotest.int64 "int64" 42L (Mem.Page.get_int64 page 0);
  check (Alcotest.float 0.0) "float" 3.25 (Mem.Page.get_float page 1);
  check Alcotest.int64 "last word" (-1L) (Mem.Page.get_int64 page 511);
  Alcotest.check_raises "out of range" (Invalid_argument "Page: word out of range") (fun () ->
      ignore (Mem.Page.get_int64 page 512))

let test_page_copy_blit () =
  let page = Mem.Page.create ~page_size:4096 ~word_size:8 in
  Mem.Page.set_int64 page 7 99L;
  let twin = Mem.Page.copy page in
  Mem.Page.set_int64 page 7 100L;
  check Alcotest.int64 "twin keeps old value" 99L (Mem.Page.get_int64 twin 7);
  Mem.Page.blit_from ~src:twin page;
  check Alcotest.int64 "blit restores" 99L (Mem.Page.get_int64 page 7);
  check Alcotest.bool "equal" true (Mem.Page.equal page twin)

(* ------------------------------------------------------------------ *)
(* Diff                                                                *)

let test_diff_roundtrip () =
  let twin = Mem.Page.create ~page_size:4096 ~word_size:8 in
  let current = Mem.Page.copy twin in
  Mem.Page.set_int64 current 5 1L;
  Mem.Page.set_int64 current 100 2L;
  let diff = Mem.Diff.create ~page:3 ~twin ~current in
  check Alcotest.int "changed words" 2 (Mem.Diff.word_count diff);
  check Alcotest.int "page id" 3 (Mem.Diff.page diff);
  check (Alcotest.list Alcotest.int) "touched" [ 5; 100 ] (Mem.Diff.touched_words diff);
  let target = Mem.Page.copy twin in
  Mem.Diff.apply diff target;
  check Alcotest.bool "apply reconstructs" true (Mem.Page.equal target current)

let test_diff_empty () =
  let page = Mem.Page.create ~page_size:4096 ~word_size:8 in
  let diff = Mem.Diff.create ~page:0 ~twin:page ~current:(Mem.Page.copy page) in
  check Alcotest.bool "empty" true (Mem.Diff.is_empty diff)

let test_diff_to_bitmap () =
  let twin = Mem.Page.create ~page_size:4096 ~word_size:8 in
  let current = Mem.Page.copy twin in
  Mem.Page.set_int64 current 9 5L;
  let diff = Mem.Diff.create ~page:0 ~twin ~current in
  let bitmap = Mem.Diff.to_bitmap diff ~nbits:512 in
  check (Alcotest.list Alcotest.int) "bit set" [ 9 ] (Mem.Bitmap.set_indices bitmap)

let prop_diff_apply_reconstructs =
  QCheck.Test.make ~name:"diff(twin,current) applied to twin copy = current" ~count:100
    QCheck.(list (pair (int_bound 511) int64))
    (fun writes ->
      let twin = Mem.Page.create ~page_size:4096 ~word_size:8 in
      let current = Mem.Page.copy twin in
      List.iter (fun (word, value) -> Mem.Page.set_int64 current word value) writes;
      let diff = Mem.Diff.create ~page:0 ~twin ~current in
      let target = Mem.Page.copy twin in
      Mem.Diff.apply diff target;
      Mem.Page.equal target current)

let suite =
  [
    ( "mem:geometry",
      [
        Alcotest.test_case "bounds" `Quick test_geometry_bounds;
        Alcotest.test_case "roundtrip" `Quick test_geometry_roundtrip;
        Alcotest.test_case "errors" `Quick test_geometry_errors;
      ] );
    ( "mem:bitmap",
      [
        Alcotest.test_case "set/get/cardinal" `Quick test_bitmap_set_get;
        Alcotest.test_case "intersection" `Quick test_bitmap_intersection;
        Alcotest.test_case "union/copy" `Quick test_bitmap_union_copy;
        Alcotest.test_case "length mismatch" `Quick test_bitmap_length_mismatch;
        QCheck_alcotest.to_alcotest prop_bitmap_inter_naive;
        QCheck_alcotest.to_alcotest prop_bitmap_cardinal;
      ] );
    ( "mem:page",
      [
        Alcotest.test_case "word roundtrip" `Quick test_page_roundtrip;
        Alcotest.test_case "copy/blit" `Quick test_page_copy_blit;
      ] );
    ( "mem:diff",
      [
        Alcotest.test_case "roundtrip" `Quick test_diff_roundtrip;
        Alcotest.test_case "empty" `Quick test_diff_empty;
        Alcotest.test_case "to_bitmap" `Quick test_diff_to_bitmap;
        QCheck_alcotest.to_alcotest prop_diff_apply_reconstructs;
      ] );
  ]
