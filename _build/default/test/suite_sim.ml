(* Unit and property tests for the simulation substrate: priority queue,
   RNG, engine, and network. *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Pqueue                                                              *)

let test_pqueue_ordering () =
  let q = Sim.Pqueue.create () in
  Sim.Pqueue.push q ~time:30 "c";
  Sim.Pqueue.push q ~time:10 "a";
  Sim.Pqueue.push q ~time:20 "b";
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string)) "first" (Some (10, "a"))
    (Sim.Pqueue.pop q);
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string)) "second" (Some (20, "b"))
    (Sim.Pqueue.pop q);
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string)) "third" (Some (30, "c"))
    (Sim.Pqueue.pop q);
  check Alcotest.bool "empty" true (Sim.Pqueue.pop q = None)

let test_pqueue_tie_break () =
  (* same time: pops in insertion order, the determinism guarantee *)
  let q = Sim.Pqueue.create () in
  List.iter (fun v -> Sim.Pqueue.push q ~time:5 v) [ 1; 2; 3; 4; 5 ];
  let popped = List.init 5 (fun _ -> snd (Option.get (Sim.Pqueue.pop q))) in
  check (Alcotest.list Alcotest.int) "fifo at equal time" [ 1; 2; 3; 4; 5 ] popped

let test_pqueue_peek () =
  let q = Sim.Pqueue.create () in
  check (Alcotest.option Alcotest.int) "peek empty" None (Sim.Pqueue.peek_time q);
  Sim.Pqueue.push q ~time:42 ();
  check (Alcotest.option Alcotest.int) "peek" (Some 42) (Sim.Pqueue.peek_time q);
  check Alcotest.int "length" 1 (Sim.Pqueue.length q)

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue pops sorted by (time, insertion)" ~count:200
    QCheck.(list (int_bound 1000))
    (fun times ->
      let q = Sim.Pqueue.create () in
      List.iteri (fun i time -> Sim.Pqueue.push q ~time i) times;
      let rec drain acc =
        match Sim.Pqueue.pop q with
        | None -> List.rev acc
        | Some (time, seq) -> drain ((time, seq) :: acc)
      in
      let popped = drain [] in
      let sorted = List.stable_sort (fun (t1, s1) (t2, s2) ->
          match compare t1 t2 with 0 -> compare s1 s2 | c -> c)
          (List.mapi (fun i time -> (time, i)) times)
      in
      popped = sorted)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)

let test_rng_deterministic () =
  let a = Sim.Rng.create ~seed:99 and b = Sim.Rng.create ~seed:99 in
  let xs = List.init 50 (fun _ -> Sim.Rng.int a 1000) in
  let ys = List.init 50 (fun _ -> Sim.Rng.int b 1000) in
  check (Alcotest.list Alcotest.int) "same seed, same stream" xs ys

let test_rng_bounds () =
  let rng = Sim.Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    let v = Sim.Rng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.fail "Rng.int out of bounds"
  done;
  for _ = 1 to 1000 do
    let f = Sim.Rng.float rng 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.fail "Rng.float out of bounds"
  done

let test_rng_split_independent () =
  let root = Sim.Rng.create ~seed:5 in
  let a = Sim.Rng.split root and b = Sim.Rng.split root in
  let xs = List.init 20 (fun _ -> Sim.Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Sim.Rng.int b 1_000_000) in
  check Alcotest.bool "distinct streams" true (xs <> ys)

let test_rng_shuffle_permutes () =
  let rng = Sim.Rng.create ~seed:3 in
  let arr = Array.init 30 Fun.id in
  Sim.Rng.shuffle_in_place rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "permutation" (Array.init 30 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)

let test_engine_advance_interleaves () =
  let engine = Sim.Engine.create () in
  let log = ref [] in
  let mark pid = log := (pid, Sim.Engine.now engine) :: !log in
  let body_a _pid =
    Sim.Engine.advance 10;
    mark 0;
    Sim.Engine.advance 20;
    mark 0
  in
  let body_b _pid =
    Sim.Engine.advance 15;
    mark 1;
    Sim.Engine.advance 1;
    mark 1
  in
  ignore (Sim.Engine.spawn engine body_a);
  ignore (Sim.Engine.spawn engine body_b);
  Sim.Engine.run engine;
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "interleaving by virtual time"
    [ (0, 10); (1, 15); (1, 16); (0, 30) ]
    (List.rev !log)

let test_engine_block_wake () =
  let engine = Sim.Engine.create () in
  let woke_at = ref (-1) in
  let sleeper_pid = ref (-1) in
  let sleeper _pid =
    Sim.Engine.block ~label:"test sleep";
    woke_at := Sim.Engine.now engine
  in
  let waker _pid =
    Sim.Engine.advance 500;
    Sim.Engine.wake engine !sleeper_pid
  in
  sleeper_pid := Sim.Engine.spawn engine sleeper;
  ignore (Sim.Engine.spawn engine waker);
  Sim.Engine.run engine;
  check Alcotest.int "woken at waker's time" 500 !woke_at

let test_engine_wake_before_block () =
  (* a wakeup that arrives before the block must not be lost *)
  let engine = Sim.Engine.create () in
  let finished = ref false in
  let pid = ref (-1) in
  let sleeper _pid =
    Sim.Engine.advance 100;
    Sim.Engine.block ~label:"late block";
    finished := true
  in
  let waker _pid = Sim.Engine.wake engine !pid in
  pid := Sim.Engine.spawn engine sleeper;
  ignore (Sim.Engine.spawn engine waker);
  Sim.Engine.run engine;
  check Alcotest.bool "sticky wakeup" true !finished

let test_engine_deadlock_detected () =
  let engine = Sim.Engine.create () in
  ignore (Sim.Engine.spawn engine (fun _ -> Sim.Engine.block ~label:"forever"));
  match Sim.Engine.run engine with
  | () -> Alcotest.fail "expected Deadlock"
  | exception Sim.Engine.Deadlock message ->
      check Alcotest.bool "mentions label" true
        (Testutil.contains message "forever")

let test_engine_exception_propagates () =
  let engine = Sim.Engine.create () in
  ignore (Sim.Engine.spawn engine (fun _ -> failwith "boom"));
  match Sim.Engine.run engine with
  | () -> Alcotest.fail "expected exception"
  | exception Failure m -> check Alcotest.string "payload" "boom" m

let test_engine_schedule_thunk () =
  let engine = Sim.Engine.create () in
  let fired = ref (-1) in
  Sim.Engine.schedule engine ~at:77 (fun () -> fired := Sim.Engine.now engine);
  Sim.Engine.run engine;
  check Alcotest.int "thunk time" 77 !fired

(* ------------------------------------------------------------------ *)
(* Net                                                                 *)

let test_net_latency_and_accounting () =
  let engine = Sim.Engine.create () in
  let cost = Sim.Cost.default in
  let stats = Sim.Stats.create () in
  let net = Sim.Net.create engine cost stats ~nodes:2 ~size_of:(fun _ -> 100) in
  let delivered_at = ref (-1) in
  Sim.Net.set_handler net ~node:1 (fun () -> delivered_at := Sim.Engine.now engine);
  ignore
    (Sim.Engine.spawn engine (fun _ ->
         Sim.Engine.advance 1000;
         Sim.Net.send net ~src:0 ~dst:1 ()));
  Sim.Engine.run engine;
  check Alcotest.int "latency model" (1000 + Sim.Cost.message_ns cost ~bytes:100) !delivered_at;
  check Alcotest.int "message counted" 1 stats.Sim.Stats.messages;
  check Alcotest.int "bytes counted" 100 stats.Sim.Stats.bytes

let test_net_fifo_same_size () =
  let engine = Sim.Engine.create () in
  let stats = Sim.Stats.create () in
  let net = Sim.Net.create engine Sim.Cost.default stats ~nodes:2 ~size_of:(fun _ -> 64) in
  let received = ref [] in
  Sim.Net.set_handler net ~node:1 (fun v -> received := v :: !received);
  ignore
    (Sim.Engine.spawn engine (fun _ ->
         List.iter (fun v -> Sim.Net.send net ~src:0 ~dst:1 v) [ 1; 2; 3 ]));
  Sim.Engine.run engine;
  check (Alcotest.list Alcotest.int) "fifo" [ 1; 2; 3 ] (List.rev !received)

let test_net_recv_blocking () =
  let engine = Sim.Engine.create () in
  let stats = Sim.Stats.create () in
  let net = Sim.Net.create engine Sim.Cost.default stats ~nodes:2 ~size_of:(fun _ -> 8) in
  let got = ref 0 in
  (* pid 0 = node 0 receiver; recv assumes pid = node id *)
  ignore (Sim.Engine.spawn engine (fun _ -> got := Sim.Net.recv net ~node:0));
  ignore
    (Sim.Engine.spawn engine (fun _ ->
         Sim.Engine.advance 10;
         Sim.Net.send net ~src:1 ~dst:0 42));
  Sim.Engine.run engine;
  check Alcotest.int "received" 42 !got

let suite =
  [
    ( "sim:pqueue",
      [
        Alcotest.test_case "ordering" `Quick test_pqueue_ordering;
        Alcotest.test_case "tie-break fifo" `Quick test_pqueue_tie_break;
        Alcotest.test_case "peek/length" `Quick test_pqueue_peek;
        QCheck_alcotest.to_alcotest prop_pqueue_sorted;
      ] );
    ( "sim:rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "bounds" `Quick test_rng_bounds;
        Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
      ] );
    ( "sim:engine",
      [
        Alcotest.test_case "virtual-time interleaving" `Quick test_engine_advance_interleaves;
        Alcotest.test_case "block/wake" `Quick test_engine_block_wake;
        Alcotest.test_case "wake before block" `Quick test_engine_wake_before_block;
        Alcotest.test_case "deadlock detected" `Quick test_engine_deadlock_detected;
        Alcotest.test_case "exception propagates" `Quick test_engine_exception_propagates;
        Alcotest.test_case "scheduled thunk" `Quick test_engine_schedule_thunk;
      ] );
    ( "sim:net",
      [
        Alcotest.test_case "latency + accounting" `Quick test_net_latency_and_accounting;
        Alcotest.test_case "fifo same-size" `Quick test_net_fifo_same_size;
        Alcotest.test_case "blocking recv" `Quick test_net_recv_blocking;
      ] );
  ]
