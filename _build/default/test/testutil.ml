(* Shared helpers for the test suites. *)

let contains haystack needle =
  let hay_len = String.length haystack and needle_len = String.length needle in
  let rec scan i =
    i + needle_len <= hay_len && (String.sub haystack i needle_len = needle || scan (i + 1))
  in
  needle_len = 0 || scan 0

(* Run an SPMD body on a fresh cluster and return it for inspection. *)
let run_cluster ?(cfg = Lrc.Config.default) ?(cost = Sim.Cost.default) ?(nprocs = 4)
    ?(pages = 8) body =
  let cluster = Lrc.Cluster.create ~cost ~cfg ~nprocs ~pages () in
  Lrc.Cluster.run cluster ~body;
  cluster

let racy_addrs_of cluster =
  Lrc.Cluster.races cluster
  |> List.map (fun (r : Proto.Race.t) -> r.addr)
  |> List.sort_uniq compare

let detect_cfg = { Lrc.Config.default with Lrc.Config.detect = true; record_trace = true }

let addr_list = Alcotest.list (Alcotest.testable (fun ppf a -> Format.fprintf ppf "0x%x" a) ( = ))
