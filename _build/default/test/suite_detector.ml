(* Tests for the detection algorithm (steps 2-5) as pure functions, and
   for the independent offline oracle. *)

let check = Alcotest.check

let nprocs = 3
let geometry = Mem.Geometry.create ~page_size:4096 ~word_size:8 ~pages:8 ()
let words = 512

let interval ~proc ~index ~seen =
  let vc = Proto.Vclock.create nprocs in
  List.iter (fun (p, i) -> Proto.Vclock.set vc p i) seen;
  Proto.Vclock.set vc proc index;
  Proto.Interval.create ~proc ~index ~vc ~epoch:0

let with_accesses interval ~reads ~writes =
  List.iter (fun (page, _) -> Proto.Interval.add_read_page interval page) reads;
  List.iter (fun (page, _) -> Proto.Interval.add_write_page interval page) writes;
  interval.Proto.Interval.closed <- true;
  interval

(* a bitmap source backed by an association list of (id, page) -> words *)
let source_of assoc (id : Proto.Interval.id) ~page =
  let find kind =
    match List.assoc_opt (id, page, kind) assoc with
    | Some ws ->
        let bitmap = Mem.Bitmap.create words in
        List.iter (Mem.Bitmap.set bitmap) ws;
        bitmap
    | None -> Mem.Bitmap.create words
  in
  { Racedetect.Detector.reads = find `R; writes = find `W }

(* ------------------------------------------------------------------ *)

let test_concurrent_pairs_barrier_epoch () =
  (* three barrier-style intervals, one per proc, mutually unsynchronized *)
  let intervals =
    List.init nprocs (fun proc -> interval ~proc ~index:2 ~seen:[])
  in
  let pairs = Racedetect.Detector.concurrent_pairs intervals in
  check Alcotest.int "all cross pairs concurrent" 3 (List.length pairs)

let test_concurrent_pairs_chain_ordered () =
  (* lock chain p0 -> p1 -> p2: no pair is concurrent *)
  let a = interval ~proc:0 ~index:1 ~seen:[] in
  let b = interval ~proc:1 ~index:1 ~seen:[ (0, 1) ] in
  let c = interval ~proc:2 ~index:1 ~seen:[ (0, 1); (1, 1) ] in
  let pairs = Racedetect.Detector.concurrent_pairs [ a; b; c ] in
  check Alcotest.int "chain fully ordered" 0 (List.length pairs)

let test_concurrent_pairs_skips_same_proc () =
  let stats = Sim.Stats.create () in
  let a = interval ~proc:0 ~index:1 ~seen:[] in
  let b = interval ~proc:0 ~index:2 ~seen:[] in
  let pairs = Racedetect.Detector.concurrent_pairs ~stats [ a; b ] in
  check Alcotest.int "no same-proc pairs" 0 (List.length pairs);
  check Alcotest.int "no comparisons spent" 0 stats.Sim.Stats.interval_comparisons

let test_check_list_requires_overlap () =
  let a = with_accesses (interval ~proc:0 ~index:2 ~seen:[]) ~reads:[] ~writes:[ (1, ()) ] in
  let b = with_accesses (interval ~proc:1 ~index:2 ~seen:[]) ~reads:[ (2, ()) ] ~writes:[] in
  let c = with_accesses (interval ~proc:2 ~index:2 ~seen:[]) ~reads:[ (1, ()) ] ~writes:[] in
  let pairs = Racedetect.Detector.concurrent_pairs [ a; b; c ] in
  let entries = Racedetect.Detector.check_list pairs in
  (* only (a, c) share page 1 with a write *)
  check Alcotest.int "one entry" 1 (List.length entries);
  let entry = List.hd entries in
  check (Alcotest.list Alcotest.int) "page 1" [ 1 ] entry.Racedetect.Checklist.pages

let test_races_word_granularity () =
  let a = with_accesses (interval ~proc:0 ~index:2 ~seen:[]) ~reads:[] ~writes:[ (1, ()) ] in
  let b = with_accesses (interval ~proc:1 ~index:2 ~seen:[]) ~reads:[ (1, ()) ] ~writes:[ (1, ()) ] in
  let ia = Proto.Interval.id a and ib = Proto.Interval.id b in
  let entry = { Racedetect.Checklist.a = ia; b = ib; pages = [ 1 ] } in
  (* a writes words 3,4; b writes word 4 and reads word 9: expect one
     write-write race at word 4, nothing at 3 (false sharing) or 9 *)
  let source =
    source_of [ ((ia, 1, `W), [ 3; 4 ]); ((ib, 1, `W), [ 4 ]); ((ib, 1, `R), [ 9 ]) ]
  in
  let races = Racedetect.Detector.races_of_entry ~geometry ~epoch:0 ~source entry in
  check Alcotest.int "one race" 1 (List.length races);
  let race = List.hd races in
  check Alcotest.int "word 4" 4 race.Proto.Race.word;
  check Alcotest.bool "write-write" true (Proto.Race.is_write_write race)

let test_races_read_write_both_directions () =
  let a = with_accesses (interval ~proc:0 ~index:2 ~seen:[]) ~reads:[ (2, ()) ] ~writes:[ (2, ()) ] in
  let b = with_accesses (interval ~proc:1 ~index:2 ~seen:[]) ~reads:[ (2, ()) ] ~writes:[ (2, ()) ] in
  let ia = Proto.Interval.id a and ib = Proto.Interval.id b in
  let entry = { Racedetect.Checklist.a = ia; b = ib; pages = [ 2 ] } in
  let source =
    source_of
      [
        ((ia, 2, `W), [ 1 ]); ((ia, 2, `R), [ 2 ]); ((ib, 2, `W), [ 2 ]); ((ib, 2, `R), [ 1 ]);
      ]
  in
  let races =
    Racedetect.Detector.races_of_entry ~geometry ~epoch:0 ~source entry |> Proto.Race.dedup
  in
  (* a writes 1 / b reads 1, and a reads 2 / b writes 2 *)
  check Alcotest.int "two races" 2 (List.length races);
  check (Alcotest.list Alcotest.int) "words" [ 1; 2 ]
    (List.sort compare (List.map (fun (r : Proto.Race.t) -> r.word) races))

let test_false_sharing_no_race () =
  let a = with_accesses (interval ~proc:0 ~index:2 ~seen:[]) ~reads:[] ~writes:[ (1, ()) ] in
  let b = with_accesses (interval ~proc:1 ~index:2 ~seen:[]) ~reads:[] ~writes:[ (1, ()) ] in
  let ia = Proto.Interval.id a and ib = Proto.Interval.id b in
  let entry = { Racedetect.Checklist.a = ia; b = ib; pages = [ 1 ] } in
  let source = source_of [ ((ia, 1, `W), [ 0 ]); ((ib, 1, `W), [ 100 ]) ] in
  let races = Racedetect.Detector.races_of_entry ~geometry ~epoch:0 ~source entry in
  check Alcotest.int "false sharing: no race" 0 (List.length races)

let test_bitmap_requests_dedup () =
  let entries =
    [
      { Racedetect.Checklist.a = { proc = 0; index = 1 }; b = { proc = 1; index = 1 }; pages = [ 1; 2 ] };
      { Racedetect.Checklist.a = { proc = 0; index = 1 }; b = { proc = 2; index = 1 }; pages = [ 1 ] };
    ]
  in
  let requests = Racedetect.Checklist.bitmap_requests entries in
  check Alcotest.int "deduplicated" 5 (List.length requests);
  let p0 = Racedetect.Checklist.requests_for_proc entries ~proc:0 in
  check Alcotest.int "proc 0 owns 2 bitmaps" 2 (List.length p0)

let test_first_races () =
  let race epoch =
    {
      Proto.Race.addr = 8 * epoch;
      page = 0;
      word = epoch;
      first = ({ Proto.Interval.proc = 0; index = 1 }, Proto.Race.Write);
      second = ({ Proto.Interval.proc = 1; index = 1 }, Proto.Race.Write);
      epoch;
    }
  in
  let filtered = Racedetect.Detector.first_races [ race 3; race 1; race 2; race 1 ] in
  check Alcotest.int "earliest epoch only" 2 (List.length filtered);
  List.iter (fun (r : Proto.Race.t) -> check Alcotest.int "epoch 1" 1 r.epoch) filtered;
  check Alcotest.int "empty stays empty" 0 (List.length (Racedetect.Detector.first_races []))

(* ------------------------------------------------------------------ *)
(* Oracle                                                              *)

let test_oracle_lock_ordered () =
  let open Racedetect.Oracle in
  let trace =
    [
      (0, Acquire 1); (0, Write 4096); (0, Release 1);
      (1, Acquire 1); (1, Read 4096); (1, Release 1);
    ]
  in
  check Alcotest.int "lock-ordered accesses race-free" 0
    (List.length (racy_addrs ~nprocs:2 trace))

let test_oracle_unordered_race () =
  let open Racedetect.Oracle in
  let trace = [ (0, Write 4096); (1, Read 4096) ] in
  check (Alcotest.list Alcotest.int) "race found" [ 4096 ] (racy_addrs ~nprocs:2 trace)

let test_oracle_different_locks_race () =
  let open Racedetect.Oracle in
  let trace =
    [
      (0, Acquire 1); (0, Write 8); (0, Release 1);
      (1, Acquire 2); (1, Write 8); (1, Release 2);
    ]
  in
  check Alcotest.int "different locks do not order" 1
    (List.length (racy_addrs ~nprocs:2 trace))

let test_oracle_barrier_orders () =
  let open Racedetect.Oracle in
  let trace = [ (0, Write 16); (0, Barrier); (1, Barrier); (1, Write 16) ] in
  check Alcotest.int "barrier orders" 0 (List.length (racy_addrs ~nprocs:2 trace))

let test_oracle_transitive_chain () =
  let open Racedetect.Oracle in
  let trace =
    [
      (0, Write 24); (0, Release 1);
      (1, Acquire 1); (1, Release 2);
      (2, Acquire 2); (2, Write 24);
    ]
  in
  check Alcotest.int "transitive order through two locks" 0
    (List.length (racy_addrs ~nprocs:3 trace))

let test_oracle_read_read_no_race () =
  let open Racedetect.Oracle in
  let trace = [ (0, Read 8); (1, Read 8) ] in
  check Alcotest.int "read-read" 0 (List.length (racy_addrs ~nprocs:2 trace))

let test_oracle_kinds () =
  let open Racedetect.Oracle in
  let trace = [ (0, Write 8); (1, Write 8); (1, Read 8) ] in
  let races = races_of_trace ~nprocs:2 trace in
  (* one ww pair and one wr pair, both on the same word *)
  check Alcotest.int "two kinds of pair" 2 (List.length races)

let suite =
  [
    ( "detector",
      [
        Alcotest.test_case "barrier epoch all-pairs" `Quick test_concurrent_pairs_barrier_epoch;
        Alcotest.test_case "lock chain ordered" `Quick test_concurrent_pairs_chain_ordered;
        Alcotest.test_case "same-proc skipped" `Quick test_concurrent_pairs_skips_same_proc;
        Alcotest.test_case "check list needs overlap" `Quick test_check_list_requires_overlap;
        Alcotest.test_case "word granularity" `Quick test_races_word_granularity;
        Alcotest.test_case "rw both directions" `Quick test_races_read_write_both_directions;
        Alcotest.test_case "false sharing ignored" `Quick test_false_sharing_no_race;
        Alcotest.test_case "bitmap request dedup" `Quick test_bitmap_requests_dedup;
        Alcotest.test_case "first races" `Quick test_first_races;
      ] );
    ( "oracle",
      [
        Alcotest.test_case "lock ordered" `Quick test_oracle_lock_ordered;
        Alcotest.test_case "unordered race" `Quick test_oracle_unordered_race;
        Alcotest.test_case "different locks" `Quick test_oracle_different_locks_race;
        Alcotest.test_case "barrier orders" `Quick test_oracle_barrier_orders;
        Alcotest.test_case "transitive chain" `Quick test_oracle_transitive_chain;
        Alcotest.test_case "read-read" `Quick test_oracle_read_read_no_race;
        Alcotest.test_case "kinds" `Quick test_oracle_kinds;
      ] );
  ]
