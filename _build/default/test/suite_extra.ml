(* Additional coverage: message sizing, statistics plumbing, interval
   accounting, sequential-consistency semantics, consolidation, float
   traffic, and the cost model. *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)

let test_cost_message_ns () =
  let cost = Sim.Cost.default in
  let base = Sim.Cost.message_ns cost ~bytes:0 in
  let big = Sim.Cost.message_ns cost ~bytes:4096 in
  check Alcotest.int "latency only at 0 bytes" cost.Sim.Cost.msg_latency_ns base;
  check Alcotest.bool "bandwidth term grows" true (big > base);
  check Alcotest.int "words per page" 512 (Sim.Cost.words_per_page cost)

(* ------------------------------------------------------------------ *)
(* Message sizes                                                       *)

let interval_with_notices ~reads ~writes =
  let vc = Proto.Vclock.create 4 in
  Proto.Vclock.set vc 0 1;
  let interval = Proto.Interval.create ~proc:0 ~index:1 ~vc ~epoch:0 in
  List.iter (Proto.Interval.add_read_page interval) reads;
  List.iter (Proto.Interval.add_write_page interval) writes;
  interval.Proto.Interval.closed <- true;
  interval

let test_message_sizes () =
  let vc = Proto.Vclock.create 4 in
  let small =
    Lrc.Message.size ~with_read_notices:true
      (Lrc.Message.Lock_req { lock = 1; requester = 2; vc })
  in
  check Alcotest.bool "positive" true (small > 0);
  let no_notices = interval_with_notices ~reads:[] ~writes:[ 1 ] in
  let notices = interval_with_notices ~reads:[ 2; 3; 4 ] ~writes:[ 1 ] in
  let grant intervals =
    Lrc.Message.size ~with_read_notices:true
      (Lrc.Message.Lock_grant { lock = 1; granter_vc = vc; intervals })
  in
  check Alcotest.int "read notices cost 4 bytes each" 12
    (grant [ notices ] - grant [ no_notices ]);
  (* with detection off, read notices do not ship at all *)
  let grant_off intervals =
    Lrc.Message.size ~with_read_notices:false
      (Lrc.Message.Lock_grant { lock = 1; granter_vc = vc; intervals })
  in
  check Alcotest.int "no read notices when detection is off" 0
    (grant_off [ notices ] - grant_off [ no_notices ]);
  check Alcotest.int "read_notice_bytes helper" 12
    (Lrc.Message.read_notice_bytes [ notices ])

let test_page_data_size () =
  let data = Bytes.create 4096 in
  let size =
    Lrc.Message.size ~with_read_notices:true (Lrc.Message.Copy_data { page = 0; data })
  in
  check Alcotest.bool "page payload dominates" true (size >= 4096)

(* ------------------------------------------------------------------ *)
(* Interval accounting: 2 intervals per processor per barrier           *)

let test_two_intervals_per_barrier () =
  let cluster = Lrc.Cluster.create ~nprocs:4 ~pages:2 () in
  let barriers = 6 in
  let body node =
    for _ = 1 to barriers do
      Lrc.Dsm.barrier node
    done
  in
  Lrc.Cluster.run cluster ~body;
  let stats = Lrc.Cluster.stats cluster in
  check Alcotest.int "barriers counted once" barriers stats.Sim.Stats.barriers;
  (* each barrier creates 2 intervals per processor (arrive + depart),
     plus the initial interval of each processor *)
  check Alcotest.int "interval count"
    (4 * ((2 * barriers) + 1))
    stats.Sim.Stats.intervals_created

let test_lock_creates_two_intervals () =
  let cluster = Lrc.Cluster.create ~nprocs:2 ~pages:2 () in
  let body node =
    Lrc.Dsm.barrier node;
    if Lrc.Dsm.pid node = 0 then Lrc.Dsm.with_lock node 3 (fun () -> ());
    Lrc.Dsm.barrier node
  in
  Lrc.Cluster.run cluster ~body;
  let stats = Lrc.Cluster.stats cluster in
  (* 2 procs x (1 initial + 2x2 barrier) + 2 for the acquire/release *)
  check Alcotest.int "acquire and release each open an interval" 12
    stats.Sim.Stats.intervals_created

(* ------------------------------------------------------------------ *)
(* Sequential consistency: reads always see the latest write            *)

let test_sc_reads_latest () =
  let cfg = { Lrc.Config.default with protocol = Lrc.Config.Seq_consistent } in
  let cluster = Lrc.Cluster.create ~cfg ~nprocs:2 ~pages:2 () in
  let x = Lrc.Cluster.alloc cluster 8 in
  let seen = ref (-1) in
  let body node =
    let open Lrc.Dsm in
    barrier node;
    if pid node = 0 then begin
      compute node 50_000.0;
      write_int node x 9
    end
    else begin
      compute node 5_000_000.0 (* well after p0's write *);
      seen := read_int node x
    end;
    barrier node
  in
  Lrc.Cluster.run cluster ~body;
  check Alcotest.int "SC read sees the unsynchronized write" 9 !seen

(* ------------------------------------------------------------------ *)
(* Consolidation (section 6.3): detection without an application
   barrier                                                             *)

let test_consolidate_runs_detection () =
  let cfg = Testutil.detect_cfg in
  let cluster = Lrc.Cluster.create ~cfg ~nprocs:2 ~pages:2 () in
  let x = Lrc.Cluster.alloc cluster 8 in
  let body node =
    let open Lrc.Dsm in
    barrier node;
    (* a lock-only program with a race; no barrier until consolidation *)
    with_lock node 1 (fun () -> ());
    if pid node = 0 then write_int node x 1;
    if pid node = 1 then ignore (read_int node x);
    consolidate node;
    barrier node
  in
  Lrc.Cluster.run cluster ~body;
  check Testutil.addr_list "consolidation found the race" [ x ]
    (Testutil.racy_addrs_of cluster)

(* ------------------------------------------------------------------ *)
(* Float traffic through the DSM                                       *)

let test_float_roundtrip_through_dsm () =
  let cluster = Lrc.Cluster.create ~nprocs:2 ~pages:2 () in
  let x = Lrc.Cluster.alloc cluster 16 in
  let got = ref 0.0 in
  let body node =
    let open Lrc.Dsm in
    if pid node = 0 then begin
      write_float node x 3.14159265;
      write_float node (x + 8) (-0.0)
    end;
    barrier node;
    if pid node = 1 then got := read_float node x;
    barrier node
  in
  Lrc.Cluster.run cluster ~body;
  check (Alcotest.float 0.0) "exact float transfer" 3.14159265 !got

(* ------------------------------------------------------------------ *)
(* Stats plumbing                                                      *)

let test_stats_charges () =
  let stats = Sim.Stats.create () in
  Sim.Stats.charge stats Sim.Stats.Proc_call 10.0;
  Sim.Stats.charge stats Sim.Stats.Proc_call 5.0;
  Sim.Stats.charge stats Sim.Stats.Bitmaps 2.5;
  check (Alcotest.float 0.0) "accumulates" 15.0 (Sim.Stats.charged stats Sim.Stats.Proc_call);
  check (Alcotest.float 0.0) "total" 17.5 (Sim.Stats.total_charged stats);
  check Alcotest.int "categories distinct" 5 (List.length Sim.Stats.all_categories)

let test_detect_changes_traffic_only_in_detect_runs () =
  let run detect =
    let cfg = { Lrc.Config.default with detect } in
    let cluster = Lrc.Cluster.create ~cfg ~nprocs:2 ~pages:2 () in
    let x = Lrc.Cluster.alloc cluster 8 in
    let body node =
      let open Lrc.Dsm in
      barrier node;
      if pid node = 0 then write_int node x 1 else ignore (read_int node x);
      barrier node
    in
    Lrc.Cluster.run cluster ~body;
    Lrc.Cluster.stats cluster
  in
  let off = run false and on = run true in
  check Alcotest.int "no read-notice bytes when off" 0 off.Sim.Stats.read_notice_bytes;
  check Alcotest.bool "read notices ship when on" true (on.Sim.Stats.read_notice_bytes > 0);
  check Alcotest.int "no bitmap round when off" 0 off.Sim.Stats.bitmap_round_bytes;
  check Alcotest.bool "bitmap round when on" true (on.Sim.Stats.bitmap_round_bytes > 0)

(* ------------------------------------------------------------------ *)
(* Sync_trace unit behaviour                                           *)

let test_sync_trace_cursor () =
  let recorder = Lrc.Sync_trace.new_recorder () in
  Lrc.Sync_trace.record recorder ~lock:1 ~grantee:2;
  Lrc.Sync_trace.record recorder ~lock:1 ~grantee:0;
  Lrc.Sync_trace.record recorder ~lock:9 ~grantee:1;
  let trace = Lrc.Sync_trace.of_recorder recorder in
  check Alcotest.int "total grants" 3 (Lrc.Sync_trace.total_grants trace);
  check (Alcotest.option Alcotest.int) "lock 1 first" (Some 2)
    (Lrc.Sync_trace.next_grantee trace ~lock:1);
  Lrc.Sync_trace.advance trace ~lock:1;
  check (Alcotest.option Alcotest.int) "lock 1 second" (Some 0)
    (Lrc.Sync_trace.next_grantee trace ~lock:1);
  Lrc.Sync_trace.advance trace ~lock:1;
  check (Alcotest.option Alcotest.int) "lock 1 exhausted" None
    (Lrc.Sync_trace.next_grantee trace ~lock:1);
  check (Alcotest.option Alcotest.int) "other locks independent" (Some 1)
    (Lrc.Sync_trace.next_grantee trace ~lock:9);
  Lrc.Sync_trace.reset trace;
  check (Alcotest.option Alcotest.int) "reset rewinds" (Some 2)
    (Lrc.Sync_trace.next_grantee trace ~lock:1)

(* ------------------------------------------------------------------ *)
(* Experiments helpers (small scale)                                   *)

let test_experiments_table2 () =
  let rows = Core.Experiments.table2 () in
  check Alcotest.int "four rows" 4 (List.length rows)

let test_driver_slowdown_sane () =
  let app = Apps.Registry.make ~scale:Apps.Registry.Small "sor" in
  let sd = Core.Driver.measure_slowdown ~app ~nprocs:4 () in
  check Alcotest.bool "instrumented at least as slow" true (sd.Core.Driver.factor >= 1.0);
  let percentages = Core.Driver.overhead_percentages sd in
  check Alcotest.int "five categories" 5 (List.length percentages);
  List.iter (fun (_, pct) -> if pct < 0.0 then Alcotest.fail "negative overhead") percentages

let test_timeline_rows () =
  let cfg = { Lrc.Config.default with record_trace = true } in
  let cluster = Lrc.Cluster.create ~cfg ~nprocs:2 ~pages:2 () in
  let x = Lrc.Cluster.alloc cluster 8 in
  let body node =
    let open Lrc.Dsm in
    barrier node;
    with_lock node 1 (fun () -> write_int node x (pid node));
    barrier node
  in
  Lrc.Cluster.run cluster ~body;
  let rows = Core.Timeline.rows ~nprocs:2 (Lrc.Cluster.timed_trace cluster) in
  (* 2 barriers + acquire/release per proc = 8 sync rows, time-ordered *)
  check Alcotest.int "sync rows" 8 (List.length rows);
  let times = List.map (fun (r : Core.Timeline.entry) -> r.time_ns) rows in
  check Alcotest.bool "sorted by time" true (times = List.sort compare times);
  let write_rows =
    List.filter (fun (r : Core.Timeline.entry) -> Testutil.contains r.label "1w") rows
  in
  check Alcotest.int "each release summarizes the critical section" 2
    (List.length write_rows)

let test_report_printers_smoke () =
  let buffer = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buffer in
  Core.Report.table2 ppf (Core.Experiments.table2 ());
  Core.Report.figure5 ppf (Core.Experiments.figure5_both ());
  Format.pp_print_flush ppf ();
  check Alcotest.bool "output produced" true (Buffer.length buffer > 200)

let suite =
  [
    ( "extra:cost+messages",
      [
        Alcotest.test_case "cost model" `Quick test_cost_message_ns;
        Alcotest.test_case "message sizes" `Quick test_message_sizes;
        Alcotest.test_case "page payload" `Quick test_page_data_size;
      ] );
    ( "extra:intervals",
      [
        Alcotest.test_case "2 per proc per barrier" `Quick test_two_intervals_per_barrier;
        Alcotest.test_case "2 per lock round trip" `Quick test_lock_creates_two_intervals;
      ] );
    ( "extra:semantics",
      [
        Alcotest.test_case "SC reads latest" `Quick test_sc_reads_latest;
        Alcotest.test_case "consolidation detects" `Quick test_consolidate_runs_detection;
        Alcotest.test_case "float roundtrip" `Quick test_float_roundtrip_through_dsm;
      ] );
    ( "extra:stats",
      [
        Alcotest.test_case "charges" `Quick test_stats_charges;
        Alcotest.test_case "detection traffic" `Quick
          test_detect_changes_traffic_only_in_detect_runs;
        Alcotest.test_case "sync trace cursor" `Quick test_sync_trace_cursor;
      ] );
    ( "extra:experiments",
      [
        Alcotest.test_case "table2 rows" `Quick test_experiments_table2;
        Alcotest.test_case "slowdown sane" `Quick test_driver_slowdown_sane;
        Alcotest.test_case "report printers" `Quick test_report_printers_smoke;
        Alcotest.test_case "timeline rows" `Quick test_timeline_rows;
      ] );
  ]
