(* End-to-end validation of the online detector against the independent
   offline oracle, including randomized programs, plus the accuracy
   features of section 6: first-race filtering, the stores-from-diffs
   weakness, the Figure 5 weak-memory scenario, and the two-run
   reference-identification flow. *)

let check = Alcotest.check

let protocols =
  [
    ("single-writer", Lrc.Config.Single_writer);
    ("multi-writer", Lrc.Config.Multi_writer);
    ("home-based", Lrc.Config.Home_based);
    ("seq-consistent", Lrc.Config.Seq_consistent);
  ]

(* ------------------------------------------------------------------ *)
(* Hand-written scenarios                                              *)

let scenario_mixed protocol () =
  (* lock-protected counter (no race), unsynchronized write/read pair
     (race), false sharing on one page (no race) *)
  let cfg = { Testutil.detect_cfg with protocol } in
  let cluster = Lrc.Cluster.create ~cfg ~nprocs:3 ~pages:4 () in
  let counter = Lrc.Cluster.alloc cluster 8 in
  let racy = Lrc.Cluster.alloc cluster 8 in
  let striped = Lrc.Cluster.alloc cluster (3 * 8) in
  let body node =
    let open Lrc.Dsm in
    barrier node;
    with_lock node 0 (fun () ->
        let v = read_int node counter in
        write_int node counter (v + 1));
    write_int_at node striped (pid node) (pid node) (* false sharing *);
    if pid node = 0 then write_int node racy 1;
    if pid node = 1 then ignore (read_int node racy);
    barrier node
  in
  Lrc.Cluster.run cluster ~body;
  let detected = Testutil.racy_addrs_of cluster in
  let oracle = Racedetect.Oracle.racy_addrs ~nprocs:3 (Lrc.Cluster.trace cluster) in
  check Testutil.addr_list "only the unsynchronized word races" [ racy ] detected;
  check Testutil.addr_list "oracle agrees" oracle detected

let test_detect_off_reports_nothing () =
  let cfg = { Lrc.Config.default with detect = false } in
  let cluster = Lrc.Cluster.create ~cfg ~nprocs:2 ~pages:2 () in
  let x = Lrc.Cluster.alloc cluster 8 in
  let body node =
    let open Lrc.Dsm in
    barrier node;
    if pid node = 0 then write_int node x 1 else ignore (read_int node x);
    barrier node
  in
  Lrc.Cluster.run cluster ~body;
  check Alcotest.int "no reports with detection off" 0
    (List.length (Lrc.Cluster.races cluster))

let test_race_report_details () =
  let cfg = Testutil.detect_cfg in
  let cluster = Lrc.Cluster.create ~cfg ~nprocs:2 ~pages:2 () in
  let x = Lrc.Cluster.alloc cluster 16 in
  let body node =
    let open Lrc.Dsm in
    barrier node;
    write_int_at node x 1 (pid node) (* word 1: write-write race *);
    barrier node
  in
  Lrc.Cluster.run cluster ~body;
  match Lrc.Cluster.races cluster with
  | [ race ] ->
      check Alcotest.int "address" (x + 8) race.Proto.Race.addr;
      check Alcotest.int "word" 1 race.Proto.Race.word;
      check Alcotest.bool "write-write" true (Proto.Race.is_write_write race);
      check Alcotest.int "epoch 1 (between barriers)" 1 race.Proto.Race.epoch;
      let (a, _), (b, _) = (race.Proto.Race.first, race.Proto.Race.second) in
      check Alcotest.bool "distinct processors" true
        (a.Proto.Interval.proc <> b.Proto.Interval.proc)
  | races -> Alcotest.fail (Printf.sprintf "expected exactly one race, got %d" (List.length races))

(* lock-chain ordering must suppress reports even without barriers in
   between (detection still happens at the final barrier) *)
let test_lock_chain_no_false_positive () =
  let cfg = Testutil.detect_cfg in
  let cluster = Lrc.Cluster.create ~cfg ~nprocs:4 ~pages:2 () in
  let x = Lrc.Cluster.alloc cluster 8 in
  let body node =
    let open Lrc.Dsm in
    barrier node;
    (* every proc appends under the same lock: all accesses ordered *)
    with_lock node 1 (fun () ->
        let v = read_int node x in
        compute node 10_000.0;
        write_int node x (v + (1 lsl pid node)));
    barrier node;
    if pid node = 0 then begin
      let v = read_int node x in
      if v <> 0b1111 then failwith (Printf.sprintf "sum %d" v)
    end;
    barrier node
  in
  Lrc.Cluster.run cluster ~body;
  check Testutil.addr_list "no false positives" [] (Testutil.racy_addrs_of cluster)

(* ------------------------------------------------------------------ *)
(* Randomized programs: detector == oracle, every protocol             *)

let random_program_case =
  (* A program is, per processor, a list of segments; each segment picks a
     word, whether to guard with a lock (the lock index equals the word,
     giving a mix of properly- and improperly-synchronized accesses), and
     whether to write. Some segments are barriers. *)
  let open QCheck in
  let segment =
    Gen.(
      frequency
        [
          (1, return `Barrier);
          ( 6,
            map3
              (fun word guarded write -> `Access (word, guarded, write))
              (int_bound 7) bool bool );
        ])
  in
  let program = Gen.(list_size (int_range 1 12) segment) in
  make
    ~print:(fun procs ->
      String.concat " | "
        (List.map
           (fun segments ->
             String.concat ";"
               (List.map
                  (function
                    | `Barrier -> "B"
                    | `Access (w, g, wr) ->
                        Printf.sprintf "%s%d%s" (if wr then "w" else "r") w
                          (if g then "L" else ""))
                  segments))
           procs))
    Gen.(list_size (return 3) program)

let run_random_program protocol procs =
  let nprocs = List.length procs in
  let cfg = { Testutil.detect_cfg with protocol } in
  let cluster = Lrc.Cluster.create ~cfg ~nprocs ~pages:4 () in
  let base = Lrc.Cluster.alloc cluster (8 * 8) in
  (* every processor must arrive at every barrier: pad with the maximum
     barrier count *)
  let barrier_count segments =
    List.length (List.filter (fun s -> s = `Barrier) segments)
  in
  let max_barriers = List.fold_left (fun acc p -> max acc (barrier_count p)) 0 procs in
  let body node =
    let open Lrc.Dsm in
    let segments = List.nth procs (pid node) in
    barrier node;
    let crossed = ref 0 in
    List.iter
      (fun segment ->
        match segment with
        | `Barrier ->
            incr crossed;
            barrier node
        | `Access (word, guarded, write) ->
            let act () =
              if write then write_int_at node base word (pid node)
              else ignore (read_int_at node base word)
            in
            if guarded then with_lock node word act else act ())
      segments;
    for _ = !crossed + 1 to max_barriers do
      barrier node
    done;
    barrier node
  in
  Lrc.Cluster.run cluster ~body;
  let detected = Testutil.racy_addrs_of cluster in
  let oracle = Racedetect.Oracle.racy_addrs ~nprocs (Lrc.Cluster.trace cluster) in
  (detected, oracle)

let prop_random_matches_oracle (name, protocol) =
  QCheck.Test.make
    ~name:(Printf.sprintf "random programs: detector = oracle (%s)" name)
    ~count:40 random_program_case
    (fun procs ->
      let detected, oracle = run_random_program protocol procs in
      detected = oracle)

(* ------------------------------------------------------------------ *)
(* First-race filtering (section 6.4)                                  *)

let test_first_race_only () =
  let run first_race_only =
    let cfg = { Testutil.detect_cfg with first_race_only } in
    let cluster = Lrc.Cluster.create ~cfg ~nprocs:2 ~pages:2 () in
    let x = Lrc.Cluster.alloc cluster 16 in
    let body node =
      let open Lrc.Dsm in
      barrier node;
      write_int_at node x 0 (pid node) (* race in epoch 1 *);
      barrier node;
      write_int_at node x 1 (pid node) (* race in epoch 2 *);
      barrier node
    in
    Lrc.Cluster.run cluster ~body;
    List.map (fun (r : Proto.Race.t) -> r.epoch) (Lrc.Cluster.races cluster)
    |> List.sort_uniq compare
  in
  check (Alcotest.list Alcotest.int) "all epochs without filter" [ 1; 2 ] (run false);
  check (Alcotest.list Alcotest.int) "first epoch only with filter" [ 1 ] (run true)

(* ------------------------------------------------------------------ *)
(* Section 6.5: stores from diffs find ww races but miss same-value
   overwrites                                                          *)

let run_overwrite_scenario ~stores_from_diffs ~same_value =
  let cfg =
    {
      Testutil.detect_cfg with
      protocol = Lrc.Config.Multi_writer;
      stores_from_diffs;
    }
  in
  let cluster = Lrc.Cluster.create ~cfg ~nprocs:2 ~pages:2 () in
  let x = Lrc.Cluster.alloc cluster 8 in
  let body node =
    let open Lrc.Dsm in
    if pid node = 0 then write_int node x 7;
    barrier node;
    (* both write the word; with [same_value] p1 writes the value already
       there, which leaves no trace in its diff *)
    if pid node = 0 then write_int node x 9;
    if pid node = 1 then write_int node x (if same_value then 7 else 8);
    barrier node
  in
  Lrc.Cluster.run cluster ~body;
  List.length (Lrc.Cluster.races cluster)

let test_stores_from_diffs_detects () =
  check Alcotest.bool "different-value ww race found" true
    (run_overwrite_scenario ~stores_from_diffs:true ~same_value:false > 0)

let test_stores_from_diffs_blind_spot () =
  (* the paper's stated weakness: a same-value overwrite is invisible in
     the diff, so one side of the race disappears *)
  let full = run_overwrite_scenario ~stores_from_diffs:false ~same_value:true in
  let diffs = run_overwrite_scenario ~stores_from_diffs:true ~same_value:true in
  check Alcotest.bool "full instrumentation sees it" true (full > 0);
  check Alcotest.bool "diff-based write detection is blind to it" true (diffs < full)

(* ------------------------------------------------------------------ *)
(* Figure 5: weak-memory-only races                                    *)

let test_figure5_lrc_vs_sc () =
  let lrc = Core.Experiments.figure5 ~protocol:Lrc.Config.Single_writer () in
  let sc = Core.Experiments.figure5 ~protocol:Lrc.Config.Seq_consistent () in
  check Alcotest.int "LRC: P2 dequeues through the stale pointer" 37
    lrc.Core.Experiments.f5_qptr_seen_by_p2;
  check Alcotest.int "SC: P2 sees the fresh pointer" 100 sc.Core.Experiments.f5_qptr_seen_by_p2;
  let names result = List.map snd result.Core.Experiments.f5_racy_words in
  check (Alcotest.list Alcotest.string) "LRC races include the slots"
    [ "qPtr"; "qEmpty"; "slot[37]"; "slot[38]" ]
    (names lrc);
  check (Alcotest.list Alcotest.string) "SC races exclude the slots" [ "qPtr"; "qEmpty" ]
    (names sc)

(* ------------------------------------------------------------------ *)
(* Section 6.1 alternative: single-run site retention                   *)

let test_site_retention_resolves_race () =
  let cfg = { Testutil.detect_cfg with retain_sites = true } in
  let cluster = Lrc.Cluster.create ~cfg ~nprocs:2 ~pages:2 () in
  let x = Lrc.Cluster.alloc cluster 8 in
  let body node =
    let open Lrc.Dsm in
    barrier node;
    if pid node = 0 then write_int node x 1 ~site:"demo:publish";
    if pid node = 1 then ignore (read_int node x ~site:"demo:consume");
    barrier node
  in
  Lrc.Cluster.run cluster ~body;
  match Lrc.Cluster.races cluster with
  | [ race ] ->
      let a, b = Lrc.Cluster.race_sites cluster race in
      let sites = List.sort compare [ a; b ] in
      check
        (Alcotest.list (Alcotest.option Alcotest.string))
        "both sites retained"
        [ Some "demo:consume"; Some "demo:publish" ]
        sites
  | races -> Alcotest.fail (Printf.sprintf "expected one race, got %d" (List.length races))

let test_site_retention_off_resolves_nothing () =
  let cluster = Lrc.Cluster.create ~cfg:Testutil.detect_cfg ~nprocs:2 ~pages:2 () in
  let x = Lrc.Cluster.alloc cluster 8 in
  let body node =
    let open Lrc.Dsm in
    barrier node;
    if pid node = 0 then write_int node x 1;
    if pid node = 1 then ignore (read_int node x);
    barrier node
  in
  Lrc.Cluster.run cluster ~body;
  match Lrc.Cluster.races cluster with
  | [ race ] ->
      let a, b = Lrc.Cluster.race_sites cluster race in
      check Alcotest.bool "no sites without retention" true (a = None && b = None)
  | _ -> Alcotest.fail "expected one race"

(* ------------------------------------------------------------------ *)
(* Section 6.1: two-run reference identification with replay           *)

let test_two_run_site_identification () =
  let app = Apps.Registry.make ~scale:Apps.Registry.Small "tsp" in
  (* run 1: detect races, record the synchronization order *)
  let cfg1 = { Lrc.Config.default with record_sync = true } in
  let run1 = Core.Driver.run ~cfg:cfg1 ~app ~nprocs:4 () in
  let racy = Core.Driver.racy_addrs run1 in
  check Alcotest.bool "run 1 found the bound race" true (racy <> []);
  (* run 2: replay the same order, watch the racy addresses *)
  let cfg2 = { Lrc.Config.default with replay = run1.Core.Driver.sync_trace } in
  let run2 = Core.Driver.run ~cfg:cfg2 ~app ~nprocs:4 ~watch_addrs:racy () in
  check Testutil.addr_list "same races under replay" racy (Core.Driver.racy_addrs run2);
  let hit_sites = List.map (fun h -> h.Instrument.Watch.site) run2.Core.Driver.watch_hits in
  check Alcotest.bool "the unsynchronized pruning read is identified" true
    (List.mem "tsp:bound_prune" hit_sites);
  check Alcotest.bool "the locked update is identified" true
    (List.mem "tsp:bound_update" hit_sites)

let suite =
  [
    ( "detection:scenarios",
      List.map
        (fun (name, protocol) ->
          Alcotest.test_case ("mixed scenario " ^ name) `Quick (scenario_mixed protocol))
        protocols
      @ [
          Alcotest.test_case "detect off" `Quick test_detect_off_reports_nothing;
          Alcotest.test_case "report details" `Quick test_race_report_details;
          Alcotest.test_case "lock chain no false positive" `Quick
            test_lock_chain_no_false_positive;
        ] );
    ( "detection:random-vs-oracle",
      List.map (fun p -> QCheck_alcotest.to_alcotest (prop_random_matches_oracle p)) protocols
    );
    ( "detection:accuracy",
      [
        Alcotest.test_case "first-race filter" `Quick test_first_race_only;
        Alcotest.test_case "stores-from-diffs detects" `Quick test_stores_from_diffs_detects;
        Alcotest.test_case "stores-from-diffs blind spot" `Quick
          test_stores_from_diffs_blind_spot;
        Alcotest.test_case "figure 5: LRC vs SC" `Quick test_figure5_lrc_vs_sc;
        Alcotest.test_case "two-run site identification" `Quick
          test_two_run_site_identification;
        Alcotest.test_case "single-run site retention" `Quick
          test_site_retention_resolves_race;
        Alcotest.test_case "no sites without retention" `Quick
          test_site_retention_off_resolves_nothing;
      ] );
  ]
