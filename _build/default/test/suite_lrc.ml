(* Integration tests for the DSM itself: coherence under all three
   protocols, locks, barriers, allocation, replay — including a
   regression stress for the ownership-steal lost-update bug. *)

let check = Alcotest.check

let protocols =
  [
    ("single-writer", Lrc.Config.Single_writer);
    ("multi-writer", Lrc.Config.Multi_writer);
    ("home-based", Lrc.Config.Home_based);
    ("seq-consistent", Lrc.Config.Seq_consistent);
  ]

(* ------------------------------------------------------------------ *)
(* Basic coherence: a barrier publishes writes                         *)

let test_barrier_publishes protocol () =
  let cfg = { Lrc.Config.default with protocol } in
  let cluster = Lrc.Cluster.create ~cfg ~nprocs:4 ~pages:4 () in
  let base = Lrc.Cluster.alloc cluster (4 * 8) in
  let body node =
    let open Lrc.Dsm in
    write_int_at node base (pid node) (100 + pid node);
    barrier node;
    (* everyone checks everyone's slot *)
    for p = 0 to nprocs node - 1 do
      let v = read_int_at node base p in
      if v <> 100 + p then failwith (Printf.sprintf "slot %d = %d" p v)
    done;
    barrier node
  in
  Lrc.Cluster.run cluster ~body

(* ------------------------------------------------------------------ *)
(* Lock-protected read-modify-write: mutual exclusion + visibility     *)

let test_lock_counter protocol () =
  let cfg = { Lrc.Config.default with protocol } in
  let cluster = Lrc.Cluster.create ~cfg ~nprocs:4 ~pages:4 () in
  let counter = Lrc.Cluster.alloc cluster 8 in
  let rounds = 10 in
  let body node =
    let open Lrc.Dsm in
    barrier node;
    for _ = 1 to rounds do
      with_lock node 5 (fun () ->
          let v = read_int node counter in
          compute node 2_000.0;
          write_int node counter (v + 1))
    done;
    barrier node;
    if pid node = 0 then begin
      let total = read_int node counter in
      if total <> 4 * rounds then failwith (Printf.sprintf "counter = %d" total)
    end;
    barrier node
  in
  Lrc.Cluster.run cluster ~body

(* Regression for the ownership-steal bug: many counters share pages,
   each guarded by its own lock, with randomized compute delays to vary
   the interleaving. Every increment must survive. *)
let test_lost_update_stress ~seed ~detect () =
  let worker_count = 8 and ncounters = 16 and rounds = 12 in
  let cfg = { Lrc.Config.default with detect; seed } in
  let cluster = Lrc.Cluster.create ~cfg ~nprocs:worker_count ~pages:4 () in
  let base = Lrc.Cluster.alloc cluster (ncounters * 8 * 32) in
  let addr k = base + (k * 8 * 32) in
  let rng_master = Sim.Rng.create ~seed in
  let rngs = Array.init worker_count (fun _ -> Sim.Rng.split rng_master) in
  let body node =
    let open Lrc.Dsm in
    let rng = rngs.(pid node) in
    barrier node;
    for r = 1 to rounds do
      let k = (pid node + (r * 3)) mod ncounters in
      compute node (float_of_int (Sim.Rng.int rng 200_000));
      with_lock node (10 + k) (fun () ->
          let v = read_int node (addr k) in
          compute node (float_of_int (Sim.Rng.int rng 50_000));
          write_int node (addr k) (v + 1))
    done;
    barrier node;
    if pid node = 0 then begin
      let total = ref 0 in
      for k = 0 to ncounters - 1 do
        total := !total + read_int node (addr k)
      done;
      if !total <> worker_count * rounds then
        failwith
          (Printf.sprintf "lost updates: %d of %d survived" !total (worker_count * rounds))
    end;
    barrier node
  in
  Lrc.Cluster.run cluster ~body

(* ------------------------------------------------------------------ *)
(* LRC semantics: an unsynchronized read may be stale (and the paper
   depends on it: Figure 5); a synchronized read must be fresh.         *)

let test_stale_read_before_sync () =
  let cluster = Lrc.Cluster.create ~nprocs:2 ~pages:4 () in
  let x = Lrc.Cluster.alloc cluster 8 in
  let observed = ref (-1) in
  let body node =
    let open Lrc.Dsm in
    if pid node = 0 then write_int node x 1;
    barrier node;
    (* p1 warms its copy; p0 overwrites without synchronizing *)
    if pid node = 1 then ignore (read_int node x);
    if pid node = 0 then begin
      compute node 2_000_000.0;
      write_int node x 2
    end;
    if pid node = 1 then begin
      compute node 4_000_000.0;
      observed := read_int node x
    end;
    barrier node;
    (* after the barrier p1 must see the new value *)
    if pid node = 1 then begin
      let v = read_int node x in
      if v <> 2 then failwith "post-barrier read stale"
    end;
    barrier node
  in
  Lrc.Cluster.run cluster ~body;
  check Alcotest.int "pre-sync read is stale under LRC" 1 !observed

(* ------------------------------------------------------------------ *)
(* Multi-writer: concurrent writers to one page merge through diffs    *)

let test_multi_writer_merges () =
  let cfg = { Lrc.Config.default with protocol = Lrc.Config.Multi_writer } in
  let cluster = Lrc.Cluster.create ~cfg ~nprocs:4 ~pages:2 () in
  let base = Lrc.Cluster.alloc cluster (64 * 8) in
  let body node =
    let open Lrc.Dsm in
    barrier node;
    (* everyone writes a disjoint stripe of the SAME page concurrently *)
    for k = 0 to 15 do
      write_int_at node base ((pid node * 16) + k) (pid node + 1)
    done;
    barrier node;
    if pid node = 0 then
      for p = 0 to 3 do
        for k = 0 to 15 do
          let v = read_int_at node base ((p * 16) + k) in
          if v <> p + 1 then failwith (Printf.sprintf "stripe %d word %d = %d" p k v)
        done
      done;
    barrier node
  in
  Lrc.Cluster.run cluster ~body;
  let stats = Lrc.Cluster.stats cluster in
  check Alcotest.bool "diffs were created" true (stats.Sim.Stats.diffs_created > 0)

(* ------------------------------------------------------------------ *)
(* API misuse errors                                                   *)

let test_lock_not_reentrant () =
  let cluster = Lrc.Cluster.create ~nprocs:1 ~pages:2 () in
  let body node =
    Lrc.Dsm.lock node 1;
    Lrc.Dsm.lock node 1
  in
  match Lrc.Cluster.run cluster ~body with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument m ->
      check Alcotest.bool "message" true (Testutil.contains m "already held")

let test_unlock_without_lock () =
  let cluster = Lrc.Cluster.create ~nprocs:1 ~pages:2 () in
  match Lrc.Cluster.run cluster ~body:(fun node -> Lrc.Dsm.unlock node 1) with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument m ->
      check Alcotest.bool "message" true (Testutil.contains m "not held")

let test_unaligned_access_rejected () =
  let cluster = Lrc.Cluster.create ~nprocs:1 ~pages:2 () in
  let x = Lrc.Cluster.alloc cluster 16 in
  match Lrc.Cluster.run cluster ~body:(fun node -> ignore (Lrc.Dsm.read_int node (x + 3))) with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument m ->
      check Alcotest.bool "message" true (Testutil.contains m "unaligned")

let test_private_address_rejected () =
  let cluster = Lrc.Cluster.create ~nprocs:1 ~pages:2 () in
  match Lrc.Cluster.run cluster ~body:(fun node -> ignore (Lrc.Dsm.read_int node 64)) with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument m ->
      check Alcotest.bool "message" true (Testutil.contains m "outside the shared segment")

(* ------------------------------------------------------------------ *)
(* Allocation                                                          *)

let test_alloc_alignment () =
  let cluster = Lrc.Cluster.create ~nprocs:1 ~pages:8 () in
  let a = Lrc.Cluster.alloc cluster 24 in
  let b = Lrc.Cluster.alloc cluster ~align:4096 8 in
  check Alcotest.int "page aligned" 0 (b mod 4096);
  check Alcotest.bool "disjoint" true (b >= a + 24)

let test_alloc_exhaustion () =
  let cluster = Lrc.Cluster.create ~nprocs:1 ~pages:1 () in
  Alcotest.check_raises "exhausted" (Invalid_argument "Cluster.alloc: shared segment exhausted")
    (fun () -> ignore (Lrc.Cluster.alloc cluster 8192))

let test_node_malloc_follows_cluster_alloc () =
  let cluster = Lrc.Cluster.create ~nprocs:2 ~pages:8 () in
  let a = Lrc.Cluster.alloc cluster 64 in
  let got = ref [] in
  let body node =
    let addr = Lrc.Dsm.malloc node 8 in
    got := addr :: !got;
    Lrc.Dsm.barrier node
  in
  Lrc.Cluster.run cluster ~body;
  match !got with
  | [ x; y ] ->
      check Alcotest.int "same SPMD address" x y;
      check Alcotest.bool "after cluster alloc" true (x >= a + 64)
  | _ -> Alcotest.fail "expected two allocations"

(* ------------------------------------------------------------------ *)
(* Synchronization-order record and replay (ROLT-style)                *)

let grant_order_of cluster =
  (* reconstruct per-lock grant order from the oracle trace's acquires *)
  Lrc.Cluster.trace cluster
  |> List.filter_map (function
       | proc, Racedetect.Oracle.Acquire lock -> Some (lock, proc)
       | _ -> None)

let test_record_replay () =
  let make_cluster ?(replay = None) ~cost () =
    let cfg =
      {
        Lrc.Config.default with
        record_sync = true;
        record_trace = true;
        replay;
      }
    in
    Lrc.Cluster.create ~cost ~cfg ~nprocs:4 ~pages:4 ()
  in
  let body counter node =
    let open Lrc.Dsm in
    barrier node;
    for _ = 1 to 5 do
      with_lock node 9 (fun () ->
          let v = read_int node counter in
          compute node (float_of_int (1000 * (pid node + 1)));
          write_int node counter (v + 1))
    done;
    barrier node
  in
  (* run 1 with the default cost model *)
  let c1 = make_cluster ~cost:Sim.Cost.default () in
  let counter1 = Lrc.Cluster.alloc c1 8 in
  Lrc.Cluster.run c1 ~body:(body counter1);
  let recorded = Option.get (Lrc.Cluster.sync_trace c1) in
  let order1 = grant_order_of c1 in
  (* run 2 with a very different cost model, replaying the order *)
  let cost2 = { Sim.Cost.default with msg_latency_ns = 900_000; proc_call_ns = 500.0 } in
  let c2 = make_cluster ~replay:(Some recorded) ~cost:cost2 () in
  let counter2 = Lrc.Cluster.alloc c2 8 in
  Lrc.Cluster.run c2 ~body:(body counter2);
  let order2 = grant_order_of c2 in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "grant order reproduced under perturbed timing" order1 order2;
  (* and without replay the perturbed run may (and here does) differ *)
  let c3 = make_cluster ~cost:cost2 () in
  let counter3 = Lrc.Cluster.alloc c3 8 in
  Lrc.Cluster.run c3 ~body:(body counter3);
  ignore counter3

(* ------------------------------------------------------------------ *)
(* Determinism: same configuration, same everything                    *)

let test_deterministic_runs () =
  let run () =
    let cfg = Testutil.detect_cfg in
    let cluster = Lrc.Cluster.create ~cfg ~nprocs:4 ~pages:4 () in
    let x = Lrc.Cluster.alloc cluster 64 in
    let body node =
      let open Lrc.Dsm in
      barrier node;
      with_lock node 2 (fun () ->
          let v = read_int node x in
          write_int node x (v + 1));
      write_int_at node x (1 + pid node) (pid node);
      barrier node
    in
    Lrc.Cluster.run cluster ~body;
    (Lrc.Cluster.sim_time cluster, Lrc.Cluster.trace cluster, Testutil.racy_addrs_of cluster)
  in
  let t1, trace1, races1 = run () in
  let t2, trace2, races2 = run () in
  check Alcotest.int "same simulated time" t1 t2;
  check Alcotest.bool "same trace" true (trace1 = trace2);
  check Testutil.addr_list "same races" races1 races2

let suite =
  [
    ( "lrc:coherence",
      List.concat_map
        (fun (name, protocol) ->
          [
            Alcotest.test_case (name ^ " barrier publishes") `Quick
              (test_barrier_publishes protocol);
            Alcotest.test_case (name ^ " lock counter") `Quick (test_lock_counter protocol);
          ])
        protocols
      @ [
          Alcotest.test_case "stale read before sync (LRC)" `Quick test_stale_read_before_sync;
          Alcotest.test_case "multi-writer diff merge" `Quick test_multi_writer_merges;
        ] );
    ( "lrc:lost-update-stress",
      List.concat_map
        (fun seed ->
          [
            Alcotest.test_case (Printf.sprintf "seed %d detect" seed) `Quick
              (test_lost_update_stress ~seed ~detect:true);
            Alcotest.test_case (Printf.sprintf "seed %d nodetect" seed) `Quick
              (test_lost_update_stress ~seed ~detect:false);
          ])
        [ 1; 4; 9; 27 ] );
    ( "lrc:api",
      [
        Alcotest.test_case "lock not reentrant" `Quick test_lock_not_reentrant;
        Alcotest.test_case "unlock without lock" `Quick test_unlock_without_lock;
        Alcotest.test_case "unaligned rejected" `Quick test_unaligned_access_rejected;
        Alcotest.test_case "private rejected" `Quick test_private_address_rejected;
        Alcotest.test_case "alloc alignment" `Quick test_alloc_alignment;
        Alcotest.test_case "alloc exhaustion" `Quick test_alloc_exhaustion;
        Alcotest.test_case "node malloc follows cluster" `Quick
          test_node_malloc_follows_cluster_alloc;
      ] );
    ( "lrc:replay",
      [
        Alcotest.test_case "record/replay grant order" `Quick test_record_replay;
        Alcotest.test_case "deterministic runs" `Quick test_deterministic_runs;
      ] );
  ]
