(* Render a run's synchronization structure as a text timeline — the
   executable version of the paper's Figure 2: intervals are the spans
   between synchronization events, and the detector's whole job is
   deciding which of them are concurrent.

     dune exec examples/timeline.exe
*)

let () =
  let cfg = { Lrc.Config.default with Lrc.Config.record_trace = true } in
  let cluster = Lrc.Cluster.create ~cfg ~nprocs:3 ~pages:4 () in
  let x = Lrc.Cluster.alloc cluster 8 ~name:"x" in
  let sum = Lrc.Cluster.alloc cluster 8 ~name:"sum" in
  let body node =
    let open Lrc.Dsm in
    barrier node;
    (* a small lock-structured phase, like Figure 2's execution *)
    for _ = 1 to 2 do
      with_lock node 1 (fun () ->
          let v = read_int node sum in
          compute node 40_000.0;
          write_int node sum (v + 1))
    done;
    if pid node = 0 then write_int node x 7 (* unsynchronized *);
    if pid node = 2 then ignore (read_int node x) (* races with p0 *);
    barrier node
  in
  Lrc.Cluster.run cluster ~body;
  Core.Timeline.render Format.std_formatter ~nprocs:3 (Lrc.Cluster.timed_trace cluster);
  Format.printf "@.";
  Core.Report.races ~symtab:(Lrc.Cluster.symtab cluster) Format.std_formatter
    (Lrc.Cluster.races cluster)
