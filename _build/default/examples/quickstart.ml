(* Quickstart: write a tiny SPMD program against the DSM API, run it on a
   simulated 4-processor cluster, and let the coherency-piggybacked
   detector tell you about your races.

     dune exec examples/quickstart.exe
*)

let () =
  (* A cluster is nprocs simulated processors connected by a modeled
     network, running the lazy-release-consistent DSM with online race
     detection on (the default configuration). *)
  let cluster = Lrc.Cluster.create ~nprocs:4 ~pages:8 () in

  (* Shared memory is allocated up front (like G_MALLOC) ... *)
  let hits = Lrc.Cluster.alloc cluster 8 in
  let scratch = Lrc.Cluster.alloc cluster 8 in

  (* ... and the SPMD body below runs on every processor. *)
  let body node =
    let open Lrc.Dsm in
    barrier node;

    (* properly synchronized shared counter: no race *)
    with_lock node 0 (fun () ->
        let v = read_int node hits in
        write_int node hits (v + 1));

    (* a deliberate bug: processor 0 publishes a value and processor 3
       reads it with no synchronization in between *)
    if pid node = 0 then write_int node scratch 42 ~site:"quickstart:publish";
    if pid node = 3 then ignore (read_int node scratch ~site:"quickstart:consume");

    barrier node;
    if pid node = 0 then Format.printf "hits = %d (expected 4)@." (read_int node hits);
    barrier node
  in
  Lrc.Cluster.run cluster ~body;

  (* The detector ran at each barrier, comparing the access bitmaps of
     concurrent intervals. Only the unsynchronized pair is reported. *)
  Format.printf "@.The detector found:@.";
  List.iter (fun race -> Format.printf "  %a@." Proto.Race.pp race)
    (Lrc.Cluster.races cluster);
  Format.printf "@.(the lock-protected counter at 0x%x is NOT reported;@." hits;
  Format.printf " the unsynchronized word is 0x%x)@." scratch
