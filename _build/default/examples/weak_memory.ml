(* Figure 5 of the paper, live: races that only occur on a weak memory
   system.

   P1 fills a queue slot and updates qPtr and qEmpty — but the release is
   missing. P2 polls qEmpty, then reads qPtr and writes into "its" slots.
   P3 concurrently writes slots 37..40.

   Under LRC, nothing invalidates P2's cached copy of qPtr's page, so P2
   reads the STALE pointer (37) and its writes collide with P3's: races
   on slot[37] and slot[38] that a sequentially consistent machine could
   never produce (if qEmpty's new value reached P2, qPtr's must have
   too). Run the same program on the sequential-consistency reference
   protocol and the slot races vanish.

     dune exec examples/weak_memory.exe
*)

let describe (result : Core.Experiments.figure5_result) =
  Format.printf "%s:@." result.Core.Experiments.f5_protocol;
  Format.printf "  P2 dequeued through qPtr = %d@." result.Core.Experiments.f5_qptr_seen_by_p2;
  Format.printf "  racy words: %s@.@."
    (String.concat ", " (List.map snd result.Core.Experiments.f5_racy_words))

let () =
  Format.printf "--- the missing-release queue of section 6.4 ---@.@.";
  describe (Core.Experiments.figure5 ~protocol:Lrc.Config.Single_writer ());
  describe (Core.Experiments.figure5 ~protocol:Lrc.Config.Seq_consistent ());
  Format.printf "Both runs race on qPtr and qEmpty (the missing synchronization).@.";
  Format.printf "Only the weak-memory run races on the slots: P2 acted on a stale@.";
  Format.printf "pointer that a sequentially consistent system could never show it.@."
