(* False sharing versus true sharing — why the detector needs word-level
   bitmaps and how the page-overlap check winnows the work.

   Four processors update *different* words of the same page (false
   sharing at page granularity: the single-writer protocol ping-pongs the
   page like mad, yet there is no race). A fifth word is then updated by
   two processors without a lock (true sharing: a real race).

   The run shows the detector's funnel, as in the paper's Table 3:
   intervals compared -> concurrent pairs -> page-overlapping pairs ->
   bitmaps fetched -> races. Only the truly shared word survives the
   final bitmap comparison.

     dune exec examples/false_sharing.exe
*)

let () =
  let cluster = Lrc.Cluster.create ~nprocs:4 ~pages:4 () in
  let stripe = Lrc.Cluster.alloc cluster (4 * 8) in
  let hot = Lrc.Cluster.alloc cluster 8 in
  let body node =
    let open Lrc.Dsm in
    barrier node;
    (* false sharing: disjoint words, same page, concurrent intervals *)
    for round = 1 to 3 do
      write_int_at node stripe (pid node) round ~site:"stripe"
    done;
    (* true sharing: processors 1 and 2 hit the same word, no lock *)
    if pid node = 1 || pid node = 2 then write_int node hot (pid node) ~site:"hot";
    barrier node
  in
  Lrc.Cluster.run cluster ~body;
  let stats = Lrc.Cluster.stats cluster in
  Format.printf "page ping-pong: %d ownership/copy fetches (false sharing is expensive!)@."
    stats.Sim.Stats.pages_fetched;
  Format.printf "detector funnel:@.";
  Format.printf "  version-vector comparisons . %d@." stats.Sim.Stats.interval_comparisons;
  Format.printf "  concurrent interval pairs .. %d@." stats.Sim.Stats.concurrent_pairs;
  Format.printf "  pairs with page overlap .... %d@." stats.Sim.Stats.overlapping_pairs;
  Format.printf "  bitmaps fetched ............ %d of %d@." stats.Sim.Stats.bitmaps_requested
    stats.Sim.Stats.bitmaps_total;
  Format.printf "  races ...................... %d@.@." stats.Sim.Stats.races_reported;
  List.iter (fun race -> Format.printf "  %a@." Proto.Race.pp race)
    (Lrc.Cluster.races cluster);
  Format.printf "@.The striped words never appear: overlapping pages, disjoint bits.@."
