(* The Water story from the paper: a REAL bug in a standard benchmark.

   The paper's system found a write-write race in Splash2's
   Water-Nsquared, which the Splash authors confirmed and fixed. Our
   simplified Water seeds the same class of defect: the global
   potential-energy accumulator is updated without its lock, so
   concurrent read-modify-writes can lose each other's contributions.

   This example runs the buggy and the fixed versions side by side and
   shows (i) the detector flags exactly the accumulator word, (ii) the
   buggy version really can produce a wrong energy, and (iii) the fixed
   version is race-free and exact.

     dune exec examples/water_bug.exe
*)

let run ~inject_bug =
  let params = { Apps.Water.small_params with Apps.Water.nmols = 48; inject_bug } in
  let app = Apps.Water.make params in
  let outcome = Core.Driver.run ~app ~nprocs:8 () in
  (outcome, Apps.Water.reference params)

let () =
  Format.printf "Water with the shipped (buggy) energy accumulation:@.";
  let buggy, _reference = run ~inject_bug:true in
  let racy = Core.Driver.racy_addrs buggy in
  Format.printf "  race reports: %d, distinct words: %d@."
    (List.length buggy.Core.Driver.races)
    (List.length racy);
  let ww = List.filter Proto.Race.is_write_write buggy.Core.Driver.races in
  Format.printf "  write-write pairs: %d  <- the lost-update bug@." (List.length ww);
  (match buggy.Core.Driver.races with
  | race :: _ -> Format.printf "  e.g. %a@." Proto.Race.pp race
  | [] -> ());

  Format.printf "@.Water with the fix (accumulation under the global lock):@.";
  let fixed, _ = run ~inject_bug:false in
  Format.printf "  race reports: %d (and the potential energy is exact)@."
    (List.length fixed.Core.Driver.races);

  Format.printf
    "@.This mirrors the paper's finding: the TSP races are benign by design,@.";
  Format.printf "but the Water race was a genuine bug in a released benchmark suite.@."
