(* Explore the memory model itself: classic litmus tests over the DSM.

   The same five shapes run under lazy release consistency (the paper's
   model) and under a sequentially consistent reference protocol; the
   difference in observable outcomes is exactly the section 6.4 story —
   LRC admits outcomes SC forbids whenever synchronization is missing,
   and proper locking makes them vanish.

     dune exec examples/memory_models.exe
*)

let show protocol =
  Format.printf "--- %s ---@." (Lrc.Config.protocol_name protocol);
  List.iter
    (fun test ->
      let outcomes = Litmus.explore ~protocol test in
      Format.printf "  %-16s %s@." test.Litmus.name
        (String.concat "  |  "
           (List.map
              (fun registers ->
                String.concat ","
                  (List.map (fun (r, v) -> Printf.sprintf "%s=%d" r v) registers))
              outcomes)))
    Litmus.all;
  Format.printf "@."

let () =
  show Lrc.Config.Single_writer;
  show Lrc.Config.Seq_consistent;
  Format.printf "Note how MP+late-publish shows r1=1,r2=0 only under LRC: the x-write@.";
  Format.printf "travelled with no write notice, so the reader's cached page stayed@.";
  Format.printf "stale — the same mechanism behind the paper's Figure 5.@."
