(* The TSP story from the paper, end to end.

   TSP deliberately reads the global tour bound without a lock: a stale
   bound only causes redundant search work, never a wrong answer, so the
   original authors left the read unsynchronized for speed. The detector
   flags it — dozens of read-write races, all on one word.

   This example then runs the paper's section 6.1 two-run identification:
   the first (detection) run records the synchronization order; the second
   run replays that exact order with a watch on the racy address, mapping
   the races back to source sites.

     dune exec examples/tsp_hunt.exe
*)

let () =
  let app = Apps.Tsp.make Apps.Tsp.small_params in

  Format.printf "run 1: TSP on 4 processors with online detection@.";
  let cfg1 = { Lrc.Config.default with record_sync = true } in
  let run1 = Core.Driver.run ~cfg:cfg1 ~app ~nprocs:4 () in
  let racy = Core.Driver.racy_addrs run1 in
  Format.printf "  %d race reports, all on %d distinct word(s)@."
    (List.length run1.Core.Driver.races)
    (List.length racy);
  List.iter (fun addr -> Format.printf "  racy word: 0x%08x (the global bound)@." addr) racy;

  (* Every report pairs an unsynchronized READ with a locked WRITE: *)
  let write_write = List.filter Proto.Race.is_write_write run1.Core.Driver.races in
  Format.printf "  write-write races: %d (bound updates themselves are locked)@."
    (List.length write_write);

  Format.printf "@.run 2: replay the recorded synchronization order, watch the bound@.";
  let cfg2 = { Lrc.Config.default with replay = run1.Core.Driver.sync_trace } in
  let run2 = Core.Driver.run ~cfg:cfg2 ~app ~nprocs:4 ~watch_addrs:racy () in
  Format.printf "  identified source sites:@.";
  List.iter
    (fun hit -> Format.printf "    %a@." Instrument.Watch.pp_hit hit)
    run2.Core.Driver.watch_hits;
  Format.printf
    "@.The culprit is the unlocked pruning read (tsp:bound_prune) racing with@.";
  Format.printf "the locked update (tsp:bound_update) — benign by design.@."
