examples/quickstart.ml: Format List Lrc Proto
