examples/false_sharing.ml: Format List Lrc Proto Sim
