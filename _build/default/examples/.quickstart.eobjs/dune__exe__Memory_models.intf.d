examples/memory_models.mli:
