examples/memory_models.ml: Format List Litmus Lrc Printf String
