examples/tsp_hunt.mli:
