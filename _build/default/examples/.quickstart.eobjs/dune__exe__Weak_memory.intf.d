examples/weak_memory.mli:
