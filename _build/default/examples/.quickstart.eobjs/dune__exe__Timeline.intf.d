examples/timeline.mli:
