examples/timeline.ml: Core Format Lrc
