examples/quickstart.mli:
