examples/tsp_hunt.ml: Apps Core Format Instrument List Lrc Proto
