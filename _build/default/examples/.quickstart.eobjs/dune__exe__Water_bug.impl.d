examples/water_bug.ml: Apps Core Format List Proto
