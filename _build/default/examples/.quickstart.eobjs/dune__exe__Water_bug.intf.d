examples/water_bug.mli:
