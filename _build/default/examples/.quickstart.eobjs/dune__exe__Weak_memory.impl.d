examples/weak_memory.ml: Core Format List Lrc String
