(* Synthetic executable images — the objects our ATOM analogue analyzes.

   ATOM classified every load and store in a real Alpha binary by its
   addressing mode and origin. We cannot rewrite native binaries from
   OCaml, so each application instead carries a synthetic instruction
   table with the same metadata the real classifier keyed on: which base
   register the access goes through (frame pointer, global pointer, or a
   computed register) and which section of the image it lives in
   (application text, shared libraries, or the CVM runtime itself).
   The static analysis pass in {!Static_analysis} then reproduces the
   elimination logic of the paper's section 5.1 on these tables. *)

type kind = Load | Store

type addressing =
  | Frame_pointer  (* sp/fp-relative: a stack slot *)
  | Global_pointer  (* gp-relative: statically allocated data *)
  | Computed  (* through a computed register: possibly shared *)

type origin =
  | App_text  (* the application's own code *)
  | Library of string  (* libc, libm, ... *)
  | Cvm_runtime  (* the DSM library linked into the binary *)

type instruction = {
  kind : kind;
  addressing : addressing;
  origin : origin;
  site : string;  (* symbolic "program counter": file:function#n *)
  proven_private : bool;
      (* the intra-basic-block data-flow analysis showed the computed
         address can only reach private data *)
}

type t = { name : string; instructions : instruction list }

let instruction_count t = List.length t.instructions

(* Builders used by the applications' [binary] descriptions. *)

let make ~name instructions = { name; instructions }

let repeat n f = List.init n f

let bulk ~kind ~addressing ~origin ~prefix ?(proven_private = false) n =
  repeat n (fun i ->
      { kind; addressing; origin; site = Printf.sprintf "%s#%d" prefix i; proven_private })

let section ~origin ~prefix ~loads ~stores =
  (* library/runtime sections: addressing is irrelevant to classification *)
  bulk ~kind:Load ~addressing:Computed ~origin ~prefix:(prefix ^ ".ld") loads
  @ bulk ~kind:Store ~addressing:Computed ~origin ~prefix:(prefix ^ ".st") stores

let loads t = List.filter (fun i -> i.kind = Load) t.instructions
let stores t = List.filter (fun i -> i.kind = Store) t.instructions
