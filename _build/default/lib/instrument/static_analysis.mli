(** The static elimination pass of paper section 5.1 (Table 2).

    An instruction is proven non-shared when it addresses through the
    frame pointer (stack) or the global pointer (static data — safe
    because the DSM allocates all shared memory dynamically), lives in a
    shared library or the CVM runtime, or was proven private by the
    basic-block data-flow analysis. Everything else gets an inserted call
    to the analysis routine. *)

type classification = {
  stack : int;
  static_data : int;
  library : int;
  cvm : int;
  instrumented : int;
}

val classify : Binary.t -> classification

val total : classification -> int

val eliminated_fraction : classification -> float
(** The paper's headline: over 99% of loads and stores are eliminated. *)

val instrumented_sites : Binary.t -> string list
(** Sites of the surviving (instrumented) instructions. *)

val pp : Format.formatter -> classification -> unit
