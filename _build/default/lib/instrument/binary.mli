(** Synthetic executable images — what our ATOM analogue analyzes.

    Each instruction carries the metadata the real classifier keyed on:
    the base register of the access (frame pointer, global pointer, or a
    computed register) and the image section it lives in (application
    text, a shared library, or the CVM runtime). *)

type kind = Load | Store

type addressing =
  | Frame_pointer  (** sp/fp-relative: a stack slot *)
  | Global_pointer  (** gp-relative: statically allocated data *)
  | Computed  (** through a computed register: possibly shared *)

type origin = App_text | Library of string | Cvm_runtime

type instruction = {
  kind : kind;
  addressing : addressing;
  origin : origin;
  site : string;  (** symbolic program counter, e.g. "file:function#n" *)
  proven_private : bool;
      (** the intra-basic-block data-flow analysis proved the computed
          address private *)
}

type t = { name : string; instructions : instruction list }

val make : name:string -> instruction list -> t
val instruction_count : t -> int

val bulk :
  kind:kind ->
  addressing:addressing ->
  origin:origin ->
  prefix:string ->
  ?proven_private:bool ->
  int ->
  instruction list
(** [bulk ~kind ~addressing ~origin ~prefix n] makes [n] alike
    instructions with distinct sites. *)

val section : origin:origin -> prefix:string -> loads:int -> stores:int -> instruction list
(** A library or runtime section (addressing irrelevant to elimination). *)

val loads : t -> instruction list
val stores : t -> instruction list
