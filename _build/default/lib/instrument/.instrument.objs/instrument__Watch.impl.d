lib/instrument/watch.ml: Format Hashtbl List Proto
