lib/instrument/binary.mli:
