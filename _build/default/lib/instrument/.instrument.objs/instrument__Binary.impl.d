lib/instrument/binary.ml: List Printf
