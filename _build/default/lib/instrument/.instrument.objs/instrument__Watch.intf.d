lib/instrument/watch.mli: Format Proto
