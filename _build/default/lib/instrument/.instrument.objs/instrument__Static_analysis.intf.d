lib/instrument/static_analysis.mli: Binary Format
