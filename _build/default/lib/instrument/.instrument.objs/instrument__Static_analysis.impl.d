lib/instrument/static_analysis.ml: Binary Format List
