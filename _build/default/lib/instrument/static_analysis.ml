(* The static elimination pass of section 5.1.

   An instruction can be proven to never touch shared data when:
   - it addresses through the frame pointer (stack data);
   - it addresses through the global pointer (statically allocated data —
     safe because the DSM allocates all shared memory dynamically);
   - it lives in a shared library (the applications pass no shared-segment
     pointers to libraries);
   - it lives in the CVM runtime itself;
   - the intra-basic-block data-flow analysis proved the computed address
     private.

   Everything else is instrumented: ATOM inserts a procedure call to the
   analysis routine before it. *)

type classification = {
  stack : int;
  static_data : int;
  library : int;
  cvm : int;
  instrumented : int;
}

let empty = { stack = 0; static_data = 0; library = 0; cvm = 0; instrumented = 0 }

let classify_instruction (i : Binary.instruction) =
  match (i.origin, i.addressing) with
  | Binary.Library _, _ -> `Library
  | Binary.Cvm_runtime, _ -> `Cvm
  | Binary.App_text, Binary.Frame_pointer -> `Stack
  | Binary.App_text, Binary.Global_pointer -> `Static
  | Binary.App_text, Binary.Computed ->
      if i.proven_private then `Stack else `Instrumented

let classify (binary : Binary.t) =
  List.fold_left
    (fun acc i ->
      match classify_instruction i with
      | `Stack -> { acc with stack = acc.stack + 1 }
      | `Static -> { acc with static_data = acc.static_data + 1 }
      | `Library -> { acc with library = acc.library + 1 }
      | `Cvm -> { acc with cvm = acc.cvm + 1 }
      | `Instrumented -> { acc with instrumented = acc.instrumented + 1 })
    empty binary.Binary.instructions

let total c = c.stack + c.static_data + c.library + c.cvm + c.instrumented

let eliminated_fraction c =
  let n = total c in
  if n = 0 then 0.0 else float_of_int (n - c.instrumented) /. float_of_int n

let instrumented_sites binary =
  List.filter_map
    (fun (i : Binary.instruction) ->
      match classify_instruction i with `Instrumented -> Some i.site | _ -> None)
    binary.Binary.instructions

let pp ppf c =
  Format.fprintf ppf "stack=%d static=%d library=%d cvm=%d instrumented=%d (%.2f%% eliminated)"
    c.stack c.static_data c.library c.cvm c.instrumented (100.0 *. eliminated_fraction c)
