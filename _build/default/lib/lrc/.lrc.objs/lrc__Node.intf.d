lib/lrc/node.mli: Config Mem Message Proto Racedetect Sim Sync_trace
