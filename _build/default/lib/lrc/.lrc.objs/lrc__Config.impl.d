lib/lrc/config.ml: Sync_trace
