lib/lrc/message.ml: Bytes List Mem Proto
