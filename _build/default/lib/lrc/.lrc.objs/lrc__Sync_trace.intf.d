lib/lrc/sync_trace.mli:
