lib/lrc/dsm.mli: Node
