lib/lrc/cluster.ml: Array Config List Mem Message Node Proto Racedetect Sim Sync_trace
