lib/lrc/sync_trace.ml: Array Hashtbl List Option
