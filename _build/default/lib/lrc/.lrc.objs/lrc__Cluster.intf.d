lib/lrc/cluster.mli: Config Mem Node Proto Racedetect Sim Sync_trace
