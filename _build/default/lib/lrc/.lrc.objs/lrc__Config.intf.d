lib/lrc/config.mli: Sync_trace
