lib/lrc/node.ml: Array Bytes Config Fun Hashtbl List Mem Message Option Printf Proto Queue Racedetect Sim Sync_trace Sys
