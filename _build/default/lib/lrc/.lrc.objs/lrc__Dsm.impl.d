lib/lrc/dsm.ml: Int64 Mem Node
