(* Wire messages of the DSM. Sizes approximate CVM's encodings closely
   enough for the bandwidth model and Table 3's message-overhead column:
   a fixed header plus the obvious field costs.

   Interval records and diffs are immutable once shipped (intervals are
   closed before they travel), so the simulation shares them by reference
   instead of serializing. *)

type bitmap_item = {
  interval : Proto.Interval.id;
  page : int;
  reads : Mem.Bitmap.t;
  writes : Mem.Bitmap.t;
}

type t =
  (* distributed locks (manager = proc 0; token chases last grantee) *)
  | Lock_req of { lock : int; requester : int; vc : Proto.Vclock.t }
  | Lock_ack of { lock : int; seq : int }
      (* manager -> requester: your request was sequenced as [seq] *)
  | Lock_fwd of { lock : int; requester : int; vc : Proto.Vclock.t; seq : int }
  | Lock_grant of {
      lock : int;
      granter_vc : Proto.Vclock.t;
      intervals : Proto.Interval.t list;  (* what the acquirer hasn't seen *)
    }
  (* barriers (master = proc 0) *)
  | Barrier_arrive of { from_ : int; vc : Proto.Vclock.t; intervals : Proto.Interval.t list }
  | Barrier_release of {
      master_vc : Proto.Vclock.t;
      intervals : Proto.Interval.t list;
      check_list_size : int;  (* bytes of the piggybacked check list *)
    }
  (* the extra barrier round that retrieves word-level access bitmaps *)
  | Bitmap_req of { requests : (Proto.Interval.id * int) list }
  | Bitmap_reply of { from_ : int; bitmaps : bitmap_item list }
  (* single-writer paging: requests go through the manager, data flows
     directly owner -> requester, and the requester acks the manager so the
     per-page request queue can drain *)
  | Copy_req of { page : int; requester : int }
  | Copy_fwd of { page : int; requester : int }
  | Copy_data of { page : int; data : Bytes.t }
  | Own_req of { page : int; requester : int }
  | Own_fwd of { page : int; requester : int }
  | Own_data of { page : int; data : Bytes.t }
  | Page_done of { page : int; requester : int }
  (* home-based LRC: diffs flush eagerly to each page's home; faults
     fetch whole pages from the home, gated on a version vector *)
  | Diff_flush of {
      page : int;
      diffs : (Proto.Interval.id * Mem.Diff.t) list;
      vc : Proto.Vclock.t;  (* flusher's knowledge; bounds the home version *)
    }
  | Home_req of { page : int; requester : int; needed : Proto.Vclock.t }
  | Home_data of { page : int; data : Bytes.t }
  (* multi-writer diff fetching *)
  | Diff_req of { page : int; ids : Proto.Interval.id list; requester : int }
  | Diff_reply of { page : int; diffs : (Proto.Interval.id * Mem.Diff.t) list }
  (* sequential-consistency mode: uncached accesses to the home node *)
  | Sc_read_req of { addr : int; requester : int }
  | Sc_read_reply of { addr : int; value : int64 }
  | Sc_write_req of { addr : int; value : int64; requester : int }
  | Sc_write_ack of { addr : int }

let header_bytes = 24

let intervals_bytes ~with_read_notices intervals =
  List.fold_left
    (fun acc interval -> acc + Proto.Interval.size_bytes ~with_read_notices interval)
    0 intervals

let read_notice_bytes intervals =
  List.fold_left (fun acc i -> acc + Proto.Interval.read_notice_bytes i) 0 intervals

let size ~with_read_notices = function
  | Lock_req { vc; _ } | Lock_fwd { vc; _ } -> header_bytes + 8 + Proto.Vclock.size_bytes vc
  | Lock_ack _ -> header_bytes + 8
  | Lock_grant { granter_vc; intervals; _ } ->
      header_bytes + 4
      + Proto.Vclock.size_bytes granter_vc
      + intervals_bytes ~with_read_notices intervals
  | Barrier_arrive { vc; intervals; _ } ->
      header_bytes + 4 + Proto.Vclock.size_bytes vc
      + intervals_bytes ~with_read_notices intervals
  | Barrier_release { master_vc; intervals; check_list_size } ->
      header_bytes
      + Proto.Vclock.size_bytes master_vc
      + intervals_bytes ~with_read_notices intervals
      + check_list_size
  | Bitmap_req { requests } -> header_bytes + (12 * List.length requests)
  | Bitmap_reply { bitmaps; _ } ->
      header_bytes
      + List.fold_left
          (fun acc item ->
            acc + 12 + Mem.Bitmap.size_bytes item.reads + Mem.Bitmap.size_bytes item.writes)
          0 bitmaps
  | Copy_req _ | Own_req _ | Copy_fwd _ | Own_fwd _ | Page_done _ -> header_bytes + 8
  | Copy_data { data; _ } | Own_data { data; _ } -> header_bytes + 8 + Bytes.length data
  | Diff_flush { diffs; vc; _ } ->
      header_bytes + 8 + Proto.Vclock.size_bytes vc
      + List.fold_left (fun acc (_, diff) -> acc + 8 + Mem.Diff.size_bytes diff) 0 diffs
  | Home_req { needed; _ } -> header_bytes + 8 + Proto.Vclock.size_bytes needed
  | Home_data { data; _ } -> header_bytes + 8 + Bytes.length data
  | Diff_req { ids; _ } -> header_bytes + 8 + (8 * List.length ids)
  | Diff_reply { diffs; _ } ->
      header_bytes + 8
      + List.fold_left (fun acc (_, diff) -> acc + 8 + Mem.Diff.size_bytes diff) 0 diffs
  | Sc_read_req _ | Sc_write_ack _ -> header_bytes + 8
  | Sc_read_reply _ | Sc_write_req _ -> header_bytes + 16

let describe = function
  | Lock_req _ -> "lock-req"
  | Lock_ack _ -> "lock-ack"
  | Lock_fwd _ -> "lock-fwd"
  | Lock_grant _ -> "lock-grant"
  | Barrier_arrive _ -> "barrier-arrive"
  | Barrier_release _ -> "barrier-release"
  | Bitmap_req _ -> "bitmap-req"
  | Bitmap_reply _ -> "bitmap-reply"
  | Copy_req _ -> "copy-req"
  | Copy_fwd _ -> "copy-fwd"
  | Copy_data _ -> "copy-data"
  | Own_req _ -> "own-req"
  | Own_fwd _ -> "own-fwd"
  | Own_data _ -> "own-data"
  | Page_done _ -> "page-done"
  | Diff_flush _ -> "diff-flush"
  | Home_req _ -> "home-req"
  | Home_data _ -> "home-data"
  | Diff_req _ -> "diff-req"
  | Diff_reply _ -> "diff-reply"
  | Sc_read_req _ -> "sc-read-req"
  | Sc_read_reply _ -> "sc-read-reply"
  | Sc_write_req _ -> "sc-write-req"
  | Sc_write_ack _ -> "sc-write-ack"
