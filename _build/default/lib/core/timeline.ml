(* Text timeline of a run's synchronization structure: one column per
   processor, one row per synchronization event, in simulated-time order.
   Shared accesses are summarized between synchronization points rather
   than printed (they number in the millions); the result reads like the
   paper's Figure 2 for a real execution. *)

type entry = {
  time_ns : int;
  proc : int;
  label : string;  (* "acq L3", "rel L3", "barrier", "r x1842", ... *)
}

let sync_label = function
  | Racedetect.Oracle.Acquire lock -> Some (Printf.sprintf "acq L%d" lock)
  | Racedetect.Oracle.Release lock -> Some (Printf.sprintf "rel L%d" lock)
  | Racedetect.Oracle.Barrier -> Some "barrier"
  | Racedetect.Oracle.Read _ | Racedetect.Oracle.Write _ -> None

(* Fold the timed trace into sync rows, counting the accesses each
   processor performed since its previous synchronization event. *)
let rows ~nprocs timed =
  let reads = Array.make nprocs 0 and writes = Array.make nprocs 0 in
  let out = ref [] in
  List.iter
    (fun (time_ns, proc, event) ->
      match event with
      | Racedetect.Oracle.Read _ -> reads.(proc) <- reads.(proc) + 1
      | Racedetect.Oracle.Write _ -> writes.(proc) <- writes.(proc) + 1
      | _ ->
          let label = Option.get (sync_label event) in
          let label =
            if reads.(proc) + writes.(proc) > 0 then
              Printf.sprintf "%s (%dr/%dw)" label reads.(proc) writes.(proc)
            else label
          in
          reads.(proc) <- 0;
          writes.(proc) <- 0;
          out := { time_ns; proc; label } :: !out)
    timed;
  List.rev !out

let render ?(max_rows = 120) ppf ~nprocs timed =
  let rows = rows ~nprocs timed in
  let total = List.length rows in
  let column_width = 22 in
  Format.fprintf ppf "%10s" "t (ms)";
  for proc = 0 to nprocs - 1 do
    Format.fprintf ppf " %-*s" column_width (Printf.sprintf "p%d" proc)
  done;
  Format.fprintf ppf "@.";
  let shown = if total > max_rows then max_rows else total in
  List.iteri
    (fun i row ->
      if i < shown then begin
        Format.fprintf ppf "%10.3f" (float_of_int row.time_ns /. 1e6);
        for proc = 0 to nprocs - 1 do
          Format.fprintf ppf " %-*s" column_width (if proc = row.proc then row.label else "")
        done;
        Format.fprintf ppf "@."
      end)
    rows;
  if total > shown then
    Format.fprintf ppf "... (%d more synchronization events)@." (total - shown)
