(** Text timeline of a run's synchronization structure — one column per
    processor, one row per acquire/release/barrier, with the shared
    accesses performed since the previous synchronization summarized as
    "(Nr/Mw)". The executable rendering of the paper's Figure 2. *)

type entry = { time_ns : int; proc : int; label : string }

val rows : nprocs:int -> (int * int * Racedetect.Oracle.event) list -> entry list
(** Fold a timed trace ({!Lrc.Cluster.timed_trace}) into sync rows. *)

val render :
  ?max_rows:int ->
  Format.formatter ->
  nprocs:int ->
  (int * int * Racedetect.Oracle.event) list ->
  unit
