lib/core/report.mli: Experiments Format Mem Proto
