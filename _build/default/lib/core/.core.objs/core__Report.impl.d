lib/core/report.ml: Experiments Format Instrument List Mem Proto Sim String
