lib/core/experiments.ml: Apps Driver Instrument List Lrc Printf Proto Sim
