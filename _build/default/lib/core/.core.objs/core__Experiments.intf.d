lib/core/experiments.mli: Apps Driver Instrument Lrc Sim
