lib/core/driver.ml: Apps Instrument List Lrc Mem Proto Racedetect Sim
