lib/core/driver.mli: Apps Instrument Lrc Mem Proto Racedetect Sim
