lib/core/timeline.ml: Array Format List Option Printf Racedetect
