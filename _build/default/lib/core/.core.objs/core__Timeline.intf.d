lib/core/timeline.mli: Format Racedetect
