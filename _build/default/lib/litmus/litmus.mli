(** Memory-model litmus tests over the DSM.

    Classic shapes (message passing, store buffering, read-read
    coherence) run under a chosen protocol; [explore] sweeps a grid of
    per-processor delays and collects the set of outcomes the
    deterministic simulation can actually exhibit. The assertions mirror
    paper section 6.4: SC-forbidden outcomes become observable under LRC
    when synchronization is missing, and vanish when it is present. *)

type registers = (string * int) list

type test = {
  name : string;
  nprocs : int;
  shared_words : int;
  body : base:int -> Lrc.Dsm.node -> delay:(float -> unit) -> registers;
}

val run : ?protocol:Lrc.Config.protocol -> delays:float array -> test -> registers
(** One deterministic execution with the given per-processor start
    delays; returns the union of every processor's observed registers. *)

val default_grid : float array

val explore : ?protocol:Lrc.Config.protocol -> ?grid:float array -> test -> registers list
(** All distinct outcomes over the delay grid (cartesian product). *)

val observable :
  ?protocol:Lrc.Config.protocol -> ?grid:float array -> test -> registers -> bool

(** The shapes. x and y live on separate pages. *)

val message_passing : test
(** SC forbids r1 = 1 and r2 = 0. *)

val message_passing_synchronized : test
(** Same shape under a lock; every protocol must forbid the weak outcome. *)

val message_passing_late_publish : test
(** Publication under a lock followed by an unsynchronized write: LRC
    exhibits r1 = 1 and r2 = 0, which SC forbids at this timing — the
    Figure 5 effect in miniature. *)

val store_buffering : test
(** SC forbids r1 = 0 and r2 = 0. *)

val coherence_rr : test
(** Per-location coherence forbids reading x backwards. *)

val all : test list
