(* Memory-model litmus tests over the DSM.

   Classic two-processor shapes (message passing, store buffering,
   coherence) run on a simulated cluster under a chosen protocol. Because
   the simulation is deterministic, a single run shows a single
   interleaving; [explore] sweeps a grid of artificial compute delays and
   collects the set of outcomes actually observable.

   The interesting assertions mirror the paper's section 6.4 discussion:
   outcomes forbidden under sequential consistency are observable under
   LRC when synchronization is missing, and properly synchronized variants
   admit only SC outcomes under every protocol. *)

type registers = (string * int) list

type test = {
  name : string;
  nprocs : int;
  shared_words : int;
  (* [body node ~delay] runs one processor; [delay d] burns d abstract
     nanoseconds so the sweep can reshape the interleaving. Returns the
     processor's observed registers. *)
  body : base:int -> Lrc.Dsm.node -> delay:(float -> unit) -> registers;
}

let run ?(protocol = Lrc.Config.Single_writer) ~delays test =
  if Array.length delays <> test.nprocs then invalid_arg "Litmus.run: delay per processor";
  let cfg = { Lrc.Config.default with Lrc.Config.protocol; detect = false } in
  let cluster = Lrc.Cluster.create ~cfg ~nprocs:test.nprocs ~pages:4 () in
  let base = Lrc.Cluster.alloc cluster (test.shared_words * 8) ~name:"litmus" in
  let observed = Array.make test.nprocs [] in
  let body node =
    let pid = Lrc.Dsm.pid node in
    Lrc.Dsm.barrier node;
    Lrc.Dsm.idle node delays.(pid);
    observed.(pid) <- test.body ~base node ~delay:(Lrc.Dsm.idle node);
    Lrc.Dsm.barrier node
  in
  Lrc.Cluster.run cluster ~body;
  List.concat (Array.to_list observed)

let default_grid =
  (* delays in simulated ns; enough spread to reorder fetches around
     remote writes at the default network latency *)
  [| 0.0; 60_000.0; 250_000.0; 800_000.0; 2_000_000.0 |]

let explore ?protocol ?(grid = default_grid) test =
  (* sweep every combination of per-processor start delays *)
  let rec combos = function
    | 0 -> [ [] ]
    | n -> List.concat_map (fun rest -> List.map (fun d -> d :: rest) (Array.to_list grid))
             (combos (n - 1))
  in
  combos test.nprocs
  |> List.map (fun delays -> run ?protocol ~delays:(Array.of_list delays) test)
  |> List.sort_uniq compare

let observable ?protocol ?grid test outcome =
  List.mem (List.sort compare outcome)
    (List.map (List.sort compare) (explore ?protocol ?grid test))

(* ------------------------------------------------------------------ *)
(* The classic shapes. Word 0 is x, word 1 is y — on separate pages
   (stride 512 words) so page granularity does not couple them.         *)

let x_word = 0
let y_word = 512

let addr base word = base + (word * 8)

let message_passing =
  (* P0: x := 1; y := 1      P1: r1 := y; r2 := x
     SC forbids r1 = 1 /\ r2 = 0. *)
  {
    name = "MP";
    nprocs = 2;
    shared_words = 1024;
    body =
      (fun ~base node ~delay ->
        let open Lrc.Dsm in
        if pid node = 0 then begin
          write_int node (addr base x_word) 1;
          delay 100_000.0;
          write_int node (addr base y_word) 1;
          []
        end
        else begin
          (* warm both locations so later reads hit cached copies *)
          ignore (read_int node (addr base y_word));
          ignore (read_int node (addr base x_word));
          delay 1_000_000.0;
          let r1 = read_int node (addr base y_word) in
          let r2 = read_int node (addr base x_word) in
          [ ("r1", r1); ("r2", r2) ]
        end);
  }

let message_passing_synchronized =
  (* the same shape with a lock around both sides: every protocol must
     forbid the weak outcome *)
  {
    name = "MP+locks";
    nprocs = 2;
    shared_words = 1024;
    body =
      (fun ~base node ~delay ->
        let open Lrc.Dsm in
        if pid node = 0 then begin
          with_lock node 1 (fun () ->
              write_int node (addr base x_word) 1;
              delay 100_000.0;
              write_int node (addr base y_word) 1);
          []
        end
        else begin
          delay 500_000.0;
          with_lock node 1 (fun () ->
              let r1 = read_int node (addr base y_word) in
              let r2 = read_int node (addr base x_word) in
              [ ("r1", r1); ("r2", r2) ])
        end);
  }

let store_buffering =
  (* P0: x := 1; r1 := y     P1: y := 1; r2 := x
     SC forbids r1 = 0 /\ r2 = 0. *)
  {
    name = "SB";
    nprocs = 2;
    shared_words = 1024;
    body =
      (fun ~base node ~delay ->
        let open Lrc.Dsm in
        if pid node = 0 then begin
          (* warm y so the read does not fetch a fresh copy *)
          ignore (read_int node (addr base y_word));
          delay 200_000.0;
          write_int node (addr base x_word) 1;
          let r1 = read_int node (addr base y_word) in
          [ ("r1", r1) ]
        end
        else begin
          ignore (read_int node (addr base x_word));
          delay 200_000.0;
          write_int node (addr base y_word) 1;
          let r2 = read_int node (addr base x_word) in
          [ ("r2", r2) ]
        end);
  }

let coherence_rr =
  (* P0: x := 1; x := 2      P1: r1 := x; r2 := x
     Per-location coherence forbids r1 = 2 /\ r2 = 1 (reading backwards). *)
  {
    name = "CoRR";
    nprocs = 2;
    shared_words = 1024;
    body =
      (fun ~base node ~delay ->
        let open Lrc.Dsm in
        if pid node = 0 then begin
          write_int node (addr base x_word) 1;
          delay 400_000.0;
          write_int node (addr base x_word) 2;
          []
        end
        else begin
          let r1 = read_int node (addr base x_word) in
          delay 800_000.0;
          let r2 = read_int node (addr base x_word) in
          [ ("r1", r1); ("r2", r2) ]
        end);
  }

let message_passing_late_publish =
  (* P0 publishes y under a lock, then writes x with NO synchronization;
     P1 later takes the lock and reads y, then reads x.
     Under SC, once r1 = 1 and P1 runs after P0's x-write, r2 must be 1.
     Under LRC the x-write travels with no notice, so P1's cached copy
     stays stale: r1 = 1 /\ r2 = 0 — the Figure 5 effect in miniature. *)
  {
    name = "MP+late-publish";
    nprocs = 2;
    shared_words = 1024;
    body =
      (fun ~base node ~delay ->
        let open Lrc.Dsm in
        if pid node = 0 then begin
          with_lock node 1 (fun () -> write_int node (addr base y_word) 1);
          delay 100_000.0;
          write_int node (addr base x_word) 1;
          []
        end
        else begin
          delay 1_500_000.0;
          let r1 = with_lock node 1 (fun () -> read_int node (addr base y_word)) in
          let r2 = read_int node (addr base x_word) in
          [ ("r1", r1); ("r2", r2) ]
        end);
  }

let all =
  [
    message_passing;
    message_passing_synchronized;
    message_passing_late_publish;
    store_buffering;
    coherence_rr;
  ]
