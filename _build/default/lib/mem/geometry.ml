(* Address-space geometry of the simulated shared segment.

   Addresses are byte addresses in a flat space. Everything below [base] is
   private (stacks, statics, the DSM library itself); the shared segment is
   [base .. base + pages * page_size). All shared data is dynamically
   allocated inside that window, mirroring CVM, which is what lets the
   static analysis eliminate gp-relative accesses. *)

type t = { base : int; page_size : int; word_size : int; pages : int }

let create ?(base = 0x4000_0000) ~page_size ~word_size ~pages () =
  if page_size <= 0 || word_size <= 0 || pages < 0 then invalid_arg "Geometry.create";
  if page_size mod word_size <> 0 then invalid_arg "Geometry.create: page/word mismatch";
  { base; page_size; word_size; pages }

let of_cost (cost : Sim.Cost.t) ~pages =
  create ~page_size:cost.Sim.Cost.page_size ~word_size:cost.Sim.Cost.word_size ~pages ()

let words_per_page t = t.page_size / t.word_size

let limit t = t.base + (t.pages * t.page_size)

let in_shared t addr = addr >= t.base && addr < limit t

let page_of_addr t addr =
  if not (in_shared t addr) then invalid_arg "Geometry.page_of_addr: address not shared";
  (addr - t.base) / t.page_size

let word_in_page t addr = addr mod t.page_size / t.word_size

let word_of_addr t addr = (addr - t.base) / t.word_size

let addr_of t ~page ~word =
  if page < 0 || page >= t.pages then invalid_arg "Geometry.addr_of: bad page";
  if word < 0 || word >= words_per_page t then invalid_arg "Geometry.addr_of: bad word";
  t.base + (page * t.page_size) + (word * t.word_size)

let shared_bytes t = t.pages * t.page_size
