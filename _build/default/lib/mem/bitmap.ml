(* Per-page access bitmaps: one bit per word of a page, recording which
   words an interval read or wrote. These are the structures the detector
   compares at barriers to distinguish false sharing from true races. *)

type t = { bits : Bytes.t; nbits : int }

let create nbits =
  if nbits < 0 then invalid_arg "Bitmap.create";
  { bits = Bytes.make ((nbits + 7) / 8) '\000'; nbits }

let length t = t.nbits

let check_index t i = if i < 0 || i >= t.nbits then invalid_arg "Bitmap: index out of range"

let set t i =
  check_index t i;
  let byte = i lsr 3 and bit = i land 7 in
  Bytes.unsafe_set t.bits byte
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.bits byte) lor (1 lsl bit)))

let get t i =
  check_index t i;
  Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let clear_all t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

let any_set t =
  let n = Bytes.length t.bits in
  let rec scan i = i < n && (Bytes.unsafe_get t.bits i <> '\000' || scan (i + 1)) in
  scan 0

let is_empty t = not (any_set t)

let popcount_byte c =
  let rec count n acc = if n = 0 then acc else count (n lsr 1) (acc + (n land 1)) in
  count (Char.code c) 0

let cardinal t =
  let total = ref 0 in
  Bytes.iter (fun c -> total := !total + popcount_byte c) t.bits;
  !total

let same_length a b =
  if a.nbits <> b.nbits then invalid_arg "Bitmap: length mismatch"

let intersects a b =
  same_length a b;
  let n = Bytes.length a.bits in
  let rec scan i =
    i < n
    && (Char.code (Bytes.unsafe_get a.bits i) land Char.code (Bytes.unsafe_get b.bits i) <> 0
       || scan (i + 1))
  in
  scan 0

let inter_indices a b =
  same_length a b;
  let hits = ref [] in
  for i = a.nbits - 1 downto 0 do
    if get a i && get b i then hits := i :: !hits
  done;
  !hits

let inter a b =
  same_length a b;
  let out = create a.nbits in
  for i = 0 to Bytes.length a.bits - 1 do
    Bytes.unsafe_set out.bits i
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get a.bits i) land Char.code (Bytes.unsafe_get b.bits i)))
  done;
  out

let union_into ~dst src =
  same_length dst src;
  for i = 0 to Bytes.length dst.bits - 1 do
    Bytes.unsafe_set dst.bits i
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get dst.bits i) lor Char.code (Bytes.unsafe_get src.bits i)))
  done

let iter_set t f =
  for i = 0 to t.nbits - 1 do
    if get t i then f i
  done

let copy t = { bits = Bytes.copy t.bits; nbits = t.nbits }

let size_bytes t = Bytes.length t.bits

let set_indices t = List.of_seq (Seq.filter (get t) (Seq.init t.nbits Fun.id))

let pp ppf t =
  Format.fprintf ppf "{%s}" (String.concat "," (List.map string_of_int (set_indices t)))
