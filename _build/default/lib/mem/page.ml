(* A page is raw bytes with word-granularity accessors. Words hold either
   int64 or float values (the float is stored as its bit pattern), which is
   enough for all four applications: TSP uses integers, SOR/FFT/Water use
   doubles. *)

type t = { data : Bytes.t; word_size : int }

let create ~page_size ~word_size =
  if page_size mod word_size <> 0 then invalid_arg "Page.create";
  if word_size <> 8 then invalid_arg "Page.create: only 8-byte words are supported";
  { data = Bytes.make page_size '\000'; word_size }

let words t = Bytes.length t.data / t.word_size

let check t word = if word < 0 || word >= words t then invalid_arg "Page: word out of range"

let get_int64 t word =
  check t word;
  Bytes.get_int64_le t.data (word * t.word_size)

let set_int64 t word v =
  check t word;
  Bytes.set_int64_le t.data (word * t.word_size) v

let get_float t word = Int64.float_of_bits (get_int64 t word)

let set_float t word v = set_int64 t word (Int64.bits_of_float v)

let copy t = { data = Bytes.copy t.data; word_size = t.word_size }

let blit_from ~src t = Bytes.blit src.data 0 t.data 0 (Bytes.length t.data)

let raw t = t.data

let equal a b = Bytes.equal a.data b.data
