(* Symbol table over the shared segment.

   The paper prints raw shared-segment addresses and notes that "in
   combination with symbol tables, this information can be used to
   identify the exact variable" (section 6.1). Applications register each
   allocation under a name; race reports then resolve to
   "variable[+offset]" instead of hex. *)

type entry = { name : string; base : int; bytes : int }

type t = { mutable entries : entry list (* kept sorted by base *) }

let create () = { entries = [] }

let register t ~name ~base ~bytes =
  if bytes < 0 then invalid_arg "Symtab.register";
  let entry = { name; base; bytes } in
  let rec insert = function
    | [] -> [ entry ]
    | e :: rest when e.base > base -> entry :: e :: rest
    | e :: rest ->
        if base < e.base + e.bytes && e.base < base + bytes then
          invalid_arg
            (Printf.sprintf "Symtab.register: %s overlaps %s" name e.name)
        else e :: insert rest
  in
  t.entries <- insert t.entries

let resolve t addr =
  List.find_opt (fun e -> addr >= e.base && addr < e.base + e.bytes) t.entries

let name_of t addr =
  match resolve t addr with
  | None -> Printf.sprintf "0x%08x" addr
  | Some e ->
      let offset = addr - e.base in
      if offset = 0 then e.name
      else if e.bytes > 8 && offset mod 8 = 0 then
        Printf.sprintf "%s[%d]" e.name (offset / 8)
      else Printf.sprintf "%s+%d" e.name offset

let entries t = t.entries

let pp ppf t =
  List.iter
    (fun e -> Format.fprintf ppf "0x%08x %6d %s@." e.base e.bytes e.name)
    t.entries
