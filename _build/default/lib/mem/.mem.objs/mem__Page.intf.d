lib/mem/page.mli: Bytes
