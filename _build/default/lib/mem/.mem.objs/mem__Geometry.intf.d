lib/mem/geometry.mli: Sim
