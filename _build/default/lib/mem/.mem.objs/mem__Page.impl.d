lib/mem/page.ml: Bytes Int64
