lib/mem/symtab.ml: Format List Printf
