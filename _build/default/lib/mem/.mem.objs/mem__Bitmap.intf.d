lib/mem/bitmap.mli: Format
