lib/mem/symtab.mli: Format
