lib/mem/geometry.ml: Sim
