lib/mem/diff.ml: Array Bitmap Page
