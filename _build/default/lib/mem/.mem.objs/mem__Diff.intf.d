lib/mem/diff.mli: Bitmap Page
