lib/mem/bitmap.ml: Bytes Char Format Fun List Seq String
