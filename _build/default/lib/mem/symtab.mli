(** Symbol table over the shared segment (paper section 6.1: "in
    combination with symbol tables, this information can be used to
    identify the exact variable").

    Applications register each allocation under a name; race reports can
    then print "variable[index]" instead of a raw address. *)

type t

type entry = { name : string; base : int; bytes : int }

val create : unit -> t

val register : t -> name:string -> base:int -> bytes:int -> unit
(** Raises [Invalid_argument] if the range overlaps a registered symbol. *)

val resolve : t -> int -> entry option

val name_of : t -> int -> string
(** ["counter"], ["grid[512]"], ["x+4"], or the hex address when unknown. *)

val entries : t -> entry list
val pp : Format.formatter -> t -> unit
