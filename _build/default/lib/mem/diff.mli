(** Word-level diffs: the per-page summary of the modifications an interval
    made, computed against the page's twin (multi-writer LRC). Applying
    every diff in happens-before order reconstructs the page. *)

type t

val create : page:int -> twin:Page.t -> current:Page.t -> t
(** Words whose value differs between [twin] and [current]. *)

val page : t -> int
val word_count : t -> int
val is_empty : t -> bool

val apply : t -> Page.t -> unit
(** Write the diff's words into the target page. *)

val size_bytes : t -> int
(** Approximate wire size (header + word/value pairs). *)

val touched_words : t -> int list

val to_bitmap : t -> nbits:int -> Bitmap.t
(** Write bitmap implied by the diff — the §6.5 optimization that lets a
    multi-writer protocol drop store instrumentation. *)
