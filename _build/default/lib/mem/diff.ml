(* Word-level diffs, as in multi-writer LRC protocols (TreadMarks, CVM's
   multi-writer mode): the per-page summary of modifications made during an
   interval, computed by comparing the page against its twin. *)

type t = { page : int; words : int array; values : int64 array }

let create ~page ~twin ~current =
  if Page.words twin <> Page.words current then invalid_arg "Diff.create: size mismatch";
  let changed = ref [] in
  for word = Page.words current - 1 downto 0 do
    if Page.get_int64 twin word <> Page.get_int64 current word then changed := word :: !changed
  done;
  let words = Array.of_list !changed in
  let values = Array.map (Page.get_int64 current) words in
  { page; words; values }

let page t = t.page

let word_count t = Array.length t.words

let is_empty t = word_count t = 0

let apply t target =
  Array.iteri (fun i word -> Page.set_int64 target word t.values.(i)) t.words

let size_bytes t = 8 + (word_count t * 12)
(* header + (word index, value) pairs; matches CVM's runlength encoding
   order of magnitude without modelling the exact layout *)

let touched_words t = Array.to_list t.words

let to_bitmap t ~nbits =
  let bitmap = Bitmap.create nbits in
  Array.iter (Bitmap.set bitmap) t.words;
  bitmap
