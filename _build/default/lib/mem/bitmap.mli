(** Fixed-width bitsets: one bit per word of a page.

    These record which words an interval read or wrote; the detector
    intersects a read (or write) bitmap of one interval with the write
    bitmap of a concurrent interval to distinguish false sharing from a
    true data race. *)

type t

val create : int -> t
(** [create nbits] is an all-zero bitmap of [nbits] bits. *)

val length : t -> int
val set : t -> int -> unit
val get : t -> int -> bool
val clear_all : t -> unit
val is_empty : t -> bool
val any_set : t -> bool
val cardinal : t -> int

val intersects : t -> t -> bool
(** Constant-time-per-word overlap test. Raises on length mismatch. *)

val inter_indices : t -> t -> int list
(** Indices set in both bitmaps, ascending — the racy words. *)

val inter : t -> t -> t
(** Fresh bitmap with the bits set in both. *)

val union_into : dst:t -> t -> unit
val iter_set : t -> (int -> unit) -> unit
val set_indices : t -> int list
val copy : t -> t

val size_bytes : t -> int
(** Wire size when shipped to the barrier master. *)

val pp : Format.formatter -> t -> unit
