(** Address-space geometry of the simulated shared segment.

    Addresses are flat byte addresses; the shared segment occupies
    [\[base, base + pages * page_size)]. Everything outside it is private
    (stacks, statics, library code), mirroring CVM's layout where all
    shared data is dynamically allocated in one mapped region. *)

type t = { base : int; page_size : int; word_size : int; pages : int }

val create : ?base:int -> page_size:int -> word_size:int -> pages:int -> unit -> t

val of_cost : Sim.Cost.t -> pages:int -> t
(** Geometry using the page/word sizes of a cost model. *)

val words_per_page : t -> int

val limit : t -> int
(** One past the last shared byte. *)

val in_shared : t -> int -> bool
(** The runtime access check's core predicate: is this address shared? *)

val page_of_addr : t -> int -> int
(** Page index of a shared address. Raises on private addresses. *)

val word_in_page : t -> int -> int
(** Word offset within its page. *)

val word_of_addr : t -> int -> int
(** Global word index within the shared segment. *)

val addr_of : t -> page:int -> word:int -> int

val shared_bytes : t -> int
