(* Check-list entries: a pair of concurrent intervals whose page-access
   lists overlap, plus the overlapping pages. The barrier release message
   carries this list to every process; each process answers with the
   word-level bitmaps the master needs for step 5. *)

type entry = { a : Proto.Interval.id; b : Proto.Interval.id; pages : int list }

let bitmap_requests entries =
  (* Distinct (interval, page) bitmaps the master must retrieve. *)
  let add acc id pages = List.fold_left (fun acc page -> (id, page) :: acc) acc pages in
  List.fold_left (fun acc e -> add (add acc e.a e.pages) e.b e.pages) [] entries
  |> List.sort_uniq compare

let requests_for_proc entries ~proc =
  List.filter (fun ((id : Proto.Interval.id), _) -> id.proc = proc) (bitmap_requests entries)

let size_bytes entries =
  (* Two ids + a page list per entry. *)
  List.fold_left (fun acc e -> acc + 16 + (4 * List.length e.pages)) 0 entries

let pp ppf e =
  Format.fprintf ppf "(%a,%a)@[pages [%s]@]" Proto.Interval.pp_id e.a Proto.Interval.pp_id e.b
    (String.concat ";" (List.map string_of_int e.pages))
