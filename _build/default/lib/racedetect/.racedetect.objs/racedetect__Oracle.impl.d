lib/racedetect/oracle.ml: Array Hashtbl List Proto
