lib/racedetect/checklist.mli: Format Proto
