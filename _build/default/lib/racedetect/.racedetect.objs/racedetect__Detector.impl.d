lib/racedetect/detector.ml: Array Checklist List Mem Proto Race Sim
