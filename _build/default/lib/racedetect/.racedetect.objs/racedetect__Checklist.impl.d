lib/racedetect/checklist.ml: Format List Proto String
