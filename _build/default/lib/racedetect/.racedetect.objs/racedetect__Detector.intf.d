lib/racedetect/detector.mli: Checklist Mem Proto Sim
