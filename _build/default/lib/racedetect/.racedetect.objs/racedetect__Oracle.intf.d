lib/racedetect/oracle.mli: Proto
