(* Independent offline happens-before race oracle.

   This is a classical post-mortem vector-clock race detector over a full
   access trace — essentially the Adve et al. scheme the paper cites as the
   off-line alternative. It shares no code with the online detector, so the
   test suite can check the online detector's output against it on
   arbitrary executions: both must report exactly the same racy words. *)

type event =
  | Read of int  (* word-aligned shared byte address *)
  | Write of int
  | Acquire of int  (* lock id, logged at grant time *)
  | Release of int
  | Barrier

type trace = (int * event) list
(** (proc, event), in the global order the execution produced them. *)

type access = { proc : int; clock : Proto.Vclock.t; kind : Proto.Race.access_kind }

type state = {
  nprocs : int;
  clocks : Proto.Vclock.t array;  (* one per proc *)
  locks : (int, Proto.Vclock.t) Hashtbl.t;
  accesses : (int, access list ref) Hashtbl.t;  (* addr -> accesses *)
  mutable barrier_pending : (int, unit) Hashtbl.t;  (* procs waiting *)
}

let create ~nprocs =
  {
    nprocs;
    clocks =
      Array.init nprocs (fun p ->
          (* own component starts at 1 (the first "interval"), so that two
             never-synchronized accesses compare as concurrent — with all
             zeros the epoch-style [ordered] check would call them ordered
             both ways *)
          let clock = Proto.Vclock.create nprocs in
          Proto.Vclock.set clock p 1;
          clock);
    locks = Hashtbl.create 16;
    accesses = Hashtbl.create 64;
    barrier_pending = Hashtbl.create 8;
  }

let record_access state proc addr kind =
  let slot =
    match Hashtbl.find_opt state.accesses addr with
    | Some slot -> slot
    | None ->
        let slot = ref [] in
        Hashtbl.add state.accesses addr slot;
        slot
  in
  slot := { proc; clock = Proto.Vclock.copy state.clocks.(proc); kind } :: !slot

let apply_barrier state =
  (* All procs have arrived: merge every clock into every clock, then tick
     each proc so post-barrier accesses are ordered after pre-barrier ones. *)
  let merged = Proto.Vclock.create state.nprocs in
  Array.iter (fun c -> Proto.Vclock.merge_into ~dst:merged c) state.clocks;
  Array.iteri
    (fun p _ ->
      Array.blit merged 0 state.clocks.(p) 0 state.nprocs;
      Proto.Vclock.incr state.clocks.(p) p)
    state.clocks;
  Hashtbl.reset state.barrier_pending

let step state (proc, event) =
  if Hashtbl.mem state.barrier_pending proc then
    invalid_arg "Oracle: event from a process blocked at a barrier";
  match event with
  | Read addr -> record_access state proc addr Proto.Race.Read
  | Write addr -> record_access state proc addr Proto.Race.Write
  | Release lock ->
      let held =
        match Hashtbl.find_opt state.locks lock with
        | Some c -> c
        | None -> Proto.Vclock.create state.nprocs
      in
      Proto.Vclock.merge_into ~dst:held state.clocks.(proc);
      Hashtbl.replace state.locks lock held;
      Proto.Vclock.incr state.clocks.(proc) proc
  | Acquire lock ->
      (match Hashtbl.find_opt state.locks lock with
      | Some held -> Proto.Vclock.merge_into ~dst:state.clocks.(proc) held
      | None -> ());
      Proto.Vclock.incr state.clocks.(proc) proc
  | Barrier ->
      Hashtbl.replace state.barrier_pending proc ();
      if Hashtbl.length state.barrier_pending = state.nprocs then apply_barrier state

let ordered (a : access) (b : access) =
  (* a happens-before b iff b's clock has seen a's component. *)
  Proto.Vclock.get b.clock a.proc >= Proto.Vclock.get a.clock a.proc

type racy_word = {
  addr : int;
  procs : int * int;
  kinds : Proto.Race.access_kind * Proto.Race.access_kind;
}

let racy_pair a b =
  a.proc <> b.proc
  && (a.kind = Proto.Race.Write || b.kind = Proto.Race.Write)
  && (not (ordered a b))
  && not (ordered b a)

let normalize_racy r =
  let (p1, p2), (k1, k2) = (r.procs, r.kinds) in
  if p1 > p2 then { r with procs = (p2, p1); kinds = (k2, k1) } else r

let races_of_trace ~nprocs trace =
  let state = create ~nprocs in
  List.iter (step state) trace;
  let results = ref [] in
  Hashtbl.iter
    (fun addr slot ->
      let accesses = Array.of_list !slot in
      let n = Array.length accesses in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let a = accesses.(i) and b = accesses.(j) in
          if racy_pair a b then
            results :=
              normalize_racy { addr; procs = (a.proc, b.proc); kinds = (a.kind, b.kind) }
              :: !results
        done
      done)
    state.accesses;
  List.sort_uniq compare !results

let racy_addrs ~nprocs trace =
  races_of_trace ~nprocs trace |> List.map (fun r -> r.addr) |> List.sort_uniq compare
