(** Independent offline happens-before race oracle.

    A classical post-mortem vector-clock detector over a full access trace
    (the Adve et al. style the paper cites). It shares no code with the
    online detector, so tests can require that both report exactly the same
    racy words on the same execution. *)

type event =
  | Read of int  (** word-aligned shared byte address *)
  | Write of int
  | Acquire of int  (** lock id, logged at grant time *)
  | Release of int
  | Barrier

type trace = (int * event) list
(** (proc, event) in the global order the execution produced them. A proc
    must not emit events between its barrier arrival and the arrival of the
    last proc. *)

type racy_word = {
  addr : int;
  procs : int * int;
  kinds : Proto.Race.access_kind * Proto.Race.access_kind;
}

val races_of_trace : nprocs:int -> trace -> racy_word list
(** All unordered cross-processor access pairs on the same word with at
    least one write, deduplicated by (addr, procs, kinds). *)

val racy_addrs : nprocs:int -> trace -> int list
(** Sorted distinct racy addresses. *)
