(** Check-list entries: concurrent interval pairs with overlapping page
    accesses, shipped on barrier release messages so processes can return
    the word-level bitmaps the master needs. *)

type entry = { a : Proto.Interval.id; b : Proto.Interval.id; pages : int list }

val bitmap_requests : entry list -> (Proto.Interval.id * int) list
(** Distinct (interval, page) bitmaps the master must retrieve. *)

val requests_for_proc : entry list -> proc:int -> (Proto.Interval.id * int) list

val size_bytes : entry list -> int
(** Wire size of the check list on the barrier release message. *)

val pp : Format.formatter -> entry -> unit
