(** Simulated network: reliable, ordered point-to-point messages with a
    latency + bandwidth cost model (CVM's UDP protocols on 155 Mbit ATM).

    Messages are delivered to a per-node handler at delivery time — the
    analogue of CVM servicing requests from a SIGIO handler — so protocol
    requests are serviced even while the node's application coroutine is
    computing or blocked. *)

type 'msg t

val create :
  ?rng:Rng.t -> Engine.t -> Cost.t -> Stats.t -> nodes:int -> size_of:('msg -> int) -> 'msg t
(** [size_of] gives the payload size in bytes; it drives both the bandwidth
    cost model and the byte counters in {!Stats}. [rng] feeds the optional
    delivery jitter ({!Cost.t.jitter_ns}); per-link FIFO order is preserved
    regardless. *)

val node_count : 'msg t -> int

val set_handler : 'msg t -> node:int -> ('msg -> unit) -> unit
(** Install the delivery handler for a node. Without a handler, messages
    queue for {!recv}. *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Asynchronous send; delivery happens after latency + bandwidth delay.
    A self-send is delivered after a small loopback delay. *)

val recv : 'msg t -> node:int -> 'msg
(** Blocking receive for handler-less nodes. Assumes the calling process's
    pid equals the node id (the cluster spawns one process per node). *)
