(** Deterministic binary min-heap of timed events.

    Entries are ordered by [time]; ties break by insertion order, so a run
    that schedules the same events in the same order always pops them in the
    same order. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:int -> 'a -> unit
(** [push t ~time v] inserts [v] at simulated time [time] (nanoseconds). *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the earliest entry, or [None] when empty. *)

val peek_time : 'a t -> int option
(** Time of the earliest entry without removing it. *)
