(** Deterministic seedable random number generator (SplitMix64).

    Independent from [Stdlib.Random] so simulations are reproducible no
    matter what other code does with the global generator. *)

type t

val create : seed:int -> t

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val split : t -> t
(** Derive an independent generator; used to give each simulated process its
    own stream so scheduling changes do not perturb workloads. *)

val shuffle_in_place : t -> 'a array -> unit
