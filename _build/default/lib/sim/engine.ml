(* Discrete-event simulation engine.

   Each simulated processor is a coroutine implemented with OCaml 5 effect
   handlers. A process runs real OCaml code and interacts with virtual time
   through two effects: [Advance n] consumes [n] simulated nanoseconds, and
   [Block] suspends the process until another party calls [wake].

   The scheduler is a single event loop over a deterministic priority queue,
   so a given program and seed always produce the same interleaving. *)

type pid = int

type proc_state = Created | Running | Blocked | Finished

type proc = {
  pid : pid;
  mutable state : proc_state;
  mutable cont : (unit, unit) Effect.Deep.continuation option;
  mutable wake_pending : bool;
  mutable blocked_label : string;  (* what the process is waiting for *)
}

type action = Start of proc * (pid -> unit) | Resume of proc | Thunk of (unit -> unit)

type t = {
  mutable now : int;
  queue : action Pqueue.t;
  mutable procs : proc list;  (* reverse spawn order *)
  mutable live : int;
}

exception Deadlock of string

type _ Effect.t += Advance : int -> unit Effect.t | Block : string -> unit Effect.t

let create () = { now = 0; queue = Pqueue.create (); procs = []; live = 0 }

let now t = t.now

let schedule t ~at f =
  if at < t.now then invalid_arg "Engine.schedule: cannot schedule in the past";
  Pqueue.push t.queue ~time:at (Thunk f)

let schedule_after t ~delay f = schedule t ~at:(t.now + delay) f

let spawn t body =
  let pid = List.length t.procs in
  let proc = { pid; state = Created; cont = None; wake_pending = false; blocked_label = "" } in
  t.procs <- proc :: t.procs;
  t.live <- t.live + 1;
  Pqueue.push t.queue ~time:t.now (Start (proc, body));
  pid

let find_proc t pid =
  match List.find_opt (fun p -> p.pid = pid) t.procs with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Engine: unknown pid %d" pid)

(* Effects performed by process bodies. *)

let advance ns =
  if ns < 0 then invalid_arg "Engine.advance: negative duration";
  if ns > 0 then Effect.perform (Advance ns)

let advance_f ns = advance (int_of_float ns)

let block ~label = Effect.perform (Block label)

let wake t pid =
  let proc = find_proc t pid in
  match proc.state with
  | Blocked ->
      proc.state <- Running;
      Pqueue.push t.queue ~time:t.now (Resume proc)
  | Created | Running -> proc.wake_pending <- true
  | Finished -> ()

(* The scheduler. *)

let run_fiber t proc body =
  let open Effect.Deep in
  proc.state <- Running;
  match_with body proc.pid
    {
      retc =
        (fun () ->
          proc.state <- Finished;
          t.live <- t.live - 1);
      exnc = (fun exn -> raise exn);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Advance ns ->
              Some
                (fun (k : (a, unit) continuation) ->
                  proc.cont <- Some k;
                  Pqueue.push t.queue ~time:(t.now + ns) (Resume proc))
          | Block label ->
              Some
                (fun (k : (a, unit) continuation) ->
                  if proc.wake_pending then begin
                    proc.wake_pending <- false;
                    continue k ()
                  end
                  else begin
                    proc.state <- Blocked;
                    proc.blocked_label <- label;
                    proc.cont <- Some k
                  end)
          | _ -> None);
    }

let resume_fiber proc =
  match proc.cont with
  | Some k ->
      proc.cont <- None;
      proc.state <- Running;
      Effect.Deep.continue k ()
  | None -> invalid_arg "Engine: resume of a process with no continuation"

let blocked_report t =
  t.procs
  |> List.filter (fun p -> p.state = Blocked)
  |> List.map (fun p -> Printf.sprintf "p%d waiting on %s" p.pid p.blocked_label)
  |> String.concat "; "

let run t =
  let rec loop () =
    match Pqueue.pop t.queue with
    | None ->
        if t.live > 0 then
          raise (Deadlock (Printf.sprintf "%d processes blocked: %s" t.live (blocked_report t)))
    | Some (time, action) ->
        t.now <- time;
        (match action with
        | Start (proc, body) -> run_fiber t proc body
        | Resume proc -> resume_fiber proc
        | Thunk f -> f ());
        loop ()
  in
  loop ()
