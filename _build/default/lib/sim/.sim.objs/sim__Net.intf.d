lib/sim/net.mli: Cost Engine Rng Stats
