lib/sim/cost.ml:
