lib/sim/engine.mli:
