lib/sim/net.ml: Array Cost Engine Printf Queue Rng Stats
