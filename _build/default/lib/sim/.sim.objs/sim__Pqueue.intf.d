lib/sim/pqueue.mli:
