lib/sim/engine.ml: Effect List Pqueue Printf String
