lib/sim/rng.mli:
