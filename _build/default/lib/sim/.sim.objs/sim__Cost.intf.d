lib/sim/cost.mli:
