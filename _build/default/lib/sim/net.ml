(* Simulated network: reliable, ordered point-to-point messages with a
   latency + bandwidth cost model, standing in for CVM's end-to-end UDP
   protocols on 155 Mbit ATM.

   Delivery invokes the destination node's handler directly, at delivery
   time, the way CVM services requests from a SIGIO handler: protocol
   requests are serviced even while the node's application code is blocked
   or computing. Handlers route replies to the waiting application
   coroutine themselves. *)

type 'msg node = {
  id : int;
  inbox : 'msg Queue.t;
  mutable handler : ('msg -> unit) option;
  mutable waiter : Engine.pid option;
}

type 'msg t = {
  engine : Engine.t;
  cost : Cost.t;
  stats : Stats.t;
  nodes : 'msg node array;
  size_of : 'msg -> int;
  rng : Rng.t;  (* jitter source (failure injection) *)
  last_delivery : int array;  (* per (src, dst) link: preserve FIFO under jitter *)
}

let create ?(rng = Rng.create ~seed:0) engine cost stats ~nodes ~size_of =
  {
    engine;
    cost;
    stats;
    size_of;
    rng;
    last_delivery = Array.make (nodes * nodes) 0;
    nodes = Array.init nodes (fun id -> { id; inbox = Queue.create (); handler = None; waiter = None });
  }

let node_count t = Array.length t.nodes

let set_handler t ~node f = t.nodes.(node).handler <- Some f

let deliver t node msg =
  match node.handler with
  | Some f -> f msg
  | None -> (
      Queue.add msg node.inbox;
      match node.waiter with
      | Some pid ->
          node.waiter <- None;
          Engine.wake t.engine pid
      | None -> ())

let send t ~src ~dst msg =
  if dst < 0 || dst >= Array.length t.nodes then invalid_arg "Net.send: bad destination";
  let bytes = t.size_of msg in
  t.stats.Stats.messages <- t.stats.Stats.messages + 1;
  t.stats.Stats.fragments <- t.stats.Stats.fragments + Cost.fragments t.cost ~bytes;
  t.stats.Stats.bytes <- t.stats.Stats.bytes + Cost.wire_bytes t.cost ~bytes;
  let delay = if src = dst then 2_000 else Cost.message_ns t.cost ~bytes in
  let delay =
    if t.cost.Cost.jitter_ns > 0 then delay + Rng.int t.rng (t.cost.Cost.jitter_ns + 1)
    else delay
  in
  (* a later send on the same link never overtakes an earlier one *)
  let link = (src * Array.length t.nodes) + dst in
  let at = max (Engine.now t.engine + delay) (t.last_delivery.(link) + 1) in
  t.last_delivery.(link) <- at;
  let node = t.nodes.(dst) in
  Engine.schedule t.engine ~at (fun () -> deliver t node msg)

(* Blocking receive for nodes that drain their inbox from application code
   (used by tests and simple examples; the DSM uses handlers instead). *)
let recv t ~node:id =
  let node = t.nodes.(id) in
  let rec wait () =
    match Queue.take_opt node.inbox with
    | Some msg -> msg
    | None ->
        node.waiter <- Some id;
        Engine.block ~label:(Printf.sprintf "net recv at node %d" id);
        wait ()
  in
  wait ()
