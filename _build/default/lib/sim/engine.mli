(** Deterministic discrete-event simulation engine.

    Simulated processors are coroutines built on OCaml 5 effect handlers.
    A process interacts with virtual time by [advance]-ing its clock and
    [block]-ing until woken. A single event loop drains a deterministic
    priority queue, so a given program always produces the same
    interleaving. *)

type t

type pid = int

exception Deadlock of string
(** Raised by [run] when the event queue drains while processes are still
    blocked; the payload lists who is waiting on what. This is how lost
    wakeups and lock cycles in simulated programs surface. *)

val create : unit -> t

val now : t -> int
(** Current simulated time in nanoseconds. *)

val spawn : t -> (pid -> unit) -> pid
(** Register a process; its body starts running when [run] is called.
    Pids are assigned densely from 0 in spawn order. *)

val schedule : t -> at:int -> (unit -> unit) -> unit
(** Run a thunk at an absolute simulated time (e.g. message delivery). *)

val schedule_after : t -> delay:int -> (unit -> unit) -> unit

val advance : int -> unit
(** From within a process: consume simulated nanoseconds. *)

val advance_f : float -> unit

val block : label:string -> unit
(** From within a process: suspend until [wake]. The label appears in
    [Deadlock] reports. A wakeup that arrives before the block is not lost:
    the next [block] returns immediately. *)

val wake : t -> pid -> unit
(** Make a blocked process runnable at the current simulated time. *)

val run : t -> unit
(** Drain the event queue. Raises [Deadlock] if processes remain blocked,
    and re-raises any exception escaping a process body. *)
