lib/proto/vclock.mli: Format
