lib/proto/race.ml: Format Interval List Printf
