lib/proto/interval.ml: Format List String Vclock
