lib/proto/vclock.ml: Array Format String
