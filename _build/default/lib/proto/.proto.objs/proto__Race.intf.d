lib/proto/race.mli: Format Interval
