(** Vector clocks — the paper's interval "version vectors".

    [t.(p)] is the highest interval index of processor [p] whose effects are
    visible. Interval ordering (happens-before-1) reduces to pointwise
    comparison, and concurrency of two specific intervals reduces to two
    integer comparisons (see {!Interval.precedes}). *)

type t = int array

val create : int -> t
(** All-zero clock for [nprocs] processors. *)

val size : t -> int
val copy : t -> t
val get : t -> int -> int
val set : t -> int -> int -> unit
val incr : t -> int -> unit

val merge_into : dst:t -> t -> unit
(** Pointwise maximum, in place — performed at acquires and barriers. *)

val merge : t -> t -> t

val leq : t -> t -> bool
(** Pointwise [<=]: the happens-before-1 order on clocks. *)

val equal : t -> t -> bool

val concurrent : t -> t -> bool
(** Neither [leq a b] nor [leq b a]. *)

val size_bytes : t -> int
(** Wire size (4 bytes per entry). *)

val pp : Format.formatter -> t -> unit
