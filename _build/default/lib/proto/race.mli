(** Data-race reports: a racy word plus the pair of concurrent intervals
    that accessed it, at least one access being a write. *)

type access_kind = Read | Write

val pp_kind : Format.formatter -> access_kind -> unit

type t = {
  addr : int;
  page : int;
  word : int;
  first : Interval.id * access_kind;
  second : Interval.id * access_kind;
  epoch : int;
}

val normalize : t -> t
(** Canonical intra-pair order, so reports compare stably. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val is_write_write : t -> bool
val pp : Format.formatter -> t -> unit

val pp_named : name_of:(int -> string) -> Format.formatter -> t -> unit
(** Like {!pp} but resolving the racy address through a symbol table
    (e.g. {!Mem.Symtab.name_of}). *)

val dedup : t list -> t list
(** Normalized, sorted, duplicate-free. *)
