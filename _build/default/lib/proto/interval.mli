(** Process intervals — the unit of ordering in LRC.

    A new interval starts at every acquire and every release. The record
    carries what CVM ships on synchronization messages: id, version vector,
    write notices, and (when race detection is on) read notices. Word-level
    bitmaps and multi-writer diffs stay with the creating processor and are
    fetched on demand. *)

type id = { proc : int; index : int }

type t = {
  id : id;
  vc : Vclock.t;
  epoch : int;
  mutable write_pages : int list;
  mutable read_pages : int list;
  mutable closed : bool;
}

val create : proc:int -> index:int -> vc:Vclock.t -> epoch:int -> t
(** Requires [vc.(proc) = index]. *)

val id : t -> id
val proc : t -> int
val index : t -> int

val add_write_page : t -> int -> unit
val add_read_page : t -> int -> unit

val precedes : t -> t -> bool
(** Happens-before-1 on intervals, decided by the constant-time two-integer
    comparison of the paper: [precedes a b] iff [b.vc.(a.proc) >= a.index]. *)

val concurrent : t -> t -> bool

val overlapping_pages : t -> t -> int list
(** Pages written by both intervals, or read by one and written by the
    other — the candidates the detector puts on the check list. *)

val notice_count : t -> int

val size_bytes : with_read_notices:bool -> t -> int
(** Wire size of the interval structure. Read notices only ship when race
    detection is enabled; their bytes are what Table 3's "Msg Ohead"
    measures. *)

val read_notice_bytes : t -> int

val compare_ids : id -> id -> int

val pp_id : Format.formatter -> id -> unit
val pp : Format.formatter -> t -> unit
