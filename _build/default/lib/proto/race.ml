(* Race reports. The system prints the shared-segment address of the
   affected variable together with the interval indexes (paper §6.1);
   source sites are attached when the instrumentation's watch mode has
   program-counter information for the address. *)

type access_kind = Read | Write

let pp_kind ppf = function
  | Read -> Format.pp_print_string ppf "read"
  | Write -> Format.pp_print_string ppf "write"

type t = {
  addr : int;  (* shared-segment byte address of the racy word *)
  page : int;
  word : int;  (* word index within the page *)
  first : Interval.id * access_kind;
  second : Interval.id * access_kind;
  epoch : int;
}

let kind_rank = function Write -> 0 | Read -> 1

let normalize t =
  (* Canonical order inside the pair so that duplicate detection and
     set-comparison against the oracle are stable. *)
  let (ia, ka), (ib, kb) = (t.first, t.second) in
  if
    Interval.compare_ids ia ib > 0
    || (Interval.compare_ids ia ib = 0 && kind_rank ka > kind_rank kb)
  then { t with first = (ib, kb); second = (ia, ka) }
  else t

let compare a b =
  let a = normalize a and b = normalize b in
  compare
    (a.addr, fst a.first, snd a.first, fst a.second, snd a.second)
    (b.addr, fst b.first, snd b.first, fst b.second, snd b.second)

let equal a b = compare a b = 0

let is_write_write t = snd t.first = Write && snd t.second = Write

let pp_named ~name_of ppf t =
  let (ia, ka), (ib, kb) = (t.first, t.second) in
  Format.fprintf ppf "data race at %s (page %d word %d, epoch %d): %a by %a vs %a by %a"
    (name_of t.addr) t.page t.word t.epoch pp_kind ka Interval.pp_id ia pp_kind kb
    Interval.pp_id ib

let pp ppf t = pp_named ~name_of:(Printf.sprintf "0x%08x") ppf t

let dedup races = List.sort_uniq compare (List.map normalize races)
