(* Common shape of the four benchmark applications. The driver, the CLI,
   the benchmarks and the tests all consume this record. *)

type t = {
  name : string;
  input_description : string;  (* Table 1's "Input Set" column *)
  synchronization : string;  (* Table 1's "Synchronization" column *)
  memory_bytes : int;  (* size of the shared data segment *)
  binary : unit -> Instrument.Binary.t;  (* synthetic image for Table 2 *)
  body : Lrc.Dsm.node -> unit;
      (* SPMD body run by every simulated processor; raises on a failed
         self-check so broken coherence can never pass silently *)
}

let pages_needed t ~page_size = ((t.memory_bytes + page_size - 1) / page_size) + 4

(* Shared helper: build a synthetic binary from Table-2-style section
   counts, with the usual ~3:1 load:store mix. *)
let synthetic_binary ~name ~stack ~static_data ~library_name ~library ~cvm ~instrumented () =
  let split n = (n * 3 / 4, n - (n * 3 / 4)) in
  let app_part addressing prefix n =
    let loads, stores = split n in
    Instrument.Binary.bulk ~kind:Instrument.Binary.Load ~addressing
      ~origin:Instrument.Binary.App_text ~prefix:(prefix ^ ".ld") loads
    @ Instrument.Binary.bulk ~kind:Instrument.Binary.Store ~addressing
        ~origin:Instrument.Binary.App_text ~prefix:(prefix ^ ".st") stores
  in
  let lib_loads, lib_stores = split library in
  let cvm_loads, cvm_stores = split cvm in
  Instrument.Binary.make ~name
    (app_part Instrument.Binary.Frame_pointer (name ^ ".stack") stack
    @ app_part Instrument.Binary.Global_pointer (name ^ ".static") static_data
    @ Instrument.Binary.section ~origin:(Instrument.Binary.Library library_name)
        ~prefix:(name ^ ".lib") ~loads:lib_loads ~stores:lib_stores
    @ Instrument.Binary.section ~origin:Instrument.Binary.Cvm_runtime ~prefix:(name ^ ".cvm")
        ~loads:cvm_loads ~stores:cvm_stores
    @ app_part Instrument.Binary.Computed (name ^ ".shared") instrumented)
