(* Name-indexed access to the four applications, at paper scale and at the
   reduced test scale. *)

type scale = Paper | Small

let all_names = [ "fft"; "sor"; "tsp"; "water" ]

(* the paper's four plus the extra workloads this library ships *)
let extended_names = all_names @ [ "lu" ]

let make ?(scale = Paper) name =
  match (String.lowercase_ascii name, scale) with
  | "fft", Paper -> Fft.make Fft.paper_params
  | "fft", Small -> Fft.make Fft.small_params
  | "sor", Paper -> Sor.make Sor.paper_params
  | "sor", Small -> Sor.make Sor.small_params
  | "tsp", Paper -> Tsp.make Tsp.paper_params
  | "tsp", Small -> Tsp.make Tsp.small_params
  | "water", Paper -> Water.make Water.paper_params
  | "water", Small -> Water.make Water.small_params
  | "lu", Paper -> Lu.make Lu.paper_params
  | "lu", Small -> Lu.make Lu.small_params
  | other, _ -> invalid_arg (Printf.sprintf "Registry.make: unknown application %S" other)

let all ?scale () = List.map (make ?scale) all_names
