lib/apps/lu.ml: App Array Lrc Printf
