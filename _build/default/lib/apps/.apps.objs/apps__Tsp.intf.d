lib/apps/tsp.mli: App
