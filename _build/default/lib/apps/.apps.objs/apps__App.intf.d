lib/apps/app.mli: Instrument Lrc
