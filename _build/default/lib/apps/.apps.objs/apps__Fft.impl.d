lib/apps/fft.ml: App Array Float Lrc Printf
