lib/apps/water.ml: App Array Float Fun List Lrc Printf
