lib/apps/sor.mli: App
