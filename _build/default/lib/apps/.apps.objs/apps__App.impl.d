lib/apps/app.ml: Instrument Lrc
