lib/apps/water.mli: App
