lib/apps/tsp.ml: App Array Float List Lrc Printf Sim
