lib/apps/fft.mli: App
