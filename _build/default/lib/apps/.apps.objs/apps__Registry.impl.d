lib/apps/registry.ml: Fft List Lu Printf Sor String Tsp Water
