lib/apps/sor.ml: App Array Lrc Printf
