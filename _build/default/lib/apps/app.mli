(** Common shape of the four benchmark applications, consumed by the
    driver, CLI, benchmarks and tests. *)

type t = {
  name : string;
  input_description : string;  (** Table 1's "Input Set" column *)
  synchronization : string;  (** Table 1's "Synchronization" column *)
  memory_bytes : int;  (** size of the shared data segment *)
  binary : unit -> Instrument.Binary.t;  (** synthetic image for Table 2 *)
  body : Lrc.Dsm.node -> unit;
      (** SPMD body run by every simulated processor; raises on a failed
          self-check so broken coherence can never pass silently *)
}

val pages_needed : t -> page_size:int -> int

val synthetic_binary :
  name:string ->
  stack:int ->
  static_data:int ->
  library_name:string ->
  library:int ->
  cvm:int ->
  instrumented:int ->
  unit ->
  Instrument.Binary.t
(** Build a synthetic binary from Table-2-style section counts with the
    usual ~3:1 load:store mix. *)
