(** LU — dense LU factorization without pivoting (column-cyclic), a
    classic software-DSM workload. Race-free: all cross-processor sharing
    is reads of the pivot column/row after a barrier. Not part of the
    paper's evaluation; an extra workload for the detector. *)

type params = { n : int }

val paper_params : params
val small_params : params

val input : int -> int -> int -> float
(** Deterministic, diagonally dominant input matrix. *)

val reference : params -> float array array
(** Sequential factorization with the same operation order, so the
    parallel result matches bit-exactly. *)

val make : params -> App.t
