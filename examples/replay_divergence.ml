(* Record a lossy run, verify the pristine log replays cleanly, then
   flip a single wire-frame fate inside the log and watch the replay
   verifier pinpoint the first divergence — event index, expected vs.
   actual, and what every processor was last doing.

     dune exec examples/replay_divergence.exe
*)

let lossy =
  {
    Lrc.Config.default with
    Lrc.Config.fault = { Sim.Fault.none with Sim.Fault.drop = 0.2 };
    transport = Some Sim.Transport.default_config;
  }

let () =
  Format.printf "recording sor on 4 processors over a 20%%-drop wire...@.";
  let outcome, log =
    Core.Trace_run.record ~cfg:lossy ~app_name:"sor" ~scale:Apps.Registry.Small ~nprocs:4 ()
  in
  let decoded = Trace.Codec.decode log in
  Format.printf "  %d events, %d bytes, checksum %x@.@." (Array.length decoded.Trace.Codec.events)
    (String.length log) outcome.Core.Driver.mem_checksum;

  Format.printf "replaying the pristine log...@.";
  let clean = Core.Trace_run.replay log in
  Format.printf "  %s@.@."
    (if Core.Trace_run.clean clean then "verified: identical execution"
     else "UNEXPECTED divergence");

  (* Corrupt the log: find a frame the wire dropped and pretend it was
     delivered. The re-execution still drops it (the fault RNG is part
     of the replayed configuration), so the streams split right there. *)
  let events = Array.copy decoded.Trace.Codec.events in
  let mutated = ref None in
  Array.iteri
    (fun i (time, e) ->
      match (e, !mutated) with
      | Trace.Event.Fault f, None when f.outcome = Trace.Event.Dropped ->
          events.(i) <-
            ( time,
              Trace.Event.Fault
                { f with outcome = Trace.Event.Passed { copies = 1; extra_delay_ns = 0 } } );
          mutated := Some i
      | _ -> ())
    events;
  let k = match !mutated with Some k -> k | None -> failwith "no dropped frame in the log?" in
  Format.printf "flipping event %d from Dropped to Passed and replaying...@." k;
  let r = Core.Trace_run.replay (Trace.Codec.encode decoded.Trace.Codec.meta events) in
  match r.Core.Trace_run.rr_divergence with
  | Some d -> Format.printf "@.%a@." Trace.Replay.pp_divergence d
  | None -> Format.printf "UNEXPECTED: the edit went unnoticed@."
