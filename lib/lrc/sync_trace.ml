(* Re-export: synchronization-order recording moved to
   {!Coherence.Sync_trace} (it is backend-independent), keeping the
   [Lrc.Sync_trace] spelling for historical call sites. *)

include Coherence.Sync_trace
