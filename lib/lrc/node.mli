(** Per-processor DSM state and protocol engine — the CVM analogue.

    Application coroutines call the access and synchronization operations;
    protocol messages from other processors are serviced by
    [handle_message], which the network invokes at delivery time (CVM's
    SIGIO handler). Handlers never block; replies the application waits
    for are parked and the application coroutine is woken.

    Processor 0 additionally plays the three central roles of the paper's
    prototype: lock manager, page manager (single-writer ownership
    directory) and barrier master, where the race-detection algorithm
    runs. Most programs should use the friendlier {!Dsm} wrappers. *)

type t

(** Shared state of a cluster, built once by {!Cluster} and handed to
    every node. *)
type runtime = {
  engine : Sim.Engine.t;
  cost : Sim.Cost.t;
  stats : Sim.Stats.t;
  cfg : Config.t;
  geometry : Mem.Geometry.t;
  mutable net : Message.t Sim.Net.t option;  (** wired after node creation *)
  races : Proto.Race.t list ref;  (** master appends each epoch's findings *)
  trace : (int * Racedetect.Oracle.event) list ref;  (** reversed event log *)
  timed : (int * int * Racedetect.Oracle.event) list ref;
      (** same events with simulated timestamps, for timeline rendering *)
  recorder : Sync_trace.recorder option;
  symtab : Mem.Symtab.t;  (** names for shared allocations (section 6.1) *)
  node_stats : Sim.Stats.t array;
      (** per-node counters, indexed by processor id. Legacy engine: every
          cell aliases [stats], so charging "this node's" record is
          charging the shared one. Sharded engine: distinct records, one
          per shard, folded into [stats] by the cluster after the run. *)
  node_trace : (int * Racedetect.Oracle.event) list ref array;
      (** per-node oracle event logs, aliased/merged like [node_stats] *)
  node_timed : (int * int * Racedetect.Oracle.event) list ref array;
}

val create : runtime -> id:int -> nprocs:int -> t

val handle_message : t -> Message.t -> unit
(** Network delivery entry point; runs in handler context and never
    blocks. *)

(** {1 Shared-memory accesses} *)

val read_word : t -> ?site:string -> int -> int64
(** Read the shared word at a byte address. Faults, fetches and
    instrumentation happen as the configuration dictates. [site] is the
    symbolic "program counter" recorded by watch mode (section 6.1). *)

val write_word : t -> ?site:string -> int -> int64 -> unit

val read_word_int : t -> ?site:string -> int -> int
(** Same access, with the value as [Int64.to_int] of the word — the fast
    path for integer programs: no boxed int64 is materialized. *)

val write_word_int : t -> ?site:string -> int -> int -> unit

val read_word_float : t -> ?site:string -> int -> float
(** Same access, with the word interpreted as a float bit pattern. *)

val write_word_float : t -> ?site:string -> int -> float -> unit

val compute : t -> float -> unit
(** Model [ops] abstract instructions of private computation. *)

val touch_private : t -> int -> unit
(** Model [n] private accesses that survived static elimination: at
    runtime they pay the analysis-routine cost and count as private. *)

val idle : t -> float -> unit
(** Advance simulated time immediately (unlike {!compute}, which accrues
    cost lazily). Used to stage interleavings. *)

(** {1 Synchronization} *)

val lock : t -> int -> unit
val unlock : t -> int -> unit
val barrier : t -> unit

(** {1 Allocation} *)

val malloc : t -> ?name:string -> ?align:int -> int -> int
(** Bump allocation over the shared segment; SPMD programs calling at the
    same program points get identical addresses on every node. [name]
    registers the range in the cluster symbol table (once, by processor
    0), so race reports print the variable instead of a raw address. *)

val set_alloc_next : t -> int -> unit
(** Used by {!Cluster.alloc} to keep per-node allocators in step. *)

(** {1 Introspection} *)

val id : t -> int
val nprocs : t -> int
val epoch : t -> int
val current_interval : t -> Proto.Interval.t
val geometry : t -> Mem.Geometry.t
val cost : t -> Sim.Cost.t
val stats : t -> Sim.Stats.t
val config : t -> Config.t
val is_manager : t -> bool

val coherent_page_raw : t -> int -> Bytes.t option
(** This node's copy of a page, if coherent: valid and with no pending
    write notices. All coherent copies of a page agree once the run is
    over, so {!Cluster.memory_checksum} can hash any one of them. *)

val service_diagnostics : t -> string list
(** Queue depths of the central services hosted at this node (parked lock
    requests, queued page-ownership requests, barrier arrivals) — only
    nonempty at the manager. Fed to {!Sim.Engine.add_diagnostic} so a
    deadlock diagnosis shows where requests are stuck. *)

val set_access_observer :
  t -> (site:string -> addr:int -> Proto.Race.access_kind -> unit) -> unit
(** Hook every instrumented shared access (watch mode, section 6.1). *)

val retained_site :
  t -> interval:Proto.Interval.id -> page:int -> word:int -> kind:Proto.Race.access_kind ->
  string option
(** With [retain_sites], the site recorded for an access of this interval
    (the single-run identification alternative of section 6.1). *)

val view : t -> Coherence.Node.t
(** The backend-independent processor handle over this node — what
    {!Cluster.run} hands to application bodies. *)
