(* Re-export: the cluster configuration moved to {!Coherence.Config} when
   the coherence-protocol interface was factored out of this library, so
   every backend shares one configuration type. [Lrc.Config] remains the
   spelling the historical call sites use. *)

include Coherence.Config
