(* Per-processor DSM state and protocol engine — the CVM analogue.

   Each simulated processor owns one [t]. Its application coroutine calls
   the access/synchronization operations in {!Dsm}; protocol messages from
   other processors are serviced by [handle_message], which the network
   invokes at delivery time (CVM's SIGIO handler). Handlers never block;
   replies the application waits for are parked in [replies] and the
   application coroutine is woken.

   Processor 0 additionally plays three central roles, as in the paper's
   prototype: lock manager, page manager (single-writer ownership
   directory), and barrier master (where the race-detection algorithm
   runs).

   Delivery-semantics audit: these handlers are NOT idempotent. A
   re-delivered Lock_req would enqueue a second grant, a duplicated
   Diff_data would re-apply a diff against a base it already mutated, and
   a repeated Barrier_arrive would corrupt the arrival count. They also
   assume per-link FIFO (e.g. Own_data must not overtake the Inv that
   precedes it). The network therefore owes this layer exactly-once FIFO
   delivery: the default wire provides it directly, and in lossy mode
   {!Sim.Transport} (sequence numbers, cumulative acks, retransmission,
   duplicate suppression) restores it before messages reach
   [handle_message]. *)

type pstate = P_invalid | P_read | P_write

type page_entry = {
  data : Mem.Page.t;  (* local copy; contents are retained across invalidation
                         because they are the base diffs apply to *)
  mutable state : pstate;
  mutable owner : bool;  (* single-writer: are we the one writable copy? *)
  mutable twin : Mem.Page.t option;  (* multi-writer / home-based *)
  mutable pending : Proto.Interval.id list;  (* write notices not yet applied *)
  needed : Proto.Vclock.t;  (* home-based: knowledge a fetched copy must cover *)
}

(* Home-based LRC: the authoritative copy a home keeps for each page it
   owns, with the version vector its flushes have reached and the fetches
   waiting for a version that has not arrived yet. *)
type home_page = {
  home_data : Mem.Page.t;
  mutable home_version : Proto.Vclock.t;
  mutable home_waiting : (int * Proto.Vclock.t) list;
}

type lock_local = {
  mutable held : bool;
  mutable expecting : bool;  (* we sent Lock_req and await the grant *)
  mutable pending_seq : int option;  (* manager sequence of our request *)
  mutable next_request : (int * Proto.Vclock.t) option;  (* forwarded requester *)
  mutable release_vc : Proto.Vclock.t option;  (* knowledge at our last release *)
}

type page_mgr = {
  mutable page_owner : int;
  mutable busy : bool;
  waiting : Message.t Queue.t;
}

type lock_mgr = { mutable token : int; mutable next_seq : int; parked : Message.t Queue.t }

type barrier_master = {
  mutable arrivals : (int * Proto.Vclock.t * Proto.Interval.t list) list;
  mutable pending_checks : Racedetect.Checklist.entry list;
  mutable expected_replies : int;
  collected : (Proto.Interval.id * int, Racedetect.Detector.bitmap_pair) Hashtbl.t;
  mutable race_seen : bool;  (* for first_race_only suppression *)
  mutable master_vc : Proto.Vclock.t;  (* merged arrival clocks *)
  mutable check_bytes : int;  (* wire size of the check list *)
  mutable processing_epoch : int;  (* epoch under analysis *)
}

type runtime = {
  engine : Sim.Engine.t;
  cost : Sim.Cost.t;
  stats : Sim.Stats.t;
  cfg : Config.t;
  geometry : Mem.Geometry.t;
  mutable net : Message.t Sim.Net.t option;  (* filled in by Cluster *)
  races : Proto.Race.t list ref;
  trace : (int * Racedetect.Oracle.event) list ref;  (* reversed *)
  timed : (int * int * Racedetect.Oracle.event) list ref;  (* (ns, proc, ev) *)
  recorder : Sync_trace.recorder option;
  symtab : Mem.Symtab.t;  (* names for shared allocations (section 6.1) *)
  (* Per-node views of [stats]/[trace]/[timed]. On the legacy engine every
     cell aliases the shared record/refs above — behaviour is unchanged.
     On the sharded engine each cell is private to its node's shard, so
     concurrent shards never write the same structure; Cluster folds them
     back deterministically after the run. *)
  node_stats : Sim.Stats.t array;
  node_trace : (int * Racedetect.Oracle.event) list ref array;
  node_timed : (int * int * Racedetect.Oracle.event) list ref array;
}

type t = {
  rt : runtime;
  stats : Sim.Stats.t;  (* = rt.node_stats.(id) *)
  trace_buf : (int * Racedetect.Oracle.event) list ref;  (* = rt.node_trace.(id) *)
  timed_buf : (int * int * Racedetect.Oracle.event) list ref;  (* = rt.node_timed.(id) *)
  id : int;
  nprocs : int;
  vc : Proto.Vclock.t;
  mutable cur : Proto.Interval.t;
  mutable epoch : int;
  log : (Proto.Interval.id, Proto.Interval.t) Hashtbl.t;
  applied : (Proto.Interval.id, unit) Hashtbl.t;  (* notices already applied *)
  max_seen : int array;  (* per-proc highest interval index present in [log] *)
  mutable my_closed : Proto.Interval.t list;  (* own closed, this epoch *)
  pages : page_entry array;
  mutable rw_pages : int list;  (* pages currently P_write (for downgrade) *)
  locks : (int, lock_local) Hashtbl.t;
  (* instrumentation: current interval's word-level access bitmaps. The
     hashtables are authoritative (their iteration order fixes the order
     of read-notice emission in [snapshot_bitmaps]); the arrays are O(1)
     per-access handles onto the same bitmaps. *)
  read_bits : (int, Mem.Bitmap.t) Hashtbl.t;
  write_bits : (int, Mem.Bitmap.t) Hashtbl.t;
  read_cache : Mem.Bitmap.t option array;
  write_cache : Mem.Bitmap.t option array;
  bitmap_store : (Proto.Interval.id * int, Racedetect.Detector.bitmap_pair) Hashtbl.t;
  (* diffs tagged with the creating interval's epoch, for interval GC *)
  diff_store : (Proto.Interval.id * int, Mem.Diff.t * int) Hashtbl.t;
  mutable gc_drop_bound : int;
      (* two-phase diff GC: epoch bound recorded at the last validate
         barrier, executed (diffs with creation epoch < bound dropped) at
         the next one; -1 when no drop is scheduled *)
  (* precomputed shift/mask address geometry, valid when [g_fast] (page
     and word sizes both powers of two, base page-aligned) *)
  g_fast : bool;
  g_base : int;
  g_limit : int;
  g_page_shift : int;
  g_page_mask : int;
  g_word_shift : int;
  g_word_mask : int;
  (* section 6.1 single-run site retention: (page, word, kind) -> site for
     the current interval, snapshotted per closed interval and KEPT for
     the whole run — the storage cost the paper calls prohibitive *)
  cur_sites : (int * int * Proto.Race.access_kind, string) Hashtbl.t;
  site_store : (Proto.Interval.id * int * int * Proto.Race.access_kind, string) Hashtbl.t;
  (* statically race-free sites whose runtime check is elided (the MHP
     analysis' complement set); empty when elision is off *)
  elide : (string, unit) Hashtbl.t;
  mutable replies : Message.t list;  (* replies awaited by the app coroutine *)
  debt : float array;
      (* accumulated local compute time not yet advanced; a 1-element float
         array so the several updates per access stay unboxed *)
  mutable alloc_next : int;  (* bump allocator over the shared segment *)
  mutable access_observer :
    (site:string -> addr:int -> Proto.Race.access_kind -> unit) option;
      (* hook for the two-run reference-identification scheme (section 6.1) *)
  (* central services, only populated at processor 0 *)
  page_mgrs : page_mgr array;
  lock_mgrs : (int, lock_mgr) Hashtbl.t;
  barrier : barrier_master;
  home_pages : (int, home_page) Hashtbl.t;  (* pages homed at this node *)
}

let is_manager t = t.id = 0

let net t =
  match t.rt.net with Some n -> n | None -> invalid_arg "Node: network not wired"

let words_per_page t = Mem.Geometry.words_per_page t.rt.geometry

(* ------------------------------------------------------------------ *)
(* Time accounting                                                     *)

let charge_local t ns = Array.unsafe_set t.debt 0 (Array.unsafe_get t.debt 0 +. ns)

let charge_category t category ns =
  Sim.Stats.charge t.stats category ns;
  charge_local t ns

let flush_time t =
  let debt = Array.unsafe_get t.debt 0 in
  if debt >= 1.0 then begin
    let ns = int_of_float debt in
    Array.unsafe_set t.debt 0 (debt -. float_of_int ns);
    Sim.Engine.advance ns
  end

(* ------------------------------------------------------------------ *)
(* Trace recording (oracle cross-validation)                           *)

let emit_trace t event =
  if t.rt.cfg.Config.record_trace then begin
    t.trace_buf := (t.id, event) :: !(t.trace_buf);
    t.timed_buf := (Sim.Engine.now t.rt.engine, t.id, event) :: !(t.timed_buf)
  end

(* Access-path variants that only construct the event when a trace is
   actually being recorded (the constructor argument to [emit_trace] would
   otherwise allocate on every shared access). *)
let trace_read t addr =
  if t.rt.cfg.Config.record_trace then emit_trace t (Racedetect.Oracle.Read addr)

let trace_write t addr =
  if t.rt.cfg.Config.record_trace then emit_trace t (Racedetect.Oracle.Write addr)

(* Record/replay sink: protocol-level events carry context (vector clocks,
   interval ids, page lists) the sim layer's probe cannot see, so they are
   emitted here. One branch when no tracer is configured. *)
(* The sink is shared across nodes, so on the sharded engine the emission
   is deferred to the window barrier ([Engine.defer] is immediate on the
   legacy engine); [Engine.now] inside the thunk reads the recorded
   emission time during a deferred flush. *)
let emit_sink t event =
  match t.rt.cfg.Config.tracer with
  | Some sink ->
      Sim.Engine.defer t.rt.engine (fun () ->
          Trace.Sink.emit sink ~time:(Sim.Engine.now t.rt.engine) event)
  | None -> ()

let tracing t = t.rt.cfg.Config.tracer <> None

(* Temporary debugging aid: set CVM_DEBUG_ADDR to a shared address to trace
   every event that touches its word. *)
let debug_addr =
  match Sys.getenv_opt "CVM_DEBUG_ADDR" with
  | Some s -> Some (int_of_string s)
  | None -> None

let debug_page t =
  match debug_addr with
  | Some a when Mem.Geometry.in_shared t.rt.geometry a ->
      Some (Mem.Geometry.page_of_addr t.rt.geometry a, Mem.Geometry.word_in_page t.rt.geometry a)
  | _ -> None

let debug_enabled = debug_addr <> None

let debug_event t ~page fmt =
  match debug_page t with
  | Some (dp, dw) when dp = page ->
      let entry = t.pages.(page) in
      Printf.eprintf "[%10d p%d] " (Sim.Engine.now t.rt.engine) t.id;
      Printf.kfprintf
        (fun oc ->
          Printf.fprintf oc " | word=%Ld state=%s owner=%b\n%!"
            (Mem.Page.get_int64 entry.data dw)
            (match entry.state with P_invalid -> "I" | P_read -> "R" | P_write -> "W")
            entry.owner)
        stderr fmt
  | _ -> Printf.ikfprintf (fun _ -> ()) stderr fmt


(* ------------------------------------------------------------------ *)
(* Interval lifecycle                                                  *)

let detect_on t = t.rt.cfg.Config.detect

let stores_from_diffs t =
  t.rt.cfg.Config.stores_from_diffs && t.rt.cfg.Config.protocol = Config.Multi_writer

let send t ~dst msg =
  let with_read_notices = detect_on t in
  (match msg with
  | Message.Lock_grant { intervals; _ }
  | Message.Barrier_arrive { intervals; _ }
  | Message.Barrier_release { intervals; _ } ->
      if with_read_notices then begin
        let extra = Message.read_notice_bytes intervals in
        t.stats.Sim.Stats.read_notice_bytes <-
          t.stats.Sim.Stats.read_notice_bytes + extra;
        Sim.Stats.charge t.stats Sim.Stats.Cvm_mods
          (t.rt.cost.Sim.Cost.byte_ns *. float_of_int extra)
      end
  | Message.Bitmap_req _ | Message.Bitmap_reply _ ->
      t.stats.Sim.Stats.bitmap_round_bytes <-
        t.stats.Sim.Stats.bitmap_round_bytes + Message.size ~with_read_notices msg
  | _ -> ());
  Sim.Net.send (net t) ~src:t.id ~dst msg

(* Deferred send used by handlers that model serialized master-side work:
   the message leaves after the master has "spent" the computation time. *)
let send_after t ~delay ~dst msg =
  if delay <= 0 then send t ~dst msg
  else Sim.Engine.schedule_after t.rt.engine ~delay (fun () -> send t ~dst msg)


let snapshot_bitmaps t interval =
  (* Freeze the current interval's access bitmaps; read notices are derived
     here (modification (ii) of the paper). Bitmaps stay local until the
     barrier master asks for them in the extra round. *)
  let id = Proto.Interval.id interval in
  let pages = Hashtbl.create 8 in
  Hashtbl.iter (fun page _ -> Hashtbl.replace pages page ()) t.read_bits;
  Hashtbl.iter (fun page _ -> Hashtbl.replace pages page ()) t.write_bits;
  Hashtbl.iter
    (fun page () ->
      let reads =
        match Hashtbl.find_opt t.read_bits page with
        | Some bm -> bm
        | None -> Mem.Bitmap.create (words_per_page t)
      in
      let writes =
        match Hashtbl.find_opt t.write_bits page with
        | Some bm -> bm
        | None -> Mem.Bitmap.create (words_per_page t)
      in
      if Mem.Bitmap.any_set reads then Proto.Interval.add_read_page interval page;
      Hashtbl.replace t.bitmap_store (id, page) { Racedetect.Detector.reads; writes };
      t.stats.Sim.Stats.bitmaps_total <- t.stats.Sim.Stats.bitmaps_total + 1;
      charge_category t Sim.Stats.Cvm_mods t.rt.cost.Sim.Cost.notice_setup_ns)
    pages;
  Hashtbl.iter
    (fun page () ->
      Array.unsafe_set t.read_cache page None;
      Array.unsafe_set t.write_cache page None)
    pages;
  Hashtbl.reset t.read_bits;
  Hashtbl.reset t.write_bits;
  if t.rt.cfg.Config.retain_sites then begin
    Hashtbl.iter
      (fun (page, word, kind) site ->
        t.stats.Sim.Stats.site_entries <- t.stats.Sim.Stats.site_entries + 1;
        Hashtbl.replace t.site_store (id, page, word, kind) site)
      t.cur_sites;
    Hashtbl.reset t.cur_sites
  end

let make_diffs t interval =
  (* Multi-writer: summarize this interval's writes as word-level diffs.
     With [stores_from_diffs], the diffs also provide the write bitmaps
     (section 6.5's optimization). *)
  let id = Proto.Interval.id interval in
  List.iter
    (fun page ->
      let entry = t.pages.(page) in
      match entry.twin with
      | None -> ()
      | Some twin ->
          let diff = Mem.Diff.create ~page ~twin ~current:entry.data in
          entry.twin <- None;
          entry.state <- P_read;
          if debug_enabled then
            debug_event t ~page "close diff p%d.%d (%d words)" id.Proto.Interval.proc
              id.Proto.Interval.index (Mem.Diff.word_count diff);
          Hashtbl.replace t.diff_store (id, page) (diff, interval.Proto.Interval.epoch);
          t.stats.Sim.Stats.diffs_created <- t.stats.Sim.Stats.diffs_created + 1;
          t.stats.Sim.Stats.diff_words <-
            t.stats.Sim.Stats.diff_words + Mem.Diff.word_count diff;
          charge_local t
            (t.rt.cost.Sim.Cost.diff_word_ns *. float_of_int (words_per_page t));
          if detect_on t && stores_from_diffs t then begin
            let writes = Mem.Diff.to_bitmap diff ~nbits:(words_per_page t) in
            let reads =
              match Hashtbl.find_opt t.bitmap_store (id, page) with
              | Some pair -> pair.Racedetect.Detector.reads
              | None -> Mem.Bitmap.create (words_per_page t)
            in
            Hashtbl.replace t.bitmap_store (id, page) { Racedetect.Detector.reads; writes }
          end)
    interval.Proto.Interval.write_pages

let home_of t page = page mod t.nprocs

let flush_diffs t interval =
  (* Home-based LRC: at each release, summarize this interval's writes as
     diffs and flush them eagerly to each page's home. Nothing is retained
     locally — the home copy is the authority faults fetch from. *)
  let id = Proto.Interval.id interval in
  List.iter
    (fun page ->
      let entry = t.pages.(page) in
      match entry.twin with
      | None -> ()
      | Some twin ->
          let diff = Mem.Diff.create ~page ~twin ~current:entry.data in
          entry.twin <- None;
          entry.state <- P_read;
          t.stats.Sim.Stats.diffs_created <- t.stats.Sim.Stats.diffs_created + 1;
          t.stats.Sim.Stats.diff_words <-
            t.stats.Sim.Stats.diff_words + Mem.Diff.word_count diff;
          charge_local t (t.rt.cost.Sim.Cost.diff_word_ns *. float_of_int (words_per_page t));
          send t ~dst:(home_of t page)
            (Message.Diff_flush { page; diffs = [ (id, diff) ]; vc = Proto.Vclock.copy t.vc }))
    interval.Proto.Interval.write_pages

let close_interval t =
  let interval = t.cur in
  interval.Proto.Interval.closed <- true;
  (* bitmaps first: under [stores_from_diffs] the diff pass merges the
     write bitmaps it derives into the entries the snapshot created *)
  if detect_on t then snapshot_bitmaps t interval;
  if t.rt.cfg.Config.protocol = Config.Multi_writer then make_diffs t interval
  else if t.rt.cfg.Config.protocol = Config.Home_based then flush_diffs t interval
  else begin
    (* single-writer: downgrade our writable pages so the first write of the
       next interval faults locally and generates a fresh write notice *)
    List.iter
      (fun page ->
        let entry = t.pages.(page) in
        if entry.state = P_write then entry.state <- P_read)
      t.rw_pages;
    t.rw_pages <- []
  end;
  t.my_closed <- interval :: t.my_closed;
  if tracing t then
    emit_sink t
      (Trace.Event.Interval_close
         {
           proc = t.id;
           index = (Proto.Interval.id interval).Proto.Interval.index;
           epoch = interval.Proto.Interval.epoch;
           write_pages = interval.Proto.Interval.write_pages;
           read_pages = interval.Proto.Interval.read_pages;
         });
  interval

let open_interval t =
  Proto.Vclock.incr t.vc t.id;
  let index = Proto.Vclock.get t.vc t.id in
  let interval =
    Proto.Interval.create ~proc:t.id ~index ~vc:(Proto.Vclock.copy t.vc) ~epoch:t.epoch
  in
  t.cur <- interval;
  Hashtbl.replace t.log (Proto.Interval.id interval) interval;
  t.max_seen.(t.id) <- index;
  if tracing t then
    emit_sink t (Trace.Event.Interval_open { proc = t.id; index; epoch = t.epoch });
  t.stats.Sim.Stats.intervals_created <- t.stats.Sim.Stats.intervals_created + 1;
  charge_local t t.rt.cost.Sim.Cost.interval_setup_ns

let learn t interval =
  (* Handler-safe half of incorporation: record the interval in the log.
     No page effects — those belong to the learning node's own NEXT
     synchronization point, not to the moment a message happens to arrive
     (the barrier master receives arrivals while its own interval is still
     open; invalidating mid-interval corrupts twins). *)
  let id = Proto.Interval.id interval in
  if not (Hashtbl.mem t.log id) then begin
    Hashtbl.replace t.log id interval;
    if id.Proto.Interval.index > t.max_seen.(id.Proto.Interval.proc) then
      t.max_seen.(id.Proto.Interval.proc) <- id.Proto.Interval.index
  end

let apply_notices t interval =
  (* Apply a remote interval's write notices to the page table, exactly
     once per interval, always from application context at a
     synchronization point (acquire or barrier departure). *)
  let id = Proto.Interval.id interval in
  if id.Proto.Interval.proc <> t.id && not (Hashtbl.mem t.applied id) then begin
    Hashtbl.replace t.applied id ();
    List.iter
      (fun page ->
        let entry = t.pages.(page) in
        match t.rt.cfg.Config.protocol with
        | Config.Single_writer ->
            if not entry.owner then begin
              entry.state <- P_invalid;
              if debug_enabled then
                debug_event t ~page "invalidate (notice from p%d)" id.Proto.Interval.proc
            end
        | Config.Multi_writer ->
            entry.pending <- id :: entry.pending;
            entry.state <- P_invalid
        | Config.Home_based ->
            (* a later fetch must cover this writer's knowledge *)
            Proto.Vclock.merge_into ~dst:entry.needed interval.Proto.Interval.vc;
            entry.state <- P_invalid
        | Config.Seq_consistent -> ())
      interval.Proto.Interval.write_pages
  end

let incorporate t interval =
  learn t interval;
  apply_notices t interval

let unseen_intervals t ~upto ~requester_vc =
  (* Intervals the requester has not seen, limited to what [upto] covers
     (the granter's knowledge at its release — exact LRC, no conservative
     extra edges, so the online detector and the offline oracle agree).

     Indexed walk over the interval log: only indices in the per-processor
     window (requester_vc, min(upto, max_seen)] can qualify, so the cost is
     the window size, not the number of intervals retained. Descending
     loops with prepends reproduce the ascending (proc, index) order the
     earlier sort-based implementation produced. Intervals pruned from the
     log are provably below every such window: their epoch predates the
     last barrier, whose merged clock every requester has since merged. *)
  let acc = ref [] in
  for proc = t.nprocs - 1 downto 0 do
    let hi =
      let u = Proto.Vclock.get upto proc and m = Array.unsafe_get t.max_seen proc in
      if u < m then u else m
    in
    for index = hi downto Proto.Vclock.get requester_vc proc + 1 do
      match Hashtbl.find_opt t.log { Proto.Interval.proc; index } with
      | Some interval when interval.Proto.Interval.closed -> acc := interval :: !acc
      | _ -> ()
    done
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Application-side blocking RPC plumbing                              *)

let push_reply t msg =
  t.replies <- t.replies @ [ msg ];
  Sim.Engine.wake t.rt.engine t.id

let await_reply t ~label pred =
  let rec scan acc = function
    | [] -> None
    | msg :: rest ->
        if pred msg then begin
          t.replies <- List.rev_append acc rest;
          Some msg
        end
        else scan (msg :: acc) rest
  in
  let rec wait () =
    match scan [] t.replies with
    | Some msg -> msg
    | None ->
        Sim.Engine.block ~label;
        wait ()
  in
  wait ()


(* ------------------------------------------------------------------ *)
(* Page faults                                                         *)

let fault_prologue t =
  flush_time t;
  Sim.Engine.advance t.rt.cost.Sim.Cost.fault_ns

let install_page t page bytes =
  let entry = t.pages.(page) in
  Bytes.blit bytes 0 (Mem.Page.raw entry.data) 0 (Bytes.length bytes);
  if debug_enabled then debug_event t ~page "install";
  t.stats.Sim.Stats.pages_fetched <- t.stats.Sim.Stats.pages_fetched + 1

let sw_read_fault t page =
  t.stats.Sim.Stats.read_faults <- t.stats.Sim.Stats.read_faults + 1;
  emit_sink t (Trace.Event.Page_fault { proc = t.id; page; kind = Proto.Race.Read });
  fault_prologue t;
  send t ~dst:0 (Message.Copy_req { page; requester = t.id });
  let reply =
    await_reply t ~label:(Printf.sprintf "copy of page %d" page) (function
      | Message.Copy_data { page = p; _ } -> p = page
      | _ -> false)
  in
  (match reply with
  | Message.Copy_data { data; _ } -> install_page t page data
  | _ -> assert false);
  send t ~dst:0 (Message.Page_done { page; requester = t.id });
  let entry = t.pages.(page) in
  entry.state <- P_read

let rec sw_write_fault t page =
  let entry = t.pages.(page) in
  t.stats.Sim.Stats.write_faults <- t.stats.Sim.Stats.write_faults + 1;
  emit_sink t (Trace.Event.Page_fault { proc = t.id; page; kind = Proto.Race.Write });
  if entry.owner then begin
    (* local fault from the interval-start downgrade: just record the write
       notice; no messages move. The fault handling yields the processor,
       and an ownership transfer can be serviced during the yield — if it
       was, fall back to the remote path, or the write would land in a
       stale copy whose content never travels with the page. *)
    flush_time t;
    Sim.Engine.advance (t.rt.cost.Sim.Cost.fault_ns / 10);
    if not entry.owner then sw_write_fault t page
    else finish_sw_write_fault t page
  end
  else begin
    fault_prologue t;
    send t ~dst:0 (Message.Own_req { page; requester = t.id });
    let reply =
      await_reply t ~label:(Printf.sprintf "ownership of page %d" page) (function
        | Message.Own_data { page = p; _ } -> p = page
        | _ -> false)
    in
    (match reply with
    | Message.Own_data { data; _ } -> install_page t page data
    | _ -> assert false);
    send t ~dst:0 (Message.Page_done { page; requester = t.id });
    entry.owner <- true;
    finish_sw_write_fault t page
  end

and finish_sw_write_fault t page =
  let entry = t.pages.(page) in
  entry.state <- P_write;
  t.rw_pages <- page :: t.rw_pages;
  Proto.Interval.add_write_page t.cur page

let mw_apply_pending t page =
  let entry = t.pages.(page) in
  (match List.sort_uniq Proto.Interval.compare_ids entry.pending with
  | [] -> ()
  | pending ->
    t.stats.Sim.Stats.read_faults <- t.stats.Sim.Stats.read_faults + 1;
    emit_sink t (Trace.Event.Page_fault { proc = t.id; page; kind = Proto.Race.Read });
    fault_prologue t;
    (* group the needed diffs by creating processor; one request each *)
    let by_proc = Hashtbl.create 4 in
    List.iter
      (fun (id : Proto.Interval.id) ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt by_proc id.proc) in
        Hashtbl.replace by_proc id.proc (id :: prev))
      pending;
    let expected = Hashtbl.length by_proc in
    emit_sink t (Trace.Event.Diff_fetch { proc = t.id; page; count = expected });
    Hashtbl.iter
      (fun proc ids -> send t ~dst:proc (Message.Diff_req { page; ids; requester = t.id }))
      by_proc;
    let received = ref [] in
    for _ = 1 to expected do
      let reply =
        await_reply t ~label:(Printf.sprintf "diffs for page %d" page) (function
          | Message.Diff_reply { page = p; _ } -> p = page
          | _ -> false)
      in
      match reply with
      | Message.Diff_reply { diffs; _ } -> received := diffs @ !received
      | _ -> assert false
    done;
    (* apply in happens-before order; concurrent diffs (false sharing or a
       true race) fall back to deterministic id order *)
    let ordered =
      List.sort
        (fun ((a : Proto.Interval.id), _) (b, _) ->
          match (Hashtbl.find_opt t.log a, Hashtbl.find_opt t.log b) with
          | Some ia, Some ib ->
              if Proto.Interval.precedes ia ib then -1
              else if Proto.Interval.precedes ib ia then 1
              else Proto.Interval.compare_ids a b
          | _ -> Proto.Interval.compare_ids a b)
        !received
    in
    List.iter
      (fun ((did : Proto.Interval.id), diff) ->
        Mem.Diff.apply diff entry.data;
        emit_sink t
          (Trace.Event.Diff_apply
             { proc = t.id; page; words = Mem.Diff.word_count diff });
        if debug_enabled then
          debug_event t ~page "apply diff p%d.%d (%d words)" did.proc did.index
            (Mem.Diff.word_count diff))
      ordered;
    Sim.Engine.advance_f
      (t.rt.cost.Sim.Cost.diff_word_ns
      *. float_of_int (List.fold_left (fun acc (_, d) -> acc + Mem.Diff.word_count d) 0 ordered));
    entry.pending <- []);
  entry.state <- P_read

let mw_write_fault t page =
  let entry = t.pages.(page) in
  if entry.state = P_invalid then mw_apply_pending t page;
  t.stats.Sim.Stats.write_faults <- t.stats.Sim.Stats.write_faults + 1;
  emit_sink t (Trace.Event.Page_fault { proc = t.id; page; kind = Proto.Race.Write });
  flush_time t;
  Sim.Engine.advance (t.rt.cost.Sim.Cost.fault_ns / 10);
  entry.twin <- Some (Mem.Page.copy entry.data);
  charge_local t
    (t.rt.cost.Sim.Cost.page_copy_word_ns *. float_of_int (words_per_page t));
  entry.state <- P_write;
  Proto.Interval.add_write_page t.cur page

(* Home-based LRC faults: fetch the whole page from its home, gated on
   the version knowledge accumulated from write notices. *)

let hb_read_fault t page =
  let entry = t.pages.(page) in
  t.stats.Sim.Stats.read_faults <- t.stats.Sim.Stats.read_faults + 1;
  emit_sink t (Trace.Event.Page_fault { proc = t.id; page; kind = Proto.Race.Read });
  fault_prologue t;
  send t ~dst:(home_of t page)
    (Message.Home_req { page; requester = t.id; needed = Proto.Vclock.copy entry.needed });
  let reply =
    await_reply t ~label:(Printf.sprintf "home copy of page %d" page) (function
      | Message.Home_data { page = p; _ } -> p = page
      | _ -> false)
  in
  (match reply with
  | Message.Home_data { data; _ } -> install_page t page data
  | _ -> assert false);
  entry.state <- P_read

let hb_write_fault t page =
  let entry = t.pages.(page) in
  if entry.state = P_invalid then hb_read_fault t page;
  t.stats.Sim.Stats.write_faults <- t.stats.Sim.Stats.write_faults + 1;
  emit_sink t (Trace.Event.Page_fault { proc = t.id; page; kind = Proto.Race.Write });
  flush_time t;
  Sim.Engine.advance (t.rt.cost.Sim.Cost.fault_ns / 10);
  entry.twin <- Some (Mem.Page.copy entry.data);
  charge_local t (t.rt.cost.Sim.Cost.page_copy_word_ns *. float_of_int (words_per_page t));
  entry.state <- P_write;
  Proto.Interval.add_write_page t.cur page

(* ------------------------------------------------------------------ *)
(* Shared-memory access operations                                     *)

let instrument_access t page word kind ~site =
  (* The inserted analysis-routine call: a procedure call plus the check
     that decides shared vs private and sets the per-page bitmap bit. *)
  charge_category t Sim.Stats.Proc_call t.rt.cost.Sim.Cost.proc_call_ns;
  charge_category t Sim.Stats.Access_check t.rt.cost.Sim.Cost.access_check_ns;
  let cache =
    match kind with Proto.Race.Read -> t.read_cache | Proto.Race.Write -> t.write_cache
  in
  let bitmap =
    match Array.unsafe_get cache page with
    | Some bm -> bm
    | None ->
        let bm = Mem.Bitmap.create (words_per_page t) in
        let table =
          match kind with Proto.Race.Read -> t.read_bits | Proto.Race.Write -> t.write_bits
        in
        Hashtbl.replace table page bm;
        Array.unsafe_set cache page (Some bm);
        bm
  in
  Mem.Bitmap.set bitmap word;
  if t.rt.cfg.Config.retain_sites then begin
    (* the extra bookkeeping the paper's section 6.1 prices out *)
    charge_category t Sim.Stats.Access_check 60.0;
    let key = (page, word, kind) in
    if not (Hashtbl.mem t.cur_sites key) then Hashtbl.replace t.cur_sites key site
  end

let bad_shared addr =
  invalid_arg (Printf.sprintf "Node: address 0x%x outside the shared segment" addr)

let bad_aligned addr = invalid_arg (Printf.sprintf "Node: unaligned shared access 0x%x" addr)

let check_addr t addr =
  if t.g_fast then begin
    if addr < t.g_base || addr >= t.g_limit then bad_shared addr;
    if addr land t.g_word_mask <> 0 then bad_aligned addr
  end
  else begin
    if not (Mem.Geometry.in_shared t.rt.geometry addr) then bad_shared addr;
    if addr mod t.rt.geometry.Mem.Geometry.word_size <> 0 then bad_aligned addr
  end

(* Page/word of a checked address: shifts and masks on the fast path, the
   division-based {!Mem.Geometry} functions otherwise. *)
let page_of t addr =
  if t.g_fast then (addr - t.g_base) lsr t.g_page_shift
  else Mem.Geometry.page_of_addr t.rt.geometry addr

let word_of t addr =
  if t.g_fast then (addr land t.g_page_mask) lsr t.g_word_shift
  else Mem.Geometry.word_in_page t.rt.geometry addr

let observe t ~site ~addr kind =
  match t.access_observer with
  | Some f -> f ~site ~addr kind
  | None -> ()

(* Shared prologue of every read/write: cost charge, statistics,
   instrumentation, watch-mode observation, oracle trace. *)
(* An elided site skips the inserted analysis-routine call entirely (no
   procedure-call or check charge, no bitmap bit) but keeps the base
   instruction charge, the statistics, the watch-mode observation and
   the oracle trace — so elision changes cost and bitmaps only, never
   what the oracle or a watch run can see. *)
let elided t site = Hashtbl.length t.elide > 0 && Hashtbl.mem t.elide site

let read_note t ~site addr page word =
  charge_local t t.rt.cost.Sim.Cost.instr_ns;
  t.stats.Sim.Stats.shared_reads <- t.stats.Sim.Stats.shared_reads + 1;
  if detect_on t then
    if elided t site then
      t.stats.Sim.Stats.elided_checks <- t.stats.Sim.Stats.elided_checks + 1
    else instrument_access t page word Proto.Race.Read ~site;
  observe t ~site ~addr Proto.Race.Read;
  trace_read t addr

let write_note t ~site addr page word =
  charge_local t t.rt.cost.Sim.Cost.instr_ns;
  t.stats.Sim.Stats.shared_writes <- t.stats.Sim.Stats.shared_writes + 1;
  if detect_on t && not (stores_from_diffs t) then
    if elided t site then
      t.stats.Sim.Stats.elided_checks <- t.stats.Sim.Stats.elided_checks + 1
    else instrument_access t page word Proto.Race.Write ~site;
  observe t ~site ~addr Proto.Race.Write;
  trace_write t addr

(* For the caching protocols: resolve any fault so [entry.data] holds a
   coherent copy the access may touch. *)
let ensure_readable t page entry =
  match t.rt.cfg.Config.protocol with
  | Config.Single_writer -> (
      match entry.state with P_invalid -> sw_read_fault t page | P_read | P_write -> ())
  | Config.Multi_writer -> (
      match entry.state with P_invalid -> mw_apply_pending t page | P_read | P_write -> ())
  | Config.Home_based -> (
      match entry.state with P_invalid -> hb_read_fault t page | P_read | P_write -> ())
  | Config.Seq_consistent -> ()

let ensure_writable t page entry =
  match t.rt.cfg.Config.protocol with
  | Config.Single_writer -> (
      match entry.state with P_write -> () | P_invalid | P_read -> sw_write_fault t page)
  | Config.Multi_writer -> (
      match entry.state with P_write -> () | P_invalid | P_read -> mw_write_fault t page)
  | Config.Home_based -> (
      match entry.state with P_write -> () | P_invalid | P_read -> hb_write_fault t page)
  | Config.Seq_consistent -> ()

let sc_read t entry word addr =
  if t.id = 0 then Mem.Page.get_int64 entry.data word
  else begin
    flush_time t;
    send t ~dst:0 (Message.Sc_read_req { addr; requester = t.id });
    let reply =
      await_reply t ~label:"sc read" (function
        | Message.Sc_read_reply { addr = a; _ } -> a = addr
        | _ -> false)
    in
    match reply with Message.Sc_read_reply { value; _ } -> value | _ -> assert false
  end

let sc_write t entry page word addr value =
  if t.id = 0 then begin
    Mem.Page.set_int64 entry.data word value;
    Proto.Interval.add_write_page t.cur page
  end
  else begin
    flush_time t;
    send t ~dst:0 (Message.Sc_write_req { addr; value; requester = t.id });
    let _ack =
      await_reply t ~label:"sc write" (function
        | Message.Sc_write_ack { addr = a } -> a = addr
        | _ -> false)
    in
    Proto.Interval.add_write_page t.cur page
  end

let read_word t ?(site = "?") addr =
  check_addr t addr;
  let page = page_of t addr in
  let word = word_of t addr in
  read_note t ~site addr page word;
  let entry = Array.unsafe_get t.pages page in
  match t.rt.cfg.Config.protocol with
  | Config.Seq_consistent -> sc_read t entry word addr
  | _ ->
      ensure_readable t page entry;
      Mem.Page.get_int64 entry.data word

let read_word_int t ?(site = "?") addr =
  check_addr t addr;
  let page = page_of t addr in
  let word = word_of t addr in
  read_note t ~site addr page word;
  let entry = Array.unsafe_get t.pages page in
  match t.rt.cfg.Config.protocol with
  | Config.Seq_consistent -> Int64.to_int (sc_read t entry word addr)
  | _ ->
      ensure_readable t page entry;
      Mem.Page.get_int entry.data word

let read_word_float t ?(site = "?") addr =
  check_addr t addr;
  let page = page_of t addr in
  let word = word_of t addr in
  read_note t ~site addr page word;
  let entry = Array.unsafe_get t.pages page in
  match t.rt.cfg.Config.protocol with
  | Config.Seq_consistent -> Int64.float_of_bits (sc_read t entry word addr)
  | _ ->
      ensure_readable t page entry;
      Mem.Page.get_float entry.data word

let write_word t ?(site = "?") addr value =
  check_addr t addr;
  let page = page_of t addr in
  let word = word_of t addr in
  write_note t ~site addr page word;
  let entry = Array.unsafe_get t.pages page in
  match t.rt.cfg.Config.protocol with
  | Config.Seq_consistent -> sc_write t entry page word addr value
  | _ ->
      ensure_writable t page entry;
      Mem.Page.set_int64 entry.data word value;
      if debug_enabled then debug_event t ~page "write addr=0x%x val=%Ld" addr value

let write_word_int t ?(site = "?") addr value =
  check_addr t addr;
  let page = page_of t addr in
  let word = word_of t addr in
  write_note t ~site addr page word;
  let entry = Array.unsafe_get t.pages page in
  match t.rt.cfg.Config.protocol with
  | Config.Seq_consistent -> sc_write t entry page word addr (Int64.of_int value)
  | _ ->
      ensure_writable t page entry;
      Mem.Page.set_int entry.data word value;
      if debug_enabled then
        debug_event t ~page "write addr=0x%x val=%Ld" addr (Int64.of_int value)

let write_word_float t ?(site = "?") addr value =
  check_addr t addr;
  let page = page_of t addr in
  let word = word_of t addr in
  write_note t ~site addr page word;
  let entry = Array.unsafe_get t.pages page in
  match t.rt.cfg.Config.protocol with
  | Config.Seq_consistent -> sc_write t entry page word addr (Int64.bits_of_float value)
  | _ ->
      ensure_writable t page entry;
      Mem.Page.set_float entry.data word value;
      if debug_enabled then
        debug_event t ~page "write addr=0x%x val=%Ld" addr (Int64.bits_of_float value)

let touch_private t n =
  (* n private accesses that survived static analysis: they pay the full
     analysis-routine cost at runtime but never set a bitmap bit. *)
  t.stats.Sim.Stats.private_accesses <- t.stats.Sim.Stats.private_accesses + n;
  let fn = float_of_int n in
  charge_local t (t.rt.cost.Sim.Cost.instr_ns *. fn);
  if detect_on t then begin
    charge_category t Sim.Stats.Proc_call (t.rt.cost.Sim.Cost.proc_call_ns *. fn);
    charge_category t Sim.Stats.Access_check (t.rt.cost.Sim.Cost.access_check_ns *. fn)
  end

let compute t ops = charge_local t (t.rt.cost.Sim.Cost.instr_ns *. ops)

let idle t ns =
  (* unlike [compute], this advances simulated time immediately — used to
     stage interleavings (litmus tests, scenario builders) *)
  flush_time t;
  Sim.Engine.advance (int_of_float ns)

(* ------------------------------------------------------------------ *)
(* Locks                                                               *)

let lock_state t lock =
  match Hashtbl.find_opt t.locks lock with
  | Some l -> l
  | None ->
      let l =
        {
          held = false;
          expecting = false;
          pending_seq = None;
          next_request = None;
          release_vc = None;
        }
      in
      Hashtbl.add t.locks lock l;
      l

let grant_lock t ~lock ~requester ~requester_vc =
  (* The consistency payload is limited to the granter's knowledge at its
     last release of this lock (exact happens-before-1: no conservative
     extra edges, so the detector and the offline oracle agree). *)
  let l = lock_state t lock in
  let upto =
    match l.release_vc with Some vc -> vc | None -> Proto.Vclock.create t.nprocs
  in
  let intervals = unseen_intervals t ~upto ~requester_vc in
  (match t.rt.recorder with
  | Some recorder ->
      (* The recorder is shared and grants are issued from any node (lock
         forwarding), so recording is deferred like the other observers.
         Per-lock grant order is preserved: consecutive grants of one
         lock are separated by at least a message latency, so the
         (time, shard, emission) flush order cannot swap them. *)
      Sim.Engine.defer t.rt.engine (fun () ->
          Sync_trace.record recorder ~lock ~grantee:requester)
  | None -> ());
  send t ~dst:requester
    (Message.Lock_grant { lock; granter_vc = Proto.Vclock.copy upto; intervals })

let lock t lock_id =
  flush_time t;
  t.stats.Sim.Stats.lock_acquires <- t.stats.Sim.Stats.lock_acquires + 1;
  let l = lock_state t lock_id in
  if l.held then invalid_arg "Node.lock: lock already held (not reentrant)";
  l.expecting <- true;
  send t ~dst:0
    (Message.Lock_req { lock = lock_id; requester = t.id; vc = Proto.Vclock.copy t.vc });
  let reply =
    await_reply t ~label:(Printf.sprintf "grant of lock %d" lock_id) (function
      | Message.Lock_grant { lock; _ } -> lock = lock_id
      | _ -> false)
  in
  match reply with
  | Message.Lock_grant { granter_vc; intervals; _ } ->
      let _ = close_interval t in
      List.iter (incorporate t) intervals;
      Proto.Vclock.merge_into ~dst:t.vc granter_vc;
      open_interval t;
      l.expecting <- false;
      l.pending_seq <- None;
      l.held <- true;
      emit_trace t (Racedetect.Oracle.Acquire lock_id);
      if tracing t then
        emit_sink t
          (Trace.Event.Lock_acquire
             { proc = t.id; lock = lock_id; vc = Proto.Vclock.copy t.vc })
  | _ -> assert false

let unlock t lock_id =
  flush_time t;
  let l = lock_state t lock_id in
  if not l.held then invalid_arg "Node.unlock: lock not held";
  let _ = close_interval t in
  l.release_vc <- Some (Proto.Vclock.copy t.vc);
  open_interval t;
  l.held <- false;
  emit_trace t (Racedetect.Oracle.Release lock_id);
  if tracing t then
    emit_sink t
      (Trace.Event.Lock_release
         { proc = t.id; lock = lock_id; vc = Proto.Vclock.copy t.vc });
  match l.next_request with
  | Some (requester, requester_vc) ->
      l.next_request <- None;
      grant_lock t ~lock:lock_id ~requester ~requester_vc
  | None -> ()

(* Handler-side lock plumbing. *)

let on_lock_fwd t ~lock ~requester ~vc ~seq =
  (* We are (or recently were) this lock's token holder. The forwarded
     request must be granted at the point in the chain the manager chose:
     before our own pending acquire if the manager sequenced it earlier
     (we were the last releaser), after our release if it sequenced it
     later. Manager acks arrive before any later-sequenced forward (FIFO
     links, acks are never larger), so an unknown [pending_seq] means our
     own request has not been sequenced yet. *)
  let l = lock_state t lock in
  if requester = t.id then begin
    (* the token chain reached ourselves: take the lock directly *)
    assert l.expecting;
    grant_lock t ~lock ~requester ~requester_vc:vc
  end
  else begin
    let ordered_after_us =
      l.held
      || (l.expecting
         && match l.pending_seq with Some ours -> seq > ours | None -> false)
    in
    if ordered_after_us then begin
      assert (l.next_request = None);
      l.next_request <- Some (requester, vc)
    end
    else grant_lock t ~lock ~requester ~requester_vc:vc
  end

let on_lock_ack t ~lock ~seq =
  let l = lock_state t lock in
  if l.expecting then l.pending_seq <- Some seq

let lock_mgr_state t lock =
  match Hashtbl.find_opt t.lock_mgrs lock with
  | Some m -> m
  | None ->
      let m = { token = 0; next_seq = 0; parked = Queue.create () } in
      Hashtbl.add t.lock_mgrs lock m;
      m

let forward_lock_req t m = function
  | Message.Lock_req { lock; requester; vc } ->
      let target = m.token in
      let seq = m.next_seq in
      m.next_seq <- seq + 1;
      m.token <- requester;
      let delay = t.rt.cost.Sim.Cost.lock_manager_ns in
      send_after t ~delay ~dst:requester (Message.Lock_ack { lock; seq });
      send_after t ~delay ~dst:target (Message.Lock_fwd { lock; requester; vc; seq })
  | _ -> assert false

let rec drain_parked_requests t m ~lock =
  (* Replay mode: release parked requests in the recorded grant order. *)
  match t.rt.cfg.Config.replay with
  | None -> assert false
  | Some trace -> (
      match Sync_trace.next_grantee trace ~lock with
      | None ->
          (* past the recorded history: fall back to FIFO *)
          if not (Queue.is_empty m.parked) then begin
            forward_lock_req t m (Queue.pop m.parked);
            drain_parked_requests t m ~lock
          end
      | Some grantee ->
          let found = ref None in
          let rest = Queue.create () in
          Queue.iter
            (fun msg ->
              match msg with
              | Message.Lock_req { requester; _ } when requester = grantee && !found = None ->
                  found := Some msg
              | _ -> Queue.add msg rest)
            m.parked;
          (match !found with
          | Some msg ->
              Queue.clear m.parked;
              Queue.transfer rest m.parked;
              Sync_trace.advance trace ~lock;
              forward_lock_req t m msg;
              drain_parked_requests t m ~lock
          | None -> ()))

let on_lock_req t msg =
  match msg with
  | Message.Lock_req { lock; _ } -> (
      let m = lock_mgr_state t lock in
      match t.rt.cfg.Config.replay with
      | None -> forward_lock_req t m msg
      | Some _ ->
          Queue.add msg m.parked;
          drain_parked_requests t m ~lock)
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Barrier master (runs at processor 0, in handler context)            *)

let closed_unseen t ~vc =
  (* Same indexed walk as [unseen_intervals], with the master's whole
     knowledge ([max_seen]) as the upper bound. *)
  let acc = ref [] in
  for proc = t.nprocs - 1 downto 0 do
    for index = Array.unsafe_get t.max_seen proc downto Proto.Vclock.get vc proc + 1 do
      match Hashtbl.find_opt t.log { Proto.Interval.proc; index } with
      | Some interval when interval.Proto.Interval.closed -> acc := interval :: !acc
      | _ -> ()
    done
  done;
  !acc

let master_finish_barrier t ~delay ~races =
  let b = t.barrier in
  let races =
    if t.rt.cfg.Config.first_race_only && b.race_seen then []
    else begin
      if races <> [] then b.race_seen <- true;
      races
    end
  in
  t.rt.races := races @ !(t.rt.races);
  if tracing t then List.iter (fun r -> emit_sink t (Trace.Event.Race r)) races;
  t.stats.Sim.Stats.races_reported <- t.stats.Sim.Stats.races_reported + List.length races;
  t.stats.Sim.Stats.barriers <- t.stats.Sim.Stats.barriers + 1;
  List.iter
    (fun (node, vc, _) ->
      let intervals = closed_unseen t ~vc in
      send_after t ~delay ~dst:node
        (Message.Barrier_release
           { master_vc = Proto.Vclock.copy b.master_vc; intervals; check_list_size = b.check_bytes }))
    b.arrivals;
  b.arrivals <- [];
  b.pending_checks <- [];
  b.check_bytes <- 0

let master_run_detection t =
  let b = t.barrier in
  let stats = t.stats in
  let cost = t.rt.cost in
  let epoch_intervals =
    List.concat_map (fun (_, _, intervals) -> intervals) b.arrivals
    |> List.filter (fun iv -> iv.Proto.Interval.epoch = b.processing_epoch)
  in
  let before = stats.Sim.Stats.interval_comparisons in
  let probe =
    if tracing t then
      Some
        (fun (e : Racedetect.Checklist.entry) ->
          emit_sink t (Trace.Event.Check_entry { a = e.a; b = e.b; pages = e.pages }))
    else None
  in
  let n_concurrent, entries =
    Racedetect.Detector.concurrent_check_list ~stats ?probe epoch_intervals
  in
  let comparisons = stats.Sim.Stats.interval_comparisons - before in
  let intervals_ns =
    (cost.Sim.Cost.vv_compare_ns *. float_of_int comparisons)
    +. (200.0 *. float_of_int n_concurrent)
  in
  Sim.Stats.charge stats Sim.Stats.Intervals intervals_ns;
  let delay = int_of_float intervals_ns in
  if entries = [] then master_finish_barrier t ~delay ~races:[]
  else begin
    b.pending_checks <- entries;
    b.check_bytes <- Racedetect.Checklist.size_bytes entries;
    Hashtbl.reset b.collected;
    let procs_with_requests =
      List.init t.nprocs Fun.id
      |> List.filter_map (fun proc ->
             match Racedetect.Checklist.requests_for_proc entries ~proc with
             | [] -> None
             | requests -> Some (proc, requests))
    in
    b.expected_replies <- List.length procs_with_requests;
    List.iter
      (fun (proc, requests) ->
        stats.Sim.Stats.bitmaps_requested <-
          stats.Sim.Stats.bitmaps_requested + List.length requests;
        send_after t ~delay ~dst:proc (Message.Bitmap_req { requests }))
      procs_with_requests
  end

let master_on_arrive t ~from_ ~vc ~intervals =
  let b = t.barrier in
  if b.arrivals = [] then begin
    b.master_vc <- Proto.Vclock.create t.nprocs;
    b.processing_epoch <- t.epoch
  end;
  b.arrivals <- (from_, vc, intervals) :: b.arrivals;
  (* learn only: the master's page-level effects happen when it processes
     its own Barrier_release, like every other node *)
  List.iter (learn t) intervals;
  Proto.Vclock.merge_into ~dst:b.master_vc vc;
  if List.length b.arrivals = t.nprocs then
    if detect_on t then master_run_detection t
    else master_finish_barrier t ~delay:0 ~races:[]

let empty_bitmap_pair t =
  {
    Racedetect.Detector.reads = Mem.Bitmap.create (words_per_page t);
    writes = Mem.Bitmap.create (words_per_page t);
  }

let master_on_bitmap_reply t ~bitmaps =
  let b = t.barrier in
  List.iter
    (fun (item : Message.bitmap_item) ->
      Hashtbl.replace b.collected (item.interval, item.page)
        { Racedetect.Detector.reads = item.reads; writes = item.writes })
    bitmaps;
  b.expected_replies <- b.expected_replies - 1;
  if b.expected_replies = 0 then begin
    let stats = t.stats in
    let source id ~page =
      match Hashtbl.find_opt b.collected (id, page) with
      | Some pair -> pair
      | None -> empty_bitmap_pair t
    in
    let before = stats.Sim.Stats.bitmap_comparisons in
    let races =
      List.concat_map
        (Racedetect.Detector.races_of_entry ~stats ~geometry:t.rt.geometry
           ~epoch:b.processing_epoch ~source)
        b.pending_checks
      |> Proto.Race.dedup
    in
    let compared = stats.Sim.Stats.bitmap_comparisons - before in
    let bitmaps_ns =
      t.rt.cost.Sim.Cost.bitmap_word_ns
      *. float_of_int (3 * compared * words_per_page t)
    in
    Sim.Stats.charge stats Sim.Stats.Bitmaps bitmaps_ns;
    master_finish_barrier t ~delay:(int_of_float bitmaps_ns) ~races
  end

(* ------------------------------------------------------------------ *)
(* Barrier (application side)                                          *)

let prune_intervals t =
  (* Trace-neutral history pruning, run after every barrier: a log entry
     older than the previous epoch can never be requested again, because
     every vc window a requester can present is bounded below by the last
     barrier's merged clock, which covers all such intervals. Entries still
     named by a page's pending write notices are retained — the
     happens-before sort in [mw_apply_pending] consults them. *)
  let floor = t.epoch - 1 in
  let pinned = Hashtbl.create 16 in
  Array.iter
    (fun entry ->
      match entry.pending with
      | [] -> ()
      | pending -> List.iter (fun id -> Hashtbl.replace pinned id ()) pending)
    t.pages;
  let doomed =
    Hashtbl.fold
      (fun id (interval : Proto.Interval.t) acc ->
        if interval.Proto.Interval.epoch < floor && not (Hashtbl.mem pinned id) then
          id :: acc
        else acc)
      t.log []
  in
  List.iter
    (fun id ->
      Hashtbl.remove t.log id;
      Hashtbl.remove t.applied id)
    doomed

let gc_diffs t =
  (* Interval garbage collection (TreadMarks-style lineage GC), gated on
     [Config.gc_epochs]. Two phases, one barrier apart: at every k-th
     epoch boundary each node validates its invalid pages — forcing every
     pending diff to be fetched now — and schedules a drop; at the next
     barrier the diffs whose creating epoch predates that validation are
     dropped. A diff can still be requested between the validation and the
     drop (the requester cannot reach the dropping node's next barrier
     before its own validation fetches complete), which is why the drop
     waits a barrier. *)
  match t.rt.cfg.Config.gc_epochs with
  | None -> ()
  | Some k when k <= 0 -> ()
  | Some k ->
      if t.gc_drop_bound >= 0 then begin
        let bound = t.gc_drop_bound in
        t.gc_drop_bound <- -1;
        let doomed =
          Hashtbl.fold
            (fun key (_, epoch) acc -> if epoch < bound then key :: acc else acc)
            t.diff_store []
        in
        List.iter (Hashtbl.remove t.diff_store) doomed;
        t.stats.Sim.Stats.diffs_gced <-
          t.stats.Sim.Stats.diffs_gced + List.length doomed
      end;
      if t.epoch mod k = 0 && t.rt.cfg.Config.protocol = Config.Multi_writer then begin
        Array.iteri
          (fun page entry ->
            match entry.pending with [] -> () | _ -> mw_apply_pending t page)
          t.pages;
        t.gc_drop_bound <- t.epoch
      end

let barrier t =
  flush_time t;
  let entered_epoch = t.epoch in
  emit_sink t (Trace.Event.Barrier_enter { proc = t.id; epoch = entered_epoch });
  let _ = close_interval t in
  emit_trace t Racedetect.Oracle.Barrier;
  let intervals = List.rev t.my_closed in
  t.my_closed <- [];
  send t ~dst:0
    (Message.Barrier_arrive { from_ = t.id; vc = Proto.Vclock.copy t.vc; intervals });
  open_interval t;
  let reply =
    await_reply t ~label:"barrier release" (function
      | Message.Barrier_release _ -> true
      | _ -> false)
  in
  match reply with
  | Message.Barrier_release { master_vc; intervals; _ } ->
      let _ = close_interval t in
      List.iter (incorporate t) intervals;
      Proto.Vclock.merge_into ~dst:t.vc master_vc;
      t.epoch <- t.epoch + 1;
      open_interval t;
      if tracing t then
        emit_sink t
          (Trace.Event.Barrier_leave
             { proc = t.id; epoch = entered_epoch; vc = Proto.Vclock.copy t.vc });
      Hashtbl.reset t.bitmap_store;
      prune_intervals t;
      gc_diffs t
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Page manager (single-writer ownership directory at processor 0)     *)

let process_page_request t m msg =
  m.busy <- true;
  match msg with
  | Message.Copy_req { page; requester } ->
      send t ~dst:m.page_owner (Message.Copy_fwd { page; requester })
  | Message.Own_req { page; requester } ->
      let previous = m.page_owner in
      m.page_owner <- requester;
      send t ~dst:previous (Message.Own_fwd { page; requester })
  | _ -> assert false

let on_page_request t msg =
  let page =
    match msg with
    | Message.Copy_req { page; _ } | Message.Own_req { page; _ } -> page
    | _ -> assert false
  in
  let m = t.page_mgrs.(page) in
  if m.busy then Queue.add msg m.waiting else process_page_request t m msg

let on_page_done t ~page =
  let m = t.page_mgrs.(page) in
  m.busy <- false;
  match Queue.take_opt m.waiting with
  | Some msg -> process_page_request t m msg
  | None -> ()

let on_copy_fwd t ~page ~requester =
  let entry = t.pages.(page) in
  if debug_enabled then debug_event t ~page "copy_fwd -> p%d" requester;
  charge_local t (t.rt.cost.Sim.Cost.page_copy_word_ns *. float_of_int (words_per_page t));
  send t ~dst:requester
    (Message.Copy_data { page; data = Bytes.copy (Mem.Page.raw entry.data) })

let on_own_fwd t ~page ~requester =
  let entry = t.pages.(page) in
  entry.owner <- false;
  if entry.state = P_write then entry.state <- P_read;
  if debug_enabled then debug_event t ~page "own_fwd -> p%d" requester;
  send t ~dst:requester
    (Message.Own_data { page; data = Bytes.copy (Mem.Page.raw entry.data) })

(* ------------------------------------------------------------------ *)
(* Home-based LRC service (runs at each page's home)                   *)

let home_state t page =
  match Hashtbl.find_opt t.home_pages page with
  | Some home -> home
  | None ->
      let geometry = t.rt.geometry in
      let home =
        {
          home_data =
            Mem.Page.create ~page_size:geometry.Mem.Geometry.page_size
              ~word_size:geometry.Mem.Geometry.word_size;
          home_version = Proto.Vclock.create t.nprocs;
          home_waiting = [];
        }
      in
      Hashtbl.add t.home_pages page home;
      home

let home_serve t home page requester =
  send t ~dst:requester (Message.Home_data { page; data = Bytes.copy (Mem.Page.raw home.home_data) })

let on_diff_flush t ~page ~diffs ~vc =
  let home = home_state t page in
  List.iter
    (fun (_, diff) ->
      Mem.Diff.apply diff home.home_data;
      emit_sink t
        (Trace.Event.Diff_apply { proc = t.id; page; words = Mem.Diff.word_count diff }))
    diffs;
  Proto.Vclock.merge_into ~dst:home.home_version vc;
  (* a newly covered version may satisfy parked fetches *)
  let ready, still_waiting =
    List.partition
      (fun (_, needed) -> Proto.Vclock.leq needed home.home_version)
      home.home_waiting
  in
  home.home_waiting <- still_waiting;
  List.iter (fun (requester, _) -> home_serve t home page requester) ready

let on_home_req t ~page ~requester ~needed =
  let home = home_state t page in
  if Proto.Vclock.leq needed home.home_version then home_serve t home page requester
  else
    (* the flush carrying the needed version is still in flight *)
    home.home_waiting <- (requester, needed) :: home.home_waiting

(* ------------------------------------------------------------------ *)
(* Diff and bitmap serving                                             *)

let on_diff_req t ~page ~ids ~requester =
  let diffs =
    List.map
      (fun id ->
        match Hashtbl.find_opt t.diff_store (id, page) with
        | Some (diff, _epoch) -> (id, diff)
        | None ->
            invalid_arg
              (Printf.sprintf "Node %d: no diff for page %d interval p%d.%d" t.id page
                 id.Proto.Interval.proc id.Proto.Interval.index))
      ids
  in
  send t ~dst:requester (Message.Diff_reply { page; diffs })

let on_bitmap_req t ~requests =
  let bitmaps =
    List.map
      (fun (interval, page) ->
        let pair =
          match Hashtbl.find_opt t.bitmap_store (interval, page) with
          | Some pair -> pair
          | None -> empty_bitmap_pair t
        in
        {
          Message.interval;
          page;
          reads = pair.Racedetect.Detector.reads;
          writes = pair.Racedetect.Detector.writes;
        })
      requests
  in
  send t ~dst:0 (Message.Bitmap_reply { from_ = t.id; bitmaps })

(* ------------------------------------------------------------------ *)
(* Sequential-consistency home-node service                            *)

let on_sc_read t ~addr ~requester =
  let page = Mem.Geometry.page_of_addr t.rt.geometry addr in
  let word = Mem.Geometry.word_in_page t.rt.geometry addr in
  let value = Mem.Page.get_int64 t.pages.(page).data word in
  send t ~dst:requester (Message.Sc_read_reply { addr; value })

let on_sc_write t ~addr ~value ~requester =
  let page = Mem.Geometry.page_of_addr t.rt.geometry addr in
  let word = Mem.Geometry.word_in_page t.rt.geometry addr in
  Mem.Page.set_int64 t.pages.(page).data word value;
  send t ~dst:requester (Message.Sc_write_ack { addr })

(* ------------------------------------------------------------------ *)
(* Message dispatch (runs in handler context at delivery time)         *)

let handle_message t msg =
  match msg with
  (* replies the application coroutine is blocked on *)
  | Message.Lock_grant _ | Message.Barrier_release _ | Message.Copy_data _
  | Message.Own_data _ | Message.Diff_reply _ | Message.Home_data _
  | Message.Sc_read_reply _ | Message.Sc_write_ack _ ->
      push_reply t msg
  (* central services *)
  | Message.Lock_req _ -> on_lock_req t msg
  | Message.Lock_ack { lock; seq } -> on_lock_ack t ~lock ~seq
  | Message.Lock_fwd { lock; requester; vc; seq } -> on_lock_fwd t ~lock ~requester ~vc ~seq
  | Message.Barrier_arrive { from_; vc; intervals } ->
      master_on_arrive t ~from_ ~vc ~intervals
  | Message.Bitmap_req { requests } -> on_bitmap_req t ~requests
  | Message.Bitmap_reply { bitmaps; _ } -> master_on_bitmap_reply t ~bitmaps
  | Message.Copy_req _ | Message.Own_req _ -> on_page_request t msg
  | Message.Copy_fwd { page; requester } -> on_copy_fwd t ~page ~requester
  | Message.Own_fwd { page; requester } -> on_own_fwd t ~page ~requester
  | Message.Page_done { page; _ } -> on_page_done t ~page
  | Message.Diff_req { page; ids; requester } -> on_diff_req t ~page ~ids ~requester
  | Message.Diff_flush { page; diffs; vc } -> on_diff_flush t ~page ~diffs ~vc
  | Message.Home_req { page; requester; needed } -> on_home_req t ~page ~requester ~needed
  | Message.Sc_read_req { addr; requester } -> on_sc_read t ~addr ~requester
  | Message.Sc_write_req { addr; value; requester } -> on_sc_write t ~addr ~value ~requester

(* ------------------------------------------------------------------ *)
(* Memory allocation                                                   *)

let malloc t ?name ?(align = 0) bytes =
  (* Bump allocation over the shared segment. SPMD programs call this at
     the same program points on every node, so all nodes compute identical
     addresses — the way CVM applications use G_MALLOC. Names land in the
     cluster symbol table (registered once, by processor 0). *)
  if bytes < 0 then invalid_arg "Node.malloc";
  let word = t.rt.geometry.Mem.Geometry.word_size in
  let round v quantum = (v + quantum - 1) / quantum * quantum in
  let start =
    if align > 0 then round t.alloc_next align else round t.alloc_next word
  in
  let next = start + round bytes word in
  if next > Mem.Geometry.limit t.rt.geometry then
    invalid_arg "Node.malloc: shared segment exhausted";
  t.alloc_next <- next;
  (match name with
  | Some name when t.id = 0 -> Mem.Symtab.register t.rt.symtab ~name ~base:start ~bytes
  | _ -> ());
  start

let set_alloc_next t addr = t.alloc_next <- addr

let set_access_observer t f = t.access_observer <- Some f

let retained_site t ~interval ~page ~word ~kind =
  Hashtbl.find_opt t.site_store (interval, page, word, kind)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let create rt ~id ~nprocs =
  let geometry = rt.geometry in
  let page_size = geometry.Mem.Geometry.page_size in
  let word_size = geometry.Mem.Geometry.word_size in
  let is_pow2 n = n > 0 && n land (n - 1) = 0 in
  let shift_of n =
    let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
    go 0 n
  in
  let g_fast =
    is_pow2 page_size && is_pow2 word_size
    && geometry.Mem.Geometry.base land (page_size - 1) = 0
  in
  let pages =
    Array.init geometry.Mem.Geometry.pages (fun _ ->
        {
          data =
            Mem.Page.create ~page_size:geometry.Mem.Geometry.page_size
              ~word_size:geometry.Mem.Geometry.word_size;
          state = P_read;
          owner = id = 0;
          twin = None;
          pending = [];
          needed = Proto.Vclock.create nprocs;
        })
  in
  let vc = Proto.Vclock.create nprocs in
  let t =
    {
      rt;
      stats = rt.node_stats.(id);
      trace_buf = rt.node_trace.(id);
      timed_buf = rt.node_timed.(id);
      id;
      nprocs;
      vc;
      cur = Proto.Interval.create ~proc:id ~index:0 ~vc:(Proto.Vclock.copy vc) ~epoch:0;
      epoch = 0;
      log = Hashtbl.create 64;
      applied = Hashtbl.create 64;
      max_seen = Array.make nprocs 0;
      my_closed = [];
      pages;
      rw_pages = [];
      locks = Hashtbl.create 8;
      read_bits = Hashtbl.create 16;
      write_bits = Hashtbl.create 16;
      read_cache = Array.make geometry.Mem.Geometry.pages None;
      write_cache = Array.make geometry.Mem.Geometry.pages None;
      bitmap_store = Hashtbl.create 64;
      diff_store = Hashtbl.create 64;
      gc_drop_bound = -1;
      g_fast;
      g_base = geometry.Mem.Geometry.base;
      g_limit = Mem.Geometry.limit geometry;
      g_page_shift = (if g_fast then shift_of page_size else 0);
      g_page_mask = page_size - 1;
      g_word_shift = (if g_fast then shift_of word_size else 0);
      g_word_mask = word_size - 1;
      cur_sites = Hashtbl.create 64;
      site_store = Hashtbl.create 256;
      elide =
        (let table = Hashtbl.create 8 in
         (match rt.cfg.Config.elide_sites with
         | Some sites -> List.iter (fun s -> Hashtbl.replace table s ()) sites
         | None -> ());
         table);
      replies = [];
      debt = Array.make 1 0.0;
      alloc_next = geometry.Mem.Geometry.base;
      access_observer = None;
      page_mgrs =
        Array.init
          (if id = 0 then geometry.Mem.Geometry.pages else 0)
          (fun _ -> { page_owner = 0; busy = false; waiting = Queue.create () });
      lock_mgrs = Hashtbl.create 8;
      home_pages = Hashtbl.create 16;
      barrier =
        {
          arrivals = [];
          pending_checks = [];
          expected_replies = 0;
          collected = Hashtbl.create 64;
          race_seen = false;
          master_vc = Proto.Vclock.create nprocs;
          check_bytes = 0;
          processing_epoch = 0;
        };
    }
  in
  (* open the first real interval (index 1) *)
  open_interval t;
  t

let id t = t.id
let nprocs t = t.nprocs
let epoch t = t.epoch
let current_interval t = t.cur
let geometry t = t.rt.geometry
let cost t = t.rt.cost
let stats t = t.rt.stats
let config t = t.rt.cfg

let coherent_page_raw t page =
  (* This node's copy of [page], but only if it is coherent: a valid copy
     with no pending write notices. An invalidated copy's bytes are a
     timing-dependent stale snapshot (false sharing), while after the
     final barrier every still-valid copy provably matches the
     authoritative contents — all coherent copies of a page agree. *)
  let entry = t.pages.(page) in
  if entry.state = P_invalid || entry.pending <> [] then None
  else Some (Mem.Page.raw entry.data)

let service_diagnostics t =
  (* Central-service queue depths at the manager, for the deadlock
     watchdog's structured diagnosis. *)
  let lines = ref [] in
  Hashtbl.iter
    (fun lck m ->
      if not (Queue.is_empty m.parked) then
        lines :=
          Printf.sprintf "lock %d: %d request(s) parked at the manager" lck
            (Queue.length m.parked)
          :: !lines)
    t.lock_mgrs;
  Array.iteri
    (fun page m ->
      if not (Queue.is_empty m.waiting) then
        lines :=
          Printf.sprintf "page %d: %d request(s) queued at the page manager (busy=%b)"
            page (Queue.length m.waiting) m.busy
          :: !lines)
    t.page_mgrs;
  if t.barrier.arrivals <> [] then
    lines :=
      Printf.sprintf "barrier: %d of %d arrival(s) at the master"
        (List.length t.barrier.arrivals)
        t.nprocs
      :: !lines;
  List.sort compare !lines

let view t =
  (* The backend-independent processor handle (a record of closures over
     this node) that application bodies receive — the surface shared with
     the bus-cache backends. *)
  {
    Coherence.Node.id = t.id;
    nprocs = t.nprocs;
    geometry = t.rt.geometry;
    malloc = (fun ?name ?align bytes -> malloc t ?name ?align bytes);
    read_word = (fun ?site addr -> read_word t ?site addr);
    write_word = (fun ?site addr value -> write_word t ?site addr value);
    read_word_int = (fun ?site addr -> read_word_int t ?site addr);
    write_word_int = (fun ?site addr value -> write_word_int t ?site addr value);
    read_word_float = (fun ?site addr -> read_word_float t ?site addr);
    write_word_float = (fun ?site addr value -> write_word_float t ?site addr value);
    lock = (fun id -> lock t id);
    unlock = (fun id -> unlock t id);
    barrier = (fun () -> barrier t);
    compute = (fun ops -> compute t ops);
    idle = (fun ns -> idle t ns);
    touch_private = (fun n -> touch_private t n);
  }
