(* A simulated DSM cluster: the engine, the network, one node per
   processor, and the run driver that spawns the SPMD application body on
   every node. *)

type t = {
  engine : Sim.Engine.t;
  cost : Sim.Cost.t;
  stats : Sim.Stats.t;
  cfg : Config.t;
  geometry : Mem.Geometry.t;
  nodes : Node.t array;
  runtime : Node.runtime;
  races : Proto.Race.t list ref;
  trace : (int * Racedetect.Oracle.event) list ref;
  recorder : Sync_trace.recorder option;
  symtab : Mem.Symtab.t;
  window_jobs : int option;  (* Some j: sharded engine, j executing domains *)
  mutable alloc_next : int;  (* pre-run shared allocation cursor *)
}

(* The transport the cluster will actually run: an explicit config wins,
   and fault injection forces the reliable transport on. *)
let resolved_transport (cfg : Config.t) =
  match (cfg.Config.transport, Sim.Fault.active cfg.Config.fault) with
  | (Some _ as tr), _ -> tr
  | None, true -> Some Sim.Transport.default_config
  | None, false -> None

(* Degradation ladder for --sim-jobs: the sharded conservative-PDES
   engine requires every cross-node interaction to be a message with
   the full latency floor. The reliable transport (acks, retransmit
   timers) and delivery jitter schedule wire events below that floor,
   so any configuration using them — and any N <= 0 — falls back to
   the legacy single-heap loop, which is identical for every N by
   virtue of ignoring it. Exported because the trace recorder must
   stamp logs with the schedule the run actually used, not the one the
   flag asked for. *)
let windowed ?(cost = Sim.Cost.default) (cfg : Config.t) =
  match cfg.Config.sim_jobs with
  | Some j when j >= 1 && resolved_transport cfg = None && cost.Sim.Cost.jitter_ns = 0 ->
      true
  | _ -> false

let create ?(cost = Sim.Cost.default) ?(cfg = Config.default) ~nprocs ~pages () =
  if nprocs <= 0 then invalid_arg "Cluster.create: need at least one processor";
  let engine = Sim.Engine.create () in
  let stats = Sim.Stats.create () in
  let geometry = Mem.Geometry.of_cost cost ~pages in
  let races = ref [] in
  let trace = ref [] in
  let timed = ref [] in
  let recorder = if cfg.Config.record_sync then Some (Sync_trace.new_recorder ()) else None in
  let symtab = Mem.Symtab.create () in
  let transport = resolved_transport cfg in
  let window_jobs =
    if windowed ~cost cfg then
      Some (min (Option.get cfg.Config.sim_jobs) nprocs)
    else None
  in
  if window_jobs <> None then
    Sim.Engine.set_sharded engine ~shards:nprocs ~shard_of_pid:Fun.id
      ~lookahead:cost.Sim.Cost.msg_latency_ns;
  (* Per-node stats/trace cells: aliases of the shared structures on the
     legacy engine (charging "per node" is then charging the shared one),
     private structures per shard on the sharded engine, merged after the
     run. *)
  let node_stats =
    match window_jobs with
    | Some _ -> Array.init nprocs (fun _ -> Sim.Stats.create ())
    | None -> Array.make nprocs stats
  in
  let node_trace =
    match window_jobs with
    | Some _ -> Array.init nprocs (fun _ -> ref [])
    | None -> Array.make nprocs trace
  in
  let node_timed =
    match window_jobs with
    | Some _ -> Array.init nprocs (fun _ -> ref [])
    | None -> Array.make nprocs timed
  in
  let runtime =
    {
      Node.engine;
      cost;
      stats;
      cfg;
      geometry;
      net = None;
      races;
      trace;
      timed;
      recorder;
      symtab;
      node_stats;
      node_trace;
      node_timed;
    }
  in
  let nodes = Array.init nprocs (fun id -> Node.create runtime ~id ~nprocs) in
  let size_of = Message.size ~with_read_notices:cfg.Config.detect in
  (* The jitter and fault-plan RNGs are split from one root so they are
     independent streams: enabling fault injection does not perturb the
     jitter draws of an otherwise identical run. *)
  let net_seed =
    match cfg.Config.net_seed with Some s -> s | None -> cfg.Config.seed
  in
  let root_rng = Sim.Rng.create ~seed:net_seed in
  let jitter_rng = Sim.Rng.split root_rng in
  let fault_rng = Sim.Rng.split root_rng in
  (* Sim-level probe: translate the engine/net/transport observer events
     into trace events. Protocol-level events (vector clocks, intervals,
     races) are emitted by {!Node} directly, where the context lives. *)
  let probe =
    match cfg.Config.tracer with
    | None -> None
    | Some sink ->
        Some
          (fun (ev : Sim.Probe.event) ->
            let event =
              match ev with
              | Sim.Probe.Send { src; dst; bytes; tag } ->
                  Trace.Event.Msg_send { src; dst; kind = tag; bytes }
              | Sim.Probe.Deliver { src; dst; bytes; tag } ->
                  Trace.Event.Msg_deliver { src; dst; kind = tag; bytes }
              | Sim.Probe.Fault { src; dst; outcome } ->
                  let outcome =
                    match outcome with
                    | Sim.Probe.Passed { copies; extra_delay_ns } ->
                        Trace.Event.Passed { copies; extra_delay_ns }
                    | Sim.Probe.Dropped -> Trace.Event.Dropped
                    | Sim.Probe.Blackholed -> Trace.Event.Blackholed
                  in
                  Trace.Event.Fault { src; dst; outcome }
              | Sim.Probe.Partition { a; b; up } -> Trace.Event.Partition { a; b; up }
              | Sim.Probe.Retransmit { src; dst; seq } ->
                  Trace.Event.Retransmit { src; dst; seq }
              | Sim.Probe.Ack_tx { src; dst; cum } -> Trace.Event.Ack { src; dst; cum }
              | Sim.Probe.Link_failure { src; dst } ->
                  Trace.Event.Link_failure { src; dst }
              | Sim.Probe.Proc_block { pid; label } ->
                  Trace.Event.Proc_block { proc = pid; label }
              | Sim.Probe.Proc_resume { pid } ->
                  Trace.Event.Proc_resume { proc = pid }
              | Sim.Probe.Proc_finish { pid } ->
                  Trace.Event.Proc_finish { proc = pid }
            in
            Trace.Sink.emit sink ~time:(Sim.Engine.now engine) event)
  in
  Sim.Engine.set_probe engine probe;
  let net =
    Sim.Net.create ~rng:jitter_rng ~fault:(Sim.Fault.validate cfg.Config.fault)
      ~fault_rng ?transport ?probe ~describe:Message.describe
      ~stats_of:(fun src -> node_stats.(src))
      engine cost stats ~nodes:nprocs ~size_of
  in
  runtime.Node.net <- Some net;
  Array.iteri
    (fun id node -> Sim.Net.set_handler net ~node:id (Node.handle_message node))
    nodes;
  Sim.Engine.set_stall_budget engine cfg.Config.watchdog_ns;
  Sim.Engine.add_diagnostic engine (fun () -> Sim.Net.diagnostics net);
  Sim.Engine.add_diagnostic engine (fun () ->
      Node.service_diagnostics nodes.(0));
  {
    engine;
    cost;
    stats;
    cfg;
    geometry;
    nodes;
    runtime;
    races;
    trace;
    recorder;
    symtab;
    window_jobs;
    alloc_next = geometry.Mem.Geometry.base;
  }

let node t id = t.nodes.(id)
let nprocs t = Array.length t.nodes

let alloc t ?name ?(align = 0) bytes =
  (* Pre-run shared allocation, visible to every node (the usual way the
     applications lay out their shared data before the workers start). *)
  if bytes < 0 then invalid_arg "Cluster.alloc";
  let word = t.geometry.Mem.Geometry.word_size in
  let round v quantum = (v + quantum - 1) / quantum * quantum in
  let start = if align > 0 then round t.alloc_next align else round t.alloc_next word in
  let next = start + round bytes word in
  if next > Mem.Geometry.limit t.geometry then
    invalid_arg "Cluster.alloc: shared segment exhausted";
  (match name with
  | Some name -> Mem.Symtab.register t.symtab ~name ~base:start ~bytes
  | None -> ());
  t.alloc_next <- next;
  (* keep the per-node allocators consistent for later Node.malloc calls *)
  Array.iter (fun node -> Node.set_alloc_next node next) t.nodes;
  start

(* Fold the sharded engine's per-node structures back into the shared
   ones. Stats sum; the timed traces merge into (time, proc) order (a
   stable sort over per-node chronological lists, so same-key events keep
   their per-node order), and the untimed trace is the merged timed one
   stripped of timestamps. Everything here is a deterministic function of
   per-node data that is itself identical for every domain count. *)
let merge_sharded t =
  Array.iter
    (fun s -> if s != t.stats then Sim.Stats.add ~into:t.stats s)
    t.runtime.Node.node_stats;
  let merged =
    Array.to_list t.runtime.Node.node_timed
    |> List.concat_map (fun r -> List.rev !r)
    |> List.stable_sort (fun (ta, pa, _) (tb, pb, _) -> compare (ta, pa) (tb, pb))
  in
  t.runtime.Node.timed := List.rev merged;
  t.trace := List.rev_map (fun (_, p, e) -> (p, e)) merged

let run t ~body =
  let spawn_all () =
    Array.iter
      (fun node -> ignore (Sim.Engine.spawn t.engine (fun _pid -> body (Node.view node))))
      t.nodes
  in
  (match t.window_jobs with
  | Some jobs when jobs > 1 ->
      (* The gang, not the pool: windows are microseconds of work issued
         hundreds of thousands of times, so per-round dispatch must be a
         couple of atomic stores, not per-task mutexes. *)
      Parallel.Gang.with_gang ~jobs (fun gang ->
          Sim.Engine.set_batch_runner t.engine (Some (Parallel.Gang.run gang));
          Fun.protect
            ~finally:(fun () -> Sim.Engine.set_batch_runner t.engine None)
            (fun () ->
              spawn_all ();
              Sim.Engine.run t.engine))
  | _ ->
      spawn_all ();
      Sim.Engine.run t.engine);
  if t.window_jobs <> None then merge_sharded t

let races t = Proto.Race.dedup !(t.races)

let trace t = List.rev !(t.trace)

let timed_trace t = List.rev !(t.runtime.Node.timed)

let sync_trace t =
  match t.recorder with Some r -> Some (Sync_trace.of_recorder r) | None -> None

let race_sites t (race : Proto.Race.t) =
  (* With [retain_sites]: the source sites of both halves of a race. *)
  let side (interval, kind) =
    Node.retained_site t.nodes.(interval.Proto.Interval.proc) ~interval ~page:race.page
      ~word:race.word ~kind
  in
  (side race.first, side race.second)

let sim_time t = Sim.Engine.now t.engine

let memory_checksum t =
  (* FNV-1a over the final shared-memory contents: for each page, the
     first coherent copy found on any node. Which node caches which page
     is timing-dependent (and irrelevant); the coherent bytes are not. *)
  let h = ref 0xcbf29ce484222325L in
  let mix byte = h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) 0x100000001b3L in
  for page = 0 to t.geometry.Mem.Geometry.pages - 1 do
    match Array.find_map (fun node -> Node.coherent_page_raw node page) t.nodes with
    | None -> mix 0xFF
    | Some raw ->
        mix 0x01;
        for i = 0 to Bytes.length raw - 1 do
          mix (Char.code (Bytes.unsafe_get raw i))
        done
  done;
  Int64.to_int (Int64.logand !h 0x3fffffffffffffffL)

let stats t = t.stats
let symtab t = t.symtab
let geometry t = t.geometry
let config t = t.cfg
