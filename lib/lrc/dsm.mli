(** Application-facing DSM API — the CVM user interface the four
    applications (and any user program) code against.

    All addresses are byte addresses inside the shared segment returned by
    {!malloc} / {!Cluster.alloc}; accesses must be word-aligned. The
    optional [site] labels are symbolic program counters used by the
    two-run race identification of paper section 6.1. *)

type node = Coherence.Node.t
(** The backend-independent processor handle: the same application bodies
    run unmodified on the LRC DSM cluster and on the snooping-bus cache
    backends. {!Node.view} produces one from an LRC node. *)

val pid : node -> int
val nprocs : node -> int

val malloc : node -> ?name:string -> ?align:int -> int -> int

(** {1 Word accesses} *)

val read_int64 : node -> ?site:string -> int -> int64
val write_int64 : node -> ?site:string -> int -> int64 -> unit
val read_float : node -> ?site:string -> int -> float
val write_float : node -> ?site:string -> int -> float -> unit
val read_int : node -> ?site:string -> int -> int
val write_int : node -> ?site:string -> int -> int -> unit

(** {1 Synchronization} *)

val lock : node -> int -> unit
(** Acquire a lock (not reentrant). Locks are named by small integers;
    they need no declaration. *)

val unlock : node -> int -> unit

val with_lock : node -> int -> (unit -> 'a) -> 'a
(** [with_lock node l f] runs [f] inside the critical section, releasing
    on exceptions. *)

val barrier : node -> unit
(** Global barrier; when detection is on, the race-detection pass runs at
    the barrier master before anyone is released. *)

val consolidate : node -> unit
(** Section 6.3: global-state consolidation for programs that synchronize
    without barriers — an internal global synchronization that runs the
    same detection pass. *)

(** {1 Modeled private computation} *)

val compute : node -> float -> unit
(** [compute node ops] charges [ops] abstract instructions of private
    computation to the cost model. *)

val touch_private : node -> int -> unit
(** [touch_private node n] models [n] private accesses that the static
    analysis could not eliminate: with detection on they pay the full
    analysis-routine cost and count in the private-access rate. *)

val idle : node -> float -> unit
(** Advance simulated time immediately (unlike {!compute}, which accrues
    cost lazily and flushes at the next blocking operation). Used to
    stage interleavings in litmus tests and demos. *)

(** {1 Indexed helpers} *)

val word_size : node -> int
val addr_of_index : node -> int -> int -> int

val read_float_at : node -> ?site:string -> int -> int -> float
val write_float_at : node -> ?site:string -> int -> int -> float -> unit
val read_int_at : node -> ?site:string -> int -> int -> int
val write_int_at : node -> ?site:string -> int -> int -> int -> unit
