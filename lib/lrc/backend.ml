(* The LRC DSM cluster packaged as a {!Coherence.Backend.t}, so the
   driver, the litmus harness and the backend registry can treat it
   interchangeably with the snooping-bus cache backends. *)

let of_cluster cluster =
  {
    Coherence.Backend.name = "lrc";
    nprocs = Cluster.nprocs cluster;
    geometry = Cluster.geometry cluster;
    config = Cluster.config cluster;
    stats = Cluster.stats cluster;
    symtab = Cluster.symtab cluster;
    alloc = (fun ?name ?align bytes -> Cluster.alloc cluster ?name ?align bytes);
    run = (fun body -> Cluster.run cluster ~body);
    races = (fun () -> Cluster.races cluster);
    trace = (fun () -> Cluster.trace cluster);
    timed_trace = (fun () -> Cluster.timed_trace cluster);
    sync_trace = (fun () -> Cluster.sync_trace cluster);
    sim_time = (fun () -> Cluster.sim_time cluster);
    memory_checksum = (fun () -> Cluster.memory_checksum cluster);
    set_access_observer =
      (fun id observer -> Node.set_access_observer (Cluster.node cluster id) observer);
  }

let create ?cost ?cfg ~nprocs ~pages () =
  of_cluster (Cluster.create ?cost ?cfg ~nprocs ~pages ())
