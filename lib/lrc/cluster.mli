(** A simulated DSM cluster: engine, network, one {!Node} per processor,
    and the run driver for SPMD bodies. *)

type t

val create : ?cost:Sim.Cost.t -> ?cfg:Config.t -> nprocs:int -> pages:int -> unit -> t
(** Build a cluster of [nprocs] processors over a shared segment of
    [pages] pages. Page/word sizes come from the cost model. *)

val windowed : ?cost:Sim.Cost.t -> Config.t -> bool
(** Whether this configuration runs on the window-sharded engine: a
    positive [sim_jobs] with no transport in play (explicit or forced by
    fault injection) and zero delivery jitter. Everything else falls
    back to the legacy single-heap loop. Trace recording uses this to
    stamp logs with the schedule actually used. *)

val node : t -> int -> Node.t
val nprocs : t -> int

val alloc : t -> ?name:string -> ?align:int -> int -> int
(** Pre-run shared allocation visible to every node (how the applications
    lay out their shared data before the workers start). [name] registers
    the range in the symbol table so race reports resolve symbolically.
    Raises [Invalid_argument] when the segment is exhausted. *)

val run : t -> body:(Dsm.node -> unit) -> unit
(** Spawn one process per node running [body] and drive the simulation to
    completion. Exceptions from bodies (failed self-checks) propagate;
    blocked processes raise {!Sim.Engine.Deadlock}. *)

val races : t -> Proto.Race.t list
(** Deduplicated race reports from every barrier epoch. *)

val trace : t -> Racedetect.Oracle.trace
(** The access/synchronization event log, when [record_trace] was set. *)

val timed_trace : t -> (int * int * Racedetect.Oracle.event) list
(** The same events with simulated-time stamps, for {!Core.Timeline}. *)

val sync_trace : t -> Sync_trace.t option
(** The recorded lock-grant order, when [record_sync] was set. *)

val race_sites : t -> Proto.Race.t -> string option * string option
(** With [Config.retain_sites]: the source sites of the two halves of a
    race (the single-run identification alternative of section 6.1). *)

val sim_time : t -> int
(** Final simulated time in nanoseconds. *)

val memory_checksum : t -> int
(** Combined digest of every node's view of the shared segment. The fault
    sweep compares it across drop rates: a lossy run that converges must
    reproduce the reliable baseline's memory image bit for bit. *)

val stats : t -> Sim.Stats.t
val symtab : t -> Mem.Symtab.t
val geometry : t -> Mem.Geometry.t
val config : t -> Config.t
