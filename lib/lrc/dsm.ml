(* Application-facing DSM API — what the four applications (and any user
   program) code against. This is the CVM user interface: dynamically
   allocated shared memory, word accesses, locks and barriers, plus a
   [compute]/[touch_private] pair with which SPMD programs model their
   private computation under the cost model.

   Since the coherence-protocol interface was factored out, a node is the
   backend-independent {!Coherence.Node.t} handle, so the same
   application bodies run unmodified on the LRC DSM cluster or on the
   snooping-bus cache backends. *)

type node = Coherence.Node.t

let pid (n : node) = n.Coherence.Node.id
let nprocs (n : node) = n.Coherence.Node.nprocs

let malloc (n : node) ?name ?align bytes = n.Coherence.Node.malloc ?name ?align bytes

let read_int64 (n : node) ?site addr = n.Coherence.Node.read_word ?site addr
let write_int64 (n : node) ?site addr value = n.Coherence.Node.write_word ?site addr value

let read_float (n : node) ?site addr = n.Coherence.Node.read_word_float ?site addr

let write_float (n : node) ?site addr value =
  n.Coherence.Node.write_word_float ?site addr value

let read_int (n : node) ?site addr = n.Coherence.Node.read_word_int ?site addr
let write_int (n : node) ?site addr value = n.Coherence.Node.write_word_int ?site addr value

let lock (n : node) lock_id = n.Coherence.Node.lock lock_id
let unlock (n : node) lock_id = n.Coherence.Node.unlock lock_id

let with_lock node lock_id f =
  lock node lock_id;
  match f () with
  | result ->
      unlock node lock_id;
      result
  | exception exn ->
      unlock node lock_id;
      raise exn

let barrier (n : node) = n.Coherence.Node.barrier ()

let consolidate node =
  (* Section 6.3: global-state consolidation for programs that synchronize
     without barriers — implemented, as in CVM's garbage-collection path,
     as an internal global synchronization that runs the same detection. *)
  barrier node

let compute (n : node) ops = n.Coherence.Node.compute ops
let idle (n : node) ns = n.Coherence.Node.idle ns
let touch_private (n : node) count = n.Coherence.Node.touch_private count

(* Block/word helpers used heavily by the applications. *)

let word_size (n : node) = n.Coherence.Node.geometry.Mem.Geometry.word_size

let addr_of_index node base index = base + (index * word_size node)

let read_float_at node ?site base index = read_float node ?site (addr_of_index node base index)

let write_float_at node ?site base index value =
  write_float node ?site (addr_of_index node base index) value

let read_int_at node ?site base index = read_int node ?site (addr_of_index node base index)

let write_int_at node ?site base index value =
  write_int node ?site (addr_of_index node base index) value
