(* Application-facing DSM API — what the four applications (and any user
   program) code against. This is the CVM user interface: dynamically
   allocated shared memory, word accesses, locks and barriers, plus a
   [compute]/[touch_private] pair with which SPMD programs model their
   private computation under the cost model. *)

type node = Node.t

let pid = Node.id
let nprocs = Node.nprocs

let malloc node ?name ?align bytes = Node.malloc node ?name ?align bytes

let read_int64 node ?site addr = Node.read_word node ?site addr
let write_int64 node ?site addr value = Node.write_word node ?site addr value

let read_float node ?site addr = Node.read_word_float node ?site addr
let write_float node ?site addr value = Node.write_word_float node ?site addr value
let read_int node ?site addr = Node.read_word_int node ?site addr
let write_int node ?site addr value = Node.write_word_int node ?site addr value

let lock = Node.lock
let unlock = Node.unlock

let with_lock node lock_id f =
  lock node lock_id;
  match f () with
  | result ->
      unlock node lock_id;
      result
  | exception exn ->
      unlock node lock_id;
      raise exn

let barrier = Node.barrier

let consolidate node =
  (* Section 6.3: global-state consolidation for programs that synchronize
     without barriers — implemented, as in CVM's garbage-collection path,
     as an internal global synchronization that runs the same detection. *)
  Node.barrier node

let compute = Node.compute
let idle = Node.idle
let touch_private = Node.touch_private

(* Block/word helpers used heavily by the applications. *)

let word_size node = (Node.geometry node).Mem.Geometry.word_size

let addr_of_index node base index = base + (index * word_size node)

let read_float_at node ?site base index = read_float node ?site (addr_of_index node base index)

let write_float_at node ?site base index value =
  write_float node ?site (addr_of_index node base index) value

let read_int_at node ?site base index = read_int node ?site (addr_of_index node base index)

let write_int_at node ?site base index value =
  write_int node ?site (addr_of_index node base index) value
