(* The backend registry: one place that knows every coherence backend by
   name and can build it from a shared configuration. Everything above
   this layer — driver, litmus harness, bench pipeline, CLI — selects a
   backend with [Config.backend] and stays otherwise unchanged. *)

let all = [ "lrc"; "mesi"; "dragon" ]

let describe = function
  | "lrc" -> Some "lazy-release-consistent DSM cluster (message-passing)"
  | "mesi" -> Some "snooping-bus multiprocessor, MESI write-invalidate"
  | "dragon" -> Some "snooping-bus multiprocessor, Dragon write-update"
  | _ -> None

let known name = List.mem name all

let unknown name =
  invalid_arg
    (Printf.sprintf "unknown backend %S (available: %s)" name
       (String.concat ", " all))

let create ?cost ?(cfg = Coherence.Config.default) ~nprocs ~pages () =
  match cfg.Coherence.Config.backend with
  | "lrc" -> Lrc.Backend.create ?cost ~cfg ~nprocs ~pages ()
  | "mesi" -> Cc.Machine.backend ?cost ~cfg ~protocol:Cc.Machine.Mesi ~nprocs ~pages ()
  | "dragon" ->
      Cc.Machine.backend ?cost ~cfg ~protocol:Cc.Machine.Dragon ~nprocs ~pages ()
  | name -> unknown name
