(** Registry of coherence backends, keyed by [Config.backend].

    ["lrc"] is the message-passing DSM cluster; ["mesi"] and ["dragon"]
    are the snooping-bus cache-coherent machines (write-invalidate and
    write-update respectively). *)

val all : string list
(** Every registered backend name, in presentation order. *)

val known : string -> bool

val describe : string -> string option
(** One-line description for [--list-backends]. *)

val create :
  ?cost:Sim.Cost.t ->
  ?cfg:Coherence.Config.t ->
  nprocs:int ->
  pages:int ->
  unit ->
  Coherence.Backend.t
(** Build the backend named by [cfg.backend]. Raises [Invalid_argument]
    with the list of available names on an unknown backend. *)
