(* A snooping-bus cache-coherent multiprocessor running the same online
   race detector as the LRC DSM cluster.

   One simulated machine: [nprocs] processors, each with a private
   set-associative cache ({!Cache}), sharing one memory image over a
   single split-transaction bus. The bus serializes everything — an
   atomic snooping bus gives sequential consistency — so data values are
   always coherent by construction and the caches model *cost* and
   *traffic* only: hits, fills, invalidations, updates, writebacks. Two
   write policies are provided: MESI (write-invalidate) and Dragon
   (write-update).

   Detection is identical in structure to the DSM side: vector-clock
   intervals delimited by acquires/releases/barriers, word-level access
   bitmaps snapshotted at interval close, and the paper's steps 2-5 run
   at each barrier by the last arriver. The crucial difference the bench
   pipeline measures: here bitmaps are collected through shared memory
   (no messages, no extra barrier round on a wire), and consistency
   traffic is bus transactions instead of DSM messages.

   Deliberate scope limits versus the DSM cluster: no fault injection or
   reliable transport (there is no lossy wire on a bus), no multi-writer
   diffs ([stores_from_diffs] is ignored), no [retain_sites], no
   interval GC, and no lock-grant replay ([Config.replay] is ignored —
   the machine is deterministic, so re-running reproduces the order;
   [record_sync] still records it). *)

type protocol = Mesi | Dragon

let protocol_name = function Mesi -> "mesi" | Dragon -> "dragon"

(* Line states of both protocols in one type so the cache structure is
   shared. MESI uses I/S/E/M; Dragon uses I/E/Sc/Sm/M (no S). *)
type lstate =
  | L_inv
  | L_shared  (* MESI S: shared, memory current *)
  | L_excl  (* MESI E / Dragon E: sole copy, clean *)
  | L_mod  (* MESI M / Dragon M: sole copy, dirty *)
  | L_shared_clean  (* Dragon Sc *)
  | L_shared_dirty  (* Dragon Sm: shared, this cache is the owner *)

let is_valid s = s <> L_inv

type lock_state = {
  mutable holder : int option;
  waiting : int Queue.t;  (* proc ids, FCFS in bus-grant order *)
  mutable release_vc : Proto.Vclock.t option;
      (* the machine-wide last releaser's clock: along a mutual-exclusion
         grant chain each release clock dominates everything merged
         before it, so overwriting equals the oracle's accumulation *)
}

type proc = {
  id : int;
  cache : lstate Cache.t;
  debt : float array;  (* fractional-ns accumulator, flushed at sync/bus *)
  vc : Proto.Vclock.t;
  mutable cur : Proto.Interval.t;
  mutable my_closed : Proto.Interval.t list;
  read_bits : (int, Mem.Bitmap.t) Hashtbl.t;  (* page -> bitmap, current interval *)
  write_bits : (int, Mem.Bitmap.t) Hashtbl.t;
  mutable pid : Sim.Engine.pid;
  mutable access_observer : Coherence.Backend.observer option;
  mutable alloc_next : int;
}

type t = {
  engine : Sim.Engine.t;
  cost : Sim.Cost.t;
  stats : Sim.Stats.t;
  cfg : Coherence.Config.t;
  geometry : Mem.Geometry.t;
  symtab : Mem.Symtab.t;
  protocol : protocol;
  nprocs : int;
  line_shift : int;  (* addr lsr line_shift = global line number *)
  line_words : int;
  pages : Mem.Page.t array;  (* the single coherent memory image *)
  procs : proc array;
  mutable bus_busy_until : int;  (* FCFS arbitration in virtual time *)
  locks : (int, lock_state) Hashtbl.t;
  bitmap_store :
    (Proto.Interval.id * int, Racedetect.Detector.bitmap_pair) Hashtbl.t;
      (* machine-global: the detector reads bitmaps through shared memory
         instead of a wire round, which is the CC-vs-DSM separation *)
  races : Proto.Race.t list ref;
  trace : (int * Racedetect.Oracle.event) list ref;
  timed : (int * int * Racedetect.Oracle.event) list ref;
  recorder : Coherence.Sync_trace.recorder option;
  elide : (string, unit) Hashtbl.t;
  mutable epoch : int;
  mutable barrier_arrivals : int list;  (* proc ids, arrival order reversed *)
  mutable barrier_intervals : Proto.Interval.t list;
  mutable race_seen : bool;  (* for [first_race_only] *)
}

(* ------------------------------------------------------------------ *)
(* Time accounting (mirrors Lrc.Node: debt accumulates, flushes at
   synchronization and bus points)                                      *)

let charge_local p ns = Array.unsafe_set p.debt 0 (Array.unsafe_get p.debt 0 +. ns)

let charge_category m p category ns =
  Sim.Stats.charge m.stats category ns;
  charge_local p ns

let flush_time p =
  let debt = Array.unsafe_get p.debt 0 in
  if debt >= 1.0 then begin
    let ns = int_of_float debt in
    Array.unsafe_set p.debt 0 (debt -. float_of_int ns);
    Sim.Engine.advance ns
  end

(* ------------------------------------------------------------------ *)
(* Trace recording                                                      *)

let emit_trace m p event =
  if m.cfg.Coherence.Config.record_trace then begin
    m.trace := (p.id, event) :: !(m.trace);
    m.timed := (Sim.Engine.now m.engine, p.id, event) :: !(m.timed)
  end

let trace_read m p addr =
  if m.cfg.Coherence.Config.record_trace then
    emit_trace m p (Racedetect.Oracle.Read addr)

let trace_write m p addr =
  if m.cfg.Coherence.Config.record_trace then
    emit_trace m p (Racedetect.Oracle.Write addr)

let emit_sink m event =
  match m.cfg.Coherence.Config.tracer with
  | Some sink -> Trace.Sink.emit sink ~time:(Sim.Engine.now m.engine) event
  | None -> ()

let tracing m = m.cfg.Coherence.Config.tracer <> None

(* ------------------------------------------------------------------ *)
(* Interval lifecycle                                                   *)

let detect_on m = m.cfg.Coherence.Config.detect

let words_per_page m = Mem.Geometry.words_per_page m.geometry

let open_interval m p =
  Proto.Vclock.incr p.vc p.id;
  let index = Proto.Vclock.get p.vc p.id in
  let interval =
    Proto.Interval.create ~proc:p.id ~index ~vc:(Proto.Vclock.copy p.vc) ~epoch:m.epoch
  in
  p.cur <- interval;
  if tracing m then
    emit_sink m (Trace.Event.Interval_open { proc = p.id; index; epoch = m.epoch });
  m.stats.Sim.Stats.intervals_created <- m.stats.Sim.Stats.intervals_created + 1;
  charge_local p m.cost.Sim.Cost.interval_setup_ns

let snapshot_bitmaps m p interval =
  (* Freeze the closing interval's access bitmaps into the machine-global
     store and derive its page lists. On the bus backends the write-page
     list comes from the write bitmaps (there are no page faults to
     populate it); an elided site therefore contributes no page entry,
     which is sound because elided sites are statically race-free. *)
  let id = Proto.Interval.id interval in
  let pages = Hashtbl.create 8 in
  Hashtbl.iter (fun page _ -> Hashtbl.replace pages page ()) p.read_bits;
  Hashtbl.iter (fun page _ -> Hashtbl.replace pages page ()) p.write_bits;
  Hashtbl.iter
    (fun page () ->
      let reads =
        match Hashtbl.find_opt p.read_bits page with
        | Some bm -> bm
        | None -> Mem.Bitmap.create (words_per_page m)
      in
      let writes =
        match Hashtbl.find_opt p.write_bits page with
        | Some bm -> bm
        | None -> Mem.Bitmap.create (words_per_page m)
      in
      if Mem.Bitmap.any_set reads then Proto.Interval.add_read_page interval page;
      if Mem.Bitmap.any_set writes then Proto.Interval.add_write_page interval page;
      Hashtbl.replace m.bitmap_store (id, page)
        { Racedetect.Detector.reads; writes };
      m.stats.Sim.Stats.bitmaps_total <- m.stats.Sim.Stats.bitmaps_total + 1;
      charge_category m p Sim.Stats.Cvm_mods m.cost.Sim.Cost.notice_setup_ns)
    pages;
  Hashtbl.reset p.read_bits;
  Hashtbl.reset p.write_bits

let close_interval m p =
  let interval = p.cur in
  interval.Proto.Interval.closed <- true;
  if detect_on m then snapshot_bitmaps m p interval;
  p.my_closed <- interval :: p.my_closed;
  if tracing m then
    emit_sink m
      (Trace.Event.Interval_close
         {
           proc = p.id;
           index = (Proto.Interval.id interval).Proto.Interval.index;
           epoch = interval.Proto.Interval.epoch;
           write_pages = interval.Proto.Interval.write_pages;
           read_pages = interval.Proto.Interval.read_pages;
         });
  interval

(* ------------------------------------------------------------------ *)
(* Instrumentation (identical cost structure to the DSM side)           *)

let instrument m p page word kind =
  charge_category m p Sim.Stats.Proc_call m.cost.Sim.Cost.proc_call_ns;
  charge_category m p Sim.Stats.Access_check m.cost.Sim.Cost.access_check_ns;
  let table =
    match kind with Proto.Race.Read -> p.read_bits | Proto.Race.Write -> p.write_bits
  in
  let bitmap =
    match Hashtbl.find_opt table page with
    | Some bm -> bm
    | None ->
        let bm = Mem.Bitmap.create (words_per_page m) in
        Hashtbl.replace table page bm;
        bm
  in
  Mem.Bitmap.set bitmap word

let elided m site = Hashtbl.length m.elide > 0 && Hashtbl.mem m.elide site

let observe p ~site ~addr kind =
  match p.access_observer with Some f -> f ~site ~addr kind | None -> ()

let read_note m p ~site addr page word =
  charge_local p m.cost.Sim.Cost.instr_ns;
  m.stats.Sim.Stats.shared_reads <- m.stats.Sim.Stats.shared_reads + 1;
  if detect_on m then
    if elided m site then
      m.stats.Sim.Stats.elided_checks <- m.stats.Sim.Stats.elided_checks + 1
    else instrument m p page word Proto.Race.Read;
  observe p ~site ~addr Proto.Race.Read;
  trace_read m p addr

let write_note m p ~site addr page word =
  charge_local p m.cost.Sim.Cost.instr_ns;
  m.stats.Sim.Stats.shared_writes <- m.stats.Sim.Stats.shared_writes + 1;
  if detect_on m then
    if elided m site then
      m.stats.Sim.Stats.elided_checks <- m.stats.Sim.Stats.elided_checks + 1
    else instrument m p page word Proto.Race.Write;
  observe p ~site ~addr Proto.Race.Write;
  trace_write m p addr

(* ------------------------------------------------------------------ *)
(* The bus                                                              *)

type bus_kind = B_rd | B_rdx | B_upgr | B_upd | B_wb | B_sync

let trace_kind = function
  | B_rd -> Trace.Event.Bus_rd
  | B_rdx -> Trace.Event.Bus_rdx
  | B_upgr -> Trace.Event.Bus_upgr
  | B_upd -> Trace.Event.Bus_upd
  | B_wb -> Trace.Event.Bus_wb
  | B_sync -> Trace.Event.Bus_sync

(* One bus transaction by processor [p]. Called after the requesting
   processor has already applied the snoop-side state changes — the
   transaction is atomic at arbitration, and the wait models bus
   occupancy. FCFS arbitration is a single virtual-time high-water mark;
   contention appears as [start - now]. *)
let bus m p ~kind ~line ~words ~supply =
  flush_time p;
  let stats = m.stats in
  stats.Sim.Stats.bus_transactions <- stats.Sim.Stats.bus_transactions + 1;
  stats.Sim.Stats.bus_words <- stats.Sim.Stats.bus_words + words;
  (match kind with
  | B_rd -> stats.Sim.Stats.bus_reads <- stats.Sim.Stats.bus_reads + 1
  | B_rdx -> stats.Sim.Stats.bus_read_x <- stats.Sim.Stats.bus_read_x + 1
  | B_upgr -> stats.Sim.Stats.bus_upgrades <- stats.Sim.Stats.bus_upgrades + 1
  | B_upd -> stats.Sim.Stats.bus_updates <- stats.Sim.Stats.bus_updates + 1
  | B_wb -> stats.Sim.Stats.bus_writebacks <- stats.Sim.Stats.bus_writebacks + 1
  | B_sync -> stats.Sim.Stats.bus_syncs <- stats.Sim.Stats.bus_syncs + 1);
  if tracing m then
    emit_sink m (Trace.Event.Bus { proc = p.id; kind = trace_kind kind; line });
  let supply_ns =
    match supply with
    | `Mem -> m.cost.Sim.Cost.bus_mem_ns
    | `Cache -> m.cost.Sim.Cost.bus_c2c_ns
    | `None -> 0.0
  in
  let dur_ns =
    m.cost.Sim.Cost.bus_arb_ns
    +. (m.cost.Sim.Cost.bus_word_ns *. float_of_int words)
    +. supply_ns
  in
  let dur = max 1 (int_of_float dur_ns) in
  let now = Sim.Engine.now m.engine in
  let start = max now m.bus_busy_until in
  m.bus_busy_until <- start + dur;
  Sim.Engine.advance (start + dur - now)

let others m p f =
  Array.iter (fun q -> if q.id <> p.id then f q) m.procs

let line_of m addr = addr lsr m.line_shift

(* Claim a cache slot for [line]; a displaced dirty line pays a
   writeback transaction (clean evictions are silent). *)
let fill_line m p ~line ~state =
  let slot, evicted = Cache.fill p.cache ~line ~is_valid in
  slot.state <- state;
  match evicted with
  | None -> ()
  | Some { Cache.victim_tag; victim_state } ->
      m.stats.Sim.Stats.cache_evictions <- m.stats.Sim.Stats.cache_evictions + 1;
      (match victim_state with
      | L_mod | L_shared_dirty ->
          bus m p ~kind:B_wb ~line:victim_tag ~words:m.line_words ~supply:`Mem
      | _ -> ())

(* --- MESI ---------------------------------------------------------- *)

let mesi_read_miss m p ~line =
  let shared = ref false in
  others m p (fun q ->
      match Cache.probe q.cache ~line ~is_valid with
      | Some slot ->
          shared := true;
          (* an M supplier flushes to memory as it downgrades; the flush
             rides the same fill transaction (Illinois-style), so it is
             not counted as a separate writeback *)
          (match slot.state with
          | L_mod | L_excl -> slot.state <- L_shared
          | _ -> ())
      | None -> ());
  fill_line m p ~line ~state:(if !shared then L_shared else L_excl);
  bus m p ~kind:B_rd ~line ~words:m.line_words
    ~supply:(if !shared then `Cache else `Mem)

let mesi_write_hit m p slot ~line =
  match slot.Cache.state with
  | L_mod -> ()
  | L_excl -> slot.Cache.state <- L_mod
  | L_shared ->
      others m p (fun q ->
          match Cache.probe q.cache ~line ~is_valid with
          | Some s ->
              s.Cache.state <- L_inv;
              m.stats.Sim.Stats.invalidations <- m.stats.Sim.Stats.invalidations + 1
          | None -> ());
      slot.Cache.state <- L_mod;
      bus m p ~kind:B_upgr ~line ~words:0 ~supply:`None
  | L_inv | L_shared_clean | L_shared_dirty -> assert false

let mesi_write_miss m p ~line =
  let shared = ref false in
  others m p (fun q ->
      match Cache.probe q.cache ~line ~is_valid with
      | Some slot ->
          shared := true;
          slot.Cache.state <- L_inv;
          m.stats.Sim.Stats.invalidations <- m.stats.Sim.Stats.invalidations + 1
      | None -> ());
  fill_line m p ~line ~state:L_mod;
  bus m p ~kind:B_rdx ~line ~words:m.line_words
    ~supply:(if !shared then `Cache else `Mem)

(* --- Dragon -------------------------------------------------------- *)

let dragon_read_miss m p ~line =
  let shared = ref false in
  others m p (fun q ->
      match Cache.probe q.cache ~line ~is_valid with
      | Some slot ->
          shared := true;
          (match slot.Cache.state with
          | L_mod -> slot.Cache.state <- L_shared_dirty  (* keeps ownership *)
          | L_excl -> slot.Cache.state <- L_shared_clean
          | _ -> ())
      | None -> ());
  fill_line m p ~line ~state:(if !shared then L_shared_clean else L_excl);
  bus m p ~kind:B_rd ~line ~words:m.line_words
    ~supply:(if !shared then `Cache else `Mem)

let dragon_update m p slot ~line =
  (* write to a shared line: broadcast the word; every holder applies it
     in place, the previous owner demotes, the writer becomes owner. If
     the other copies have meanwhile been evicted, silently promote *)
  let sharers = ref 0 in
  others m p (fun q ->
      match Cache.probe q.cache ~line ~is_valid with
      | Some s ->
          incr sharers;
          m.stats.Sim.Stats.updates_applied <- m.stats.Sim.Stats.updates_applied + 1;
          if s.Cache.state = L_shared_dirty then s.Cache.state <- L_shared_clean
      | None -> ());
  if !sharers = 0 then slot.Cache.state <- L_mod
  else begin
    slot.Cache.state <- L_shared_dirty;
    bus m p ~kind:B_upd ~line ~words:1 ~supply:`None
  end

let dragon_write_hit m p slot ~line =
  match slot.Cache.state with
  | L_mod -> ()
  | L_excl -> slot.Cache.state <- L_mod
  | L_shared_clean | L_shared_dirty -> dragon_update m p slot ~line
  | L_inv | L_shared -> assert false

let dragon_write_miss m p ~line =
  dragon_read_miss m p ~line;
  match Cache.find p.cache ~line ~is_valid with
  | Some slot -> dragon_write_hit m p slot ~line
  | None -> assert false

(* --- protocol-independent access path ------------------------------ *)

let cache_read m p addr =
  let line = line_of m addr in
  charge_local p m.cost.Sim.Cost.cache_hit_ns;
  match Cache.find p.cache ~line ~is_valid with
  | Some _ -> m.stats.Sim.Stats.cache_hits <- m.stats.Sim.Stats.cache_hits + 1
  | None ->
      m.stats.Sim.Stats.cache_misses <- m.stats.Sim.Stats.cache_misses + 1;
      (match m.protocol with
      | Mesi -> mesi_read_miss m p ~line
      | Dragon -> dragon_read_miss m p ~line)

let cache_write m p addr =
  let line = line_of m addr in
  charge_local p m.cost.Sim.Cost.cache_hit_ns;
  match Cache.find p.cache ~line ~is_valid with
  | Some slot ->
      m.stats.Sim.Stats.cache_hits <- m.stats.Sim.Stats.cache_hits + 1;
      (match m.protocol with
      | Mesi -> mesi_write_hit m p slot ~line
      | Dragon -> dragon_write_hit m p slot ~line)
  | None ->
      m.stats.Sim.Stats.cache_misses <- m.stats.Sim.Stats.cache_misses + 1;
      (match m.protocol with
      | Mesi -> mesi_write_miss m p ~line
      | Dragon -> dragon_write_miss m p ~line)

(* ------------------------------------------------------------------ *)
(* Shared-memory accesses                                               *)

let bad_shared addr =
  invalid_arg (Printf.sprintf "Machine: address 0x%x outside the shared segment" addr)

let bad_aligned addr =
  invalid_arg (Printf.sprintf "Machine: unaligned shared access 0x%x" addr)

let check_addr m addr =
  if not (Mem.Geometry.in_shared m.geometry addr) then bad_shared addr;
  if addr mod m.geometry.Mem.Geometry.word_size <> 0 then bad_aligned addr

let read_access m p ~site addr =
  check_addr m addr;
  let page = Mem.Geometry.page_of_addr m.geometry addr in
  let word = Mem.Geometry.word_in_page m.geometry addr in
  read_note m p ~site addr page word;
  cache_read m p addr;
  (page, word)

let write_access m p ~site addr =
  check_addr m addr;
  let page = Mem.Geometry.page_of_addr m.geometry addr in
  let word = Mem.Geometry.word_in_page m.geometry addr in
  write_note m p ~site addr page word;
  cache_write m p addr;
  (page, word)

let read_word m p ?(site = "?") addr =
  let page, word = read_access m p ~site addr in
  Mem.Page.get_int64 m.pages.(page) word

let read_word_int m p ?(site = "?") addr =
  let page, word = read_access m p ~site addr in
  Mem.Page.get_int m.pages.(page) word

let read_word_float m p ?(site = "?") addr =
  let page, word = read_access m p ~site addr in
  Mem.Page.get_float m.pages.(page) word

let write_word m p ?(site = "?") addr value =
  let page, word = write_access m p ~site addr in
  Mem.Page.set_int64 m.pages.(page) word value

let write_word_int m p ?(site = "?") addr value =
  let page, word = write_access m p ~site addr in
  Mem.Page.set_int m.pages.(page) word value

let write_word_float m p ?(site = "?") addr value =
  let page, word = write_access m p ~site addr in
  Mem.Page.set_float m.pages.(page) word value

let touch_private m p n =
  m.stats.Sim.Stats.private_accesses <- m.stats.Sim.Stats.private_accesses + n;
  let fn = float_of_int n in
  charge_local p (m.cost.Sim.Cost.instr_ns *. fn);
  if detect_on m then begin
    charge_category m p Sim.Stats.Proc_call (m.cost.Sim.Cost.proc_call_ns *. fn);
    charge_category m p Sim.Stats.Access_check (m.cost.Sim.Cost.access_check_ns *. fn)
  end

let compute m p ops = charge_local p (m.cost.Sim.Cost.instr_ns *. ops)

let idle _m p ns =
  flush_time p;
  Sim.Engine.advance (int_of_float ns)

(* ------------------------------------------------------------------ *)
(* Locks: a bus read-modify-write plus an FCFS grant queue              *)

let lock_state m lock =
  match Hashtbl.find_opt m.locks lock with
  | Some l -> l
  | None ->
      let l = { holder = None; waiting = Queue.create (); release_vc = None } in
      Hashtbl.add m.locks lock l;
      l

let grant m p l lock_id =
  (match m.recorder with
  | Some recorder -> Coherence.Sync_trace.record recorder ~lock:lock_id ~grantee:p.id
  | None -> ());
  ignore (close_interval m p);
  (match l.release_vc with
  | Some vc -> Proto.Vclock.merge_into ~dst:p.vc vc
  | None -> ());
  open_interval m p;
  emit_trace m p (Racedetect.Oracle.Acquire lock_id);
  if tracing m then
    emit_sink m
      (Trace.Event.Lock_acquire
         { proc = p.id; lock = lock_id; vc = Proto.Vclock.copy p.vc })

let lock m p lock_id =
  flush_time p;
  m.stats.Sim.Stats.lock_acquires <- m.stats.Sim.Stats.lock_acquires + 1;
  let l = lock_state m lock_id in
  if l.holder = Some p.id then invalid_arg "Machine.lock: lock already held (not reentrant)";
  bus m p ~kind:B_sync ~line:lock_id ~words:1 ~supply:`Mem;
  (match l.holder with
  | None -> l.holder <- Some p.id
  | Some _ ->
      Queue.add p.id l.waiting;
      Sim.Engine.block ~label:(Printf.sprintf "grant of lock %d (bus)" lock_id);
      (* the releaser installed us as holder before waking us *)
      assert (l.holder = Some p.id));
  grant m p l lock_id

let unlock m p lock_id =
  flush_time p;
  let l = lock_state m lock_id in
  if l.holder <> Some p.id then invalid_arg "Machine.unlock: lock not held";
  bus m p ~kind:B_sync ~line:lock_id ~words:1 ~supply:`Mem;
  ignore (close_interval m p);
  l.release_vc <- Some (Proto.Vclock.copy p.vc);
  open_interval m p;
  emit_trace m p (Racedetect.Oracle.Release lock_id);
  if tracing m then
    emit_sink m
      (Trace.Event.Lock_release
         { proc = p.id; lock = lock_id; vc = Proto.Vclock.copy p.vc });
  match Queue.take_opt l.waiting with
  | Some next ->
      l.holder <- Some next;
      Sim.Engine.wake m.engine m.procs.(next).pid
  | None -> l.holder <- None

(* ------------------------------------------------------------------ *)
(* Barrier: last arriver runs detection centrally, then releases all    *)

let empty_bitmap_pair m =
  {
    Racedetect.Detector.reads = Mem.Bitmap.create (words_per_page m);
    writes = Mem.Bitmap.create (words_per_page m);
  }

let run_detection m =
  let stats = m.stats in
  let epoch_intervals =
    List.filter
      (fun iv -> iv.Proto.Interval.epoch = m.epoch)
      (List.rev m.barrier_intervals)
  in
  let before = stats.Sim.Stats.interval_comparisons in
  let probe =
    if tracing m then
      Some
        (fun (e : Racedetect.Checklist.entry) ->
          emit_sink m (Trace.Event.Check_entry { a = e.a; b = e.b; pages = e.pages }))
    else None
  in
  let n_concurrent, entries =
    Racedetect.Detector.concurrent_check_list ~stats ?probe epoch_intervals
  in
  let comparisons = stats.Sim.Stats.interval_comparisons - before in
  let intervals_ns =
    (m.cost.Sim.Cost.vv_compare_ns *. float_of_int comparisons)
    +. (200.0 *. float_of_int n_concurrent)
  in
  Sim.Stats.charge stats Sim.Stats.Intervals intervals_ns;
  let before_b = stats.Sim.Stats.bitmap_comparisons in
  let source id ~page =
    match Hashtbl.find_opt m.bitmap_store (id, page) with
    | Some pair -> pair
    | None -> empty_bitmap_pair m
  in
  let races =
    List.concat_map
      (Racedetect.Detector.races_of_entry ~stats ~geometry:m.geometry ~epoch:m.epoch
         ~source)
      entries
    |> Proto.Race.dedup
  in
  let compared = stats.Sim.Stats.bitmap_comparisons - before_b in
  let bitmaps_ns =
    m.cost.Sim.Cost.bitmap_word_ns *. float_of_int (3 * compared * words_per_page m)
  in
  Sim.Stats.charge stats Sim.Stats.Bitmaps bitmaps_ns;
  (* the last arriver performs the detection serially before anyone is
     released, like the DSM barrier master *)
  Sim.Engine.advance (int_of_float (intervals_ns +. bitmaps_ns));
  races

let release_barrier m ~last ~entered =
  let races = if detect_on m then run_detection m else [] in
  let races =
    if m.cfg.Coherence.Config.first_race_only && m.race_seen then []
    else begin
      if races <> [] then m.race_seen <- true;
      races
    end
  in
  m.races := races @ !(m.races);
  if tracing m then List.iter (fun r -> emit_sink m (Trace.Event.Race r)) races;
  m.stats.Sim.Stats.races_reported <-
    m.stats.Sim.Stats.races_reported + List.length races;
  m.stats.Sim.Stats.barriers <- m.stats.Sim.Stats.barriers + 1;
  let merged = Proto.Vclock.create m.nprocs in
  Array.iter (fun q -> Proto.Vclock.merge_into ~dst:merged q.vc) m.procs;
  m.epoch <- m.epoch + 1;
  Array.iter
    (fun q ->
      Proto.Vclock.merge_into ~dst:q.vc merged;
      open_interval m q;
      if tracing m then
        emit_sink m
          (Trace.Event.Barrier_leave
             { proc = q.id; epoch = entered; vc = Proto.Vclock.copy q.vc }))
    m.procs;
  Hashtbl.reset m.bitmap_store;
  let arrivals = m.barrier_arrivals in
  m.barrier_arrivals <- [];
  m.barrier_intervals <- [];
  List.iter
    (fun qid -> if qid <> last then Sim.Engine.wake m.engine m.procs.(qid).pid)
    arrivals

let barrier m p =
  flush_time p;
  let entered = m.epoch in
  emit_sink m (Trace.Event.Barrier_enter { proc = p.id; epoch = entered });
  (* arrival is a fetch-and-increment on the barrier word *)
  bus m p ~kind:B_sync ~line:0 ~words:1 ~supply:`Mem;
  ignore (close_interval m p);
  emit_trace m p Racedetect.Oracle.Barrier;
  m.barrier_arrivals <- p.id :: m.barrier_arrivals;
  m.barrier_intervals <- List.rev_append p.my_closed m.barrier_intervals;
  p.my_closed <- [];
  if List.length m.barrier_arrivals < m.nprocs then
    Sim.Engine.block ~label:"barrier release (bus)"
  else release_barrier m ~last:p.id ~entered

(* ------------------------------------------------------------------ *)
(* Allocation                                                           *)

let malloc m p ?name ?(align = 0) bytes =
  (* Same bump-allocator discipline as the DSM nodes: SPMD programs call
     at the same program points on every processor and compute identical
     addresses; names register once, via processor 0. *)
  if bytes < 0 then invalid_arg "Machine.malloc";
  let word = m.geometry.Mem.Geometry.word_size in
  let round v quantum = (v + quantum - 1) / quantum * quantum in
  let start = if align > 0 then round p.alloc_next align else round p.alloc_next word in
  let next = start + round bytes word in
  if next > Mem.Geometry.limit m.geometry then
    invalid_arg "Machine.malloc: shared segment exhausted";
  p.alloc_next <- next;
  (match name with
  | Some name when p.id = 0 -> Mem.Symtab.register m.symtab ~name ~base:start ~bytes
  | _ -> ());
  start

let alloc m ?name ?(align = 0) bytes =
  let start = malloc m m.procs.(0) ?name ~align bytes in
  let next = m.procs.(0).alloc_next in
  Array.iter (fun p -> p.alloc_next <- next) m.procs;
  start

(* ------------------------------------------------------------------ *)
(* Construction and the Backend packaging                               *)

let is_pow2 n = n > 0 && n land (n - 1) = 0

let shift_of n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ?(cost = Sim.Cost.default) ?(cfg = Coherence.Config.default) ~protocol
    ~nprocs ~pages () =
  if nprocs <= 0 then invalid_arg "Machine.create: need at least one processor";
  if Sim.Fault.active cfg.Coherence.Config.fault then
    invalid_arg
      "Machine.create: fault injection needs the DSM backend (a snooping bus has no \
       lossy wire)";
  if cfg.Coherence.Config.transport <> None then
    invalid_arg
      "Machine.create: the reliable transport needs the DSM backend (a snooping bus \
       has no lossy wire)";
  let line_bytes = cfg.Coherence.Config.cc_line_bytes in
  let word_size = cost.Sim.Cost.word_size in
  if not (is_pow2 line_bytes) || line_bytes < word_size then
    invalid_arg "Machine.create: cc_line_bytes must be a power of two >= the word size";
  if line_bytes > cost.Sim.Cost.page_size then
    invalid_arg "Machine.create: cc_line_bytes must not exceed the page size";
  if cfg.Coherence.Config.cc_ways <= 0 then
    invalid_arg "Machine.create: cc_ways must be positive";
  let engine = Sim.Engine.create () in
  let stats = Sim.Stats.create () in
  let geometry = Mem.Geometry.of_cost cost ~pages in
  let symtab = Mem.Symtab.create () in
  let recorder =
    if cfg.Coherence.Config.record_sync then Some (Coherence.Sync_trace.new_recorder ())
    else None
  in
  let elide = Hashtbl.create 64 in
  (match cfg.Coherence.Config.elide_sites with
  | Some sites -> List.iter (fun site -> Hashtbl.replace elide site ()) sites
  | None -> ());
  let probe =
    (* sim-level events for the record/replay sink; a bus machine has no
       network, so only the scheduling events can occur *)
    match cfg.Coherence.Config.tracer with
    | None -> None
    | Some sink ->
        Some
          (fun (ev : Sim.Probe.event) ->
            let event =
              match ev with
              | Sim.Probe.Proc_block { pid; label } ->
                  Some (Trace.Event.Proc_block { proc = pid; label })
              | Sim.Probe.Proc_resume { pid } ->
                  Some (Trace.Event.Proc_resume { proc = pid })
              | Sim.Probe.Proc_finish { pid } ->
                  Some (Trace.Event.Proc_finish { proc = pid })
              | _ -> None
            in
            match event with
            | Some event -> Trace.Sink.emit sink ~time:(Sim.Engine.now engine) event
            | None -> ())
  in
  Sim.Engine.set_probe engine probe;
  Sim.Engine.set_stall_budget engine cfg.Coherence.Config.watchdog_ns;
  let mem_pages =
    Array.init geometry.Mem.Geometry.pages (fun _ ->
        Mem.Page.create ~page_size:geometry.Mem.Geometry.page_size
          ~word_size:geometry.Mem.Geometry.word_size)
  in
  let procs =
    Array.init nprocs (fun id ->
        let vc = Proto.Vclock.create nprocs in
        {
          id;
          cache =
            Cache.create ~sets:cfg.Coherence.Config.cc_sets
              ~ways:cfg.Coherence.Config.cc_ways ~invalid:L_inv;
          debt = [| 0.0 |];
          vc;
          cur =
            Proto.Interval.create ~proc:id ~index:0 ~vc:(Proto.Vclock.copy vc) ~epoch:0;
          my_closed = [];
          read_bits = Hashtbl.create 16;
          write_bits = Hashtbl.create 16;
          pid = id;
          access_observer = None;
          alloc_next = geometry.Mem.Geometry.base;
        })
  in
  let m =
    {
      engine;
      cost;
      stats;
      cfg;
      geometry;
      symtab;
      protocol;
      nprocs;
      line_shift = shift_of line_bytes;
      line_words = line_bytes / word_size;
      pages = mem_pages;
      procs;
      bus_busy_until = 0;
      locks = Hashtbl.create 16;
      bitmap_store = Hashtbl.create 64;
      races = ref [];
      trace = ref [];
      timed = ref [];
      recorder;
      elide;
      epoch = 0;
      barrier_arrivals = [];
      barrier_intervals = [];
      race_seen = false;
    }
  in
  Array.iter (fun p -> open_interval m p) m.procs;
  Sim.Engine.add_diagnostic engine (fun () ->
      Hashtbl.fold
        (fun lock l acc ->
          match l.holder with
          | Some holder ->
              Printf.sprintf "lock %d: held by p%d, %d waiting" lock holder
                (Queue.length l.waiting)
              :: acc
          | None -> acc)
        m.locks
        [ Printf.sprintf "barrier: %d/%d arrived" (List.length m.barrier_arrivals) nprocs ]);
  m

let view m p =
  {
    Coherence.Node.id = p.id;
    nprocs = m.nprocs;
    geometry = m.geometry;
    malloc = (fun ?name ?align bytes -> malloc m p ?name ?align bytes);
    read_word = (fun ?site addr -> read_word m p ?site addr);
    write_word = (fun ?site addr value -> write_word m p ?site addr value);
    read_word_int = (fun ?site addr -> read_word_int m p ?site addr);
    write_word_int = (fun ?site addr value -> write_word_int m p ?site addr value);
    read_word_float = (fun ?site addr -> read_word_float m p ?site addr);
    write_word_float = (fun ?site addr value -> write_word_float m p ?site addr value);
    lock = (fun l -> lock m p l);
    unlock = (fun l -> unlock m p l);
    barrier = (fun () -> barrier m p);
    compute = (fun ops -> compute m p ops);
    idle = (fun ns -> idle m p ns);
    touch_private = (fun n -> touch_private m p n);
  }

let run m body =
  Array.iter
    (fun p -> p.pid <- Sim.Engine.spawn m.engine (fun _pid -> body (view m p)))
    m.procs;
  Sim.Engine.run m.engine

let memory_checksum m =
  (* FNV-1a over the final memory image. Unlike the DSM cluster every
     page is present (the bus machine's memory is the coherent copy), so
     the per-page presence tag is always 0x01. *)
  let h = ref 0xcbf29ce484222325L in
  let mix byte = h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) 0x100000001b3L in
  Array.iter
    (fun page ->
      mix 0x01;
      let raw = Mem.Page.raw page in
      for i = 0 to Bytes.length raw - 1 do
        mix (Char.code (Bytes.unsafe_get raw i))
      done)
    m.pages;
  Int64.to_int (Int64.logand !h 0x3fffffffffffffffL)

let backend ?cost ?cfg ~protocol ~nprocs ~pages () =
  let m = create ?cost ?cfg ~protocol ~nprocs ~pages () in
  {
    Coherence.Backend.name = protocol_name protocol;
    nprocs = m.nprocs;
    geometry = m.geometry;
    config = m.cfg;
    stats = m.stats;
    symtab = m.symtab;
    alloc = (fun ?name ?align bytes -> alloc m ?name ?align bytes);
    run = (fun body -> run m body);
    races = (fun () -> Proto.Race.dedup !(m.races));
    trace = (fun () -> List.rev !(m.trace));
    timed_trace = (fun () -> List.rev !(m.timed));
    sync_trace =
      (fun () ->
        match m.recorder with
        | Some r -> Some (Coherence.Sync_trace.of_recorder r)
        | None -> None);
    sim_time = (fun () -> Sim.Engine.now m.engine);
    memory_checksum = (fun () -> memory_checksum m);
    set_access_observer =
      (fun id observer -> m.procs.(id).access_observer <- Some observer);
  }
