(** Set-associative per-processor cache metadata with LRU replacement.

    Holds tags and protocol states only — the data words live in the
    machine's single coherent memory image. Parametric in the state type
    so MESI and Dragon share the structure. *)

type 'a slot = {
  mutable tag : int;  (** global line number; meaningless when invalid *)
  mutable state : 'a;
  mutable stamp : int;  (** LRU clock value of the last touch *)
}

type 'a t

val create : sets:int -> ways:int -> invalid:'a -> 'a t
(** [sets] must be a positive power of two. *)

val find : 'a t -> line:int -> is_valid:('a -> bool) -> 'a slot option
(** Access-path lookup; touches the LRU clock on a hit. *)

val probe : 'a t -> line:int -> is_valid:('a -> bool) -> 'a slot option
(** Snoop lookup; never touches the LRU clock (a snoop is not a use). *)

type 'a eviction = { victim_tag : int; victim_state : 'a }

val fill : 'a t -> line:int -> is_valid:('a -> bool) -> 'a slot * 'a eviction option
(** Claim a slot for [line]: an invalid way if any, else the set's LRU
    way. Returns the displaced valid line, if one, so the caller can
    emit a writeback for dirty states. The slot comes back tagged
    [line] with the [invalid] state; the caller sets the fill state. *)

val iter : 'a t -> ('a slot -> unit) -> unit
