(** A snooping-bus cache-coherent machine running the online race
    detector off bus-observed coherence events.

    Same programming model as the LRC cluster ({!Coherence.Node.t}
    views, SPMD [run]), but consistency is maintained by hardware-style
    cache coherence over a shared bus instead of DSM messages: MESI
    invalidates remote copies on write, Dragon broadcasts word updates.
    Data lives in one coherent memory image; per-processor caches model
    cost and traffic (hits, fills, invalidations, updates, writebacks),
    each bus transaction paying arbitration, transfer, and supplier
    latency through the simulation engine.

    Not supported (rejected or ignored at [create]): fault injection and
    the reliable transport (no lossy wire on a bus — [invalid_arg]),
    lock-grant replay, interval GC, diff-based stores, and site
    retention. *)

type protocol = Mesi | Dragon

val protocol_name : protocol -> string

type t

val create :
  ?cost:Sim.Cost.t ->
  ?cfg:Coherence.Config.t ->
  protocol:protocol ->
  nprocs:int ->
  pages:int ->
  unit ->
  t

val backend :
  ?cost:Sim.Cost.t ->
  ?cfg:Coherence.Config.t ->
  protocol:protocol ->
  nprocs:int ->
  pages:int ->
  unit ->
  Coherence.Backend.t
(** Package a fresh machine behind the backend interface; [name] is
    ["mesi"] or ["dragon"]. *)
