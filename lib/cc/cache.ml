(* Per-processor cache metadata: a set-associative array of line slots
   with LRU replacement.

   Only tags and protocol states live here — the data words stay in the
   machine's single shared memory image (an atomic snooping bus gives
   sequential consistency, so every cached copy always equals memory by
   construction; what the cache model decides is *cost*: hits versus bus
   transactions). The state type is the protocol's ['a]; [invalid] is
   its distinguished empty value. *)

type 'a slot = {
  mutable tag : int;  (* global line number; meaningless when invalid *)
  mutable state : 'a;
  mutable stamp : int;  (* LRU clock value of the last touch *)
}

type 'a t = {
  sets : int;
  ways : int;
  invalid : 'a;
  slots : 'a slot array;  (* sets * ways, row-major *)
  mutable tick : int;
}

let create ~sets ~ways ~invalid =
  if sets <= 0 || sets land (sets - 1) <> 0 then
    invalid_arg "Cache.create: sets must be a positive power of two";
  if ways <= 0 then invalid_arg "Cache.create: need at least one way";
  {
    sets;
    ways;
    invalid;
    slots = Array.init (sets * ways) (fun _ -> { tag = -1; state = invalid; stamp = 0 });
    tick = 0;
  }

let set_of t ~line = line land (t.sets - 1)

let touch t slot =
  t.tick <- t.tick + 1;
  slot.stamp <- t.tick

(* Hit lookup on the access path: bumps the LRU clock. *)
let find t ~line ~is_valid =
  let base = set_of t ~line * t.ways in
  let rec go i =
    if i >= t.ways then None
    else
      let slot = t.slots.(base + i) in
      if slot.tag = line && is_valid slot.state then begin
        touch t slot;
        Some slot
      end
      else go (i + 1)
  in
  go 0

(* Snoop lookup: other processors probing for [line] on a bus
   transaction. No LRU update — a snoop is not a use. *)
let probe t ~line ~is_valid =
  let base = set_of t ~line * t.ways in
  let rec go i =
    if i >= t.ways then None
    else
      let slot = t.slots.(base + i) in
      if slot.tag = line && is_valid slot.state then Some slot else go (i + 1)
  in
  go 0

type 'a eviction = { victim_tag : int; victim_state : 'a }

(* Claim a slot for [line]: an invalid way if one exists, otherwise the
   LRU way of the set (returning what it held so the caller can emit a
   writeback for dirty states). The slot comes back tagged [line] in the
   [invalid] state; the caller sets the fill state. *)
let fill t ~line ~is_valid =
  let base = set_of t ~line * t.ways in
  let chosen = ref t.slots.(base) in
  (try
     for i = 0 to t.ways - 1 do
       let slot = t.slots.(base + i) in
       if not (is_valid slot.state) then begin
         chosen := slot;
         raise Exit
       end;
       if slot.stamp < !chosen.stamp then chosen := slot
     done
   with Exit -> ());
  let slot = !chosen in
  let eviction =
    if is_valid slot.state then Some { victim_tag = slot.tag; victim_state = slot.state }
    else None
  in
  slot.tag <- line;
  slot.state <- t.invalid;
  touch t slot;
  (slot, eviction)

let iter t f = Array.iter (fun slot -> f slot) t.slots
