(** A page of simulated shared memory with word-granularity accessors.

    Words are 8 bytes and hold either an int64 or a float (stored as its
    bit pattern) — enough for all four applications (TSP uses integers;
    SOR, FFT and Water use doubles). *)

type t

val create : page_size:int -> word_size:int -> t
(** All-zero page. Only 8-byte words are supported. *)

val words : t -> int
val get_int64 : t -> int -> int64
val set_int64 : t -> int -> int64 -> unit
val get_float : t -> int -> float
val set_float : t -> int -> float -> unit

val get_int : t -> int -> int
(** [Int64.to_int] of the word — the value round-trips exactly for any
    OCaml [int] stored with {!set_int}, without materializing a boxed
    int64 on the access path. *)

val set_int : t -> int -> int -> unit

val copy : t -> t
(** Used to make twins in the multi-writer protocol. *)

val blit_from : src:t -> t -> unit
(** Overwrite contents with [src] (page fetch). *)

val raw : t -> Bytes.t
val equal : t -> t -> bool
