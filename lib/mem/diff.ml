(* Word-level diffs, as in multi-writer LRC protocols (TreadMarks, CVM's
   multi-writer mode): the per-page summary of modifications made during an
   interval, computed by comparing the page against its twin. *)

(* [values] is a flat byte blob, 8 bytes per changed word in [words]
   order: creating and applying a diff is pure byte movement, with no
   per-word boxed int64 (pages only support 8-byte words). *)
type t = { page : int; words : int array; values : Bytes.t }

external bytes_get64 : Bytes.t -> int -> int64 = "%caml_bytes_get64"

let value_bytes = 8

let create ~page ~twin ~current =
  let n = Page.words current in
  if Page.words twin <> n then invalid_arg "Diff.create: size mismatch";
  let tb = Page.raw twin and cb = Page.raw current in
  (* two passes: count the changed words, then fill exactly-sized arrays *)
  let count = ref 0 in
  for word = 0 to n - 1 do
    if bytes_get64 tb (word * value_bytes) <> bytes_get64 cb (word * value_bytes) then
      incr count
  done;
  let words = Array.make !count 0 in
  let values = Bytes.create (!count * value_bytes) in
  let slot = ref 0 in
  for word = 0 to n - 1 do
    let off = word * value_bytes in
    if bytes_get64 tb off <> bytes_get64 cb off then begin
      Array.unsafe_set words !slot word;
      Bytes.blit cb off values (!slot * value_bytes) value_bytes;
      incr slot
    end
  done;
  { page; words; values }

let page t = t.page

let word_count t = Array.length t.words

let is_empty t = word_count t = 0

let apply t target =
  let dst = Page.raw target in
  for i = 0 to Array.length t.words - 1 do
    Bytes.blit t.values (i * value_bytes) dst (Array.unsafe_get t.words i * value_bytes)
      value_bytes
  done

let size_bytes t = 8 + (word_count t * 12)
(* header + (word index, value) pairs; matches CVM's runlength encoding
   order of magnitude without modelling the exact layout *)

let touched_words t = Array.to_list t.words

let to_bitmap t ~nbits =
  let bitmap = Bitmap.create nbits in
  Array.iter (Bitmap.set bitmap) t.words;
  bitmap
