(* Per-page access bitmaps: one bit per word of a page, recording which
   words an interval read or wrote. These are the structures the detector
   compares at barriers to distinguish false sharing from true races.

   Backed by an [int array] of 63-bit words so that union, intersection
   and emptiness tests run one machine operation per 63 bits instead of
   per bit or per byte. The wire size charged to the simulation
   ([size_bytes]) stays the packed (nbits+7)/8 of the byte encoding: the
   backing store is a host-side concern and must not change simulated
   message sizes. *)

type t = { words : int array; nbits : int }

let bits_per_word = 63

let word_count nbits = (nbits + bits_per_word - 1) / bits_per_word

let create nbits =
  if nbits < 0 then invalid_arg "Bitmap.create";
  { words = Array.make (word_count nbits) 0; nbits }

let length t = t.nbits

let check_index t i = if i < 0 || i >= t.nbits then invalid_arg "Bitmap: index out of range"

let set t i =
  check_index t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  Array.unsafe_set t.words w (Array.unsafe_get t.words w lor (1 lsl b))

let get t i =
  check_index t i;
  Array.unsafe_get t.words (i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let clear_all t = Array.fill t.words 0 (Array.length t.words) 0

let any_set t =
  let n = Array.length t.words in
  let rec scan i = i < n && (Array.unsafe_get t.words i <> 0 || scan (i + 1)) in
  scan 0

let is_empty t = not (any_set t)

(* 64-bit SWAR popcount; sound for 63-bit payloads (the byte sums top out
   at 63, well inside the high byte the final shift extracts). *)
let popcount x =
  let x = x - ((x lsr 1) land 0x5555555555555555) in
  let x = (x land 0x3333333333333333) + ((x lsr 2) land 0x3333333333333333) in
  let x = (x + (x lsr 4)) land 0x0f0f0f0f0f0f0f0f in
  (x * 0x0101010101010101) lsr 56

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let same_length a b =
  if a.nbits <> b.nbits then invalid_arg "Bitmap: length mismatch"

let intersects a b =
  same_length a b;
  let n = Array.length a.words in
  let rec scan i =
    i < n && (Array.unsafe_get a.words i land Array.unsafe_get b.words i <> 0 || scan (i + 1))
  in
  scan 0

let inter_indices a b =
  same_length a b;
  let hits = ref [] in
  for w = Array.length a.words - 1 downto 0 do
    let x = Array.unsafe_get a.words w land Array.unsafe_get b.words w in
    if x <> 0 then begin
      let base = w * bits_per_word in
      for b = bits_per_word - 1 downto 0 do
        if x land (1 lsl b) <> 0 then hits := (base + b) :: !hits
      done
    end
  done;
  !hits

let inter a b =
  same_length a b;
  let out = create a.nbits in
  for i = 0 to Array.length a.words - 1 do
    Array.unsafe_set out.words i (Array.unsafe_get a.words i land Array.unsafe_get b.words i)
  done;
  out

let union_into ~dst src =
  same_length dst src;
  for i = 0 to Array.length dst.words - 1 do
    Array.unsafe_set dst.words i (Array.unsafe_get dst.words i lor Array.unsafe_get src.words i)
  done

let iter_set t f =
  for w = 0 to Array.length t.words - 1 do
    let x = Array.unsafe_get t.words w in
    if x <> 0 then begin
      let base = w * bits_per_word in
      for b = 0 to bits_per_word - 1 do
        if x land (1 lsl b) <> 0 then f (base + b)
      done
    end
  done

let copy t = { words = Array.copy t.words; nbits = t.nbits }

(* wire size when shipped: the packed byte encoding, independent of the
   word-array backing *)
let size_bytes t = (t.nbits + 7) / 8

let set_indices t =
  let hits = ref [] in
  for w = Array.length t.words - 1 downto 0 do
    let x = Array.unsafe_get t.words w in
    if x <> 0 then begin
      let base = w * bits_per_word in
      for b = bits_per_word - 1 downto 0 do
        if x land (1 lsl b) <> 0 then hits := (base + b) :: !hits
      done
    end
  done;
  !hits

let pp ppf t =
  Format.fprintf ppf "{%s}" (String.concat "," (List.map string_of_int (set_indices t)))
