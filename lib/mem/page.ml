(* A page is raw bytes with word-granularity accessors. Words hold either
   int64 or float values (the float is stored as its bit pattern), which is
   enough for all four applications: TSP uses integers, SOR/FFT/Water use
   doubles. *)

type t = { data : Bytes.t; word_size : int }

let create ~page_size ~word_size =
  if page_size mod word_size <> 0 then invalid_arg "Page.create";
  if word_size <> 8 then invalid_arg "Page.create: only 8-byte words are supported";
  { data = Bytes.make page_size '\000'; word_size }

let words t = Bytes.length t.data / t.word_size

let check t word = if word < 0 || word >= words t then invalid_arg "Page: word out of range"

(* Bounds-checked 64-bit loads/stores as compiler primitives, so the int64
   stays unboxed inside each accessor body (no flambda: crossing a function
   boundary with an int64 would box it). The wire format is little-endian,
   like Bytes.get_int64_le. *)
external bytes_get64 : Bytes.t -> int -> int64 = "%caml_bytes_get64"
external bytes_set64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64"
external swap64 : int64 -> int64 = "%bswap_int64"

let get_int64 t word =
  check t word;
  let v = bytes_get64 t.data (word * t.word_size) in
  if Sys.big_endian then swap64 v else v

let set_int64 t word v =
  check t word;
  let v = if Sys.big_endian then swap64 v else v in
  bytes_set64 t.data (word * t.word_size) v

let get_int t word =
  check t word;
  let v = bytes_get64 t.data (word * t.word_size) in
  Int64.to_int (if Sys.big_endian then swap64 v else v)

let set_int t word v =
  check t word;
  let v = Int64.of_int v in
  bytes_set64 t.data (word * t.word_size) (if Sys.big_endian then swap64 v else v)

let get_float t word =
  check t word;
  let v = bytes_get64 t.data (word * t.word_size) in
  Int64.float_of_bits (if Sys.big_endian then swap64 v else v)

let set_float t word v =
  check t word;
  let v = Int64.bits_of_float v in
  bytes_set64 t.data (word * t.word_size) (if Sys.big_endian then swap64 v else v)

let copy t = { data = Bytes.copy t.data; word_size = t.word_size }

let blit_from ~src t = Bytes.blit src.data 0 t.data 0 (Bytes.length t.data)

let raw t = t.data

let equal a b = Bytes.equal a.data b.data
