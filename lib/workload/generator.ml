(* Seeded random program generator. The .mli documents the role system
   and the by-construction race/race-freedom arguments; the emission
   rules here are the proof obligations:

   - body ops never touch a racy word;
   - a racy word's two accesses are the last ops of their processors'
     phase segments (in particular, after every lock op), so no
     release can follow either access within the phase and no
     happens-before path orders the pair;
   - nested lock acquisition is always in ascending lock-id order and
     never spans a barrier, so no deadlock;
   - read-only words are written only by processor 0 in phase 0 and
     read only in phases >= 1, so the write is barrier-ordered before
     every read. *)

type knobs = {
  nprocs : int * int;
  phases : int * int;
  ops_per_phase : int * int;
  private_words : int * int;
  readonly_words : int * int;
  locked_words : int * int;
  racy_words : int * int;
  nesting : int * int;
}

let default_knobs =
  {
    nprocs = (2, 4);
    phases = (1, 3);
    ops_per_phase = (2, 6);
    private_words = (2, 4);
    readonly_words = (1, 2);
    locked_words = (1, 3);
    racy_words = (0, 2);
    nesting = (1, 3);
  }

type generated = { program : Program.t; racy : int list; role : string array }

let range rng (lo, hi) =
  if hi < lo then invalid_arg "Generator.range: empty range"
  else if hi = lo then lo
  else lo + Sim.Rng.int rng (hi - lo + 1)

(* [k] distinct draws from [0, n); k <= n *)
let distinct rng k n =
  let pool = Array.init n Fun.id in
  Sim.Rng.shuffle_in_place rng pool;
  Array.to_list (Array.sub pool 0 k)

type racy_plan = {
  rp_word : int;
  rp_pair : int * int;
  rp_phase : int;  (** 0-based barrier epoch, [0, phases] inclusive *)
  rp_both_write : bool;  (** false: first writes, second reads *)
}

let generate ?(knobs = default_knobs) ~rng ~name () =
  let nprocs = range rng knobs.nprocs in
  let phases = range rng knobs.phases in
  let n_priv = range rng knobs.private_words in
  let n_ro = range rng knobs.readonly_words in
  let n_locked = range rng knobs.locked_words in
  let n_racy = if nprocs < 2 then 0 else range rng knobs.racy_words in
  (* word layout: [private | readonly | locked | racy]; locked word j
     is protected by lock id j *)
  let priv_base = 0 in
  let ro_base = priv_base + n_priv in
  let locked_base = ro_base + n_ro in
  let racy_base = locked_base + n_locked in
  let words = max 1 (racy_base + n_racy) in
  let owner = Array.init n_priv (fun i -> i mod nprocs) in
  let role = Array.make words "private" in
  Array.iteri (fun i p -> role.(priv_base + i) <- Printf.sprintf "private(p%d)" p) owner;
  for i = 0 to n_ro - 1 do
    role.(ro_base + i) <- "readonly"
  done;
  for i = 0 to n_locked - 1 do
    role.(locked_base + i) <- Printf.sprintf "locked(l%d)" i
  done;
  let racy_plans =
    List.init n_racy (fun i ->
        let pair = match distinct rng 2 nprocs with [ a; b ] -> (a, b) | _ -> assert false in
        let plan =
          {
            rp_word = racy_base + i;
            rp_pair = pair;
            rp_phase = Sim.Rng.int rng (phases + 1);
            rp_both_write = Sim.Rng.bool rng;
          }
        in
        let a, b = plan.rp_pair in
        role.(plan.rp_word) <-
          Printf.sprintf "racy(p%d %s p%d, phase %d)" a
            (if plan.rp_both_write then "w/w" else "w/r")
            b plan.rp_phase;
        plan)
  in
  let my_private rng p =
    let mine = ref [] in
    Array.iteri (fun i o -> if o = p then mine := (priv_base + i) :: !mine) owner;
    match !mine with
    | [] -> None
    | mine -> Some (List.nth mine (Sim.Rng.int rng (List.length mine)))
  in
  (* one random body op for processor [p] in epoch [phase], as a
     reversed op list fragment *)
  let body_op rng p phase =
    let choices =
      (match my_private rng p with
      | Some w -> [ (fun () -> [ (if Sim.Rng.bool rng then Program.Read w else Program.Write w) ]) ]
      | None -> [])
      @ (if n_ro > 0 && phase >= 1 then
           [ (fun () -> [ Program.Read (ro_base + Sim.Rng.int rng n_ro) ]) ]
         else [])
      @
      if n_locked > 0 then
        [
          (fun () ->
            let depth = min n_locked (range rng knobs.nesting) in
            let locks = List.sort compare (distinct rng depth n_locked) in
            List.map (fun l -> Program.Lock l) locks
            @ List.map
                (fun l ->
                  let w = locked_base + l in
                  if Sim.Rng.bool rng then Program.Read w else Program.Write w)
                locks
            @ List.rev_map (fun l -> Program.Unlock l) locks);
        ]
      else []
    in
    match choices with
    | [] -> []
    | cs -> (List.nth cs (Sim.Rng.int rng (List.length cs))) ()
  in
  let streams =
    Array.init nprocs (fun p ->
        let ops = ref [] in
        let emit op = ops := op :: !ops in
        for phase = 0 to phases do
          (* phase 0: processor 0 initializes every read-only word
             before anyone may read them (reads start in phase 1) *)
          if phase = 0 && p = 0 then
            for i = 0 to n_ro - 1 do
              emit (Program.Write (ro_base + i))
            done;
          let n_ops = range rng knobs.ops_per_phase in
          for _ = 1 to n_ops do
            List.iter emit (body_op rng p phase)
          done;
          (* racy tail: after every lock op of this segment *)
          List.iter
            (fun plan ->
              if plan.rp_phase = phase then begin
                let a, b = plan.rp_pair in
                if p = a then emit (Program.Write plan.rp_word)
                else if p = b then
                  emit
                    (if plan.rp_both_write then Program.Write plan.rp_word
                     else Program.Read plan.rp_word)
              end)
            racy_plans;
          if phase < phases then emit Program.Barrier
        done;
        List.rev !ops)
  in
  let program = { Program.name; nprocs; words; streams } in
  Program.validate program;
  {
    program;
    racy = List.sort compare (List.map (fun plan -> plan.rp_word) racy_plans);
    role;
  }

let generate_seeded ?knobs ~seed ~index () =
  (* SplitMix-style mix so nearby (seed, index) pairs land on
     unrelated streams *)
  let mixed = (seed * 0x2545F491) lxor (index * 0x9E3779B9) lxor (index lsl 17) in
  let rng = Sim.Rng.create ~seed:mixed in
  generate ?knobs ~rng ~name:(Printf.sprintf "gen-%d-%d" seed index) ()
