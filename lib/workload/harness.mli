(** Differential fuzzing harness.

    For every workload program the harness runs the online detector
    with and without instrumentation elision under every coherence
    backend, replays the recorded access trace through the independent
    offline oracle, and requires

    {v detected = oracle = ground truth, identically on every backend v}

    Any violation is a {!mismatch}; internal mismatches (those
    checkable without ground truth) are {!shrink}able to a minimized
    reproducer, which the fuzz loop writes out as a trace file for the
    regression corpus. *)

type result = {
  detected : int list;  (** online detector's racy words, sorted distinct *)
  oracle : int list;  (** offline oracle's racy words, sorted distinct *)
  checksum : int;  (** final shared-memory checksum *)
}

type runner = backend:string -> elide:bool -> Program.t -> result
(** How the harness executes one program under one configuration.
    Factored out so tests can plant a detector bug and watch the
    harness catch it. *)

val driver_runner : runner
(** The real thing: {!Program.to_app} through [Core.Driver.run] with
    detection and trace recording on, racy addresses mapped back to
    word indices via the program's base address. *)

val all_backends : string list
(** [["lrc"; "mesi"; "dragon"]]. *)

type kind =
  | Detector_vs_oracle of { backend : string; elide : bool }
      (** online detector disagrees with the offline oracle on one run *)
  | Elide_dependent of { backend : string }
      (** elision changed the detected set — unsound elision *)
  | Backend_dependent of { backend_a : string; backend_b : string }
      (** two backends detect different racy sets for the same program *)
  | Ground_truth of { backend : string }
      (** detector and oracle agree with each other but not with the
          generator's by-construction racy set *)

type mismatch = { program : Program.t; kind : kind; detail : string }

val kind_name : kind -> string
(** Stable short label ([detector-vs-oracle], [elide-dependent],
    [backend-dependent], [ground-truth]) for reports and filenames. *)

val shrinkable : kind -> bool
(** Internal kinds are re-checkable on shrunk programs; {!Ground_truth}
    is not (the construction argument does not survive mutation). *)

val check :
  ?backends:string list ->
  runner:runner ->
  ?ground_truth:int list ->
  Program.t ->
  mismatch option
(** Run the full differential matrix (backends x elide) and return the
    first violation, if any. [ground_truth] additionally pins the
    detected set to the generator's planted racy words. *)

val shrink : ?backends:string list -> runner:runner -> mismatch -> Program.t * int
(** Greedy minimization to a fixpoint: repeatedly try dropping a whole
    processor, a whole phase, a barrier (merging adjacent phases), or a
    single operation (with its matching lock partner), keeping any
    candidate on which {!check} still reports an internal mismatch.
    Returns the minimized program and the number of successful
    shrink steps. Bounded by an internal evaluation budget, so it
    terminates even on pathological inputs. *)

type report = {
  programs : int;  (** programs generated and checked *)
  events : int;  (** total events across all programs *)
  planted : int;  (** races planted by construction *)
  found : int;  (** planted races confirmed by the detector *)
  clean_programs : int;  (** programs generated with no planted race *)
  shrink_steps : int;
  mismatches : mismatch list;  (** minimized when shrinking is on *)
  repro_files : string list;  (** trace files written under [repro_dir] *)
}

val fuzz :
  ?knobs:Generator.knobs ->
  ?backends:string list ->
  ?runner:runner ->
  ?repro_dir:string ->
  seed:int ->
  count:int ->
  shrink:bool ->
  unit ->
  report
(** Generate [count] programs from [(seed, 0..count-1)]
    ({!Generator.generate_seeded}), {!check} each against its ground
    truth, {!shrink} internal mismatches when [shrink] is set, and
    write each mismatch's (minimized) program as a trace file under
    [repro_dir] when given, creating the directory as needed. *)
