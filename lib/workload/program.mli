(** Workload programs: explicit per-processor access/sync streams.

    This is the representation both new workload sources share — trace
    files parsed by {!Trace_file} and random programs built by
    {!Generator} — and the one the differential fuzzing harness
    ({!Harness}) runs under every coherence backend. A program is a
    fixed word count plus one operation stream per processor; word
    indices address an 8-byte-word shared array the interpreter
    allocates at run time, so the same program runs unmodified on the
    LRC DSM cluster and on the snooping-bus cache machines.

    Unlike the SPMD applications, the streams are explicit per
    processor: processor [p] executes exactly [streams.(p)], which is
    what lets the generator plant races (and prove their absence)
    by construction. *)

type op =
  | Read of int  (** word index into the shared array *)
  | Write of int
  | Lock of int  (** lock id, blocking acquire *)
  | Unlock of int
  | Barrier  (** global barrier across every processor *)

type t = {
  name : string;
  nprocs : int;
  words : int;  (** shared array length, 8-byte words *)
  streams : op list array;  (** length [nprocs]; [streams.(p)] runs on processor [p] *)
}

exception Invalid of string
(** Raised by {!validate} with a human-readable reason. *)

val validate : t -> unit
(** Structural checks: stream count matches [nprocs] (>= 1), word and
    lock ids in range, every stream holds the same number of barriers
    (they are global rendezvous), locks acquired at most once, released
    only when held, and never held across a barrier or the stream's end
    (a lock held at a barrier can deadlock the rendezvous). *)

val size : t -> int
(** Total events across every stream (accesses, lock ops and barriers) —
    the measure the shrinker minimizes and repro budgets are stated in. *)

val phases : t -> int
(** Barriers per stream (equal across streams once validated): the
    program has [phases + 1] barrier epochs including the implicit
    final barrier the interpreter appends. *)

val site : proc:int -> index:int -> string
(** The symbolic program counter of [streams.(proc)]'s [index]-th op —
    the same label the interpreter charges accesses to and the
    synthesized binary carries, so watch mode, MHP analysis and
    instrumentation elision all line up. *)

val accesses : t -> (int * int * Instrument.Binary.kind * int) list
(** Every shared access as [(proc, index, kind, word)], in stream
    order — the static site map tests use to tie dynamic races back to
    sites without a watch run. *)

val binary : t -> Instrument.Binary.t
(** A synthetic SPMD image for the static passes: the per-phase union
    of every processor's accesses as one straight-line CFG, each access
    wrapped in acquire/release of exactly the locks its processor holds
    at that point. Sound for MHP/elision: every dynamic access appears
    in its static phase with its true must-hold lockset, and the SPMD
    reading (any processor may run any op) only adds behaviors. *)

val to_app : ?base:int ref -> t -> Apps.App.t
(** Package the program as an application the existing driver stack
    runs unmodified (any backend, record/replay, elision, oracle
    trace). The body allocates [words * 8] shared bytes, stores the
    base address into [base] (every processor computes the same one),
    interprets the processor's own stream, and ends with one implicit
    global barrier so the final epoch is race-checked. The body raises
    if run with a processor count other than [nprocs]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Compact one-program-per-line rendering for test failure output. *)
