(** Seeded random concurrent-program generator with ground truth by
    construction.

    Every shared word is assigned a role before any code is emitted,
    and the emission rules per role make its racy/race-free status a
    theorem about the program rather than an observation about one run:

    - {b private} — accessed by exactly one processor. Race-free.
      Adjacent private words owned by different processors create
      false sharing on the bus backends (benign at word granularity).
    - {b read-only} — written only by processor 0 in phase 0, read by
      any processor in phases >= 1. Barrier-ordered, hence race-free:
      the benign producer/consumer pattern.
    - {b locked} — every access holds the word's dedicated lock
      (possibly nested inside other locks, always acquired in
      ascending id order so no deadlock). Race-free.
    - {b racy} — touched only by its designated processor pair, only
      in its designated phase, as the {e last} operations of each
      processor's phase segment. With no release after the access and
      no acquire before the partner's (within the phase), no
      happens-before path can order the pair in either direction, so
      the race is real on every execution — and the racy set is
      independent of lock-grant order, hence backend-independent.

    The union of racy words is the program's ground truth, which the
    differential harness checks the detector and oracle against. *)

type knobs = {
  nprocs : int * int;  (** inclusive range; racy programs need >= 2 *)
  phases : int * int;  (** barrier count per stream *)
  ops_per_phase : int * int;  (** per-processor accesses per phase, before sync ops *)
  private_words : int * int;
  readonly_words : int * int;
  locked_words : int * int;
  racy_words : int * int;
  nesting : int * int;  (** max locks held at once around a locked access *)
}

val default_knobs : knobs
(** 2-4 procs, 1-3 phases, 2-6 ops/phase, a few words of each role,
    nesting up to 3 — small enough that a failing program is readable,
    varied enough to cover the role space. *)

type generated = {
  program : Program.t;
  racy : int list;  (** sorted ground-truth racy word indices *)
  role : string array;  (** per-word role label, for failure reports *)
}

val generate : ?knobs:knobs -> rng:Sim.Rng.t -> name:string -> unit -> generated
(** Draw one program. Deterministic in the rng state. The result is
    {!Program.validate}d before being returned. *)

val generate_seeded : ?knobs:knobs -> seed:int -> index:int -> unit -> generated
(** [generate] with an rng derived from [(seed, index)] and the name
    ["gen-<seed>-<index>"] — the spelling the fuzz CLI and repro docs
    use, so a failing program is reconstructible from its name. *)
