(* Trace-file frontend: per-processor access/sync streams as text.
   See the .mli for the grammar. *)

exception Parse_error of { line : int; msg : string }

let fail line fmt = Printf.ksprintf (fun msg -> raise (Parse_error { line; msg })) fmt

let is_space c = c = ' ' || c = '\t' || c = '\r'

let tokens line =
  (* strip comments, split on blanks *)
  let line = match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line in
  String.split_on_char ' ' (String.map (fun c -> if is_space c then ' ' else c) line)
  |> List.filter (fun s -> s <> "")

let int_of ~line what s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> fail line "expected an integer %s, got %S" what s

(* The name directive takes the raw remainder of its line, because
   program names may contain spaces (generated corpora routinely use
   "app phase 2"-style names). Unquoted, the name ends at a '#' comment
   and boundary whitespace is trimmed; the double-quoted form — with
   backslash escapes for backslash, double quote, and the n/t/r control
   characters — covers names containing quotes, '#', newlines or
   significant boundary whitespace. *)
let parse_name ~line raw =
  let raw = String.trim raw in
  if String.length raw > 0 && raw.[0] = '"' then begin
    let n = String.length raw in
    let buf = Buffer.create n in
    let rec go i =
      if i >= n then fail line "unterminated quoted name"
      else
        match raw.[i] with
        | '"' -> i + 1
        | '\\' ->
            if i + 1 >= n then fail line "unterminated quoted name";
            let c =
              match raw.[i + 1] with
              | '\\' -> '\\'
              | '"' -> '"'
              | 'n' -> '\n'
              | 't' -> '\t'
              | 'r' -> '\r'
              | c -> fail line "unknown escape \\%c in quoted name" c
            in
            Buffer.add_char buf c;
            go (i + 2)
        | c ->
            Buffer.add_char buf c;
            go (i + 1)
    in
    let stop = go 1 in
    let rest = String.trim (String.sub raw stop (n - stop)) in
    if rest <> "" && rest.[0] <> '#' then
      fail line "unexpected %S after quoted name" rest;
    Buffer.contents buf
  end
  else
    let raw =
      match String.index_opt raw '#' with Some i -> String.sub raw 0 i | None -> raw
    in
    let name = String.trim raw in
    if name = "" then fail line "name directive needs a name";
    name

let parse_string ?name text =
  let lines = String.split_on_char '\n' text in
  let directive_name = ref None in
  let procs = ref None and words = ref None in
  (* built lazily once [procs] is known *)
  let streams = ref [||] in
  let events_seen = ref false in
  (* last line carrying any token: whole-file failures (missing
     directives, validation) point here instead of a made-up line 0 *)
  let last_line = ref 0 in
  let push p op =
    match !procs with
    | None -> assert false
    | Some n ->
        if p < 0 || p >= n then raise Exit;
        !streams.(p) <- op :: !streams.(p)
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match tokens line with
      | [] -> ()
      | "name" :: _ ->
          last_line := lineno;
          (* re-read from the raw line: tokenizing already ate any [#],
             and the name may contain spaces *)
          let raw = String.trim line in
          let rest = String.sub raw 4 (String.length raw - 4) in
          directive_name := Some (parse_name ~line:lineno rest)
      | [ "procs"; n ] ->
          last_line := lineno;
          if !events_seen then fail lineno "procs directive must precede events";
          if !procs <> None then fail lineno "duplicate procs directive";
          let n = int_of ~line:lineno "processor count" n in
          if n < 1 then fail lineno "procs must be >= 1, got %d" n;
          procs := Some n;
          streams := Array.make n []
      | [ "words"; n ] ->
          last_line := lineno;
          if !events_seen then fail lineno "words directive must precede events";
          if !words <> None then fail lineno "duplicate words directive";
          let n = int_of ~line:lineno "word count" n in
          if n < 1 then fail lineno "words must be >= 1, got %d" n;
          words := Some n
      | toks -> (
          last_line := lineno;
          (match (!procs, !words) with
          | None, _ -> fail lineno "event before the procs directive"
          | _, None -> fail lineno "event before the words directive"
          | Some _, Some _ -> ());
          events_seen := true;
          match toks with
          | [ "b" ] -> Array.iteri (fun p _ -> push p Program.Barrier) !streams
          | [ p; op; arg ] -> (
              let pid = int_of ~line:lineno "processor id" p in
              let arg_kind = if op = "l" || op = "u" then "lock id" else "word index" in
              let arg = int_of ~line:lineno arg_kind arg in
              let ev =
                match op with
                | "r" -> Program.Read arg
                | "w" -> Program.Write arg
                | "l" -> Program.Lock arg
                | "u" -> Program.Unlock arg
                | _ -> fail lineno "unknown event %S (expected r, w, l or u)" op
              in
              try push pid ev
              with Exit ->
                fail lineno "processor id %d out of range [0, %d)" pid
                  (match !procs with Some n -> n | None -> 0))
          | _ ->
              fail lineno
                "malformed line %S (expected \"<proc> r|w|l|u <n>\" or a bare \"b\")"
                (String.trim line)))
    lines;
  (* whole-file failures: blame the last line that carried a token, or
     line 1 for an empty file — never a nonexistent "line 0" *)
  let eof = max 1 !last_line in
  let nprocs = match !procs with Some n -> n | None -> fail eof "missing procs directive" in
  let words = match !words with Some n -> n | None -> fail eof "missing words directive" in
  let name =
    match (!directive_name, name) with Some n, _ -> n | None, Some n -> n | None, None -> "trace"
  in
  let t = { Program.name; nprocs; words; streams = Array.map List.rev !streams } in
  (try Program.validate t with Program.Invalid msg -> fail eof "%s: %s" name msg);
  t

let parse_file path =
  let name = Filename.remove_extension (Filename.basename path) in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse_string ~name (really_input_string ic (in_channel_length ic)))

(* Phase-by-phase rendering: within a phase, each processor's segment in
   stream order, then one global [b]. Any interleaving parses back to
   the same streams, so round-tripping is structural. *)
(* A name needing the quoted form: one the unquoted reader would
   truncate (hash, newline), trim away (boundary whitespace, empty) or
   misread (double quote and backslash look like the quoted form's own
   syntax). Plain interior spaces survive unquoted, but any whitespace
   subtlety beyond that is cheaper to quote than to reason about. *)
let needs_quoting name =
  name = ""
  || name.[0] = ' '
  || name.[String.length name - 1] = ' '
  || String.exists
       (fun c -> c = '"' || c = '\\' || c = '#' || c = '\n' || c = '\t' || c = '\r')
       name

let quoted_name name =
  let buf = Buffer.create (String.length name + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    name;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_string (t : Program.t) =
  let buf = Buffer.create 256 in
  let name =
    if needs_quoting t.Program.name then quoted_name t.Program.name else t.Program.name
  in
  Printf.bprintf buf "name %s\nprocs %d\nwords %d\n" name t.Program.nprocs
    t.Program.words;
  let rests = Array.map (fun s -> ref s) t.Program.streams in
  let nphases = Program.phases t + 1 in
  for phase = 0 to nphases - 1 do
    Array.iteri
      (fun p rest ->
        let continue = ref true in
        while !continue do
          match !rest with
          | [] | Program.Barrier :: _ -> continue := false
          | op :: tl ->
              rest := tl;
              let line =
                match op with
                | Program.Read w -> Printf.sprintf "%d r %d" p w
                | Program.Write w -> Printf.sprintf "%d w %d" p w
                | Program.Lock l -> Printf.sprintf "%d l %d" p l
                | Program.Unlock l -> Printf.sprintf "%d u %d" p l
                | Program.Barrier -> assert false
              in
              Buffer.add_string buf line;
              Buffer.add_char buf '\n'
        done)
      rests;
    if phase < nphases - 1 then begin
      (* consume each stream's barrier and emit one global b *)
      Array.iter
        (fun rest ->
          match !rest with
          | Program.Barrier :: tl -> rest := tl
          | _ -> assert false)
        rests;
      Buffer.add_string buf "b\n"
    end
  done;
  Buffer.contents buf

let write_file path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string t))
