(* Trace-file frontend: per-processor access/sync streams as text.
   See the .mli for the grammar. *)

exception Parse_error of { line : int; msg : string }

let fail line fmt = Printf.ksprintf (fun msg -> raise (Parse_error { line; msg })) fmt

let is_space c = c = ' ' || c = '\t' || c = '\r'

let tokens line =
  (* strip comments, split on blanks *)
  let line = match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line in
  String.split_on_char ' ' (String.map (fun c -> if is_space c then ' ' else c) line)
  |> List.filter (fun s -> s <> "")

let int_of ~line what s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> fail line "expected an integer %s, got %S" what s

let parse_string ?name text =
  let lines = String.split_on_char '\n' text in
  let directive_name = ref None in
  let procs = ref None and words = ref None in
  (* built lazily once [procs] is known *)
  let streams = ref [||] in
  let events_seen = ref false in
  let push p op =
    match !procs with
    | None -> assert false
    | Some n ->
        if p < 0 || p >= n then raise Exit;
        !streams.(p) <- op :: !streams.(p)
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match tokens line with
      | [] -> ()
      | [ "name"; n ] -> directive_name := Some n
      | [ "procs"; n ] ->
          if !events_seen then fail lineno "procs directive must precede events";
          if !procs <> None then fail lineno "duplicate procs directive";
          let n = int_of ~line:lineno "processor count" n in
          if n < 1 then fail lineno "procs must be >= 1, got %d" n;
          procs := Some n;
          streams := Array.make n []
      | [ "words"; n ] ->
          if !events_seen then fail lineno "words directive must precede events";
          if !words <> None then fail lineno "duplicate words directive";
          let n = int_of ~line:lineno "word count" n in
          if n < 1 then fail lineno "words must be >= 1, got %d" n;
          words := Some n
      | toks -> (
          (match (!procs, !words) with
          | None, _ -> fail lineno "event before the procs directive"
          | _, None -> fail lineno "event before the words directive"
          | Some _, Some _ -> ());
          events_seen := true;
          match toks with
          | [ "b" ] -> Array.iteri (fun p _ -> push p Program.Barrier) !streams
          | [ p; op; arg ] -> (
              let pid = int_of ~line:lineno "processor id" p in
              let arg_kind = if op = "l" || op = "u" then "lock id" else "word index" in
              let arg = int_of ~line:lineno arg_kind arg in
              let ev =
                match op with
                | "r" -> Program.Read arg
                | "w" -> Program.Write arg
                | "l" -> Program.Lock arg
                | "u" -> Program.Unlock arg
                | _ -> fail lineno "unknown event %S (expected r, w, l or u)" op
              in
              try push pid ev
              with Exit ->
                fail lineno "processor id %d out of range [0, %d)" pid
                  (match !procs with Some n -> n | None -> 0))
          | _ ->
              fail lineno
                "malformed line %S (expected \"<proc> r|w|l|u <n>\" or a bare \"b\")"
                (String.trim line)))
    lines;
  let nprocs = match !procs with Some n -> n | None -> fail 0 "missing procs directive" in
  let words = match !words with Some n -> n | None -> fail 0 "missing words directive" in
  let name =
    match (!directive_name, name) with Some n, _ -> n | None, Some n -> n | None, None -> "trace"
  in
  let t = { Program.name; nprocs; words; streams = Array.map List.rev !streams } in
  (try Program.validate t with Program.Invalid msg -> fail 0 "%s" msg);
  t

let parse_file path =
  let name = Filename.remove_extension (Filename.basename path) in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse_string ~name (really_input_string ic (in_channel_length ic)))

(* Phase-by-phase rendering: within a phase, each processor's segment in
   stream order, then one global [b]. Any interleaving parses back to
   the same streams, so round-tripping is structural. *)
let to_string (t : Program.t) =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "name %s\nprocs %d\nwords %d\n" t.Program.name t.Program.nprocs
    t.Program.words;
  let rests = Array.map (fun s -> ref s) t.Program.streams in
  let nphases = Program.phases t + 1 in
  for phase = 0 to nphases - 1 do
    Array.iteri
      (fun p rest ->
        let continue = ref true in
        while !continue do
          match !rest with
          | [] | Program.Barrier :: _ -> continue := false
          | op :: tl ->
              rest := tl;
              let line =
                match op with
                | Program.Read w -> Printf.sprintf "%d r %d" p w
                | Program.Write w -> Printf.sprintf "%d w %d" p w
                | Program.Lock l -> Printf.sprintf "%d l %d" p l
                | Program.Unlock l -> Printf.sprintf "%d u %d" p l
                | Program.Barrier -> assert false
              in
              Buffer.add_string buf line;
              Buffer.add_char buf '\n'
        done)
      rests;
    if phase < nphases - 1 then begin
      (* consume each stream's barrier and emit one global b *)
      Array.iter
        (fun rest ->
          match !rest with
          | Program.Barrier :: tl -> rest := tl
          | _ -> assert false)
        rests;
      Buffer.add_string buf "b\n"
    end
  done;
  Buffer.contents buf

let write_file path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string t))
