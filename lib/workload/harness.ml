(* Differential fuzzing harness: detector vs oracle vs ground truth,
   across backends, with and without elision; greedy shrinking of
   internal mismatches. *)

type result = { detected : int list; oracle : int list; checksum : int }
type runner = backend:string -> elide:bool -> Program.t -> result

let all_backends = [ "lrc"; "mesi"; "dragon" ]

let driver_runner ~backend ~elide (program : Program.t) =
  let base = ref 0 in
  let app = Program.to_app ~base program in
  let cfg =
    {
      Lrc.Config.default with
      Lrc.Config.backend;
      detect = true;
      record_trace = true;
      elide_sites = (if elide then Some [] else None);
    }
  in
  let outcome = Core.Driver.run ~cfg ~app ~nprocs:program.Program.nprocs () in
  (* SPMD malloc determinism: every processor computed the same base,
     so the one left in [base] maps any racy address to a word index.
     The mapping is applied to detector and oracle alike, so a stray
     out-of-array address still surfaces as a set difference. *)
  let to_words addrs = List.sort_uniq compare (List.map (fun a -> (a - !base) / 8) addrs) in
  {
    detected = to_words (Core.Driver.racy_addrs outcome);
    oracle = to_words (Core.Driver.oracle_addrs outcome);
    checksum = outcome.Core.Driver.mem_checksum;
  }

type kind =
  | Detector_vs_oracle of { backend : string; elide : bool }
  | Elide_dependent of { backend : string }
  | Backend_dependent of { backend_a : string; backend_b : string }
  | Ground_truth of { backend : string }

type mismatch = { program : Program.t; kind : kind; detail : string }

let kind_name = function
  | Detector_vs_oracle _ -> "detector-vs-oracle"
  | Elide_dependent _ -> "elide-dependent"
  | Backend_dependent _ -> "backend-dependent"
  | Ground_truth _ -> "ground-truth"

let shrinkable = function Ground_truth _ -> false | _ -> true
let pp_set ws = "{" ^ String.concat "," (List.map string_of_int ws) ^ "}"

let check ?(backends = all_backends) ~runner ?ground_truth program =
  let exception Found of mismatch in
  let fail kind detail = raise (Found { program; kind; detail }) in
  try
    let results =
      List.map
        (fun backend ->
          let plain = runner ~backend ~elide:false program in
          if plain.detected <> plain.oracle then
            fail
              (Detector_vs_oracle { backend; elide = false })
              (Printf.sprintf "%s: detected %s but oracle says %s" backend
                 (pp_set plain.detected) (pp_set plain.oracle));
          let elided = runner ~backend ~elide:true program in
          if elided.detected <> elided.oracle then
            fail
              (Detector_vs_oracle { backend; elide = true })
              (Printf.sprintf "%s --elide: detected %s but oracle says %s" backend
                 (pp_set elided.detected) (pp_set elided.oracle));
          if elided.detected <> plain.detected then
            fail
              (Elide_dependent { backend })
              (Printf.sprintf "%s: elision changed the detected set %s -> %s" backend
                 (pp_set plain.detected) (pp_set elided.detected));
          (backend, plain))
        backends
    in
    (match results with
    | [] -> ()
    | (backend_a, reference) :: rest ->
        List.iter
          (fun (backend_b, r) ->
            if r.detected <> reference.detected then
              fail
                (Backend_dependent { backend_a; backend_b })
                (Printf.sprintf "%s detected %s but %s detected %s" backend_a
                   (pp_set reference.detected) backend_b (pp_set r.detected)))
          rest;
        (match ground_truth with
        | Some gt when reference.detected <> gt ->
            fail (Ground_truth { backend = backend_a })
              (Printf.sprintf "planted races %s but every backend detected %s" (pp_set gt)
                 (pp_set reference.detected))
        | _ -> ()));
    None
  with Found m -> Some m

(* ------------------------------------------------------------------ *)
(* Shrinking *)

(* split a stream into its barrier-delimited segments; length = phases+1 *)
let segments stream =
  List.fold_left
    (fun acc op ->
      match (op, acc) with
      | Program.Barrier, _ -> [] :: acc
      | op, seg :: tl -> (op :: seg) :: tl
      | _, [] -> assert false)
    [ [] ] stream
  |> List.rev_map List.rev

let join_segments segs =
  match segs with
  | [] -> []
  | first :: rest -> first @ List.concat_map (fun s -> Program.Barrier :: s) rest

let drop_nth l n = List.filteri (fun i _ -> i <> n) l

let drop_proc (t : Program.t) p =
  {
    t with
    Program.nprocs = t.Program.nprocs - 1;
    streams =
      Array.of_list (drop_nth (Array.to_list t.Program.streams) p);
  }

let drop_phase (t : Program.t) k =
  { t with Program.streams = Array.map (fun s -> join_segments (drop_nth (segments s) k)) t.Program.streams }

let merge_phase (t : Program.t) k =
  (* remove the k-th barrier from every stream, fusing segments k and k+1 *)
  let fuse s =
    match segments s with
    | segs when List.length segs > k + 1 ->
        let before = List.filteri (fun i _ -> i < k) segs in
        let a = List.nth segs k and b = List.nth segs (k + 1) in
        let after = List.filteri (fun i _ -> i > k + 1) segs in
        join_segments (before @ [ a @ b ] @ after)
    | _ -> s
  in
  { t with Program.streams = Array.map fuse t.Program.streams }

let drop_op (t : Program.t) p i =
  let stream = t.Program.streams.(p) in
  let remove indices =
    List.filteri (fun j _ -> not (List.mem j indices)) stream
  in
  let nth = List.nth stream in
  let stream' =
    match nth i with
    | Program.Read _ | Program.Write _ -> Some (remove [ i ])
    | Program.Lock l ->
        (* partner = first Unlock l after i (no re-acquire while held) *)
        let rec find j = function
          | [] -> None
          | Program.Unlock l' :: _ when l' = l && j > i -> Some j
          | _ :: tl -> find (j + 1) tl
        in
        Option.map (fun j -> remove [ i; j ]) (find 0 stream)
    | Program.Unlock l ->
        (* partner = last Lock l before i *)
        let rec find j best = function
          | [] -> best
          | Program.Lock l' :: tl when l' = l && j < i -> find (j + 1) (Some j) tl
          | _ :: tl -> find (j + 1) best tl
        in
        Option.map (fun j -> remove [ i; j ]) (find 0 None stream)
    | Program.Barrier -> None (* global: handled by merge_phase *)
  in
  Option.map
    (fun s ->
      let streams = Array.copy t.Program.streams in
      streams.(p) <- s;
      { t with Program.streams })
    stream'

let candidates (t : Program.t) =
  let nphases = Program.phases t in
  let procs =
    if t.Program.nprocs > 1 then List.init t.Program.nprocs (fun p () -> Some (drop_proc t p))
    else []
  in
  let phases = List.init (nphases + 1) (fun k () -> Some (drop_phase t k)) in
  let merges = List.init nphases (fun k () -> Some (merge_phase t k)) in
  let ops =
    List.concat
      (List.init t.Program.nprocs (fun p ->
           List.init (List.length t.Program.streams.(p)) (fun i () -> drop_op t p i)))
  in
  procs @ phases @ merges @ ops

let shrink ?backends ~runner (m : mismatch) =
  let still_fails p =
    try
      Program.validate p;
      match check ?backends ~runner p with Some mm -> shrinkable mm.kind | None -> false
    with Program.Invalid _ -> false
  in
  let budget = ref 500 in
  let current = ref m.program and steps = ref 0 in
  let progress = ref true in
  while !progress && !budget > 0 do
    progress := false;
    (try
       List.iter
         (fun cand ->
           if !budget > 0 then
             match cand () with
             | Some c when Program.size c < Program.size !current ->
                 decr budget;
                 if still_fails c then begin
                   current := c;
                   incr steps;
                   progress := true;
                   raise Exit
                 end
             | _ -> ())
         (candidates !current)
     with Exit -> ())
  done;
  (!current, !steps)

(* ------------------------------------------------------------------ *)
(* Fuzz loop *)

type report = {
  programs : int;
  events : int;
  planted : int;
  found : int;
  clean_programs : int;
  shrink_steps : int;
  mismatches : mismatch list;
  repro_files : string list;
}

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let fuzz ?knobs ?(backends = all_backends) ?(runner = driver_runner) ?repro_dir ~seed ~count
    ~shrink:do_shrink () =
  let events = ref 0 and planted = ref 0 and found = ref 0 in
  let clean = ref 0 and shrink_steps = ref 0 in
  let mismatches = ref [] and repro_files = ref [] in
  for index = 0 to count - 1 do
    let g = Generator.generate_seeded ?knobs ~seed ~index () in
    events := !events + Program.size g.Generator.program;
    planted := !planted + List.length g.Generator.racy;
    if g.Generator.racy = [] then incr clean;
    match check ~backends ~runner ~ground_truth:g.Generator.racy g.Generator.program with
    | None -> found := !found + List.length g.Generator.racy
    | Some m ->
        let m =
          if do_shrink && shrinkable m.kind then begin
            let minimized, steps = shrink ~backends ~runner m in
            shrink_steps := !shrink_steps + steps;
            { m with program = minimized }
          end
          else m
        in
        (match repro_dir with
        | Some dir ->
            mkdir_p dir;
            let path =
              Filename.concat dir
                (Printf.sprintf "%s-%s.trace" m.program.Program.name (kind_name m.kind))
            in
            Trace_file.write_file path m.program;
            repro_files := path :: !repro_files
        | None -> ());
        mismatches := m :: !mismatches
  done;
  {
    programs = count;
    events = !events;
    planted = !planted;
    found = !found;
    clean_programs = !clean;
    shrink_steps = !shrink_steps;
    mismatches = List.rev !mismatches;
    repro_files = List.rev !repro_files;
  }
