(** Trace-file frontend: a small text format for per-processor
    access/sync streams, so external workloads run under every backend
    without writing OCaml.

    Grammar (one directive or event per line; [#] starts a comment,
    blank lines are skipped):

    {v
    name <name>           # optional; defaults to the file's basename
    procs <n>             # required, before any event
    words <n>             # required, before any event
    <p> r <word>          # processor p reads shared word <word>
    <p> w <word>          # processor p writes shared word <word>
    <p> l <lock>          # processor p acquires lock <lock>
    <p> u <lock>          # processor p releases lock <lock>
    b                     # global barrier (every processor)
    v}

    Event order across processors carries no meaning — each processor's
    stream is the subsequence of its own lines — except [b], which
    appends a barrier to {e every} stream, delimiting a phase for all.
    The parsed program is {!Program.validate}d, so lock-discipline and
    barrier-balance violations are reported as parse failures too
    (prefixed with the program name, and pointing at the last line of
    the file).

    [<name>] is the raw remainder of the line: it may contain spaces.
    Unquoted, it ends at a [#] comment and boundary whitespace is
    trimmed; a double-quoted form — with backslash escapes for the
    backslash, the double quote, and the n/t/r control characters —
    covers names containing quotes, [#], newlines or significant
    boundary whitespace. {!to_string} picks whichever form round-trips
    the name. *)

exception Parse_error of { line : int; msg : string }
(** [line] is 1-based. Failures not tied to one line — a missing
    [procs]/[words] directive, a {!Program.validate} rejection — report
    the last line that carried any token (line 1 for an empty file). *)

val parse_string : ?name:string -> string -> Program.t
(** Parse trace text. A [name] directive in the text wins; [name] is
    the fallback when the text has none. Raises {!Parse_error}. *)

val parse_file : string -> Program.t
(** Parse a file; the default program name is the basename without its
    extension. Raises {!Parse_error} and [Sys_error]. *)

val to_string : Program.t -> string
(** Render a program in the trace format, phase by phase, such that
    [parse_string (to_string p)] equals [p] ({!Program.equal}). *)

val write_file : string -> Program.t -> unit
