(* Workload programs: explicit per-processor access/sync streams.

   The shared currency of the adversarial-workload frontier: trace
   files parse into one of these, the seeded generator emits one, and
   the differential harness runs one under every coherence backend.
   Packaging as an [Apps.App.t] means the whole existing stack — the
   driver, elision, record/replay, the oracle trace — applies without a
   special path. *)

type op =
  | Read of int
  | Write of int
  | Lock of int
  | Unlock of int
  | Barrier

type t = {
  name : string;
  nprocs : int;
  words : int;
  streams : op list array;
}

exception Invalid of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let validate t =
  if t.nprocs < 1 then invalid "nprocs must be >= 1 (got %d)" t.nprocs;
  if t.words < 1 then invalid "words must be >= 1 (got %d)" t.words;
  if Array.length t.streams <> t.nprocs then
    invalid "expected %d streams, got %d" t.nprocs (Array.length t.streams);
  let barrier_counts =
    Array.mapi
      (fun p stream ->
        let held = ref [] and barriers = ref 0 in
        List.iteri
          (fun i op ->
            match op with
            | Read w | Write w ->
                if w < 0 || w >= t.words then
                  invalid "proc %d op %d: word %d out of range [0, %d)" p i w t.words
            | Lock l ->
                if l < 0 then invalid "proc %d op %d: negative lock id %d" p i l;
                if List.mem l !held then
                  invalid "proc %d op %d: lock %d acquired while held" p i l;
                held := l :: !held
            | Unlock l ->
                if not (List.mem l !held) then
                  invalid "proc %d op %d: lock %d released but not held" p i l;
                held := List.filter (fun h -> h <> l) !held
            | Barrier ->
                if !held <> [] then
                  invalid "proc %d op %d: barrier while holding lock(s) %s" p i
                    (String.concat "," (List.map string_of_int (List.sort compare !held)));
                incr barriers)
          stream;
        if !held <> [] then
          invalid "proc %d: stream ends holding lock(s) %s" p
            (String.concat "," (List.map string_of_int (List.sort compare !held)));
        !barriers)
      t.streams
  in
  Array.iteri
    (fun p n ->
      if n <> barrier_counts.(0) then
        invalid "barriers are global: proc 0 has %d, proc %d has %d" barrier_counts.(0) p n)
    barrier_counts

let size t = Array.fold_left (fun acc s -> acc + List.length s) 0 t.streams

let phases t =
  match t.streams with
  | [||] -> 0
  | streams ->
      List.fold_left
        (fun acc op -> match op with Barrier -> acc + 1 | _ -> acc)
        0 streams.(0)

let site ~proc ~index = Printf.sprintf "p%d:%d" proc index

let accesses t =
  let out = ref [] in
  Array.iteri
    (fun p stream ->
      List.iteri
        (fun i op ->
          match op with
          | Read w -> out := (p, i, Instrument.Binary.Load, w) :: !out
          | Write w -> out := (p, i, Instrument.Binary.Store, w) :: !out
          | Lock _ | Unlock _ | Barrier -> ())
        stream)
    t.streams;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Synthetic SPMD binary: per-phase union of every processor's
   accesses, each wrapped in acquire/release of exactly the locks its
   processor holds at that point. Wrapping per access (instead of
   emitting the stream's own lock ops) keeps the straight line
   lock-balanced whatever the interleaving of processors' segments, so
   the must-hold lockset the dataflow computes at each access is the
   access's true dynamic lockset. *)

let binary t =
  let open Instrument.Ir in
  let nphases = phases t + 1 in
  (* per_phase.(k) collects ops in processor order, reversed *)
  let per_phase = Array.make nphases [] in
  Array.iteri
    (fun p stream ->
      let phase = ref 0 and held = ref [] in
      List.iteri
        (fun i op ->
          let access mk =
            let locks = List.sort compare !held in
            let ops =
              List.map (fun l -> acquire l) locks
              @ [ mk ~site:(site ~proc:p ~index:i) ]
              @ List.rev_map (fun l -> release l) locks
            in
            per_phase.(!phase) <- List.rev_append ops per_phase.(!phase)
          in
          match op with
          | Read w -> access (fun ~site -> load ~offset:(w * 8) ~site (Reg 0))
          | Write w -> access (fun ~site -> store ~offset:(w * 8) ~site (Reg 0))
          | Lock l -> held := l :: !held
          | Unlock l -> held := List.filter (fun h -> h <> l) !held
          | Barrier -> incr phase)
        stream)
    t.streams;
  let ops =
    List.concat_map
      (fun k -> List.rev (barrier :: per_phase.(k)))
      (List.init nphases Fun.id)
  in
  Instrument.Binary.make ~name:t.name
    ~procs:
      [
        proc ~name:t.name ~entry:"entry"
          [ block "entry" (malloc_shared ~dst:0 (t.name ^ ".mem") :: ops) ];
      ]
    []

(* ------------------------------------------------------------------ *)

(* deterministic written values: distinct per (proc, op index) so the
   final memory image exercises real data movement *)
let value pid index = ((pid + 1) * 1_000_003) + index

let run_body t base node =
  let open Lrc.Dsm in
  if nprocs node <> t.nprocs then
    failwith
      (Printf.sprintf "workload %s expects %d processors, run with %d" t.name t.nprocs
         (nprocs node));
  let b = malloc node ~name:(t.name ^ ".mem") (t.words * 8) in
  (match base with Some r -> r := b | None -> ());
  let pid = pid node in
  List.iteri
    (fun i op ->
      match op with
      | Read w -> ignore (read_int node ~site:(site ~proc:pid ~index:i) (b + (w * 8)))
      | Write w -> write_int node ~site:(site ~proc:pid ~index:i) (b + (w * 8)) (value pid i)
      | Lock l -> lock node l
      | Unlock l -> unlock node l
      | Barrier -> barrier node)
    t.streams.(pid);
  (* implicit final barrier: the last epoch's accesses get their
     detection pass before the run ends *)
  barrier node

let to_app ?base t =
  validate t;
  {
    Apps.App.name = t.name;
    input_description =
      Printf.sprintf "%d proc(s), %d shared word(s), %d event(s)" t.nprocs t.words (size t);
    synchronization = "locks and barriers (explicit streams)";
    memory_bytes = t.words * 8;
    binary = (fun () -> binary t);
    body = run_body t base;
  }

let equal a b =
  a.name = b.name && a.nprocs = b.nprocs && a.words = b.words && a.streams = b.streams

let pp_op ppf = function
  | Read w -> Format.fprintf ppf "r%d" w
  | Write w -> Format.fprintf ppf "w%d" w
  | Lock l -> Format.fprintf ppf "l%d" l
  | Unlock l -> Format.fprintf ppf "u%d" l
  | Barrier -> Format.fprintf ppf "b"

let pp ppf t =
  Format.fprintf ppf "@[<v>%s: %d proc(s), %d word(s)" t.name t.nprocs t.words;
  Array.iteri
    (fun p stream ->
      Format.fprintf ppf "@ p%d: %a" p
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ") pp_op)
        stream)
    t.streams;
  Format.fprintf ppf "@]"
