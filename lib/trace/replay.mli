(** Replay verification and log-only reconstruction.

    A {!verifier} is a {!Sink.t} that, instead of appending events,
    compares the live stream against a decoded log and latches the first
    mismatch — recorded index, expected vs. actual event, simulated time,
    and each processor's last recorded activity at that point. *)

type divergence = {
  d_index : int;  (** 0-based position in the recorded stream *)
  d_time : int;  (** simulated time of the mismatch *)
  d_expected : (int * Event.t) option;
      (** [None]: the live run produced events past the end of the log *)
  d_actual : (int * Event.t) option;
      (** [None]: the live run ended before consuming the whole log *)
  d_proc_state : (int * string) list;
      (** last recorded activity per processor, for the report *)
}

val pp_divergence : Format.formatter -> divergence -> unit

type verifier

val create : Codec.decoded -> verifier
val sink : verifier -> Sink.t

val check : verifier -> time:int -> Event.t -> unit
(** Compare one live event against the next recorded one. After the
    first mismatch the verifier goes inert (subsequent events are
    ignored); the latched divergence is what {!divergence} returns. *)

val divergence : verifier -> divergence option

val finish : verifier -> divergence option
(** Declare the live stream over: recorded events not yet matched become
    a divergence with [d_actual = None]. Returns the final verdict. *)

val matched : verifier -> int
(** Events matched so far. *)

(** {2 Log-only reconstruction} *)

val races_of_log : Codec.decoded -> Proto.Race.t list
(** The deduplicated race set, rebuilt from [Race] events alone. *)

val checksum_of_log : Codec.decoded -> int option
(** Final memory checksum from the [Run_end] event, if the log has one. *)

val sim_time_of_log : Codec.decoded -> int option

type tag_stats = { ts_tag : string; ts_count : int; ts_bytes : int }

val stats_of_log : Codec.decoded -> tag_stats list
(** Per-tag event counts and encoded payload bytes, largest first. *)
