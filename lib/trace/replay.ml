(* Replay verification: run the same configuration again and check the
   live event stream against the recorded one, event by event. The
   verifier is itself a {!Sink.t}, so the cluster needs no special replay
   mode — it just emits into a sink that compares instead of appending.

   The first mismatch is latched: index into the recorded stream,
   expected and actual events, and the last recorded activity of every
   processor at that point (a cheap "where was everyone" summary). *)

type divergence = {
  d_index : int;  (* 0-based position in the recorded stream *)
  d_time : int;  (* simulated time of the live event (or expected, at stream end) *)
  d_expected : (int * Event.t) option;  (* None: live run produced extra events *)
  d_actual : (int * Event.t) option;  (* None: live run ended short *)
  d_proc_state : (int * string) list;  (* last recorded activity per processor *)
}

type verifier = {
  log : (int * Event.t) array;
  nprocs : int;
  last_by_proc : string option array;
  mutable next : int;  (* index of the next expected event *)
  mutable divergence : divergence option;
}

let proc_of (e : Event.t) =
  match e with
  | Event.Proc_block { proc; _ }
  | Event.Proc_resume { proc }
  | Event.Proc_finish { proc }
  | Event.Page_fault { proc; _ }
  | Event.Diff_fetch { proc; _ }
  | Event.Diff_apply { proc; _ }
  | Event.Lock_acquire { proc; _ }
  | Event.Lock_release { proc; _ }
  | Event.Barrier_enter { proc; _ }
  | Event.Barrier_leave { proc; _ }
  | Event.Interval_open { proc; _ }
  | Event.Interval_close { proc; _ }
  | Event.Bus { proc; _ } ->
      Some proc
  | Event.Msg_send { src; _ } -> Some src
  | Event.Msg_deliver { dst; _ } -> Some dst
  | _ -> None

let create (decoded : Codec.decoded) =
  {
    log = decoded.Codec.events;
    nprocs = decoded.Codec.meta.Codec.m_nprocs;
    last_by_proc = Array.make (max 1 decoded.Codec.meta.Codec.m_nprocs) None;
    next = 0;
    divergence = None;
  }

let proc_state t =
  let acc = ref [] in
  for p = Array.length t.last_by_proc - 1 downto 0 do
    match t.last_by_proc.(p) with
    | Some s -> acc := (p, s) :: !acc
    | None -> ()
  done;
  !acc

let note_proc t ~time event =
  match proc_of event with
  | Some p when p >= 0 && p < Array.length t.last_by_proc ->
      t.last_by_proc.(p) <-
        Some (Printf.sprintf "%s @ %d ns" (Event.to_string event) time)
  | _ -> ()

let diverge t ~time ~expected ~actual =
  if t.divergence = None then
    t.divergence <-
      Some
        {
          d_index = t.next;
          d_time = time;
          d_expected = expected;
          d_actual = actual;
          d_proc_state = proc_state t;
        }

let check t ~time event =
  if t.divergence = None then begin
    if t.next >= Array.length t.log then
      diverge t ~time ~expected:None ~actual:(Some (time, event))
    else begin
      let (exp_time, exp_event) as expected = t.log.(t.next) in
      if exp_time = time && Event.equal exp_event event then begin
        note_proc t ~time event;
        t.next <- t.next + 1
      end
      else diverge t ~time ~expected:(Some expected) ~actual:(Some (time, event))
    end
  end

let sink t = { Sink.emit = (fun ~time event -> check t ~time event) }

let divergence t = t.divergence

(* Declare the stream over: any recorded events not yet matched are a
   divergence of their own (the live run ended short). *)
let finish t =
  (match t.divergence with
  | Some _ -> ()
  | None ->
      if t.next < Array.length t.log then
        let exp_time, _ = t.log.(t.next) in
        diverge t ~time:exp_time ~expected:(Some t.log.(t.next)) ~actual:None);
  t.divergence

let matched t = t.next

let pp_stream_item ppf = function
  | Some (time, event) -> Format.fprintf ppf "%a @@ %d ns" Event.pp event time
  | None -> Format.pp_print_string ppf "(end of stream)"

let pp_divergence ppf d =
  Format.fprintf ppf "@[<v>first divergence at event %d (sim time %d ns):" d.d_index
    d.d_time;
  Format.fprintf ppf "@,  expected: %a" pp_stream_item d.d_expected;
  Format.fprintf ppf "@,  actual:   %a" pp_stream_item d.d_actual;
  (match d.d_proc_state with
  | [] -> ()
  | procs ->
      Format.fprintf ppf "@,  last recorded activity per processor:";
      List.iter
        (fun (p, s) -> Format.fprintf ppf "@,    p%d: %s" p s)
        procs);
  Format.fprintf ppf "@]"

(* --- log-only reconstruction --- *)

let races_of_log (decoded : Codec.decoded) =
  Array.fold_left
    (fun acc (_, e) -> match e with Event.Race r -> r :: acc | _ -> acc)
    [] decoded.Codec.events
  |> List.rev |> Proto.Race.dedup

let run_end_of_log (decoded : Codec.decoded) =
  Array.fold_left
    (fun acc (_, e) -> match e with Event.Run_end _ -> Some e | _ -> acc)
    None decoded.Codec.events

let checksum_of_log decoded =
  match run_end_of_log decoded with
  | Some (Event.Run_end { checksum; _ }) -> Some checksum
  | _ -> None

let sim_time_of_log decoded =
  match run_end_of_log decoded with
  | Some (Event.Run_end { sim_time_ns; _ }) -> Some sim_time_ns
  | _ -> None

type tag_stats = { ts_tag : string; ts_count : int; ts_bytes : int }

let stats_of_log (decoded : Codec.decoded) =
  let tbl = Hashtbl.create 24 in
  Array.iter
    (fun (_, e) ->
      let tag = Event.tag e in
      let count, bytes =
        match Hashtbl.find_opt tbl tag with Some cb -> cb | None -> (0, 0)
      in
      Hashtbl.replace tbl tag (count + 1, bytes + Codec.event_bytes e))
    decoded.Codec.events;
  Hashtbl.fold (fun ts_tag (ts_count, ts_bytes) acc ->
      { ts_tag; ts_count; ts_bytes } :: acc)
    tbl []
  |> List.sort (fun a b ->
         match compare b.ts_bytes a.ts_bytes with
         | 0 -> compare a.ts_tag b.ts_tag
         | n -> n)
