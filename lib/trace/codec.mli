(** Binary trace-log codec.

    Layout: magic ["CVMT"], a format-version byte, the run metadata, then
    one record per event — tag byte, zigzag-LEB128 time delta, fields.
    The metadata makes a log self-contained: [replay] rebuilds the exact
    cluster configuration from it. *)

val magic : string

val version : int
(** The format version this build writes (v5). *)

val min_version : int
(** The oldest format version this build still decodes (v1: no
    transport tuning beyond the retry cap, no interval-GC cadence). *)

type transport_meta = {
  tm_initial_rto_ns : int;
  tm_max_rto_ns : int;
  tm_max_retries : int;
  tm_header_bytes : int;
  tm_ack_bytes : int;
}
(** The full reliable-transport configuration — every field that can
    change retransmission timing or wire accounting is recorded, so a
    tuned-transport recording replays under the exact same transport. *)

type meta = {
  m_app : string;
  m_scale : string;  (** "paper", "small" or "large" *)
  m_nprocs : int;
  m_protocol : string;  (** {!Lrc.Config.protocol_name} *)
  m_detect : bool;
  m_first_race_only : bool;
  m_stores_from_diffs : bool;
  m_seed : int;
  m_net_seed : int option;
  m_drop : float;
  m_dup : float;
  m_reorder : float;
  m_reorder_window_ns : int;
  m_spike : float;
  m_spike_ns : int;
  m_partitions : (int * int * int * int) list;  (** a, b, from_ns, until_ns *)
  m_transport : transport_meta option;
  m_watchdog_ns : int option;
  m_gc_epochs : int option;  (** interval-GC cadence; [None] before v2 *)
  m_elide : bool;
      (** elide checks at statically race-free sites; [false] before v3.
          Only the flag is stored — the site set is re-derived from the
          app's binary at replay time *)
  m_backend : string;
      (** coherence backend id ("lrc", "mesi", "dragon"); ["lrc"] before
          v4 — every pre-v4 log was recorded by the DSM cluster *)
  m_cc_line_bytes : int;  (** cache geometry for the bus backends (v4+) *)
  m_cc_sets : int;
  m_cc_ways : int;
  m_sim_jobs : int option;
      (** engine-schedule marker: [Some 1] for logs recorded on the
          window-sharded [--sim-jobs] engine, [None] for legacy-loop
          logs (and everything before v5). Never the domain count —
          the sharded interleaving is domain-count-invariant, and
          recording the count would break byte-identity of logs
          across [--sim-jobs N]. Replay picks the engine from this
          and runs one domain. *)
}

val v1_transport_defaults : transport_meta
(** The transport defaults frozen at the v1 format: decoding a v1 log
    that ran the transport yields these with the recorded retry cap. *)

exception Corrupt of string
(** Raised by {!decode} on a malformed log. *)

type encoder

val encoder : meta -> encoder
(** Fresh encoder with the header and metadata already written. *)

val add : encoder -> time:int -> Event.t -> unit
(** Append one event. [time] is absolute simulated nanoseconds and must
    be monotone non-decreasing across calls (deltas are what's stored;
    a regression still round-trips, it just costs zigzag bytes). *)

val count : encoder -> int
val contents : encoder -> string

val encode : meta -> (int * Event.t) array -> string
(** One-shot encoding of a (time, event) stream. *)

type decoded = { meta : meta; events : (int * Event.t) array }

val decode : string -> decoded
(** Parse a complete log. Raises {!Corrupt} on bad magic, a truncated or
    garbled record, or a format version outside
    [[min_version, version]] — the error says explicitly whether the log
    is too old or too new, never a misleading field-level decode crash. *)

val event_bytes : Event.t -> int
(** Encoded size of one event record, excluding the time delta — used by
    [trace --stats]. *)
