(** Binary trace-log codec.

    Layout: magic ["CVMT"], a format-version byte, the run metadata, then
    one record per event — tag byte, zigzag-LEB128 time delta, fields.
    The metadata makes a log self-contained: [replay] rebuilds the exact
    cluster configuration from it. *)

val magic : string
val version : int

type meta = {
  m_app : string;
  m_scale : string;  (** "paper" or "small" *)
  m_nprocs : int;
  m_protocol : string;  (** {!Lrc.Config.protocol_name} *)
  m_detect : bool;
  m_first_race_only : bool;
  m_stores_from_diffs : bool;
  m_seed : int;
  m_net_seed : int option;
  m_drop : float;
  m_dup : float;
  m_reorder : float;
  m_reorder_window_ns : int;
  m_spike : float;
  m_spike_ns : int;
  m_partitions : (int * int * int * int) list;  (** a, b, from_ns, until_ns *)
  m_transport : bool;
  m_max_retries : int option;
  m_watchdog_ns : int option;
}

exception Corrupt of string
(** Raised by {!decode} on a malformed log. *)

type encoder

val encoder : meta -> encoder
(** Fresh encoder with the header and metadata already written. *)

val add : encoder -> time:int -> Event.t -> unit
(** Append one event. [time] is absolute simulated nanoseconds and must
    be monotone non-decreasing across calls (deltas are what's stored;
    a regression still round-trips, it just costs zigzag bytes). *)

val count : encoder -> int
val contents : encoder -> string

val encode : meta -> (int * Event.t) array -> string
(** One-shot encoding of a (time, event) stream. *)

type decoded = { meta : meta; events : (int * Event.t) array }

val decode : string -> decoded
(** Parse a complete log. Raises {!Corrupt} on bad magic, an unsupported
    version, or a truncated/garbled record. *)

val event_bytes : Event.t -> int
(** Encoded size of one event record, excluding the time delta — used by
    [trace --stats]. *)
