(** Chrome trace-event export.

    Renders a decoded log as the JSON array chrome://tracing and Perfetto
    load: one track per processor (blocked stretches as slices, protocol
    activity as instants) and one per directed link that carried traffic
    (sends, deliveries, fault outcomes, retransmissions). *)

val export : Codec.decoded -> string
(** The complete JSON document. *)
