(* Compact binary trace log.

   Layout: a 5-byte header (magic "CVMT" + format version), the run
   metadata, then one record per event: a tag byte, the time *delta*
   since the previous event as a varint, and the tag-specific fields.
   Integers use zigzag LEB128 (times are monotone so deltas are small;
   zigzag keeps the odd negative — an ack's cumulative -1 — cheap).
   Floats (fault probabilities) are 8 fixed little-endian bytes.

   Format history:
   - v1: transport recorded as a bool plus the retry cap only; no
     interval-GC cadence. Decoding a v1 log synthesizes the missing
     fields from the frozen v1 defaults below.
   - v2: full transport config (RTO, backoff ceiling, retry cap, header
     and ack wire sizes) and the interval-GC cadence [m_gc_epochs], so a
     tuned-transport or GC-enabled recording replays under exactly the
     configuration that produced it.
   - v3: instrumentation-elision flag [m_elide]. Only the flag is
     stored, not the site set: the set is a pure function of the app's
     binary, so replay re-derives it and necessarily agrees with the
     recording build. Decoding an older log reads [m_elide = false].
   - v4: backend id [m_backend] ("lrc", "mesi", "dragon", ...) plus the
     cache geometry [m_cc_line_bytes]/[m_cc_sets]/[m_cc_ways] the
     snooping-bus backends need to reproduce a run, and the Bus event
     (tag 22). Older logs decode as backend "lrc" with the default
     geometry.
   - v5: [m_sim_jobs], the engine-schedule marker: [Some 1] when the
     recording ran on the window-sharded --sim-jobs engine (whose event
     times differ from the legacy loop's), [None] for legacy-loop
     recordings. The domain count itself is deliberately NOT recorded:
     the sharded interleaving is identical for every count, and logs
     recorded at any --sim-jobs N must stay byte-identical. Replay uses
     the marker to pick the engine and runs one domain. Older logs
     decode as [None]. *)

let magic = "CVMT"
let version = 5
let min_version = 1

type transport_meta = {
  tm_initial_rto_ns : int;
  tm_max_rto_ns : int;
  tm_max_retries : int;
  tm_header_bytes : int;
  tm_ack_bytes : int;
}

type meta = {
  m_app : string;
  m_scale : string;
  m_nprocs : int;
  m_protocol : string;
  m_detect : bool;
  m_first_race_only : bool;
  m_stores_from_diffs : bool;
  m_seed : int;
  m_net_seed : int option;
  m_drop : float;
  m_dup : float;
  m_reorder : float;
  m_reorder_window_ns : int;
  m_spike : float;
  m_spike_ns : int;
  m_partitions : (int * int * int * int) list;  (* a, b, from_ns, until_ns *)
  m_transport : transport_meta option;
  m_watchdog_ns : int option;
  m_gc_epochs : int option;
  m_elide : bool;  (* elide checks at statically race-free sites (v3+) *)
  m_backend : string;  (* coherence backend id, "lrc" before v4 *)
  m_cc_line_bytes : int;  (* cache geometry for the bus backends (v4+) *)
  m_cc_sets : int;
  m_cc_ways : int;
  m_sim_jobs : int option;  (* sharded-engine schedule marker (v5+) *)
}

(* The transport defaults that were current while v1 was the format:
   v1 logs recorded only the retry cap, everything else was implicitly
   "the default". Frozen here — NOT read from Sim.Transport — so a later
   change to the live defaults can never silently alter what an old log
   replays as. *)
let v1_transport_defaults =
  {
    tm_initial_rto_ns = 1_000_000;
    tm_max_rto_ns = 16_000_000;
    tm_max_retries = 20;
    tm_header_bytes = 12;
    tm_ack_bytes = 32;
  }

(* --- primitive writers --- *)

let put_varint buf n =
  (* zigzag then LEB128 *)
  let u = (n lsl 1) lxor (n asr (Sys.int_size - 1)) in
  let rec go u =
    if u land lnot 0x7f = 0 then Buffer.add_char buf (Char.chr u)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x7f)));
      go (u lsr 7)
    end
  in
  go u

let put_bool buf b = Buffer.add_char buf (if b then '\001' else '\000')
let put_string buf s =
  put_varint buf (String.length s);
  Buffer.add_string buf s

let put_float buf f = Buffer.add_int64_le buf (Int64.bits_of_float f)

let put_opt buf put = function
  | None -> put_bool buf false
  | Some v ->
      put_bool buf true;
      put buf v

let put_list buf put xs =
  put_varint buf (List.length xs);
  List.iter (put buf) xs

let put_vc buf (vc : Proto.Vclock.t) =
  put_varint buf (Array.length vc);
  Array.iter (put_varint buf) vc

let put_iid buf (id : Proto.Interval.id) =
  put_varint buf id.Proto.Interval.proc;
  put_varint buf id.Proto.Interval.index

let put_kind buf (k : Proto.Race.access_kind) =
  Buffer.add_char buf (match k with Proto.Race.Read -> '\000' | Write -> '\001')

(* --- primitive readers --- *)

type cursor = { src : string; mutable pos : int }

exception Corrupt of string

let fail fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let byte c =
  if c.pos >= String.length c.src then fail "truncated log at byte %d" c.pos;
  let b = Char.code c.src.[c.pos] in
  c.pos <- c.pos + 1;
  b

let get_varint c =
  let rec go shift acc =
    let b = byte c in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  let u = go 0 0 in
  (u lsr 1) lxor (-(u land 1))

let get_bool c = byte c <> 0

let get_string c =
  let len = get_varint c in
  if len < 0 || c.pos + len > String.length c.src then
    fail "bad string length %d at byte %d" len c.pos;
  let s = String.sub c.src c.pos len in
  c.pos <- c.pos + len;
  s

let get_float c =
  if c.pos + 8 > String.length c.src then fail "truncated float at byte %d" c.pos;
  let bits = String.get_int64_le c.src c.pos in
  c.pos <- c.pos + 8;
  Int64.float_of_bits bits

let get_opt c get = if get_bool c then Some (get c) else None

let get_list c get =
  let n = get_varint c in
  if n < 0 then fail "negative list length at byte %d" c.pos;
  List.init n (fun _ -> get c)

let get_vc c : Proto.Vclock.t =
  let n = get_varint c in
  if n < 0 then fail "negative vclock length at byte %d" c.pos;
  Array.init n (fun _ -> get_varint c)

let get_iid c : Proto.Interval.id =
  let proc = get_varint c in
  let index = get_varint c in
  { Proto.Interval.proc; index }

let get_kind c : Proto.Race.access_kind =
  match byte c with
  | 0 -> Proto.Race.Read
  | 1 -> Proto.Race.Write
  | k -> fail "bad access kind %d at byte %d" k c.pos

(* --- metadata --- *)

let put_transport buf tm =
  put_varint buf tm.tm_initial_rto_ns;
  put_varint buf tm.tm_max_rto_ns;
  put_varint buf tm.tm_max_retries;
  put_varint buf tm.tm_header_bytes;
  put_varint buf tm.tm_ack_bytes

let get_transport c =
  let tm_initial_rto_ns = get_varint c in
  let tm_max_rto_ns = get_varint c in
  let tm_max_retries = get_varint c in
  let tm_header_bytes = get_varint c in
  let tm_ack_bytes = get_varint c in
  { tm_initial_rto_ns; tm_max_rto_ns; tm_max_retries; tm_header_bytes; tm_ack_bytes }

(* always writes the current (v4) layout *)
let put_meta buf m =
  put_string buf m.m_app;
  put_string buf m.m_scale;
  put_varint buf m.m_nprocs;
  put_string buf m.m_protocol;
  put_bool buf m.m_detect;
  put_bool buf m.m_first_race_only;
  put_bool buf m.m_stores_from_diffs;
  put_varint buf m.m_seed;
  put_opt buf put_varint m.m_net_seed;
  put_float buf m.m_drop;
  put_float buf m.m_dup;
  put_float buf m.m_reorder;
  put_varint buf m.m_reorder_window_ns;
  put_float buf m.m_spike;
  put_varint buf m.m_spike_ns;
  put_list buf
    (fun buf (a, b, from_ns, until_ns) ->
      put_varint buf a;
      put_varint buf b;
      put_varint buf from_ns;
      put_varint buf until_ns)
    m.m_partitions;
  put_opt buf put_transport m.m_transport;
  put_opt buf put_varint m.m_watchdog_ns;
  put_opt buf put_varint m.m_gc_epochs;
  put_bool buf m.m_elide;
  put_string buf m.m_backend;
  put_varint buf m.m_cc_line_bytes;
  put_varint buf m.m_cc_sets;
  put_varint buf m.m_cc_ways;
  put_opt buf put_varint m.m_sim_jobs

let get_meta ~version c =
  let m_app = get_string c in
  let m_scale = get_string c in
  let m_nprocs = get_varint c in
  let m_protocol = get_string c in
  let m_detect = get_bool c in
  let m_first_race_only = get_bool c in
  let m_stores_from_diffs = get_bool c in
  let m_seed = get_varint c in
  let m_net_seed = get_opt c get_varint in
  let m_drop = get_float c in
  let m_dup = get_float c in
  let m_reorder = get_float c in
  let m_reorder_window_ns = get_varint c in
  let m_spike = get_float c in
  let m_spike_ns = get_varint c in
  let m_partitions =
    get_list c (fun c ->
        let a = get_varint c in
        let b = get_varint c in
        let from_ns = get_varint c in
        let until_ns = get_varint c in
        (a, b, from_ns, until_ns))
  in
  let m_transport, m_watchdog_ns, m_gc_epochs =
    if version = 1 then begin
      (* v1 tail: transport flag + retry cap + watchdog; no GC cadence *)
      let transport_on = get_bool c in
      let max_retries = get_opt c get_varint in
      let watchdog = get_opt c get_varint in
      let transport =
        if not transport_on then None
        else
          Some
            (match max_retries with
            | Some tm_max_retries -> { v1_transport_defaults with tm_max_retries }
            | None -> v1_transport_defaults)
      in
      (transport, watchdog, None)
    end
    else
      let transport = get_opt c get_transport in
      let watchdog = get_opt c get_varint in
      let gc_epochs = get_opt c get_varint in
      (transport, watchdog, gc_epochs)
  in
  let m_elide = if version >= 3 then get_bool c else false in
  let m_backend, m_cc_line_bytes, m_cc_sets, m_cc_ways =
    if version >= 4 then
      let backend = get_string c in
      let line_bytes = get_varint c in
      let sets = get_varint c in
      let ways = get_varint c in
      (backend, line_bytes, sets, ways)
    else ("lrc", 64, 64, 2)
  in
  let m_sim_jobs = if version >= 5 then get_opt c get_varint else None in
  {
    m_app;
    m_scale;
    m_nprocs;
    m_protocol;
    m_detect;
    m_first_race_only;
    m_stores_from_diffs;
    m_seed;
    m_net_seed;
    m_drop;
    m_dup;
    m_reorder;
    m_reorder_window_ns;
    m_spike;
    m_spike_ns;
    m_partitions;
    m_transport;
    m_watchdog_ns;
    m_gc_epochs;
    m_elide;
    m_backend;
    m_cc_line_bytes;
    m_cc_sets;
    m_cc_ways;
    m_sim_jobs;
  }

(* --- events --- *)

let put_event buf (e : Event.t) =
  let tag n = Buffer.add_char buf (Char.chr n) in
  match e with
  | Event.Msg_send { src; dst; kind; bytes } ->
      tag 0;
      put_varint buf src;
      put_varint buf dst;
      put_string buf kind;
      put_varint buf bytes
  | Event.Msg_deliver { src; dst; kind; bytes } ->
      tag 1;
      put_varint buf src;
      put_varint buf dst;
      put_string buf kind;
      put_varint buf bytes
  | Event.Fault { src; dst; outcome } ->
      tag 2;
      put_varint buf src;
      put_varint buf dst;
      (match outcome with
      | Event.Passed { copies; extra_delay_ns } ->
          Buffer.add_char buf '\000';
          put_varint buf copies;
          put_varint buf extra_delay_ns
      | Event.Dropped -> Buffer.add_char buf '\001'
      | Event.Blackholed -> Buffer.add_char buf '\002')
  | Event.Partition { a; b; up } ->
      tag 3;
      put_varint buf a;
      put_varint buf b;
      put_bool buf up
  | Event.Retransmit { src; dst; seq } ->
      tag 4;
      put_varint buf src;
      put_varint buf dst;
      put_varint buf seq
  | Event.Ack { src; dst; cum } ->
      tag 5;
      put_varint buf src;
      put_varint buf dst;
      put_varint buf cum
  | Event.Link_failure { src; dst } ->
      tag 6;
      put_varint buf src;
      put_varint buf dst
  | Event.Proc_block { proc; label } ->
      tag 7;
      put_varint buf proc;
      put_string buf label
  | Event.Proc_resume { proc } ->
      tag 8;
      put_varint buf proc
  | Event.Proc_finish { proc } ->
      tag 9;
      put_varint buf proc
  | Event.Page_fault { proc; page; kind } ->
      tag 10;
      put_varint buf proc;
      put_varint buf page;
      put_kind buf kind
  | Event.Diff_fetch { proc; page; count } ->
      tag 11;
      put_varint buf proc;
      put_varint buf page;
      put_varint buf count
  | Event.Diff_apply { proc; page; words } ->
      tag 12;
      put_varint buf proc;
      put_varint buf page;
      put_varint buf words
  | Event.Lock_acquire { proc; lock; vc } ->
      tag 13;
      put_varint buf proc;
      put_varint buf lock;
      put_vc buf vc
  | Event.Lock_release { proc; lock; vc } ->
      tag 14;
      put_varint buf proc;
      put_varint buf lock;
      put_vc buf vc
  | Event.Barrier_enter { proc; epoch } ->
      tag 15;
      put_varint buf proc;
      put_varint buf epoch
  | Event.Barrier_leave { proc; epoch; vc } ->
      tag 16;
      put_varint buf proc;
      put_varint buf epoch;
      put_vc buf vc
  | Event.Interval_open { proc; index; epoch } ->
      tag 17;
      put_varint buf proc;
      put_varint buf index;
      put_varint buf epoch
  | Event.Interval_close { proc; index; epoch; write_pages; read_pages } ->
      tag 18;
      put_varint buf proc;
      put_varint buf index;
      put_varint buf epoch;
      put_list buf put_varint write_pages;
      put_list buf put_varint read_pages
  | Event.Check_entry { a; b; pages } ->
      tag 19;
      put_iid buf a;
      put_iid buf b;
      put_list buf put_varint pages
  | Event.Race r ->
      tag 20;
      put_varint buf r.Proto.Race.addr;
      put_varint buf r.Proto.Race.page;
      put_varint buf r.Proto.Race.word;
      let fid, fk = r.Proto.Race.first in
      put_iid buf fid;
      put_kind buf fk;
      let sid, sk = r.Proto.Race.second in
      put_iid buf sid;
      put_kind buf sk;
      put_varint buf r.Proto.Race.epoch
  | Event.Run_end { checksum; sim_time_ns; races } ->
      tag 21;
      put_varint buf checksum;
      put_varint buf sim_time_ns;
      put_varint buf races
  | Event.Bus { proc; kind; line } ->
      tag 22;
      put_varint buf proc;
      Buffer.add_char buf
        (match kind with
        | Event.Bus_rd -> '\000'
        | Event.Bus_rdx -> '\001'
        | Event.Bus_upgr -> '\002'
        | Event.Bus_upd -> '\003'
        | Event.Bus_wb -> '\004'
        | Event.Bus_sync -> '\005');
      put_varint buf line

let get_event c : Event.t =
  match byte c with
  | 0 ->
      let src = get_varint c in
      let dst = get_varint c in
      let kind = get_string c in
      let bytes = get_varint c in
      Event.Msg_send { src; dst; kind; bytes }
  | 1 ->
      let src = get_varint c in
      let dst = get_varint c in
      let kind = get_string c in
      let bytes = get_varint c in
      Event.Msg_deliver { src; dst; kind; bytes }
  | 2 ->
      let src = get_varint c in
      let dst = get_varint c in
      let outcome =
        match byte c with
        | 0 ->
            let copies = get_varint c in
            let extra_delay_ns = get_varint c in
            Event.Passed { copies; extra_delay_ns }
        | 1 -> Event.Dropped
        | 2 -> Event.Blackholed
        | k -> fail "bad fault outcome %d at byte %d" k c.pos
      in
      Event.Fault { src; dst; outcome }
  | 3 ->
      let a = get_varint c in
      let b = get_varint c in
      let up = get_bool c in
      Event.Partition { a; b; up }
  | 4 ->
      let src = get_varint c in
      let dst = get_varint c in
      let seq = get_varint c in
      Event.Retransmit { src; dst; seq }
  | 5 ->
      let src = get_varint c in
      let dst = get_varint c in
      let cum = get_varint c in
      Event.Ack { src; dst; cum }
  | 6 ->
      let src = get_varint c in
      let dst = get_varint c in
      Event.Link_failure { src; dst }
  | 7 ->
      let proc = get_varint c in
      let label = get_string c in
      Event.Proc_block { proc; label }
  | 8 -> Event.Proc_resume { proc = get_varint c }
  | 9 -> Event.Proc_finish { proc = get_varint c }
  | 10 ->
      let proc = get_varint c in
      let page = get_varint c in
      let kind = get_kind c in
      Event.Page_fault { proc; page; kind }
  | 11 ->
      let proc = get_varint c in
      let page = get_varint c in
      let count = get_varint c in
      Event.Diff_fetch { proc; page; count }
  | 12 ->
      let proc = get_varint c in
      let page = get_varint c in
      let words = get_varint c in
      Event.Diff_apply { proc; page; words }
  | 13 ->
      let proc = get_varint c in
      let lock = get_varint c in
      let vc = get_vc c in
      Event.Lock_acquire { proc; lock; vc }
  | 14 ->
      let proc = get_varint c in
      let lock = get_varint c in
      let vc = get_vc c in
      Event.Lock_release { proc; lock; vc }
  | 15 ->
      let proc = get_varint c in
      let epoch = get_varint c in
      Event.Barrier_enter { proc; epoch }
  | 16 ->
      let proc = get_varint c in
      let epoch = get_varint c in
      let vc = get_vc c in
      Event.Barrier_leave { proc; epoch; vc }
  | 17 ->
      let proc = get_varint c in
      let index = get_varint c in
      let epoch = get_varint c in
      Event.Interval_open { proc; index; epoch }
  | 18 ->
      let proc = get_varint c in
      let index = get_varint c in
      let epoch = get_varint c in
      let write_pages = get_list c get_varint in
      let read_pages = get_list c get_varint in
      Event.Interval_close { proc; index; epoch; write_pages; read_pages }
  | 19 ->
      let a = get_iid c in
      let b = get_iid c in
      let pages = get_list c get_varint in
      Event.Check_entry { a; b; pages }
  | 20 ->
      let addr = get_varint c in
      let page = get_varint c in
      let word = get_varint c in
      let fid = get_iid c in
      let fk = get_kind c in
      let sid = get_iid c in
      let sk = get_kind c in
      let epoch = get_varint c in
      Event.Race
        { Proto.Race.addr; page; word; first = (fid, fk); second = (sid, sk); epoch }
  | 21 ->
      let checksum = get_varint c in
      let sim_time_ns = get_varint c in
      let races = get_varint c in
      Event.Run_end { checksum; sim_time_ns; races }
  | 22 ->
      let proc = get_varint c in
      let kind =
        match byte c with
        | 0 -> Event.Bus_rd
        | 1 -> Event.Bus_rdx
        | 2 -> Event.Bus_upgr
        | 3 -> Event.Bus_upd
        | 4 -> Event.Bus_wb
        | 5 -> Event.Bus_sync
        | k -> fail "bad bus kind %d at byte %d" k c.pos
      in
      let line = get_varint c in
      Event.Bus { proc; kind; line }
  | k -> fail "unknown event tag %d at byte %d" k (c.pos - 1)

(* --- incremental encoder --- *)

type encoder = { buf : Buffer.t; mutable last_time : int; mutable count : int }

let encoder meta =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr version);
  put_meta buf meta;
  { buf; last_time = 0; count = 0 }

let add enc ~time event =
  put_varint enc.buf (time - enc.last_time);
  enc.last_time <- time;
  put_event enc.buf event;
  enc.count <- enc.count + 1

let count enc = enc.count
let contents enc = Buffer.contents enc.buf

let encode meta events =
  let enc = encoder meta in
  Array.iter (fun (time, event) -> add enc ~time event) events;
  contents enc

(* --- decoder --- *)

type decoded = { meta : meta; events : (int * Event.t) array }

let decode s =
  if String.length s < 5 || String.sub s 0 4 <> magic then
    raise (Corrupt "not a CVM trace log (bad magic)");
  let log_version = Char.code s.[4] in
  if log_version > version then
    fail
      "trace log format v%d is newer than this build supports (max v%d) — replay it with \
       the build that recorded it, or re-record"
      log_version version;
  if log_version < min_version then
    fail
      "trace log format v%d is older than the minimum this build supports (v%d) — replay \
       it with the build that recorded it"
      log_version min_version;
  let c = { src = s; pos = 5 } in
  let meta = get_meta ~version:log_version c in
  let events = ref [] in
  let last_time = ref 0 in
  while c.pos < String.length s do
    let delta = get_varint c in
    let time = !last_time + delta in
    last_time := time;
    let event = get_event c in
    events := (time, event) :: !events
  done;
  { meta; events = Array.of_list (List.rev !events) }

let event_bytes event =
  let buf = Buffer.create 32 in
  put_event buf event;
  Buffer.length buf
