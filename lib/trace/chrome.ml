(* Chrome trace-event export: one JSON object per event in the "trace
   event format" that chrome://tracing and Perfetto load directly.

   Track layout (all under pid 0): one tid per processor, then one tid
   per directed link that ever carried traffic. Blocked stretches render
   as slices (ph B/E) on the processor tracks; everything else is an
   instant with its fields in [args]. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

type emitter = {
  buf : Buffer.t;
  mutable first : bool;
  nprocs : int;
  link_tids : (int * int, int) Hashtbl.t;  (* (src, dst) -> tid *)
  mutable next_tid : int;
  mutable open_block : bool array;  (* per proc: a B slice awaits its E *)
}

let obj e fields =
  if e.first then e.first <- false else Buffer.add_string e.buf ",\n";
  Buffer.add_char e.buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char e.buf ',';
      Buffer.add_string e.buf (Printf.sprintf "\"%s\":%s" k v))
    fields;
  Buffer.add_char e.buf '}'

let str s = Printf.sprintf "\"%s\"" (escape s)
let ts_us ns = Printf.sprintf "%.3f" (float_of_int ns /. 1000.)

let thread_name e ~tid name =
  obj e
    [
      ("name", str "thread_name");
      ("ph", str "M");
      ("pid", "0");
      ("tid", string_of_int tid);
      ("args", Printf.sprintf "{\"name\":%s}" (str name));
    ]

let link_tid e ~src ~dst =
  match Hashtbl.find_opt e.link_tids (src, dst) with
  | Some tid -> tid
  | None ->
      let tid = e.next_tid in
      e.next_tid <- tid + 1;
      Hashtbl.add e.link_tids (src, dst) tid;
      thread_name e ~tid (Printf.sprintf "link %d->%d" src dst);
      tid

let instant e ~tid ~time ~name args =
  obj e
    [
      ("name", str name);
      ("ph", str "i");
      ("s", str "t");
      ("ts", ts_us time);
      ("pid", "0");
      ("tid", string_of_int tid);
      ("args", args);
    ]

let slice e ~tid ~time ~ph ~name =
  obj e
    [
      ("name", str name);
      ("ph", str ph);
      ("ts", ts_us time);
      ("pid", "0");
      ("tid", string_of_int tid);
    ]

let args fmt = Printf.ksprintf (fun s -> s) fmt

let emit_event e ~time (event : Event.t) =
  match event with
  | Event.Proc_block { proc; label } ->
      if proc < e.nprocs then begin
        (* close a dangling slice before opening the next: Engine wakes can
           race handler-side blocks in the raw stream *)
        if e.open_block.(proc) then slice e ~tid:proc ~time ~ph:"E" ~name:"";
        e.open_block.(proc) <- true;
        slice e ~tid:proc ~time ~ph:"B" ~name:(Printf.sprintf "blocked: %s" label)
      end
  | Event.Proc_resume { proc } ->
      if proc < e.nprocs && e.open_block.(proc) then begin
        e.open_block.(proc) <- false;
        slice e ~tid:proc ~time ~ph:"E" ~name:""
      end
  | Event.Proc_finish { proc } ->
      if proc < e.nprocs then begin
        if e.open_block.(proc) then begin
          e.open_block.(proc) <- false;
          slice e ~tid:proc ~time ~ph:"E" ~name:""
        end;
        instant e ~tid:proc ~time ~name:"finish" "{}"
      end
  | Event.Msg_send { src; dst; kind; bytes } ->
      instant e ~tid:(link_tid e ~src ~dst) ~time ~name:(Printf.sprintf "send %s" kind)
        (args "{\"bytes\":%d}" bytes)
  | Event.Msg_deliver { src; dst; kind; bytes } ->
      instant e ~tid:(link_tid e ~src ~dst) ~time
        ~name:(Printf.sprintf "deliver %s" kind)
        (args "{\"bytes\":%d}" bytes)
  | Event.Fault { src; dst; outcome } ->
      let name =
        match outcome with
        | Event.Passed _ -> "fault: delayed/duplicated"
        | Event.Dropped -> "fault: dropped"
        | Event.Blackholed -> "fault: blackholed"
      in
      instant e ~tid:(link_tid e ~src ~dst) ~time ~name "{}"
  | Event.Partition { a; b; up } ->
      instant e
        ~tid:(link_tid e ~src:a ~dst:b)
        ~time
        ~name:(if up then "partition healed" else "partition cut")
        "{}"
  | Event.Retransmit { src; dst; seq } ->
      instant e ~tid:(link_tid e ~src ~dst) ~time ~name:"retransmit"
        (args "{\"seq\":%d}" seq)
  | Event.Ack { src; dst; cum } ->
      instant e ~tid:(link_tid e ~src ~dst) ~time ~name:"ack"
        (args "{\"cum\":%d}" cum)
  | Event.Link_failure { src; dst } ->
      instant e ~tid:(link_tid e ~src ~dst) ~time ~name:"link failure" "{}"
  | Event.Page_fault { proc; page; kind } ->
      if proc < e.nprocs then
        instant e ~tid:proc ~time
          ~name:
            (Printf.sprintf "%s fault"
               (match kind with Proto.Race.Read -> "read" | Write -> "write"))
          (args "{\"page\":%d}" page)
  | Event.Diff_fetch { proc; page; count } ->
      if proc < e.nprocs then
        instant e ~tid:proc ~time ~name:"diff fetch"
          (args "{\"page\":%d,\"writers\":%d}" page count)
  | Event.Diff_apply { proc; page; words } ->
      if proc < e.nprocs then
        instant e ~tid:proc ~time ~name:"diff apply"
          (args "{\"page\":%d,\"words\":%d}" page words)
  | Event.Lock_acquire { proc; lock; _ } ->
      if proc < e.nprocs then
        instant e ~tid:proc ~time ~name:(Printf.sprintf "acquire lock %d" lock) "{}"
  | Event.Lock_release { proc; lock; _ } ->
      if proc < e.nprocs then
        instant e ~tid:proc ~time ~name:(Printf.sprintf "release lock %d" lock) "{}"
  | Event.Barrier_enter { proc; epoch } ->
      if proc < e.nprocs then
        instant e ~tid:proc ~time ~name:"barrier enter" (args "{\"epoch\":%d}" epoch)
  | Event.Barrier_leave { proc; epoch; _ } ->
      if proc < e.nprocs then
        instant e ~tid:proc ~time ~name:"barrier leave" (args "{\"epoch\":%d}" epoch)
  | Event.Interval_open { proc; index; epoch } ->
      if proc < e.nprocs then
        instant e ~tid:proc ~time ~name:"interval open"
          (args "{\"index\":%d,\"epoch\":%d}" index epoch)
  | Event.Interval_close { proc; index; epoch; write_pages; read_pages } ->
      if proc < e.nprocs then
        instant e ~tid:proc ~time ~name:"interval close"
          (args "{\"index\":%d,\"epoch\":%d,\"writes\":%d,\"reads\":%d}" index epoch
             (List.length write_pages) (List.length read_pages))
  | Event.Bus { proc; kind; line } ->
      if proc < e.nprocs then
        instant e ~tid:proc ~time
          ~name:(Printf.sprintf "bus %s" (Event.bus_kind_name kind))
          (args "{\"line\":%d}" line)
  | Event.Check_entry { a; b; pages } ->
      instant e ~tid:(min a.Proto.Interval.proc (e.nprocs - 1)) ~time ~name:"check"
        (args "{\"a\":\"%d.%d\",\"b\":\"%d.%d\",\"pages\":%d}" a.Proto.Interval.proc
           a.Proto.Interval.index b.Proto.Interval.proc b.Proto.Interval.index
           (List.length pages))
  | Event.Race r ->
      let tid = (fst r.Proto.Race.first).Proto.Interval.proc in
      instant e ~tid:(min tid (e.nprocs - 1)) ~time ~name:"RACE"
        (args "{\"addr\":%d,\"page\":%d,\"word\":%d}" r.Proto.Race.addr
           r.Proto.Race.page r.Proto.Race.word)
  | Event.Run_end { checksum; sim_time_ns; races } ->
      instant e ~tid:0 ~time ~name:"run end"
        (args "{\"checksum\":%d,\"sim_time_ns\":%d,\"races\":%d}" checksum sim_time_ns
           races)

let export (decoded : Codec.decoded) =
  let nprocs = max 1 decoded.Codec.meta.Codec.m_nprocs in
  let e =
    {
      buf = Buffer.create 65536;
      first = true;
      nprocs;
      link_tids = Hashtbl.create 16;
      next_tid = nprocs;
      open_block = Array.make nprocs false;
    }
  in
  Buffer.add_string e.buf "[\n";
  for p = 0 to nprocs - 1 do
    thread_name e ~tid:p (Printf.sprintf "proc %d" p)
  done;
  Array.iter (fun (time, event) -> emit_event e ~time event) decoded.Codec.events;
  (* close any still-open blocked slices at the last timestamp *)
  let last_time =
    let n = Array.length decoded.Codec.events in
    if n = 0 then 0 else fst decoded.Codec.events.(n - 1)
  in
  Array.iteri
    (fun p open_ -> if open_ then slice e ~tid:p ~time:last_time ~ph:"E" ~name:"")
    e.open_block;
  Buffer.add_string e.buf "\n]\n";
  Buffer.contents e.buf
