(** Trace events: everything a run decides, from wire-frame fates up to
    race reports. A recorded stream of these (plus the run metadata in
    {!Codec.meta}) is sufficient to re-check a replay event-by-event and
    to reconstruct the race set and final memory checksum offline. *)

type fault_outcome =
  | Passed of { copies : int; extra_delay_ns : int }
      (** survived; [copies > 1] means fault injection duplicated it *)
  | Dropped  (** lost to the drop probability *)
  | Blackholed  (** swallowed by a partition window *)

type bus_kind =
  | Bus_rd  (** read-miss line fill *)
  | Bus_rdx  (** write-miss fill with invalidation *)
  | Bus_upgr  (** ownership upgrade, no data *)
  | Bus_upd  (** Dragon word broadcast *)
  | Bus_wb  (** dirty-line writeback *)
  | Bus_sync  (** lock/barrier read-modify-write *)

type t =
  | Msg_send of { src : int; dst : int; kind : string; bytes : int }
  | Msg_deliver of { src : int; dst : int; kind : string; bytes : int }
  | Fault of { src : int; dst : int; outcome : fault_outcome }
  | Partition of { a : int; b : int; up : bool }
  | Retransmit of { src : int; dst : int; seq : int }
  | Ack of { src : int; dst : int; cum : int }
  | Link_failure of { src : int; dst : int }
  | Proc_block of { proc : int; label : string }
  | Proc_resume of { proc : int }
  | Proc_finish of { proc : int }
  | Page_fault of { proc : int; page : int; kind : Proto.Race.access_kind }
  | Diff_fetch of { proc : int; page : int; count : int }
  | Diff_apply of { proc : int; page : int; words : int }
  | Lock_acquire of { proc : int; lock : int; vc : Proto.Vclock.t }
  | Lock_release of { proc : int; lock : int; vc : Proto.Vclock.t }
  | Barrier_enter of { proc : int; epoch : int }
  | Barrier_leave of { proc : int; epoch : int; vc : Proto.Vclock.t }
  | Interval_open of { proc : int; index : int; epoch : int }
  | Interval_close of {
      proc : int;
      index : int;
      epoch : int;
      write_pages : int list;
      read_pages : int list;
    }
  | Bus of { proc : int; kind : bus_kind; line : int }
      (** one snooping-bus transaction won by [proc]; [line] is the
          cache-line number, or the lock/barrier id for [Bus_sync] *)
  | Check_entry of {
      a : Proto.Interval.id;
      b : Proto.Interval.id;
      pages : int list;
    }
  | Race of Proto.Race.t
  | Run_end of { checksum : int; sim_time_ns : int; races : int }
      (** terminal event: final memory checksum, total simulated time, and
          deduplicated race count *)

val bus_kind_name : bus_kind -> string
(** Short stable name ("rd", "rdx", "upgr", "upd", "wb", "sync"). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val tag : t -> string
(** Stable constructor name ("msg-send", "race", ...) for statistics and
    the chrome exporter. *)
