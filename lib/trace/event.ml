(* The trace event vocabulary: every sim-level decision and protocol-level
   action a run makes, rich enough that a log alone reconstructs the race
   set and the final memory checksum, and precise enough that replaying
   the run against the log pinpoints the first divergence. *)

type fault_outcome =
  | Passed of { copies : int; extra_delay_ns : int }
      (* the frame survived, possibly duplicated or delayed *)
  | Dropped  (* lost to the drop probability *)
  | Blackholed  (* swallowed by a partition window *)

type bus_kind =
  | Bus_rd  (* read-miss line fill *)
  | Bus_rdx  (* write-miss fill with invalidation *)
  | Bus_upgr  (* ownership upgrade, no data *)
  | Bus_upd  (* Dragon word broadcast *)
  | Bus_wb  (* dirty-line writeback *)
  | Bus_sync  (* lock/barrier read-modify-write *)

type t =
  (* wire + transport *)
  | Msg_send of { src : int; dst : int; kind : string; bytes : int }
  | Msg_deliver of { src : int; dst : int; kind : string; bytes : int }
  | Fault of { src : int; dst : int; outcome : fault_outcome }
  | Partition of { a : int; b : int; up : bool }
  | Retransmit of { src : int; dst : int; seq : int }
  | Ack of { src : int; dst : int; cum : int }
  | Link_failure of { src : int; dst : int }
  (* scheduling *)
  | Proc_block of { proc : int; label : string }
  | Proc_resume of { proc : int }
  | Proc_finish of { proc : int }
  (* DSM protocol *)
  | Page_fault of { proc : int; page : int; kind : Proto.Race.access_kind }
  | Diff_fetch of { proc : int; page : int; count : int }
  | Diff_apply of { proc : int; page : int; words : int }
  | Lock_acquire of { proc : int; lock : int; vc : Proto.Vclock.t }
  | Lock_release of { proc : int; lock : int; vc : Proto.Vclock.t }
  | Barrier_enter of { proc : int; epoch : int }
  | Barrier_leave of { proc : int; epoch : int; vc : Proto.Vclock.t }
  | Interval_open of { proc : int; index : int; epoch : int }
  | Interval_close of {
      proc : int;
      index : int;
      epoch : int;
      write_pages : int list;
      read_pages : int list;
    }
  (* snooping-bus cache backends *)
  | Bus of { proc : int; kind : bus_kind; line : int }
      (* one bus transaction won by [proc]; [line] is the cache-line
         number, or the lock/barrier id for [Bus_sync] *)
  (* detection *)
  | Check_entry of {
      a : Proto.Interval.id;
      b : Proto.Interval.id;
      pages : int list;
    }
  | Race of Proto.Race.t
  (* terminal summary *)
  | Run_end of { checksum : int; sim_time_ns : int; races : int }

let equal (a : t) (b : t) =
  match (a, b) with
  | Race ra, Race rb -> Proto.Race.equal ra rb
  | Lock_acquire x, Lock_acquire y ->
      x.proc = y.proc && x.lock = y.lock && Proto.Vclock.equal x.vc y.vc
  | Lock_release x, Lock_release y ->
      x.proc = y.proc && x.lock = y.lock && Proto.Vclock.equal x.vc y.vc
  | Barrier_leave x, Barrier_leave y ->
      x.proc = y.proc && x.epoch = y.epoch && Proto.Vclock.equal x.vc y.vc
  | _ -> a = b

let pp_outcome ppf = function
  | Passed { copies; extra_delay_ns } ->
      Format.fprintf ppf "passed(copies=%d,+%dns)" copies extra_delay_ns
  | Dropped -> Format.pp_print_string ppf "dropped"
  | Blackholed -> Format.pp_print_string ppf "blackholed"

let pp_pages ppf pages =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       Format.pp_print_int)
    pages

let bus_kind_name = function
  | Bus_rd -> "rd"
  | Bus_rdx -> "rdx"
  | Bus_upgr -> "upgr"
  | Bus_upd -> "upd"
  | Bus_wb -> "wb"
  | Bus_sync -> "sync"

let pp ppf = function
  | Msg_send { src; dst; kind; bytes } ->
      Format.fprintf ppf "send %d->%d %s (%dB)" src dst kind bytes
  | Msg_deliver { src; dst; kind; bytes } ->
      Format.fprintf ppf "deliver %d->%d %s (%dB)" src dst kind bytes
  | Fault { src; dst; outcome } ->
      Format.fprintf ppf "fault %d->%d %a" src dst pp_outcome outcome
  | Partition { a; b; up } ->
      Format.fprintf ppf "partition %d<->%d %s" a b (if up then "healed" else "cut")
  | Retransmit { src; dst; seq } ->
      Format.fprintf ppf "retransmit %d->%d seq %d" src dst seq
  | Ack { src; dst; cum } -> Format.fprintf ppf "ack %d->%d cum %d" src dst cum
  | Link_failure { src; dst } -> Format.fprintf ppf "link-failure %d->%d" src dst
  | Proc_block { proc; label } -> Format.fprintf ppf "block p%d (%s)" proc label
  | Proc_resume { proc } -> Format.fprintf ppf "resume p%d" proc
  | Proc_finish { proc } -> Format.fprintf ppf "finish p%d" proc
  | Page_fault { proc; page; kind } ->
      Format.fprintf ppf "%a-fault p%d page %d" Proto.Race.pp_kind kind proc page
  | Diff_fetch { proc; page; count } ->
      Format.fprintf ppf "diff-fetch p%d page %d (%d writer%s)" proc page count
        (if count = 1 then "" else "s")
  | Diff_apply { proc; page; words } ->
      Format.fprintf ppf "diff-apply p%d page %d (%d words)" proc page words
  | Lock_acquire { proc; lock; vc } ->
      Format.fprintf ppf "acquire p%d lock %d vc=%a" proc lock Proto.Vclock.pp vc
  | Lock_release { proc; lock; vc } ->
      Format.fprintf ppf "release p%d lock %d vc=%a" proc lock Proto.Vclock.pp vc
  | Barrier_enter { proc; epoch } ->
      Format.fprintf ppf "barrier-enter p%d epoch %d" proc epoch
  | Barrier_leave { proc; epoch; vc } ->
      Format.fprintf ppf "barrier-leave p%d epoch %d vc=%a" proc epoch Proto.Vclock.pp
        vc
  | Interval_open { proc; index; epoch } ->
      Format.fprintf ppf "interval-open %a epoch %d" Proto.Interval.pp_id
        { Proto.Interval.proc; index } epoch
  | Interval_close { proc; index; epoch; write_pages; read_pages } ->
      Format.fprintf ppf "interval-close %a epoch %d w=%a r=%a" Proto.Interval.pp_id
        { Proto.Interval.proc; index } epoch pp_pages write_pages pp_pages read_pages
  | Bus { proc; kind; line } ->
      Format.fprintf ppf "bus p%d %s %s %d" proc (bus_kind_name kind)
        (match kind with Bus_sync -> "sync" | _ -> "line")
        line
  | Check_entry { a; b; pages } ->
      Format.fprintf ppf "check %a vs %a pages %a" Proto.Interval.pp_id a
        Proto.Interval.pp_id b pp_pages pages
  | Race r -> Format.fprintf ppf "race %a" Proto.Race.pp r
  | Run_end { checksum; sim_time_ns; races } ->
      Format.fprintf ppf "run-end checksum=%08x sim_time=%dns races=%d" checksum
        sim_time_ns races

let to_string e = Format.asprintf "%a" pp e

(* Stable tag names, used by [trace --stats] and the chrome exporter. *)
let tag = function
  | Msg_send _ -> "msg-send"
  | Msg_deliver _ -> "msg-deliver"
  | Fault _ -> "fault"
  | Partition _ -> "partition"
  | Retransmit _ -> "retransmit"
  | Ack _ -> "ack"
  | Link_failure _ -> "link-failure"
  | Proc_block _ -> "proc-block"
  | Proc_resume _ -> "proc-resume"
  | Proc_finish _ -> "proc-finish"
  | Page_fault _ -> "page-fault"
  | Diff_fetch _ -> "diff-fetch"
  | Diff_apply _ -> "diff-apply"
  | Lock_acquire _ -> "lock-acquire"
  | Lock_release _ -> "lock-release"
  | Barrier_enter _ -> "barrier-enter"
  | Barrier_leave _ -> "barrier-leave"
  | Interval_open _ -> "interval-open"
  | Interval_close _ -> "interval-close"
  | Bus _ -> "bus"
  | Check_entry _ -> "check-entry"
  | Race _ -> "race"
  | Run_end _ -> "run-end"
