(* Where trace events go. The cluster threads one of these through every
   hook point; with no sink configured the hooks cost a single branch. *)

type t = { emit : time:int -> Event.t -> unit }

let emit t ~time event = t.emit ~time event

let null = { emit = (fun ~time:_ _ -> ()) }

type recorder = { enc : Codec.encoder }

let recorder meta = { enc = Codec.encoder meta }

let sink r = { emit = (fun ~time event -> Codec.add r.enc ~time event) }

let recorded_count r = Codec.count r.enc
let contents r = Codec.contents r.enc

let save r path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (contents r))

let tee a b = { emit = (fun ~time event -> a.emit ~time event; b.emit ~time event) }
