(** Event sinks: the single interface both the recorder and the replay
    verifier present to the cluster's hook points. *)

type t = { emit : time:int -> Event.t -> unit }

val emit : t -> time:int -> Event.t -> unit
val null : t

val tee : t -> t -> t
(** Forward every event to both sinks, first argument first. *)

type recorder

val recorder : Codec.meta -> recorder
(** In-memory recorder: events append to a growing binary log. *)

val sink : recorder -> t
val recorded_count : recorder -> int
val contents : recorder -> string
(** The complete binary log (header + metadata + events so far). *)

val save : recorder -> string -> unit
(** Write {!contents} to a file. *)
