(* The backend-independent processor handle the applications program
   against.

   Every coherence backend (the LRC DSM cluster, the snooping-bus cache
   machines) presents one of these per simulated processor: a record of
   closures over the backend's own per-processor state. Record fields
   carry the optional arguments directly, so call sites keep the exact
   shape they had when this surface was a concrete module — see
   {!Lrc.Dsm} for the friendlier wrappers most programs use. *)

type t = {
  id : int;
  nprocs : int;
  geometry : Mem.Geometry.t;
  malloc : ?name:string -> ?align:int -> int -> int;
      (* bump allocation over the shared segment; SPMD programs calling at
         the same program points get identical addresses on every
         processor *)
  read_word : ?site:string -> int -> int64;
  write_word : ?site:string -> int -> int64 -> unit;
  read_word_int : ?site:string -> int -> int;
  write_word_int : ?site:string -> int -> int -> unit;
  read_word_float : ?site:string -> int -> float;
  write_word_float : ?site:string -> int -> float -> unit;
  lock : int -> unit;
  unlock : int -> unit;
  barrier : unit -> unit;
  compute : float -> unit;  (* accrue [ops] instructions of private work *)
  idle : float -> unit;  (* advance simulated time immediately *)
  touch_private : int -> unit;
      (* private accesses that survived static elimination: pay the
         analysis-routine cost, never set a bitmap bit *)
}
