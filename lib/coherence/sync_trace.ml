(* Synchronization-order recording and replay (the ROLT-style mechanism of
   sections 6.1 and 7).

   A first run records, per lock, the order in which grants were issued.
   A replay run delays each acquire until it is that processor's turn, so
   the second execution sees exactly the same synchronization order even
   though instrumentation has perturbed the timing. This is what makes the
   two-run program-counter identification scheme sound for programs whose
   synchronization order is nondeterministic (both racy applications in the
   paper are such programs). *)

type t = {
  grants : (int, int array) Hashtbl.t;  (* lock -> grantee pids in order *)
  cursor : (int, int) Hashtbl.t;  (* lock -> next position (replay) *)
}

type recorder = { mutable order : (int * int) list (* (lock, grantee), reversed *) }

let new_recorder () = { order = [] }

let record recorder ~lock ~grantee = recorder.order <- (lock, grantee) :: recorder.order

let of_recorder recorder =
  let grants = Hashtbl.create 16 in
  List.iter
    (fun (lock, grantee) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt grants lock) in
      Hashtbl.replace grants lock (grantee :: prev))
    recorder.order;
  (* lists were built grant-last-first twice (recorder reversed, then cons),
     so they are back in grant order *)
  let arrays = Hashtbl.create 16 in
  Hashtbl.iter (fun lock pids -> Hashtbl.add arrays lock (Array.of_list pids)) grants;
  { grants = arrays; cursor = Hashtbl.create 16 }

let next_grantee t ~lock =
  match Hashtbl.find_opt t.grants lock with
  | None -> None
  | Some order ->
      let pos = Option.value ~default:0 (Hashtbl.find_opt t.cursor lock) in
      if pos >= Array.length order then None else Some order.(pos)

let advance t ~lock =
  let pos = Option.value ~default:0 (Hashtbl.find_opt t.cursor lock) in
  Hashtbl.replace t.cursor lock (pos + 1)

let reset t = Hashtbl.reset t.cursor

let total_grants t = Hashtbl.fold (fun _ arr acc -> acc + Array.length arr) t.grants 0
