(* A running coherence backend, as the driver and the test harnesses see
   it: one simulated machine (engine, shared segment, [nprocs] processor
   handles) plus the observation surface the detection/trace/bench stack
   consumes — races, the oracle event log, the recorded lock-grant order,
   statistics, the final-memory digest.

   Backends are first-class records rather than a functor or a registry
   of side-effecting modules: [Backends.create] dispatches on the
   configured backend name and returns one of these, so unlinked-module
   initialization order can never decide which backends exist. *)

type observer = site:string -> addr:int -> Proto.Race.access_kind -> unit

type t = {
  name : string;  (* registry id: "lrc", "mesi", "dragon" *)
  nprocs : int;
  geometry : Mem.Geometry.t;
  config : Config.t;
  stats : Sim.Stats.t;
  symtab : Mem.Symtab.t;
  alloc : ?name:string -> ?align:int -> int -> int;
      (* pre-run shared allocation, visible to every processor *)
  run : (Node.t -> unit) -> unit;
      (* spawn one process per node running the body and drive the
         simulation to completion *)
  races : unit -> Proto.Race.t list;
      (* deduplicated race reports from every barrier epoch *)
  trace : unit -> (int * Racedetect.Oracle.event) list;
      (* the access/synchronization log, when [record_trace] was set *)
  timed_trace : unit -> (int * int * Racedetect.Oracle.event) list;
  sync_trace : unit -> Sync_trace.t option;
      (* the recorded lock-grant order, when [record_sync] was set *)
  sim_time : unit -> int;  (* final simulated time, ns *)
  memory_checksum : unit -> int;
      (* FNV-1a digest of the coherent shared-memory image *)
  set_access_observer : int -> observer -> unit;
      (* hook every instrumented shared access of one processor (watch
         mode, paper section 6.1) *)
}
