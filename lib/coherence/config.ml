(* Cluster configuration: which coherence protocol to run, whether the
   race-detection machinery is active, and debugging/replay switches. *)

type protocol =
  | Single_writer
      (* CVM's base protocol, used in the paper's prototype: one writable
         copy per page; ownership travels on write faults *)
  | Multi_writer
      (* twin/diff protocol (paper section 6.5): concurrent writers allowed;
         write summaries travel as word-level diffs *)
  | Home_based
      (* home-based LRC (HLRC): every page has a home that receives diff
         flushes at each release; faults fetch whole pages from the home,
         gated on a per-page version vector *)
  | Seq_consistent
      (* no caching: every access goes to the home node; the reference
         system for the section 6.4 accuracy discussion (Figure 5) *)

type t = {
  backend : string;
      (* which coherence backend executes the run: "lrc" (the DSM cluster
         with the [protocol] below) or a snooping-bus cache backend
         ("mesi", "dragon"). Resolved by [Backends.create]. *)
  protocol : protocol;
  detect : bool;  (* instrument accesses and run detection at barriers *)
  first_race_only : bool;  (* section 6.4: report only first-epoch races *)
  stores_from_diffs : bool;
      (* section 6.5: under the multi-writer protocol, take write bitmaps
         from diffs instead of store instrumentation (cheaper, but a write
         of an identical value becomes invisible) *)
  retain_sites : bool;
      (* section 6.1's single-run alternative: keep a program-counter
         (site) per accessed word per interval so races resolve to source
         sites without a second run — at a storage and runtime cost *)
  record_trace : bool;  (* log every access/sync event for the oracle *)
  replay : Sync_trace.t option;  (* enforce a recorded lock-grant order *)
  record_sync : bool;  (* record lock-grant order for later replay *)
  seed : int;
  fault : Sim.Fault.plan;
      (* wire fault plan (drops/dups/reorder/partitions); requires the
         transport when active *)
  transport : Sim.Transport.config option;
      (* Some: run the reliable transport (seq numbers, acks,
         retransmission) between the DSM and the wire *)
  watchdog_ns : int option;
      (* virtual-time stall budget for the engine's deadlock watchdog *)
  gc_epochs : int option;
      (* interval garbage collection (TreadMarks-style lineage GC): every k
         barrier epochs, validate all invalid pages (forcing the pending
         diffs to be fetched) and, one barrier later, drop the diffs no
         reachable write notice can request any more. Bounds diff storage
         on long multi-writer runs at the cost of extra validation traffic.
         None (the default) keeps every diff for the whole run. *)
  net_seed : int option;
      (* separate seed for the network RNGs (jitter + faults); defaults
         to [seed] so existing runs are unchanged *)
  tracer : Trace.Sink.t option;
      (* record/replay event sink: every sim- and protocol-level event is
         emitted into it (recorder, replay verifier, or a tee of both) *)
  elide_sites : string list option;
      (* instrumentation elision driven by the static MHP analysis:
         None (the default) keeps every runtime check; Some sites skips
         the per-access race check at exactly those sites (they must be
         statically proven race-free for reports to be unchanged);
         Some [] asks the driver to derive the set from the app's binary
         via Instrument.Mhp.race_free_sites *)
  cc_line_bytes : int;
      (* bus backends: cache line size in bytes (a power of two, a
         multiple of the word size) *)
  cc_sets : int;  (* bus backends: cache sets per processor *)
  cc_ways : int;  (* bus backends: associativity *)
  sim_jobs : int option;
      (* Some j: run the simulation itself on the sharded conservative-
         PDES engine, with up to j domains executing a window's per-node
         queues (j = 1 shards but runs inline). Deterministic by
         construction: results and traces are byte-identical for every j.
         Only the message-passing DSM backend with a fault-free,
         jitter-free wire parallelizes; other configurations ignore the
         setting and run the legacy single-heap loop. None (the default)
         is the legacy loop. *)
}

let default =
  {
    backend = "lrc";
    protocol = Single_writer;
    detect = true;
    first_race_only = false;
    stores_from_diffs = false;
    retain_sites = false;
    record_trace = false;
    replay = None;
    record_sync = false;
    seed = 42;
    fault = Sim.Fault.none;
    transport = None;
    watchdog_ns = None;
    gc_epochs = None;
    net_seed = None;
    tracer = None;
    elide_sites = None;
    cc_line_bytes = 64;
    cc_sets = 64;
    cc_ways = 2;
    sim_jobs = None;
  }

let protocol_name = function
  | Single_writer -> "single-writer"
  | Multi_writer -> "multi-writer"
  | Home_based -> "home-based"
  | Seq_consistent -> "sequential-consistency"

let protocol_of_name = function
  | "single-writer" -> Single_writer
  | "multi-writer" -> Multi_writer
  | "home-based" -> Home_based
  | "sequential-consistency" -> Seq_consistent
  | other -> invalid_arg (Printf.sprintf "Config.protocol_of_name: unknown protocol %S" other)
