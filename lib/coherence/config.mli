(** Cluster configuration: coherence protocol, detection switches, and
    replay/debug options. *)

type protocol =
  | Single_writer
      (** CVM's base protocol, used by the paper's prototype: one writable
          copy per page; ownership travels on write faults. *)
  | Multi_writer
      (** Twin/diff protocol (paper section 6.5): concurrent writers
          allowed; write summaries travel as word-level diffs. *)
  | Home_based
      (** Home-based LRC (HLRC): every page has a home that receives diff
          flushes at each release; faults fetch whole pages from the home,
          gated on a per-page version vector. *)
  | Seq_consistent
      (** No caching: every access goes to the home node. The reference
          system for the section 6.4 accuracy discussion (Figure 5). *)

type t = {
  backend : string;
      (** which coherence backend executes the run: ["lrc"] (the DSM
          cluster driven by [protocol]) or a snooping-bus cache backend
          (["mesi"], ["dragon"]). Resolved by [Backends.create]. *)
  protocol : protocol;
  detect : bool;  (** instrument accesses and run detection at barriers *)
  first_race_only : bool;  (** section 6.4: report only first-epoch races *)
  stores_from_diffs : bool;
      (** section 6.5: under the multi-writer protocol, take write bitmaps
          from diffs instead of store instrumentation — cheaper, but a
          same-value overwrite becomes invisible *)
  retain_sites : bool;
      (** Section 6.1's single-run alternative: retain a site ("program
          counter") per accessed word per interval, so races resolve to
          source sites without a second run — at a storage and runtime
          cost the paper deemed prohibitive. Measured by the
          [site-retention] ablation. *)
  record_trace : bool;  (** log every access/sync event for the oracle *)
  replay : Sync_trace.t option;  (** enforce a recorded lock-grant order *)
  record_sync : bool;  (** record lock-grant order for later replay *)
  seed : int;
  fault : Sim.Fault.plan;
      (** wire fault plan (drops, duplicates, reorder, delay spikes,
          partitions); an active plan requires [transport] *)
  transport : Sim.Transport.config option;
      (** [Some cfg]: run the reliable transport (sequence numbers,
          cumulative acks, capped exponential-backoff retransmission)
          between the DSM and the wire *)
  watchdog_ns : int option;
      (** virtual-time stall budget: if this many simulated nanoseconds
          pass without any process making progress, the run aborts with a
          structured {!Sim.Engine.Deadlock} diagnosis *)
  gc_epochs : int option;
      (** interval garbage collection (TreadMarks-style lineage GC): every
          [k] barrier epochs, validate all invalid pages and, one barrier
          later, drop the diffs no reachable write notice can request any
          more. [None] (the default) retains every diff for the run. *)
  net_seed : int option;
      (** separate seed for the network RNG streams (jitter and fault
          plan); [None] derives them from [seed] *)
  tracer : Trace.Sink.t option;
      (** record/replay event sink: every sim- and protocol-level event
          the run produces is emitted into it — a {!Trace.Sink.recorder}
          when recording, a {!Trace.Replay.verifier} when replaying *)
  elide_sites : string list option;
      (** instrumentation elision driven by the static MHP analysis:
          [None] (the default) keeps every runtime check; [Some sites]
          skips the per-access race check at exactly those sites (sound
          only for statically race-free sites); [Some []] asks the
          driver to derive the set from the app's binary via
          [Instrument.Mhp.race_free_sites] *)
  cc_line_bytes : int;
      (** bus backends: cache line size in bytes (a power of two, a
          multiple of the word size) *)
  cc_sets : int;  (** bus backends: cache sets per processor *)
  cc_ways : int;  (** bus backends: associativity *)
  sim_jobs : int option;
      (** [Some j]: run the simulation on the sharded conservative-PDES
          engine, with up to [j] domains executing each window's per-node
          queues ([j = 1]: sharded but inline — the reference schedule).
          Results, races, stats and traces are byte-identical for every
          [j]. Only the ["lrc"] backend over a fault-free, jitter-free,
          transport-less wire parallelizes; any other configuration
          ignores the setting and runs the legacy single-heap loop.
          [None] (the default) is the legacy loop. *)
}

val default : t
(** Single-writer protocol, detection on, everything else off. *)

val protocol_name : protocol -> string

val protocol_of_name : string -> protocol
(** Inverse of {!protocol_name} — the stable spelling used by
    serialized task descriptions. Raises [Invalid_argument]
    otherwise. *)
