(** Synchronization-order recording and replay (the ROLT-style mechanism
    of paper sections 6.1 and 7).

    A first run records the per-lock grant order; a replay run delays each
    grant until it matches the recording, so a second execution sees the
    same synchronization order even under perturbed timing — the property
    that makes the two-run program-counter identification sound. *)

type t

type recorder

val new_recorder : unit -> recorder

val record : recorder -> lock:int -> grantee:int -> unit
(** Called by the lock manager at each grant (forward). *)

val of_recorder : recorder -> t
(** Freeze a recording into a replayable trace. *)

val next_grantee : t -> lock:int -> int option
(** Who must be granted this lock next; [None] past the recorded history
    (the manager falls back to FIFO). *)

val advance : t -> lock:int -> unit

val reset : t -> unit
(** Rewind the replay cursors so the trace can be replayed again. *)

val total_grants : t -> int
