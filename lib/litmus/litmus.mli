(** Memory-model litmus tests over the DSM.

    Classic shapes (message passing, store buffering, read-read
    coherence) run under a chosen protocol; [explore] sweeps a grid of
    per-processor delays and collects the set of outcomes the
    deterministic simulation can actually exhibit. The assertions mirror
    paper section 6.4: SC-forbidden outcomes become observable under LRC
    when synchronization is missing, and vanish when it is present. *)

type registers = (string * int) list

type test = {
  name : string;
  nprocs : int;
  shared_words : int;
  body : base:int -> Lrc.Dsm.node -> delay:(float -> unit) -> registers;
}

val run : ?protocol:Lrc.Config.protocol -> delays:float array -> test -> registers
(** One deterministic execution with the given per-processor start
    delays; returns the union of every processor's observed registers. *)

val default_grid : float array

val explore : ?protocol:Lrc.Config.protocol -> ?grid:float array -> test -> registers list
(** All distinct outcomes over the delay grid (cartesian product). *)

val observable :
  ?protocol:Lrc.Config.protocol -> ?grid:float array -> test -> registers -> bool

(** The shapes. x and y live on separate pages. *)

val message_passing : test
(** SC forbids r1 = 1 and r2 = 0. *)

val message_passing_synchronized : test
(** Same shape under a lock; every protocol must forbid the weak outcome. *)

val message_passing_late_publish : test
(** Publication under a lock followed by an unsynchronized write: LRC
    exhibits r1 = 1 and r2 = 0, which SC forbids at this timing — the
    Figure 5 effect in miniature. *)

val store_buffering : test
(** SC forbids r1 = 0 and r2 = 0. *)

val coherence_rr : test
(** Per-location coherence forbids reading x backwards. *)

val all : test list

(** {1 Protocol-stress kernels}

    Small pointed programs aimed at the protocol core's hot paths: diff
    caching, interval GC, repeated write notices against invalid pages,
    lock handoff chains, and false/true sharing at barriers. Each runs
    with detection on and a recorded access trace, so tests can require
    the online detector and the offline oracle to agree exactly. Kernels
    self-check the values they read and raise on any wrong answer. *)

type kernel = {
  k_name : string;
  k_nprocs : int;
  k_pages : int;
  k_words : int;
  k_cfg : Lrc.Config.t -> Lrc.Config.t;
  k_body : base:int -> Lrc.Dsm.node -> unit;
  k_binary : unit -> Instrument.Binary.t;
      (** the kernel's synthetic binary: a CFG mirroring the body's
          shared accesses (same sites, locks and barriers), so the
          static MHP analysis applies to kernels exactly as to apps *)
}

type kernel_outcome = {
  detected : int list;  (** racy addresses the online detector reported *)
  oracle : int list;  (** racy addresses from the offline happens-before oracle *)
  checksum : int;
  watch_hits : Instrument.Watch.hit list;  (** [] unless [watch_addrs] given *)
}

val run_kernel :
  ?backend:string ->
  ?protocol:Lrc.Config.protocol ->
  ?watch_addrs:int list ->
  ?elide:bool ->
  kernel ->
  kernel_outcome
(** One deterministic execution under the given backend (default
    ["lrc"]) and protocol (default multi-writer, the protocol whose
    machinery the kernels stress; bus backends ignore it).
    [watch_addrs] wires an {!Instrument.Watch} observer onto every node;
    [elide] skips runtime checks at the sites the kernel's binary is
    statically proven race-free at. *)

val diff_cache_reuse : kernel
val gc_interval_rerequest : kernel
val write_notice_invalid_page : kernel
val lock_handoff_chain : kernel
val lock_chained_publish : kernel
val false_sharing_writers : kernel
val true_sharing_overlap : kernel
val multi_reader_race : kernel
val partially_locked : kernel

val kernels : kernel list
