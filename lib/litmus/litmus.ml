(* Memory-model litmus tests over the DSM.

   Classic two-processor shapes (message passing, store buffering,
   coherence) run on a simulated cluster under a chosen protocol. Because
   the simulation is deterministic, a single run shows a single
   interleaving; [explore] sweeps a grid of artificial compute delays and
   collects the set of outcomes actually observable.

   The interesting assertions mirror the paper's section 6.4 discussion:
   outcomes forbidden under sequential consistency are observable under
   LRC when synchronization is missing, and properly synchronized variants
   admit only SC outcomes under every protocol. *)

type registers = (string * int) list

type test = {
  name : string;
  nprocs : int;
  shared_words : int;
  (* [body node ~delay] runs one processor; [delay d] burns d abstract
     nanoseconds so the sweep can reshape the interleaving. Returns the
     processor's observed registers. *)
  body : base:int -> Lrc.Dsm.node -> delay:(float -> unit) -> registers;
}

let run ?(protocol = Lrc.Config.Single_writer) ~delays test =
  if Array.length delays <> test.nprocs then invalid_arg "Litmus.run: delay per processor";
  let cfg = { Lrc.Config.default with Lrc.Config.protocol; detect = false } in
  let cluster = Lrc.Cluster.create ~cfg ~nprocs:test.nprocs ~pages:4 () in
  let base = Lrc.Cluster.alloc cluster (test.shared_words * 8) ~name:"litmus" in
  let observed = Array.make test.nprocs [] in
  let body node =
    let pid = Lrc.Dsm.pid node in
    Lrc.Dsm.barrier node;
    Lrc.Dsm.idle node delays.(pid);
    observed.(pid) <- test.body ~base node ~delay:(Lrc.Dsm.idle node);
    Lrc.Dsm.barrier node
  in
  Lrc.Cluster.run cluster ~body;
  List.concat (Array.to_list observed)

let default_grid =
  (* delays in simulated ns; enough spread to reorder fetches around
     remote writes at the default network latency *)
  [| 0.0; 60_000.0; 250_000.0; 800_000.0; 2_000_000.0 |]

let explore ?protocol ?(grid = default_grid) test =
  (* sweep every combination of per-processor start delays *)
  let rec combos = function
    | 0 -> [ [] ]
    | n -> List.concat_map (fun rest -> List.map (fun d -> d :: rest) (Array.to_list grid))
             (combos (n - 1))
  in
  combos test.nprocs
  |> List.map (fun delays -> run ?protocol ~delays:(Array.of_list delays) test)
  |> List.sort_uniq compare

let observable ?protocol ?grid test outcome =
  List.mem (List.sort compare outcome)
    (List.map (List.sort compare) (explore ?protocol ?grid test))

(* ------------------------------------------------------------------ *)
(* The classic shapes. Word 0 is x, word 1 is y — on separate pages
   (stride 512 words) so page granularity does not couple them.         *)

let x_word = 0
let y_word = 512

let addr base word = base + (word * 8)

let message_passing =
  (* P0: x := 1; y := 1      P1: r1 := y; r2 := x
     SC forbids r1 = 1 /\ r2 = 0. *)
  {
    name = "MP";
    nprocs = 2;
    shared_words = 1024;
    body =
      (fun ~base node ~delay ->
        let open Lrc.Dsm in
        if pid node = 0 then begin
          write_int node (addr base x_word) 1;
          delay 100_000.0;
          write_int node (addr base y_word) 1;
          []
        end
        else begin
          (* warm both locations so later reads hit cached copies *)
          ignore (read_int node (addr base y_word));
          ignore (read_int node (addr base x_word));
          delay 1_000_000.0;
          let r1 = read_int node (addr base y_word) in
          let r2 = read_int node (addr base x_word) in
          [ ("r1", r1); ("r2", r2) ]
        end);
  }

let message_passing_synchronized =
  (* the same shape with a lock around both sides: every protocol must
     forbid the weak outcome *)
  {
    name = "MP+locks";
    nprocs = 2;
    shared_words = 1024;
    body =
      (fun ~base node ~delay ->
        let open Lrc.Dsm in
        if pid node = 0 then begin
          with_lock node 1 (fun () ->
              write_int node (addr base x_word) 1;
              delay 100_000.0;
              write_int node (addr base y_word) 1);
          []
        end
        else begin
          delay 500_000.0;
          with_lock node 1 (fun () ->
              let r1 = read_int node (addr base y_word) in
              let r2 = read_int node (addr base x_word) in
              [ ("r1", r1); ("r2", r2) ])
        end);
  }

let store_buffering =
  (* P0: x := 1; r1 := y     P1: y := 1; r2 := x
     SC forbids r1 = 0 /\ r2 = 0. *)
  {
    name = "SB";
    nprocs = 2;
    shared_words = 1024;
    body =
      (fun ~base node ~delay ->
        let open Lrc.Dsm in
        if pid node = 0 then begin
          (* warm y so the read does not fetch a fresh copy *)
          ignore (read_int node (addr base y_word));
          delay 200_000.0;
          write_int node (addr base x_word) 1;
          let r1 = read_int node (addr base y_word) in
          [ ("r1", r1) ]
        end
        else begin
          ignore (read_int node (addr base x_word));
          delay 200_000.0;
          write_int node (addr base y_word) 1;
          let r2 = read_int node (addr base x_word) in
          [ ("r2", r2) ]
        end);
  }

let coherence_rr =
  (* P0: x := 1; x := 2      P1: r1 := x; r2 := x
     Per-location coherence forbids r1 = 2 /\ r2 = 1 (reading backwards). *)
  {
    name = "CoRR";
    nprocs = 2;
    shared_words = 1024;
    body =
      (fun ~base node ~delay ->
        let open Lrc.Dsm in
        if pid node = 0 then begin
          write_int node (addr base x_word) 1;
          delay 400_000.0;
          write_int node (addr base x_word) 2;
          []
        end
        else begin
          let r1 = read_int node (addr base x_word) in
          delay 800_000.0;
          let r2 = read_int node (addr base x_word) in
          [ ("r1", r1); ("r2", r2) ]
        end);
  }

let message_passing_late_publish =
  (* P0 publishes y under a lock, then writes x with NO synchronization;
     P1 later takes the lock and reads y, then reads x.
     Under SC, once r1 = 1 and P1 runs after P0's x-write, r2 must be 1.
     Under LRC the x-write travels with no notice, so P1's cached copy
     stays stale: r1 = 1 /\ r2 = 0 — the Figure 5 effect in miniature. *)
  {
    name = "MP+late-publish";
    nprocs = 2;
    shared_words = 1024;
    body =
      (fun ~base node ~delay ->
        let open Lrc.Dsm in
        if pid node = 0 then begin
          with_lock node 1 (fun () -> write_int node (addr base y_word) 1);
          delay 100_000.0;
          write_int node (addr base x_word) 1;
          []
        end
        else begin
          delay 1_500_000.0;
          let r1 = with_lock node 1 (fun () -> read_int node (addr base y_word)) in
          let r2 = read_int node (addr base x_word) in
          [ ("r1", r1); ("r2", r2) ]
        end);
  }

let all =
  [
    message_passing;
    message_passing_synchronized;
    message_passing_late_publish;
    store_buffering;
    coherence_rr;
  ]

(* ------------------------------------------------------------------ *)
(* Protocol-stress kernels.

   Where the shapes above probe the memory model's *outcomes*, these
   kernels aim small, pointed programs at the protocol core's hot paths —
   diff caching, interval GC, write notices against already-invalid
   pages, lock handoff chains, false sharing at a barrier. Each runs with
   detection on and an access trace recorded, so a test can demand the
   online detector and the offline happens-before oracle agree exactly on
   the racy addresses. *)

type kernel = {
  k_name : string;
  k_nprocs : int;
  k_pages : int;
  k_words : int;
  k_cfg : Lrc.Config.t -> Lrc.Config.t;
      (* per-kernel config adjustments (e.g. interval GC cadence) applied
         on top of the protocol under test *)
  k_body : base:int -> Lrc.Dsm.node -> unit;
  k_binary : unit -> Instrument.Binary.t;
      (* the kernel's synthetic binary: a CFG mirroring the body's shared
         accesses (same sites, same lock and barrier structure), so the
         static MHP analysis applies to kernels exactly as to the apps *)
}

type kernel_outcome = {
  detected : int list;  (* racy addresses the online detector reported *)
  oracle : int list;  (* racy addresses from the offline oracle *)
  checksum : int;
  watch_hits : Instrument.Watch.hit list;  (* [] unless watch_addrs given *)
}

let run_kernel ?(backend = "lrc") ?(protocol = Lrc.Config.Multi_writer)
    ?(watch_addrs = []) ?(elide = false) kernel =
  let cfg =
    kernel.k_cfg
      {
        Lrc.Config.default with
        Lrc.Config.backend;
        protocol;
        detect = true;
        record_trace = true;
      }
  in
  let cfg =
    if elide then
      {
        cfg with
        Lrc.Config.elide_sites = Some (Instrument.Mhp.race_free_sites (kernel.k_binary ()));
      }
    else cfg
  in
  let machine = Backends.create ~cfg ~nprocs:kernel.k_nprocs ~pages:kernel.k_pages () in
  let watch =
    match watch_addrs with
    | [] -> None
    | addrs ->
        let watch = Instrument.Watch.create ~addrs in
        for id = 0 to kernel.k_nprocs - 1 do
          machine.Coherence.Backend.set_access_observer id
            (Instrument.Watch.observe watch)
        done;
        Some watch
  in
  let base =
    machine.Coherence.Backend.alloc (kernel.k_words * 8)
      ~name:("kernel:" ^ kernel.k_name)
  in
  machine.Coherence.Backend.run (fun node -> kernel.k_body ~base node);
  {
    detected =
      machine.Coherence.Backend.races ()
      |> List.map (fun (r : Proto.Race.t) -> r.Proto.Race.addr)
      |> List.sort_uniq compare;
    oracle =
      Racedetect.Oracle.racy_addrs ~nprocs:kernel.k_nprocs
        (machine.Coherence.Backend.trace ());
    checksum = machine.Coherence.Backend.memory_checksum ();
    watch_hits = (match watch with Some w -> Instrument.Watch.hits w | None -> []);
  }

(* words_per_page at the default geometry: 4096-byte pages, 8-byte words *)
let wpp = 512

(* Straight-line kernel binary: register 0 holds the kernel's one shared
   allocation, and the op list mirrors the body's shared accesses with
   the same sites, locks and barriers. Branch-free is sound here because
   pid-conditional code only *restricts* which processor runs an access —
   the SPMD pair analysis already assumes any processor may. *)
let kernel_binary name ops =
  let open Instrument.Ir in
  Instrument.Binary.make ~name
    ~procs:
      [
        proc ~name ~entry:"entry"
          [ block "entry" (malloc_shared ~dst:0 ("kernel:" ^ name) :: ops) ];
      ]
    []

let expect node what got want =
  if got <> want then
    failwith
      (Printf.sprintf "%s: proc %d read %d, expected %d" what (Lrc.Dsm.pid node) got want)

let diff_cache_reuse =
  (* One writer dirties a run of words; after the barrier, every other
     processor faults the same page and is served the same cached diffs.
     A second page carries a deliberate unsynchronized write/read pair so
     the kernel also exercises detection, not just the serving path. *)
  {
    k_name = "diff-cache-reuse";
    k_nprocs = 4;
    k_pages = 4;
    k_words = 2 * wpp;
    k_cfg = Fun.id;
    k_body =
      (fun ~base node ->
        let open Lrc.Dsm in
        barrier node;
        if pid node = 0 then
          for w = 0 to 15 do
            write_int_at node ~site:"dcr:fill" base w (100 + w)
          done;
        barrier node;
        if pid node > 0 then
          for w = 0 to 15 do
            expect node "diff-cache-reuse" (read_int_at node ~site:"dcr:verify" base w) (100 + w)
          done;
        (* the racy pair lives on the second page *)
        if pid node = 1 then write_int_at node ~site:"dcr:racy_store" base wpp 7;
        if pid node = 2 then ignore (read_int_at node ~site:"dcr:racy_load" base wpp);
        barrier node);
    k_binary =
      (fun () ->
        let open Instrument.Ir in
        kernel_binary "diff-cache-reuse"
          [
            barrier;
            store ~count:16 ~site:"dcr:fill" (Reg 0);
            barrier;
            load ~count:16 ~site:"dcr:verify" (Reg 0);
            store ~offset:(wpp * 8) ~site:"dcr:racy_store" (Reg 0);
            load ~offset:(wpp * 8) ~site:"dcr:racy_load" (Reg 0);
            barrier;
          ]);
  }

let gc_interval_rerequest =
  (* Interval GC every 2 epochs: a page dirtied in epoch 1 goes invalid
     everywhere, several empty epochs let the GC validate the stale
     copies and drop the now-unreachable diffs, and only then does a late
     reader touch the page. The values must survive the collection, and
     the detector must still agree with the oracle across the GC'd
     epochs. *)
  {
    k_name = "gc-interval-rerequest";
    k_nprocs = 4;
    k_pages = 4;
    k_words = 2 * wpp;
    k_cfg = (fun cfg -> { cfg with Lrc.Config.gc_epochs = Some 2 });
    k_body =
      (fun ~base node ->
        let open Lrc.Dsm in
        barrier node;
        if pid node = 0 then
          for w = 0 to 7 do
            write_int_at node ~site:"gcr:fill" base w (w * w)
          done;
        barrier node;
        (* empty epochs: the GC fires, validates invalid pages, then one
           barrier later reclaims the diffs *)
        barrier node;
        barrier node;
        barrier node;
        if pid node = 3 then
          for w = 0 to 7 do
            expect node "gc-interval-rerequest" (read_int_at node ~site:"gcr:verify" base w) (w * w)
          done;
        (* a racy pair after the collection: detection state must have
           survived the pruning *)
        if pid node = 0 then write_int_at node ~site:"gcr:racy_store" base wpp 1;
        if pid node = 1 then ignore (read_int_at node ~site:"gcr:racy_load" base wpp);
        barrier node);
    k_binary =
      (fun () ->
        let open Instrument.Ir in
        kernel_binary "gc-interval-rerequest"
          [
            barrier;
            store ~count:8 ~site:"gcr:fill" (Reg 0);
            barrier;
            barrier;
            barrier;
            barrier;
            load ~count:8 ~site:"gcr:verify" (Reg 0);
            store ~offset:(wpp * 8) ~site:"gcr:racy_store" (Reg 0);
            load ~offset:(wpp * 8) ~site:"gcr:racy_load" (Reg 0);
            barrier;
          ]);
  }

let write_notice_invalid_page =
  (* A second write notice arrives for a page the receiver already holds
     invalid: the notice must pile onto the existing invalidation, and
     the eventual fetch must see both epochs' writes. *)
  {
    k_name = "write-notice-invalid";
    k_nprocs = 3;
    k_pages = 2;
    k_words = wpp;
    k_cfg = Fun.id;
    k_body =
      (fun ~base node ->
        let open Lrc.Dsm in
        (* everyone caches the page first *)
        ignore (read_int_at node ~site:"wni:warm" base (pid node));
        barrier node;
        if pid node = 0 then write_int_at node ~site:"wni:store" base 0 1;
        barrier node;
        (* p1 and p2 hold the page invalid; p0 writes it again *)
        if pid node = 0 then begin
          write_int_at node ~site:"wni:store2" base 0 2;
          write_int_at node ~site:"wni:store2" base 1 3
        end;
        barrier node;
        if pid node > 0 then begin
          expect node "write-notice-invalid" (read_int_at node ~site:"wni:verify" base 0) 2;
          expect node "write-notice-invalid" (read_int_at node ~site:"wni:verify" base 1) 3
        end;
        barrier node);
    k_binary =
      (fun () ->
        let open Instrument.Ir in
        kernel_binary "write-notice-invalid"
          [
            load ~count:3 ~site:"wni:warm" (Reg 0);
            barrier;
            store ~site:"wni:store" (Reg 0);
            barrier;
            store ~count:2 ~site:"wni:store2" (Reg 0);
            barrier;
            load ~count:2 ~site:"wni:verify" (Reg 0);
            barrier;
          ]);
  }

let lock_handoff_chain =
  (* Lock ownership migrates around the ring twice with no intervening
     barrier; the updates must accumulate and the handoff edges must
     order every access (no false positives). *)
  {
    k_name = "lock-handoff-chain";
    k_nprocs = 4;
    k_pages = 2;
    k_words = wpp;
    k_cfg = Fun.id;
    k_body =
      (fun ~base node ->
        let open Lrc.Dsm in
        barrier node;
        for _round = 1 to 2 do
          with_lock node 5 (fun () ->
              let v = read_int_at node ~site:"lhc:read" base 0 in
              compute node 5_000.0;
              write_int_at node ~site:"lhc:write" base 0 (v + 1))
        done;
        barrier node;
        if pid node = 0 then
          expect node "lock-handoff-chain" (read_int_at node ~site:"lhc:check" base 0) 8;
        barrier node);
    k_binary =
      (fun () ->
        let open Instrument.Ir in
        Instrument.Binary.make ~name:"lock-handoff-chain"
          ~procs:
            [
              proc ~name:"lock-handoff-chain" ~entry:"entry"
                [
                  block "entry" ~succs:[ "loop" ]
                    [ malloc_shared ~dst:0 "kernel:lock-handoff-chain"; barrier ];
                  block "loop" ~succs:[ "loop"; "after" ]
                    [
                      acquire 5;
                      load ~site:"lhc:read" (Reg 0);
                      store ~site:"lhc:write" (Reg 0);
                      release 5;
                    ];
                  block "after" [ barrier; load ~site:"lhc:check" (Reg 0); barrier ];
                ];
            ]
          []);
  }

let lock_chained_publish =
  (* Two locks chained: the value written under lock A is republished
     under lock B by a different processor; a third processor reads it
     under lock B only. The A->B chain through p1 must order p0's write
     before p2's read. *)
  {
    k_name = "lock-chained-publish";
    k_nprocs = 3;
    k_pages = 2;
    k_words = wpp;
    k_cfg = Fun.id;
    k_body =
      (fun ~base node ->
        let open Lrc.Dsm in
        barrier node;
        (match pid node with
        | 0 -> with_lock node 1 (fun () -> write_int_at node ~site:"lcp:pub" base 0 41)
        | 1 ->
            idle node 400_000.0;
            let v = with_lock node 1 (fun () -> read_int_at node ~site:"lcp:relay_read" base 0) in
            with_lock node 2 (fun () -> write_int_at node ~site:"lcp:relay_write" base 1 (v + 1))
        | _ ->
            idle node 900_000.0;
            let v = with_lock node 2 (fun () -> read_int_at node ~site:"lcp:sub" base 1) in
            if v <> 0 then expect node "lock-chained-publish" v 42);
        barrier node);
    k_binary =
      (fun () ->
        let open Instrument.Ir in
        kernel_binary "lock-chained-publish"
          [
            barrier;
            acquire 1;
            store ~site:"lcp:pub" (Reg 0);
            release 1;
            acquire 1;
            load ~site:"lcp:relay_read" (Reg 0);
            release 1;
            acquire 2;
            store ~offset:8 ~site:"lcp:relay_write" (Reg 0);
            release 2;
            acquire 2;
            load ~offset:8 ~site:"lcp:sub" (Reg 0);
            release 2;
            barrier;
          ]);
  }

let false_sharing_writers =
  (* Every processor writes its own word of one shared page between two
     barriers — the multi-writer protocol's bread and butter. Word-level
     bitmaps must classify all of it as false sharing: zero races. *)
  {
    k_name = "false-sharing-writers";
    k_nprocs = 4;
    k_pages = 2;
    k_words = wpp;
    k_cfg = Fun.id;
    k_body =
      (fun ~base node ->
        let open Lrc.Dsm in
        barrier node;
        write_int_at node ~site:"fsw:mine" base (pid node) (10 * (pid node + 1));
        barrier node;
        let neighbour = (pid node + 1) mod nprocs node in
        expect node "false-sharing-writers"
          (read_int_at node ~site:"fsw:neighbour" base neighbour)
          (10 * (neighbour + 1));
        barrier node);
    k_binary =
      (fun () ->
        let open Instrument.Ir in
        kernel_binary "false-sharing-writers"
          [
            barrier;
            store ~count:4 ~site:"fsw:mine" (Reg 0);
            barrier;
            load ~count:4 ~site:"fsw:neighbour" (Reg 0);
            barrier;
          ]);
  }

let true_sharing_overlap =
  (* Same shape as [false_sharing_writers], except two of the writers
     collide on one word: exactly that word must be reported. *)
  {
    k_name = "true-sharing-overlap";
    k_nprocs = 4;
    k_pages = 2;
    k_words = wpp;
    k_cfg = Fun.id;
    k_body =
      (fun ~base node ->
        let open Lrc.Dsm in
        barrier node;
        let word = if pid node < 2 then 0 else pid node in
        write_int_at node ~site:"tso:store" base word (pid node + 1);
        barrier node);
    k_binary =
      (fun () ->
        let open Instrument.Ir in
        kernel_binary "true-sharing-overlap"
          [ barrier; store ~count:4 ~site:"tso:store" (Reg 0); barrier ]);
  }

let multi_reader_race =
  (* One unsynchronized writer, three concurrent readers: read notices
     from every reader must reach the master and each reader forms a
     racy pair with the writer on the same address. *)
  {
    k_name = "multi-reader-race";
    k_nprocs = 4;
    k_pages = 2;
    k_words = wpp;
    k_cfg = Fun.id;
    k_body =
      (fun ~base node ->
        let open Lrc.Dsm in
        barrier node;
        if pid node = 0 then write_int_at node ~site:"mrr:store" base 0 9
        else ignore (read_int_at node ~site:"mrr:load" base 0);
        barrier node);
    k_binary =
      (fun () ->
        let open Instrument.Ir in
        kernel_binary "multi-reader-race"
          [
            barrier;
            store ~site:"mrr:store" (Reg 0);
            load ~site:"mrr:load" (Reg 0);
            barrier;
          ]);
  }

let partially_locked =
  (* The lock protects two of the three participants; the third touches
     the same word unsynchronized. The ordered pair must be suppressed
     and the unordered pairs reported — on exactly one address. *)
  {
    k_name = "partially-locked";
    k_nprocs = 3;
    k_pages = 2;
    k_words = wpp;
    k_cfg = Fun.id;
    k_body =
      (fun ~base node ->
        let open Lrc.Dsm in
        barrier node;
        if pid node < 2 then
          with_lock node 3 (fun () ->
              let v = read_int_at node ~site:"pl:locked_read" base 0 in
              write_int_at node ~site:"pl:locked_write" base 0 (v + 1))
        else write_int_at node ~site:"pl:unlocked_store" base 0 100;
        barrier node);
    k_binary =
      (fun () ->
        let open Instrument.Ir in
        kernel_binary "partially-locked"
          [
            barrier;
            acquire 3;
            load ~site:"pl:locked_read" (Reg 0);
            store ~site:"pl:locked_write" (Reg 0);
            release 3;
            store ~site:"pl:unlocked_store" (Reg 0);
            barrier;
          ]);
  }

let kernels =
  [
    diff_cache_reuse;
    gc_interval_rerequest;
    write_notice_invalid_page;
    lock_handoff_chain;
    lock_chained_publish;
    false_sharing_writers;
    true_sharing_overlap;
    multi_reader_race;
    partially_locked;
  ]
