(** Seeded per-link fault injection for the simulated wire.

    A {!plan} describes what the network may do to a frame: drop it,
    duplicate it, hold it back into a reorder, add a latency spike, or
    black-hole it during a scheduled partition window. Decisions are drawn
    from one independent {!Rng} stream per (src, dst) link, so a given
    (plan, seed) pair produces an identical fault schedule no matter what
    any other link — or the jitter model — draws. *)

type partition = {
  p_a : int;  (** one endpoint of the partitioned link *)
  p_b : int;  (** the other endpoint; both directions are cut *)
  p_from_ns : int;  (** partition start, simulated time *)
  p_until_ns : int;  (** partition end (exclusive) *)
}

type plan = {
  drop : float;  (** probability a wire frame is lost *)
  duplicate : float;  (** probability a second copy is injected *)
  reorder : float;  (** probability a frame is held back *)
  reorder_window_ns : int;  (** max hold-back for a reordered frame *)
  spike : float;  (** probability of a latency spike *)
  spike_ns : int;  (** spike magnitude *)
  partitions : partition list;  (** scheduled link outages *)
}

val none : plan
(** No faults; also the source of default window values for
    [{ none with drop = ... }] updates. *)

val active : plan -> bool
(** Does the plan ever perturb a frame? *)

val validate : plan -> plan
(** Returns the plan; raises [Invalid_argument] on probabilities outside
    [0,1], negative windows, or inverted partition intervals. *)

type t

val create : nodes:int -> rng:Rng.t -> plan -> t
(** Split one fault stream per link off [rng]. Validates the plan. *)

val judge : t -> src:int -> dst:int -> now:int -> int list
(** The fate of one wire frame on link (src, dst) at time [now]: a list
    of extra delivery delays in nanoseconds, one per surviving copy.
    [[]] means the frame was lost (dropped or partitioned); two entries
    mean fault injection duplicated it. *)

type verdict = {
  v_delays : int list;  (** what {!judge} returns *)
  v_dropped : bool;  (** one copy was lost to the drop probability *)
  v_partitioned : bool;  (** black-holed by a partition window *)
}

val judge_verdict : t -> src:int -> dst:int -> now:int -> verdict
(** Like {!judge}, but annotated with what happened, so an observer (the
    trace recorder) can tell a random drop from a partition black-hole.
    Draws exactly the same RNG values as {!judge}. *)

val partitioned : t -> src:int -> dst:int -> now:int -> bool
(** Is the link inside one of its scheduled partition windows at [now]? *)

val windows : t -> partition list
(** The plan's scheduled partition windows (for partition open/close
    observation). *)

val describe : plan -> string
(** Human-readable one-line summary ("drop 20%, dup 5%, ..."). *)
