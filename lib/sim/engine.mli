(** Deterministic discrete-event simulation engine.

    Simulated processors are coroutines built on OCaml 5 effect handlers.
    A process interacts with virtual time by [advance]-ing its clock and
    [block]-ing until woken.

    By default a single event loop drains one deterministic priority
    queue, so a given program always produces the same interleaving.
    [set_sharded] switches the engine to conservative parallel DES:
    per-shard event queues executed window-by-window, with cross-shard
    events committed at window barriers in a canonical order — the
    interleaving is then *identical for any number of executing domains*
    (see docs/PARALLEL.md for the argument). *)

type t

type pid = int

type diagnosis = {
  diag_time : int;  (** simulated time of the diagnosis *)
  diag_live : int;  (** processes not yet finished *)
  diag_blocked : (pid * string) list;  (** blocked processes and their labels *)
  diag_stalled : bool;
      (** [true]: the stall watchdog budget was exceeded while processes
          were live; [false]: the event queue drained with processes
          still blocked *)
  diag_notes : string list;  (** lines from registered subsystem reporters *)
}

exception Deadlock of diagnosis
(** Raised by [run] when the event queue drains while processes are still
    blocked, or when the stall watchdog fires. The diagnosis lists every
    blocked process with its label plus the registered subsystem reports
    (per-link unacked transport frames, per-lock queue depths). This is
    how lost wakeups, lock cycles, and exhausted retransmission retries
    in simulated programs surface. *)

val pp_diagnosis : Format.formatter -> diagnosis -> unit
val diagnosis_to_string : diagnosis -> string

val create : unit -> t

val now : t -> int
(** Current simulated time in nanoseconds. In sharded mode this is the
    executing shard's local clock during window execution, and the
    recorded emission time during a deferred-observer flush. *)

val set_sharded : t -> shards:int -> shard_of_pid:(pid -> int) -> lookahead:int -> unit
(** Switch the engine to sharded (conservative parallel DES) execution
    with [shards] per-shard queues. [shard_of_pid] assigns each spawned
    process to its owning shard. [lookahead] (clamped to [>= 1]) is the
    minimum delay, in simulated ns, of any cross-shard event relative to
    the scheduling shard's clock — for a message-passing system, the
    network latency floor. Scheduling a cross-shard event that violates
    the bound raises [Invalid_argument] at the window barrier. Must be
    called before any [spawn] or [schedule]. *)

val sharded : t -> bool

val set_batch_runner : t -> ((int * (unit -> unit)) list -> unit) option -> unit
(** Install the executor for a window's per-shard drain thunks, given as
    [(shard index, thunk)] pairs in shard order (e.g. [Parallel.Gang.run]
    on a gang of domains — the index lets the runner keep each shard on
    the same domain every window, which is what makes parallel execution
    pay). The runner must run every thunk to completion before returning;
    thunks never raise (shard errors are captured and re-raised
    deterministically at the barrier). With no runner — or when a window
    has a single active shard — thunks run inline in shard order. Only
    consulted in sharded mode. *)

val spawn : t -> (pid -> unit) -> pid
(** Register a process; its body starts running when [run] is called.
    Pids are assigned densely from 0 in spawn order; the process table is
    a growable array indexed by pid, so [spawn] and pid lookup are O(1). *)

val schedule : t -> at:int -> (unit -> unit) -> unit
(** Run a thunk at an absolute simulated time (e.g. message delivery).
    In sharded mode the thunk lands on the calling shard (shard 0 when
    called from outside window execution). *)

val schedule_after : t -> delay:int -> (unit -> unit) -> unit

val schedule_node : t -> node:int -> at:int -> (unit -> unit) -> unit
(** Like [schedule], but the thunk belongs to (and runs on) shard [node]
    in sharded mode. From a different shard the event is buffered and
    committed at the window barrier, so [at] must respect the lookahead
    bound. In legacy mode this is exactly [schedule]. *)

val defer : t -> (unit -> unit) -> unit
(** Run an observer callback that touches cross-shard shared state (trace
    sinks, probe consumers). In legacy mode, or outside window execution,
    it runs immediately. During sharded window execution it is queued and
    flushed at the window barrier in [(time, shard, emission)] order —
    deterministic regardless of domain count — with [now] restored to the
    emission time. Deferred thunks must be pure observers: they must not
    schedule, wake, or otherwise mutate simulation state. *)

val advance : int -> unit
(** From within a process: consume simulated nanoseconds. *)

val advance_f : float -> unit

val block : label:string -> unit
(** From within a process: suspend until [wake]. The label appears in
    [Deadlock] diagnoses. A wakeup that arrives before the block is not
    lost: the next [block] returns immediately. *)

val wake : t -> pid -> unit
(** Make a blocked process runnable at the current simulated time. In
    sharded mode a process may only be woken from its own shard (waking
    across shards would race with the target's window execution); a
    cross-shard wake raises [Invalid_argument]. *)

val set_probe : t -> Probe.t option -> unit
(** Install (or clear) the scheduling probe: it observes process blocks,
    wakes and finishes at the simulated moment they happen. The probe
    must not mutate simulation state; with no probe installed the hook
    costs one branch. In sharded mode probe calls are routed through
    [defer]. *)

val add_diagnostic : t -> (unit -> string list) -> unit
(** Register a subsystem reporter whose lines are included in every
    [Deadlock] diagnosis (e.g. the transport's per-link unacked queues,
    the lock managers' queue depths). *)

val set_stall_budget : t -> int option -> unit
(** Arm (or disarm, with [None]) the no-progress watchdog: if more than
    this many virtual nanoseconds pass without any process starting,
    resuming or finishing — only bare thunks such as retransmission
    timers firing — [run] raises [Deadlock] with [diag_stalled = true].
    Raises [Invalid_argument] on a non-positive budget. In sharded mode
    the check runs at window starts. *)

val run : t -> unit
(** Drain the event queue(s). Raises [Deadlock] if processes remain
    blocked or the stall watchdog fires, and re-raises any exception
    escaping a process body (in sharded mode: the lowest-indexed failing
    shard's exception, regardless of domain count). *)
