(** Deterministic discrete-event simulation engine.

    Simulated processors are coroutines built on OCaml 5 effect handlers.
    A process interacts with virtual time by [advance]-ing its clock and
    [block]-ing until woken. A single event loop drains a deterministic
    priority queue, so a given program always produces the same
    interleaving. *)

type t

type pid = int

type diagnosis = {
  diag_time : int;  (** simulated time of the diagnosis *)
  diag_live : int;  (** processes not yet finished *)
  diag_blocked : (pid * string) list;  (** blocked processes and their labels *)
  diag_stalled : bool;
      (** [true]: the stall watchdog budget was exceeded while processes
          were live; [false]: the event queue drained with processes
          still blocked *)
  diag_notes : string list;  (** lines from registered subsystem reporters *)
}

exception Deadlock of diagnosis
(** Raised by [run] when the event queue drains while processes are still
    blocked, or when the stall watchdog fires. The diagnosis lists every
    blocked process with its label plus the registered subsystem reports
    (per-link unacked transport frames, per-lock queue depths). This is
    how lost wakeups, lock cycles, and exhausted retransmission retries
    in simulated programs surface. *)

val pp_diagnosis : Format.formatter -> diagnosis -> unit
val diagnosis_to_string : diagnosis -> string

val create : unit -> t

val now : t -> int
(** Current simulated time in nanoseconds. *)

val spawn : t -> (pid -> unit) -> pid
(** Register a process; its body starts running when [run] is called.
    Pids are assigned densely from 0 in spawn order; the process table is
    a growable array indexed by pid, so [spawn] and pid lookup are O(1). *)

val schedule : t -> at:int -> (unit -> unit) -> unit
(** Run a thunk at an absolute simulated time (e.g. message delivery). *)

val schedule_after : t -> delay:int -> (unit -> unit) -> unit

val advance : int -> unit
(** From within a process: consume simulated nanoseconds. *)

val advance_f : float -> unit

val block : label:string -> unit
(** From within a process: suspend until [wake]. The label appears in
    [Deadlock] diagnoses. A wakeup that arrives before the block is not
    lost: the next [block] returns immediately. *)

val wake : t -> pid -> unit
(** Make a blocked process runnable at the current simulated time. *)

val set_probe : t -> Probe.t option -> unit
(** Install (or clear) the scheduling probe: it observes process blocks,
    wakes and finishes at the simulated moment they happen. The probe
    must not mutate simulation state; with no probe installed the hook
    costs one branch. *)

val add_diagnostic : t -> (unit -> string list) -> unit
(** Register a subsystem reporter whose lines are included in every
    [Deadlock] diagnosis (e.g. the transport's per-link unacked queues,
    the lock managers' queue depths). *)

val set_stall_budget : t -> int option -> unit
(** Arm (or disarm, with [None]) the no-progress watchdog: if more than
    this many virtual nanoseconds pass without any process starting,
    resuming or finishing — only bare thunks such as retransmission
    timers firing — [run] raises [Deadlock] with [diag_stalled = true].
    Raises [Invalid_argument] on a non-positive budget. *)

val run : t -> unit
(** Drain the event queue. Raises [Deadlock] if processes remain blocked
    or the stall watchdog fires, and re-raises any exception escaping a
    process body. *)
