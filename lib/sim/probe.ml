(* Simulation-level observation hook. A probe is a callback the record/
   replay machinery (lib/trace) installs on the engine, the network and
   the transport; it fires synchronously at the simulated moment each
   decision is taken. Probes are pure observers: they must not mutate
   simulation state, so an instrumented run takes exactly the same
   decisions as an uninstrumented one and recording is zero-cost when no
   probe is installed. *)

type fault_outcome =
  | Passed of { copies : int; extra_delay_ns : int }
      (* delivered; [copies > 1] means the wire duplicated the frame and
         [extra_delay_ns > 0] means the first copy was held back (reorder)
         or spiked *)
  | Dropped  (* lost to the random drop probability *)
  | Blackholed  (* lost to a scheduled partition window *)

type event =
  (* network (payload level, above the transport) *)
  | Send of { src : int; dst : int; bytes : int; tag : string }
  | Deliver of { src : int; dst : int; bytes : int; tag : string }
  (* wire (below the transport): one event per frame the fault plan
     touched; untouched frames are not reported *)
  | Fault of { src : int; dst : int; outcome : fault_outcome }
  | Partition of { a : int; b : int; up : bool }
      (* a partition window opened ([up = false]: link down) or closed,
         observed at the first wire activity after the transition *)
  (* transport *)
  | Retransmit of { src : int; dst : int; seq : int }
  | Ack_tx of { src : int; dst : int; cum : int }
  | Link_failure of { src : int; dst : int }
  (* scheduler *)
  | Proc_block of { pid : int; label : string }
  | Proc_resume of { pid : int }
  | Proc_finish of { pid : int }

type t = event -> unit
