(* Cost model for the simulated platform.

   Defaults approximate the paper's testbed: 250 MHz DEC Alpha workstations
   (4 ns per simple instruction) on 155 Mbit/s ATM. The instrumentation
   constants (procedure call, access check) are calibrated so the headline
   numbers land in the paper's band: an average slowdown near 2x with
   instrumentation accounting for roughly two thirds of the overhead. *)

type t = {
  instr_ns : float;  (* cost of one abstract application instruction *)
  proc_call_ns : float;  (* overhead of the inserted analysis-routine call *)
  access_check_ns : float;  (* shared/private discrimination + bitmap set *)
  msg_latency_ns : int;  (* one-way wire + protocol stack latency *)
  loopback_ns : int;  (* self-delivery: protocol stack only, no wire *)
  byte_ns : float;  (* per-byte transmission time *)
  fault_ns : int;  (* local cost of taking a page fault (protocol upcall) *)
  page_copy_word_ns : float;  (* memcpy cost per word when servicing a page *)
  diff_word_ns : float;  (* per-word twin comparison when making a diff *)
  bitmap_word_ns : float;  (* per-word cost of a bitmap comparison *)
  vv_compare_ns : float;  (* constant-time version-vector comparison *)
  notice_setup_ns : float;  (* per read/write notice bookkeeping ("CVM mods") *)
  interval_setup_ns : float;  (* per interval-structure creation *)
  lock_manager_ns : int;  (* lock manager / barrier master per-request work *)
  jitter_ns : int;  (* max random extra delivery delay (failure injection) *)
  max_message_bytes : int;  (* wire MTU: larger payloads fragment (section 5.3) *)
  fragment_overhead_bytes : int;  (* per-fragment header *)
  page_size : int;  (* bytes; DECstation pages were large, we default 4096 *)
  word_size : int;  (* bytes per word *)
  (* snooping-bus cache backends (lib/cc): a bus transaction costs
     arbitration plus per-word transfer plus the supplier's latency
     (memory or a cache-to-cache forward); these are orders of magnitude
     below the DSM message costs above, which is exactly the CC-vs-DSM
     separation the bench pipeline measures *)
  cache_hit_ns : float;  (* L1 hit, charged on every cached access *)
  bus_arb_ns : float;  (* per-transaction arbitration + address phase *)
  bus_word_ns : float;  (* per-word data transfer on the bus *)
  bus_mem_ns : float;  (* memory access latency behind the bus *)
  bus_c2c_ns : float;  (* cache-to-cache supply latency *)
}

let default =
  {
    instr_ns = 4.0;
    proc_call_ns = 120.0;
    access_check_ns = 200.0;
    msg_latency_ns = 110_000;
    loopback_ns = 2_000;
    byte_ns = 55.0 (* ~145 Mbit/s effective on 155 Mbit ATM *);
    fault_ns = 150_000;
    page_copy_word_ns = 40.0;
    diff_word_ns = 12.0;
    bitmap_word_ns = 6.0;
    vv_compare_ns = 60.0;
    notice_setup_ns = 450.0;
    interval_setup_ns = 4_000.0;
    lock_manager_ns = 12_000;
    jitter_ns = 0;
    max_message_bytes = 65_536;
    fragment_overhead_bytes = 24;
    page_size = 4096;
    word_size = 8;
    cache_hit_ns = 2.0;
    bus_arb_ns = 24.0;
    bus_word_ns = 8.0;
    bus_mem_ns = 180.0;
    bus_c2c_ns = 60.0;
  }

let words_per_page t = t.page_size / t.word_size

let fragments t ~bytes = max 1 ((bytes + t.max_message_bytes - 1) / t.max_message_bytes)

let wire_bytes t ~bytes =
  (* payload plus one header per fragment beyond the first (the base
     header is part of every message's size already) *)
  bytes + ((fragments t ~bytes - 1) * t.fragment_overhead_bytes)

let message_ns t ~bytes =
  (* fragments pipeline on the wire: one latency, full wire time *)
  t.msg_latency_ns + int_of_float (t.byte_ns *. float_of_int (wire_bytes t ~bytes))
