(** Run-wide statistics, shared by every node of a simulated cluster.

    The counters feed the paper's Tables 1 and 3; the per-category
    overhead charges feed Figure 3. A charge both advances simulated time
    at the charging processor and is recorded here, so the breakdown sums
    to the overhead actually observed. *)

type overhead_category =
  | Cvm_mods  (** extra structures + read-notice bandwidth *)
  | Proc_call  (** instrumentation procedure-call overhead *)
  | Access_check  (** shared/private discrimination + bitmap set *)
  | Intervals  (** concurrent-interval comparison at the barrier master *)
  | Bitmaps  (** extra barrier round + bitmap comparisons *)

val category_name : overhead_category -> string
val all_categories : overhead_category list

type t = {
  mutable messages : int;
  mutable fragments : int;
  mutable bytes : int;
  mutable read_notice_bytes : int;
  mutable baseline_bytes : int;
  mutable retransmits : int;  (** data frames re-sent after an RTO *)
  mutable rto_timeouts : int;  (** retransmission timer firings *)
  mutable dup_suppressed : int;  (** duplicate frames dropped at the receiver *)
  mutable frames_dropped : int;  (** wire frames lost to fault injection *)
  mutable frames_duplicated : int;  (** extra copies created by fault injection *)
  mutable acks_sent : int;  (** cumulative-ack frames *)
  mutable link_failures : int;  (** links that exhausted the retry cap *)
  mutable read_faults : int;
  mutable write_faults : int;
  mutable diffs_created : int;
  mutable diff_words : int;
  mutable diffs_gced : int;  (** diffs dropped by interval garbage collection *)
  mutable pages_fetched : int;
  mutable intervals_created : int;
  mutable interval_comparisons : int;
  mutable concurrent_pairs : int;
  mutable overlapping_pairs : int;
  mutable bitmaps_requested : int;
  mutable bitmaps_total : int;
  mutable bitmap_round_bytes : int;
  mutable intervals_in_overlap : int;
  mutable bitmap_comparisons : int;
  mutable shared_reads : int;
  mutable shared_writes : int;
  mutable private_accesses : int;
  mutable lock_acquires : int;
  mutable barriers : int;
  mutable races_reported : int;
  mutable site_entries : int;
  mutable elided_checks : int;
      (** runtime checks skipped at statically race-free sites *)
  mutable bus_transactions : int;
      (** snooping-bus backends: every arbitration-winning transaction *)
  mutable bus_reads : int;  (** read-miss line fills (BusRd) *)
  mutable bus_read_x : int;  (** write-miss fills with invalidation (BusRdX) *)
  mutable bus_upgrades : int;  (** S->M ownership upgrades, no data (BusUpgr) *)
  mutable bus_updates : int;  (** Dragon word broadcasts (BusUpd) *)
  mutable bus_writebacks : int;  (** dirty-line flushes to memory *)
  mutable bus_syncs : int;  (** lock/barrier read-modify-writes on the bus *)
  mutable bus_words : int;  (** data words moved over the bus *)
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_evictions : int;  (** valid lines displaced by a fill *)
  mutable invalidations : int;  (** remote copies killed by BusRdX/BusUpgr *)
  mutable updates_applied : int;  (** remote copies refreshed by BusUpd *)
  charges : float array;
}

val create : unit -> t

val charge : t -> overhead_category -> float -> unit
(** Attribute simulated nanoseconds of overhead to a category. *)

val charged : t -> overhead_category -> float
val total_charged : t -> float

val add : into:t -> t -> unit
(** [add ~into t] accumulates every counter and charge of [t] into
    [into]. The sharded runner gives each node a private record and folds
    them into the run-wide one after the run; the totals equal what a
    single shared record would have accumulated. *)

val shared_accesses : t -> int
val instrumented_accesses : t -> int

val pp : Format.formatter -> t -> unit
