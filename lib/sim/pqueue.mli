(** Deterministic binary min-heap of timed events.

    Entries are ordered by the [(time, node, seq)] key: by [time] first,
    then by the [node] the event belongs to, then by per-queue insertion
    order. The key is a property of the event itself, not of heap state,
    so a merged view over several per-node queues and a single global
    queue that received the same events pop in the same order — this is
    what makes the sharded engine's interleaving independent of how many
    domains executed it. Legacy callers omit [node] (default [0]) and get
    the historical time-then-insertion order unchanged. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : ?node:int -> 'a t -> time:int -> 'a -> unit
(** [push ?node t ~time v] inserts [v] at simulated time [time]
    (nanoseconds), tagged with [node] (default [0]) for tie-breaking. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the earliest entry, or [None] when empty. The
    vacated slot is cleared, so popped values do not stay reachable
    through the heap's backing array. *)

val peek_time : 'a t -> int option
(** Time of the earliest entry without removing it. *)
