(** Simulation-level observation hook.

    A probe is a callback installed on the engine, the network and the
    transport by the record/replay machinery; it fires synchronously at
    the simulated moment each decision is taken. Probes must be pure
    observers — they must not mutate simulation state — so an
    instrumented run takes exactly the same decisions as an
    uninstrumented one. *)

type fault_outcome =
  | Passed of { copies : int; extra_delay_ns : int }
      (** delivered; [copies > 1] means the wire duplicated the frame,
          [extra_delay_ns > 0] means the first copy was held back *)
  | Dropped  (** lost to the random drop probability *)
  | Blackholed  (** lost to a scheduled partition window *)

type event =
  | Send of { src : int; dst : int; bytes : int; tag : string }
  | Deliver of { src : int; dst : int; bytes : int; tag : string }
  | Fault of { src : int; dst : int; outcome : fault_outcome }
      (** one event per wire frame the fault plan touched; untouched
          frames are not reported *)
  | Partition of { a : int; b : int; up : bool }
      (** a partition window opened ([up = false]) or closed, observed at
          the first wire activity after the transition *)
  | Retransmit of { src : int; dst : int; seq : int }
  | Ack_tx of { src : int; dst : int; cum : int }
  | Link_failure of { src : int; dst : int }
  | Proc_block of { pid : int; label : string }
  | Proc_resume of { pid : int }
  | Proc_finish of { pid : int }

type t = event -> unit
