(* Run-wide statistics. One [t] is shared by every node of a simulated
   cluster; the driver reads it after the run to build the paper's tables.

   Overhead charges are bucketed by the categories of the paper's Figure 3.
   A charge both advances simulated time (at the charging process) and is
   attributed here, so the breakdown always sums to the measured overhead. *)

type overhead_category =
  | Cvm_mods  (* extra structures + read-notice bandwidth *)
  | Proc_call  (* instrumentation procedure-call overhead *)
  | Access_check  (* shared/private discrimination + bitmap set *)
  | Intervals  (* concurrent-interval comparison at the barrier master *)
  | Bitmaps  (* extra barrier round + bitmap comparisons *)

let category_name = function
  | Cvm_mods -> "CVM Mods"
  | Proc_call -> "Proc Call"
  | Access_check -> "Access Check"
  | Intervals -> "Intervals"
  | Bitmaps -> "Bitmaps"

let all_categories = [ Cvm_mods; Proc_call; Access_check; Intervals; Bitmaps ]

type t = {
  mutable messages : int;
  mutable fragments : int;  (* wire fragments after MTU splitting *)
  mutable bytes : int;
  mutable read_notice_bytes : int;  (* bandwidth added by read notices *)
  mutable baseline_bytes : int;  (* bytes an unmodified CVM would have sent *)
  (* reliable-transport counters (lossy-network mode) *)
  mutable retransmits : int;  (* data frames re-sent after an RTO *)
  mutable rto_timeouts : int;  (* retransmission timer firings *)
  mutable dup_suppressed : int;  (* duplicate frames dropped at the receiver *)
  mutable frames_dropped : int;  (* wire frames lost to fault injection *)
  mutable frames_duplicated : int;  (* extra copies created by fault injection *)
  mutable acks_sent : int;  (* cumulative-ack frames *)
  mutable link_failures : int;  (* links that exhausted the retry cap *)
  mutable read_faults : int;
  mutable write_faults : int;
  mutable diffs_created : int;
  mutable diff_words : int;
  mutable diffs_gced : int;  (* diffs dropped by interval garbage collection *)
  mutable pages_fetched : int;
  mutable intervals_created : int;
  mutable interval_comparisons : int;
  mutable concurrent_pairs : int;
  mutable overlapping_pairs : int;
  mutable bitmaps_requested : int;
  mutable bitmaps_total : int;  (* one per (interval, accessed page) *)
  mutable bitmap_round_bytes : int;  (* bytes of the extra barrier round *)
  mutable intervals_in_overlap : int;  (* intervals on the check list *)
  mutable bitmap_comparisons : int;
  mutable shared_reads : int;
  mutable shared_writes : int;
  mutable private_accesses : int;
  mutable lock_acquires : int;
  mutable barriers : int;
  mutable races_reported : int;
  mutable site_entries : int;  (* retained (word, site) records (section 6.1) *)
  mutable elided_checks : int;  (* runtime checks skipped at statically race-free sites *)
  (* snooping-bus cache backends (lib/cc); all zero under the DSM cluster *)
  mutable bus_transactions : int;  (* every arbitration-winning transaction *)
  mutable bus_reads : int;  (* read-miss line fills (BusRd) *)
  mutable bus_read_x : int;  (* write-miss fills with invalidation (BusRdX) *)
  mutable bus_upgrades : int;  (* S->M ownership upgrades, no data (BusUpgr) *)
  mutable bus_updates : int;  (* Dragon word broadcasts (BusUpd) *)
  mutable bus_writebacks : int;  (* dirty-line flushes to memory *)
  mutable bus_syncs : int;  (* lock/barrier read-modify-writes on the bus *)
  mutable bus_words : int;  (* data words moved over the bus *)
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_evictions : int;  (* valid lines displaced by a fill *)
  mutable invalidations : int;  (* remote copies killed by BusRdX/BusUpgr *)
  mutable updates_applied : int;  (* remote copies refreshed by BusUpd *)
  charges : float array;  (* simulated ns per overhead category *)
}

let create () =
  {
    messages = 0;
    fragments = 0;
    bytes = 0;
    read_notice_bytes = 0;
    baseline_bytes = 0;
    retransmits = 0;
    rto_timeouts = 0;
    dup_suppressed = 0;
    frames_dropped = 0;
    frames_duplicated = 0;
    acks_sent = 0;
    link_failures = 0;
    read_faults = 0;
    write_faults = 0;
    diffs_created = 0;
    diff_words = 0;
    diffs_gced = 0;
    pages_fetched = 0;
    intervals_created = 0;
    interval_comparisons = 0;
    concurrent_pairs = 0;
    overlapping_pairs = 0;
    bitmaps_requested = 0;
    bitmaps_total = 0;
    bitmap_round_bytes = 0;
    intervals_in_overlap = 0;
    bitmap_comparisons = 0;
    shared_reads = 0;
    shared_writes = 0;
    private_accesses = 0;
    lock_acquires = 0;
    barriers = 0;
    races_reported = 0;
    site_entries = 0;
    elided_checks = 0;
    bus_transactions = 0;
    bus_reads = 0;
    bus_read_x = 0;
    bus_upgrades = 0;
    bus_updates = 0;
    bus_writebacks = 0;
    bus_syncs = 0;
    bus_words = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_evictions = 0;
    invalidations = 0;
    updates_applied = 0;
    charges = Array.make (List.length all_categories) 0.0;
  }

let category_index = function
  | Cvm_mods -> 0
  | Proc_call -> 1
  | Access_check -> 2
  | Intervals -> 3
  | Bitmaps -> 4

let charge t category ns = t.charges.(category_index category) <- t.charges.(category_index category) +. ns

let charged t category = t.charges.(category_index category)

let total_charged t = Array.fold_left ( +. ) 0.0 t.charges

(* Accumulate [t] into [into], field by field. Used by the sharded runner
   to fold per-node counters back into the run-wide record; summing after
   the run gives the same totals as sharing one record during it. *)
let add ~into t =
  into.messages <- into.messages + t.messages;
  into.fragments <- into.fragments + t.fragments;
  into.bytes <- into.bytes + t.bytes;
  into.read_notice_bytes <- into.read_notice_bytes + t.read_notice_bytes;
  into.baseline_bytes <- into.baseline_bytes + t.baseline_bytes;
  into.retransmits <- into.retransmits + t.retransmits;
  into.rto_timeouts <- into.rto_timeouts + t.rto_timeouts;
  into.dup_suppressed <- into.dup_suppressed + t.dup_suppressed;
  into.frames_dropped <- into.frames_dropped + t.frames_dropped;
  into.frames_duplicated <- into.frames_duplicated + t.frames_duplicated;
  into.acks_sent <- into.acks_sent + t.acks_sent;
  into.link_failures <- into.link_failures + t.link_failures;
  into.read_faults <- into.read_faults + t.read_faults;
  into.write_faults <- into.write_faults + t.write_faults;
  into.diffs_created <- into.diffs_created + t.diffs_created;
  into.diff_words <- into.diff_words + t.diff_words;
  into.diffs_gced <- into.diffs_gced + t.diffs_gced;
  into.pages_fetched <- into.pages_fetched + t.pages_fetched;
  into.intervals_created <- into.intervals_created + t.intervals_created;
  into.interval_comparisons <- into.interval_comparisons + t.interval_comparisons;
  into.concurrent_pairs <- into.concurrent_pairs + t.concurrent_pairs;
  into.overlapping_pairs <- into.overlapping_pairs + t.overlapping_pairs;
  into.bitmaps_requested <- into.bitmaps_requested + t.bitmaps_requested;
  into.bitmaps_total <- into.bitmaps_total + t.bitmaps_total;
  into.bitmap_round_bytes <- into.bitmap_round_bytes + t.bitmap_round_bytes;
  into.intervals_in_overlap <- into.intervals_in_overlap + t.intervals_in_overlap;
  into.bitmap_comparisons <- into.bitmap_comparisons + t.bitmap_comparisons;
  into.shared_reads <- into.shared_reads + t.shared_reads;
  into.shared_writes <- into.shared_writes + t.shared_writes;
  into.private_accesses <- into.private_accesses + t.private_accesses;
  into.lock_acquires <- into.lock_acquires + t.lock_acquires;
  into.barriers <- into.barriers + t.barriers;
  into.races_reported <- into.races_reported + t.races_reported;
  into.site_entries <- into.site_entries + t.site_entries;
  into.elided_checks <- into.elided_checks + t.elided_checks;
  into.bus_transactions <- into.bus_transactions + t.bus_transactions;
  into.bus_reads <- into.bus_reads + t.bus_reads;
  into.bus_read_x <- into.bus_read_x + t.bus_read_x;
  into.bus_upgrades <- into.bus_upgrades + t.bus_upgrades;
  into.bus_updates <- into.bus_updates + t.bus_updates;
  into.bus_writebacks <- into.bus_writebacks + t.bus_writebacks;
  into.bus_syncs <- into.bus_syncs + t.bus_syncs;
  into.bus_words <- into.bus_words + t.bus_words;
  into.cache_hits <- into.cache_hits + t.cache_hits;
  into.cache_misses <- into.cache_misses + t.cache_misses;
  into.cache_evictions <- into.cache_evictions + t.cache_evictions;
  into.invalidations <- into.invalidations + t.invalidations;
  into.updates_applied <- into.updates_applied + t.updates_applied;
  Array.iteri (fun i c -> into.charges.(i) <- into.charges.(i) +. c) t.charges

let shared_accesses t = t.shared_reads + t.shared_writes

let instrumented_accesses t = shared_accesses t + t.private_accesses

let transport_active t =
  t.retransmits > 0 || t.rto_timeouts > 0 || t.dup_suppressed > 0 || t.frames_dropped > 0
  || t.frames_duplicated > 0 || t.acks_sent > 0 || t.link_failures > 0

let pp ppf t =
  Format.fprintf ppf
    "@[<v>messages: %d in %d fragments (%d bytes, %d read-notice bytes)@ faults: %dr/%dw, pages fetched: %d@ \
     intervals: %d, comparisons: %d, concurrent pairs: %d, overlapping: %d@ bitmaps requested: \
     %d, compared: %d@ accesses: %d shared-r, %d shared-w, %d private@ sync: %d acquires, %d \
     barriers@ races: %d@]"
    t.messages t.fragments t.bytes t.read_notice_bytes t.read_faults t.write_faults t.pages_fetched
    t.intervals_created t.interval_comparisons t.concurrent_pairs t.overlapping_pairs
    t.bitmaps_requested t.bitmap_comparisons t.shared_reads t.shared_writes t.private_accesses
    t.lock_acquires t.barriers t.races_reported;
  if t.elided_checks > 0 then
    Format.fprintf ppf "@ elided checks: %d" t.elided_checks;
  if t.bus_transactions > 0 then
    Format.fprintf ppf
      "@ bus: %d transactions (%d rd, %d rdx, %d upgr, %d upd, %d wb, %d sync), %d words@ \
       cache: %d hits, %d misses, %d evictions, %d invalidations, %d updates applied"
      t.bus_transactions t.bus_reads t.bus_read_x t.bus_upgrades t.bus_updates
      t.bus_writebacks t.bus_syncs t.bus_words t.cache_hits t.cache_misses
      t.cache_evictions t.invalidations t.updates_applied;
  if transport_active t then
    Format.fprintf ppf
      "@ transport: %d retransmits (%d timeouts), %d dropped, %d duplicated, %d dup-suppressed, \
       %d acks, %d failed links"
      t.retransmits t.rto_timeouts t.frames_dropped t.frames_duplicated t.dup_suppressed
      t.acks_sent t.link_failures
