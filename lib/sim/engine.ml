(* Discrete-event simulation engine.

   Each simulated processor is a coroutine implemented with OCaml 5 effect
   handlers. A process runs real OCaml code and interacts with virtual time
   through two effects: [Advance n] consumes [n] simulated nanoseconds, and
   [Block] suspends the process until another party calls [wake].

   The scheduler is a single event loop over a deterministic priority queue,
   so a given program and seed always produce the same interleaving.

   Two failure detectors guard the loop. If the event queue drains while
   processes are still blocked (a lost wakeup or a lock cycle), or if a
   configurable span of virtual time passes in which only bare thunks run
   and no process makes progress (a retransmission livelock), [run] raises
   [Deadlock] carrying a structured diagnosis: every blocked process with
   its label, plus whatever lines the registered subsystem reporters (the
   transport's per-link unacked queues, the lock managers' queue depths)
   contribute. *)

type pid = int

type proc_state = Created | Running | Blocked | Finished

type proc = {
  pid : pid;
  mutable state : proc_state;
  mutable cont : (unit, unit) Effect.Deep.continuation option;
  mutable wake_pending : bool;
  mutable blocked_label : string;  (* what the process is waiting for *)
}

type action = Start of proc * (pid -> unit) | Resume of proc | Thunk of (unit -> unit)

type t = {
  mutable now : int;
  queue : action Pqueue.t;
  mutable procs : proc array;  (* indexed by pid; first [nprocs] slots live *)
  mutable nprocs : int;
  mutable live : int;
  mutable diagnostics : (unit -> string list) list;  (* subsystem reporters *)
  mutable stall_budget : int option;  (* max virtual ns without progress *)
  mutable last_progress : int;  (* last time a process ran or finished *)
  mutable probe : Probe.t option;  (* pure observer of scheduling decisions *)
}

type diagnosis = {
  diag_time : int;  (* simulated time of the diagnosis *)
  diag_live : int;  (* processes not yet finished *)
  diag_blocked : (pid * string) list;  (* blocked processes and their labels *)
  diag_stalled : bool;  (* true: watchdog budget exceeded; false: queue drained *)
  diag_notes : string list;  (* lines from registered subsystem reporters *)
}

exception Deadlock of diagnosis

let pp_diagnosis ppf d =
  Format.fprintf ppf "@[<v>%s at t=%d ns: %d process(es) live, %d blocked"
    (if d.diag_stalled then "stall watchdog fired" else "event queue drained")
    d.diag_time d.diag_live
    (List.length d.diag_blocked);
  List.iter
    (fun (pid, label) -> Format.fprintf ppf "@   p%d waiting on %s" pid label)
    d.diag_blocked;
  List.iter (fun note -> Format.fprintf ppf "@   %s" note) d.diag_notes;
  Format.fprintf ppf "@]"

let diagnosis_to_string d = Format.asprintf "%a" pp_diagnosis d

let create () =
  {
    now = 0;
    queue = Pqueue.create ();
    procs = [||];
    nprocs = 0;
    live = 0;
    diagnostics = [];
    stall_budget = None;
    last_progress = 0;
    probe = None;
  }

let now t = t.now

let set_probe t probe = t.probe <- probe

let emit_probe t event = match t.probe with Some f -> f event | None -> ()

let add_diagnostic t f = t.diagnostics <- t.diagnostics @ [ f ]

let set_stall_budget t budget =
  (match budget with
  | Some ns when ns <= 0 -> invalid_arg "Engine.set_stall_budget: budget must be positive"
  | _ -> ());
  t.stall_budget <- budget

let schedule t ~at f =
  if at < t.now then invalid_arg "Engine.schedule: cannot schedule in the past";
  Pqueue.push t.queue ~time:at (Thunk f)

let schedule_after t ~delay f = schedule t ~at:(t.now + delay) f

let spawn t body =
  let pid = t.nprocs in
  let proc = { pid; state = Created; cont = None; wake_pending = false; blocked_label = "" } in
  if pid >= Array.length t.procs then begin
    let grown = Array.make (max 8 (2 * Array.length t.procs)) proc in
    Array.blit t.procs 0 grown 0 t.nprocs;
    t.procs <- grown
  end;
  t.procs.(pid) <- proc;
  t.nprocs <- t.nprocs + 1;
  t.live <- t.live + 1;
  Pqueue.push t.queue ~time:t.now (Start (proc, body));
  pid

let find_proc t pid =
  if pid < 0 || pid >= t.nprocs then
    invalid_arg (Printf.sprintf "Engine: unknown pid %d" pid)
  else t.procs.(pid)

(* Effects performed by process bodies. *)

type _ Effect.t +=
  | Advance : int -> unit Effect.t
  | Block : string -> unit Effect.t

let advance ns =
  if ns < 0 then invalid_arg "Engine.advance: negative duration";
  if ns > 0 then Effect.perform (Advance ns)

let advance_f ns = advance (int_of_float ns)

let block ~label = Effect.perform (Block label)

let wake t pid =
  let proc = find_proc t pid in
  match proc.state with
  | Blocked ->
      proc.state <- Running;
      emit_probe t (Probe.Proc_resume { pid });
      Pqueue.push t.queue ~time:t.now (Resume proc)
  | Created | Running -> proc.wake_pending <- true
  | Finished -> ()

(* The scheduler. *)

let run_fiber t proc body =
  let open Effect.Deep in
  proc.state <- Running;
  match_with body proc.pid
    {
      retc =
        (fun () ->
          proc.state <- Finished;
          t.live <- t.live - 1;
          emit_probe t (Probe.Proc_finish { pid = proc.pid }));
      exnc = (fun exn -> raise exn);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Advance ns ->
              Some
                (fun (k : (a, unit) continuation) ->
                  proc.cont <- Some k;
                  Pqueue.push t.queue ~time:(t.now + ns) (Resume proc))
          | Block label ->
              Some
                (fun (k : (a, unit) continuation) ->
                  if proc.wake_pending then begin
                    proc.wake_pending <- false;
                    continue k ()
                  end
                  else begin
                    proc.state <- Blocked;
                    proc.blocked_label <- label;
                    proc.cont <- Some k;
                    emit_probe t (Probe.Proc_block { pid = proc.pid; label })
                  end)
          | _ -> None);
    }

let resume_fiber proc =
  match proc.cont with
  | Some k ->
      proc.cont <- None;
      proc.state <- Running;
      Effect.Deep.continue k ()
  | None -> invalid_arg "Engine: resume of a process with no continuation"

let blocked_procs t =
  let acc = ref [] in
  for pid = t.nprocs - 1 downto 0 do
    let p = t.procs.(pid) in
    if p.state = Blocked then acc := (p.pid, p.blocked_label) :: !acc
  done;
  !acc

let diagnose t ~stalled =
  {
    diag_time = t.now;
    diag_live = t.live;
    diag_blocked = blocked_procs t;
    diag_stalled = stalled;
    diag_notes = List.concat_map (fun f -> f ()) t.diagnostics;
  }

let run t =
  t.last_progress <- t.now;
  let rec loop () =
    match Pqueue.pop t.queue with
    | None -> if t.live > 0 then raise (Deadlock (diagnose t ~stalled:false))
    | Some (time, action) ->
        t.now <- time;
        (match t.stall_budget with
        | Some budget when t.live > 0 && t.now - t.last_progress > budget ->
            raise (Deadlock (diagnose t ~stalled:true))
        | _ -> ());
        (match action with
        | Start (proc, body) ->
            t.last_progress <- t.now;
            run_fiber t proc body
        | Resume proc ->
            t.last_progress <- t.now;
            resume_fiber proc
        | Thunk f -> f ());
        loop ()
  in
  loop ()
