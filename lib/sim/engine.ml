(* Discrete-event simulation engine.

   Each simulated processor is a coroutine implemented with OCaml 5 effect
   handlers. A process runs real OCaml code and interacts with virtual time
   through two effects: [Advance n] consumes [n] simulated nanoseconds, and
   [Block] suspends the process until another party calls [wake].

   The engine has two execution modes over the same process machinery:

   - Legacy (default): a single event loop over one deterministic priority
     queue, so a given program and seed always produce the same
     interleaving. This path is byte-for-byte the historical scheduler.

   - Sharded ([set_sharded]): conservative parallel DES. Each shard owns a
     private event queue; execution proceeds in windows [W, W + lookahead)
     where W is the earliest pending event across all shards. Within a
     window every shard with pending work drains its own queue
     independently — on separate domains when a batch runner is installed
     ([set_batch_runner]), inline in shard order otherwise. The lookahead
     contract: any event a shard schedules on *another* shard must land at
     or after the window end (cross-shard events are the network, whose
     latency model is the lookahead). Cross-shard events are buffered in
     per-shard outboxes and committed at the window barrier in
     [(time, src shard, emission index)] order, so every destination
     queue receives the same push sequence — hence assigns the same
     [(time, node, seq)] keys — no matter how many domains executed the
     window. Observer callbacks (probes, trace sinks) are deferred to the
     barrier and flushed in [(time, shard, emission index)] order for the
     same reason.

   Two failure detectors guard both loops. If the event queue drains while
   processes are still blocked (a lost wakeup or a lock cycle), or if a
   configurable span of virtual time passes in which only bare thunks run
   and no process makes progress (a retransmission livelock), [run] raises
   [Deadlock] carrying a structured diagnosis: every blocked process with
   its label, plus whatever lines the registered subsystem reporters (the
   transport's per-link unacked queues, the lock managers' queue depths)
   contribute. In sharded mode the watchdog is evaluated at window starts,
   which is deterministic because window boundaries are. *)

type pid = int

type proc_state = Created | Running | Blocked | Finished

type proc = {
  pid : pid;
  mutable state : proc_state;
  mutable cont : (unit, unit) Effect.Deep.continuation option;
  mutable wake_pending : bool;
  mutable blocked_label : string;  (* what the process is waiting for *)
  mutable shard : int;  (* owning shard index; 0 in legacy mode *)
}

type action = Start of proc * (pid -> unit) | Resume of proc | Thunk of (unit -> unit)

type t = {
  mutable now : int;
  queue : action Pqueue.t;  (* legacy-mode global queue *)
  mutable procs : proc array;  (* indexed by pid; first [nprocs] slots live *)
  mutable nprocs : int;
  mutable live : int;
  mutable diagnostics : (unit -> string list) list;  (* subsystem reporters *)
  mutable stall_budget : int option;  (* max virtual ns without progress *)
  mutable last_progress : int;  (* last time a process ran or finished *)
  mutable probe : Probe.t option;  (* pure observer of scheduling decisions *)
  (* sharded mode; [shards = [||]] means legacy *)
  mutable shards : shard array;
  mutable shard_of_pid : pid -> int;
  mutable lookahead : int;
  mutable batch : ((int * (unit -> unit)) list -> unit) option;
      (* window executor: [(shard index, drain thunk)] pairs; the index
         lets the runner keep a stable shard-to-domain placement *)
  mutable flush_now : int option;  (* virtual time while flushing deferred observers *)
}

and shard = {
  s_owner : t;
  s_index : int;
  s_queue : action Pqueue.t;
  mutable s_now : int;
  mutable s_outbox : outmsg list;  (* cross-shard events, reverse order *)
  mutable s_emit : int;  (* outbox emission counter, reset per window *)
  mutable s_defer : defmsg list;  (* deferred observer calls, reverse order *)
  mutable s_dseq : int;  (* defer emission counter, reset per window *)
  mutable s_finished : int;  (* processes finished this window *)
  mutable s_progress : int;  (* time of last Start/Resume this window, or min_int *)
  mutable s_error : (exn * Printexc.raw_backtrace) option;
}

and outmsg = { o_at : int; o_src : int; o_emit : int; o_dst : int; o_act : action }
and defmsg = { d_time : int; d_shard : int; d_seq : int; d_run : unit -> unit }

(* Which shard (if any) the current domain is executing. Keyed per domain
   so pool workers running different shards of the same engine — or
   shards of different engines — never observe each other's context. *)
let current_shard : shard option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let ctx t =
  match !(Domain.DLS.get current_shard) with
  | Some s when s.s_owner == t -> Some s
  | _ -> None

let sharded t = Array.length t.shards > 0

type diagnosis = {
  diag_time : int;  (* simulated time of the diagnosis *)
  diag_live : int;  (* processes not yet finished *)
  diag_blocked : (pid * string) list;  (* blocked processes and their labels *)
  diag_stalled : bool;  (* true: watchdog budget exceeded; false: queue drained *)
  diag_notes : string list;  (* lines from registered subsystem reporters *)
}

exception Deadlock of diagnosis

let pp_diagnosis ppf d =
  Format.fprintf ppf "@[<v>%s at t=%d ns: %d process(es) live, %d blocked"
    (if d.diag_stalled then "stall watchdog fired" else "event queue drained")
    d.diag_time d.diag_live
    (List.length d.diag_blocked);
  List.iter
    (fun (pid, label) -> Format.fprintf ppf "@   p%d waiting on %s" pid label)
    d.diag_blocked;
  List.iter (fun note -> Format.fprintf ppf "@   %s" note) d.diag_notes;
  Format.fprintf ppf "@]"

let diagnosis_to_string d = Format.asprintf "%a" pp_diagnosis d

let create () =
  {
    now = 0;
    queue = Pqueue.create ();
    procs = [||];
    nprocs = 0;
    live = 0;
    diagnostics = [];
    stall_budget = None;
    last_progress = 0;
    probe = None;
    shards = [||];
    shard_of_pid = (fun _ -> 0);
    lookahead = 1;
    batch = None;
    flush_now = None;
  }

let now t =
  if Array.length t.shards = 0 then t.now
  else
    match ctx t with
    | Some s -> s.s_now
    | None -> ( match t.flush_now with Some n -> n | None -> t.now)

let set_sharded t ~shards ~shard_of_pid ~lookahead =
  if shards < 1 then invalid_arg "Engine.set_sharded: need at least one shard";
  if t.nprocs > 0 || not (Pqueue.is_empty t.queue) then
    invalid_arg "Engine.set_sharded: must be called before any spawn or schedule";
  t.shard_of_pid <- shard_of_pid;
  t.lookahead <- max 1 lookahead;
  t.shards <-
    Array.init shards (fun i ->
        {
          s_owner = t;
          s_index = i;
          s_queue = Pqueue.create ();
          s_now = t.now;
          s_outbox = [];
          s_emit = 0;
          s_defer = [];
          s_dseq = 0;
          s_finished = 0;
          s_progress = min_int;
          s_error = None;
        })

let set_batch_runner t runner = t.batch <- runner

let set_probe t probe = t.probe <- probe

(* Observer deferral: in sharded mode, callbacks that touch state shared
   across shards (probes, trace sinks) are queued and run at the window
   barrier on the main domain, in a merge order that does not depend on
   execution order. [now] reads the recorded virtual time during the
   flush, so observers time-stamp events exactly as they would have
   in-line. Outside sharded execution the thunk runs immediately. *)
let defer t f =
  if Array.length t.shards = 0 then f ()
  else
    match ctx t with
    | Some s ->
        s.s_defer <- { d_time = s.s_now; d_shard = s.s_index; d_seq = s.s_dseq; d_run = f }
          :: s.s_defer;
        s.s_dseq <- s.s_dseq + 1
    | None -> f ()

let emit_probe t event =
  match t.probe with
  | None -> ()
  | Some f -> (
      match ctx t with Some _ -> defer t (fun () -> f event) | None -> f event)

let add_diagnostic t f = t.diagnostics <- t.diagnostics @ [ f ]

let set_stall_budget t budget =
  (match budget with
  | Some ns when ns <= 0 -> invalid_arg "Engine.set_stall_budget: budget must be positive"
  | _ -> ());
  t.stall_budget <- budget

let schedule t ~at f =
  if Array.length t.shards = 0 then begin
    if at < t.now then invalid_arg "Engine.schedule: cannot schedule in the past";
    Pqueue.push t.queue ~time:at (Thunk f)
  end
  else
    match ctx t with
    | Some s ->
        if at < s.s_now then invalid_arg "Engine.schedule: cannot schedule in the past";
        Pqueue.push s.s_queue ~node:s.s_index ~time:at (Thunk f)
    | None ->
        if at < t.now then invalid_arg "Engine.schedule: cannot schedule in the past";
        Pqueue.push t.shards.(0).s_queue ~node:0 ~time:at (Thunk f)

let schedule_after t ~delay f = schedule t ~at:(now t + delay) f

let schedule_node t ~node ~at f =
  if Array.length t.shards = 0 then begin
    if at < t.now then invalid_arg "Engine.schedule_node: cannot schedule in the past";
    Pqueue.push t.queue ~time:at (Thunk f)
  end
  else begin
    if node < 0 || node >= Array.length t.shards then
      invalid_arg (Printf.sprintf "Engine.schedule_node: unknown shard %d" node);
    match ctx t with
    | Some s when s.s_index = node ->
        if at < s.s_now then
          invalid_arg "Engine.schedule_node: cannot schedule in the past";
        Pqueue.push s.s_queue ~node ~time:at (Thunk f)
    | Some s ->
        (* Cross-shard: buffered, committed at the window barrier. *)
        s.s_outbox <-
          { o_at = at; o_src = s.s_index; o_emit = s.s_emit; o_dst = node; o_act = Thunk f }
          :: s.s_outbox;
        s.s_emit <- s.s_emit + 1
    | None ->
        if at < t.now then invalid_arg "Engine.schedule_node: cannot schedule in the past";
        Pqueue.push t.shards.(node).s_queue ~node ~time:at (Thunk f)
  end

let spawn t body =
  let pid = t.nprocs in
  let proc =
    { pid; state = Created; cont = None; wake_pending = false; blocked_label = ""; shard = 0 }
  in
  if pid >= Array.length t.procs then begin
    let grown = Array.make (max 8 (2 * Array.length t.procs)) proc in
    Array.blit t.procs 0 grown 0 t.nprocs;
    t.procs <- grown
  end;
  t.procs.(pid) <- proc;
  t.nprocs <- t.nprocs + 1;
  t.live <- t.live + 1;
  if Array.length t.shards = 0 then Pqueue.push t.queue ~time:t.now (Start (proc, body))
  else begin
    let shard = t.shard_of_pid pid in
    if shard < 0 || shard >= Array.length t.shards then
      invalid_arg (Printf.sprintf "Engine.spawn: shard_of_pid mapped pid %d to %d" pid shard);
    proc.shard <- shard;
    Pqueue.push t.shards.(shard).s_queue ~node:shard ~time:t.now (Start (proc, body))
  end;
  pid

let find_proc t pid =
  if pid < 0 || pid >= t.nprocs then
    invalid_arg (Printf.sprintf "Engine: unknown pid %d" pid)
  else t.procs.(pid)

(* Effects performed by process bodies. *)

type _ Effect.t +=
  | Advance : int -> unit Effect.t
  | Block : string -> unit Effect.t

let advance ns =
  if ns < 0 then invalid_arg "Engine.advance: negative duration";
  if ns > 0 then Effect.perform (Advance ns)

let advance_f ns = advance (int_of_float ns)

let block ~label = Effect.perform (Block label)

(* Push a scheduler action owned by the current execution context: the
   current shard's queue in sharded mode, the global queue otherwise. *)
let push_local t ~time action =
  match ctx t with
  | Some s -> Pqueue.push s.s_queue ~node:s.s_index ~time action
  | None ->
      if Array.length t.shards = 0 then Pqueue.push t.queue ~time action
      else assert false

let wake t pid =
  let proc = find_proc t pid in
  (match ctx t with
  | Some s when proc.shard <> s.s_index ->
      (* A cross-shard wake would race with the target shard's own window
         execution. The protocols built on this engine only wake
         processes via messages (which go through [schedule_node]) or on
         their own node; anything else is a bug. *)
      invalid_arg
        (Printf.sprintf "Engine.wake: cross-shard wake of pid %d from shard %d" pid s.s_index)
  | _ -> ());
  match proc.state with
  | Blocked ->
      proc.state <- Running;
      emit_probe t (Probe.Proc_resume { pid });
      push_local t ~time:(now t) (Resume proc)
  | Created | Running -> proc.wake_pending <- true
  | Finished -> ()

(* The scheduler. *)

let run_fiber t proc body =
  let open Effect.Deep in
  proc.state <- Running;
  match_with body proc.pid
    {
      retc =
        (fun () ->
          proc.state <- Finished;
          (match ctx t with
          | Some s -> s.s_finished <- s.s_finished + 1
          | None -> t.live <- t.live - 1);
          emit_probe t (Probe.Proc_finish { pid = proc.pid }));
      exnc = (fun exn -> raise exn);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Advance ns ->
              Some
                (fun (k : (a, unit) continuation) ->
                  proc.cont <- Some k;
                  push_local t ~time:(now t + ns) (Resume proc))
          | Block label ->
              Some
                (fun (k : (a, unit) continuation) ->
                  if proc.wake_pending then begin
                    proc.wake_pending <- false;
                    continue k ()
                  end
                  else begin
                    proc.state <- Blocked;
                    proc.blocked_label <- label;
                    proc.cont <- Some k;
                    emit_probe t (Probe.Proc_block { pid = proc.pid; label })
                  end)
          | _ -> None);
    }

let resume_fiber proc =
  match proc.cont with
  | Some k ->
      proc.cont <- None;
      proc.state <- Running;
      Effect.Deep.continue k ()
  | None -> invalid_arg "Engine: resume of a process with no continuation"

let blocked_procs t =
  let acc = ref [] in
  for pid = t.nprocs - 1 downto 0 do
    let p = t.procs.(pid) in
    if p.state = Blocked then acc := (p.pid, p.blocked_label) :: !acc
  done;
  !acc

let diagnose t ~stalled =
  {
    diag_time = t.now;
    diag_live = t.live;
    diag_blocked = blocked_procs t;
    diag_stalled = stalled;
    diag_notes = List.concat_map (fun f -> f ()) t.diagnostics;
  }

(* Drain one shard's queue up to (but excluding) the window end. Runs on
   an arbitrary domain; all state it touches is shard-private (or the
   shard's processes, which no other shard touches — cross-shard wakes
   are rejected). Exceptions are captured so every active shard of a
   window runs to its barrier regardless of execution order; the barrier
   re-raises the lowest-indexed shard's error, which is deterministic. *)
let exec_shard t s ~w_end =
  let slot = Domain.DLS.get current_shard in
  slot := Some s;
  (try
     let continue_ = ref true in
     while !continue_ do
       match Pqueue.peek_time s.s_queue with
       | Some time when time < w_end -> (
           match Pqueue.pop s.s_queue with
           | None -> assert false
           | Some (time, action) -> (
               if time > s.s_now then s.s_now <- time;
               match action with
               | Start (proc, body) ->
                   s.s_progress <- s.s_now;
                   run_fiber t proc body
               | Resume proc ->
                   s.s_progress <- s.s_now;
                   resume_fiber proc
               | Thunk f -> f ()))
       | _ -> continue_ := false
     done
   with exn -> s.s_error <- Some (exn, Printexc.get_raw_backtrace ()));
  slot := None

let compare_out (a : outmsg) (b : outmsg) =
  compare (a.o_at, a.o_src, a.o_emit) (b.o_at, b.o_src, b.o_emit)

let compare_def (a : defmsg) (b : defmsg) =
  compare (a.d_time, a.d_shard, a.d_seq) (b.d_time, b.d_shard, b.d_seq)

let run_windows t =
  t.last_progress <- t.now;
  let rec loop () =
    let w_start =
      Array.fold_left
        (fun acc s ->
          match Pqueue.peek_time s.s_queue with Some tm -> min acc tm | None -> acc)
        max_int t.shards
    in
    if w_start = max_int then begin
      Array.iter (fun s -> if s.s_now > t.now then t.now <- s.s_now) t.shards;
      if t.live > 0 then raise (Deadlock (diagnose t ~stalled:false))
    end
    else begin
      if w_start > t.now then t.now <- w_start;
      (match t.stall_budget with
      | Some budget when t.live > 0 && t.now - t.last_progress > budget ->
          raise (Deadlock (diagnose t ~stalled:true))
      | _ -> ());
      let w_end = w_start + t.lookahead in
      let thunks = ref [] in
      Array.iter
        (fun s ->
          s.s_outbox <- [];
          s.s_emit <- 0;
          s.s_defer <- [];
          s.s_dseq <- 0;
          s.s_finished <- 0;
          s.s_progress <- min_int;
          s.s_error <- None;
          match Pqueue.peek_time s.s_queue with
          | Some tm when tm < w_end ->
              thunks := (s.s_index, fun () -> exec_shard t s ~w_end) :: !thunks
          | _ -> ())
        t.shards;
      let thunks = List.rev !thunks in
      (match (t.batch, thunks) with
      | Some runner, _ :: _ :: _ -> runner thunks
      | _ -> List.iter (fun (_, f) -> f ()) thunks);
      (* Re-raise the first (lowest shard index) captured error, skipping
         commits: the failure point is then independent of domain count. *)
      Array.iter
        (fun s ->
          match s.s_error with
          | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
          | None -> ())
        t.shards;
      (* Commit cross-shard events in (time, src, emission) order so every
         destination queue sees a canonical push sequence. *)
      let out =
        Array.fold_left (fun acc s -> List.rev_append s.s_outbox acc) [] t.shards
      in
      List.iter
        (fun m ->
          if m.o_at < w_end then
            invalid_arg
              (Printf.sprintf
                 "Engine: lookahead violation (cross-shard event at t=%d inside window \
                  ending t=%d)"
                 m.o_at w_end);
          Pqueue.push t.shards.(m.o_dst).s_queue ~node:m.o_dst ~time:m.o_at m.o_act)
        (List.sort compare_out out);
      Array.iter
        (fun s ->
          t.live <- t.live - s.s_finished;
          if s.s_progress > t.last_progress then t.last_progress <- s.s_progress)
        t.shards;
      (* Flush deferred observers in canonical merge order, restoring each
         call's virtual time for [now]. *)
      let defers =
        Array.fold_left (fun acc s -> List.rev_append s.s_defer acc) [] t.shards
      in
      List.iter
        (fun d ->
          t.flush_now <- Some d.d_time;
          d.d_run ())
        (List.sort compare_def defers);
      t.flush_now <- None;
      loop ()
    end
  in
  loop ()

let run t =
  if Array.length t.shards > 0 then run_windows t
  else begin
    t.last_progress <- t.now;
    let rec loop () =
      match Pqueue.pop t.queue with
      | None -> if t.live > 0 then raise (Deadlock (diagnose t ~stalled:false))
      | Some (time, action) ->
          t.now <- time;
          (match t.stall_budget with
          | Some budget when t.live > 0 && t.now - t.last_progress > budget ->
              raise (Deadlock (diagnose t ~stalled:true))
          | _ -> ());
          (match action with
          | Start (proc, body) ->
              t.last_progress <- t.now;
              run_fiber t proc body
          | Resume proc ->
              t.last_progress <- t.now;
              resume_fiber proc
          | Thunk f -> f ());
          loop ()
    in
    loop ()
  end
