(* Reliable transport over a lossy wire — the analogue of the end-to-end
   protocols CVM layered over raw UDP on ATM.

   Each directed (src, dst) link carries its own sequence-number space.
   The sender keeps every unacknowledged frame, retransmits the oldest on
   a timer with exponential backoff, and gives the link up after a retry
   cap (the watchdog then reports the stranded frames). The receiver
   delivers exactly once and in order: out-of-sequence frames park in a
   reassembly buffer, duplicates are suppressed, and every data frame is
   answered with a cumulative ack, so a lost ack is repaired by the next
   one. The layer above (the DSM) therefore keeps its exactly-once FIFO
   view of the network while the wire below drops, duplicates and
   reorders at will. *)

type config = {
  initial_rto_ns : int;  (* first retransmission timeout *)
  max_rto_ns : int;  (* backoff ceiling *)
  max_retries : int;  (* per-frame cap before the link is declared dead *)
  header_bytes : int;  (* per-data-frame transport header on the wire *)
  ack_bytes : int;  (* wire size of a cumulative ack *)
}

let default_config =
  {
    initial_rto_ns = 1_000_000 (* ~4x the small-message RTT *);
    max_rto_ns = 16_000_000;
    max_retries = 20;
    header_bytes = 12;
    ack_bytes = 32;
  }

type 'a frame = Data of { seq : int; payload : 'a } | Ack of { cum : int }

type 'a sender = {
  mutable next_seq : int;
  unacked : (int * 'a) Queue.t;  (* (seq, payload), oldest first *)
  mutable retries : int;  (* consecutive timeouts for the oldest frame *)
  mutable rto : int;
  mutable timer_gen : int;  (* bump to cancel an armed timer *)
  mutable failed : bool;  (* retry cap exhausted; link abandoned *)
}

type 'a receiver = {
  mutable expected : int;  (* next sequence number to deliver *)
  parked : (int, 'a) Hashtbl.t;  (* out-of-order frames awaiting the gap *)
}

type 'a t = {
  cfg : config;
  engine : Engine.t;
  stats : Stats.t;
  nodes : int;
  senders : 'a sender array;  (* indexed by src * nodes + dst *)
  receivers : 'a receiver array;
  wire_send : src:int -> dst:int -> 'a frame -> unit;
  deliver : src:int -> dst:int -> 'a -> unit;
  probe : Probe.t option;  (* retransmit/ack/link-failure observer *)
}

let create ?probe cfg engine stats ~nodes ~wire_send ~deliver =
  if cfg.initial_rto_ns <= 0 || cfg.max_rto_ns < cfg.initial_rto_ns then
    invalid_arg "Transport: need 0 < initial_rto_ns <= max_rto_ns";
  if cfg.max_retries < 0 then invalid_arg "Transport: negative retry cap";
  {
    cfg;
    engine;
    stats;
    nodes;
    senders =
      Array.init (nodes * nodes) (fun _ ->
          {
            next_seq = 0;
            unacked = Queue.create ();
            retries = 0;
            rto = cfg.initial_rto_ns;
            timer_gen = 0;
            failed = false;
          });
    receivers =
      Array.init (nodes * nodes) (fun _ -> { expected = 0; parked = Hashtbl.create 8 });
    wire_send;
    deliver;
    probe;
  }

let emit_probe t event = match t.probe with Some f -> f event | None -> ()

let link t ~src ~dst = (src * t.nodes) + dst

let frame_bytes cfg ~payload_bytes = function
  | Data { payload; _ } -> cfg.header_bytes + payload_bytes payload
  | Ack _ -> cfg.ack_bytes

(* Sender side. *)

let rec arm_timer t ~src ~dst s =
  s.timer_gen <- s.timer_gen + 1;
  let gen = s.timer_gen in
  Engine.schedule_after t.engine ~delay:s.rto (fun () ->
      if gen = s.timer_gen && (not s.failed) && not (Queue.is_empty s.unacked) then
        on_timeout t ~src ~dst s)

and on_timeout t ~src ~dst s =
  t.stats.Stats.rto_timeouts <- t.stats.Stats.rto_timeouts + 1;
  s.retries <- s.retries + 1;
  if s.retries > t.cfg.max_retries then begin
    (* give the link up; the stranded frames surface in the watchdog's
       diagnosis instead of being retried forever *)
    s.failed <- true;
    t.stats.Stats.link_failures <- t.stats.Stats.link_failures + 1;
    emit_probe t (Probe.Link_failure { src; dst })
  end
  else begin
    let seq, payload = Queue.peek s.unacked in
    t.stats.Stats.retransmits <- t.stats.Stats.retransmits + 1;
    emit_probe t (Probe.Retransmit { src; dst; seq });
    t.wire_send ~src ~dst (Data { seq; payload });
    s.rto <- min (2 * s.rto) t.cfg.max_rto_ns;
    arm_timer t ~src ~dst s
  end

let send t ~src ~dst payload =
  let s = t.senders.(link t ~src ~dst) in
  let seq = s.next_seq in
  s.next_seq <- seq + 1;
  let was_idle = Queue.is_empty s.unacked in
  Queue.add (seq, payload) s.unacked;
  if not s.failed then begin
    t.wire_send ~src ~dst (Data { seq; payload });
    if was_idle then arm_timer t ~src ~dst s
  end

let on_ack t ~src ~dst ~cum =
  (* [cum] acknowledges every sequence number <= cum on link src -> dst *)
  let s = t.senders.(link t ~src ~dst) in
  let advanced = ref false in
  let continue_ = ref true in
  while !continue_ do
    match Queue.peek_opt s.unacked with
    | Some (seq, _) when seq <= cum ->
        ignore (Queue.pop s.unacked);
        advanced := true
    | _ -> continue_ := false
  done;
  if !advanced then begin
    s.retries <- 0;
    s.rto <- t.cfg.initial_rto_ns;
    if s.failed then ()
    else if Queue.is_empty s.unacked then s.timer_gen <- s.timer_gen + 1 (* disarm *)
    else arm_timer t ~src ~dst s
  end

(* Receiver side. *)

let on_data t ~src ~dst ~seq payload =
  let r = t.receivers.(link t ~src ~dst) in
  if seq < r.expected || Hashtbl.mem r.parked seq then
    t.stats.Stats.dup_suppressed <- t.stats.Stats.dup_suppressed + 1
  else Hashtbl.add r.parked seq payload;
  while Hashtbl.mem r.parked r.expected do
    let p = Hashtbl.find r.parked r.expected in
    Hashtbl.remove r.parked r.expected;
    r.expected <- r.expected + 1;
    t.deliver ~src ~dst p
  done;
  (* every data frame earns a cumulative ack; a lost ack is repaired by
     the next one (or by the retransmission it provokes) *)
  t.stats.Stats.acks_sent <- t.stats.Stats.acks_sent + 1;
  emit_probe t (Probe.Ack_tx { src = dst; dst = src; cum = r.expected - 1 });
  t.wire_send ~src:dst ~dst:src (Ack { cum = r.expected - 1 })

let wire_receive t ~src ~dst frame =
  match frame with
  | Data { seq; payload } -> on_data t ~src ~dst ~seq payload
  | Ack { cum } ->
      (* an ack travelling dst -> src acknowledges the src -> dst stream
         of the node it arrives at: flip the link back *)
      on_ack t ~src:dst ~dst:src ~cum

(* Introspection (watchdog diagnosis and tests). *)

let unacked t ~src ~dst = Queue.length t.senders.(link t ~src ~dst).unacked

let failed_links t =
  let acc = ref [] in
  for src = t.nodes - 1 downto 0 do
    for dst = t.nodes - 1 downto 0 do
      if t.senders.(link t ~src ~dst).failed then acc := (src, dst) :: !acc
    done
  done;
  !acc

let diagnostics t =
  let lines = ref [] in
  for src = t.nodes - 1 downto 0 do
    for dst = t.nodes - 1 downto 0 do
      let s = t.senders.(link t ~src ~dst) in
      let r = t.receivers.(link t ~src ~dst) in
      if (not (Queue.is_empty s.unacked)) || Hashtbl.length r.parked > 0 then begin
        let oldest =
          match Queue.peek_opt s.unacked with
          | Some (seq, _) -> Printf.sprintf ", oldest seq %d" seq
          | None -> ""
        in
        lines :=
          Printf.sprintf
            "link %d->%d: %d unacked%s, %d parked out-of-order, rto %d ns, retries %d%s" src
            dst (Queue.length s.unacked) oldest (Hashtbl.length r.parked) s.rto s.retries
            (if s.failed then " [FAILED: retry cap exhausted]" else "")
          :: !lines
      end
    done
  done;
  !lines
