(** Simulated network: point-to-point messages with a latency + bandwidth
    cost model (CVM's UDP protocols on 155 Mbit ATM).

    By default the wire is reliable and per-link FIFO. With [~transport],
    a {!Transport} instance is layered between the senders and a wire
    that an active {!Fault} plan may drop, duplicate, reorder or delay —
    the layer above still sees exactly-once FIFO delivery, but wire bytes
    (retransmissions, acks, duplicates) are charged to {!Stats}.

    Messages are delivered to a per-node handler at delivery time — the
    analogue of CVM servicing requests from a SIGIO handler — so protocol
    requests are serviced even while the node's application coroutine is
    computing or blocked. *)

type 'msg t

val create :
  ?rng:Rng.t ->
  ?fault:Fault.plan ->
  ?fault_rng:Rng.t ->
  ?transport:Transport.config ->
  ?probe:Probe.t ->
  ?describe:('msg -> string) ->
  ?stats_of:(int -> Stats.t) ->
  Engine.t ->
  Cost.t ->
  Stats.t ->
  nodes:int ->
  size_of:('msg -> int) ->
  'msg t
(** [size_of] gives the payload size in bytes; it drives both the bandwidth
    cost model and the byte counters in {!Stats}. [rng] feeds the optional
    delivery jitter ({!Cost.t.jitter_ns}) and is independent of
    [fault_rng], which seeds the fault plan's per-link streams — enabling
    fault injection does not perturb the jitter draws. An active [fault]
    plan requires [transport] (raises [Invalid_argument] otherwise);
    [transport] alone runs the reliable transport over a fault-free wire.

    [probe] observes sends, deliveries and per-frame fault outcomes (and
    is forwarded to the transport for retransmit/ack events); [describe]
    supplies the payload tag those events carry. Probes never perturb
    delivery order or timing.

    [stats_of] maps a sending node id to the {!Stats} record its traffic
    is charged to (default: the shared positional record). The sharded
    runner passes per-node records so concurrent shards never write the
    same counters; the transport, when configured, still charges its own
    events to the shared record (transports only run sequentially). *)

val node_count : 'msg t -> int

val set_handler : 'msg t -> node:int -> ('msg -> unit) -> unit
(** Install the delivery handler for a node. Without a handler, messages
    queue for {!recv}. *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Asynchronous send; delivery happens after latency + bandwidth delay.
    A self-send is delivered after {!Cost.t.loopback_ns} — loopback never
    touches the wire, so it is lossless even under an aggressive fault
    plan. *)

val recv : 'msg t -> node:int -> 'msg
(** Blocking receive for handler-less nodes. Assumes the calling process's
    pid equals the node id (the cluster spawns one process per node). *)

val transport : 'msg t -> 'msg Transport.t option
(** The transport instance, when one was configured (introspection for
    tests and diagnostics). *)

val diagnostics : 'msg t -> string list
(** Wire frames in flight plus the transport's per-link report — suitable
    for {!Engine.add_diagnostic}. *)
