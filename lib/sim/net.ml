(* Simulated network: point-to-point messages with a latency + bandwidth
   cost model, standing in for CVM's end-to-end UDP protocols on 155 Mbit
   ATM.

   Two modes:

   - Reliable wire (default, the seed behaviour): every message is
     delivered exactly once; per-link FIFO order is enforced even under
     delivery jitter.

   - Lossy wire + reliable transport: an active {!Fault} plan may drop,
     duplicate, reorder or delay every wire frame (and acks!), and
     {!Transport} restores the exactly-once FIFO view above it with
     sequence numbers, cumulative acks and capped exponential-backoff
     retransmission. Byte accounting happens per wire frame, so
     retransmitted bytes are charged.

   Delivery invokes the destination node's handler directly, at delivery
   time, the way CVM services requests from a SIGIO handler: protocol
   requests are serviced even while the node's application code is blocked
   or computing. Handlers route replies to the waiting application
   coroutine themselves. Self-sends use the loopback path: no wire, no
   faults, {!Cost.t.loopback_ns} delay. *)

type 'msg node = {
  id : int;
  inbox : 'msg Queue.t;
  mutable handler : ('msg -> unit) option;
  mutable waiter : Engine.pid option;
}

type 'msg t = {
  engine : Engine.t;
  cost : Cost.t;
  stats : Stats.t;
  stats_of : int -> Stats.t;  (* counters to charge for a given sender *)
  nodes : 'msg node array;
  size_of : 'msg -> int;
  describe : 'msg -> string;  (* payload tag for the probe's send/deliver events *)
  rng : Rng.t;  (* jitter stream — independent from the fault streams *)
  last_delivery : int array;  (* per (src, dst) link: preserve FIFO under jitter *)
  (* Per-link frame accounting, split by writer so the sharded engine's
     source (increments at schedule) and destination (increments at
     delivery) shards never write the same cell: in flight = sent -
     delivered. *)
  sent : int array;
  delivered : int array;
  fault : Fault.t option;
  probe : Probe.t option;  (* pure observer; never perturbs delivery *)
  partition_down : bool array;  (* last observed phase of each partition window *)
  mutable transport : 'msg Transport.t option;
}

let node_count t = Array.length t.nodes

(* Probe consumers (trace sinks) are shared across nodes; route through
   the engine's observer deferral so sharded windows emit them at the
   barrier in canonical order. In legacy mode [defer] runs immediately. *)
let emit_probe t event =
  match t.probe with Some f -> Engine.defer t.engine (fun () -> f event) | None -> ()

(* Partition windows have no event of their own on the wire; report each
   open/close transition at the first wire activity that observes it.
   Lazy observation keeps the event queue identical with and without a
   probe installed. *)
let note_partitions t =
  match (t.fault, t.probe) with
  | Some fault, Some _ ->
      let now = Engine.now t.engine in
      List.iteri
        (fun i (p : Fault.partition) ->
          let down = now >= p.Fault.p_from_ns && now < p.Fault.p_until_ns in
          if down <> t.partition_down.(i) then begin
            t.partition_down.(i) <- down;
            emit_probe t
              (Probe.Partition { a = p.Fault.p_a; b = p.Fault.p_b; up = not down })
          end)
        (Fault.windows fault)
  | _ -> ()

let set_handler t ~node f = t.nodes.(node).handler <- Some f

let deliver t node msg =
  match node.handler with
  | Some f -> f msg
  | None -> (
      Queue.add msg node.inbox;
      match node.waiter with
      | Some pid ->
          node.waiter <- None;
          Engine.wake t.engine pid
      | None -> ())

let base_delay t ~bytes =
  let delay = Cost.message_ns t.cost ~bytes in
  if t.cost.Cost.jitter_ns > 0 then delay + Rng.int t.rng (t.cost.Cost.jitter_ns + 1)
  else delay

let link_of t ~src ~dst = (src * Array.length t.nodes) + dst

(* Reliable delivery with the per-link FIFO clamp (seed behaviour).
   [last_delivery] and [sent] are written only by the source node's
   shard (every send on link (src, dst) originates at src); [delivered]
   only by the destination's (the delivery thunk runs on dst). The
   delivery time is [>= now + message latency], which is the sharded
   engine's lookahead bound, and the FIFO clamp only increases it — so
   cross-shard deliveries always respect the window contract. *)
let deliver_ordered t ~src ~dst ~delay msg =
  let link = link_of t ~src ~dst in
  let at = max (Engine.now t.engine + delay) (t.last_delivery.(link) + 1) in
  t.last_delivery.(link) <- at;
  t.sent.(link) <- t.sent.(link) + 1;
  let node = t.nodes.(dst) in
  Engine.schedule_node t.engine ~node:dst ~at (fun () ->
      t.delivered.(link) <- t.delivered.(link) + 1;
      emit_probe t
        (Probe.Deliver { src; dst; bytes = t.size_of msg; tag = t.describe msg });
      deliver t node msg)

let send t ~src ~dst msg =
  if dst < 0 || dst >= Array.length t.nodes then invalid_arg "Net.send: bad destination";
  let bytes = t.size_of msg in
  let stats = t.stats_of src in
  emit_probe t (Probe.Send { src; dst; bytes; tag = t.describe msg });
  stats.Stats.messages <- stats.Stats.messages + 1;
  if src = dst then begin
    (* loopback: protocol stack only — no wire, no faults, no transport *)
    stats.Stats.fragments <- stats.Stats.fragments + Cost.fragments t.cost ~bytes;
    stats.Stats.bytes <- stats.Stats.bytes + Cost.wire_bytes t.cost ~bytes;
    deliver_ordered t ~src ~dst ~delay:t.cost.Cost.loopback_ns msg
  end
  else
    match t.transport with
    | Some transport -> Transport.send transport ~src ~dst msg
    | None ->
        stats.Stats.fragments <- stats.Stats.fragments + Cost.fragments t.cost ~bytes;
        stats.Stats.bytes <- stats.Stats.bytes + Cost.wire_bytes t.cost ~bytes;
        deliver_ordered t ~src ~dst ~delay:(base_delay t ~bytes) msg

let create ?(rng = Rng.create ~seed:0) ?(fault = Fault.none) ?fault_rng ?transport ?probe
    ?(describe = fun _ -> "msg") ?stats_of engine cost stats ~nodes ~size_of =
  if Fault.active fault && transport = None then
    invalid_arg "Net.create: an active fault plan requires the reliable transport";
  let t =
    {
      engine;
      cost;
      stats;
      stats_of = (match stats_of with Some f -> f | None -> fun _ -> stats);
      size_of;
      describe;
      rng;
      last_delivery = Array.make (nodes * nodes) 0;
      sent = Array.make (nodes * nodes) 0;
      delivered = Array.make (nodes * nodes) 0;
      fault =
        (if transport = None then None
         else
           let frng =
             match fault_rng with Some r -> r | None -> Rng.create ~seed:1
           in
           Some (Fault.create ~nodes ~rng:frng fault));
      probe;
      partition_down = Array.make (List.length fault.Fault.partitions) false;
      transport = None;
      nodes = Array.init nodes (fun id -> { id; inbox = Queue.create (); handler = None; waiter = None });
    }
  in
  (match transport with
  | None -> ()
  | Some cfg ->
      let payload_bytes = size_of in
      (* the wire below the transport: per-frame byte accounting, fault
         verdicts, unclamped delivery *)
      let wire_send ~src ~dst frame =
        let bytes = Transport.frame_bytes cfg ~payload_bytes frame in
        let stats = t.stats_of src in
        stats.Stats.fragments <- stats.Stats.fragments + Cost.fragments cost ~bytes;
        stats.Stats.bytes <- stats.Stats.bytes + Cost.wire_bytes cost ~bytes;
        note_partitions t;
        let verdict =
          match t.fault with
          | Some fault -> Fault.judge_verdict fault ~src ~dst ~now:(Engine.now engine)
          | None -> { Fault.v_delays = [ 0 ]; v_dropped = false; v_partitioned = false }
        in
        let verdicts = verdict.Fault.v_delays in
        (* report only frames the plan actually touched *)
        (if verdict.Fault.v_partitioned then
           emit_probe t (Probe.Fault { src; dst; outcome = Probe.Blackholed })
         else if verdict.Fault.v_dropped && verdicts = [] then
           emit_probe t (Probe.Fault { src; dst; outcome = Probe.Dropped })
         else
           match verdicts with
           | first :: rest when first > 0 || rest <> [] || verdict.Fault.v_dropped ->
               emit_probe t
                 (Probe.Fault
                    {
                      src;
                      dst;
                      outcome =
                        Probe.Passed
                          { copies = List.length verdicts; extra_delay_ns = first };
                    })
           | _ -> ());
        (match verdicts with
        | [] -> stats.Stats.frames_dropped <- stats.Stats.frames_dropped + 1
        | _ :: extra_copies ->
            stats.Stats.frames_duplicated <-
              stats.Stats.frames_duplicated + List.length extra_copies);
        let link = link_of t ~src ~dst in
        List.iter
          (fun extra ->
            let at = Engine.now engine + base_delay t ~bytes + extra in
            t.sent.(link) <- t.sent.(link) + 1;
            Engine.schedule_node engine ~node:dst ~at (fun () ->
                t.delivered.(link) <- t.delivered.(link) + 1;
                match t.transport with
                | Some tr -> Transport.wire_receive tr ~src ~dst frame
                | None -> ()))
          verdicts
      in
      let deliver_up ~src ~dst payload =
        emit_probe t
          (Probe.Deliver { src; dst; bytes = t.size_of payload; tag = t.describe payload });
        deliver t t.nodes.(dst) payload
      in
      t.transport <-
        Some (Transport.create ?probe cfg engine stats ~nodes ~wire_send ~deliver:deliver_up));
  t

(* Blocking receive for nodes that drain their inbox from application code
   (used by tests and simple examples; the DSM uses handlers instead). *)
let recv t ~node:id =
  let node = t.nodes.(id) in
  let rec wait () =
    match Queue.take_opt node.inbox with
    | Some msg -> msg
    | None ->
        node.waiter <- Some id;
        Engine.block ~label:(Printf.sprintf "net recv at node %d" id);
        wait ()
  in
  wait ()

let transport t = t.transport

let diagnostics t =
  let n = Array.length t.nodes in
  let wire_lines = ref [] in
  for src = n - 1 downto 0 do
    for dst = n - 1 downto 0 do
      let link = link_of t ~src ~dst in
      let inflight = t.sent.(link) - t.delivered.(link) in
      if inflight > 0 then
        wire_lines :=
          Printf.sprintf "link %d->%d: %d frame(s) in flight on the wire" src dst inflight
          :: !wire_lines
    done
  done;
  let transport_lines =
    match t.transport with Some tr -> Transport.diagnostics tr | None -> []
  in
  !wire_lines @ transport_lines
