(* Seeded per-link fault injection: the hostile network CVM's end-to-end
   UDP protocols had to survive. A [plan] describes what the wire may do
   to a frame — drop it, duplicate it, delay it into a reorder, spike its
   latency, or black-hole it during a scheduled partition. Every decision
   is drawn from a per-link SplitMix stream, so a (plan, seed) pair always
   produces the same fault schedule regardless of what any other link (or
   the jitter model) draws. *)

type partition = {
  p_a : int;  (* link endpoints; faults apply in both directions *)
  p_b : int;
  p_from_ns : int;
  p_until_ns : int;
}

type plan = {
  drop : float;  (* probability a wire frame is lost *)
  duplicate : float;  (* probability a second copy is injected *)
  reorder : float;  (* probability a frame is held back (extra delay) *)
  reorder_window_ns : int;  (* max hold-back for a reordered frame *)
  spike : float;  (* probability of a latency spike *)
  spike_ns : int;  (* spike magnitude *)
  partitions : partition list;  (* one-shot scheduled link outages *)
}

let none =
  {
    drop = 0.0;
    duplicate = 0.0;
    reorder = 0.0;
    reorder_window_ns = 800_000;
    spike = 0.0;
    spike_ns = 2_000_000;
    partitions = [];
  }

let active plan =
  plan.drop > 0.0 || plan.duplicate > 0.0 || plan.reorder > 0.0 || plan.spike > 0.0
  || plan.partitions <> []

let validate plan =
  let prob name p =
    if p < 0.0 || p > 1.0 then
      invalid_arg (Printf.sprintf "Fault: %s probability %g outside [0,1]" name p)
  in
  prob "drop" plan.drop;
  prob "duplicate" plan.duplicate;
  prob "reorder" plan.reorder;
  prob "spike" plan.spike;
  if plan.reorder_window_ns < 0 || plan.spike_ns < 0 then
    invalid_arg "Fault: negative delay window";
  List.iter
    (fun p ->
      if p.p_from_ns < 0 || p.p_until_ns < p.p_from_ns then
        invalid_arg "Fault: partition window must satisfy 0 <= from <= until")
    plan.partitions;
  plan

type t = {
  plan : plan;
  links : Rng.t array;  (* one independent stream per (src, dst) link *)
  nodes : int;
}

let create ~nodes ~rng plan =
  let plan = validate plan in
  { plan; nodes; links = Array.init (nodes * nodes) (fun _ -> Rng.split rng) }

let partitioned t ~src ~dst ~now =
  List.exists
    (fun p ->
      ((p.p_a = src && p.p_b = dst) || (p.p_a = dst && p.p_b = src))
      && now >= p.p_from_ns && now < p.p_until_ns)
    t.plan.partitions

(* The verdict for one wire frame: the extra delivery delays of the
   surviving copies ([] means the frame was lost) plus what happened to
   it, so an observer (the trace recorder) can tell a random drop from a
   partition black-hole from a clean pass. Draw order is fixed (drop,
   duplicate, then per-copy reorder/spike) so a given link stream yields
   the same schedule independent of traffic on other links. *)
type verdict = {
  v_delays : int list;  (* extra delay per surviving copy *)
  v_dropped : bool;  (* lost one copy to the drop probability *)
  v_partitioned : bool;  (* black-holed by a partition window *)
}

let judge_verdict t ~src ~dst ~now =
  if not (active t.plan) then { v_delays = [ 0 ]; v_dropped = false; v_partitioned = false }
  else if partitioned t ~src ~dst ~now then
    { v_delays = []; v_dropped = false; v_partitioned = true }
  else begin
    let rng = t.links.((src * t.nodes) + dst) in
    let dropped = t.plan.drop > 0.0 && Rng.float rng 1.0 < t.plan.drop in
    let copies =
      if t.plan.duplicate > 0.0 && Rng.float rng 1.0 < t.plan.duplicate then 2 else 1
    in
    let extra_delay () =
      let held =
        if t.plan.reorder > 0.0 && Rng.float rng 1.0 < t.plan.reorder then
          Rng.int rng (t.plan.reorder_window_ns + 1)
        else 0
      in
      let spiked =
        if t.plan.spike > 0.0 && Rng.float rng 1.0 < t.plan.spike then t.plan.spike_ns
        else 0
      in
      held + spiked
    in
    let delays = List.init copies (fun _ -> extra_delay ()) in
    let survivors =
      if dropped then (match delays with [] | [ _ ] -> [] | _ :: rest -> rest)
      else delays
    in
    { v_delays = survivors; v_dropped = dropped; v_partitioned = false }
  end

let judge t ~src ~dst ~now = (judge_verdict t ~src ~dst ~now).v_delays

let windows t = t.plan.partitions

let describe plan =
  if not (active plan) then "none"
  else
    String.concat ", "
      (List.filter
         (fun s -> s <> "")
         [
           (if plan.drop > 0.0 then Printf.sprintf "drop %.0f%%" (100.0 *. plan.drop) else "");
           (if plan.duplicate > 0.0 then
              Printf.sprintf "dup %.0f%%" (100.0 *. plan.duplicate)
            else "");
           (if plan.reorder > 0.0 then
              Printf.sprintf "reorder %.0f%% (window %d ns)" (100.0 *. plan.reorder)
                plan.reorder_window_ns
            else "");
           (if plan.spike > 0.0 then
              Printf.sprintf "spike %.0f%% (+%d ns)" (100.0 *. plan.spike) plan.spike_ns
            else "");
           (match plan.partitions with
           | [] -> ""
           | ps -> Printf.sprintf "%d partition window(s)" (List.length ps));
         ])
