(** Cost model for the simulated platform (times in nanoseconds).

    Defaults approximate the paper's testbed: 250 MHz DEC Alphas on
    155 Mbit/s ATM. Every constant can be overridden to run what-if
    calibrations; the benchmark harness uses the defaults. *)

type t = {
  instr_ns : float;
  proc_call_ns : float;
  access_check_ns : float;
  msg_latency_ns : int;
  loopback_ns : int;  (** self-delivery delay: protocol stack only, no wire *)
  byte_ns : float;
  fault_ns : int;
  page_copy_word_ns : float;
  diff_word_ns : float;
  bitmap_word_ns : float;
  vv_compare_ns : float;
  notice_setup_ns : float;
  interval_setup_ns : float;
  lock_manager_ns : int;
  jitter_ns : int;
  max_message_bytes : int;
  fragment_overhead_bytes : int;
  page_size : int;
  word_size : int;
  cache_hit_ns : float;
      (** snooping-bus backends: L1 hit, charged on every cached access *)
  bus_arb_ns : float;  (** per-transaction arbitration + address phase *)
  bus_word_ns : float;  (** per-word data transfer on the bus *)
  bus_mem_ns : float;  (** memory access latency behind the bus *)
  bus_c2c_ns : float;  (** cache-to-cache supply latency *)
}

val default : t

val words_per_page : t -> int

val fragments : t -> bytes:int -> int
(** Number of wire fragments a payload needs under the MTU (paper section
    5.3: "current message sizes are already at system maximums"). *)

val wire_bytes : t -> bytes:int -> int
(** Payload plus per-fragment header overhead. *)

val message_ns : t -> bytes:int -> int
(** Wire time of a message of [bytes] payload: one latency (fragments
    pipeline) plus bandwidth over {!wire_bytes}. *)
