(* Binary min-heap keyed by (time, node, seq). The key is a property of
   the *event*, not of heap state at pop time: [time] is the simulated
   instant, [node] is the simulated node the event belongs to, and [seq]
   is the per-queue insertion rank. Events that tie on time order by
   node, then by insertion — so a merged view of several queues (the
   sharded engine) and a single global queue (the legacy engine, which
   pushes everything with the default [node = 0]) both pop in an order
   that does not depend on how execution was scheduled. *)

type 'a entry = { time : int; node : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

(* Filler for unused slots. The heap never reads slots at or beyond
   [size], so the only requirement is that the filler does not keep any
   popped value reachable: its [value] is an immediate, which is safe to
   view at any type (it is never looked at). Without this, a popped
   entry stayed pinned in the vacated tail slot for the life of the
   queue — closures, messages and all. *)
let nil : Obj.t entry = { time = min_int; node = min_int; seq = min_int; value = Obj.repr 0 }

let nil_entry () : 'a entry = Obj.magic nil

let create () = { data = [||]; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

let entry_before a b =
  a.time < b.time
  || (a.time = b.time && (a.node < b.node || (a.node = b.node && a.seq < b.seq)))

let grow t =
  let capacity = max 16 (2 * Array.length t.data) in
  let data = Array.make capacity (nil_entry ()) in
  Array.blit t.data 0 data 0 t.size;
  t.data <- data

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_before t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && entry_before t.data.(left) t.data.(!smallest) then
    smallest := left;
  if right < t.size && entry_before t.data.(right) t.data.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push ?(node = 0) t ~time value =
  let entry = { time; node; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  if t.size = Array.length t.data then grow t;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      t.data.(t.size) <- nil_entry ();
      sift_down t 0
    end
    else t.data.(0) <- nil_entry ();
    Some (top.time, top.value)
  end

let peek_time t = if t.size = 0 then None else Some t.data.(0).time
