(** Reliable transport over a lossy wire — the analogue of the end-to-end
    protocols CVM layered over raw UDP.

    Per directed link: sequence numbers, cumulative acks, retransmission
    with exponential backoff and a retry cap, duplicate suppression, and
    in-order reassembly. The layer above keeps an exactly-once FIFO view
    of the network while the wire below ({!Fault}) drops, duplicates and
    reorders frames.

    The module is wire-agnostic: [wire_send] hands a frame to the lossy
    medium, and the medium calls {!wire_receive} for every copy that
    survives. {!Net} provides both ends. *)

type config = {
  initial_rto_ns : int;  (** first retransmission timeout *)
  max_rto_ns : int;  (** backoff ceiling *)
  max_retries : int;  (** per-frame cap before the link is declared dead *)
  header_bytes : int;  (** per-data-frame transport header on the wire *)
  ack_bytes : int;  (** wire size of a cumulative ack *)
}

val default_config : config

type 'a frame = Data of { seq : int; payload : 'a } | Ack of { cum : int }

type 'a t

val create :
  ?probe:Probe.t ->
  config ->
  Engine.t ->
  Stats.t ->
  nodes:int ->
  wire_send:(src:int -> dst:int -> 'a frame -> unit) ->
  deliver:(src:int -> dst:int -> 'a -> unit) ->
  'a t
(** [wire_send] puts a frame on the (lossy) wire; [deliver] is the
    exactly-once, per-link-FIFO upcall to the layer above. [probe]
    observes retransmissions, cumulative acks and link failures. *)

val send : 'a t -> src:int -> dst:int -> 'a -> unit
(** Enqueue a payload on link (src, dst): assigns the next sequence
    number, transmits, and arms the retransmission timer. On a link that
    already exhausted its retry cap the payload is parked unacked (it
    appears in {!diagnostics}) and nothing is transmitted. *)

val wire_receive : 'a t -> src:int -> dst:int -> 'a frame -> unit
(** Called by the wire for every frame copy that survives fault
    injection, with the frame's own (src, dst). Data frames are
    reassembled in order and acked cumulatively; acks advance the
    reverse link's send window. *)

val frame_bytes : config -> payload_bytes:('a -> int) -> 'a frame -> int
(** Wire size of a frame: payload plus transport header, or the ack size. *)

val unacked : 'a t -> src:int -> dst:int -> int
(** Frames sent on (src, dst) and not yet cumulatively acknowledged. *)

val failed_links : 'a t -> (int * int) list
(** Links that exhausted the retry cap and were abandoned. *)

val diagnostics : 'a t -> string list
(** One line per link with unacked or parked frames — included in the
    engine's {!Engine.Deadlock} diagnosis. *)
