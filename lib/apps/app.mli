(** Common shape of the four benchmark applications, consumed by the
    driver, CLI, benchmarks and tests. *)

type t = {
  name : string;
  input_description : string;  (** Table 1's "Input Set" column *)
  synchronization : string;  (** Table 1's "Synchronization" column *)
  memory_bytes : int;  (** size of the shared data segment *)
  binary : unit -> Instrument.Binary.t;  (** synthetic image for Table 2 *)
  body : Lrc.Dsm.node -> unit;
      (** SPMD body run by every simulated processor; raises on a failed
          self-check so broken coherence can never pass silently *)
}

val pages_needed : t -> page_size:int -> int

val runtime_sections :
  name:string -> library_name:string -> library:int -> cvm:int -> Instrument.Binary.instruction list
(** Flat library and CVM-runtime sections with the usual ~3:1
    load:store mix. *)

val fp_gp_ops : name:string -> stack:int -> static_data:int -> Instrument.Ir.op list
(** Frame-pointer and global-pointer accesses for an application-text
    CFG, again split ~3:1. *)
