(* Name-indexed access to the four applications, at paper scale, at the
   reduced test scale, and at the enlarged bench tier. *)

type scale = Paper | Small | Large

let scale_name = function Paper -> "paper" | Small -> "small" | Large -> "large"

let scale_of_name = function
  | "paper" -> Paper
  | "small" -> Small
  | "large" -> Large
  | other -> invalid_arg (Printf.sprintf "Registry.scale_of_name: unknown scale %S" other)

let all_names = [ "fft"; "sor"; "tsp"; "water" ]

(* the paper's four plus the extra workloads this library ships *)
let extended_names = all_names @ [ "lu" ]

let make ?(scale = Paper) name =
  match (String.lowercase_ascii name, scale) with
  | "fft", Paper -> Fft.make Fft.paper_params
  | "fft", Small -> Fft.make Fft.small_params
  | "fft", Large -> Fft.make Fft.large_params
  | "sor", Paper -> Sor.make Sor.paper_params
  | "sor", Small -> Sor.make Sor.small_params
  | "sor", Large -> Sor.make Sor.large_params
  | "tsp", Paper | "tsp", Large -> Tsp.make Tsp.paper_params
  | "tsp", Small -> Tsp.make Tsp.small_params
  | "water", Paper -> Water.make Water.paper_params
  | "water", Small -> Water.make Water.small_params
  | "water", Large -> Water.make Water.large_params
  | "lu", Paper | "lu", Large -> Lu.make Lu.paper_params
  | "lu", Small -> Lu.make Lu.small_params
  | other, _ -> invalid_arg (Printf.sprintf "Registry.make: unknown application %S" other)

let all ?scale () = List.map (make ?scale) all_names
