(** Water — simplified Water-Nsquared (Splash2): N three-site molecules in
    padded 512-byte structs, pairwise site-site forces accumulated under
    molecule-group locks, barriers between phases.

    With [inject_bug] (the default, matching the shipped benchmark) the
    global potential-energy accumulator is updated WITHOUT its lock —
    the write-write-race class of defect the paper found and reported.
    The detector must flag exactly the accumulator word; the fixed
    version must be race-free. *)

type params = {
  nmols : int;
  steps : int;
  mols_per_lock : int;  (** force-merge lock granularity *)
  inject_bug : bool;
}

val paper_params : params
(** 216 molecules, 5 steps (the evaluation's input), bug present. *)

val small_params : params

val large_params : params
(** 512 molecules, 5 steps: the benchmark pipeline's headroom tier. *)

type reference_result = { positions : (float * float * float) array array; potential : float }

val reference : params -> reference_result
(** Sequential reference; parallel positions match within floating-point
    reassociation tolerance. *)

val sites : int

val initial_site : int -> int -> int -> (float * float * float)
(** [initial_site nmols mol site] — deterministic initial position. *)

val site_interaction :
  float * float * float -> float * float * float -> (float * float * float) * float
(** Force on the first site from the second, plus the pair's potential
    contribution. *)

val lock_global : int
val lock_group : int -> int

val make : params -> App.t
