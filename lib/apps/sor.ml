(* SOR — Jacobi relaxation over a 2-D grid, red/black style with two grids
   and a barrier per sweep. The paper's race-free, barrier-only workload:
   the only cross-processor sharing is reads of the neighbour rows at
   partition boundaries, which is pure false sharing at page granularity
   and must produce zero race reports.

   Each processor owns a contiguous band of rows. Every sweep it reads the
   four neighbours of each interior point from the current grid and writes
   the next grid, then everyone crosses a barrier and the grids swap. The
   final grid is checked point-for-point against a sequential reference
   (identical floating-point operations, so the comparison is exact). *)

type params = { rows : int; cols : int; iters : int }

let paper_params = { rows = 512; cols = 512; iters = 5 }
let small_params = { rows = 24; cols = 16; iters = 4 }
let large_params = { rows = 1024; cols = 1024; iters = 5 }

let boundary_value ~row ~col ~rows ~cols =
  (* fixed temperature on the top edge, cold elsewhere *)
  if row = 0 then 1.0 +. (float_of_int col /. float_of_int cols)
  else if row = rows - 1 || col = 0 || col = cols - 1 then 0.0
  else 0.0

let reference { rows; cols; iters } =
  let grid = Array.init 2 (fun _ -> Array.make_matrix rows cols 0.0) in
  for row = 0 to rows - 1 do
    for col = 0 to cols - 1 do
      let v = boundary_value ~row ~col ~rows ~cols in
      grid.(0).(row).(col) <- v;
      grid.(1).(row).(col) <- v
    done
  done;
  let cur = ref 0 in
  for _ = 1 to iters do
    let src = grid.(!cur) and dst = grid.(1 - !cur) in
    for row = 1 to rows - 2 do
      for col = 1 to cols - 2 do
        dst.(row).(col) <-
          0.25 *. (src.(row - 1).(col) +. src.(row + 1).(col)
                  +. src.(row).(col - 1) +. src.(row).(col + 1))
      done
    done;
    cur := 1 - !cur
  done;
  grid.(!cur)

let memory_bytes { rows; cols; _ } = 2 * rows * cols * 8

let binary () =
  (* Synthetic image with the paper's SOR section counts (Table 2). The
     application text is a CFG mirroring the body below: two dsm_malloc
     grids, a private scratch row, an init phase, the sweep loop (reads
     of the four neighbours from the current grid, write to the next)
     and the final self-check — the data-flow pass derives which
     accesses survive instrumentation. Neighbour rows are a page apart
     (512-double rows); west/east share the row page, so their checks
     batch onto the row's first check. *)
  let open Instrument.Ir in
  let grid0 = 0 and grid1 = 1 and scratch = 2 and row = 3 in
  let page = 4096 in
  let entry =
    block "entry"
      (App.fp_gp_ops ~name:"sor" ~stack:342 ~static_data:1304
      @ [
          malloc_shared ~dst:grid0 "sor.grid0";
          malloc_shared ~dst:grid1 "sor.grid1";
          malloc_private ~dst:scratch "sor.scratch";
        ])
      ~succs:[ "init" ]
  in
  let init =
    block "init"
      [
        store (Reg grid0) ~stride:page ~count:10 ~site:"sor:init";
        store (Reg grid1) ~stride:page ~count:10 ~site:"sor:init";
        store (Reg scratch) ~count:4 ~site:"sor:init_scratch";
        barrier;
      ]
      ~succs:[ "sweep" ]
  in
  let sweep =
    block "sweep"
      [
        lea ~dst:row (Reg grid0) ~offset:page;
        load (Reg grid0) ~offset:0 ~stride:page ~count:20 ~site:"sor:north";
        load (Reg grid0) ~offset:(2 * page) ~stride:page ~count:20 ~site:"sor:south";
        load (Reg row) ~offset:0 ~stride:page ~count:20 ~site:"sor:west";
        load (Reg row) ~offset:16 ~stride:page ~count:20 ~site:"sor:east";
        load (Reg scratch) ~count:10 ~site:"sor:scratch";
        store (Reg scratch) ~count:10 ~site:"sor:scratch";
        store (Reg grid1) ~offset:page ~stride:page ~count:16 ~site:"sor:update";
        barrier;
      ]
      ~succs:[ "sweep"; "check" ]
  in
  let check =
    block "check" [ load (Reg grid0) ~stride:page ~count:10 ~site:"sor:check"; barrier ]
  in
  Instrument.Binary.make ~name:"sor"
    ~procs:[ proc ~name:"sor_main" ~entry:"entry" [ entry; init; sweep; check ] ]
    (App.runtime_sections ~name:"sor" ~library_name:"libc" ~library:48717 ~cvm:3910)

let band ~rows ~nprocs ~pid =
  (* contiguous rows [lo, hi) owned by processor [pid] *)
  let per = (rows + nprocs - 1) / nprocs in
  let lo = min rows (pid * per) and hi = min rows ((pid + 1) * per) in
  (lo, hi)

let body ({ rows; cols; iters } as params) node =
  let open Lrc.Dsm in
  let nprocs = nprocs node and pid = pid node in
  let grid0 = malloc node (rows * cols * 8) ~name:"sor.grid0" in
  let grid1 = malloc node (rows * cols * 8) ~name:"sor.grid1" in
  let grids = [| grid0; grid1 |] in
  let index row col = (row * cols) + col in
  let lo, hi = band ~rows ~nprocs ~pid in
  (* initialization: first touch by the owning processor *)
  for row = lo to hi - 1 do
    for col = 0 to cols - 1 do
      let v = boundary_value ~row ~col ~rows ~cols in
      write_float_at node grids.(0) (index row col) v;
      write_float_at node grids.(1) (index row col) v;
      touch_private node 2
    done
  done;
  barrier node;
  let cur = ref 0 in
  for _ = 1 to iters do
    let src = grids.(!cur) and dst = grids.(1 - !cur) in
    for row = max 1 lo to min (rows - 2) (hi - 1) do
      for col = 1 to cols - 2 do
        let north = read_float_at node src (index (row - 1) col) ~site:"sor:north" in
        let south = read_float_at node src (index (row + 1) col) ~site:"sor:south" in
        let west = read_float_at node src (index row (col - 1)) ~site:"sor:west" in
        let east = read_float_at node src (index row (col + 1)) ~site:"sor:east" in
        write_float_at node dst (index row col) (0.25 *. (north +. south +. west +. east))
          ~site:"sor:update";
        touch_private node 1;
        compute node 52.0
      done
    done;
    barrier node;
    cur := 1 - !cur
  done;
  (* self-check at processor 0: exact match with the sequential reference *)
  if pid = 0 then begin
    let expected = reference params in
    for row = 0 to rows - 1 do
      for col = 0 to cols - 1 do
        let got = read_float_at node grids.(!cur) (index row col) in
        if got <> expected.(row).(col) then
          failwith
            (Printf.sprintf "sor: mismatch at (%d,%d): got %g want %g" row col got
               expected.(row).(col))
      done
    done
  end;
  barrier node

let make params =
  {
    App.name = "SOR";
    input_description = Printf.sprintf "%dx%d" params.rows params.cols;
    synchronization = "barrier";
    memory_bytes = memory_bytes params;
    binary;
    body = body params;
  }
