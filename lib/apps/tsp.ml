(* TSP — branch-and-bound travelling salesman, the paper's lock-based
   workload with deliberate data races.

   Shared state: the distance matrix (read-only after initialization), a
   stack of partial tours protected by a queue lock, the global best bound
   and best tour protected by a bound lock, and an in-flight counter for
   termination. Workers pop a partial tour, expand it breadth-first into
   the shared queue until few enough cities remain, then solve the
   remainder with a private depth-first search. Pruning uses the classic
   lower bound (path cost + cheapest continuation edge per remaining
   city), computed from a read-only snapshot of the matrix.

   The deliberate race: pruning reads the global bound WITHOUT taking the
   bound lock (site "tsp:bound_prune"), exactly as in the original
   application — a stale bound only costs redundant work, never
   correctness, because every candidate tour is re-checked under the lock
   before the bound is updated. The detector must report read-write races
   on the bound word and nothing else.

   The paper ran 19 cities; the default here is 16 to keep simulated
   branch-and-bound trees to a few million nodes (see EXPERIMENTS.md) —
   19 remains available through the CLI. *)

type params = { ncities : int; seed : int; dfs_threshold : int }

let paper_params = { ncities = 16; seed = 10; dfs_threshold = 13 }
let small_params = { ncities = 10; seed = 7; dfs_threshold = 7 }

let lock_queue = 0
let lock_bound = 1

let queue_capacity = 4096

let distances { ncities; seed; _ } =
  (* deterministic pseudo-random city coordinates on a 1000x1000 grid *)
  let rng = Sim.Rng.create ~seed in
  let xs = Array.init ncities (fun _ -> Sim.Rng.int rng 1000) in
  let ys = Array.init ncities (fun _ -> Sim.Rng.int rng 1000) in
  Array.init ncities (fun i ->
      Array.init ncities (fun j ->
          let dx = float_of_int (xs.(i) - xs.(j)) and dy = float_of_int (ys.(i) - ys.(j)) in
          int_of_float (Float.round (sqrt ((dx *. dx) +. (dy *. dy))))))

let nearest_neighbour_bound dist =
  let n = Array.length dist in
  let visited = Array.make n false in
  visited.(0) <- true;
  let cost = ref 0 and current = ref 0 in
  for _ = 1 to n - 1 do
    let best = ref (-1) in
    for c = 0 to n - 1 do
      if (not visited.(c)) && (!best < 0 || dist.(!current).(c) < dist.(!current).(!best))
      then best := c
    done;
    cost := !cost + dist.(!current).(!best);
    visited.(!best) <- true;
    current := !best
  done;
  !cost + dist.(!current).(0)

(* Lower bound for a partial tour: cost so far, plus the cheapest edge out
   of the current city into the unvisited set, plus for every unvisited
   city its cheapest edge into (unvisited \ itself) or back home.

   This runs on every node of a multi-million-node search tree, so the
   minimisations use a precomputed context: the matrix flattened to one
   int array and, per city, its neighbours ranked by ascending distance.
   "Cheapest edge into the allowed set" is then the first allowed city in
   the ranked row — the same minimum value as a full row scan, found in a
   handful of loads. The bound VALUE is identical to the naive
   formulation, so the search tree (and with it every simulated access)
   is unchanged. *)
type bound_ctx = { n : int; flat : int array; ranked : int array array }

let bound_ctx dist =
  let n = Array.length dist in
  let flat = Array.make (n * n) 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      flat.((i * n) + j) <- dist.(i).(j)
    done
  done;
  let ranked =
    Array.init n (fun u ->
        let order = Array.init n (fun v -> v) in
        Array.sort (fun a b -> compare dist.(u).(a) dist.(u).(b)) order;
        order)
  in
  { n; flat; ranked }

(* Distance from [row]'s city to its nearest city that is neither
   [skip] nor visited; [max_int] if no such city remains. *)
let nearest_allowed ctx row base visited ~skip =
  let n = ctx.n and flat = ctx.flat in
  let k = ref 0 and m = ref max_int in
  while !m = max_int && !k < n do
    let v = Array.unsafe_get row !k in
    if v <> skip && not (Array.unsafe_get visited v) then
      m := Array.unsafe_get flat (base + v);
    incr k
  done;
  !m

let lower_bound ctx visited ~current ~cost =
  let n = ctx.n and flat = ctx.flat and ranked = ctx.ranked in
  let lb = ref cost in
  let any = ref false in
  for u = 0 to n - 1 do
    if not (Array.unsafe_get visited u) then begin
      any := true;
      let base = u * n in
      let nearest = nearest_allowed ctx (Array.unsafe_get ranked u) base visited ~skip:u in
      let home = Array.unsafe_get flat base (* dist u 0 *) in
      lb := !lb + if nearest < home then nearest else home
    end
  done;
  if !any then
    (* [current] is visited, so it skips itself in its own ranked row *)
    !lb
    + nearest_allowed ctx (Array.unsafe_get ranked current) (current * n) visited ~skip:current
  else !lb + Array.unsafe_get flat (current * n)

(* Sequential reference: plain branch-and-bound over the same instance
   with the same lower bound. *)
let reference params =
  let dist = distances params in
  let n = Array.length dist in
  let ctx = bound_ctx dist in
  let best = ref (nearest_neighbour_bound dist) in
  let visited = Array.make n false in
  visited.(0) <- true;
  let rec go current depth cost =
    if lower_bound ctx visited ~current ~cost < !best then
      if depth = n then begin
        let tour = cost + dist.(current).(0) in
        if tour < !best then best := tour
      end
      else
        for c = 0 to n - 1 do
          if not visited.(c) then begin
            visited.(c) <- true;
            go c (depth + 1) (cost + dist.(current).(c));
            visited.(c) <- false
          end
        done
  in
  go 0 1 0;
  !best

let memory_bytes { ncities; _ } =
  (ncities * ncities * 8) + (queue_capacity * (ncities + 2) * 8) + 64

let binary () =
  (* Synthetic image with the paper's TSP section counts (Table 2). The
     CFG mirrors the worker loop below: pop under the queue lock, expand
     against the read-only matrix, push children under the queue lock,
     prune against an UNLOCKED read of the global bound, and update the
     bound under its lock. The unlocked prune read is the deliberate
     benign race — the lint must flag "tsp:bound_prune" against
     "tsp:bound_update" and nothing else. The private depth-first state
     (dfs arena, visited bitmap on the stack via a computed register) is
     what the data-flow pass proves private. *)
  let open Instrument.Ir in
  let matrix = 0 and queue = 1 and bound = 2 and inflight = 3 in
  let best = 4 and dfs = 5 and visited = 6 in
  let page = 4096 in
  let entry =
    block "entry"
      (App.fp_gp_ops ~name:"tsp" ~stack:244 ~static_data:1213
      @ [
          malloc_shared ~dst:matrix "tsp.matrix";
          malloc_shared ~dst:queue "tsp.queue";
          malloc_shared ~dst:bound "tsp.bound";
          malloc_shared ~dst:inflight "tsp.in_flight";
          malloc_shared ~dst:best "tsp.best_tour";
          malloc_private ~dst:dfs "tsp.dfs";
          lea ~dst:visited (Fp 16);
        ])
      ~succs:[ "init" ]
  in
  let init =
    block "init"
      [
        store (Reg matrix) ~stride:page ~count:40 ~site:"tsp:dist_init";
        store (Reg queue) ~stride:8 ~count:10 ~site:"tsp:queue_init";
        store (Reg bound) ~stride:8 ~count:2 ~site:"tsp:bound_init";
        barrier;
      ]
      ~succs:[ "loop" ]
  in
  let loop =
    block "loop"
      [
        acquire lock_queue;
        load (Reg queue) ~stride:8 ~count:20 ~site:"tsp:queue_pop";
        store (Reg queue) ~stride:8 ~count:10 ~site:"tsp:queue_top";
        load (Reg inflight) ~count:4 ~site:"tsp:in_flight";
        store (Reg inflight) ~count:4 ~site:"tsp:in_flight";
        release lock_queue;
      ]
      ~succs:[ "expand"; "done" ]
  in
  let expand =
    block "expand"
      [
        load (Reg matrix) ~stride:page ~count:80 ~site:"tsp:dist_read";
        load (Reg matrix) ~stride:page ~count:100 ~site:"tsp:lb";
        acquire lock_queue;
        store (Reg queue) ~stride:8 ~count:40 ~site:"tsp:queue_push";
        release lock_queue;
      ]
      ~succs:[ "prune" ]
  in
  let prune =
    block "prune"
      [
        load (Reg bound) ~count:4 ~site:"tsp:bound_prune";
        load (Reg dfs) ~count:20 ~site:"tsp:dfs";
        store (Reg dfs) ~count:12 ~site:"tsp:dfs";
        load (Reg visited) ~count:8 ~site:"tsp:visited";
        store (Reg visited) ~count:8 ~site:"tsp:visited";
      ]
      ~succs:[ "update"; "loop" ]
  in
  let update =
    block "update"
      [
        acquire lock_bound;
        load (Reg bound) ~count:4 ~site:"tsp:bound_check";
        store (Reg bound) ~count:2 ~site:"tsp:bound_update";
        store (Reg best) ~stride:8 ~count:20 ~site:"tsp:best_tour";
        release lock_bound;
      ]
      ~succs:[ "loop" ]
  in
  let done_ =
    block "done" [ barrier; load (Reg bound) ~count:10 ~site:"tsp:report" ]
  in
  Instrument.Binary.make ~name:"tsp"
    ~procs:
      [ proc ~name:"tsp_main" ~entry:"entry" [ entry; init; loop; expand; prune; update; done_ ] ]
    (App.runtime_sections ~name:"tsp" ~library_name:"libc" ~library:48717 ~cvm:3910)

type layout = {
  matrix : int;  (* ncities^2 ints *)
  queue_base : int;  (* queue_capacity records of (cost, depth, path...) *)
  queue_top : int;  (* stack pointer *)
  in_flight : int;  (* tasks popped but not fully expanded *)
  bound : int;  (* global best tour cost — read without the lock! *)
  best_tour : int;  (* ncities ints, protected by the bound lock *)
  record_words : int;
}

let layout node params =
  let record_words = params.ncities + 2 in
  let matrix = Lrc.Dsm.malloc node (params.ncities * params.ncities * 8) ~name:"tsp.distance_matrix" in
  let queue_base = Lrc.Dsm.malloc node (queue_capacity * record_words * 8) ~name:"tsp.queue" in
  let queue_top = Lrc.Dsm.malloc node 8 ~name:"tsp.queue_top" in
  let in_flight = Lrc.Dsm.malloc node 8 ~name:"tsp.in_flight" in
  let bound = Lrc.Dsm.malloc node 8 ~name:"tsp.bound" in
  let best_tour = Lrc.Dsm.malloc node (params.ncities * 8) ~name:"tsp.best_tour" in
  { matrix; queue_base; queue_top; in_flight; bound; best_tour; record_words }

let body params node =
  let open Lrc.Dsm in
  let n = params.ncities in
  let lay = layout node params in
  let dist_addr i j = lay.matrix + (((i * n) + j) * 8) in
  let read_dist i j = read_int node (dist_addr i j) ~site:"tsp:dist" in
  (* unsynchronized read of the global bound: the deliberate benign race *)
  let read_bound_racy () = read_int node lay.bound ~site:"tsp:bound_prune" in
  let record_addr slot = lay.queue_base + (slot * lay.record_words * 8) in
  let push_task ~cost ~depth ~path =
    (* caller holds the queue lock *)
    let top = read_int node lay.queue_top ~site:"tsp:queue_top" in
    if top >= queue_capacity then false
    else begin
      let base = record_addr top in
      write_int node base cost ~site:"tsp:queue_cost";
      write_int node (base + 8) depth ~site:"tsp:queue_depth";
      Array.iteri
        (fun k city -> write_int node (base + 16 + (k * 8)) city ~site:"tsp:queue_path")
        path;
      write_int node lay.queue_top (top + 1) ~site:"tsp:queue_top";
      true
    end
  in
  let pop_task () =
    (* caller holds the queue lock; returns (cost, depth, path) *)
    let top = read_int node lay.queue_top ~site:"tsp:queue_top" in
    if top = 0 then None
    else begin
      let base = record_addr (top - 1) in
      write_int node lay.queue_top (top - 1) ~site:"tsp:queue_top";
      let cost = read_int node base ~site:"tsp:queue_cost" in
      let depth = read_int node (base + 8) ~site:"tsp:queue_depth" in
      let path =
        Array.init depth (fun k -> read_int node (base + 16 + (k * 8)) ~site:"tsp:queue_path")
      in
      Some (cost, depth, path)
    end
  in
  let update_bound ~cost ~path =
    with_lock node lock_bound (fun () ->
        let best = read_int node lay.bound ~site:"tsp:bound_locked" in
        if cost < best then begin
          write_int node lay.bound cost ~site:"tsp:bound_update";
          Array.iteri
            (fun k city -> write_int node (lay.best_tour + (k * 8)) city ~site:"tsp:best_tour")
            path
        end)
  in
  (* read-only snapshot of the distance matrix used by the bound
     computation (the matrix itself never changes after initialization) *)
  let snapshot_matrix () =
    Array.init n (fun i -> Array.init n (fun j -> read_dist i j))
  in
  (* private exhaustive search below the threshold *)
  let solve_leaf ctx ~cost ~path =
    let visited = Array.make n false in
    Array.iter (fun c -> visited.(c) <- true) path;
    let order = Array.make n 0 in
    Array.blit path 0 order 0 (Array.length path);
    let rec go current depth cost =
      touch_private node (((n - depth) / 2) + 2);
      compute node (float_of_int (25 * (n - depth + 2)));
      if lower_bound ctx visited ~current ~cost < read_bound_racy () then
        if depth = n then begin
          let tour = cost + read_dist current path.(0) in
          if tour < read_bound_racy () then update_bound ~cost:tour ~path:(Array.copy order)
        end
        else
          for c = 0 to n - 1 do
            if not visited.(c) then begin
              visited.(c) <- true;
              order.(depth) <- c;
              go c (depth + 1) (cost + read_dist current c);
              visited.(c) <- false
            end
          done
    in
    go path.(Array.length path - 1) (Array.length path) cost
  in
  let expand ctx ~cost ~depth ~path =
    (* one level of breadth-first expansion: all surviving children are
       pushed under a single queue-lock acquisition *)
    let current = path.(depth - 1) in
    let visited = Array.make n false in
    Array.iter (fun c -> visited.(c) <- true) path;
    let children = ref [] in
    for c = 0 to n - 1 do
      if not visited.(c) then begin
        let next_cost = cost + read_dist current c in
        touch_private node n;
        compute node (float_of_int (6 * n));
        visited.(c) <- true;
        if lower_bound ctx visited ~current:c ~cost:next_cost < read_bound_racy ()
        then children := (next_cost, Array.append path [| c |]) :: !children;
        visited.(c) <- false
      end
    done;
    let overflow =
      with_lock node lock_queue (fun () ->
          List.filter
            (fun (next_cost, next_path) ->
              not (push_task ~cost:next_cost ~depth:(depth + 1) ~path:next_path))
            !children)
    in
    (* a full queue degrades gracefully: solve overflowing subtrees inline *)
    List.iter (fun (next_cost, next_path) -> solve_leaf ctx ~cost:next_cost ~path:next_path)
      overflow
  in
  (* initialization at processor 0 *)
  if pid node = 0 then begin
    let dist = distances params in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        write_int node (dist_addr i j) dist.(i).(j) ~site:"tsp:init"
      done
    done;
    write_int node lay.bound (nearest_neighbour_bound dist) ~site:"tsp:init";
    write_int node lay.queue_top 0 ~site:"tsp:init";
    write_int node lay.in_flight 0 ~site:"tsp:init";
    ignore (with_lock node lock_queue (fun () -> push_task ~cost:0 ~depth:1 ~path:[| 0 |]))
  end;
  barrier node;
  let ctx = bound_ctx (snapshot_matrix ()) in
  (* work loop; empty-queue polling backs off exponentially so idle
     processors do not flood the epoch with retry intervals *)
  let finished = ref false in
  let backoff = ref 50_000.0 in
  while not !finished do
    let task =
      with_lock node lock_queue (fun () ->
          match pop_task () with
          | Some t ->
              let f = read_int node lay.in_flight ~site:"tsp:in_flight" in
              write_int node lay.in_flight (f + 1) ~site:"tsp:in_flight";
              `Task t
          | None ->
              let f = read_int node lay.in_flight ~site:"tsp:in_flight" in
              if f = 0 then `Done else `Retry)
    in
    match task with
    | `Done -> finished := true
    | `Retry ->
        compute node (!backoff /. 4.0) (* cost-model instructions while polling *);
        backoff := Float.min (!backoff *. 2.0) 4_000_000.0
    | `Task (cost, depth, path) ->
        backoff := 50_000.0;
        if n - depth <= params.dfs_threshold then solve_leaf ctx ~cost ~path
        else expand ctx ~cost ~depth ~path;
        with_lock node lock_queue (fun () ->
            let f = read_int node lay.in_flight ~site:"tsp:in_flight" in
            write_int node lay.in_flight (f - 1) ~site:"tsp:in_flight")
  done;
  barrier node;
  (* self-check at processor 0 against the sequential reference *)
  if pid node = 0 then begin
    let got = read_int node lay.bound ~site:"tsp:check" in
    let want = reference params in
    if got <> want then failwith (Printf.sprintf "tsp: best tour %d, reference %d" got want)
  end;
  barrier node

let make params =
  {
    App.name = "TSP";
    input_description = Printf.sprintf "%d cities" params.ncities;
    synchronization = "lock";
    memory_bytes = memory_bytes params;
    binary;
    body = body params;
  }
