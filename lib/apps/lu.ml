(* LU — dense LU factorization without pivoting, a classic software-DSM
   workload of the era (TreadMarks, Splash2). Not part of the paper's
   evaluation; included as a fifth race-free workload for the detector.

   Columns are partitioned cyclically. At step k the owner of column k
   computes the multipliers below the diagonal, everyone crosses a
   barrier, and each processor folds the rank-1 update into its own
   columns. All cross-processor sharing is reads of the pivot column and
   row; every write goes to the writer's own columns. The detector must
   stay silent, and the result is compared element-for-element against a
   sequential factorization with the same operation order (bit-exact). *)

type params = { n : int }

let paper_params = { n = 96 }
let small_params = { n = 16 }

(* Deterministic, diagonally dominant input (no pivoting needed). *)
let input n i j =
  let base = sin (float_of_int ((i * 31) + j)) +. cos (float_of_int ((j * 17) - i)) in
  if i = j then base +. (2.0 *. float_of_int n) else base

let reference { n } =
  let a = Array.init n (fun i -> Array.init n (input n i)) in
  for k = 0 to n - 1 do
    for i = k + 1 to n - 1 do
      a.(i).(k) <- a.(i).(k) /. a.(k).(k)
    done;
    for j = k + 1 to n - 1 do
      for i = k + 1 to n - 1 do
        a.(i).(j) <- a.(i).(j) -. (a.(i).(k) *. a.(k).(j))
      done
    done
  done;
  a

let memory_bytes { n } = n * n * 8

let binary () =
  (* No Table 2 row exists for LU; SOR-like section magnitudes. The CFG
     mirrors the body: multiplier computation in the pivot column, a
     barrier, then the rank-1 update of the trailing columns with a
     private workspace for the multiplier row. *)
  let open Instrument.Ir in
  let matrix = 0 and work = 1 in
  let page = 4096 in
  let entry =
    block "entry"
      (App.fp_gp_ops ~name:"lu" ~stack:410 ~static_data:1380
      @ [ malloc_shared ~dst:matrix "lu.matrix"; malloc_private ~dst:work "lu.work" ])
      ~succs:[ "init" ]
  in
  let init =
    block "init"
      [ store (Reg matrix) ~stride:page ~count:30 ~site:"lu:init"; barrier ]
      ~succs:[ "factor" ]
  in
  let factor =
    block "factor"
      [
        load (Reg matrix) ~stride:8 ~count:40 ~site:"lu:pivot";
        store (Reg matrix) ~stride:8 ~count:20 ~site:"lu:mult";
        barrier;
      ]
      ~succs:[ "update" ]
  in
  let update =
    block "update"
      [
        load (Reg matrix) ~stride:page ~count:30 ~site:"lu:col";
        store (Reg matrix) ~stride:page ~count:50 ~site:"lu:update";
        load (Reg work) ~count:20 ~site:"lu:work";
        store (Reg work) ~count:20 ~site:"lu:work";
        barrier;
      ]
      ~succs:[ "factor"; "check" ]
  in
  let check = block "check" [ load (Reg matrix) ~stride:page ~count:20 ~site:"lu:check" ] in
  Instrument.Binary.make ~name:"lu"
    ~procs:[ proc ~name:"lu_main" ~entry:"entry" [ entry; init; factor; update; check ] ]
    (App.runtime_sections ~name:"lu" ~library_name:"libm" ~library:52000 ~cvm:3910)

let body ({ n } as params) node =
  let open Lrc.Dsm in
  let nprocs = nprocs node and pid = pid node in
  let a = malloc node (n * n * 8) ~name:"lu.matrix" in
  let index i j = (i * n) + j in
  let owner j = j mod nprocs in
  (* initialization: own columns *)
  for j = 0 to n - 1 do
    if owner j = pid then
      for i = 0 to n - 1 do
        write_float_at node a (index i j) (input n i j) ~site:"lu:init";
        touch_private node 1
      done
  done;
  barrier node;
  for k = 0 to n - 1 do
    (* the pivot column's owner computes the multipliers *)
    if owner k = pid then begin
      let pivot = read_float_at node a (index k k) ~site:"lu:pivot" in
      for i = k + 1 to n - 1 do
        let v = read_float_at node a (index i k) ~site:"lu:mult" in
        write_float_at node a (index i k) (v /. pivot) ~site:"lu:mult";
        touch_private node 1;
        compute node 12.0
      done
    end;
    barrier node;
    (* rank-1 update of own trailing columns *)
    for j = k + 1 to n - 1 do
      if owner j = pid then begin
        let akj = read_float_at node a (index k j) ~site:"lu:row" in
        for i = k + 1 to n - 1 do
          let lik = read_float_at node a (index i k) ~site:"lu:col" in
          let v = read_float_at node a (index i j) ~site:"lu:update" in
          write_float_at node a (index i j) (v -. (lik *. akj)) ~site:"lu:update";
          touch_private node 2;
          compute node 10.0
        done
      end
    done;
    barrier node
  done;
  (* self-check at processor 0: bit-exact against the reference *)
  if pid = 0 then begin
    let expected = reference params in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let got = read_float_at node a (index i j) in
        if got <> expected.(i).(j) then
          failwith (Printf.sprintf "lu: mismatch at (%d,%d): %g vs %g" i j got expected.(i).(j))
      done
    done
  end;
  barrier node

let make params =
  {
    App.name = "LU";
    input_description = Printf.sprintf "%dx%d" params.n params.n;
    synchronization = "barrier";
    memory_bytes = memory_bytes params;
    binary;
    body = body params;
  }
