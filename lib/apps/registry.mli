(** Name-indexed access to the four applications. *)

type scale =
  | Paper  (** the evaluation's input sizes (minutes of simulation) *)
  | Small  (** reduced inputs for tests and quick demos (seconds) *)
  | Large
      (** enlarged inputs for SOR/FFT/Water, used by the benchmark
          pipeline's headroom sweep; TSP and LU fall back to [Paper]
          (their inputs already dominate their runtimes) *)

val scale_name : scale -> string
(** ["paper"], ["small"] or ["large"] — the stable spelling used by
    serialized task descriptions and CLI flags. *)

val scale_of_name : string -> scale
(** Inverse of {!scale_name}; raises [Invalid_argument] otherwise. *)

val all_names : string list
(** The paper's four: ["fft"; "sor"; "tsp"; "water"]. The evaluation
    harness sweeps exactly these. *)

val extended_names : string list
(** [all_names] plus the extra workloads this library ships ("lu"). *)

val make : ?scale:scale -> string -> App.t
(** Raises [Invalid_argument] on an unknown name. *)

val all : ?scale:scale -> unit -> App.t list
