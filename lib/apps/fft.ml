(* FFT — a 3-D complex Fast Fourier Transform over shared memory, the
   paper's second barrier-only workload.

   The n1 x n2 x n3 complex grid lives in the shared segment (interleaved
   re/im words). Planes along dimension 1 are block-partitioned over the
   processors. As in the Splash2 kernel, the transform avoids concurrent
   writers entirely (important under a single-writer protocol):

     phase 1: each processor FFTs dimensions 3 and 2 inside its own planes;
     phase 2: blocked transpose (i1 <-> i2) into a second shared array —
              every processor READS other processors' planes but WRITES
              only its own target planes;
     phase 3: FFT along the old dimension 1, now plane-local;
     phase 4: transpose back.

   The inverse transform repeats the four phases with conjugate twiddles,
   and the body checks the round trip against the deterministic input, so
   coherence bugs surface as a failed self-check. Cross-processor sharing
   is the transpose reads — page-granularity false sharing with zero
   races, which is what FFT contributes to Table 3. *)

type params = { n1 : int; n2 : int; n3 : int }

let paper_params = { n1 = 64; n2 = 64; n3 = 16 }
let small_params = { n1 = 8; n2 = 4; n3 = 4 }
let large_params = { n1 = 128; n2 = 64; n3 = 32 }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let total { n1; n2; n3 } = n1 * n2 * n3

let memory_bytes params = 2 * 2 * total params * 8 (* data + transpose buffer *)

let binary () =
  (* Synthetic image with the paper's FFT section counts (Table 2). The
     CFG mirrors the ping-pong structure of the body: each phase reads
     one shared grid and writes the other (never both), with the
     butterflies running in a private workspace — those computed
     accesses are what the data-flow pass proves private. Re/im words
     interleave, so every im access batches onto its re check. *)
  let open Instrument.Ir in
  let data = 0 and trans = 1 and work = 2 and twiddle = 3 in
  let page = 4096 in
  let entry =
    block "entry"
      (App.fp_gp_ops ~name:"fft" ~stack:1285 ~static_data:1496
      @ [
          malloc_shared ~dst:data "fft.data";
          malloc_shared ~dst:trans "fft.trans";
          malloc_private ~dst:work "fft.work";
          lea ~dst:twiddle (Reg work) ~offset:512;
        ])
      ~succs:[ "init" ]
  in
  let init =
    block "init"
      [
        store (Reg data) ~offset:0 ~stride:page ~count:12 ~site:"fft:init_re";
        store (Reg data) ~offset:8 ~stride:page ~count:12 ~site:"fft:init_im";
        barrier;
      ]
      ~succs:[ "phase1" ]
  in
  let phase1 =
    block "phase1"
      [
        load (Reg data) ~offset:0 ~stride:page ~count:32 ~site:"fft:load_plane_re";
        load (Reg data) ~offset:8 ~stride:page ~count:32 ~site:"fft:load_plane_im";
        store (Reg work) ~count:20 ~site:"fft:butterfly";
        load (Reg work) ~count:20 ~site:"fft:butterfly";
        load (Reg twiddle) ~count:10 ~site:"fft:twiddle";
        store (Reg trans) ~offset:0 ~stride:page ~count:23 ~site:"fft:store_trans_re";
        store (Reg trans) ~offset:8 ~stride:page ~count:22 ~site:"fft:store_trans_im";
        barrier;
      ]
      ~succs:[ "phase2" ]
  in
  let phase2 =
    block "phase2"
      [
        load (Reg trans) ~offset:0 ~stride:page ~count:32 ~site:"fft:load_trans_re";
        load (Reg trans) ~offset:8 ~stride:page ~count:32 ~site:"fft:load_trans_im";
        store (Reg work) ~count:10 ~site:"fft:butterfly2";
        load (Reg work) ~count:10 ~site:"fft:butterfly2";
        store (Reg data) ~offset:0 ~stride:page ~count:25 ~site:"fft:store_back_re";
        store (Reg data) ~offset:8 ~stride:page ~count:25 ~site:"fft:store_back_im";
        barrier;
      ]
      ~succs:[ "phase1"; "check" ]
  in
  let check =
    block "check"
      [
        load (Reg data) ~offset:0 ~stride:page ~count:7 ~site:"fft:check_re";
        load (Reg data) ~offset:8 ~stride:page ~count:7 ~site:"fft:check_im";
        barrier;
      ]
  in
  Instrument.Binary.make ~name:"fft"
    ~procs:[ proc ~name:"fft_main" ~entry:"entry" [ entry; init; phase1; phase2; check ] ]
    (App.runtime_sections ~name:"fft" ~library_name:"libm" ~library:124716 ~cvm:3910)

(* Deterministic pseudo-random input: a pure function of the flat index,
   so any processor can validate any element without communication. *)
let input_re index = sin (0.7 *. float_of_int index) +. 0.25
let input_im index = cos (1.3 *. float_of_int index) -. 0.5

(* In-place iterative radix-2 Cooley-Tukey over private arrays. *)
let fft_in_place ~inverse re im =
  let n = Array.length re in
  assert (is_power_of_two n && Array.length im = n);
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tr = re.(i) in
      re.(i) <- re.(!j);
      re.(!j) <- tr;
      let ti = im.(i) in
      im.(i) <- im.(!j);
      im.(!j) <- ti
    end;
    let rec carry m =
      if m > 0 && m land !j <> 0 then begin
        j := !j lxor m;
        carry (m lsr 1)
      end
      else j := !j lor m
    in
    carry (n lsr 1)
  done;
  let sign = if inverse then 1.0 else -1.0 in
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let theta = sign *. 2.0 *. Float.pi /. float_of_int !len in
    for start = 0 to (n / !len) - 1 do
      let base = start * !len in
      for k = 0 to half - 1 do
        let angle = theta *. float_of_int k in
        let wr = cos angle and wi = sin angle in
        let a = base + k and b = base + k + half in
        let tr = (wr *. re.(b)) -. (wi *. im.(b)) in
        let ti = (wr *. im.(b)) +. (wi *. re.(b)) in
        re.(b) <- re.(a) -. tr;
        im.(b) <- im.(a) -. ti;
        re.(a) <- re.(a) +. tr;
        im.(a) <- im.(a) +. ti
      done
    done;
    len := !len * 2
  done;
  if inverse then begin
    let scale = 1.0 /. float_of_int n in
    for i = 0 to n - 1 do
      re.(i) <- re.(i) *. scale;
      im.(i) <- im.(i) *. scale
    done
  end

let log2i n = int_of_float (Float.round (Float.log2 (float_of_int n)))

let body ({ n1; n2; n3 } as params) node =
  let open Lrc.Dsm in
  let nprocs = nprocs node and pid = pid node in
  let n = total params in
  let data = malloc node (2 * n * 8) ~name:"fft.data" in
  let trans = malloc node (2 * n * 8) ~name:"fft.transpose" in
  (* flat complex index in (a, b, n3) layout: ((a * dim_b) + b) * n3 + c *)
  let re_index i = 2 * i and im_index i = (2 * i) + 1 in
  let planes_of dim_a = ((dim_a + nprocs - 1) / nprocs * pid, min dim_a ((dim_a + nprocs - 1) / nprocs * (pid + 1))) in
  let my_n1_lo, my_n1_hi = planes_of n1 in
  let my_n2_lo, my_n2_hi = planes_of n2 in
  (* gather a pencil of [len] complex values at [stride] from [array],
     FFT it privately, scatter it back; models the butterfly network plus
     the loop bookkeeping under the cost model *)
  let fft_pencil ~inverse array base stride len =
    let re = Array.make len 0.0 and im = Array.make len 0.0 in
    for k = 0 to len - 1 do
      let i = base + (k * stride) in
      re.(k) <- read_float_at node array (re_index i) ~site:"fft:gather";
      im.(k) <- read_float_at node array (im_index i) ~site:"fft:gather"
    done;
    fft_in_place ~inverse re im;
    compute node (22.0 *. float_of_int (len * log2i len));
    touch_private node (6 * len);
    for k = 0 to len - 1 do
      let i = base + (k * stride) in
      write_float_at node array (re_index i) re.(k) ~site:"fft:scatter";
      write_float_at node array (im_index i) im.(k) ~site:"fft:scatter"
    done
  in
  (* initialization: own planes *)
  for i1 = my_n1_lo to my_n1_hi - 1 do
    for rest = 0 to (n2 * n3) - 1 do
      let i = (i1 * n2 * n3) + rest in
      write_float_at node data (re_index i) (input_re i) ~site:"fft:init";
      write_float_at node data (im_index i) (input_im i) ~site:"fft:init";
      touch_private node 2
    done
  done;
  barrier node;
  let half_transform ~inverse =
    (* dims 3 then 2, inside own i1 planes *)
    for i1 = my_n1_lo to my_n1_hi - 1 do
      for i2 = 0 to n2 - 1 do
        fft_pencil ~inverse data (((i1 * n2) + i2) * n3) 1 n3
      done;
      for i3 = 0 to n3 - 1 do
        fft_pencil ~inverse data ((i1 * n2 * n3) + i3) n3 n2
      done
    done;
    barrier node;
    (* transpose i1 <-> i2: write own target planes, read everyone's *)
    for i2 = my_n2_lo to my_n2_hi - 1 do
      for i1 = 0 to n1 - 1 do
        for i3 = 0 to n3 - 1 do
          let src = ((i1 * n2) + i2) * n3 in
          let dst = ((i2 * n1) + i1) * n3 in
          let re = read_float_at node data (re_index (src + i3)) ~site:"fft:transpose" in
          let im = read_float_at node data (im_index (src + i3)) ~site:"fft:transpose" in
          write_float_at node trans (re_index (dst + i3)) re ~site:"fft:transpose";
          write_float_at node trans (im_index (dst + i3)) im ~site:"fft:transpose";
          touch_private node 4
        done
      done
    done;
    barrier node;
    (* dim 1, now plane-local in the transposed array *)
    for i2 = my_n2_lo to my_n2_hi - 1 do
      for i3 = 0 to n3 - 1 do
        fft_pencil ~inverse trans ((i2 * n1 * n3) + i3) n3 n1
      done
    done;
    barrier node;
    (* transpose back: write own i1 planes *)
    for i1 = my_n1_lo to my_n1_hi - 1 do
      for i2 = 0 to n2 - 1 do
        for i3 = 0 to n3 - 1 do
          let src = ((i2 * n1) + i1) * n3 in
          let dst = ((i1 * n2) + i2) * n3 in
          let re = read_float_at node trans (re_index (src + i3)) ~site:"fft:transpose" in
          let im = read_float_at node trans (im_index (src + i3)) ~site:"fft:transpose" in
          write_float_at node data (re_index (dst + i3)) re ~site:"fft:transpose";
          write_float_at node data (im_index (dst + i3)) im ~site:"fft:transpose";
          touch_private node 4
        done
      done
    done;
    barrier node
  in
  half_transform ~inverse:false;
  half_transform ~inverse:true;
  (* round-trip self-check over this processor's own planes *)
  let tolerance = 1e-9 in
  for i1 = my_n1_lo to my_n1_hi - 1 do
    for rest = 0 to (n2 * n3) - 1 do
      let i = (i1 * n2 * n3) + rest in
      let got_re = read_float_at node data (re_index i) in
      let got_im = read_float_at node data (im_index i) in
      if
        Float.abs (got_re -. input_re i) > tolerance
        || Float.abs (got_im -. input_im i) > tolerance
      then
        failwith
          (Printf.sprintf "fft: round-trip mismatch at %d: (%g,%g) vs (%g,%g)" i got_re got_im
             (input_re i) (input_im i))
    done
  done;
  barrier node

let make params =
  if not (is_power_of_two params.n1 && is_power_of_two params.n2 && is_power_of_two params.n3)
  then invalid_arg "Fft.make: dimensions must be powers of two";
  {
    App.name = "FFT";
    input_description = Printf.sprintf "%d x %d x %d" params.n1 params.n2 params.n3;
    synchronization = "barrier";
    memory_bytes = memory_bytes params;
    binary;
    body = body params;
  }
