(* Water — a simplified Water-Nsquared (Splash2): N three-site molecules
   (O, H1, H2) under a soft pairwise site-site potential, integrated for a
   few steps. As in the real application, molecules are an array of padded
   structs (512 bytes each — positions, velocities, forces and slack for
   the higher-order derivatives the real code keeps), locks protect the
   shared force accumulations at molecule-group granularity, and a global
   lock protects the potential-energy sum. Barriers separate the phases of
   each step.

   The seeded bug reproduces the class of defect the paper found in the
   Splash2 original: with [inject_bug] (the default, matching the shipped
   benchmark), every processor updates the global potential-energy
   accumulator WITHOUT taking the global lock (site "water:pot_racy") — a
   write-write data race that can lose updates. The detector must flag the
   accumulator word; with [inject_bug = false] (the fixed version) the run
   must be race-free and the energy exact. *)

type params = {
  nmols : int;
  steps : int;
  mols_per_lock : int;
  inject_bug : bool;
}

let paper_params = { nmols = 216; steps = 5; mols_per_lock = 4; inject_bug = true }
let small_params = { nmols = 24; steps = 3; mols_per_lock = 4; inject_bug = true }
let large_params = { nmols = 512; steps = 5; mols_per_lock = 4; inject_bug = true }

let lock_global = 0
let lock_group g = 1 + g

let dt = 0.002
let softening = 0.1
let sites = 3
let mol_words = 64 (* padded struct: 27 live words + derivative slack *)

(* Deterministic initial site positions: O on a jittered lattice, the two
   H sites at fixed offsets; a pure function of (molecule, site). *)
let initial_site n mol site =
  let side = int_of_float (Float.ceil (Float.cbrt (float_of_int n))) in
  let ix = mol mod side and iy = mol / side mod side and iz = mol / (side * side) in
  let jitter k seed = 0.05 *. sin (float_of_int ((mol * 31) + (k * 17) + seed)) in
  let ox = (2.0 *. float_of_int ix) +. jitter 0 1 in
  let oy = (2.0 *. float_of_int iy) +. jitter 1 2 in
  let oz = (2.0 *. float_of_int iz) +. jitter 2 3 in
  match site with
  | 0 -> (ox, oy, oz)
  | 1 -> (ox +. 0.2, oy +. 0.15, oz)
  | 2 -> (ox -. 0.2, oy +. 0.15, oz)
  | _ -> invalid_arg "Water.initial_site"

(* Soft-sphere site-site interaction: force on a from b, and the pair's
   potential contribution. *)
let site_interaction (xa, ya, za) (xb, yb, zb) =
  let dx = xa -. xb and dy = ya -. yb and dz = za -. zb in
  let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. softening in
  let inv = 1.0 /. r2 in
  let f = inv *. inv in
  ((f *. dx, f *. dy, f *. dz), inv)

(* Sequential reference mirroring the parallel numerics. *)
type reference_result = { positions : (float * float * float) array array; potential : float }

let reference { nmols; steps; _ } =
  (* O(nmols^2 * sites^2 * steps) interactions: the state lives in flat
     float arrays so the inner loop allocates nothing. The arithmetic and
     its evaluation order are exactly those of {!site_interaction}, so
     the result is bit-identical to the tuple formulation. *)
  let cells = nmols * sites * 3 in
  let slot m s axis = (((m * sites) + s) * 3) + axis in
  let pos = Array.make cells 0.0 in
  for m = 0 to nmols - 1 do
    for s = 0 to sites - 1 do
      let x, y, z = initial_site nmols m s in
      pos.(slot m s 0) <- x;
      pos.(slot m s 1) <- y;
      pos.(slot m s 2) <- z
    done
  done;
  let vel = Array.make cells 0.0 in
  let force = Array.make cells 0.0 in
  let potential = Array.make 1 0.0 in
  for _ = 1 to steps do
    Array.fill force 0 cells 0.0;
    potential.(0) <- 0.0;
    for i = 0 to nmols - 1 do
      for j = i + 1 to nmols - 1 do
        for si = 0 to sites - 1 do
          for sj = 0 to sites - 1 do
            let a = slot i si 0 and b = slot j sj 0 in
            let dx = Array.unsafe_get pos a -. Array.unsafe_get pos b
            and dy = Array.unsafe_get pos (a + 1) -. Array.unsafe_get pos (b + 1)
            and dz = Array.unsafe_get pos (a + 2) -. Array.unsafe_get pos (b + 2) in
            let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. softening in
            let inv = 1.0 /. r2 in
            let f = inv *. inv in
            Array.unsafe_set force a (Array.unsafe_get force a +. (f *. dx));
            Array.unsafe_set force (a + 1) (Array.unsafe_get force (a + 1) +. (f *. dy));
            Array.unsafe_set force (a + 2) (Array.unsafe_get force (a + 2) +. (f *. dz));
            Array.unsafe_set force b (Array.unsafe_get force b -. (f *. dx));
            Array.unsafe_set force (b + 1) (Array.unsafe_get force (b + 1) -. (f *. dy));
            Array.unsafe_set force (b + 2) (Array.unsafe_get force (b + 2) -. (f *. dz));
            potential.(0) <- potential.(0) +. inv
          done
        done
      done
    done;
    for c = 0 to cells - 1 do
      let v = vel.(c) +. (dt *. force.(c)) in
      vel.(c) <- v;
      pos.(c) <- pos.(c) +. (dt *. v)
    done
  done;
  let positions =
    Array.init nmols (fun m ->
        Array.init sites (fun s -> (pos.(slot m s 0), pos.(slot m s 1), pos.(slot m s 2))))
  in
  { positions; potential = potential.(0) }

let memory_bytes { nmols; _ } = (nmols * mol_words * 8) + 64

let binary () =
  (* Synthetic image with the paper's Water section counts (Table 2). The
     CFG mirrors one timestep of the body: clear, pairwise interactions
     into a private accumulator, the merge under group locks, the
     potential-energy update — racy arm (no lock, the seeded Splash2
     bug) or fixed arm (global lock) — then the integration phase. The
     lint must flag "water:pot_racy" against "water:pot_locked" and
     nothing else; the private force accumulator is what the data-flow
     pass proves private. The molecule fields are modelled as separate
     regions (positions / velocities / forces) so the lock discipline on
     forces is visible to the analysis. *)
  let open Instrument.Ir in
  let pos = 0 and frc = 1 and vel = 2 and pot = 3 and pforce = 4 in
  let page = 4096 in
  let entry =
    block "entry"
      (App.fp_gp_ops ~name:"water" ~stack:649 ~static_data:1919
      @ [
          malloc_shared ~dst:pos "water.positions";
          malloc_shared ~dst:frc "water.forces";
          malloc_shared ~dst:vel "water.velocities";
          malloc_shared ~dst:pot "water.potential";
          malloc_private ~dst:pforce "water.private_force";
        ])
      ~succs:[ "init" ]
  in
  let init =
    block "init"
      [
        store (Reg pos) ~stride:page ~count:30 ~site:"water:init";
        store (Reg vel) ~stride:page ~count:20 ~site:"water:init";
        store (Reg pot) ~stride:8 ~count:2 ~site:"water:init";
        barrier;
      ]
      ~succs:[ "clear" ]
  in
  let clear =
    block "clear"
      [
        store (Reg frc) ~stride:page ~count:30 ~site:"water:clear";
        store (Reg pot) ~stride:8 ~count:2 ~site:"water:clear";
        barrier;
      ]
      ~succs:[ "compute" ]
  in
  let compute =
    block "compute"
      [
        load (Reg pos) ~stride:page ~count:74 ~site:"water:pos";
        load (Reg pforce) ~count:30 ~site:"water:accumulate";
        store (Reg pforce) ~count:30 ~site:"water:accumulate";
      ]
      ~succs:[ "merge" ]
  in
  let merge =
    block "merge"
      [
        acquire (lock_group 0);
        load (Reg frc) ~stride:8 ~count:54 ~site:"water:force_merge";
        store (Reg frc) ~stride:8 ~count:54 ~site:"water:force_merge";
        release (lock_group 0);
      ]
      ~succs:[ "pot_racy"; "pot_locked" ]
  in
  let pot_racy =
    block "pot_racy"
      [
        load (Reg pot) ~stride:8 ~count:2 ~site:"water:pot_racy";
        store (Reg pot) ~stride:8 ~count:2 ~site:"water:pot_racy";
      ]
      ~succs:[ "phase_end" ]
  in
  let pot_locked =
    block "pot_locked"
      [
        acquire lock_global;
        load (Reg pot) ~stride:8 ~count:2 ~site:"water:pot_locked";
        store (Reg pot) ~stride:8 ~count:2 ~site:"water:pot_locked";
        release lock_global;
      ]
      ~succs:[ "phase_end" ]
  in
  let phase_end = block "phase_end" [ barrier ] ~succs:[ "integrate" ] in
  let integrate =
    block "integrate"
      [
        load (Reg vel) ~offset:0 ~stride:page ~count:45 ~site:"water:integrate";
        load (Reg frc) ~offset:0 ~stride:page ~count:45 ~site:"water:integrate";
        load (Reg pos) ~offset:0 ~stride:page ~count:45 ~site:"water:integrate";
        store (Reg vel) ~offset:8 ~stride:page ~count:45 ~site:"water:integrate";
        store (Reg pos) ~offset:8 ~stride:page ~count:45 ~site:"water:integrate";
        barrier;
      ]
      ~succs:[ "clear"; "check" ]
  in
  let check =
    block "check"
      [
        load (Reg pos) ~stride:page ~count:27 ~site:"water:check";
        load (Reg pot) ~stride:8 ~count:2 ~site:"water:check_pot";
      ]
  in
  Instrument.Binary.make ~name:"water"
    ~procs:
      [
        proc ~name:"water_main" ~entry:"entry"
          [
            entry; init; clear; compute; merge; pot_racy; pot_locked; phase_end; integrate; check;
          ];
      ]
    (App.runtime_sections ~name:"water" ~library_name:"libm" ~library:124716 ~cvm:3910)

(* Struct offsets, in words from the start of a molecule record. *)
let off_pos s axis = (s * 3) + axis
let off_vel s axis = 9 + (s * 3) + axis
let off_force s axis = 18 + (s * 3) + axis

let body ({ nmols; steps; mols_per_lock; inject_bug } as params) node =
  let open Lrc.Dsm in
  let nprocs = nprocs node and pid = pid node in
  let mols = malloc node (nmols * mol_words * 8) ~name:"water.molecules" in
  let potential = malloc node 8 ~name:"water.potential" in
  let field mol off = mols + (((mol * mol_words) + off) * 8) in
  let read_site mol s ~site:label =
    ( read_float node (field mol (off_pos s 0)) ~site:label,
      read_float node (field mol (off_pos s 1)) ~site:label,
      read_float node (field mol (off_pos s 2)) ~site:label )
  in
  let write_vec mol off (x, y, z) ~site:label =
    write_float node (field mol (off + 0)) x ~site:label;
    write_float node (field mol (off + 1)) y ~site:label;
    write_float node (field mol (off + 2)) z ~site:label
  in
  let ngroups = (nmols + mols_per_lock - 1) / mols_per_lock in
  let per = (nmols + nprocs - 1) / nprocs in
  let lo = min nmols (pid * per) and hi = min nmols ((pid + 1) * per) in
  (* initialization: own molecules *)
  for m = lo to hi - 1 do
    for s = 0 to sites - 1 do
      write_vec m (off_pos s 0) (initial_site nmols m s) ~site:"water:init";
      write_vec m (off_vel s 0) (0.0, 0.0, 0.0) ~site:"water:init";
      touch_private node 3
    done
  done;
  if pid = 0 then write_float node potential 0.0 ~site:"water:init";
  barrier node;
  for _step = 1 to steps do
    (* phase 1: clear forces (owners) and the potential (proc 0) *)
    for m = lo to hi - 1 do
      for s = 0 to sites - 1 do
        write_vec m (off_force s 0) (0.0, 0.0, 0.0) ~site:"water:clear"
      done
    done;
    if pid = 0 then write_float node potential 0.0 ~site:"water:clear";
    barrier node;
    (* phase 2: pairwise site-site interactions, cyclically partitioned by
       molecule-pair index; accumulate privately, merge under group locks *)
    let private_force = Array.make (nmols * sites * 3) 0.0 in
    let touched = Array.make nmols false in
    let slot m s axis = (((m * sites) + s) * 3) + axis in
    (* one-element arrays keep the accumulators unboxed; the site triples
       land in two reused flat buffers so the pair loop allocates nothing.
       The DSM reads keep the exact order of the tuple formulation (each
       triple was built right to left), and the arithmetic is exactly
       {!site_interaction}'s, so the simulated run is unchanged. *)
    let local_potential = Array.make 1 0.0 in
    let pos_i = Array.make (sites * 3) 0.0 in
    let pos_j = Array.make (sites * 3) 0.0 in
    let load_sites buf mol =
      for s = 0 to sites - 1 do
        let b = s * 3 in
        buf.(b + 2) <- read_float node (field mol (off_pos s 2)) ~site:"water:pos";
        buf.(b + 1) <- read_float node (field mol (off_pos s 1)) ~site:"water:pos";
        buf.(b) <- read_float node (field mol (off_pos s 0)) ~site:"water:pos"
      done
    in
    let pair_index = ref 0 in
    for i = 0 to nmols - 1 do
      for j = i + 1 to nmols - 1 do
        if !pair_index mod nprocs = pid then begin
          load_sites pos_i i;
          load_sites pos_j j;
          for si = 0 to sites - 1 do
            for sj = 0 to sites - 1 do
              let a = si * 3 and b = sj * 3 in
              let dx = Array.unsafe_get pos_i a -. Array.unsafe_get pos_j b
              and dy = Array.unsafe_get pos_i (a + 1) -. Array.unsafe_get pos_j (b + 1)
              and dz = Array.unsafe_get pos_i (a + 2) -. Array.unsafe_get pos_j (b + 2) in
              let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. softening in
              let inv = 1.0 /. r2 in
              let f = inv *. inv in
              let ia = slot i si 0 and jb = slot j sj 0 in
              Array.unsafe_set private_force ia
                (Array.unsafe_get private_force ia +. (f *. dx));
              Array.unsafe_set private_force (ia + 1)
                (Array.unsafe_get private_force (ia + 1) +. (f *. dy));
              Array.unsafe_set private_force (ia + 2)
                (Array.unsafe_get private_force (ia + 2) +. (f *. dz));
              Array.unsafe_set private_force jb
                (Array.unsafe_get private_force jb -. (f *. dx));
              Array.unsafe_set private_force (jb + 1)
                (Array.unsafe_get private_force (jb + 1) -. (f *. dy));
              Array.unsafe_set private_force (jb + 2)
                (Array.unsafe_get private_force (jb + 2) -. (f *. dz));
              local_potential.(0) <- local_potential.(0) +. inv
            done
          done;
          touched.(i) <- true;
          touched.(j) <- true;
          touch_private node 60;
          compute node 250.0
        end;
        incr pair_index
      done
    done;
    (* merge per lock group: a group's members are the touched molecules
       in its contiguous [mols_per_lock] range, visited in ascending
       order — the same set and order the old list pipeline produced *)
    for g = 0 to ngroups - 1 do
      let g_lo = g * mols_per_lock and g_hi = min nmols ((g + 1) * mols_per_lock) in
      let any = ref false in
      for m = g_lo to g_hi - 1 do
        if touched.(m) then any := true
      done;
      if !any then
        with_lock node (lock_group g) (fun () ->
            for m = g_lo to g_hi - 1 do
              if touched.(m) then begin
                for s = 0 to sites - 1 do
                  for axis = 0 to 2 do
                    let addr = field m (off_force s axis) in
                    let v = read_float node addr ~site:"water:force_merge" in
                    write_float node addr (v +. private_force.(slot m s axis))
                      ~site:"water:force_merge"
                  done
                done;
                touch_private node 9
              end
            done)
    done;
    (* the potential-energy sum: the seeded Splash2-style bug updates the
       global accumulator without the lock *)
    if inject_bug then begin
      let pot = read_float node potential ~site:"water:pot_racy" in
      write_float node potential (pot +. local_potential.(0)) ~site:"water:pot_racy"
    end
    else
      with_lock node lock_global (fun () ->
          let pot = read_float node potential ~site:"water:pot_locked" in
          write_float node potential (pot +. local_potential.(0)) ~site:"water:pot_locked");
    barrier node;
    (* phase 3: integrate own molecules. The triples are read in the
       tuple formulation's order (right to left within a triple) and
       written ascending, without building the intermediate tuples. *)
    for m = lo to hi - 1 do
      for s = 0 to sites - 1 do
        let vb = off_vel s 0 and fb = off_force s 0 and pb = off_pos s 0 in
        let vz = read_float node (field m (vb + 2)) ~site:"water:integrate" in
        let vy = read_float node (field m (vb + 1)) ~site:"water:integrate" in
        let vx = read_float node (field m (vb + 0)) ~site:"water:integrate" in
        let fz = read_float node (field m (fb + 2)) ~site:"water:integrate" in
        let fy = read_float node (field m (fb + 1)) ~site:"water:integrate" in
        let fx = read_float node (field m (fb + 0)) ~site:"water:integrate" in
        let vx = vx +. (dt *. fx) and vy = vy +. (dt *. fy) and vz = vz +. (dt *. fz) in
        write_float node (field m (vb + 0)) vx ~site:"water:integrate";
        write_float node (field m (vb + 1)) vy ~site:"water:integrate";
        write_float node (field m (vb + 2)) vz ~site:"water:integrate";
        let z = read_float node (field m (pb + 2)) ~site:"water:integrate" in
        let y = read_float node (field m (pb + 1)) ~site:"water:integrate" in
        let x = read_float node (field m (pb + 0)) ~site:"water:integrate" in
        write_float node (field m (pb + 0)) (x +. (dt *. vx)) ~site:"water:integrate";
        write_float node (field m (pb + 1)) (y +. (dt *. vy)) ~site:"water:integrate";
        write_float node (field m (pb + 2)) (z +. (dt *. vz)) ~site:"water:integrate";
        touch_private node 8;
        compute node 30.0
      done
    done;
    barrier node
  done;
  (* self-check at processor 0: site positions must match the reference
     within floating-point reassociation tolerance; the potential is only
     checked in the fixed version (the bug can genuinely lose updates) *)
  if pid = 0 then begin
    let expected = reference params in
    let close a b = Float.abs (a -. b) <= 1e-4 *. (1.0 +. Float.abs b) in
    Array.iteri
      (fun m site_positions ->
        Array.iteri
          (fun s (ex, ey, ez) ->
            let gx, gy, gz = read_site m s ~site:"water:check" in
            if not (close gx ex && close gy ey && close gz ez) then
              failwith
                (Printf.sprintf "water: molecule %d site %d at (%g,%g,%g), reference (%g,%g,%g)"
                   m s gx gy gz ex ey ez))
          site_positions)
      expected.positions;
    if not inject_bug then begin
      let got = read_float node potential in
      if not (close got expected.potential) then
        failwith (Printf.sprintf "water: potential %g, reference %g" got expected.potential)
    end
  end;
  barrier node

let make params =
  {
    App.name = "Water";
    input_description = Printf.sprintf "%d mols, %d iters" params.nmols params.steps;
    synchronization = "lock, barrier";
    memory_bytes = memory_bytes params;
    binary;
    body = body params;
  }
