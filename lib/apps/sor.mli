(** SOR — Jacobi relaxation over a 2-D grid with a barrier per sweep.
    The paper's race-free, barrier-only workload: the only cross-processor
    sharing is neighbour-row reads at partition boundaries (page-level
    false sharing), so the detector must report nothing. *)

type params = { rows : int; cols : int; iters : int }

val paper_params : params
(** 512 x 512, 5 sweeps (the evaluation's input). *)

val small_params : params

val large_params : params
(** 1024 x 1024, 5 sweeps: the benchmark pipeline's headroom tier. *)

val reference : params -> float array array
(** Sequential reference grid; the parallel run matches it exactly. *)

val boundary_value : row:int -> col:int -> rows:int -> cols:int -> float

val band : rows:int -> nprocs:int -> pid:int -> int * int
(** Contiguous rows [lo, hi) owned by a processor. *)

val make : params -> App.t
