(** FFT — 3-D complex Fast Fourier Transform over shared memory, with
    per-dimension pencil phases, explicit blocked transposes (writers stay
    inside their own partition, as in Splash2) and barriers between
    phases. Race-free; the body validates a forward+inverse round trip. *)

type params = { n1 : int; n2 : int; n3 : int }

val paper_params : params
(** 64 x 64 x 16 (the evaluation's input). *)

val small_params : params

val large_params : params
(** 128 x 64 x 32: the benchmark pipeline's headroom tier. *)

val fft_in_place : inverse:bool -> float array -> float array -> unit
(** In-place radix-2 Cooley-Tukey over private arrays (re, im). Lengths
    must be equal powers of two. *)

val input_re : int -> float
(** Deterministic input, a pure function of the flat element index. *)

val input_im : int -> float

val total : params -> int

val make : params -> App.t
(** Raises [Invalid_argument] unless all dimensions are powers of two. *)
