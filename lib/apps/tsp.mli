(** TSP — branch-and-bound travelling salesman: a lock-protected work
    queue, a lock-protected global bound... and the paper's deliberate
    benign race: pruning reads the bound WITHOUT the lock (site
    "tsp:bound_prune"). The detector must report read-write races on the
    bound word and nothing else. *)

type params = {
  ncities : int;
  seed : int;
  dfs_threshold : int;  (** solve privately once this few cities remain *)
}

val paper_params : params
(** 16 cities (the paper ran 19; see EXPERIMENTS.md for the scaling
    note — 19 remains available by constructing params directly). *)

val small_params : params

val distances : params -> int array array
(** The deterministic instance: pseudo-random cities on a 1000x1000 grid. *)

val nearest_neighbour_bound : int array array -> int

type bound_ctx
(** Precomputed minimisation context for {!lower_bound}: the matrix
    flattened plus per-city neighbours ranked by ascending distance. *)

val bound_ctx : int array array -> bound_ctx

val lower_bound : bound_ctx -> bool array -> current:int -> cost:int -> int
(** Admissible lower bound for a partial tour (cheapest continuation edge
    per remaining city). Identical in value to the textbook full-scan
    formulation; the context only accelerates the minimisations. *)

val reference : params -> int
(** Optimal tour cost by sequential branch-and-bound; the parallel run's
    self-check compares against it. *)

val lock_queue : int
val lock_bound : int

val make : params -> App.t
