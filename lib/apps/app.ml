(* Common shape of the four benchmark applications. The driver, the CLI,
   the benchmarks and the tests all consume this record. *)

type t = {
  name : string;
  input_description : string;  (* Table 1's "Input Set" column *)
  synchronization : string;  (* Table 1's "Synchronization" column *)
  memory_bytes : int;  (* size of the shared data segment *)
  binary : unit -> Instrument.Binary.t;  (* synthetic image for Table 2 *)
  body : Lrc.Dsm.node -> unit;
      (* SPMD body run by every simulated processor; raises on a failed
         self-check so broken coherence can never pass silently *)
}

let pages_needed t ~page_size = ((t.memory_bytes + page_size - 1) / page_size) + 4

(* Shared helpers for the synthetic images: Table-2-style section counts
   with the usual ~3:1 load:store mix. The library and CVM sections stay
   flat (classified by origin alone); the application text is a CFG —
   these ops carry the frame/global-pointer accesses, and each app adds
   its own computed-address structure on top. *)

let split n = (n * 3 / 4, n - (n * 3 / 4))

let runtime_sections ~name ~library_name ~library ~cvm =
  let lib_loads, lib_stores = split library in
  let cvm_loads, cvm_stores = split cvm in
  Instrument.Binary.section
    ~origin:(Instrument.Binary.Library library_name)
    ~prefix:(name ^ ".lib") ~loads:lib_loads ~stores:lib_stores
  @ Instrument.Binary.section ~origin:Instrument.Binary.Cvm_runtime ~prefix:(name ^ ".cvm")
      ~loads:cvm_loads ~stores:cvm_stores

let fp_gp_ops ~name ~stack ~static_data =
  let stack_loads, stack_stores = split stack in
  let static_loads, static_stores = split static_data in
  [
    Instrument.Ir.load (Instrument.Ir.Fp 0) ~count:stack_loads ~site:(name ^ ".stack.ld");
    Instrument.Ir.store (Instrument.Ir.Fp 8) ~count:stack_stores ~site:(name ^ ".stack.st");
    Instrument.Ir.load
      (Instrument.Ir.Gp (name ^ ".data"))
      ~count:static_loads ~site:(name ^ ".static.ld");
    Instrument.Ir.store
      (Instrument.Ir.Gp (name ^ ".bss"))
      ~count:static_stores ~site:(name ^ ".static.st");
  ]
