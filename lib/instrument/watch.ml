(* Runtime watch list for the two-run reference-identification scheme of
   section 6.1.

   Retaining a program counter for every shared access would be
   prohibitive, so the first (detection) run reports only addresses and
   epochs. A second run, replayed under the recorded synchronization order,
   installs a watch on the racy addresses; every instrumented access to a
   watched address records its site ("program counter"), which maps each
   race back to source locations. *)

type hit = { site : string; addr : int; kind : Proto.Race.access_kind; count : int }

type t = {
  addrs : (int, unit) Hashtbl.t;
  hits : (string * int * Proto.Race.access_kind, int ref) Hashtbl.t;
}

let create ~addrs =
  let table = Hashtbl.create (List.length addrs) in
  List.iter (fun addr -> Hashtbl.replace table addr ()) addrs;
  { addrs = table; hits = Hashtbl.create 16 }

let watched t addr = Hashtbl.mem t.addrs addr

let observe t ~site ~addr kind =
  if watched t addr then begin
    let key = (site, addr, kind) in
    match Hashtbl.find_opt t.hits key with
    | Some counter -> incr counter
    | None -> Hashtbl.add t.hits key (ref 1)
  end

let hits t =
  Hashtbl.fold
    (fun (site, addr, kind) counter acc -> { site; addr; kind; count = !counter } :: acc)
    t.hits []
  |> List.sort (fun a b -> compare (a.addr, a.site, a.kind) (b.addr, b.site, b.kind))

let sites_for t ~addr =
  hits t |> List.filter (fun h -> h.addr = addr) |> List.map (fun h -> (h.site, h.kind))

let pp_hit ppf h =
  Format.fprintf ppf "0x%08x %a at %s (%d times)" h.addr Proto.Race.pp_kind h.kind h.site
    h.count
