(* Forward abstract interpretation over the provenance lattice.

   This is the analysis section 5.1 only sketches: ATOM proved a
   computed address private when its defining data-flow chain bottomed
   out in stack, static or private-heap storage. We run the same idea
   as a whole-procedure forward analysis: every register carries an
   abstract provenance

       Bottom < {Stack, Static, PrivateHeap, SharedHeap(regions)} < Unknown

   joined pointwise at CFG merge points, iterated to fixpoint with a
   worklist. SharedHeap values carry the set of dsm_malloc allocation
   sites the pointer may address, which the lockset lint consumes.

   Alongside provenance we run two cheap companion analyses over the
   same fixpoint:

   - a must-hold lockset (intersection at merges) for the static
     shared-access lint;
   - a redundant-check pass: within a basic block, an access dominated
     by a prior instrumented check of the same base register and page
     needs no second shared/private discrimination — it is "batched"
     onto the earlier check. Register redefinition or any
     synchronization op invalidates the dominating check.

   Barrier ops additionally delimit static "phases": two accesses can
   only constitute a statically suspicious pair when some program point
   reaches both without crossing a barrier. *)

module Regmap = Map.Make (Int)
module Regions = Set.Make (String)
module Intset = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* The provenance lattice                                              *)

type prov =
  | Stack
  | Static
  | Private_heap
  | Shared_heap of Regions.t
  | Unknown

(* Bottom is represented by absence from the register map. *)

let join a b =
  match (a, b) with
  | Stack, Stack -> Stack
  | Static, Static -> Static
  | Private_heap, Private_heap -> Private_heap
  | Shared_heap r1, Shared_heap r2 -> Shared_heap (Regions.union r1 r2)
  | Unknown, _ | _, Unknown -> Unknown
  | _ -> Unknown

let prov_equal a b =
  match (a, b) with
  | Stack, Stack | Static, Static | Private_heap, Private_heap | Unknown, Unknown -> true
  | Shared_heap r1, Shared_heap r2 -> Regions.equal r1 r2
  | _ -> false

let is_private = function
  | Stack | Static | Private_heap -> true
  | Shared_heap _ | Unknown -> false

let regions_of = function Shared_heap r -> r | _ -> Regions.empty

let pp_prov ppf = function
  | Stack -> Format.pp_print_string ppf "Stack"
  | Static -> Format.pp_print_string ppf "Static"
  | Private_heap -> Format.pp_print_string ppf "PrivateHeap"
  | Shared_heap regions ->
      Format.fprintf ppf "SharedHeap{%s}" (String.concat "," (Regions.elements regions))
  | Unknown -> Format.pp_print_string ppf "Unknown"

(* ------------------------------------------------------------------ *)
(* Abstract state: register provenance + must-hold lockset             *)

(* Constant displacement of a register from the base of the allocation
   it points into (bytes); [Disp_unknown] when the chain loses it (a
   pointer loaded from memory, or a join of differing displacements).
   Bottom is absence from the map. The MHP range refinement consumes
   this: with a known displacement, an access's static footprint within
   its region is a concrete byte interval. *)
type disp = Disp of int | Disp_unknown

type state = { regs : prov Regmap.t; disps : disp Regmap.t; locks : Intset.t }

let initial_state = { regs = Regmap.empty; disps = Regmap.empty; locks = Intset.empty }

let disp_join a b =
  match (a, b) with Disp x, Disp y when x = y -> Disp x | _ -> Disp_unknown

let state_join a b =
  {
    regs =
      Regmap.merge
        (fun _ pa pb ->
          match (pa, pb) with
          | Some pa, Some pb -> Some (join pa pb)
          | Some p, None | None, Some p -> Some p (* bottom is the join identity *)
          | None, None -> None)
        a.regs b.regs;
    disps =
      Regmap.merge
        (fun _ da db ->
          match (da, db) with
          | Some da, Some db -> Some (disp_join da db)
          | Some d, None | None, Some d -> Some d
          | None, None -> None)
        a.disps b.disps;
    locks = Intset.inter a.locks b.locks;
  }

let state_equal a b =
  Regmap.equal prov_equal a.regs b.regs
  && Regmap.equal ( = ) a.disps b.disps
  && Intset.equal a.locks b.locks

let lookup state reg =
  match Regmap.find_opt reg state.regs with Some p -> p | None -> Unknown

let lookup_disp state reg =
  match Regmap.find_opt reg state.disps with Some d -> d | None -> Disp_unknown

let prov_of_base state = function
  | Ir.Fp _ -> Stack
  | Ir.Gp _ -> Static
  | Ir.Reg r -> lookup state r

let disp_of_base state = function
  | Ir.Fp _ | Ir.Gp _ -> Disp_unknown (* private; displacement is irrelevant *)
  | Ir.Reg r -> lookup_disp state r

let transfer_op state (op : Ir.op) =
  match op with
  | Ir.Mov { dst; src } ->
      {
        state with
        regs = Regmap.add dst (lookup state src) state.regs;
        disps = Regmap.add dst (lookup_disp state src) state.disps;
      }
  | Ir.Lea { dst; base; offset } ->
      let disp =
        match disp_of_base state base with
        | Disp d -> Disp (d + offset)
        | Disp_unknown -> Disp_unknown
      in
      {
        state with
        regs = Regmap.add dst (prov_of_base state base) state.regs;
        disps = Regmap.add dst disp state.disps;
      }
  | Ir.Malloc { dst; shared; region } ->
      let p = if shared then Shared_heap (Regions.singleton region) else Private_heap in
      {
        state with
        regs = Regmap.add dst p state.regs;
        disps = Regmap.add dst (Disp 0) state.disps;
      }
  | Ir.Load { dst = Some dst; _ } ->
      (* a pointer loaded from memory: nothing is known about it *)
      {
        state with
        regs = Regmap.add dst Unknown state.regs;
        disps = Regmap.add dst Disp_unknown state.disps;
      }
  | Ir.Load { dst = None; _ } | Ir.Store _ | Ir.Barrier -> state
  | Ir.Acquire lock -> { state with locks = Intset.add lock state.locks }
  | Ir.Release lock -> { state with locks = Intset.remove lock state.locks }

let transfer_block state ops = List.fold_left transfer_op state ops

(* ------------------------------------------------------------------ *)
(* Worklist fixpoint over the CFG                                      *)

let fixpoint (proc : Ir.proc) =
  Ir.validate proc;
  let table = Ir.block_table proc in
  let in_states : (string, state) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.replace in_states proc.Ir.entry initial_state;
  let work = Queue.create () in
  Queue.add proc.Ir.entry work;
  while not (Queue.is_empty work) do
    let label = Queue.pop work in
    let blk = Hashtbl.find table label in
    let out = transfer_block (Hashtbl.find in_states label) blk.Ir.ops in
    List.iter
      (fun succ ->
        let merged =
          match Hashtbl.find_opt in_states succ with
          | None -> out
          | Some prev -> state_join prev out
        in
        let changed =
          match Hashtbl.find_opt in_states succ with
          | None -> true
          | Some prev -> not (state_equal prev merged)
        in
        if changed then begin
          Hashtbl.replace in_states succ merged;
          Queue.add succ work
        end)
      blk.Ir.succs
  done;
  in_states

(* ------------------------------------------------------------------ *)
(* Static phases: barrier-free forward reach                           *)

(* Phase start points: procedure entry, plus the point just after every
   barrier op. An access belongs to every phase whose start reaches it
   without crossing another barrier; two accesses can race statically
   only if they share a phase. Keys are (block label, op index). *)
let phases (proc : Ir.proc) =
  let table = Ir.block_table proc in
  let starts = ref [ (proc.Ir.entry, 0) ] in
  List.iter
    (fun (b : Ir.block) ->
      List.iteri
        (fun i op -> if op = Ir.Barrier then starts := (b.Ir.label, i + 1) :: !starts)
        b.Ir.ops)
    proc.Ir.blocks;
  let membership : (string * int, Intset.t) Hashtbl.t = Hashtbl.create 64 in
  let add_member key phase =
    let prev = Option.value (Hashtbl.find_opt membership key) ~default:Intset.empty in
    Hashtbl.replace membership key (Intset.add phase prev)
  in
  List.iteri
    (fun phase (start_label, start_idx) ->
      let visited_heads = Hashtbl.create 16 in
      (* walk ops of [label] from [idx]; returns the successors to
         continue into unless a barrier ended the phase first *)
      let rec walk label idx =
        let blk = Hashtbl.find table label in
        let ops = Array.of_list blk.Ir.ops in
        let n = Array.length ops in
        let rec scan i =
          if i >= n then
            List.iter
              (fun succ ->
                if not (Hashtbl.mem visited_heads succ) then begin
                  Hashtbl.replace visited_heads succ ();
                  walk succ 0
                end)
              blk.Ir.succs
          else
            match ops.(i) with
            | Ir.Barrier -> () (* the phase ends here *)
            | Ir.Load _ | Ir.Store _ ->
                add_member (label, i) phase;
                scan (i + 1)
            | _ -> scan (i + 1)
        in
        scan idx
      in
      walk start_label start_idx)
    (List.rev !starts);
  fun key -> Option.value (Hashtbl.find_opt membership key) ~default:Intset.empty

(* ------------------------------------------------------------------ *)
(* Per-access results                                                  *)

type access = {
  a_proc : string;
  a_block : string;
  a_index : int;  (* op index within the block *)
  a_kind : Binary.kind;
  a_base : Ir.base;
  a_site : string;
  a_count : int;
  a_offset : int;  (* static byte offset of the first element *)
  a_stride : int;  (* static byte stride between elements *)
  a_disp : disp;  (* base register's displacement from its region base *)
  a_prov : prov;  (* provenance of the address at this point *)
  a_locks : Intset.t;  (* must-hold lockset at this point *)
  a_regions : Regions.t;  (* shared allocation sites possibly addressed *)
  a_phases : Intset.t;  (* static phases containing this access *)
  a_batched : int;  (* of [a_count], checks dominated by a prior one *)
  a_reachable : bool;
}

let proven_private a =
  match a.a_base with Ir.Fp _ | Ir.Gp _ -> true | Ir.Reg _ -> is_private a.a_prov

let analyze ?(page_size = 4096) (proc : Ir.proc) =
  let in_states = fixpoint proc in
  let phase_of = phases proc in
  let accesses = ref [] in
  List.iter
    (fun (blk : Ir.block) ->
      let reachable = Hashtbl.mem in_states blk.Ir.label in
      let state =
        Option.value (Hashtbl.find_opt in_states blk.Ir.label) ~default:initial_state
      in
      (* per-block dominating-check table: base register -> pages checked *)
      let checked : (Ir.reg, Intset.t ref) Hashtbl.t = Hashtbl.create 8 in
      let state = ref state in
      List.iteri
        (fun i op ->
          (match op with
          | Ir.Load { base; offset; stride; count; site; _ } | Ir.Store { base; offset; stride; count; site } ->
              let kind =
                match op with Ir.Load _ -> Binary.Load | _ -> Binary.Store
              in
              let prov = prov_of_base !state base in
              let needs_check =
                reachable
                && (match base with Ir.Reg _ -> not (is_private prov) | _ -> false)
              in
              let batched = ref 0 in
              (if needs_check then
                 match base with
                 | Ir.Reg r ->
                     let pages =
                       match Hashtbl.find_opt checked r with
                       | Some pages -> pages
                       | None ->
                           let pages = ref Intset.empty in
                           Hashtbl.replace checked r pages;
                           pages
                     in
                     for k = 0 to count - 1 do
                       let page = (offset + (k * stride)) / page_size in
                       if Intset.mem page !pages then incr batched
                       else pages := Intset.add page !pages
                     done
                 | _ -> ());
              accesses :=
                {
                  a_proc = proc.Ir.proc_name;
                  a_block = blk.Ir.label;
                  a_index = i;
                  a_kind = kind;
                  a_base = base;
                  a_site = site;
                  a_count = count;
                  a_offset = offset;
                  a_stride = stride;
                  a_disp = disp_of_base !state base;
                  a_prov = prov;
                  a_locks = (if reachable then !state.locks else Intset.empty);
                  a_regions = regions_of prov;
                  a_phases = (if reachable then phase_of (blk.Ir.label, i) else Intset.empty);
                  a_batched = !batched;
                  a_reachable = reachable;
                }
                :: !accesses
          | Ir.Acquire _ | Ir.Release _ | Ir.Barrier ->
              (* synchronization may change page contents/ownership: any
                 dominating check is no longer a proof *)
              Hashtbl.reset checked
          | Ir.Mov _ | Ir.Lea _ | Ir.Malloc _ -> ());
          (match Ir.defined_reg op with
          | Some r -> Hashtbl.remove checked r
          | None -> ());
          state := transfer_op !state op)
        blk.Ir.ops)
    proc.Ir.blocks;
  List.rev !accesses
