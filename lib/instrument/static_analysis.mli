(** The static elimination pass of paper section 5.1 (Table 2), computed
    by the {!Dataflow} fixpoint instead of asserted.

    An instruction is proven non-shared when it addresses through the
    frame pointer (stack) or the global pointer (static data — safe
    because the DSM allocates all shared memory dynamically), lives in a
    shared library or the CVM runtime, or its computed address is proven
    private by the data-flow analysis over the procedure's CFG.
    Everything else gets an inserted call to the analysis routine.

    The same fixpoint also yields redundant-check batching (an access
    dominated by a prior check of the same base register and page pays
    only a fraction of the discrimination cost) and a static
    shared-access lint (conflicting sites in one barrier phase with
    disjoint must-hold locksets). *)

type classification = {
  stack : int;
  static_data : int;
  proven_private : int;
      (** computed addresses the data-flow analysis proved private *)
  library : int;
  cvm : int;
  instrumented : int;
}

type warning = {
  w_proc : string;
  w_site : string;  (** the insufficiently locked access *)
  w_kind : Binary.kind;
  w_region : string;  (** the shared allocation both sites may address *)
  w_other_site : string;  (** the conflicting access *)
  w_other_locks : int list;
}

type result = {
  classification : classification;
  sites : string list;  (** surviving (instrumented) sites, program order *)
  batched_checks : int;
  check_cost_scale : float;
      (** average per-check charge relative to a full check, in (0, 1] *)
  warnings : warning list;
  provenance : (string * Dataflow.prov) list;
      (** computed-address sites with their derived provenance *)
}

val batched_check_cost : float
(** Cost of a batched check relative to a full one. *)

val analyze : ?page_size:int -> Binary.t -> result
(** Run the data-flow analysis over every procedure and fold in the
    flat sections. *)

val classify : Binary.t -> classification

val total : classification -> int

val eliminated_fraction : classification -> float
(** The paper's headline: over 99% of loads and stores are eliminated. *)

val instrumented_sites : Binary.t -> string list
(** Sites of the surviving (instrumented) instructions. *)

val pp : Format.formatter -> classification -> unit
val pp_warning : Format.formatter -> warning -> unit
