(* A small register-transfer IR for the synthetic application binaries.

   ATOM saw real Alpha RTL; we model just enough of it for the section
   5.1 elimination logic to be *computed* rather than asserted: register
   moves, load-effective-address arithmetic, allocation results
   (dsm_malloc vs private malloc), frame/global-pointer addressing, and
   loads/stores through registers.  Procedures are control-flow graphs
   of basic blocks, so the analysis in {!Dataflow} generalizes the
   paper's intra-basic-block data-flow to whole procedures with loops
   and branches.

   A [count] on a load/store stands for [count] alike static
   instructions at consecutive [stride]-spaced offsets (an unrolled
   inner loop); this keeps the Table-2-scale instruction counts without
   materializing million-op blocks. *)

type reg = int

type base =
  | Fp of int  (* frame-pointer relative: a stack slot *)
  | Gp of string  (* global-pointer relative: a static datum *)
  | Reg of reg  (* through a computed register *)

type op =
  | Mov of { dst : reg; src : reg }
  | Lea of { dst : reg; base : base; offset : int }
      (* address arithmetic: dst points into the same region as [base] *)
  | Malloc of { dst : reg; shared : bool; region : string }
      (* dsm_malloc (shared) or plain malloc (private) result *)
  | Load of { dst : reg option; base : base; offset : int; stride : int; count : int; site : string }
  | Store of { base : base; offset : int; stride : int; count : int; site : string }
  | Acquire of int
  | Release of int
  | Barrier

type block = { label : string; ops : op list; succs : string list }
type proc = { proc_name : string; entry : string; blocks : block list }

(* Builders *)

let mov ~dst ~src = Mov { dst; src }
let lea ~dst ?(offset = 0) base = Lea { dst; base; offset }
let malloc_shared ~dst region = Malloc { dst; shared = true; region }
let malloc_private ~dst region = Malloc { dst; shared = false; region }

let load ?dst ?(offset = 0) ?(stride = 8) ?(count = 1) ~site base =
  Load { dst; base; offset; stride; count; site }

let store ?(offset = 0) ?(stride = 8) ?(count = 1) ~site base =
  Store { base; offset; stride; count; site }

let acquire lock = Acquire lock
let release lock = Release lock
let barrier = Barrier

let block label ?(succs = []) ops = { label; ops; succs }

let proc ~name ~entry blocks = { proc_name = name; entry; blocks }

(* Structure *)

let block_table proc =
  let table = Hashtbl.create (List.length proc.blocks) in
  List.iter
    (fun b ->
      if Hashtbl.mem table b.label then
        invalid_arg (Printf.sprintf "Ir: duplicate block %S in %s" b.label proc.proc_name);
      Hashtbl.add table b.label b)
    proc.blocks;
  table

let validate proc =
  let table = block_table proc in
  if not (Hashtbl.mem table proc.entry) then
    invalid_arg (Printf.sprintf "Ir: entry block %S missing in %s" proc.entry proc.proc_name);
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          if not (Hashtbl.mem table s) then
            invalid_arg
              (Printf.sprintf "Ir: block %S names unknown successor %S in %s" b.label s
                 proc.proc_name))
        b.succs)
    proc.blocks

let defined_reg = function
  | Mov { dst; _ } | Lea { dst; _ } | Malloc { dst; _ } | Load { dst = Some dst; _ } ->
      Some dst
  | Load { dst = None; _ } | Store _ | Acquire _ | Release _ | Barrier -> None

let access_count proc =
  List.fold_left
    (fun acc b ->
      List.fold_left
        (fun acc op ->
          match op with Load { count; _ } | Store { count; _ } -> acc + count | _ -> acc)
        acc b.ops)
    0 proc.blocks

let pp_base ppf = function
  | Fp off -> Format.fprintf ppf "fp+%d" off
  | Gp sym -> Format.fprintf ppf "gp(%s)" sym
  | Reg r -> Format.fprintf ppf "r%d" r
