(** Runtime watch list for the two-run reference identification of paper
    section 6.1.

    The first run reports only racy addresses and epochs (keeping a
    program counter per access would be prohibitive). A second run —
    replayed under the recorded synchronization order — watches exactly
    those addresses and records the site of every instrumented access to
    them, mapping each race back to source locations. *)

type hit = { site : string; addr : int; kind : Proto.Race.access_kind; count : int }

type t

val create : addrs:int list -> t
val watched : t -> int -> bool

val observe : t -> site:string -> addr:int -> Proto.Race.access_kind -> unit
(** Record an instrumented access; partially applied it is shaped for
    {!Lrc.Node.set_access_observer}. *)

val hits : t -> hit list
(** All recorded hits, sorted by (addr, site, kind). *)

val sites_for : t -> addr:int -> (string * Proto.Race.access_kind) list

val pp_hit : Format.formatter -> hit -> unit
