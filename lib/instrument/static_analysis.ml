(* The static elimination pass of section 5.1, now actually computed.

   An instruction is proven to never touch shared data when:
   - it addresses through the frame pointer (stack data);
   - it addresses through the global pointer (statically allocated data —
     safe because the DSM allocates all shared memory dynamically);
   - it lives in a shared library (the applications pass no shared-segment
     pointers to libraries);
   - it lives in the CVM runtime itself;
   - the data-flow analysis over the procedure's CFG ({!Dataflow}) proves
     the computed address can only reach private data.

   Everything else is instrumented: ATOM inserts a procedure call to the
   analysis routine before it. Two by-products of the same fixpoint:

   - redundant-check batching: an access dominated in its block by a
     prior check of the same base register and page shares that check,
     so it pays only [batched_check_cost] of the full discrimination
     charge ({!check_cost_scale} feeds the driver's cost model);
   - a shared-access lint: two different sites that may address the same
     dsm_malloc region in the same static barrier phase, at least one a
     store, with disjoint must-hold locksets, are statically suspicious
     — this flags Water's unlocked potential-energy update and TSP's
     unsynchronized bound read without running the simulator. *)

type classification = {
  stack : int;
  static_data : int;
  proven_private : int;  (* computed addresses the data-flow proved private *)
  library : int;
  cvm : int;
  instrumented : int;
}

let empty =
  { stack = 0; static_data = 0; proven_private = 0; library = 0; cvm = 0; instrumented = 0 }

type warning = {
  w_proc : string;
  w_site : string;  (* the insufficiently locked access *)
  w_kind : Binary.kind;
  w_region : string;  (* the shared allocation both sites may address *)
  w_other_site : string;  (* the conflicting access *)
  w_other_locks : int list;  (* locks the conflicting access holds *)
}

type result = {
  classification : classification;
  sites : string list;  (* surviving (instrumented) sites, program order *)
  batched_checks : int;  (* checks eliminated by in-block batching *)
  check_cost_scale : float;  (* average per-check charge relative to full *)
  warnings : warning list;
  provenance : (string * Dataflow.prov) list;  (* per region-less summary: site -> prov *)
}

let batched_check_cost = 0.25
(* a batched access still sets its bitmap bit but skips the page lookup;
   calibrated share of the full 200 ns discrimination *)

(* Flat section instructions carry no CFG, so a computed access there
   can never be proven private. *)
let classify_section_instruction (i : Binary.instruction) =
  match (i.origin, i.addressing) with
  | Binary.Library _, _ -> `Library
  | Binary.Cvm_runtime, _ -> `Cvm
  | Binary.App_text, Binary.Frame_pointer -> `Stack
  | Binary.App_text, Binary.Global_pointer -> `Static
  | Binary.App_text, Binary.Computed -> `Instrumented

let classify_access (a : Dataflow.access) =
  match a.Dataflow.a_base with
  | Ir.Fp _ -> `Stack
  | Ir.Gp _ -> `Static
  | Ir.Reg _ -> if Dataflow.proven_private a then `Proven_private else `Instrumented

let bump c n = function
  | `Stack -> { c with stack = c.stack + n }
  | `Static -> { c with static_data = c.static_data + n }
  | `Proven_private -> { c with proven_private = c.proven_private + n }
  | `Library -> { c with library = c.library + n }
  | `Cvm -> { c with cvm = c.cvm + n }
  | `Instrumented -> { c with instrumented = c.instrumented + n }

(* ------------------------------------------------------------------ *)
(* The lint                                                            *)

let locks_to_list locks = Dataflow.Intset.elements locks

let lint_warnings accesses =
  let shared =
    List.filter
      (fun (a : Dataflow.access) ->
        a.Dataflow.a_reachable && not (Dataflow.Regions.is_empty a.Dataflow.a_regions))
      accesses
  in
  (* Suspicious pair: two different sites that may address the same
     region in the same static phase, at least one a store, where one
     side is lock-disciplined and the other holds nothing. Pairs where
     both locksets are empty are barrier-disciplined (SOR/FFT/LU style)
     and left to the dynamic detector — a static pass cannot see the
     owner-partitioning that makes them safe. *)
  let suspicious (a : Dataflow.access) (b : Dataflow.access) =
    a.Dataflow.a_site <> b.Dataflow.a_site
    && (a.Dataflow.a_kind = Binary.Store || b.Dataflow.a_kind = Binary.Store)
    && (not (Dataflow.Regions.is_empty (Dataflow.Regions.inter a.Dataflow.a_regions b.Dataflow.a_regions)))
    && (not (Dataflow.Intset.is_empty (Dataflow.Intset.inter a.Dataflow.a_phases b.Dataflow.a_phases)))
    && Dataflow.Intset.is_empty (Dataflow.Intset.inter a.Dataflow.a_locks b.Dataflow.a_locks)
    && Dataflow.Intset.is_empty a.Dataflow.a_locks
       <> Dataflow.Intset.is_empty b.Dataflow.a_locks
  in
  let warnings = ref [] in
  let seen = Hashtbl.create 16 in
  let emit (a : Dataflow.access) (b : Dataflow.access) =
    let region =
      Dataflow.Regions.min_elt (Dataflow.Regions.inter a.Dataflow.a_regions b.Dataflow.a_regions)
    in
    let key = (a.Dataflow.a_site, b.Dataflow.a_site, region) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      warnings :=
        {
          w_proc = a.Dataflow.a_proc;
          w_site = a.Dataflow.a_site;
          w_kind = a.Dataflow.a_kind;
          w_region = region;
          w_other_site = b.Dataflow.a_site;
          w_other_locks = locks_to_list b.Dataflow.a_locks;
        }
        :: !warnings
    end
  in
  let rec pairs = function
    | [] -> ()
    | a :: rest ->
        List.iter
          (fun b ->
            if suspicious a b then begin
              (* report the access(es) whose static lockset is empty; if
                 both hold (disjoint) locks, report the first *)
              let a_empty = Dataflow.Intset.is_empty a.Dataflow.a_locks in
              let b_empty = Dataflow.Intset.is_empty b.Dataflow.a_locks in
              if a_empty || not b_empty then emit a b;
              if b_empty && not a_empty then emit b a
            end)
          rest;
        pairs rest
  in
  pairs shared;
  List.rev !warnings

(* ------------------------------------------------------------------ *)
(* Whole-binary analysis                                               *)

let analyze ?(page_size = 4096) (binary : Binary.t) =
  let c = ref empty in
  let sites = ref [] in
  List.iter
    (fun (i : Binary.instruction) ->
      let bucket = classify_section_instruction i in
      c := bump !c 1 bucket;
      if bucket = `Instrumented then sites := i.Binary.site :: !sites)
    binary.Binary.sections;
  let batched = ref 0 in
  let warnings = ref [] in
  let provenance = ref [] in
  List.iter
    (fun proc ->
      let accesses = Dataflow.analyze ~page_size proc in
      List.iter
        (fun (a : Dataflow.access) ->
          let bucket = classify_access a in
          c := bump !c a.Dataflow.a_count bucket;
          (match a.Dataflow.a_base with
          | Ir.Reg _ ->
              provenance := (a.Dataflow.a_site, a.Dataflow.a_prov) :: !provenance
          | _ -> ());
          if bucket = `Instrumented then begin
            batched := !batched + a.Dataflow.a_batched;
            if a.Dataflow.a_count = 1 then sites := a.Dataflow.a_site :: !sites
            else
              for k = a.Dataflow.a_count - 1 downto 0 do
                sites := Printf.sprintf "%s#%d" a.Dataflow.a_site k :: !sites
              done
          end)
        accesses;
      warnings := !warnings @ lint_warnings accesses)
    binary.Binary.procs;
  let classification = !c in
  let scale =
    if classification.instrumented = 0 then 1.0
    else
      let inst = float_of_int classification.instrumented in
      let b = float_of_int !batched in
      ((inst -. b) +. (b *. batched_check_cost)) /. inst
  in
  (* deterministic report order regardless of CFG discovery order, so
     warning lists diff cleanly in CI *)
  let warnings =
    List.stable_sort
      (fun a b ->
        compare
          (a.w_proc, a.w_site, a.w_other_site, a.w_region)
          (b.w_proc, b.w_site, b.w_other_site, b.w_region))
      !warnings
  in
  {
    classification;
    sites = List.rev !sites;
    batched_checks = !batched;
    check_cost_scale = scale;
    warnings;
    provenance = List.rev !provenance;
  }

let classify binary = (analyze binary).classification

let total c = c.stack + c.static_data + c.proven_private + c.library + c.cvm + c.instrumented

let eliminated_fraction c =
  let n = total c in
  if n = 0 then 0.0 else float_of_int (n - c.instrumented) /. float_of_int n

let instrumented_sites binary = (analyze binary).sites

let pp ppf c =
  Format.fprintf ppf
    "stack=%d static=%d private=%d library=%d cvm=%d instrumented=%d (%.2f%% eliminated)"
    c.stack c.static_data c.proven_private c.library c.cvm c.instrumented
    (100.0 *. eliminated_fraction c)

let pp_warning ppf w =
  let kind = match w.w_kind with Binary.Load -> "load" | Binary.Store -> "store" in
  let locks =
    match w.w_other_locks with
    | [] -> "no locks"
    | ls -> Printf.sprintf "locks {%s}" (String.concat "," (List.map string_of_int ls))
  in
  Format.fprintf ppf
    "%s: %s at %s reaches shared region %s with an empty static lockset (conflicts with %s holding %s)"
    w.w_proc kind w.w_site w.w_region w.w_other_site locks
