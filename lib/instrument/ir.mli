(** Register-transfer IR for the synthetic binaries.

    Procedures are CFGs of basic blocks; ops model the address
    computations ATOM's classifier keyed on (moves, lea, malloc
    results, frame/global-pointer addressing) plus loads/stores through
    registers and lock/barrier synchronization. A [count] on an access
    stands for [count] alike static instructions at [stride]-spaced
    offsets. *)

type reg = int

type base =
  | Fp of int  (** frame-pointer relative: a stack slot *)
  | Gp of string  (** global-pointer relative: a static datum *)
  | Reg of reg  (** through a computed register *)

type op =
  | Mov of { dst : reg; src : reg }
  | Lea of { dst : reg; base : base; offset : int }
  | Malloc of { dst : reg; shared : bool; region : string }
  | Load of {
      dst : reg option;
      base : base;
      offset : int;
      stride : int;
      count : int;
      site : string;
    }
  | Store of { base : base; offset : int; stride : int; count : int; site : string }
  | Acquire of int
  | Release of int
  | Barrier

type block = { label : string; ops : op list; succs : string list }
type proc = { proc_name : string; entry : string; blocks : block list }

val mov : dst:reg -> src:reg -> op
val lea : dst:reg -> ?offset:int -> base -> op
val malloc_shared : dst:reg -> string -> op
val malloc_private : dst:reg -> string -> op
val load : ?dst:reg -> ?offset:int -> ?stride:int -> ?count:int -> site:string -> base -> op
val store : ?offset:int -> ?stride:int -> ?count:int -> site:string -> base -> op
val acquire : int -> op
val release : int -> op
val barrier : op

val block : string -> ?succs:string list -> op list -> block
val proc : name:string -> entry:string -> block list -> proc

val block_table : proc -> (string, block) Hashtbl.t
(** Label-indexed blocks; raises on duplicate labels. *)

val validate : proc -> unit
(** Raises [Invalid_argument] if the entry or a successor is missing. *)

val defined_reg : op -> reg option
(** The register an op (re)defines, if any. *)

val access_count : proc -> int
(** Total static loads+stores (counts expanded). *)

val pp_base : Format.formatter -> base -> unit
