(* Synthetic executable images — the objects our ATOM analogue analyzes.

   ATOM classified every load and store in a real Alpha binary by its
   addressing mode and origin. We cannot rewrite native binaries from
   OCaml, so each application instead carries a synthetic image with the
   same structure the real classifier consumed: flat [sections] for code
   we never analyze beyond its origin (shared libraries, the CVM runtime
   itself), and application-text [procs] — register-transfer CFGs
   ({!Ir}) whose computed addresses the data-flow analysis in
   {!Dataflow} classifies. Whether a computed access is private is
   *derived* by that analysis; the image carries no oracle bit. *)

type kind = Load | Store

type addressing =
  | Frame_pointer  (* sp/fp-relative: a stack slot *)
  | Global_pointer  (* gp-relative: statically allocated data *)
  | Computed  (* through a computed register: possibly shared *)

type origin =
  | App_text  (* the application's own code *)
  | Library of string  (* libc, libm, ... *)
  | Cvm_runtime  (* the DSM library linked into the binary *)

type instruction = {
  kind : kind;
  addressing : addressing;
  origin : origin;
  site : string;  (* symbolic "program counter": file:function#n *)
}

type t = { name : string; sections : instruction list; procs : Ir.proc list }

(* Builders used by the applications' [binary] descriptions. *)

let make ~name ?(procs = []) sections =
  List.iter Ir.validate procs;
  { name; sections; procs }

let repeat n f = List.init n f

let bulk ~kind ~addressing ~origin ~prefix n =
  repeat n (fun i -> { kind; addressing; origin; site = Printf.sprintf "%s#%d" prefix i })

let section ~origin ~prefix ~loads ~stores =
  (* library/runtime sections: addressing is irrelevant to classification *)
  bulk ~kind:Load ~addressing:Computed ~origin ~prefix:(prefix ^ ".ld") loads
  @ bulk ~kind:Store ~addressing:Computed ~origin ~prefix:(prefix ^ ".st") stores

(* Lowering: app-text procedures flatten to one instruction per static
   access (counts expanded), keyed by the syntactic addressing mode. *)

let expand_sites site count =
  if count = 1 then [ site ] else repeat count (fun i -> Printf.sprintf "%s#%d" site i)

let addressing_of_base = function
  | Ir.Fp _ -> Frame_pointer
  | Ir.Gp _ -> Global_pointer
  | Ir.Reg _ -> Computed

let lower_proc (proc : Ir.proc) =
  List.concat_map
    (fun (b : Ir.block) ->
      List.concat_map
        (fun (op : Ir.op) ->
          match op with
          | Ir.Load { base; count; site; _ } ->
              List.map
                (fun site ->
                  { kind = Load; addressing = addressing_of_base base; origin = App_text; site })
                (expand_sites site count)
          | Ir.Store { base; count; site; _ } ->
              List.map
                (fun site ->
                  { kind = Store; addressing = addressing_of_base base; origin = App_text; site })
                (expand_sites site count)
          | _ -> [])
        b.Ir.ops)
    proc.Ir.blocks

let instructions t = t.sections @ List.concat_map lower_proc t.procs

let instruction_count t =
  List.length t.sections
  + List.fold_left (fun acc p -> acc + Ir.access_count p) 0 t.procs

let loads t = List.filter (fun i -> i.kind = Load) (instructions t)
let stores t = List.filter (fun i -> i.kind = Store) (instructions t)
