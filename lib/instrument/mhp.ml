(* May-happen-in-parallel analysis over the Dataflow fixpoint.

   The lint in {!Static_analysis} answers one question: is there a
   shared access whose static lockset looks insufficient? This module
   answers the whole-program version: which *pairs* of static accesses
   may execute in parallel on overlapping shared data without a common
   ordering lock? The model is the SPMD discipline of the paper's
   applications — every processor runs the same CFG, so an access pair
   (including a store paired with itself) may run concurrently on two
   processors whenever:

   - both accesses are shared (computed addresses the provenance pass
     could not prove private), and
   - their static barrier-phase windows overlap (some program point
     reaches both without crossing a barrier), and
   - they may address the same dsm_malloc region, and their static byte
     footprints within that region overlap (offset/stride intervals;
     an unknown displacement widens to the whole region), and
   - at least one is a store, and
   - their must-hold locksets are disjoint (no common lock orders them).

   Pairs split by severity: [Mismatch] (one side locks, the other does
   not — or both lock, but disjointly) reproduces the lint's warnings;
   [Unlocked] (neither side holds a lock) is the barrier-disciplined
   residue a static pass cannot separate from owner-partitioned safety,
   kept out of the warning set but inside the may-race set.

   Everything downstream derives from the pair set:
   - soundness: every dynamically observed race must land on a flagged
     pair (checked against the detector and the happens-before oracle
     in the test suite);
   - elision: a site none of whose shared accesses joins any pair is
     statically race-free, so its runtime check can be skipped. *)

type severity = Mismatch | Unlocked

type side = { s_site : string; s_kind : Binary.kind; s_locks : int list }

type pair = {
  p_proc : string;
  p_severity : severity;
  p_region : string;  (* witness region both sides may address *)
  p_phases : int list;  (* static phases containing both sides *)
  p_a : side;
  p_b : side;  (* sides ordered (site, kind, locks) ascending *)
}

type report = {
  pairs : pair list;  (* deterministic order, most severe first *)
  may_race_sites : string list;  (* sites joining at least one pair *)
  race_free_sites : string list;  (* shared sites joining no pair *)
  shared_sites : string list;  (* every instrumented shared site *)
}

let word_size = 8

let severity_rank = function Mismatch -> 0 | Unlocked -> 1
let severity_name = function Mismatch -> "lock-mismatch" | Unlocked -> "unlocked"
let kind_rank = function Binary.Load -> 0 | Binary.Store -> 1

(* Static byte footprint of an access within its region: the interval
   spanned by offset/stride/count, shifted by the base register's
   displacement. None when the displacement chain lost the base — the
   caller must then assume the whole region. *)
let footprint (a : Dataflow.access) =
  match a.Dataflow.a_disp with
  | Dataflow.Disp_unknown -> None
  | Dataflow.Disp d ->
      let first = d + a.Dataflow.a_offset in
      let span = a.Dataflow.a_stride * (a.Dataflow.a_count - 1) in
      Some (first + min 0 span, first + max 0 span + word_size)

let footprints_overlap a b =
  match (footprint a, footprint b) with
  | Some (lo1, hi1), Some (lo2, hi2) -> lo1 < hi2 && lo2 < hi1
  | _ -> true

(* Regions the access may address; None means any (unknown provenance
   must be assumed to alias every shared allocation). *)
let may_regions (a : Dataflow.access) =
  match a.Dataflow.a_prov with
  | Dataflow.Unknown -> None
  | _ -> Some a.Dataflow.a_regions

let unknown_region = "<unknown>"

let common_regions a b =
  match (may_regions a, may_regions b) with
  | Some ra, Some rb -> Dataflow.Regions.elements (Dataflow.Regions.inter ra rb)
  | Some r, None | None, Some r -> Dataflow.Regions.elements r
  | None, None -> [ unknown_region ]

(* A computed access the provenance pass could not prove private: the
   instrumented population, and the only accesses that can race. *)
let is_shared (a : Dataflow.access) =
  a.Dataflow.a_reachable
  && (match a.Dataflow.a_base with Ir.Reg _ -> true | Ir.Fp _ | Ir.Gp _ -> false)
  && not (Dataflow.proven_private a)

let may_happen_in_parallel (a : Dataflow.access) (b : Dataflow.access) =
  (a.Dataflow.a_kind = Binary.Store || b.Dataflow.a_kind = Binary.Store)
  && (not
        (Dataflow.Intset.is_empty
           (Dataflow.Intset.inter a.Dataflow.a_phases b.Dataflow.a_phases)))
  && Dataflow.Intset.is_empty (Dataflow.Intset.inter a.Dataflow.a_locks b.Dataflow.a_locks)
  && footprints_overlap a b

let severity_of (a : Dataflow.access) (b : Dataflow.access) =
  if
    Dataflow.Intset.is_empty a.Dataflow.a_locks
    && Dataflow.Intset.is_empty b.Dataflow.a_locks
  then Unlocked
  else Mismatch

let side_of (a : Dataflow.access) =
  {
    s_site = a.Dataflow.a_site;
    s_kind = a.Dataflow.a_kind;
    s_locks = Dataflow.Intset.elements a.Dataflow.a_locks;
  }

let side_key s = (s.s_site, kind_rank s.s_kind, s.s_locks)

let pair_order p q =
  compare
    ( p.p_proc,
      severity_rank p.p_severity,
      p.p_region,
      side_key p.p_a,
      side_key p.p_b,
      p.p_phases )
    ( q.p_proc,
      severity_rank q.p_severity,
      q.p_region,
      side_key q.p_a,
      side_key q.p_b,
      q.p_phases )

let analyze ?(page_size = 4096) (binary : Binary.t) =
  let by_key : (string * string * string * int * string * int, pair) Hashtbl.t =
    Hashtbl.create 64
  in
  let participating : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let shared : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun proc ->
      let accesses =
        Dataflow.analyze ~page_size proc |> List.filter is_shared |> Array.of_list
      in
      Array.iter (fun (a : Dataflow.access) -> Hashtbl.replace shared a.Dataflow.a_site ()) accesses;
      let n = Array.length accesses in
      for i = 0 to n - 1 do
        (* j starts at i: under SPMD a store may pair with its own copy
           on another processor *)
        for j = i to n - 1 do
          let a = accesses.(i) and b = accesses.(j) in
          if may_happen_in_parallel a b then
            List.iter
              (fun region ->
                let sa = side_of a and sb = side_of b in
                let sa, sb = if side_key sa <= side_key sb then (sa, sb) else (sb, sa) in
                let p =
                  {
                    p_proc = proc.Ir.proc_name;
                    p_severity = severity_of a b;
                    p_region = region;
                    p_phases =
                      Dataflow.Intset.elements
                        (Dataflow.Intset.inter a.Dataflow.a_phases b.Dataflow.a_phases);
                    p_a = sa;
                    p_b = sb;
                  }
                in
                Hashtbl.replace participating sa.s_site ();
                Hashtbl.replace participating sb.s_site ();
                let key =
                  ( p.p_proc,
                    region,
                    sa.s_site,
                    kind_rank sa.s_kind,
                    sb.s_site,
                    kind_rank sb.s_kind )
                in
                match Hashtbl.find_opt by_key key with
                | Some prev when severity_rank prev.p_severity <= severity_rank p.p_severity
                  ->
                    ()
                | _ -> Hashtbl.replace by_key key p)
              (common_regions a b)
        done
      done)
    binary.Binary.procs;
  let pairs = Hashtbl.fold (fun _ p acc -> p :: acc) by_key [] |> List.sort pair_order in
  let may_race_sites =
    Hashtbl.fold (fun site () acc -> site :: acc) participating [] |> List.sort compare
  in
  let race_free_sites =
    Hashtbl.fold
      (fun site () acc ->
        if site <> "?" && not (Hashtbl.mem participating site) then site :: acc else acc)
      shared []
    |> List.sort compare
  in
  let shared_sites =
    Hashtbl.fold (fun site () acc -> site :: acc) shared [] |> List.sort compare
  in
  { pairs; may_race_sites; race_free_sites; shared_sites }

let race_free_sites ?page_size binary = (analyze ?page_size binary).race_free_sites

let covers report ~site_a ~site_b =
  List.exists
    (fun p ->
      (p.p_a.s_site = site_a && p.p_b.s_site = site_b)
      || (p.p_a.s_site = site_b && p.p_b.s_site = site_a))
    report.pairs

let covers_site report ~site = List.mem site report.may_race_sites

(* The lint view: Mismatch pairs with distinct sites, reported from the
   under-locked side, deduplicated like {!Static_analysis.lint_warnings}
   so the two warning sets coincide on binaries without disjoint
   non-empty locksets. *)
let warnings report =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun p ->
      if p.p_severity <> Mismatch || p.p_a.s_site = p.p_b.s_site then None
      else begin
        let bare, other =
          if p.p_a.s_locks = [] then (p.p_a, p.p_b)
          else if p.p_b.s_locks = [] then (p.p_b, p.p_a)
          else (p.p_a, p.p_b)
        in
        let key = (bare.s_site, other.s_site, p.p_region) in
        if Hashtbl.mem seen key then None
        else begin
          Hashtbl.replace seen key ();
          Some
            {
              Static_analysis.w_proc = p.p_proc;
              w_site = bare.s_site;
              w_kind = bare.s_kind;
              w_region = p.p_region;
              w_other_site = other.s_site;
              w_other_locks = other.s_locks;
            }
        end
      end)
    report.pairs
  |> List.stable_sort (fun (a : Static_analysis.warning) b ->
         compare
           (a.Static_analysis.w_proc, a.w_site, a.w_other_site, a.w_region)
           (b.Static_analysis.w_proc, b.w_site, b.w_other_site, b.w_region))

let pp_side ppf s =
  let kind = match s.s_kind with Binary.Load -> "load" | Binary.Store -> "store" in
  let locks =
    match s.s_locks with
    | [] -> "no locks"
    | ls -> Printf.sprintf "locks {%s}" (String.concat "," (List.map string_of_int ls))
  in
  Format.fprintf ppf "%s at %s [%s]" kind s.s_site locks

let pp_pair ppf p =
  Format.fprintf ppf "%s: %s pair on %s (phases {%s}): %a <-> %a" p.p_proc
    (severity_name p.p_severity) p.p_region
    (String.concat "," (List.map string_of_int p.p_phases))
    pp_side p.p_a pp_side p.p_b

let pp_report ppf r =
  let mismatch =
    List.length (List.filter (fun p -> p.p_severity = Mismatch) r.pairs)
  in
  Format.fprintf ppf
    "@[<v>%d may-parallel pair(s) (%d lock-mismatch, %d unlocked), %d/%d shared sites \
     statically race-free@ %a@]"
    (List.length r.pairs) mismatch
    (List.length r.pairs - mismatch)
    (List.length r.race_free_sites)
    (List.length r.shared_sites)
    (Format.pp_print_list pp_pair)
    r.pairs
