(** Forward abstract interpretation over a provenance lattice.

    Generalizes the paper's section 5.1 intra-basic-block data-flow
    analysis to whole procedures: a worklist fixpoint over the CFG
    computes, for every load/store, the provenance of its address
    ([Stack | Static | PrivateHeap | SharedHeap | Unknown]), the
    must-hold lockset, the static barrier phase, and whether its
    runtime check is dominated by an earlier check of the same base
    register and page (redundant-check batching). *)

module Regmap : Map.S with type key = int
module Regions : Set.S with type elt = string
module Intset : Set.S with type elt = int

type prov =
  | Stack
  | Static
  | Private_heap
  | Shared_heap of Regions.t  (** with the dsm_malloc sites it may address *)
  | Unknown

val join : prov -> prov -> prov
(** Least upper bound; [Unknown] is top, bottom is absence from the map. *)

val prov_equal : prov -> prov -> bool

val is_private : prov -> bool
(** Can the analysis prove the address never reaches shared data? *)

val regions_of : prov -> Regions.t
val pp_prov : Format.formatter -> prov -> unit

type disp = Disp of int | Disp_unknown
(** Constant byte displacement of a register from the base of the
    allocation it points into; [Disp_unknown] once the chain loses it. *)

type state = { regs : prov Regmap.t; disps : disp Regmap.t; locks : Intset.t }

val initial_state : state
val state_join : state -> state -> state
val state_equal : state -> state -> bool
val lookup : state -> Ir.reg -> prov
val lookup_disp : state -> Ir.reg -> disp
val transfer_op : state -> Ir.op -> state
val transfer_block : state -> Ir.op list -> state

val fixpoint : Ir.proc -> (string, state) Hashtbl.t
(** Block-entry states at fixpoint (absent = unreachable). Raises
    [Invalid_argument] on a malformed CFG. *)

type access = {
  a_proc : string;
  a_block : string;
  a_index : int;
  a_kind : Binary.kind;
  a_base : Ir.base;
  a_site : string;
  a_count : int;
  a_offset : int;
  a_stride : int;
  a_disp : disp;
  a_prov : prov;
  a_locks : Intset.t;
  a_regions : Regions.t;
  a_phases : Intset.t;
  a_batched : int;
  a_reachable : bool;
}

val proven_private : access -> bool
(** Frame/global-pointer addressing, or computed provenance that can
    only reach private data. *)

val analyze : ?page_size:int -> Ir.proc -> access list
(** Run the fixpoint and return every static access with its derived
    facts, in program order. *)
