(** May-happen-in-parallel analysis: the pairwise upgrade of the
    {!Static_analysis} lint.

    Under the SPMD model (every processor runs the same CFG), two
    shared accesses — including a store paired with itself — form a
    may-parallel pair when their static barrier-phase windows overlap,
    they may address the same dsm_malloc region with overlapping static
    byte footprints, at least one is a store, and no common must-hold
    lock orders them.

    The pair set is an over-approximation of the dynamically possible
    races (soundness is asserted against the runtime detector and the
    happens-before oracle in the test suite); its complement over the
    instrumented shared sites is the statically race-free set whose
    runtime checks instrumentation elision may skip. *)

type severity =
  | Mismatch  (** one side is lock-disciplined, the other is not (or the locks are disjoint) *)
  | Unlocked  (** neither side holds a lock: barrier-disciplined residue *)

type side = { s_site : string; s_kind : Binary.kind; s_locks : int list }

type pair = {
  p_proc : string;
  p_severity : severity;
  p_region : string;  (** witness region both sides may address *)
  p_phases : int list;  (** static phases containing both sides *)
  p_a : side;
  p_b : side;  (** sides ordered (site, kind, locks) ascending *)
}

type report = {
  pairs : pair list;  (** deterministic order, most severe first *)
  may_race_sites : string list;  (** sites joining at least one pair *)
  race_free_sites : string list;  (** shared sites joining no pair *)
  shared_sites : string list;  (** every instrumented shared site *)
}

val severity_rank : severity -> int
val severity_name : severity -> string

val analyze : ?page_size:int -> Binary.t -> report
(** Run {!Dataflow.analyze} over every procedure and pair up the shared
    accesses. Deterministic for a given binary. *)

val race_free_sites : ?page_size:int -> Binary.t -> string list
(** Shared sites the analysis proves race-free (no pair membership). *)

val covers : report -> site_a:string -> site_b:string -> bool
(** Is there a pair whose two sides are exactly these sites (in either
    order)? *)

val covers_site : report -> site:string -> bool
(** Does the site join at least one pair? *)

val warnings : report -> Static_analysis.warning list
(** The lint view: [Mismatch] pairs with distinct sites, reported from
    the under-locked side, deduplicated and sorted. Coincides with
    {!Static_analysis.lint_warnings} on binaries without
    disjoint-but-non-empty lockset pairs. *)

val pp_side : Format.formatter -> side -> unit
val pp_pair : Format.formatter -> pair -> unit
val pp_report : Format.formatter -> report -> unit
