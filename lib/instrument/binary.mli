(** Synthetic executable images — what our ATOM analogue analyzes.

    An image has flat [sections] (shared libraries and the CVM runtime,
    classified by origin alone) and application-text [procs]:
    register-transfer CFGs whose computed addresses are classified by
    the data-flow analysis in {!Dataflow}. There is no oracle bit —
    whether a computed access is private is derived, not asserted. *)

type kind = Load | Store

type addressing =
  | Frame_pointer  (** sp/fp-relative: a stack slot *)
  | Global_pointer  (** gp-relative: statically allocated data *)
  | Computed  (** through a computed register: possibly shared *)

type origin = App_text | Library of string | Cvm_runtime

type instruction = {
  kind : kind;
  addressing : addressing;
  origin : origin;
  site : string;  (** symbolic program counter, e.g. "file:function#n" *)
}

type t = { name : string; sections : instruction list; procs : Ir.proc list }

val make : name:string -> ?procs:Ir.proc list -> instruction list -> t
(** Validates every procedure's CFG. *)

val bulk : kind:kind -> addressing:addressing -> origin:origin -> prefix:string -> int -> instruction list
(** [bulk ~kind ~addressing ~origin ~prefix n] makes [n] alike
    instructions with distinct sites. *)

val section : origin:origin -> prefix:string -> loads:int -> stores:int -> instruction list
(** A library or runtime section (addressing irrelevant to elimination). *)

val lower_proc : Ir.proc -> instruction list
(** One instruction per static access, counts expanded, in program
    order; addressing is the access's syntactic base. *)

val instructions : t -> instruction list
(** Sections followed by every procedure's lowered accesses. *)

val instruction_count : t -> int
val loads : t -> instruction list
val stores : t -> instruction list
