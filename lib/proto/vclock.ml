(* Vector clocks ("version vectors" in the paper). Each interval is stamped
   with one; comparing two stamps decides concurrency in constant time,
   which is the property the whole online detection scheme leans on. *)

type t = int array

let create nprocs = Array.make nprocs 0

let size = Array.length

let copy = Array.copy

let get t p = t.(p)

let set t p v = t.(p) <- v

let incr t p = t.(p) <- t.(p) + 1

let merge_into ~dst src =
  let n = Array.length dst in
  if n <> Array.length src then invalid_arg "Vclock.merge_into";
  for i = 0 to n - 1 do
    let v = Array.unsafe_get src i in
    if v > Array.unsafe_get dst i then Array.unsafe_set dst i v
  done

let merge a b =
  let dst = copy a in
  merge_into ~dst b;
  dst

let leq a b =
  let n = Array.length a in
  if n <> Array.length b then invalid_arg "Vclock.leq";
  let rec scan i =
    i >= n || (Array.unsafe_get a i <= Array.unsafe_get b i && scan (i + 1))
  in
  scan 0

let equal a b = a = b

let concurrent a b = (not (leq a b)) && not (leq b a)

let size_bytes t = 4 * Array.length t

let pp ppf t =
  Format.fprintf ppf "<%s>" (String.concat "," (Array.to_list (Array.map string_of_int t)))
