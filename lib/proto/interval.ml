(* Process intervals — the unit of ordering in LRC.

   A new interval starts at every acquire and every release. The interval
   record is exactly the structure CVM ships on synchronization messages:
   an id, a version vector, write notices (pages written), and — the
   paper's modification (ii) — read notices (pages read). Word-level access
   bitmaps and multi-writer diffs stay with the creating processor and are
   fetched on demand (bitmaps in the barrier's extra round, diffs on page
   faults). *)

type id = { proc : int; index : int }

let pp_id ppf id = Format.fprintf ppf "s_%d^%d" id.proc id.index

type t = {
  id : id;
  vc : Vclock.t;  (* creator's vector time at creation; vc.(proc) = index *)
  epoch : int;  (* barrier epoch the interval belongs to *)
  mutable write_pages : int list;  (* write notices *)
  mutable read_pages : int list;  (* read notices (race detection only) *)
  mutable closed : bool;
}

let create ~proc ~index ~vc ~epoch =
  if Vclock.get vc proc <> index then invalid_arg "Interval.create: vc/index mismatch";
  { id = { proc; index }; vc; epoch; write_pages = []; read_pages = []; closed = false }

let id t = t.id
let proc t = t.id.proc
let index t = t.id.index

(* Monomorphic int-list membership: [List.mem] goes through the
   polymorphic comparator, and these run on the barrier master for every
   concurrent pair of the epoch. *)
let rec mem_page (page : int) = function
  | [] -> false
  | p :: tl -> p = page || mem_page page tl

let add_write_page t page =
  if not (mem_page page t.write_pages) then t.write_pages <- page :: t.write_pages

let add_read_page t page =
  if not (mem_page page t.read_pages) then t.read_pages <- page :: t.read_pages

let precedes a b =
  (* sigma_p^i happens-before sigma_q^j iff q had seen p's interval i when
     it created interval j: the constant-time, two-integer comparison the
     paper relies on. *)
  Vclock.get b.vc a.id.proc >= a.id.index

let concurrent a b = (not (precedes a b)) && not (precedes b a)

let rec has_common xs ys =
  match xs with [] -> false | x :: tl -> mem_page x ys || has_common tl ys

let overlapping_pages a b =
  (* Pages through which the pair could race: written by both, or written
     by one and read by the other. Almost every concurrent pair of an
     epoch overlaps nowhere, so an allocation-free emptiness probe runs
     first and the lists are only materialized for genuine candidates. *)
  if
    has_common a.write_pages b.write_pages
    || has_common a.read_pages b.write_pages
    || has_common a.write_pages b.read_pages
  then begin
    let inter xs ys = List.filter (fun x -> mem_page x ys) xs in
    let ww = inter a.write_pages b.write_pages in
    let rw = inter a.read_pages b.write_pages in
    let wr = inter a.write_pages b.read_pages in
    List.sort_uniq compare (ww @ rw @ wr)
  end
  else []

let notice_count t = List.length t.write_pages + List.length t.read_pages

let size_bytes ~with_read_notices t =
  (* id + epoch + version vector + 4 bytes per notice; read and write
     notices are the same size, as in the paper. *)
  let read_part = if with_read_notices then 4 * List.length t.read_pages else 0 in
  12 + Vclock.size_bytes t.vc + (4 * List.length t.write_pages) + read_part

let read_notice_bytes t = 4 * List.length t.read_pages

let compare_ids a b =
  match compare a.proc b.proc with 0 -> compare a.index b.index | c -> c

let pp ppf t =
  Format.fprintf ppf "s_%d^%d(e%d w:[%s] r:[%s])" t.id.proc t.id.index t.epoch
    (String.concat ";" (List.map string_of_int t.write_pages))
    (String.concat ";" (List.map string_of_int t.read_pages))
