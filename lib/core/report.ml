(* Plain-text rendering of the experiment results, shaped like the paper's
   tables so paper-vs-measured comparison is eyeball-easy. *)

let hr ppf width = Format.fprintf ppf "%s@." (String.make width '-')

let table1 ppf rows =
  Format.fprintf ppf "Table 1. Application Characteristics (measured)@.";
  hr ppf 86;
  Format.fprintf ppf "%-8s %-18s %-14s %12s %14s %10s@." "App" "Input Set" "Synchronization"
    "Memory (KB)" "Ints/Barrier" "Slowdown";
  hr ppf 86;
  List.iter
    (fun (r : Experiments.table1_row) ->
      Format.fprintf ppf "%-8s %-18s %-14s %12d %14.1f %10.2f@." r.t1_name r.t1_input r.t1_sync
        r.t1_memory_kb r.t1_intervals_per_barrier r.t1_slowdown)
    rows;
  hr ppf 86;
  Format.fprintf ppf
    "paper:   FFT 2 ints/barrier, 2.08x | SOR 2, 1.83x | TSP 177, 2.51x | Water 46, 2.31x@."

let table2 ppf rows =
  Format.fprintf ppf "Table 2. Instrumentation Statistics (static classification)@.";
  hr ppf 86;
  Format.fprintf ppf "%-8s %9s %9s %8s %9s %7s %7s %12s@." "App" "Stack" "Static" "Private"
    "Library" "CVM" "Inst." "Eliminated";
  hr ppf 86;
  List.iter
    (fun (r : Experiments.table2_row) ->
      let c = r.t2_class in
      Format.fprintf ppf "%-8s %9d %9d %8d %9d %7d %7d %11.2f%%@." r.t2_name
        c.Instrument.Static_analysis.stack c.Instrument.Static_analysis.static_data
        c.Instrument.Static_analysis.proven_private c.Instrument.Static_analysis.library
        c.Instrument.Static_analysis.cvm c.Instrument.Static_analysis.instrumented
        (100.0 *. Instrument.Static_analysis.eliminated_fraction c))
    rows;
  hr ppf 86;
  Format.fprintf ppf "paper:   FFT 1285/1496/124716/3910/261 | SOR 342/1304/48717/3910/126@.";
  Format.fprintf ppf "         TSP 244/1213/48717/3910/350  | Water 649/1919/124716/3910/528@."

let table3 ppf rows =
  Format.fprintf ppf "Table 3. Dynamic Metrics (measured)@.";
  hr ppf 88;
  Format.fprintf ppf "%-8s %10s %10s %10s %18s %18s@." "App" "Ints Used" "Bitmaps" "Msg Ohead"
    "Shared acc/s" "Private acc/s";
  hr ppf 88;
  List.iter
    (fun (r : Experiments.table3_row) ->
      Format.fprintf ppf "%-8s %9.0f%% %9.0f%% %9.1f%% %18.0f %18.0f@." r.t3_name
        r.t3_intervals_used_pct r.t3_bitmaps_used_pct r.t3_msg_overhead_pct r.t3_shared_per_sec
        r.t3_private_per_sec)
    rows;
  hr ppf 88;
  Format.fprintf ppf
    "paper:   FFT 15%%/1%%/0.4%% | SOR 0%%/0%%/1.6%% | TSP 93%%/13%%/1.3%% | Water \
     13%%/11%%/48.3%%@."

let figure3 ppf rows =
  Format.fprintf ppf "Figure 3. Overhead Breakdown (%% of base runtime)@.";
  hr ppf 86;
  Format.fprintf ppf "%-8s %10s %10s %13s %10s %9s %10s@." "App" "CVM Mods" "Proc Call"
    "Access Check" "Intervals" "Bitmaps" "Slowdown";
  hr ppf 86;
  List.iter
    (fun (r : Experiments.figure3_row) ->
      let get category = List.assoc category r.f3_overheads in
      Format.fprintf ppf "%-8s %9.1f%% %9.1f%% %12.1f%% %9.1f%% %8.1f%% %10.2f@." r.f3_name
        (get Sim.Stats.Cvm_mods) (get Sim.Stats.Proc_call) (get Sim.Stats.Access_check)
        (get Sim.Stats.Intervals) (get Sim.Stats.Bitmaps) r.f3_slowdown)
    rows;
  hr ppf 86;
  Format.fprintf ppf
    "paper:   instrumentation (proc call + access check) ~68%% of overhead on average;@.";
  Format.fprintf ppf
    "         interval comparison at most third-most expensive; Water largest Intervals.@."

let figure4 ppf rows =
  Format.fprintf ppf "Figure 4. Slowdown Factor versus Number of Processors@.";
  hr ppf 50;
  List.iter
    (fun (r : Experiments.figure4_row) ->
      Format.fprintf ppf "%-8s" r.f4_name;
      List.iter (fun (p, s) -> Format.fprintf ppf "  p=%d: %5.2f" p s) r.f4_points;
      Format.fprintf ppf "@.")
    rows;
  hr ppf 50;
  Format.fprintf ppf "paper:   slowdown DECREASES as processors are added (section 6.2).@."

let figure5 ppf results =
  Format.fprintf ppf "Figure 5. Races that occur only on a weak memory system@.";
  hr ppf 70;
  List.iter
    (fun (r : Experiments.figure5_result) ->
      Format.fprintf ppf "%-24s P2 read qPtr = %-4d racy words: %s@." r.f5_protocol
        r.f5_qptr_seen_by_p2
        (String.concat ", " (List.map snd r.f5_racy_words)))
    results;
  hr ppf 70;
  Format.fprintf ppf
    "paper:   under LRC the stale qPtr causes w2/w3 slot races; under SC only@.";
  Format.fprintf ppf "         the qPtr and qEmpty races can occur.@."

let ablation ppf rows =
  Format.fprintf ppf "Ablation (section 6.5): write bitmaps from multi-writer diffs@.";
  hr ppf 72;
  Format.fprintf ppf "%-8s %16s %16s %12s %12s@." "App" "Full slowdown" "Diff slowdown"
    "Races(full)" "Races(diff)";
  hr ppf 72;
  List.iter
    (fun (r : Experiments.ablation_row) ->
      Format.fprintf ppf "%-8s %16.2f %16.2f %12d %12d@." r.ab_name r.ab_full_slowdown
        r.ab_diff_slowdown r.ab_full_races r.ab_diff_races)
    rows;
  hr ppf 72

(* Per-application rendering of the static pass for `cvm_race analyze`:
   the classification line, the batching summary the cost model consumes,
   and the lint findings. *)
let analysis ppf ~name (r : Instrument.Static_analysis.result) =
  let open Instrument.Static_analysis in
  Format.fprintf ppf "== %s static analysis ==@." name;
  Format.fprintf ppf "  %a@." pp r.classification;
  Format.fprintf ppf "  batching: %d of %d checks batched, per-check charge scale %.3f@."
    r.batched_checks r.classification.instrumented r.check_cost_scale;
  (match r.warnings with
  | [] -> Format.fprintf ppf "  lint: no statically suspicious shared accesses@."
  | ws ->
      Format.fprintf ppf "  lint: %d warning(s)@." (List.length ws);
      List.iter (fun w -> Format.fprintf ppf "    %a@." pp_warning w) ws)

(* Deterministic report order — page, then word offset, then the interval
   pair — regardless of the order the detector produced the races in, so
   two runs (or a run and its replay) print byte-identical reports. *)
let race_order (a : Proto.Race.t) (b : Proto.Race.t) =
  let pair_order (ia, _) (ib, _) = Proto.Interval.compare_ids ia ib in
  let cmp =
    [
      (fun () -> compare a.Proto.Race.page b.Proto.Race.page);
      (fun () -> compare a.Proto.Race.word b.Proto.Race.word);
      (fun () -> pair_order a.Proto.Race.first b.Proto.Race.first);
      (fun () -> pair_order a.Proto.Race.second b.Proto.Race.second);
      (fun () -> Proto.Race.compare a b);
    ]
  in
  List.fold_left (fun acc f -> if acc <> 0 then acc else f ()) 0 cmp

let races ?symtab ppf races =
  let pp_race =
    match symtab with
    | Some symtab -> Proto.Race.pp_named ~name_of:(Mem.Symtab.name_of symtab)
    | None -> Proto.Race.pp
  in
  match races with
  | [] -> Format.fprintf ppf "no data races detected@."
  | _ ->
      let races = List.stable_sort race_order races in
      Format.fprintf ppf "%d data race(s):@." (List.length races);
      List.iter (fun race -> Format.fprintf ppf "  %a@." pp_race race) races

let protocols ppf rows =
  Format.fprintf ppf "Protocol comparison (baseline runs, no detection)@.";
  hr ppf 86;
  Format.fprintf ppf "%-8s %-16s %10s %10s %10s %12s %8s@." "App" "Protocol" "Time(ms)"
    "Messages" "KB" "Page fetch" "Diffs";
  hr ppf 86;
  List.iter
    (fun (r : Experiments.protocol_row) ->
      Format.fprintf ppf "%-8s %-16s %10.1f %10d %10d %12d %8d@." r.pr_app r.pr_protocol
        r.pr_time_ms r.pr_messages r.pr_kbytes r.pr_page_fetches r.pr_diffs)
    rows;
  hr ppf 86

let faults ppf rows =
  Format.fprintf ppf "Fault sweep: race-report stability over a lossy wire@.";
  hr ppf 92;
  Format.fprintf ppf "%-8s %7s %7s %11s %9s %9s %9s %9s %10s@." "App" "Drop%" "Races"
    "SameRaces" "SameMem" "Retrans" "Timeouts" "DupSupp" "Time(ms)";
  hr ppf 92;
  List.iter
    (fun (r : Experiments.fault_row) ->
      Format.fprintf ppf "%-8s %7.1f %7d %11s %9s %9d %9d %9d %10.1f@." r.fs_app r.fs_drop_pct
        r.fs_races
        (if r.fs_same_races then "yes" else "NO")
        (if r.fs_same_mem then "yes" else "NO")
        r.fs_retransmits r.fs_timeouts r.fs_dup_suppressed r.fs_time_ms)
    rows;
  hr ppf 92;
  Format.fprintf ppf
    "expect:  racy-address sets stable at every drop rate; barrier-only apps (SOR@.";
  Format.fprintf ppf
    "         and FFT) also bit-identical in memory; retransmits > 0 when drop > 0.@."

let retention ppf rows =
  Format.fprintf ppf
    "Ablation (section 6.1): single-run site retention vs two-run replay@.";
  hr ppf 80;
  Format.fprintf ppf "%-8s %16s %18s %14s %12s@." "App" "Plain slowdown" "Retain slowdown"
    "Site entries" "~KB kept";
  hr ppf 80;
  List.iter
    (fun (r : Experiments.retention_row) ->
      Format.fprintf ppf "%-8s %16.2f %18.2f %14d %12d@." r.rt_app r.rt_plain_slowdown
        r.rt_retain_slowdown r.rt_site_entries r.rt_site_kbytes)
    rows;
  hr ppf 80;
  Format.fprintf ppf
    "paper:   \"the storage requirements ... would generally be prohibitive, and@.";
  Format.fprintf ppf "         would also add runtime overhead\" — quantified above.@."
