(** Plain-text rendering of the experiment results, shaped like the
    paper's tables, with the paper's own numbers quoted under each one. *)

val table1 : Format.formatter -> Experiments.table1_row list -> unit
val table2 : Format.formatter -> Experiments.table2_row list -> unit
val table3 : Format.formatter -> Experiments.table3_row list -> unit
val figure3 : Format.formatter -> Experiments.figure3_row list -> unit
val figure4 : Format.formatter -> Experiments.figure4_row list -> unit
val figure5 : Format.formatter -> Experiments.figure5_result list -> unit
val ablation : Format.formatter -> Experiments.ablation_row list -> unit
val retention : Format.formatter -> Experiments.retention_row list -> unit
val faults : Format.formatter -> Experiments.fault_row list -> unit
val protocols : Format.formatter -> Experiments.protocol_row list -> unit

val analysis :
  Format.formatter -> name:string -> Instrument.Static_analysis.result -> unit
(** One application's static-pass result: classification, check batching
    and lint warnings (the `cvm_race analyze` rendering). *)

val races : ?symtab:Mem.Symtab.t -> Format.formatter -> Proto.Race.t list -> unit
(** Race reports, resolved through the symbol table when given. *)
