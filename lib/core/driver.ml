(* Run driver: the glue that builds a simulated cluster, runs one of the
   applications on it, and collects everything the experiments need —
   simulated runtime, statistics, race reports, traces and watch hits. *)

type outcome = {
  app_name : string;
  nprocs : int;
  detect : bool;
  sim_time_ns : int;
  stats : Sim.Stats.t;
  races : Proto.Race.t list;
  trace : Racedetect.Oracle.trace;
  sync_trace : Lrc.Sync_trace.t option;
  watch_hits : Instrument.Watch.hit list;
  symtab : Mem.Symtab.t;  (* variable names for symbolic race reports *)
  mem_checksum : int;  (* digest of the final shared-memory image *)
}

let run ?(cost = Sim.Cost.default) ?(cfg = Lrc.Config.default) ?(watch_addrs = [])
    ~(app : Apps.App.t) ~nprocs () =
  (* [Some []] means "derive the elision set": the statically race-free
     sites of the app's binary per the MHP analysis. Recomputed here
     (deterministically) rather than stored, so record and replay agree. *)
  let cfg =
    match cfg.Lrc.Config.elide_sites with
    | Some [] ->
        {
          cfg with
          Lrc.Config.elide_sites =
            Some (Instrument.Mhp.race_free_sites (app.Apps.App.binary ()));
        }
    | _ -> cfg
  in
  (* With detection on, the static pass's redundant-check batching lowers
     the average per-access discrimination charge (section 5.1): scale
     the access-check cost by the fraction the analysis could not batch. *)
  let cost =
    if cfg.Lrc.Config.detect then begin
      let analysis = Instrument.Static_analysis.analyze (app.Apps.App.binary ()) in
      {
        cost with
        Sim.Cost.access_check_ns =
          cost.Sim.Cost.access_check_ns
          *. analysis.Instrument.Static_analysis.check_cost_scale;
      }
    end
    else cost
  in
  let pages = Apps.App.pages_needed app ~page_size:cost.Sim.Cost.page_size in
  let backend = Backends.create ~cost ~cfg ~nprocs ~pages () in
  let watch =
    match watch_addrs with
    | [] -> None
    | addrs ->
        let watch = Instrument.Watch.create ~addrs in
        for id = 0 to nprocs - 1 do
          backend.Coherence.Backend.set_access_observer id
            (Instrument.Watch.observe watch)
        done;
        Some watch
  in
  backend.Coherence.Backend.run app.Apps.App.body;
  let races = backend.Coherence.Backend.races () in
  let mem_checksum = backend.Coherence.Backend.memory_checksum () in
  let sim_time = backend.Coherence.Backend.sim_time () in
  (* terminal trace event: ties the log to the run's observable outcome,
     so a log alone reconstructs the race count and memory checksum *)
  (match cfg.Lrc.Config.tracer with
  | Some sink ->
      Trace.Sink.emit sink ~time:sim_time
        (Trace.Event.Run_end
           { checksum = mem_checksum; sim_time_ns = sim_time; races = List.length races })
  | None -> ());
  {
    app_name = app.Apps.App.name;
    nprocs;
    detect = cfg.Lrc.Config.detect;
    sim_time_ns = sim_time;
    stats = backend.Coherence.Backend.stats;
    races;
    trace = backend.Coherence.Backend.trace ();
    sync_trace = backend.Coherence.Backend.sync_trace ();
    watch_hits = (match watch with Some w -> Instrument.Watch.hits w | None -> []);
    symtab = backend.Coherence.Backend.symtab;
    mem_checksum;
  }

type slowdown = {
  base : outcome;  (* uninstrumented binary on unaltered CVM *)
  instrumented : outcome;  (* instrumentation + read notices + detection *)
  factor : float;
}

let measure_slowdown ?cost ?(cfg = Lrc.Config.default) ~app ~nprocs () =
  let base = run ?cost ~cfg:{ cfg with Lrc.Config.detect = false } ~app ~nprocs () in
  let instrumented = run ?cost ~cfg:{ cfg with Lrc.Config.detect = true } ~app ~nprocs () in
  {
    base;
    instrumented;
    factor = float_of_int instrumented.sim_time_ns /. float_of_int base.sim_time_ns;
  }

(* Figure 3's per-category overhead, as a percentage of the base runtime.
   Instrumentation and CVM-mods charges accrue on every processor in
   parallel, so their observable share is the per-processor average; the
   interval and bitmap work is serialized at the barrier master, so its
   charge is observable in full (the effect section 6.2 discusses). *)
let overhead_percentages slowdown =
  let base = float_of_int slowdown.base.sim_time_ns in
  let parallel = float_of_int slowdown.instrumented.nprocs in
  List.map
    (fun category ->
      let divisor =
        match category with
        | Sim.Stats.Cvm_mods | Sim.Stats.Proc_call | Sim.Stats.Access_check -> parallel
        | Sim.Stats.Intervals | Sim.Stats.Bitmaps -> 1.0
      in
      ( category,
        100.0 *. Sim.Stats.charged slowdown.instrumented.stats category /. divisor /. base ))
    Sim.Stats.all_categories

let racy_addrs outcome =
  outcome.races |> List.map (fun (r : Proto.Race.t) -> r.addr) |> List.sort_uniq compare

let oracle_addrs outcome =
  Racedetect.Oracle.racy_addrs ~nprocs:outcome.nprocs outcome.trace
