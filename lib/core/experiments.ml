(* Regeneration of every table and figure in the paper's evaluation.
   Each experiment returns structured rows; {!Report} renders them. The
   benchmark harness and the CLI both drive these functions.

   Every sweep-shaped experiment takes [?jobs] and fans its independent
   simulation runs out over a {!Parallel.Pool}. Each task builds its own
   app, cluster and RNGs, so runs share only read-only state (see
   docs/PARALLEL.md); results come back in input order, making the rows
   identical whatever [jobs] is. The default is 1 — sequential, on the
   calling domain — so library callers see no change unless they opt in. *)

let default_procs = 8

let pmap ?(jobs = 1) f xs =
  if jobs <= 1 then List.map f xs
  else Parallel.Pool.with_pool ~jobs (fun pool -> Parallel.Pool.map_exn pool f xs)

(* ------------------------------------------------------------------ *)
(* Table 1: application characteristics                                 *)

type table1_row = {
  t1_name : string;
  t1_input : string;
  t1_sync : string;
  t1_memory_kb : int;
  t1_intervals_per_barrier : float;  (* per processor per barrier epoch *)
  t1_slowdown : float;  (* 8-processor instrumented / base *)
}

let paper_table1 =
  [
    ("FFT", 2.0, 2.08);
    ("SOR", 2.0, 1.83);
    ("TSP", 177.0, 2.51);
    ("Water", 46.0, 2.31);
  ]

let table1_row ?(scale = Apps.Registry.Paper) ?(nprocs = default_procs)
    ?(backend = "lrc") ?sim_jobs name =
  let app = Apps.Registry.make ~scale name in
  let cfg = { Lrc.Config.default with Lrc.Config.backend; sim_jobs } in
  let sd = Driver.measure_slowdown ~cfg ~app ~nprocs () in
  let stats = sd.Driver.instrumented.Driver.stats in
  {
    t1_name = app.Apps.App.name;
    t1_input = app.Apps.App.input_description;
    t1_sync = app.Apps.App.synchronization;
    t1_memory_kb = app.Apps.App.memory_bytes / 1024;
    t1_intervals_per_barrier =
      float_of_int stats.Sim.Stats.intervals_created
      /. float_of_int (max 1 stats.Sim.Stats.barriers)
      /. float_of_int nprocs;
    t1_slowdown = sd.Driver.factor;
  }

let table1 ?scale ?nprocs ?backend ?sim_jobs ?jobs () =
  pmap ?jobs (table1_row ?scale ?nprocs ?backend ?sim_jobs) Apps.Registry.all_names

(* ------------------------------------------------------------------ *)
(* Table 2: static instrumentation statistics                          *)

type table2_row = {
  t2_name : string;
  t2_class : Instrument.Static_analysis.classification;
}

let table2_row ?(scale = Apps.Registry.Paper) name =
  let app = Apps.Registry.make ~scale name in
  {
    t2_name = app.Apps.App.name;
    t2_class = Instrument.Static_analysis.classify (app.Apps.App.binary ());
  }

let table2 ?scale ?jobs () = pmap ?jobs (table2_row ?scale) Apps.Registry.all_names

(* ------------------------------------------------------------------ *)
(* Table 3: dynamic metrics                                            *)

type table3_row = {
  t3_name : string;
  t3_intervals_used_pct : float;  (* intervals in >= 1 overlapping pair *)
  t3_bitmaps_used_pct : float;  (* bitmaps retrieved / bitmaps recorded *)
  t3_msg_overhead_pct : float;  (* read-notice bytes / base-protocol bytes *)
  t3_shared_per_sec : float;  (* instrumented shared accesses per sim second *)
  t3_private_per_sec : float;
}

let table3_of_outcome (outcome : Driver.outcome) =
  let stats = outcome.Driver.stats in
  let seconds = float_of_int outcome.Driver.sim_time_ns /. 1e9 in
  let pct num den = if den <= 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den in
  let base_bytes =
    stats.Sim.Stats.bytes - stats.Sim.Stats.read_notice_bytes
    - stats.Sim.Stats.bitmap_round_bytes
  in
  {
    t3_name = outcome.Driver.app_name;
    t3_intervals_used_pct =
      pct stats.Sim.Stats.intervals_in_overlap stats.Sim.Stats.intervals_created;
    t3_bitmaps_used_pct = pct stats.Sim.Stats.bitmaps_requested stats.Sim.Stats.bitmaps_total;
    t3_msg_overhead_pct = pct stats.Sim.Stats.read_notice_bytes base_bytes;
    t3_shared_per_sec = float_of_int (Sim.Stats.shared_accesses stats) /. seconds;
    t3_private_per_sec = float_of_int stats.Sim.Stats.private_accesses /. seconds;
  }

let table3_row ?(scale = Apps.Registry.Paper) ?(nprocs = default_procs)
    ?(backend = "lrc") ?sim_jobs name =
  let app = Apps.Registry.make ~scale name in
  let cfg = { Lrc.Config.default with Lrc.Config.backend; sim_jobs } in
  table3_of_outcome (Driver.run ~cfg ~app ~nprocs ())

let table3 ?scale ?nprocs ?backend ?sim_jobs ?jobs () =
  pmap ?jobs (table3_row ?scale ?nprocs ?backend ?sim_jobs) Apps.Registry.all_names

(* ------------------------------------------------------------------ *)
(* Figure 3: overhead breakdown per application                        *)

type figure3_row = {
  f3_name : string;
  f3_slowdown : float;
  f3_overheads : (Sim.Stats.overhead_category * float) list;  (* % of base *)
}

let figure3_row ?(scale = Apps.Registry.Paper) ?(nprocs = default_procs)
    ?(backend = "lrc") ?sim_jobs name =
  let app = Apps.Registry.make ~scale name in
  let cfg = { Lrc.Config.default with Lrc.Config.backend; sim_jobs } in
  let sd = Driver.measure_slowdown ~cfg ~app ~nprocs () in
  {
    f3_name = app.Apps.App.name;
    f3_slowdown = sd.Driver.factor;
    f3_overheads = Driver.overhead_percentages sd;
  }

let figure3 ?scale ?nprocs ?backend ?sim_jobs ?jobs () =
  pmap ?jobs (figure3_row ?scale ?nprocs ?backend ?sim_jobs) Apps.Registry.all_names

(* ------------------------------------------------------------------ *)
(* Figure 4: slowdown versus number of processors                      *)

type figure4_row = { f4_name : string; f4_points : (int * float) list }

let figure4_row ?(scale = Apps.Registry.Paper) ?(procs = [ 2; 4; 8 ]) ?(backend = "lrc")
    ?sim_jobs name =
  let app = Apps.Registry.make ~scale name in
  let cfg = { Lrc.Config.default with Lrc.Config.backend; sim_jobs } in
  {
    f4_name = app.Apps.App.name;
    f4_points =
      List.map
        (fun nprocs ->
          let sd = Driver.measure_slowdown ~cfg ~app ~nprocs () in
          (nprocs, sd.Driver.factor))
        procs;
  }

(* Parallelism is per (app, nprocs) point, not per app: the slowest app
   no longer serializes its whole curve. The point list, the per-point
   measurement and the regrouping are exposed separately so executors
   that ship points to worker processes can reuse them. *)
let figure4_points ?(procs = [ 2; 4; 8 ]) ?(names = Apps.Registry.all_names) () =
  List.concat_map (fun name -> List.map (fun nprocs -> (name, nprocs)) procs) names

let figure4_point ?scale ?(backend = "lrc") ?sim_jobs ~nprocs name =
  let app = Apps.Registry.make ?scale name in
  let cfg = { Lrc.Config.default with Lrc.Config.backend; sim_jobs } in
  let sd = Driver.measure_slowdown ~cfg ~app ~nprocs () in
  (app.Apps.App.name, (nprocs, sd.Driver.factor))

let figure4_rows ~names ~points factors =
  List.map
    (fun name ->
      let mine =
        List.filter_map
          (fun ((n, _), (display, point)) ->
            if n = name then Some (display, point) else None)
          (List.combine points factors)
      in
      {
        f4_name = (match mine with (display, _) :: _ -> display | [] -> name);
        f4_points = List.map snd mine;
      })
    names

let figure4 ?scale ?procs ?(names = Apps.Registry.all_names) ?backend ?sim_jobs ?jobs () =
  let points = figure4_points ?procs ~names () in
  let factors =
    pmap ?jobs
      (fun (name, nprocs) -> figure4_point ?scale ?backend ?sim_jobs ~nprocs name)
      points
  in
  figure4_rows ~names ~points factors

(* ------------------------------------------------------------------ *)
(* Figure 5: races that occur only on a weak memory system             *)

type figure5_result = {
  f5_protocol : string;
  f5_qptr_seen_by_p2 : int;  (* the value P2 dequeues through *)
  f5_racy_words : (int * string) list;  (* racy address, symbolic name *)
}

(* The section 6.4 scenario: P1 fills a queue slot and updates qPtr and
   qEmpty but the release is missing; P2 polls qEmpty, reads qPtr and
   writes into the slots it believes it owns; P3 concurrently writes slots
   37..40. Under LRC, P2 reads a *stale* qPtr (37) because nothing
   invalidates its cached copy, so its writes collide with P3's. On a
   sequentially consistent system P2 sees qPtr = 100 (qEmpty's value could
   only have propagated together with qPtr's) and the slot races cannot
   occur. *)
let figure5 ?sim_jobs ~protocol () =
  let cfg = { Lrc.Config.default with protocol; detect = true; sim_jobs } in
  let cost = Sim.Cost.default in
  let cluster = Lrc.Cluster.create ~cost ~cfg ~nprocs:3 ~pages:8 () in
  let page = cost.Sim.Cost.page_size in
  let qptr = Lrc.Cluster.alloc cluster ~align:page 8 in
  let qempty = Lrc.Cluster.alloc cluster ~align:page 8 in
  let slots = Lrc.Cluster.alloc cluster ~align:page (128 * 8) in
  let slot_addr v = slots + ((v - 37) * 8) in
  let p2_qptr = ref 0 in
  let body node =
    let open Lrc.Dsm in
    (match pid node with
    | 0 ->
        (* P1: initialize, then fill without releasing *)
        write_int node qptr 37 ~site:"fig5:init";
        write_int node qempty 1 ~site:"fig5:init";
        barrier node;
        compute node 250_000.0;
        write_int node qptr 100 ~site:"fig5:w1(qPtr)";
        write_int node qempty 0 ~site:"fig5:w1(qEmpty)"
    | 1 ->
        (* P2: warm the qPtr page, then poll qEmpty and enqueue *)
        barrier node;
        let _warm = read_int node qptr ~site:"fig5:warm" in
        compute node 800_000.0;
        let empty = read_int node qempty ~site:"fig5:r2(qEmpty)" in
        if empty = 0 then begin
          let v = read_int node qptr ~site:"fig5:r2(qPtr)" in
          p2_qptr := v;
          write_int node (slot_addr v) 1 ~site:"fig5:w2(slot)";
          write_int node (slot_addr (v + 1)) 2 ~site:"fig5:w2(slot)"
        end
    | _ ->
        (* P3: writes slots 37..40 based on its own stale view *)
        barrier node;
        compute node 500_000.0;
        List.iter
          (fun v -> write_int node (slot_addr v) (100 + v) ~site:"fig5:w3(slot)")
          [ 37; 38; 39; 40 ]);
    barrier node
  in
  Lrc.Cluster.run cluster ~body;
  let symbolic addr =
    if addr = qptr then "qPtr"
    else if addr = qempty then "qEmpty"
    else Printf.sprintf "slot[%d]" (((addr - slots) / 8) + 37)
  in
  let racy =
    Lrc.Cluster.races cluster
    |> List.map (fun (r : Proto.Race.t) -> r.addr)
    |> List.sort_uniq compare
    |> List.map (fun addr -> (addr, symbolic addr))
  in
  {
    f5_protocol = Lrc.Config.protocol_name protocol;
    f5_qptr_seen_by_p2 = !p2_qptr;
    f5_racy_words = racy;
  }

let figure5_both ?sim_jobs ?jobs () =
  pmap ?jobs
    (fun protocol -> figure5 ?sim_jobs ~protocol ())
    [ Lrc.Config.Single_writer; Lrc.Config.Seq_consistent ]

(* ------------------------------------------------------------------ *)
(* Ablation: the section 6.5 store-instrumentation optimization        *)

type ablation_row = {
  ab_name : string;
  ab_full_slowdown : float;  (* loads + stores instrumented *)
  ab_diff_slowdown : float;  (* stores recovered from diffs *)
  ab_full_races : int;
  ab_diff_races : int;
}

let stores_from_diffs_ablation ?(scale = Apps.Registry.Paper) ?(nprocs = default_procs)
    ?sim_jobs name =
  let app = Apps.Registry.make ~scale name in
  let cfg =
    { Lrc.Config.default with Lrc.Config.protocol = Lrc.Config.Multi_writer; sim_jobs }
  in
  let full = Driver.measure_slowdown ~cfg ~app ~nprocs () in
  let cfg_diff = { cfg with Lrc.Config.stores_from_diffs = true } in
  let diff = Driver.measure_slowdown ~cfg:cfg_diff ~app ~nprocs () in
  {
    ab_name = app.Apps.App.name;
    ab_full_slowdown = full.Driver.factor;
    ab_diff_slowdown = diff.Driver.factor;
    ab_full_races = List.length full.Driver.instrumented.Driver.races;
    ab_diff_races = List.length diff.Driver.instrumented.Driver.races;
  }

let stores_from_diffs_ablation_all ?scale ?nprocs ?sim_jobs ?jobs names =
  pmap ?jobs (stores_from_diffs_ablation ?scale ?nprocs ?sim_jobs) names

(* ------------------------------------------------------------------ *)
(* Protocol comparison: the same applications over the single-writer,
   multi-writer and home-based protocols (baseline runs, no detection)  *)

type protocol_row = {
  pr_app : string;
  pr_protocol : string;
  pr_time_ms : float;
  pr_messages : int;
  pr_kbytes : int;
  pr_page_fetches : int;
  pr_diffs : int;
}

let compared_protocols =
  [ Lrc.Config.Single_writer; Lrc.Config.Multi_writer; Lrc.Config.Home_based ]

let protocol_row ?sim_jobs ~scale ~nprocs name protocol =
  let app = Apps.Registry.make ~scale name in
  let cfg = { Lrc.Config.default with Lrc.Config.protocol; detect = false; sim_jobs } in
  let outcome = Driver.run ~cfg ~app ~nprocs () in
  let stats = outcome.Driver.stats in
  {
    pr_app = app.Apps.App.name;
    pr_protocol = Lrc.Config.protocol_name protocol;
    pr_time_ms = float_of_int outcome.Driver.sim_time_ns /. 1e6;
    pr_messages = stats.Sim.Stats.messages;
    pr_kbytes = stats.Sim.Stats.bytes / 1024;
    pr_page_fetches = stats.Sim.Stats.pages_fetched;
    pr_diffs = stats.Sim.Stats.diffs_created;
  }

let protocol_comparison ?(scale = Apps.Registry.Paper) ?(nprocs = default_procs) ?sim_jobs
    name =
  List.map (protocol_row ?sim_jobs ~scale ~nprocs name) compared_protocols

let protocol_comparison_all ?(scale = Apps.Registry.Paper) ?(nprocs = default_procs)
    ?(names = Apps.Registry.all_names) ?sim_jobs ?jobs () =
  let tasks =
    List.concat_map (fun name -> List.map (fun p -> (name, p)) compared_protocols) names
  in
  pmap ?jobs
    (fun (name, protocol) -> protocol_row ?sim_jobs ~scale ~nprocs name protocol)
    tasks

(* ------------------------------------------------------------------ *)
(* Robustness: race-report stability over a lossy wire                  *)

type fault_row = {
  fs_app : string;
  fs_drop_pct : float;  (* wire drop probability, percent *)
  fs_races : int;
  fs_same_races : bool;  (* racy-address set equals the reliable baseline's *)
  fs_same_mem : bool;  (* final memory checksum equals the baseline's *)
  fs_retransmits : int;
  fs_timeouts : int;
  fs_dup_suppressed : int;
  fs_time_ms : float;
}

(* Run each application over the reliable wire, then over the transport
   with increasing wire loss, and compare: the DSM above the transport
   must see the same exactly-once FIFO network, so the set of racy
   addresses is expected to be stable. Full bit-identity (every report
   and the final memory image) additionally holds for barrier-only
   applications; retransmission delays can reorder lock grants, so for
   lock-based applications last-writer-dependent words may differ — the
   rows report the comparison rather than asserting it. *)
let fault_sweep ?(scale = Apps.Registry.Paper) ?(nprocs = default_procs)
    ?(drops = [ 0.0; 0.05; 0.2 ]) name =
  let app = Apps.Registry.make ~scale name in
  let baseline = Driver.run ~app ~nprocs () in
  let base_addrs = Driver.racy_addrs baseline in
  List.map
    (fun drop ->
      let fault =
        {
          Sim.Fault.none with
          Sim.Fault.drop;
          duplicate = drop /. 4.0;
          reorder = drop /. 2.0;
        }
      in
      let cfg =
        {
          Lrc.Config.default with
          Lrc.Config.fault;
          transport = Some Sim.Transport.default_config;
        }
      in
      let outcome = Driver.run ~cfg ~app ~nprocs () in
      let stats = outcome.Driver.stats in
      {
        fs_app = app.Apps.App.name;
        fs_drop_pct = 100.0 *. drop;
        fs_races = List.length outcome.Driver.races;
        fs_same_races = Driver.racy_addrs outcome = base_addrs;
        fs_same_mem = outcome.Driver.mem_checksum = baseline.Driver.mem_checksum;
        fs_retransmits = stats.Sim.Stats.retransmits;
        fs_timeouts = stats.Sim.Stats.rto_timeouts;
        fs_dup_suppressed = stats.Sim.Stats.dup_suppressed;
        fs_time_ms = float_of_int outcome.Driver.sim_time_ns /. 1e6;
      })
    drops

(* One task per app: each task's reliable baseline is reused by its own
   drop points, so the unit of independence is the whole per-app sweep. *)
let fault_sweep_all ?scale ?nprocs ?drops ?jobs () =
  List.concat (pmap ?jobs (fault_sweep ?scale ?nprocs ?drops) Apps.Registry.all_names)

(* ------------------------------------------------------------------ *)
(* Section 6.1 ablation: single-run site retention vs plain detection   *)

type retention_row = {
  rt_app : string;
  rt_plain_slowdown : float;
  rt_retain_slowdown : float;
  rt_site_entries : int;
  rt_site_kbytes : int;  (* approximate storage the paper calls prohibitive *)
}

let site_retention_ablation ?(scale = Apps.Registry.Paper) ?(nprocs = default_procs)
    ?sim_jobs name =
  let app = Apps.Registry.make ~scale name in
  let plain =
    Driver.measure_slowdown ~cfg:{ Lrc.Config.default with sim_jobs } ~app ~nprocs ()
  in
  let cfg = { Lrc.Config.default with Lrc.Config.retain_sites = true; sim_jobs } in
  let retain = Driver.measure_slowdown ~cfg ~app ~nprocs () in
  let entries = retain.Driver.instrumented.Driver.stats.Sim.Stats.site_entries in
  {
    rt_app = app.Apps.App.name;
    rt_plain_slowdown = plain.Driver.factor;
    rt_retain_slowdown = retain.Driver.factor;
    rt_site_entries = entries;
    rt_site_kbytes = entries * 32 / 1024;
  }

let site_retention_ablation_all ?scale ?nprocs ?sim_jobs ?jobs names =
  pmap ?jobs (site_retention_ablation ?scale ?nprocs ?sim_jobs) names

(* ------------------------------------------------------------------ *)
(* The benchmark harness's machine-readable sweep point: one simulated
   run per (app, nprocs, detect, elide) tuple, timed and bracketed by
   [Gc.quick_stat] so allocation pressure is part of the record. Lives
   here (rather than in bench/) so a worker process can run the whole
   measurement — GC brackets included — on its own heap and ship the
   record back. [clock] defaults to wall time; the bench harness passes
   its monotonic clock for in-process runs. *)

type sweep_point = {
  sp_app : string;  (* lowercase *)
  sp_scale : string;  (* Registry.scale_name spelling *)
  sp_nprocs : int;
  sp_detect : bool;
  sp_elide : bool;
  sp_protocol : string;
  sp_backend : string;
  sp_sim_jobs : int option;  (* intra-run parallelism the point ran with *)
  sp_wall_s : float;
  sp_sim_time_ns : int;
  sp_races : int;
  sp_mem_checksum : int;
  sp_stats : Sim.Stats.t;
  sp_minor_words : float;
  sp_promoted_words : float;
  sp_major_words : float;
  sp_minor_collections : int;
  sp_major_collections : int;
}

let sweep_point ?(clock = Unix.gettimeofday) ?(backend = "lrc") ?sim_jobs ~scale ~nprocs
    ~detect ~elide name =
  let app = Apps.Registry.make ~scale name in
  let cfg =
    {
      Lrc.Config.default with
      Lrc.Config.backend;
      detect;
      elide_sites = (if elide then Some [] else None);
      sim_jobs;
    }
  in
  (* level the heap between points so one entry's garbage does not bill
     the next entry's collector *)
  Gc.full_major ();
  let g0 = Gc.quick_stat () in
  let t0 = clock () in
  let outcome = Driver.run ~cfg ~app ~nprocs () in
  let t1 = clock () in
  let g1 = Gc.quick_stat () in
  {
    sp_app = String.lowercase_ascii name;
    sp_scale = Apps.Registry.scale_name scale;
    sp_nprocs = nprocs;
    sp_detect = detect;
    sp_elide = elide;
    sp_protocol = Lrc.Config.protocol_name cfg.Lrc.Config.protocol;
    sp_backend = backend;
    sp_sim_jobs = sim_jobs;
    sp_wall_s = t1 -. t0;
    sp_sim_time_ns = outcome.Driver.sim_time_ns;
    sp_races = List.length outcome.Driver.races;
    sp_mem_checksum = outcome.Driver.mem_checksum;
    sp_stats = outcome.Driver.stats;
    sp_minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
    sp_promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
    sp_major_words = g1.Gc.major_words -. g0.Gc.major_words;
    sp_minor_collections = g1.Gc.minor_collections - g0.Gc.minor_collections;
    sp_major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
  }
