(** Regeneration of every table and figure in the paper's evaluation,
    plus this library's extension experiments. Each function returns
    structured rows; {!Report} renders them.

    Sweep-shaped experiments take [?jobs] (default 1 = sequential) and
    fan their independent simulation runs out over a {!Parallel.Pool};
    rows come back in the same order whatever [jobs] is, so parallel
    output is identical to sequential output.

    Experiments that run simulations also take [?sim_jobs], the
    intra-run parallelism knob ({!Lrc.Config.sim_jobs}): each run
    itself executes on up to that many domains, with byte-identical
    results for every value. [?jobs] and [?sim_jobs] compose; their
    domain counts multiply. *)

val default_procs : int
(** 8, the paper's system size. *)

(** {1 Table 1 — application characteristics} *)

type table1_row = {
  t1_name : string;
  t1_input : string;
  t1_sync : string;
  t1_memory_kb : int;
  t1_intervals_per_barrier : float;  (** per processor per barrier epoch *)
  t1_slowdown : float;
}

val paper_table1 : (string * float * float) list
(** (app, intervals/barrier, slowdown) as published. *)

val table1_row :
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?backend:string ->
  ?sim_jobs:int ->
  string ->
  table1_row

val table1 :
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?backend:string ->
  ?sim_jobs:int ->
  ?jobs:int ->
  unit ->
  table1_row list

(** {1 Table 2 — static instrumentation statistics} *)

type table2_row = {
  t2_name : string;
  t2_class : Instrument.Static_analysis.classification;
}

val table2_row : ?scale:Apps.Registry.scale -> string -> table2_row
val table2 : ?scale:Apps.Registry.scale -> ?jobs:int -> unit -> table2_row list

(** {1 Table 3 — dynamic metrics} *)

type table3_row = {
  t3_name : string;
  t3_intervals_used_pct : float;
  t3_bitmaps_used_pct : float;
  t3_msg_overhead_pct : float;
  t3_shared_per_sec : float;
  t3_private_per_sec : float;
}

val table3_of_outcome : Driver.outcome -> table3_row
val table3_row :
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?backend:string ->
  ?sim_jobs:int ->
  string ->
  table3_row

val table3 :
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?backend:string ->
  ?sim_jobs:int ->
  ?jobs:int ->
  unit ->
  table3_row list

(** {1 Figure 3 — overhead breakdown} *)

type figure3_row = {
  f3_name : string;
  f3_slowdown : float;
  f3_overheads : (Sim.Stats.overhead_category * float) list;
}

val figure3_row :
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?backend:string ->
  ?sim_jobs:int ->
  string ->
  figure3_row

val figure3 :
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?backend:string ->
  ?sim_jobs:int ->
  ?jobs:int ->
  unit ->
  figure3_row list

(** {1 Figure 4 — slowdown versus processors} *)

type figure4_row = { f4_name : string; f4_points : (int * float) list }

val figure4_row :
  ?scale:Apps.Registry.scale ->
  ?procs:int list ->
  ?backend:string ->
  ?sim_jobs:int ->
  string ->
  figure4_row

val figure4_points :
  ?procs:int list -> ?names:string list -> unit -> (string * int) list
(** The (app, nprocs) measurement points of a {!figure4} call, in row
    order — the executor-facing decomposition. *)

val figure4_point :
  ?scale:Apps.Registry.scale ->
  ?backend:string ->
  ?sim_jobs:int ->
  nprocs:int ->
  string ->
  string * (int * float)
(** One measurement: (display name, (nprocs, slowdown factor)). *)

val figure4_rows :
  names:string list ->
  points:(string * int) list ->
  (string * (int * float)) list ->
  figure4_row list
(** Regroup per-point factors (aligned with [points]) into per-app rows. *)

val figure4 :
  ?scale:Apps.Registry.scale ->
  ?procs:int list ->
  ?names:string list ->
  ?backend:string ->
  ?sim_jobs:int ->
  ?jobs:int ->
  unit ->
  figure4_row list
(** Parallelism is per (app, nprocs) point. *)

(** {1 Figure 5 — weak-memory-only races} *)

type figure5_result = {
  f5_protocol : string;
  f5_qptr_seen_by_p2 : int;
  f5_racy_words : (int * string) list;
}

val figure5 : ?sim_jobs:int -> protocol:Lrc.Config.protocol -> unit -> figure5_result
(** The section 6.4 missing-release queue, run live under a protocol. *)

val figure5_both : ?sim_jobs:int -> ?jobs:int -> unit -> figure5_result list
(** Under LRC (single-writer) and sequential consistency. *)

(** {1 Extension ablations} *)

type ablation_row = {
  ab_name : string;
  ab_full_slowdown : float;
  ab_diff_slowdown : float;
  ab_full_races : int;
  ab_diff_races : int;
}

val stores_from_diffs_ablation :
  ?scale:Apps.Registry.scale -> ?nprocs:int -> ?sim_jobs:int -> string -> ablation_row
(** Section 6.5: write bitmaps from multi-writer diffs vs full store
    instrumentation. *)

val stores_from_diffs_ablation_all :
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?sim_jobs:int ->
  ?jobs:int ->
  string list ->
  ablation_row list

type protocol_row = {
  pr_app : string;
  pr_protocol : string;
  pr_time_ms : float;
  pr_messages : int;
  pr_kbytes : int;
  pr_page_fetches : int;
  pr_diffs : int;
}

val compared_protocols : Lrc.Config.protocol list
(** Single-writer, multi-writer, home-based. *)

val protocol_row :
  ?sim_jobs:int ->
  scale:Apps.Registry.scale ->
  nprocs:int ->
  string ->
  Lrc.Config.protocol ->
  protocol_row
(** One (app, protocol) baseline run. *)

val protocol_comparison :
  ?scale:Apps.Registry.scale -> ?nprocs:int -> ?sim_jobs:int -> string -> protocol_row list
(** Baseline (no-detection) runs over single-writer, multi-writer and
    home-based coherence. *)

val protocol_comparison_all :
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?names:string list ->
  ?sim_jobs:int ->
  ?jobs:int ->
  unit ->
  protocol_row list
(** {!protocol_comparison} over [names] (default the paper's four apps),
    one pool task per (app, protocol) pair. *)

type fault_row = {
  fs_app : string;
  fs_drop_pct : float;  (** wire drop probability, percent *)
  fs_races : int;
  fs_same_races : bool;  (** racy-address set equals the reliable baseline's *)
  fs_same_mem : bool;  (** final memory checksum equals the baseline's *)
  fs_retransmits : int;
  fs_timeouts : int;
  fs_dup_suppressed : int;
  fs_time_ms : float;
}

val fault_sweep :
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?drops:float list ->
  string ->
  fault_row list
(** One application over the reliable wire, then over {!Sim.Transport}
    with each wire-loss rate in [drops] (default 0%, 5%, 20%; duplication
    and reorder scale with the drop rate). Rows compare racy-address sets
    and final memory checksums against the reliable baseline. *)

val fault_sweep_all :
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?drops:float list ->
  ?jobs:int ->
  unit ->
  fault_row list

type retention_row = {
  rt_app : string;
  rt_plain_slowdown : float;
  rt_retain_slowdown : float;
  rt_site_entries : int;
  rt_site_kbytes : int;
}

val site_retention_ablation :
  ?scale:Apps.Registry.scale -> ?nprocs:int -> ?sim_jobs:int -> string -> retention_row
(** Section 6.1: the cost of single-run program-counter retention. *)

val site_retention_ablation_all :
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?sim_jobs:int ->
  ?jobs:int ->
  string list ->
  retention_row list

(** {1 Benchmark sweep points} *)

type sweep_point = {
  sp_app : string;  (** lowercase *)
  sp_scale : string;  (** {!Apps.Registry.scale_name} spelling *)
  sp_nprocs : int;
  sp_detect : bool;
  sp_elide : bool;
  sp_protocol : string;
  sp_backend : string;  (** coherence backend the point ran under *)
  sp_sim_jobs : int option;  (** intra-run parallelism the point ran with *)
  sp_wall_s : float;
  sp_sim_time_ns : int;
  sp_races : int;
  sp_mem_checksum : int;
  sp_stats : Sim.Stats.t;
  sp_minor_words : float;
  sp_promoted_words : float;
  sp_major_words : float;
  sp_minor_collections : int;
  sp_major_collections : int;
}

val sweep_point :
  ?clock:(unit -> float) ->
  ?backend:string ->
  ?sim_jobs:int ->
  scale:Apps.Registry.scale ->
  nprocs:int ->
  detect:bool ->
  elide:bool ->
  string ->
  sweep_point
(** One benchmark sweep measurement: a full simulated run bracketed by
    [Gc.full_major] + [Gc.quick_stat], timed with [clock] (default wall
    time; the bench harness passes its monotonic clock for in-process
    runs). Self-contained, so executors may run it in a worker
    process. *)
