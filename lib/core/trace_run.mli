(** Record/replay orchestration over {!Driver}.

    [record] runs an application with a {!Trace.Sink.recorder} plugged
    into the cluster; [replay] rebuilds the configuration from the log's
    metadata, re-runs under a {!Trace.Replay.verifier}, and reports the
    first divergence if the two executions disagree anywhere — from a
    single wire-frame fate up to the final race set and memory image. *)

val scale_name : Apps.Registry.scale -> string
val scale_of_name : string -> Apps.Registry.scale
val protocol_of_name : string -> Lrc.Config.protocol
(** Inverse of {!Lrc.Config.protocol_name}; raises [Invalid_argument]. *)

val meta_of :
  ?cost:Sim.Cost.t ->
  app_name:string -> scale:Apps.Registry.scale -> nprocs:int -> Lrc.Config.t ->
  Trace.Codec.meta
(** The metadata header a recording of this configuration carries.
    [m_sim_jobs] is stamped [Some 1] iff the run would use the
    window-sharded engine under [cost] ({!Lrc.Cluster.windowed}) — a
    schedule marker, never the domain count, so logs recorded at any
    [--sim-jobs N] are byte-identical. *)

val config_of_meta : Trace.Codec.meta -> Lrc.Config.t
(** The cluster configuration a log's metadata describes (tracer unset). *)

val record :
  ?cost:Sim.Cost.t ->
  ?cfg:Lrc.Config.t ->
  app_name:string ->
  scale:Apps.Registry.scale ->
  nprocs:int ->
  unit ->
  Driver.outcome * string
(** Run once with recording on; returns the outcome and the binary log.
    Any [tracer] already present in [cfg] is replaced by the recorder. *)

type replay_result = {
  rr_meta : Trace.Codec.meta;
  rr_outcome : Driver.outcome;
  rr_divergence : Trace.Replay.divergence option;
  rr_races_match : bool;  (** live race set equals the log's [Race] events *)
  rr_checksum_match : bool;  (** live memory checksum equals the log's [Run_end] *)
}

val clean : replay_result -> bool
(** No divergence, races match, checksum matches. *)

val replay : ?cost:Sim.Cost.t -> string -> replay_result
(** Verify a binary log by re-execution. Raises {!Trace.Codec.Corrupt}
    on a malformed log and [Invalid_argument] on unknown app/protocol
    names in the metadata. *)

val load : string -> string
(** Read a whole binary file. *)

val save : string -> string -> unit
(** Write a binary file. *)
