(** Interpreter for serializable {!Parallel.Task} descriptions, plus
    executor-aware fronts for the sweep-shaped experiments.

    Every front builds the same task list the corresponding
    {!Experiments} function would fan over a pool, runs it through the
    given {!Parallel.Pool.executor} (inline, domains, or remote worker
    processes) and decodes the rows — in submission order under every
    executor, so output is identical whichever one the user picked.

    [?sim_jobs] is carried inside each task: the worker that runs the
    simulation shards it over that many domains (byte-identical
    results; see {!Lrc.Config.sim_jobs}). *)

type value =
  | V_string of string
  | V_table1 of Experiments.table1_row
  | V_table2 of Experiments.table2_row
  | V_table3 of Experiments.table3_row
  | V_figure3 of Experiments.figure3_row
  | V_figure4 of (string * (int * float))
      (** display name, (nprocs, slowdown factor) *)
  | V_figure5 of Experiments.figure5_result
  | V_protocol of Experiments.protocol_row
  | V_faults of Experiments.fault_row list  (** one app's whole drop sweep *)
  | V_ablation of Experiments.ablation_row
  | V_retention of Experiments.retention_row
  | V_sweep of Experiments.sweep_point

val value_codec_version : int

exception Corrupt of string

val value_to_bytes : value -> string
val value_of_bytes : string -> value
(** Raises {!Corrupt} on undecodable bytes or a version mismatch. *)

val eval : ?clock:(unit -> float) -> Parallel.Task.t -> value
(** Run one task to its row. [clock] feeds {!Experiments.sweep_point}
    for [Bench_point] tasks. Fails on [Equiv_combo] — that vocabulary
    belongs to the equivalence harness above this library (see
    [runner]'s [?extra]). *)

val runner :
  ?clock:(unit -> float) ->
  ?extra:(Parallel.Task.t -> string option) ->
  unit ->
  Parallel.Task.t ->
  string
(** The interpreter handed to executors and to
    {!Parallel.Remote.maybe_worker}: [extra] (when it answers [Some])
    takes precedence, letting binaries that link the equivalence
    harness serve [Equiv_combo] tasks; everything else goes through
    {!eval} and {!value_to_bytes}. *)

(** {1 Executor-aware experiment fronts} *)

val table1 :
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?backend:string ->
  ?sim_jobs:int ->
  ex:Parallel.Pool.executor ->
  unit ->
  Experiments.table1_row list

val table2 :
  ?scale:Apps.Registry.scale -> ex:Parallel.Pool.executor -> unit -> Experiments.table2_row list

val table3 :
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?backend:string ->
  ?sim_jobs:int ->
  ex:Parallel.Pool.executor ->
  unit ->
  Experiments.table3_row list

val figure3 :
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?backend:string ->
  ?sim_jobs:int ->
  ex:Parallel.Pool.executor ->
  unit ->
  Experiments.figure3_row list

val figure4 :
  ?scale:Apps.Registry.scale ->
  ?procs:int list ->
  ?names:string list ->
  ?backend:string ->
  ?sim_jobs:int ->
  ex:Parallel.Pool.executor ->
  unit ->
  Experiments.figure4_row list

val figure5_both :
  ?sim_jobs:int -> ex:Parallel.Pool.executor -> unit -> Experiments.figure5_result list

val protocol_comparison_all :
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?names:string list ->
  ?sim_jobs:int ->
  ex:Parallel.Pool.executor ->
  unit ->
  Experiments.protocol_row list

val fault_sweep_all :
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?drops:float list ->
  ex:Parallel.Pool.executor ->
  unit ->
  Experiments.fault_row list

val stores_from_diffs_ablation_all :
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?sim_jobs:int ->
  ex:Parallel.Pool.executor ->
  string list ->
  Experiments.ablation_row list

val site_retention_ablation_all :
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?sim_jobs:int ->
  ex:Parallel.Pool.executor ->
  string list ->
  Experiments.retention_row list

val sweep_points :
  ?sim_jobs:int ->
  scale:Apps.Registry.scale ->
  ex:Parallel.Pool.executor ->
  (string * int * bool * bool * string) list ->
  Experiments.sweep_point list
(** The bench harness's (app, nprocs, detect, elide, backend) points. *)
