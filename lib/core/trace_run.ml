(* Record/replay orchestration.

   [record] runs an application with a trace recorder plugged into the
   cluster and returns the outcome together with the binary log.
   [replay] rebuilds the exact configuration from a log's metadata, runs
   the application again with a verifier sink, and reports either a
   clean match or the first divergence. Because the whole simulation is
   deterministic given (app, scale, nprocs, config, seeds), a pristine
   log must verify cleanly; any mismatch means the log was edited, the
   code changed, or determinism broke — all three are exactly what this
   exists to catch. *)

let scale_name = function
  | Apps.Registry.Paper -> "paper"
  | Apps.Registry.Small -> "small"
  | Apps.Registry.Large -> "large"

let scale_of_name = function
  | "paper" -> Apps.Registry.Paper
  | "small" -> Apps.Registry.Small
  | "large" -> Apps.Registry.Large
  | s -> invalid_arg (Printf.sprintf "Trace_run: unknown scale %S" s)

let protocol_of_name = function
  | "single-writer" -> Lrc.Config.Single_writer
  | "multi-writer" -> Lrc.Config.Multi_writer
  | "home-based" -> Lrc.Config.Home_based
  | "sequential-consistency" -> Lrc.Config.Seq_consistent
  | s -> invalid_arg (Printf.sprintf "Trace_run: unknown protocol %S" s)

(* Both directions of the transport mapping record/rebuild every field:
   a recording made with a tuned RTO, backoff ceiling, retry cap or
   header/ack wire sizes must replay under the identical retransmission
   timing, never under the current defaults. *)

let transport_meta_of (tc : Sim.Transport.config) : Trace.Codec.transport_meta =
  {
    Trace.Codec.tm_initial_rto_ns = tc.Sim.Transport.initial_rto_ns;
    tm_max_rto_ns = tc.Sim.Transport.max_rto_ns;
    tm_max_retries = tc.Sim.Transport.max_retries;
    tm_header_bytes = tc.Sim.Transport.header_bytes;
    tm_ack_bytes = tc.Sim.Transport.ack_bytes;
  }

let transport_of_meta (tm : Trace.Codec.transport_meta) : Sim.Transport.config =
  {
    Sim.Transport.initial_rto_ns = tm.Trace.Codec.tm_initial_rto_ns;
    max_rto_ns = tm.Trace.Codec.tm_max_rto_ns;
    max_retries = tm.Trace.Codec.tm_max_retries;
    header_bytes = tm.Trace.Codec.tm_header_bytes;
    ack_bytes = tm.Trace.Codec.tm_ack_bytes;
  }

let meta_of ?cost ~app_name ~scale ~nprocs (cfg : Lrc.Config.t) : Trace.Codec.meta =
  let fault = cfg.Lrc.Config.fault in
  {
    Trace.Codec.m_app = app_name;
    m_scale = scale_name scale;
    m_nprocs = nprocs;
    m_protocol = Lrc.Config.protocol_name cfg.Lrc.Config.protocol;
    m_detect = cfg.Lrc.Config.detect;
    m_first_race_only = cfg.Lrc.Config.first_race_only;
    m_stores_from_diffs = cfg.Lrc.Config.stores_from_diffs;
    m_seed = cfg.Lrc.Config.seed;
    m_net_seed = cfg.Lrc.Config.net_seed;
    m_drop = fault.Sim.Fault.drop;
    m_dup = fault.Sim.Fault.duplicate;
    m_reorder = fault.Sim.Fault.reorder;
    m_reorder_window_ns = fault.Sim.Fault.reorder_window_ns;
    m_spike = fault.Sim.Fault.spike;
    m_spike_ns = fault.Sim.Fault.spike_ns;
    m_partitions =
      List.map
        (fun (p : Sim.Fault.partition) ->
          (p.Sim.Fault.p_a, p.Sim.Fault.p_b, p.Sim.Fault.p_from_ns, p.Sim.Fault.p_until_ns))
        fault.Sim.Fault.partitions;
    m_transport = Option.map transport_meta_of cfg.Lrc.Config.transport;
    m_watchdog_ns = cfg.Lrc.Config.watchdog_ns;
    m_gc_epochs = cfg.Lrc.Config.gc_epochs;
    (* only the flag travels in the log; the site set is re-derived from
       the app's binary at replay (it is a pure function of the binary) *)
    m_elide = cfg.Lrc.Config.elide_sites <> None;
    m_backend = cfg.Lrc.Config.backend;
    m_cc_line_bytes = cfg.Lrc.Config.cc_line_bytes;
    m_cc_sets = cfg.Lrc.Config.cc_sets;
    m_cc_ways = cfg.Lrc.Config.cc_ways;
    (* The schedule marker, not the domain count: Some 1 when the run
       used the window-sharded engine (whose event times differ from the
       legacy loop's), None otherwise. The domain count is deliberately
       NOT recorded — the whole contract of --sim-jobs is that it is
       unobservable, and recording it would break the byte-for-byte
       identity of logs across domain counts. An ineligible config
       (reliable transport, jitter) fell back to the legacy loop, so it
       must be stamped None even if the flag was set. *)
    m_sim_jobs = (if Lrc.Cluster.windowed ?cost cfg then Some 1 else None);
  }

let config_of_meta (m : Trace.Codec.meta) : Lrc.Config.t =
  {
    Lrc.Config.default with
    Lrc.Config.protocol = protocol_of_name m.Trace.Codec.m_protocol;
    detect = m.Trace.Codec.m_detect;
    first_race_only = m.Trace.Codec.m_first_race_only;
    stores_from_diffs = m.Trace.Codec.m_stores_from_diffs;
    seed = m.Trace.Codec.m_seed;
    net_seed = m.Trace.Codec.m_net_seed;
    fault =
      {
        Sim.Fault.drop = m.Trace.Codec.m_drop;
        duplicate = m.Trace.Codec.m_dup;
        reorder = m.Trace.Codec.m_reorder;
        reorder_window_ns = m.Trace.Codec.m_reorder_window_ns;
        spike = m.Trace.Codec.m_spike;
        spike_ns = m.Trace.Codec.m_spike_ns;
        partitions =
          List.map
            (fun (p_a, p_b, p_from_ns, p_until_ns) ->
              { Sim.Fault.p_a; p_b; p_from_ns; p_until_ns })
            m.Trace.Codec.m_partitions;
      };
    transport = Option.map transport_of_meta m.Trace.Codec.m_transport;
    watchdog_ns = m.Trace.Codec.m_watchdog_ns;
    gc_epochs = m.Trace.Codec.m_gc_epochs;
    elide_sites = (if m.Trace.Codec.m_elide then Some [] else None);
    backend = m.Trace.Codec.m_backend;
    cc_line_bytes = m.Trace.Codec.m_cc_line_bytes;
    cc_sets = m.Trace.Codec.m_cc_sets;
    cc_ways = m.Trace.Codec.m_cc_ways;
    (* A sharded-engine recording replays on the sharded engine (its
       event times differ from the legacy loop's); the marker is always
       Some 1 and one domain is all replay ever needs — the interleaving
       is domain-count-invariant. *)
    sim_jobs = Option.map (fun _ -> 1) m.Trace.Codec.m_sim_jobs;
  }

let record ?cost ?(cfg = Lrc.Config.default) ~app_name ~scale ~nprocs () =
  let app = Apps.Registry.make ~scale app_name in
  let meta = meta_of ?cost ~app_name ~scale ~nprocs cfg in
  let recorder = Trace.Sink.recorder meta in
  let cfg = { cfg with Lrc.Config.tracer = Some (Trace.Sink.sink recorder) } in
  let outcome = Driver.run ?cost ~cfg ~app ~nprocs () in
  (outcome, Trace.Sink.contents recorder)

type replay_result = {
  rr_meta : Trace.Codec.meta;
  rr_outcome : Driver.outcome;
  rr_divergence : Trace.Replay.divergence option;
  rr_races_match : bool;  (* live race set = the log's Race events *)
  rr_checksum_match : bool;  (* live memory checksum = the log's Run_end *)
}

let clean r = r.rr_divergence = None && r.rr_races_match && r.rr_checksum_match

let replay ?cost log =
  let decoded = Trace.Codec.decode log in
  let m = decoded.Trace.Codec.meta in
  let app = Apps.Registry.make ~scale:(scale_of_name m.Trace.Codec.m_scale) m.Trace.Codec.m_app in
  let verifier = Trace.Replay.create decoded in
  let cfg =
    { (config_of_meta m) with Lrc.Config.tracer = Some (Trace.Replay.sink verifier) }
  in
  let outcome = Driver.run ?cost ~cfg ~app ~nprocs:m.Trace.Codec.m_nprocs () in
  let divergence = Trace.Replay.finish verifier in
  let log_races = Trace.Replay.races_of_log decoded in
  let races_match =
    List.length log_races = List.length outcome.Driver.races
    && List.for_all2 Proto.Race.equal log_races
         (Proto.Race.dedup outcome.Driver.races)
  in
  let checksum_match =
    match Trace.Replay.checksum_of_log decoded with
    | Some c -> c = outcome.Driver.mem_checksum
    | None -> false
  in
  {
    rr_meta = m;
    rr_outcome = outcome;
    rr_divergence = divergence;
    rr_races_match = races_match;
    rr_checksum_match = checksum_match;
  }

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let save path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)
