(* The interpreter that turns a serializable {!Parallel.Task} into a
   result, plus executor-aware fronts for every sweep-shaped experiment.
   The task vocabulary lives below the core library (pure data, string
   names); this module resolves those names against the registry and
   runs the row-builders, so the dependency stays one-directional:
   parallel -> core, never back.

   Results cross process boundaries as marshaled [value]s behind a
   codec version, decoded by {!value_of_bytes} on the supervisor. Every
   [value] payload is plain data (rows of scalars, strings and small
   variants) — no closures, no custom blocks — which is what makes
   [Marshal] round-trip them exactly and keeps remote results
   byte-identical to inline ones.

   [Equiv_combo] tasks are the one case this module cannot interpret:
   the equivalence harness lives above core (it links the test combo
   table). Binaries that serve those tasks pass [?extra] to {!runner},
   which takes precedence over the built-in interpreter. *)

type value =
  | V_string of string
  | V_table1 of Experiments.table1_row
  | V_table2 of Experiments.table2_row
  | V_table3 of Experiments.table3_row
  | V_figure3 of Experiments.figure3_row
  | V_figure4 of (string * (int * float))  (* display name, (nprocs, factor) *)
  | V_figure5 of Experiments.figure5_result
  | V_protocol of Experiments.protocol_row
  | V_faults of Experiments.fault_row list  (* one app's whole drop sweep *)
  | V_ablation of Experiments.ablation_row
  | V_retention of Experiments.retention_row
  | V_sweep of Experiments.sweep_point

let value_codec_version = 3

exception Corrupt of string

let value_to_bytes v = Marshal.to_string (value_codec_version, v) []

let value_of_bytes s =
  let version, value =
    try (Marshal.from_string s 0 : int * value)
    with _ -> raise (Corrupt "undecodable result payload")
  in
  if version <> value_codec_version then
    raise
      (Corrupt
         (Printf.sprintf "result codec version %d (speaking %d)" version value_codec_version));
  value

let scale_of = Apps.Registry.scale_of_name

let eval ?clock (task : Parallel.Task.t) : value =
  match task with
  | Probe { reply; spin_ms; sleep_ms } ->
      if spin_ms > 0 then begin
        let until = Unix.gettimeofday () +. (float_of_int spin_ms /. 1000.0) in
        let x = ref 0 in
        while Unix.gettimeofday () < until do
          x := (!x * 1103515245) + 12345
        done
      end;
      if sleep_ms > 0 then Unix.sleepf (float_of_int sleep_ms /. 1000.0);
      V_string reply
  | Table1_row { scale; nprocs; app; backend; sim_jobs } ->
      V_table1
        (Experiments.table1_row ~scale:(scale_of scale) ~nprocs ~backend ?sim_jobs app)
  | Table2_row { scale; app } -> V_table2 (Experiments.table2_row ~scale:(scale_of scale) app)
  | Table3_row { scale; nprocs; app; backend; sim_jobs } ->
      V_table3
        (Experiments.table3_row ~scale:(scale_of scale) ~nprocs ~backend ?sim_jobs app)
  | Figure3_row { scale; nprocs; app; backend; sim_jobs } ->
      V_figure3
        (Experiments.figure3_row ~scale:(scale_of scale) ~nprocs ~backend ?sim_jobs app)
  | Figure4_point { scale; nprocs; app; backend; sim_jobs } ->
      V_figure4
        (Experiments.figure4_point ~scale:(scale_of scale) ~backend ?sim_jobs ~nprocs app)
  | Figure5 { protocol; sim_jobs } ->
      V_figure5
        (Experiments.figure5 ?sim_jobs ~protocol:(Lrc.Config.protocol_of_name protocol) ())
  | Protocol_row { scale; nprocs; app; protocol; sim_jobs } ->
      V_protocol
        (Experiments.protocol_row ?sim_jobs ~scale:(scale_of scale) ~nprocs app
           (Lrc.Config.protocol_of_name protocol))
  | Fault_app_sweep { scale; nprocs; drops; app } ->
      V_faults (Experiments.fault_sweep ~scale:(scale_of scale) ~nprocs ~drops app)
  | Ablation_row { scale; nprocs; app; sim_jobs } ->
      V_ablation
        (Experiments.stores_from_diffs_ablation ~scale:(scale_of scale) ~nprocs ?sim_jobs
           app)
  | Retention_row { scale; nprocs; app; sim_jobs } ->
      V_retention
        (Experiments.site_retention_ablation ~scale:(scale_of scale) ~nprocs ?sim_jobs app)
  | Bench_point { scale; nprocs; detect; elide; app; backend; sim_jobs } ->
      V_sweep
        (Experiments.sweep_point ?clock ~backend ?sim_jobs ~scale:(scale_of scale) ~nprocs
           ~detect ~elide app)
  | Equiv_combo { label } ->
      failwith
        (Printf.sprintf "Core.Tasks.eval: equiv combo %S needs the harness's extra interpreter"
           label)

let runner ?clock ?extra () task =
  match Option.bind extra (fun f -> f task) with
  | Some bytes -> bytes
  | None -> value_to_bytes (eval ?clock task)

(* ------------------------------------------------------------------ *)
(* Executor-aware fronts. Each builds the same task list an in-process
   sweep would run, fans it over [ex] (inline, domains or remote
   workers — all submission-ordered), and decodes the rows. *)

let unexpected what = failwith (Printf.sprintf "Core.Tasks: executor returned a non-%s row" what)

let run_values (ex : Parallel.Pool.executor) tasks =
  Parallel.Pool.run_tasks_exn ex tasks |> List.map value_of_bytes

let scale_name = Apps.Registry.scale_name

let table1 ?(scale = Apps.Registry.Paper) ?(nprocs = Experiments.default_procs)
    ?(backend = "lrc") ?sim_jobs ~ex () =
  run_values ex
    (List.map
       (fun app ->
         Parallel.Task.Table1_row
           { scale = scale_name scale; nprocs; app; backend; sim_jobs })
       Apps.Registry.all_names)
  |> List.map (function V_table1 r -> r | _ -> unexpected "table1")

let table2 ?(scale = Apps.Registry.Paper) ~ex () =
  run_values ex
    (List.map
       (fun app -> Parallel.Task.Table2_row { scale = scale_name scale; app })
       Apps.Registry.all_names)
  |> List.map (function V_table2 r -> r | _ -> unexpected "table2")

let table3 ?(scale = Apps.Registry.Paper) ?(nprocs = Experiments.default_procs)
    ?(backend = "lrc") ?sim_jobs ~ex () =
  run_values ex
    (List.map
       (fun app ->
         Parallel.Task.Table3_row
           { scale = scale_name scale; nprocs; app; backend; sim_jobs })
       Apps.Registry.all_names)
  |> List.map (function V_table3 r -> r | _ -> unexpected "table3")

let figure3 ?(scale = Apps.Registry.Paper) ?(nprocs = Experiments.default_procs)
    ?(backend = "lrc") ?sim_jobs ~ex () =
  run_values ex
    (List.map
       (fun app ->
         Parallel.Task.Figure3_row
           { scale = scale_name scale; nprocs; app; backend; sim_jobs })
       Apps.Registry.all_names)
  |> List.map (function V_figure3 r -> r | _ -> unexpected "figure3")

let figure4 ?(scale = Apps.Registry.Paper) ?procs ?(names = Apps.Registry.all_names)
    ?(backend = "lrc") ?sim_jobs ~ex () =
  let points = Experiments.figure4_points ?procs ~names () in
  let factors =
    run_values ex
      (List.map
         (fun (app, nprocs) ->
           Parallel.Task.Figure4_point
             { scale = scale_name scale; nprocs; app; backend; sim_jobs })
         points)
    |> List.map (function V_figure4 r -> r | _ -> unexpected "figure4")
  in
  Experiments.figure4_rows ~names ~points factors

let figure5_both ?sim_jobs ~ex () =
  run_values ex
    (List.map
       (fun protocol ->
         Parallel.Task.Figure5 { protocol = Lrc.Config.protocol_name protocol; sim_jobs })
       [ Lrc.Config.Single_writer; Lrc.Config.Seq_consistent ])
  |> List.map (function V_figure5 r -> r | _ -> unexpected "figure5")

let protocol_comparison_all ?(scale = Apps.Registry.Paper)
    ?(nprocs = Experiments.default_procs) ?(names = Apps.Registry.all_names) ?sim_jobs ~ex
    () =
  let pairs =
    List.concat_map
      (fun app -> List.map (fun p -> (app, p)) Experiments.compared_protocols)
      names
  in
  run_values ex
    (List.map
       (fun (app, protocol) ->
         Parallel.Task.Protocol_row
           {
             scale = scale_name scale;
             nprocs;
             app;
             protocol = Lrc.Config.protocol_name protocol;
             sim_jobs;
           })
       pairs)
  |> List.map (function V_protocol r -> r | _ -> unexpected "protocol")

let fault_sweep_all ?(scale = Apps.Registry.Paper) ?(nprocs = Experiments.default_procs)
    ?(drops = [ 0.0; 0.05; 0.2 ]) ~ex () =
  run_values ex
    (List.map
       (fun app ->
         Parallel.Task.Fault_app_sweep { scale = scale_name scale; nprocs; drops; app })
       Apps.Registry.all_names)
  |> List.concat_map (function V_faults rows -> rows | _ -> unexpected "fault")

let stores_from_diffs_ablation_all ?(scale = Apps.Registry.Paper)
    ?(nprocs = Experiments.default_procs) ?sim_jobs ~ex names =
  run_values ex
    (List.map
       (fun app ->
         Parallel.Task.Ablation_row { scale = scale_name scale; nprocs; app; sim_jobs })
       names)
  |> List.map (function V_ablation r -> r | _ -> unexpected "ablation")

let site_retention_ablation_all ?(scale = Apps.Registry.Paper)
    ?(nprocs = Experiments.default_procs) ?sim_jobs ~ex names =
  run_values ex
    (List.map
       (fun app ->
         Parallel.Task.Retention_row { scale = scale_name scale; nprocs; app; sim_jobs })
       names)
  |> List.map (function V_retention r -> r | _ -> unexpected "retention")

let sweep_points ?sim_jobs ~scale ~ex points =
  run_values ex
    (List.map
       (fun (app, nprocs, detect, elide, backend) ->
         Parallel.Task.Bench_point
           { scale = scale_name scale; nprocs; detect; elide; app; backend; sim_jobs })
       points)
  |> List.map (function V_sweep r -> r | _ -> unexpected "sweep")
