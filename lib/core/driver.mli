(** Run driver: builds a simulated cluster, runs an application on it and
    collects everything the experiments need. *)

type outcome = {
  app_name : string;
  nprocs : int;
  detect : bool;
  sim_time_ns : int;
  stats : Sim.Stats.t;
  races : Proto.Race.t list;
  trace : Racedetect.Oracle.trace;  (** empty unless [record_trace] *)
  sync_trace : Lrc.Sync_trace.t option;  (** present when [record_sync] *)
  watch_hits : Instrument.Watch.hit list;  (** present when watching *)
  symtab : Mem.Symtab.t;  (** variable names for symbolic race reports *)
  mem_checksum : int;
      (** {!Lrc.Cluster.memory_checksum} of the final shared-memory image;
          the fault sweep compares it across drop rates *)
}

val run :
  ?cost:Sim.Cost.t ->
  ?cfg:Lrc.Config.t ->
  ?watch_addrs:int list ->
  app:Apps.App.t ->
  nprocs:int ->
  unit ->
  outcome
(** Run one application once. [watch_addrs] installs the section 6.1
    watch list on every node. With detection enabled, the per-access
    check charge is scaled by the static pass's redundant-check batching
    ({!Instrument.Static_analysis.analyze}). The application's
    self-check raises on a wrong answer, so an [outcome] implies a
    correct run. *)

type slowdown = {
  base : outcome;  (** uninstrumented binary on unaltered CVM *)
  instrumented : outcome;  (** instrumentation + read notices + detection *)
  factor : float;
}

val measure_slowdown :
  ?cost:Sim.Cost.t -> ?cfg:Lrc.Config.t -> app:Apps.App.t -> nprocs:int -> unit -> slowdown
(** The paper's slowdown metric: the same run with and without detection. *)

val overhead_percentages : slowdown -> (Sim.Stats.overhead_category * float) list
(** Figure 3's breakdown, as percentages of the base runtime. Per-processor
    parallel charges are averaged; master-side interval/bitmap work is
    serialized and counted in full (section 6.2). *)

val racy_addrs : outcome -> int list
(** Sorted distinct racy addresses. *)

val oracle_addrs : outcome -> int list
(** Sorted distinct racy addresses per the offline happens-before
    oracle, replayed over [outcome.trace] — empty unless the run
    recorded a trace ([Config.record_trace]). The differential check is
    [racy_addrs o = oracle_addrs o]. *)
