(** The paper's online race-detection algorithm (section 4, steps 2-5) as
    pure functions over interval records. The LRC barrier master drives
    them at each global synchronization point. *)

type bitmap_pair = { reads : Mem.Bitmap.t; writes : Mem.Bitmap.t }

type bitmap_source = Proto.Interval.id -> page:int -> bitmap_pair
(** How the master obtains the word-level access bitmaps for an interval
    and page on the check list (in the full system, via the extra barrier
    round). *)

val concurrent_pairs :
  ?stats:Sim.Stats.t -> Proto.Interval.t list -> (Proto.Interval.t * Proto.Interval.t) list
(** Step 2: all cross-processor concurrent pairs among the epoch's
    intervals. Each comparison is the constant-time version-vector check;
    the count feeds the O(i^2 p^2) bound of the paper. *)

val concurrent_check_list :
  ?stats:Sim.Stats.t ->
  ?probe:(Checklist.entry -> unit) ->
  Proto.Interval.t list ->
  int * Checklist.entry list
(** Steps 2 and 3 fused: same comparisons, winnowing, order and statistics
    as {!concurrent_pairs} piped into {!check_list}, but the intermediate
    concurrent-pair list is never built. Returns the concurrent-pair
    count alongside the check list. *)

val overlapping_pages_linear :
  npages:int -> Proto.Interval.t -> Proto.Interval.t -> int list
(** Section 6.2's optimization: page lists as bitmaps, so the overlap of a
    concurrent pair costs time linear in the number of pages in the system
    instead of quadratic in the list lengths. Same result as
    {!Proto.Interval.overlapping_pages}. *)

val check_list :
  ?stats:Sim.Stats.t ->
  ?probe:(Checklist.entry -> unit) ->
  (Proto.Interval.t * Proto.Interval.t) list ->
  Checklist.entry list
(** Step 3: winnow concurrent pairs to those whose page lists overlap
    (write-write, or read in one and written in the other). [probe]
    observes every retained entry (the trace recorder's hook). *)

val races_of_entry :
  ?stats:Sim.Stats.t ->
  geometry:Mem.Geometry.t ->
  epoch:int ->
  source:bitmap_source ->
  Checklist.entry ->
  Proto.Race.t list
(** Step 5: compare word-level bitmaps for one check-list entry; every
    overlapping word is a data race (true sharing); disjoint words are
    false sharing and produce nothing. *)

val analyze_epoch :
  ?stats:Sim.Stats.t ->
  geometry:Mem.Geometry.t ->
  epoch:int ->
  source:bitmap_source ->
  Proto.Interval.t list ->
  Checklist.entry list * Proto.Race.t list
(** Steps 2+3+5 for one barrier epoch; returns the check list (for message
    accounting) and the deduplicated races. *)

val first_races : Proto.Race.t list -> Proto.Race.t list
(** Section 6.4's "first race" filter: keep only races of the earliest racy
    barrier epoch (races in later epochs are necessarily affected). *)
