(* The paper's race-detection algorithm, steps 2-5 (section 4), as pure
   functions over interval records. The barrier master drives them:

   2. find all pairs of concurrent intervals in the epoch (constant-time
      version-vector comparisons);
   3. winnow to pairs whose read/write page lists overlap -> check list;
   4. (driven by the LRC barrier: an extra message round retrieves the
      word-level bitmaps for everything on the check list);
   5. compare bitmaps; read-write or write-write overlap is a data race. *)

type bitmap_pair = { reads : Mem.Bitmap.t; writes : Mem.Bitmap.t }

type bitmap_source = Proto.Interval.id -> page:int -> bitmap_pair

let concurrent_pairs ?stats intervals =
  (* Only cross-processor pairs need a comparison: intervals of one
     processor are totally ordered by program order. The count of
     comparisons performed is what bounds the O(i^2 p^2) term. *)
  let count = ref 0 in
  let pairs = ref [] in
  let arr = Array.of_list intervals in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = arr.(i) and b = arr.(j) in
      if Proto.Interval.proc a <> Proto.Interval.proc b then begin
        incr count;
        if Proto.Interval.concurrent a b then pairs := (a, b) :: !pairs
      end
    done
  done;
  (match stats with
  | Some s -> s.Sim.Stats.interval_comparisons <- s.Sim.Stats.interval_comparisons + !count
  | None -> ());
  List.rev !pairs

(* Section 6.2: "we could perform the comparison in time linear with
   respect to the number of pages in the system by implementing page lists
   using bitmaps". The list-based version above is what the prototype ran
   (page lists are usually tiny); this one is the optimization, used when
   intervals touch many pages. *)
let page_bitmaps ~npages interval =
  let reads = Mem.Bitmap.create npages and writes = Mem.Bitmap.create npages in
  List.iter (Mem.Bitmap.set reads) interval.Proto.Interval.read_pages;
  List.iter (Mem.Bitmap.set writes) interval.Proto.Interval.write_pages;
  (reads, writes)

let overlapping_pages_linear ~npages a b =
  let read_a, write_a = page_bitmaps ~npages a in
  let read_b, write_b = page_bitmaps ~npages b in
  (* (Wa & Wb) | (Ra & Wb) | (Rb & Wa): three word-parallel passes over
     npages bits — the same candidates as
     {!Proto.Interval.overlapping_pages}, in linear time *)
  let overlap = Mem.Bitmap.inter write_a write_b in
  Mem.Bitmap.union_into ~dst:overlap (Mem.Bitmap.inter read_a write_b);
  Mem.Bitmap.union_into ~dst:overlap (Mem.Bitmap.inter read_b write_a);
  Mem.Bitmap.set_indices overlap

let check_list ?stats ?probe pairs =
  let entries =
    List.filter_map
      (fun (a, b) ->
        match Proto.Interval.overlapping_pages a b with
        | [] -> None
        | pages ->
            Some { Checklist.a = Proto.Interval.id a; b = Proto.Interval.id b; pages })
      pairs
  in
  (match probe with
  | Some f -> List.iter f entries
  | None -> ());
  (match stats with
  | Some s ->
      s.Sim.Stats.concurrent_pairs <- s.Sim.Stats.concurrent_pairs + List.length pairs;
      s.Sim.Stats.overlapping_pairs <- s.Sim.Stats.overlapping_pairs + List.length entries;
      let involved =
        List.concat_map (fun (e : Checklist.entry) -> [ e.a; e.b ]) entries
        |> List.sort_uniq compare
      in
      s.Sim.Stats.intervals_in_overlap <- s.Sim.Stats.intervals_in_overlap + List.length involved
  | None -> ());
  entries

let races_of_entry ?stats ~geometry ~epoch ~source (entry : Checklist.entry) =
  let open Proto in
  let races = ref [] in
  let emit page word first second =
    let addr = Mem.Geometry.addr_of geometry ~page ~word in
    races := { Race.addr; page; word; first; second; epoch } :: !races
  in
  List.iter
    (fun page ->
      let ba = source entry.a ~page and bb = source entry.b ~page in
      (match stats with
      | Some s -> s.Sim.Stats.bitmap_comparisons <- s.Sim.Stats.bitmap_comparisons + 1
      | None -> ());
      List.iter
        (fun word -> emit page word (entry.a, Race.Write) (entry.b, Race.Write))
        (Mem.Bitmap.inter_indices ba.writes bb.writes);
      List.iter
        (fun word -> emit page word (entry.a, Race.Read) (entry.b, Race.Write))
        (Mem.Bitmap.inter_indices ba.reads bb.writes);
      List.iter
        (fun word -> emit page word (entry.a, Race.Write) (entry.b, Race.Read))
        (Mem.Bitmap.inter_indices ba.writes bb.reads))
    entry.pages;
  List.rev !races

let analyze_epoch ?stats ~geometry ~epoch ~source intervals =
  let pairs = concurrent_pairs ?stats intervals in
  let entries = check_list ?stats pairs in
  let races =
    List.concat_map (races_of_entry ?stats ~geometry ~epoch ~source) entries
    |> Proto.Race.dedup
  in
  (entries, races)

let first_races races =
  (* Section 6.4: barriers are semantically releases to the master followed
     by releases to everyone, so any race in a prior epoch affects every
     later race; all "first" races share the earliest racy epoch. *)
  match races with
  | [] -> []
  | _ ->
      let first_epoch =
        List.fold_left (fun acc (r : Proto.Race.t) -> min acc r.epoch) max_int races
      in
      List.filter (fun (r : Proto.Race.t) -> r.epoch = first_epoch) races
