(* The paper's race-detection algorithm, steps 2-5 (section 4), as pure
   functions over interval records. The barrier master drives them:

   2. find all pairs of concurrent intervals in the epoch (constant-time
      version-vector comparisons);
   3. winnow to pairs whose read/write page lists overlap -> check list;
   4. (driven by the LRC barrier: an extra message round retrieves the
      word-level bitmaps for everything on the check list);
   5. compare bitmaps; read-write or write-write overlap is a data race. *)

type bitmap_pair = { reads : Mem.Bitmap.t; writes : Mem.Bitmap.t }

type bitmap_source = Proto.Interval.id -> page:int -> bitmap_pair

let concurrent_pairs ?stats intervals =
  (* Only cross-processor pairs need a comparison: intervals of one
     processor are totally ordered by program order. The count of
     comparisons performed is what bounds the O(i^2 p^2) term.

     The scan is O(n^2) and runs on the barrier master every epoch, so
     the id fields and version vectors are hoisted into flat arrays
     first: the inner test is then four integer loads — the paper's
     constant-time comparison — with no field chasing. *)
  let count = ref 0 in
  let pairs = ref [] in
  let arr = Array.of_list intervals in
  let n = Array.length arr in
  let procs = Array.make n 0 and indices = Array.make n 0 in
  let vcs = Array.make n [||] in
  Array.iteri
    (fun i (iv : Proto.Interval.t) ->
      procs.(i) <- iv.Proto.Interval.id.Proto.Interval.proc;
      indices.(i) <- iv.Proto.Interval.id.Proto.Interval.index;
      vcs.(i) <- iv.Proto.Interval.vc)
    arr;
  for i = 0 to n - 1 do
    let proc_i = Array.unsafe_get procs i
    and index_i = Array.unsafe_get indices i
    and vc_i = Array.unsafe_get vcs i in
    for j = i + 1 to n - 1 do
      if Array.unsafe_get procs j <> proc_i then begin
        incr count;
        (* concurrent a b = neither precedes: vc_b.(proc_a) < index_a
           and vc_a.(proc_b) < index_b *)
        if
          Array.unsafe_get (Array.unsafe_get vcs j) proc_i < index_i
          && Array.unsafe_get vc_i (Array.unsafe_get procs j) < Array.unsafe_get indices j
        then pairs := (Array.unsafe_get arr i, Array.unsafe_get arr j) :: !pairs
      end
    done
  done;
  (match stats with
  | Some s -> s.Sim.Stats.interval_comparisons <- s.Sim.Stats.interval_comparisons + !count
  | None -> ());
  List.rev !pairs

let concurrent_check_list ?stats ?probe intervals =
  (* Steps 2 and 3 fused: the concurrent-pair list is never materialized —
     each cross-processor pair is tested and winnowed in place, in the
     same scan order, with the same statistics, as {!concurrent_pairs}
     followed by {!check_list}. On a big epoch the intermediate list is
     hundreds of thousands of pairs of which a handful survive; this scan
     allocates only for the survivors. Returns the concurrent-pair count
     (the master's interval-phase cost charge) with the check list. *)
  let count = ref 0 in
  let n_concurrent = ref 0 in
  let entries = ref [] in
  let arr = Array.of_list intervals in
  let n = Array.length arr in
  let procs = Array.make n 0 and indices = Array.make n 0 in
  let vcs = Array.make n [||] in
  Array.iteri
    (fun i (iv : Proto.Interval.t) ->
      procs.(i) <- iv.Proto.Interval.id.Proto.Interval.proc;
      indices.(i) <- iv.Proto.Interval.id.Proto.Interval.index;
      vcs.(i) <- iv.Proto.Interval.vc)
    arr;
  for i = 0 to n - 1 do
    let proc_i = Array.unsafe_get procs i
    and index_i = Array.unsafe_get indices i
    and vc_i = Array.unsafe_get vcs i in
    for j = i + 1 to n - 1 do
      if Array.unsafe_get procs j <> proc_i then begin
        incr count;
        if
          Array.unsafe_get (Array.unsafe_get vcs j) proc_i < index_i
          && Array.unsafe_get vc_i (Array.unsafe_get procs j) < Array.unsafe_get indices j
        then begin
          incr n_concurrent;
          let a = Array.unsafe_get arr i and b = Array.unsafe_get arr j in
          match Proto.Interval.overlapping_pages a b with
          | [] -> ()
          | pages ->
              entries :=
                { Checklist.a = Proto.Interval.id a; b = Proto.Interval.id b; pages }
                :: !entries
        end
      end
    done
  done;
  let entries = List.rev !entries in
  (match probe with
  | Some f -> List.iter f entries
  | None -> ());
  (match stats with
  | Some s ->
      s.Sim.Stats.interval_comparisons <- s.Sim.Stats.interval_comparisons + !count;
      s.Sim.Stats.concurrent_pairs <- s.Sim.Stats.concurrent_pairs + !n_concurrent;
      s.Sim.Stats.overlapping_pairs <- s.Sim.Stats.overlapping_pairs + List.length entries;
      let involved =
        List.concat_map (fun (e : Checklist.entry) -> [ e.a; e.b ]) entries
        |> List.sort_uniq compare
      in
      s.Sim.Stats.intervals_in_overlap <- s.Sim.Stats.intervals_in_overlap + List.length involved
  | None -> ());
  (!n_concurrent, entries)

(* Section 6.2: "we could perform the comparison in time linear with
   respect to the number of pages in the system by implementing page lists
   using bitmaps". The list-based version above is what the prototype ran
   (page lists are usually tiny); this one is the optimization, used when
   intervals touch many pages. *)
let page_bitmaps ~npages interval =
  let reads = Mem.Bitmap.create npages and writes = Mem.Bitmap.create npages in
  List.iter (Mem.Bitmap.set reads) interval.Proto.Interval.read_pages;
  List.iter (Mem.Bitmap.set writes) interval.Proto.Interval.write_pages;
  (reads, writes)

let overlapping_pages_linear ~npages a b =
  let read_a, write_a = page_bitmaps ~npages a in
  let read_b, write_b = page_bitmaps ~npages b in
  (* (Wa & Wb) | (Ra & Wb) | (Rb & Wa): three word-parallel passes over
     npages bits — the same candidates as
     {!Proto.Interval.overlapping_pages}, in linear time *)
  let overlap = Mem.Bitmap.inter write_a write_b in
  Mem.Bitmap.union_into ~dst:overlap (Mem.Bitmap.inter read_a write_b);
  Mem.Bitmap.union_into ~dst:overlap (Mem.Bitmap.inter read_b write_a);
  Mem.Bitmap.set_indices overlap

let check_list ?stats ?probe pairs =
  let entries =
    List.filter_map
      (fun (a, b) ->
        match Proto.Interval.overlapping_pages a b with
        | [] -> None
        | pages ->
            Some { Checklist.a = Proto.Interval.id a; b = Proto.Interval.id b; pages })
      pairs
  in
  (match probe with
  | Some f -> List.iter f entries
  | None -> ());
  (match stats with
  | Some s ->
      s.Sim.Stats.concurrent_pairs <- s.Sim.Stats.concurrent_pairs + List.length pairs;
      s.Sim.Stats.overlapping_pairs <- s.Sim.Stats.overlapping_pairs + List.length entries;
      let involved =
        List.concat_map (fun (e : Checklist.entry) -> [ e.a; e.b ]) entries
        |> List.sort_uniq compare
      in
      s.Sim.Stats.intervals_in_overlap <- s.Sim.Stats.intervals_in_overlap + List.length involved
  | None -> ());
  entries

let races_of_entry ?stats ~geometry ~epoch ~source (entry : Checklist.entry) =
  let open Proto in
  let races = ref [] in
  let emit page word first second =
    let addr = Mem.Geometry.addr_of geometry ~page ~word in
    races := { Race.addr; page; word; first; second; epoch } :: !races
  in
  List.iter
    (fun page ->
      let ba = source entry.a ~page and bb = source entry.b ~page in
      (match stats with
      | Some s -> s.Sim.Stats.bitmap_comparisons <- s.Sim.Stats.bitmap_comparisons + 1
      | None -> ());
      List.iter
        (fun word -> emit page word (entry.a, Race.Write) (entry.b, Race.Write))
        (Mem.Bitmap.inter_indices ba.writes bb.writes);
      List.iter
        (fun word -> emit page word (entry.a, Race.Read) (entry.b, Race.Write))
        (Mem.Bitmap.inter_indices ba.reads bb.writes);
      List.iter
        (fun word -> emit page word (entry.a, Race.Write) (entry.b, Race.Read))
        (Mem.Bitmap.inter_indices ba.writes bb.reads))
    entry.pages;
  List.rev !races

let analyze_epoch ?stats ~geometry ~epoch ~source intervals =
  let pairs = concurrent_pairs ?stats intervals in
  let entries = check_list ?stats pairs in
  let races =
    List.concat_map (races_of_entry ?stats ~geometry ~epoch ~source) entries
    |> Proto.Race.dedup
  in
  (entries, races)

let first_races races =
  (* Section 6.4: barriers are semantically releases to the master followed
     by releases to everyone, so any race in a prior epoch affects every
     later race; all "first" races share the earliest racy epoch. *)
  match races with
  | [] -> []
  | _ ->
      let first_epoch =
        List.fold_left (fun acc (r : Proto.Race.t) -> min acc r.epoch) max_int races
      in
      List.filter (fun (r : Proto.Race.t) -> r.epoch = first_epoch) races
