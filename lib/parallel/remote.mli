(** Fault-tolerant remote executor: pool tasks in separate worker
    {e processes}, supervised over framed stdio pipes ({!Frame}), with
    heartbeats, per-task deadlines, retry-on-worker-loss and a
    crash-loop breaker. See docs/PARALLEL.md for the wire protocol, the
    failure-model table and the degradation ladder.

    Workers are spawned copies of the current binary: every binary that
    offers [--workers] calls {!maybe_worker} first thing in [main]
    (before any output or argument parsing), which hijacks the process
    into the worker loop when [CVM_REMOTE_WORKER=1] is set and is a
    no-op otherwise. Same binary on both ends is what makes [Marshal]
    safe for payloads; the framed protocol itself is transport-agnostic
    so only the spawn step needs replacing for socket workers.

    Determinism guarantee (proved by test/suite_remote.ml and the
    [make check] chaos smoke): results are harvested in submission
    order and a retried task re-runs the same pure description, so an
    [ex_run] under any {!Chaos} plan — workers killed mid-task, hung
    past the deadline, streams corrupted — returns results
    byte-identical to a sequential run. *)

type config = {
  workers : int;
  task_deadline_s : float;  (** per-task wall clock; expiry loses the worker *)
  heartbeat_period_s : float;
  heartbeat_grace_s : float;  (** silence longer than this loses the worker *)
  max_task_retries : int;  (** then the task runs inline on the supervisor *)
  max_respawns : int;  (** per slot; then the crash-loop breaker trips *)
  retry_backoff_s : float;  (** initial task-retry backoff; doubles per try *)
  respawn_backoff_s : float;  (** initial respawn backoff; doubles per gen *)
  respawn_backoff_max_s : float;
  chaos : Chaos.plan;  (** shipped to workers via [CVM_REMOTE_CHAOS] *)
}

val default_config : workers:int -> config
(** 600s deadline, 0.25s heartbeats with 2s grace, 3 retries,
    3 respawns per slot, no chaos. *)

type t

val create : config:config -> run:(Task.t -> string) -> unit -> t
(** [run] is the task interpreter — the same one handed to
    {!maybe_worker} — used by the supervisor for the inline fallback.
    Workers spawn lazily on first use and persist across [ex_run]
    calls until {!shutdown}. *)

val executor : t -> Pool.executor
(** Mode ["remote"]. [ex_run] results arrive in submission order; a
    task that raised in a worker reports [Pool.Task_failed] carrying
    the rendered exception. *)

val stats : t -> Executor_stats.t
val shutdown : t -> unit
(** Quit frames, a short grace for clean exits, then SIGKILL for the
    rest. Idempotent. *)

val with_executor :
  config:config -> run:(Task.t -> string) -> (Pool.executor -> 'a) -> 'a
(** [create], apply, [shutdown] (also on exception). *)

val worker_main : run:(Task.t -> string) -> unit -> 'a
(** The worker loop: serve task frames from stdin, reply on stdout,
    heartbeat from a background thread, obey the chaos plan from the
    environment. Never returns. *)

val maybe_worker : run:(Task.t -> string) -> unit -> unit
(** Call first thing in [main]. Enters {!worker_main} (never
    returning) when [CVM_REMOTE_WORKER=1] is in the environment; no-op
    otherwise. *)
