(* Counters the remote executor (and, trivially, the in-process
   executors) expose to the surfaces that ran a sweep: how many tasks
   were dispatched, how many had to be retried or relocated inline, how
   many workers were lost and respawned, and how much framed traffic
   crossed the pipes. Mutable in place: the supervisor increments them
   from its event loop and callers read a snapshot after the run. *)

type t = {
  mode : string;  (* "inline" | "domains" | "remote" *)
  workers : int;
  mutable tasks_dispatched : int;
  mutable tasks_completed : int;
  mutable tasks_retried : int;
  mutable tasks_failed : int;
  mutable tasks_inline : int;
  mutable workers_spawned : int;
  mutable workers_lost : int;
  mutable workers_respawned : int;
  mutable respawns_suppressed : int;
  mutable deadline_expiries : int;
  mutable heartbeat_expiries : int;
  mutable corrupt_frames : int;
  mutable heartbeats : int;
  mutable frames_sent : int;
  mutable frames_received : int;
  mutable bytes_framed : int;
}

let create ~mode ~workers =
  {
    mode;
    workers;
    tasks_dispatched = 0;
    tasks_completed = 0;
    tasks_retried = 0;
    tasks_failed = 0;
    tasks_inline = 0;
    workers_spawned = 0;
    workers_lost = 0;
    workers_respawned = 0;
    respawns_suppressed = 0;
    deadline_expiries = 0;
    heartbeat_expiries = 0;
    corrupt_frames = 0;
    heartbeats = 0;
    frames_sent = 0;
    frames_received = 0;
    bytes_framed = 0;
  }

let fields t =
  [
    ("tasks_dispatched", t.tasks_dispatched);
    ("tasks_completed", t.tasks_completed);
    ("tasks_retried", t.tasks_retried);
    ("tasks_failed", t.tasks_failed);
    ("tasks_inline", t.tasks_inline);
    ("workers_spawned", t.workers_spawned);
    ("workers_lost", t.workers_lost);
    ("workers_respawned", t.workers_respawned);
    ("respawns_suppressed", t.respawns_suppressed);
    ("deadline_expiries", t.deadline_expiries);
    ("heartbeat_expiries", t.heartbeat_expiries);
    ("corrupt_frames", t.corrupt_frames);
    ("heartbeats", t.heartbeats);
    ("frames_sent", t.frames_sent);
    ("frames_received", t.frames_received);
    ("bytes_framed", t.bytes_framed);
  ]

let pp ppf t =
  Format.fprintf ppf "@[<v>executor: %s, %d worker(s)" t.mode t.workers;
  List.iter
    (fun (name, v) -> if v <> 0 then Format.fprintf ppf "@ %-20s %d" name v)
    (fields t);
  Format.fprintf ppf "@]"
