(* A small Domains work pool: a fixed set of workers pulling closures
   off one queue behind a mutex/condvar pair. Results travel through
   per-task cells (each with its own mutex/condvar), and the caller
   awaits the cells in submission order — which is what makes parallel
   sweeps render identically to sequential ones.

   The pool deliberately has no notion of priorities, cancellation or
   nested submission: every intended task is one deterministic,
   self-contained simulation run (seconds of work), so a plain FIFO and
   submission-order harvesting are both sufficient and the easiest
   thing to prove deterministic.

   The one concession to robustness is an optional per-task wall-clock
   deadline: OCaml cannot interrupt a running domain, so a hung task
   cannot be cancelled, but the *awaiter* can stop waiting — the cell
   fills with a structured [Deadline_exceeded] failure and [shutdown]
   declines to join a worker still stuck past the deadline (the domain
   leaks; the process no longer wedges). With [jobs = 1] tasks run
   inline on the calling domain, so a deadline there is only checked
   after the fact. *)

type failure = { f_exn : exn; f_backtrace : string }

exception Deadline_exceeded of { label : string; elapsed_s : float }

exception Task_failed of string
(* A task failed in another *process*, where the original exception
   cannot travel: only its rendering comes back. Declared here so the
   in-process and remote executors share one failure vocabulary. *)

let () =
  Printexc.register_printer (function
    | Deadline_exceeded { label; elapsed_s } ->
        Some (Printf.sprintf "Parallel.Pool.Deadline_exceeded(%s after %.1fs)" label elapsed_s)
    | Task_failed msg -> Some (Printf.sprintf "Parallel.Pool.Task_failed(%s)" msg)
    | _ -> None)

type t = {
  pool_jobs : int;
  deadline_s : float option;
  lock : Mutex.t;
  nonempty : Condition.t;  (* signalled on enqueue and on close *)
  queue : (int -> unit) Queue.t;  (* pending task closures, applied to a worker index *)
  busy : float option array;  (* per-worker start time of the task in hand *)
  mutable closed : bool;
  mutable workers : unit Domain.t array;
}

(* One result cell per task. The worker fills it under [c_lock] and
   signals; the submitting domain awaits it — or, past the deadline,
   fills it with a failure itself (first writer wins). *)
type 'a cell = {
  c_lock : Mutex.t;
  c_done : Condition.t;
  c_label : string;
  c_deadline : float option;
  mutable c_started : float option;
  mutable c_result : ('a, failure) result option;
}

let default_jobs () = max 1 (Domain.recommended_domain_count ())

let guard f =
  try Ok (f ())
  with e ->
    (* capture in the raising domain: backtraces are per-domain state *)
    Error { f_exn = e; f_backtrace = Printexc.get_backtrace () }

let rec worker pool wi =
  Mutex.lock pool.lock;
  while Queue.is_empty pool.queue && not pool.closed do
    Condition.wait pool.nonempty pool.lock
  done;
  match Queue.take_opt pool.queue with
  | None ->
      (* empty and closed: done *)
      Mutex.unlock pool.lock
  | Some job ->
      Mutex.unlock pool.lock;
      job wi;
      worker pool wi

let create ?jobs ?deadline_s () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Parallel.Pool.create: jobs must be >= 1";
  (match deadline_s with
  | Some d when d <= 0.0 -> invalid_arg "Parallel.Pool.create: deadline must be > 0"
  | _ -> ());
  let pool =
    {
      pool_jobs = jobs;
      deadline_s;
      lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      busy = Array.make (if jobs > 1 then jobs else 0) None;
      closed = false;
      workers = [||];
    }
  in
  if jobs > 1 then
    pool.workers <- Array.init jobs (fun wi -> Domain.spawn (fun () -> worker pool wi));
  pool

let jobs pool = pool.pool_jobs

let submit ?(label = "task") pool task =
  let cell =
    {
      c_lock = Mutex.create ();
      c_done = Condition.create ();
      c_label = label;
      c_deadline = pool.deadline_s;
      c_started = None;
      c_result = None;
    }
  in
  (* First writer wins: a late worker result never clobbers a
     deadline failure the awaiter already returned. *)
  let fill r =
    Mutex.lock cell.c_lock;
    if cell.c_result = None then begin
      cell.c_result <- Some r;
      Condition.signal cell.c_done
    end;
    Mutex.unlock cell.c_lock
  in
  let job wi =
    let start = Unix.gettimeofday () in
    Mutex.lock cell.c_lock;
    cell.c_started <- Some start;
    Mutex.unlock cell.c_lock;
    if wi >= 0 then begin
      Mutex.lock pool.lock;
      pool.busy.(wi) <- Some start;
      Mutex.unlock pool.lock
    end;
    fill (guard task);
    if wi >= 0 then begin
      Mutex.lock pool.lock;
      pool.busy.(wi) <- None;
      Mutex.unlock pool.lock
    end
  in
  if pool.pool_jobs = 1 then begin
    (* inline pool: run now, on this domain — sequential semantics *)
    if pool.closed then invalid_arg "Parallel.Pool: submit after shutdown";
    job (-1)
  end
  else begin
    Mutex.lock pool.lock;
    if pool.closed then begin
      Mutex.unlock pool.lock;
      invalid_arg "Parallel.Pool: submit after shutdown"
    end;
    Queue.add job pool.queue;
    Condition.signal pool.nonempty;
    Mutex.unlock pool.lock
  end;
  cell

let await cell =
  match cell.c_deadline with
  | None ->
      Mutex.lock cell.c_lock;
      while cell.c_result = None do
        Condition.wait cell.c_done cell.c_lock
      done;
      let r = match cell.c_result with Some r -> r | None -> assert false in
      Mutex.unlock cell.c_lock;
      r
  | Some deadline ->
      (* OCaml's [Condition] has no timed wait, so past a deadline we
         poll. The deadline anchors at task start when the task has
         started, else at await entry — so tasks queued behind hung
         workers eventually expire too instead of wedging the caller. *)
      let entered = Unix.gettimeofday () in
      let rec poll () =
        Mutex.lock cell.c_lock;
        match cell.c_result with
        | Some r ->
            Mutex.unlock cell.c_lock;
            r
        | None ->
            let now = Unix.gettimeofday () in
            let anchor = match cell.c_started with Some s -> s | None -> entered in
            let elapsed = now -. anchor in
            if elapsed > deadline then begin
              let r =
                Error
                  {
                    f_exn = Deadline_exceeded { label = cell.c_label; elapsed_s = elapsed };
                    f_backtrace = "";
                  }
              in
              cell.c_result <- Some r;
              Mutex.unlock cell.c_lock;
              r
            end
            else begin
              Mutex.unlock cell.c_lock;
              Unix.sleepf 0.02;
              poll ()
            end
      in
      poll ()

let shutdown pool =
  Mutex.lock pool.lock;
  pool.closed <- true;
  Condition.broadcast pool.nonempty;
  (* run anything still queued here rather than stranding its awaiters *)
  let leftovers = ref [] in
  Queue.iter (fun job -> leftovers := job :: !leftovers) pool.queue;
  Queue.clear pool.queue;
  Mutex.unlock pool.lock;
  List.iter (fun job -> job (-1)) (List.rev !leftovers);
  Array.iteri
    (fun wi d ->
      (* joining a worker stuck past the task deadline would wedge the
         whole process; leak that one domain instead *)
      let stuck =
        match pool.deadline_s with
        | None -> false
        | Some dl -> (
            Mutex.lock pool.lock;
            let b = pool.busy.(wi) in
            Mutex.unlock pool.lock;
            match b with
            | Some start -> Unix.gettimeofday () -. start > dl
            | None -> false)
      in
      if not stuck then Domain.join d)
    pool.workers;
  pool.workers <- [||]

let with_pool ?jobs ?deadline_s f =
  let pool = create ?jobs ?deadline_s () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let run ?progress pool tasks =
  let cells = List.map (fun task -> submit pool task) tasks in
  List.mapi
    (fun i cell ->
      let r = await cell in
      (match progress with Some f -> f i | None -> ());
      r)
    cells

let map ?progress pool f xs = run ?progress pool (List.map (fun x () -> f x) xs)

let map_exn pool f xs =
  let results = map pool f xs in
  List.map
    (function
      | Ok v -> v
      | Error { f_exn; f_backtrace = _ } -> raise f_exn)
    results

(* ------------------------------------------------------------------ *)
(* Executors: one submission surface over the in-process pool and the
   remote process supervisor. A surface that can describe its work as
   [Task.t] values runs them through whichever executor the user asked
   for and gets encoded results back in submission order. *)

type executor = {
  ex_mode : string;  (* "inline" | "domains" | "remote" *)
  ex_parallelism : int;
  ex_run : Task.t list -> (string, failure) result list;
  ex_stats : unit -> Executor_stats.t;
}

let task_executor ?deadline_s ~jobs ~run () =
  let mode = if jobs <= 1 then "inline" else "domains" in
  let stats = Executor_stats.create ~mode ~workers:0 in
  let ex_run tasks =
    with_pool ~jobs ?deadline_s (fun pool ->
        let cells =
          List.map
            (fun task ->
              stats.Executor_stats.tasks_dispatched <-
                stats.Executor_stats.tasks_dispatched + 1;
              submit pool ~label:(Task.label task) (fun () -> run task))
            tasks
        in
        List.map
          (fun cell ->
            match await cell with
            | Ok _ as r ->
                stats.Executor_stats.tasks_completed <-
                  stats.Executor_stats.tasks_completed + 1;
                r
            | Error _ as r ->
                stats.Executor_stats.tasks_failed <- stats.Executor_stats.tasks_failed + 1;
                r)
          cells)
  in
  { ex_mode = mode; ex_parallelism = jobs; ex_run; ex_stats = (fun () -> stats) }

let run_tasks_exn ex tasks =
  List.map
    (function
      | Ok encoded -> encoded
      | Error { f_exn; f_backtrace = _ } -> raise f_exn)
    (ex.ex_run tasks)
