(* A small Domains work pool: a fixed set of workers pulling closures
   off one queue behind a mutex/condvar pair. Results travel through
   per-task cells (each with its own mutex/condvar), and the caller
   awaits the cells in submission order — which is what makes parallel
   sweeps render identically to sequential ones.

   The pool deliberately has no notion of priorities, cancellation or
   nested submission: every intended task is one deterministic,
   self-contained simulation run (seconds of work), so a plain FIFO and
   submission-order harvesting are both sufficient and the easiest
   thing to prove deterministic. *)

type failure = { f_exn : exn; f_backtrace : string }

type t = {
  pool_jobs : int;
  lock : Mutex.t;
  nonempty : Condition.t;  (* signalled on enqueue and on close *)
  queue : (unit -> unit) Queue.t;  (* pending task closures *)
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

(* One result cell per task. The worker fills it under [c_lock] and
   signals; the submitting domain awaits it. *)
type 'a cell = {
  c_lock : Mutex.t;
  c_done : Condition.t;
  mutable c_result : ('a, failure) result option;
}

let default_jobs () = max 1 (Domain.recommended_domain_count ())

let guard f =
  try Ok (f ())
  with e ->
    (* capture in the raising domain: backtraces are per-domain state *)
    Error { f_exn = e; f_backtrace = Printexc.get_backtrace () }

let rec worker pool =
  Mutex.lock pool.lock;
  while Queue.is_empty pool.queue && not pool.closed do
    Condition.wait pool.nonempty pool.lock
  done;
  match Queue.take_opt pool.queue with
  | None ->
      (* empty and closed: done *)
      Mutex.unlock pool.lock
  | Some job ->
      Mutex.unlock pool.lock;
      job ();
      worker pool

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Parallel.Pool.create: jobs must be >= 1";
  let pool =
    {
      pool_jobs = jobs;
      lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [];
    }
  in
  if jobs > 1 then
    pool.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let jobs pool = pool.pool_jobs

let submit pool task =
  let cell = { c_lock = Mutex.create (); c_done = Condition.create (); c_result = None } in
  let fill r =
    Mutex.lock cell.c_lock;
    cell.c_result <- Some r;
    Condition.signal cell.c_done;
    Mutex.unlock cell.c_lock
  in
  if pool.pool_jobs = 1 then begin
    (* inline pool: run now, on this domain — sequential semantics *)
    if pool.closed then invalid_arg "Parallel.Pool: submit after shutdown";
    fill (guard task)
  end
  else begin
    Mutex.lock pool.lock;
    if pool.closed then begin
      Mutex.unlock pool.lock;
      invalid_arg "Parallel.Pool: submit after shutdown"
    end;
    Queue.add (fun () -> fill (guard task)) pool.queue;
    Condition.signal pool.nonempty;
    Mutex.unlock pool.lock
  end;
  cell

let await cell =
  Mutex.lock cell.c_lock;
  while cell.c_result = None do
    Condition.wait cell.c_done cell.c_lock
  done;
  let r = match cell.c_result with Some r -> r | None -> assert false in
  Mutex.unlock cell.c_lock;
  r

let shutdown pool =
  Mutex.lock pool.lock;
  pool.closed <- true;
  Condition.broadcast pool.nonempty;
  (* run anything still queued here rather than stranding its awaiters *)
  let leftovers = ref [] in
  Queue.iter (fun job -> leftovers := job :: !leftovers) pool.queue;
  Queue.clear pool.queue;
  Mutex.unlock pool.lock;
  List.iter (fun job -> job ()) (List.rev !leftovers);
  List.iter Domain.join pool.workers;
  pool.workers <- []

let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let run ?progress pool tasks =
  let cells = List.map (submit pool) tasks in
  List.mapi
    (fun i cell ->
      let r = await cell in
      (match progress with Some f -> f i | None -> ());
      r)
    cells

let map ?progress pool f xs = run ?progress pool (List.map (fun x () -> f x) xs)

let map_exn pool f xs =
  let results = map pool f xs in
  List.map
    (function
      | Ok v -> v
      | Error { f_exn; f_backtrace = _ } -> raise f_exn)
    results
