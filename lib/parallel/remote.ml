(* A fault-tolerant remote executor: pool tasks running in separate
   worker *processes*, supervised over framed stdio pipes.

   The supervisor spawns [workers] copies of the *current binary* with
   [CVM_REMOTE_WORKER=1] in the environment; every binary that wants to
   serve as its own worker calls [maybe_worker ~run] first thing in
   [main], before printing or parsing anything. The same-binary rule is
   what makes [Marshal] safe on both task and result payloads, and the
   framed protocol (Frame) is transport-agnostic, so the spawn step is
   the only piece to replace for socket-connected workers on other
   hosts.

   Supervision model (single-threaded select loop, one task in flight
   per worker, results harvested into a submission-indexed array):

   - a worker answers each task frame with a result or task-error
     frame, and a background thread heartbeats every
     [heartbeat_period_s];
   - failure detection: EOF on the pipe (worker exited), corrupt or
     truncated frame (stream no longer trustworthy — worker killed),
     task deadline expiry (hung worker, heartbeats or not), heartbeat
     grace expiry (silent worker);
   - degradation ladder: a task lost with its worker is *retried* on
     another worker after an exponential backoff, up to
     [max_task_retries]; past the cap it runs *inline* on the
     supervisor, so no awaiter is ever stranded. A lost worker slot is
     *respawned* (fresh generation) after its own exponential backoff,
     up to [max_respawns] per slot; past the cap the slot is *broken*
     (crash-loop breaker) and the executor narrows. If every slot
     breaks, all remaining tasks run inline.
   - a task that *itself* raises (task-error frame) is never retried:
     tasks are deterministic, so it would fail identically — matching
     the in-process pool's failure-isolation semantics.

   Determinism: tasks are dispatched in submission order, results are
   keyed by submission index, and a retried task re-runs the same pure
   description, so harvested results are byte-identical to a [--jobs 1]
   run no matter which workers died when — that is the property the
   chaos suite (Chaos, test/suite_remote.ml) proves. *)

type config = {
  workers : int;
  task_deadline_s : float;
  heartbeat_period_s : float;
  heartbeat_grace_s : float;
  max_task_retries : int;
  max_respawns : int;
  retry_backoff_s : float;  (* initial; doubles per retry *)
  respawn_backoff_s : float;  (* initial; doubles per generation *)
  respawn_backoff_max_s : float;
  chaos : Chaos.plan;
}

let default_config ~workers =
  {
    workers = max 1 workers;
    task_deadline_s = 600.0;
    heartbeat_period_s = 0.25;
    heartbeat_grace_s = 2.0;
    max_task_retries = 3;
    max_respawns = 3;
    retry_backoff_s = 0.02;
    respawn_backoff_s = 0.05;
    respawn_backoff_max_s = 1.0;
    chaos = Chaos.none;
  }

(* Frame kinds. Supervisor -> worker: 'T' task, 'Q' quit.
   Worker -> supervisor: 'R' result, 'E' task error, 'H' heartbeat. *)

let env_worker = "CVM_REMOTE_WORKER"
let env_slot = "CVM_REMOTE_SLOT"
let env_gen = "CVM_REMOTE_GEN"
let env_chaos = "CVM_REMOTE_CHAOS"
let env_hb = "CVM_REMOTE_HB"

(* ------------------------------------------------------------------ *)
(* Worker side *)

let worker_main ~run () =
  (* Keep the result pipe private and point stdout at stderr, so a
     stray [print_string] in task code cannot corrupt the protocol. *)
  let out = Unix.dup Unix.stdout in
  Unix.dup2 Unix.stderr Unix.stdout;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let getenv_int name default =
    match Sys.getenv_opt name with
    | Some v -> ( match int_of_string_opt v with Some n -> n | None -> default)
    | None -> default
  in
  let slot = getenv_int env_slot 0 in
  let gen = getenv_int env_gen 0 in
  let hb_period =
    match Option.bind (Sys.getenv_opt env_hb) float_of_string_opt with
    | Some f when f > 0.0 -> f
    | _ -> 0.25
  in
  let plan =
    match Sys.getenv_opt env_chaos with
    | None | Some "" -> Chaos.none
    | Some spec -> ( match Chaos.parse spec with Ok p -> p | Error _ -> Chaos.none)
  in
  if Chaos.spawn_crashes plan ~slot ~gen then exit 3;
  let wlock = Mutex.create () in
  let muted = Atomic.make false in
  let send_frame b =
    Mutex.lock wlock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock wlock)
      (fun () -> ignore (Frame.write_bytes out b))
  in
  (* Immediate hello heartbeat: linked libraries may have printed to
     stdout at module init (before this function could redirect it), and
     the supervisor resyncs past that junk by scanning to the next frame
     magic — which must therefore arrive promptly even if the first task
     hangs or mutes this worker, or the scan would block the supervisor
     on a silent pipe. *)
  send_frame (Frame.encode ~kind:'H' "");
  (* Heartbeats from a plain thread: tasks are compute-bound OCaml, but
     the runtime preempts threads between allocations, which is plenty
     at a 250ms cadence. A failed write means the supervisor is gone. *)
  ignore
    (Thread.create
       (fun () ->
         let rec beat () =
           Thread.delay hb_period;
           if not (Atomic.get muted) then begin
             match send_frame (Frame.encode ~kind:'H' "") with
             | () -> ()
             | exception _ -> exit 0
           end;
           beat ()
         in
         beat ())
       ());
  let nth = ref 0 in
  let rec serve () =
    (match Frame.read Unix.stdin with
    | Error Frame.Eof -> exit 0
    | Error (Frame.Corrupt _) -> exit 5
    | Ok ('Q', _) -> exit 0
    | Ok ('T', payload) ->
        let id, task_bytes =
          try (Marshal.from_string payload 0 : int * string) with _ -> exit 5
        in
        let task = try Task.decode task_bytes with Task.Corrupt _ -> exit 5 in
        incr nth;
        let reply () =
          match run task with
          | bytes -> Frame.encode ~kind:'R' (Marshal.to_string (id, bytes) [])
          | exception e ->
              Frame.encode ~kind:'E' (Marshal.to_string (id, Printexc.to_string e) [])
        in
        (match Chaos.decide plan ~slot ~gen ~nth:!nth ~label:(Task.label task) with
        | Chaos.Run -> send_frame (reply ())
        | Chaos.Die -> exit 4
        | Chaos.Hang { mute } ->
            if mute then Atomic.set muted true;
            while true do
              Thread.delay 3600.0
            done
        | Chaos.Corrupt_result ->
            let frame = reply () in
            let pos = Frame.header_size + ((Bytes.length frame - Frame.header_size) / 2) in
            Bytes.set frame pos (Char.chr (Char.code (Bytes.get frame pos) lxor 0xff));
            send_frame frame
        | Chaos.Truncate_result ->
            let frame = reply () in
            let half = max 1 (Bytes.length frame / 2) in
            send_frame (Bytes.sub frame 0 half);
            exit 6)
    | Ok (_, _) -> exit 5);
    serve ()
  in
  serve ()

let maybe_worker ~run () =
  match Sys.getenv_opt env_worker with
  | Some "1" -> worker_main ~run ()
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Supervisor side *)

type proc = {
  pid : int;
  to_worker : Unix.file_descr;
  from_worker : Unix.file_descr;
  mutable last_heartbeat : float;
}

type pending = {
  p_ix : int;  (* submission index — where the result lands *)
  p_task : Task.t;
  mutable p_tries : int;  (* dispatch attempts lost with their worker *)
  mutable p_not_before : float;  (* retry backoff gate *)
}

type slot_state =
  | Idle of proc
  | Busy of { proc : proc; task : pending; started : float }
  | Down of { not_before : float }  (* waiting out the respawn backoff *)
  | Broken  (* crash-loop breaker tripped: never respawned again *)

type t = {
  cfg : config;
  run : Task.t -> string;  (* the interpreter, for inline fallback *)
  stats : Executor_stats.t;
  slots : slot_state array;
  gens : int array;  (* current spawn generation per slot, -1 = never *)
  mutable stopped : bool;
}

let self_exe () =
  let exe = Sys.executable_name in
  if Filename.is_relative exe then (try Unix.readlink "/proc/self/exe" with _ -> exe)
  else exe

let create ~config ~run () =
  if config.workers < 1 then invalid_arg "Parallel.Remote.create: workers must be >= 1";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  {
    cfg = config;
    run;
    stats = Executor_stats.create ~mode:"remote" ~workers:config.workers;
    slots = Array.make config.workers (Down { not_before = 0.0 });
    gens = Array.make config.workers (-1);
    stopped = false;
  }

let stats t = t.stats

let spawn_slot t i =
  t.gens.(i) <- t.gens.(i) + 1;
  let gen = t.gens.(i) in
  let task_r, task_w = Unix.pipe () in
  let res_r, res_w = Unix.pipe () in
  Unix.set_close_on_exec task_w;
  Unix.set_close_on_exec res_r;
  let env =
    (Unix.environment () |> Array.to_list
    |> List.filter (fun s -> not (String.starts_with ~prefix:"CVM_REMOTE_" s)))
    @ [
        env_worker ^ "=1";
        Printf.sprintf "%s=%d" env_slot i;
        Printf.sprintf "%s=%d" env_gen gen;
        Printf.sprintf "%s=%g" env_hb t.cfg.heartbeat_period_s;
        Printf.sprintf "%s=%s" env_chaos (Chaos.to_spec t.cfg.chaos);
      ]
  in
  let exe = self_exe () in
  let pid = Unix.create_process_env exe [| exe |] (Array.of_list env) task_r res_w Unix.stderr in
  Unix.close task_r;
  Unix.close res_w;
  t.stats.Executor_stats.workers_spawned <- t.stats.Executor_stats.workers_spawned + 1;
  if gen > 0 then
    t.stats.Executor_stats.workers_respawned <- t.stats.Executor_stats.workers_respawned + 1;
  t.slots.(i) <-
    Idle { pid; to_worker = task_w; from_worker = res_r; last_heartbeat = Unix.gettimeofday () }

let reap proc =
  (try Unix.close proc.to_worker with _ -> ());
  (try Unix.close proc.from_worker with _ -> ());
  (try Unix.kill proc.pid Sys.sigkill with _ -> ());
  try ignore (Unix.waitpid [] proc.pid) with _ -> ()

let respawn_backoff t i =
  min t.cfg.respawn_backoff_max_s
    (t.cfg.respawn_backoff_s *. (2.0 ** float_of_int (max 0 t.gens.(i))))

(* Run the whole task list; results in submission order. Per-call state
   (the result array and retry queue) is local; worker processes and
   stats persist on [t] across calls. *)
let run_tasks t tasks =
  if t.stopped then invalid_arg "Parallel.Remote: run after shutdown";
  let st = t.stats in
  let bump_sent n =
    st.Executor_stats.frames_sent <- st.Executor_stats.frames_sent + 1;
    st.Executor_stats.bytes_framed <- st.Executor_stats.bytes_framed + n
  in
  let bump_received payload_len =
    st.Executor_stats.frames_received <- st.Executor_stats.frames_received + 1;
    st.Executor_stats.bytes_framed <-
      st.Executor_stats.bytes_framed + Frame.header_size + payload_len
  in
  let n = List.length tasks in
  let results : (string, Pool.failure) result option array = Array.make n None in
  let fill ix r = if results.(ix) = None then results.(ix) <- Some r in
  let run_inline p =
    st.Executor_stats.tasks_inline <- st.Executor_stats.tasks_inline + 1;
    let r =
      match t.run p.p_task with
      | bytes ->
          st.Executor_stats.tasks_completed <- st.Executor_stats.tasks_completed + 1;
          Ok bytes
      | exception e ->
          st.Executor_stats.tasks_failed <- st.Executor_stats.tasks_failed + 1;
          Error { Pool.f_exn = e; f_backtrace = Printexc.get_backtrace () }
    in
    fill p.p_ix r
  in
  let waiting =
    ref (List.mapi (fun i task -> { p_ix = i; p_task = task; p_tries = 0; p_not_before = 0.0 }) tasks)
  in
  let take_ready now =
    match List.find_opt (fun p -> p.p_not_before <= now) !waiting with
    | None -> None
    | Some p ->
        waiting := List.filter (fun q -> q != p) !waiting;
        Some p
  in
  (* A task lost with its worker: retry with backoff, or past the cap
     run it inline right here — the awaiter is never stranded. *)
  let requeue now p =
    p.p_tries <- p.p_tries + 1;
    if p.p_tries > t.cfg.max_task_retries then run_inline p
    else begin
      st.Executor_stats.tasks_retried <- st.Executor_stats.tasks_retried + 1;
      p.p_not_before <-
        now +. (t.cfg.retry_backoff_s *. (2.0 ** float_of_int (p.p_tries - 1)));
      waiting := !waiting @ [ p ]
    end
  in
  let lose now i =
    match t.slots.(i) with
    | Down _ | Broken -> ()
    | (Idle proc | Busy { proc; _ }) as old ->
        reap proc;
        st.Executor_stats.workers_lost <- st.Executor_stats.workers_lost + 1;
        (match old with Busy { task; _ } -> requeue now task | _ -> ());
        if t.gens.(i) + 1 > t.cfg.max_respawns then begin
          st.Executor_stats.respawns_suppressed <-
            st.Executor_stats.respawns_suppressed + 1;
          t.slots.(i) <- Broken
        end
        else t.slots.(i) <- Down { not_before = now +. respawn_backoff t i }
  in
  let done_ () = Array.for_all (fun r -> r <> None) results in
  while not (done_ ()) do
    let now = Unix.gettimeofday () in
    (* 1. respawn slots whose backoff elapsed *)
    Array.iteri
      (fun i s ->
        match s with
        | Down { not_before } when not_before <= now -> spawn_slot t i
        | _ -> ())
      t.slots;
    (* 2. all slots broken: nothing will ever answer — drain inline *)
    if Array.for_all (function Broken -> true | _ -> false) t.slots then begin
      let rest = !waiting in
      waiting := [];
      List.iter run_inline rest
    end
    else begin
      (* 3. dispatch to idle workers, one task in flight per worker *)
      Array.iteri
        (fun i s ->
          match s with
          | Idle proc -> (
              match take_ready now with
              | None -> ()
              | Some p -> (
                  let payload = Marshal.to_string (p.p_ix, Task.encode p.p_task) [] in
                  match Frame.write proc.to_worker ~kind:'T' payload with
                  | sent ->
                      bump_sent sent;
                      st.Executor_stats.tasks_dispatched <-
                        st.Executor_stats.tasks_dispatched + 1;
                      t.slots.(i) <- Busy { proc; task = p; started = now }
                  | exception _ ->
                      (* died before dispatch: not the task's fault *)
                      waiting := p :: !waiting;
                      lose now i))
          | _ -> ())
        t.slots;
      (* 4. wait for traffic, bounded by the nearest deadline/backoff *)
      let horizon = ref 0.5 in
      let consider at = if at > now then horizon := min !horizon (at -. now) in
      Array.iter
        (function
          | Busy { started; proc; _ } ->
              consider (started +. t.cfg.task_deadline_s);
              consider (proc.last_heartbeat +. t.cfg.heartbeat_grace_s)
          | Idle proc -> consider (proc.last_heartbeat +. t.cfg.heartbeat_grace_s)
          | Down { not_before } -> consider not_before
          | Broken -> ())
        t.slots;
      List.iter (fun p -> consider p.p_not_before) !waiting;
      let fds =
        Array.to_list t.slots
        |> List.filter_map (function
             | Idle proc | Busy { proc; _ } -> Some proc.from_worker
             | _ -> None)
      in
      let ready =
        if fds = [] then []
        else
          match Unix.select fds [] [] (max 0.01 !horizon) with
          | r, _, _ -> r
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
      in
      (* 5. drain one frame per ready descriptor *)
      List.iter
        (fun fd ->
          let slot_of_fd =
            Array.to_list t.slots
            |> List.mapi (fun i s -> (i, s))
            |> List.find_opt (fun (_, s) ->
                   match s with
                   | Idle proc | Busy { proc; _ } -> proc.from_worker = fd
                   | _ -> false)
          in
          match slot_of_fd with
          | None -> ()  (* slot already transitioned this round *)
          | Some (i, s) -> (
              let proc = match s with Idle p | Busy { proc = p; _ } -> p | _ -> assert false in
              let now = Unix.gettimeofday () in
              match Frame.read fd with
              | Ok ('H', payload) ->
                  bump_received (String.length payload);
                  st.Executor_stats.heartbeats <- st.Executor_stats.heartbeats + 1;
                  proc.last_heartbeat <- now
              | Ok ('R', payload) -> (
                  bump_received (String.length payload);
                  proc.last_heartbeat <- now;
                  match (Marshal.from_string payload 0 : int * string) with
                  | ix, bytes ->
                      st.Executor_stats.tasks_completed <-
                        st.Executor_stats.tasks_completed + 1;
                      fill ix (Ok bytes);
                      t.slots.(i) <- Idle proc
                  | exception _ ->
                      st.Executor_stats.corrupt_frames <-
                        st.Executor_stats.corrupt_frames + 1;
                      lose now i)
              | Ok ('E', payload) -> (
                  bump_received (String.length payload);
                  proc.last_heartbeat <- now;
                  match (Marshal.from_string payload 0 : int * string) with
                  | ix, msg ->
                      (* the task itself raised: deterministic, so a
                         retry would fail identically — report it *)
                      st.Executor_stats.tasks_failed <-
                        st.Executor_stats.tasks_failed + 1;
                      fill ix (Error { Pool.f_exn = Pool.Task_failed msg; f_backtrace = "" });
                      t.slots.(i) <- Idle proc
                  | exception _ ->
                      st.Executor_stats.corrupt_frames <-
                        st.Executor_stats.corrupt_frames + 1;
                      lose now i)
              | Ok (_, _) ->
                  st.Executor_stats.corrupt_frames <- st.Executor_stats.corrupt_frames + 1;
                  lose now i
              | Error Frame.Eof -> lose now i
              | Error (Frame.Corrupt _) ->
                  st.Executor_stats.corrupt_frames <- st.Executor_stats.corrupt_frames + 1;
                  lose now i))
        ready;
      (* 6. deadlines and heartbeat grace *)
      let now = Unix.gettimeofday () in
      Array.iteri
        (fun i s ->
          match s with
          | Busy { started; _ } when now -. started > t.cfg.task_deadline_s ->
              st.Executor_stats.deadline_expiries <-
                st.Executor_stats.deadline_expiries + 1;
              lose now i
          | (Idle proc | Busy { proc; _ })
            when now -. proc.last_heartbeat > t.cfg.heartbeat_grace_s ->
              st.Executor_stats.heartbeat_expiries <-
                st.Executor_stats.heartbeat_expiries + 1;
              lose now i
          | _ -> ())
        t.slots
    end
  done;
  Array.to_list results
  |> List.map (function Some r -> r | None -> assert false)

let shutdown t =
  if not t.stopped then begin
    t.stopped <- true;
    let live =
      Array.to_list t.slots
      |> List.filter_map (function Idle proc | Busy { proc; _ } -> Some proc | _ -> None)
    in
    (* polite quit first; anything that ignores it (hung tasks) is
       killed by [reap] below *)
    List.iter
      (fun proc -> try ignore (Frame.write proc.to_worker ~kind:'Q' "") with _ -> ())
      live;
    let deadline = Unix.gettimeofday () +. 0.5 in
    let rec settle procs =
      if procs <> [] && Unix.gettimeofday () < deadline then begin
        let still =
          List.filter
            (fun proc ->
              match Unix.waitpid [ Unix.WNOHANG ] proc.pid with
              | 0, _ -> true
              | _ -> (try Unix.close proc.to_worker with _ -> ());
                     (try Unix.close proc.from_worker with _ -> ());
                     false
              | exception _ -> false)
            procs
        in
        if still <> [] then Unix.sleepf 0.02;
        settle still
      end
      else List.iter reap procs
    in
    settle live;
    Array.iteri (fun i _ -> t.slots.(i) <- Broken) t.slots
  end

let executor t =
  {
    Pool.ex_mode = "remote";
    ex_parallelism = t.cfg.workers;
    ex_run = (fun tasks -> run_tasks t tasks);
    ex_stats = (fun () -> t.stats);
  }

let with_executor ~config ~run f =
  let t = create ~config ~run () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f (executor t))
