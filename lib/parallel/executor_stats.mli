(** Observability counters for a task executor run.

    The remote executor fills every field from its supervision loop;
    the in-process executors only count dispatch/completion/failure.
    Counters are cumulative over the executor's lifetime, so a surface
    that runs several sweeps on one executor reads totals. *)

type t = {
  mode : string;  (** ["inline"], ["domains"] or ["remote"] *)
  workers : int;  (** configured process-worker count (0 in-process) *)
  mutable tasks_dispatched : int;
  mutable tasks_completed : int;
  mutable tasks_retried : int;  (** re-dispatched after a worker loss *)
  mutable tasks_failed : int;  (** the task itself raised — never retried *)
  mutable tasks_inline : int;  (** relocated to the supervisor (retry cap / no workers) *)
  mutable workers_spawned : int;
  mutable workers_lost : int;  (** EOF, corrupt frame, deadline or heartbeat expiry *)
  mutable workers_respawned : int;
  mutable respawns_suppressed : int;  (** crash-loop breaker trips *)
  mutable deadline_expiries : int;
  mutable heartbeat_expiries : int;
  mutable corrupt_frames : int;  (** checksum mismatch or truncated frame *)
  mutable heartbeats : int;
  mutable frames_sent : int;
  mutable frames_received : int;
  mutable bytes_framed : int;  (** wire bytes, both directions, headers included *)
}

val create : mode:string -> workers:int -> t
val fields : t -> (string * int) list
(** The counters in declaration order, for JSON rendering by callers. *)

val pp : Format.formatter -> t -> unit
(** Mode, worker count, and every nonzero counter. *)
