(** Length-prefixed, checksummed, versioned frames over raw file
    descriptors — the wire format between the remote executor's
    supervisor and its worker processes (stdio pipes today, reusable
    over a socket). See docs/PARALLEL.md for the layout. *)

val version : int
(** Wire protocol version, byte 4 of every frame. A reader rejects any
    other version as [Corrupt] — the executor respawns rather than
    guesses. *)

val header_size : int

type error =
  | Eof  (** zero bytes at a frame boundary: the peer exited cleanly *)
  | Corrupt of string
      (** unknown version, implausible length, truncated header/payload,
          checksum mismatch, or a megabyte of stream with no frame
          magic: the stream can no longer be trusted *)

val error_to_string : error -> string

val checksum : string -> int
(** FNV-1a (32-bit) of the payload. *)

val encode : kind:char -> string -> Bytes.t
(** A complete frame as bytes — exposed so chaos plans can corrupt or
    truncate it before writing. *)

val write_bytes : Unix.file_descr -> Bytes.t -> int
(** Write fully (EINTR-safe); returns the byte count. *)

val write : Unix.file_descr -> kind:char -> string -> int
(** [encode] + [write_bytes]. *)

val read : Unix.file_descr -> (char * string, error) result
(** Read exactly one frame. Unbuffered, so callers may [Unix.select]
    on the descriptor between frames. Stray bytes {e between} frames are
    skipped by scanning to the next magic — a self-exec'd worker binary
    may print at module init before the worker loop takes over its
    descriptors — but damage {e inside} a frame is still [Corrupt]. *)
