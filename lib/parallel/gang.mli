(** A fork-join gang for fine-grained rounds: persistent worker domains
    that repeatedly execute one small batch of indexed thunks and
    barrier.

    Built for the sharded simulation engine, whose event windows are
    microseconds of work issued hundreds of thousands of times per run
    — per-round cost is two atomic stores and a generation-counter
    bump, against {!Pool}'s per-task mutexes and clock reads. Use
    {!Pool} for coarse tasks (whole simulation runs); use this for the
    barriers inside one.

    Placement is static: thunk index [i] always runs on slot
    [i mod jobs], so a simulation shard's working set stays in one
    domain's cache across the run instead of migrating wherever a
    work-stealing race sent it. Thunks of one round run concurrently,
    so they must touch disjoint state (the engine's shards do). The
    submitting domain participates as slot 0: [jobs = j] executes on j
    domains using j - 1 spawned workers. *)

type t

val create : ?jobs:int -> unit -> t
(** Spawn a gang of [jobs] executing slots (default
    {!Pool.default_jobs}); [jobs = 1] runs every round inline. *)

val jobs : t -> int

val run : t -> (int * (unit -> unit)) list -> unit
(** Execute one round of [(index, thunk)] work and wait for every thunk
    to finish. Thunks sharing a slot run in list order. If any thunk
    raised, re-raises the first captured failure after the round
    completes. Rounds do not nest: [run] must not be called from inside
    a thunk, and only one domain may submit. *)

val shutdown : t -> unit
(** Stop and join the workers. Idempotent. *)

val with_gang : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run [f], [shutdown] (also on exception). *)
