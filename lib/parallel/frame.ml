(* Length-prefixed, checksummed frames over raw file descriptors — the
   wire format between the remote-executor supervisor and its worker
   processes. The format is transport-agnostic (today both ends of a
   stdio pipe, later a socket):

     offset  size  field
     0       4     magic "CVRF"
     4       1     protocol version (1)
     5       1     frame kind (one byte, protocol-defined)
     6       4     payload length, little-endian
     10      4     FNV-1a checksum of the payload, little-endian
     14      n     payload

   Reads distinguish a clean [Eof] (zero bytes at a frame boundary)
   from [Corrupt] (bad magic, unknown version, oversized length,
   truncated header/payload, checksum mismatch): the supervisor treats
   the first as a worker exit and the second as a compromised stream —
   in both cases the worker is lost, but the stats differ.

   All I/O is unbuffered [Unix.read]/[Unix.write] loops, so the
   supervisor can [Unix.select] on the descriptors without fighting a
   channel's readahead buffer. *)

let magic = "CVRF"
let version = 1
let header_size = 14

(* Frames carry marshaled task descriptions and rows — small — so a
   length beyond this is stream corruption, not a real payload. *)
let max_payload = 1 lsl 28

type error = Eof | Corrupt of string

let error_to_string = function
  | Eof -> "eof"
  | Corrupt msg -> Printf.sprintf "corrupt frame: %s" msg

(* FNV-1a, 32-bit. Cheap, stateless, and plenty to catch the truncated
   or bit-flipped frames the chaos plans inject. *)
let checksum s =
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xffffffff) s;
  !h

let set_le32 b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xff))

let get_le32 b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let encode ~kind payload =
  let len = String.length payload in
  if len > max_payload then invalid_arg "Parallel.Frame.encode: payload too large";
  let b = Bytes.create (header_size + len) in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set b 4 (Char.chr version);
  Bytes.set b 5 kind;
  set_le32 b 6 len;
  set_le32 b 10 (checksum payload);
  Bytes.blit_string payload 0 b header_size len;
  b

let rec write_all fd b off len =
  if len > 0 then begin
    let n = try Unix.write fd b off len with Unix.Unix_error (Unix.EINTR, _, _) -> 0 in
    write_all fd b (off + n) (len - n)
  end

let write_bytes fd b =
  write_all fd b 0 (Bytes.length b);
  Bytes.length b

let write fd ~kind payload = write_bytes fd (encode ~kind payload)

(* [read_exact fd buf off len] fills [buf.[off..off+len)] or reports how
   many bytes arrived before EOF. *)
let read_exact fd buf off len =
  let got = ref 0 in
  let eof = ref false in
  while !got < len && not !eof do
    match Unix.read fd buf (off + !got) (len - !got) with
    | 0 -> eof := true
    | n -> got := !got + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  !got

(* Workers are self-exec'd copies of arbitrary binaries, and a linked
   library may print to stdout at module init — BEFORE the worker loop
   can redirect the descriptor (the qcheck runner's seed banner does
   exactly this in the test binary). Those stray bytes land ahead of the
   first frame, so a read positioned between frames scans forward to the
   next magic instead of declaring the stream corrupt. Anything past
   [max_sync_skip] without a magic — or inside a frame (bad checksum,
   truncation) — is still [Corrupt]: resync only forgives inter-frame
   noise, not damage to a frame itself. *)
let max_sync_skip = 1 lsl 20

(* Returns [Ok ()] with [buf.[0..3]] = magic, having skipped any stray
   leading bytes. [Error Eof] only when the stream ends cleanly with no
   bytes skipped. *)
let sync_to_magic fd buf =
  match read_exact fd buf 0 4 with
  | 0 -> Error Eof
  | n when n < 4 -> Error (Corrupt (Printf.sprintf "truncated header (%d bytes)" n))
  | _ ->
      let skipped = ref 0 in
      let one = Bytes.create 1 in
      let rec scan () =
        if Bytes.sub_string buf 0 4 = magic then Ok ()
        else if !skipped > max_sync_skip then Error (Corrupt "no frame magic in stream")
        else
          match read_exact fd one 0 1 with
          | 0 ->
              Error
                (Corrupt (Printf.sprintf "stream ended %d bytes past last frame" (!skipped + 4)))
          | _ ->
              incr skipped;
              Bytes.blit buf 1 buf 0 3;
              Bytes.set buf 3 (Bytes.get one 0);
              scan ()
      in
      scan ()

let read fd =
  let header = Bytes.create header_size in
  match sync_to_magic fd header with
  | Error e -> Error e
  | Ok () ->
      (match read_exact fd header 4 (header_size - 4) with
      | n when n < header_size - 4 ->
          Error (Corrupt (Printf.sprintf "truncated header (%d bytes)" (4 + n)))
      | _ ->
      if Char.code (Bytes.get header 4) <> version then
        Error
          (Corrupt (Printf.sprintf "version %d (speaking %d)" (Char.code (Bytes.get header 4)) version))
      else begin
        let len = get_le32 header 6 in
        let expected = get_le32 header 10 in
        if len < 0 || len > max_payload then
          Error (Corrupt (Printf.sprintf "implausible length %d" len))
        else begin
          let payload = Bytes.create len in
          let got = read_exact fd payload 0 len in
          if got < len then
            Error (Corrupt (Printf.sprintf "truncated payload (%d of %d bytes)" got len))
          else
            let payload = Bytes.unsafe_to_string payload in
            if checksum payload <> expected then Error (Corrupt "checksum mismatch")
            else Ok (Bytes.get header 5, payload)
        end
      end)
