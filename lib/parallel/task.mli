(** Self-contained, serializable task descriptions: the vocabulary a
    remote (or in-process) executor dispatches. Constructors carry only
    basic data — the worker rebuilds app, cluster and RNGs itself, per
    the pool's task contract. Interpretation lives above this library
    ({!Core.Tasks} for the row-builders; binaries linking the
    equivalence harness extend it for [Equiv_combo]). *)

(** [sim_jobs] on the simulation-running constructors is the intra-run
    parallelism knob ([Config.sim_jobs]): results are byte-identical
    for every value, so it changes only how fast a worker turns the
    task around. Fault sweeps omit it — their faulted runs use the
    transport (ineligible for sharding), and sharding only the
    reliable baseline would compare two differently-scheduled runs. *)
type t =
  | Probe of { reply : string; spin_ms : int; sleep_ms : int }
      (** test vocabulary: optionally burn/sleep, then echo [reply] *)
  | Table1_row of {
      scale : string;
      nprocs : int;
      app : string;
      backend : string;
      sim_jobs : int option;
    }
  | Table2_row of { scale : string; app : string }
  | Table3_row of {
      scale : string;
      nprocs : int;
      app : string;
      backend : string;
      sim_jobs : int option;
    }
  | Figure3_row of {
      scale : string;
      nprocs : int;
      app : string;
      backend : string;
      sim_jobs : int option;
    }
  | Figure4_point of {
      scale : string;
      nprocs : int;
      app : string;
      backend : string;
      sim_jobs : int option;
    }
  | Figure5 of { protocol : string; sim_jobs : int option }
  | Protocol_row of {
      scale : string;
      nprocs : int;
      app : string;
      protocol : string;
      sim_jobs : int option;
    }
  | Fault_app_sweep of { scale : string; nprocs : int; drops : float list; app : string }
  | Ablation_row of { scale : string; nprocs : int; app : string; sim_jobs : int option }
  | Retention_row of { scale : string; nprocs : int; app : string; sim_jobs : int option }
  | Bench_point of {
      scale : string;
      nprocs : int;
      detect : bool;
      elide : bool;
      app : string;
      backend : string;
      sim_jobs : int option;
    }
  | Equiv_combo of { label : string }

val codec_version : int

exception Corrupt of string

val label : t -> string
(** Short human-readable identity, used in diagnostics, deadline
    errors and chaos poison matching. *)

val encode : t -> string
val decode : string -> t
(** Raises {!Corrupt} on undecodable bytes or a version mismatch. *)
