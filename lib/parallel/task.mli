(** Self-contained, serializable task descriptions: the vocabulary a
    remote (or in-process) executor dispatches. Constructors carry only
    basic data — the worker rebuilds app, cluster and RNGs itself, per
    the pool's task contract. Interpretation lives above this library
    ({!Core.Tasks} for the row-builders; binaries linking the
    equivalence harness extend it for [Equiv_combo]). *)

type t =
  | Probe of { reply : string; spin_ms : int; sleep_ms : int }
      (** test vocabulary: optionally burn/sleep, then echo [reply] *)
  | Table1_row of { scale : string; nprocs : int; app : string; backend : string }
  | Table2_row of { scale : string; app : string }
  | Table3_row of { scale : string; nprocs : int; app : string; backend : string }
  | Figure3_row of { scale : string; nprocs : int; app : string; backend : string }
  | Figure4_point of { scale : string; nprocs : int; app : string; backend : string }
  | Figure5 of { protocol : string }
  | Protocol_row of { scale : string; nprocs : int; app : string; protocol : string }
  | Fault_app_sweep of { scale : string; nprocs : int; drops : float list; app : string }
  | Ablation_row of { scale : string; nprocs : int; app : string }
  | Retention_row of { scale : string; nprocs : int; app : string }
  | Bench_point of {
      scale : string;
      nprocs : int;
      detect : bool;
      elide : bool;
      app : string;
      backend : string;
    }
  | Equiv_combo of { label : string }

val codec_version : int

exception Corrupt of string

val label : t -> string
(** Short human-readable identity, used in diagnostics, deadline
    errors and chaos poison matching. *)

val encode : t -> string
val decode : string -> t
(** Raises {!Corrupt} on undecodable bytes or a version mismatch. *)
