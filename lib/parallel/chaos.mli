(** Seeded, deterministic failure plans for the remote executor,
    mirroring {!Sim.Fault}'s plan style at the orchestration layer.
    A plan travels to each worker process in an environment variable
    and is evaluated worker-side, so the supervisor's detection and
    recovery machinery is driven by real failures: real pipe EOFs,
    real deadline expiries, real checksum mismatches.

    Deterministic triggers are keyed by (worker slot, spawn generation,
    per-incarnation task ordinal, 1-based); probabilistic triggers hash
    (seed, slot, generation, ordinal). Either way, a plan plus a
    dispatch history fully determines every failure — which is what
    lets the chaos determinism proof assert byte-identical output. *)

type plan = {
  seed : int;
  kill_after : int option;
      (** generation-0 workers die instead of answering their K-th task *)
  hang : (int * int * int) option;
      (** (slot, gen, task): sleep forever, heartbeats continue *)
  mute : (int * int * int) option;
      (** (slot, gen, task): sleep forever, heartbeats stop *)
  corrupt : (int * int * int) option;  (** flip a byte in that result frame *)
  truncate : (int * int * int) option;  (** write half that frame, then exit *)
  spawn_crash : (int * int) option;  (** (slot, gen): exit at startup *)
  crash_loop : int option;  (** slot exits at startup on every spawn *)
  poison : string option;
      (** die instead of answering any task with this label, every
          generation — drives the retry cap into the inline fallback *)
  p_kill : float;
  p_hang : float;
  p_corrupt : float;
}

val none : plan
val active : plan -> bool

val to_spec : plan -> string
val parse : string -> (plan, string) result
(** Round-trip of the compact [key=value,...] spec syntax used by
    [--chaos] flags and the [CVM_REMOTE_CHAOS] environment variable;
    see the implementation header for the grammar. [parse ""] is
    {!none}. *)

type action =
  | Run
  | Die
  | Hang of { mute : bool }
  | Corrupt_result
  | Truncate_result

val spawn_crashes : plan -> slot:int -> gen:int -> bool

val decide : plan -> slot:int -> gen:int -> nth:int -> label:string -> action
(** What this worker incarnation does with its [nth] (1-based) task.
    Deterministic triggers win over probabilistic ones. *)
