(* A fork-join gang for fine-grained rounds: a fixed set of worker
   domains that repeatedly execute one small batch of indexed thunks
   and barrier. This is what the sharded simulation engine needs — its
   windows are microseconds of work, re-issued tens of thousands of
   times per run — and what {!Pool} is deliberately not: the pool pays
   two fresh mutexes, a [gettimeofday] and a condvar handoff per task,
   the right trade for second-long simulation runs and a disastrous one
   for event-window batches.

   Three design points matter at this granularity:

   - Static placement. Thunk index [i] always runs on slot [i mod jobs]
     — no work stealing. The indices are engine shard numbers, so each
     shard's working set (page tables, vector clocks, event queue)
     stays in one domain's cache across the whole run instead of
     migrating wherever a claim race sent it.

   - Generation-counter publication. A round is published by bumping an
     atomic counter; completion is one atomic decrement per active slot
     per round, with condvars only on the slow paths.

   - Adaptive waiting. With a core per domain, waiters spin — the next
     window is usually microseconds away and a futex round-trip would
     dominate it. Oversubscribed (fewer cores than slots, the CI /
     laptop case), spinning is worse than useless: a spinner burns the
     timeslice of whichever domain holds the work, so every waiter
     blocks immediately and rounds become plain condvar handoffs. *)

type t = {
  jobs : int;  (* executing slots, including the submitter *)
  spin : int;  (* cpu_relax budget before blocking; 0 when oversubscribed *)
  buckets : (unit -> unit) list array;  (* per-slot work, published before [round] *)
  round : int Atomic.t;  (* generation counter; a bump publishes [buckets] *)
  left : int Atomic.t;  (* active (non-empty) slots not yet finished this round *)
  failure : (exn * Printexc.raw_backtrace) option Atomic.t;  (* first write wins *)
  stop : bool Atomic.t;
  lock : Mutex.t;  (* guards [sleepers], [submitter_waiting], both condvars *)
  wake : Condition.t;  (* workers: a new round (or stop) was published *)
  idle : Condition.t;  (* submitter: the last active slot finished *)
  mutable sleepers : int;  (* workers blocked on [wake] *)
  mutable submitter_waiting : bool;  (* submitter blocked on [idle] *)
  mutable workers : unit Domain.t array;
}

let default_spin = 20_000

let run_slot t slot =
  match t.buckets.(slot) with
  | [] -> ()  (* not counted in [left] *)
  | fs ->
      List.iter
        (fun f ->
          try f ()
          with e ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set t.failure None (Some (e, bt))))
        fs;
      if Atomic.fetch_and_add t.left (-1) = 1 then begin
        (* Last active slot: wake the submitter if it stopped spinning.
           The lock orders this against the submitter's waiting-flag
           store, so the signal cannot fall between its check and its
           wait. *)
        Mutex.lock t.lock;
        if t.submitter_waiting then Condition.signal t.idle;
        Mutex.unlock t.lock
      end

let rec worker t slot seen =
  let rec await spins =
    if Atomic.get t.stop then false
    else if Atomic.get t.round <> seen then true
    else if spins > 0 then begin
      Domain.cpu_relax ();
      await (spins - 1)
    end
    else begin
      Mutex.lock t.lock;
      while Atomic.get t.round = seen && not (Atomic.get t.stop) do
        t.sleepers <- t.sleepers + 1;
        Condition.wait t.wake t.lock;
        t.sleepers <- t.sleepers - 1
      done;
      Mutex.unlock t.lock;
      not (Atomic.get t.stop)
    end
  in
  if await t.spin then begin
    let r = Atomic.get t.round in
    run_slot t slot;
    worker t slot r
  end

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  if jobs < 1 then invalid_arg "Parallel.Gang.create: jobs must be >= 1";
  let spin = if Domain.recommended_domain_count () >= jobs then default_spin else 0 in
  let t =
    {
      jobs;
      spin;
      buckets = Array.make jobs [];
      round = Atomic.make 0;
      left = Atomic.make 0;
      failure = Atomic.make None;
      stop = Atomic.make false;
      lock = Mutex.create ();
      wake = Condition.create ();
      idle = Condition.create ();
      sleepers = 0;
      submitter_waiting = false;
      workers = [||];
    }
  in
  if jobs > 1 then
    t.workers <-
      Array.init (jobs - 1) (fun wi -> Domain.spawn (fun () -> worker t (wi + 1) 0));
  t

let jobs t = t.jobs

let reraise t =
  match Atomic.exchange t.failure None with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let run t thunks =
  match thunks with
  | [] -> ()
  | [ (_, f) ] -> f ()  (* nothing to fan out; keep exceptions synchronous *)
  | _ when t.jobs = 1 -> List.iter (fun (_, f) -> f ()) thunks
  | _ ->
      (* Partition by slot, preserving index order within a slot. *)
      Array.fill t.buckets 0 t.jobs [];
      List.iter
        (fun (i, f) ->
          let slot = ((i mod t.jobs) + t.jobs) mod t.jobs in
          t.buckets.(slot) <- f :: t.buckets.(slot))
        (List.rev thunks);
      let active = ref 0 in
      Array.iter (fun b -> if b <> [] then incr active) t.buckets;
      Atomic.set t.left !active;
      (* publish: the bump is the release fence for [buckets] *)
      Atomic.incr t.round;
      Mutex.lock t.lock;
      if t.sleepers > 0 then Condition.broadcast t.wake;
      Mutex.unlock t.lock;
      run_slot t 0;
      let rec wait spins =
        if Atomic.get t.left > 0 then
          if spins > 0 then begin
            Domain.cpu_relax ();
            wait (spins - 1)
          end
          else begin
            Mutex.lock t.lock;
            t.submitter_waiting <- true;
            while Atomic.get t.left > 0 do
              Condition.wait t.idle t.lock
            done;
            t.submitter_waiting <- false;
            Mutex.unlock t.lock
          end
      in
      wait t.spin;
      Array.fill t.buckets 0 t.jobs [];
      reraise t

let shutdown t =
  Atomic.set t.stop true;
  Mutex.lock t.lock;
  Condition.broadcast t.wake;
  Mutex.unlock t.lock;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

let with_gang ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
