(** Fixed-size Domains work pool for embarrassingly parallel simulation
    sweeps.

    Every task is expected to be a self-contained simulation run: it
    builds its own cluster, engine, stats and RNGs, touches only
    read-only shared state (see docs/PARALLEL.md for the audit), and
    returns a value instead of printing. Under that contract the pool
    guarantees:

    - {b submission-order results}: [map]/[run] return results in the
      order tasks were submitted, regardless of completion order, so a
      parallel sweep renders byte-identically to a sequential one;
    - {b crash isolation}: a raising task becomes an [Error] result
      carrying the exception and its backtrace — it never kills a
      worker or the pool, and the remaining tasks still run;
    - {b sequential fidelity}: a pool created with [jobs = 1] spawns no
      domains at all and runs each task inline on the calling domain at
      submission, making [~jobs:1] executions indistinguishable from
      code that never heard of the pool. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], floored at 1 — the default
    worker count everywhere a [--jobs] flag is offered. *)

val create : ?jobs:int -> unit -> t
(** Spawn a pool of [jobs] worker domains (default {!default_jobs}).
    [jobs = 1] is the inline pool: no domains are spawned.
    Raises [Invalid_argument] if [jobs < 1]. *)

val jobs : t -> int

val shutdown : t -> unit
(** Stop accepting tasks, run any still-queued tasks on the calling
    domain, and join every worker. Idempotent. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], apply, [shutdown] (also on exception). *)

type failure = {
  f_exn : exn;  (** the exception the task raised *)
  f_backtrace : string;  (** its raw backtrace, captured in the worker *)
}

val run :
  ?progress:(int -> unit) -> t -> (unit -> 'a) list -> ('a, failure) result list
(** Submit every thunk, wait for them all, and return their results in
    submission order. [progress i] is called on the {e calling} domain
    once task [i] and every earlier task have finished — in index
    order — so callers can stream deterministic per-task output.
    Raises [Invalid_argument] after [shutdown]. *)

val map : ?progress:(int -> unit) -> t -> ('a -> 'b) -> 'a list -> ('b, failure) result list

val map_exn : t -> ('a -> 'b) -> 'a list -> 'b list
(** Like {!map} but re-raises the first (in submission order) failing
    task's exception, after all tasks have finished — matching what a
    plain [List.map] would have raised sequentially. *)
