(** Fixed-size Domains work pool for embarrassingly parallel simulation
    sweeps.

    Every task is expected to be a self-contained simulation run: it
    builds its own cluster, engine, stats and RNGs, touches only
    read-only shared state (see docs/PARALLEL.md for the audit), and
    returns a value instead of printing. Under that contract the pool
    guarantees:

    - {b submission-order results}: [map]/[run] return results in the
      order tasks were submitted, regardless of completion order, so a
      parallel sweep renders byte-identically to a sequential one;
    - {b crash isolation}: a raising task becomes an [Error] result
      carrying the exception and its backtrace — it never kills a
      worker or the pool, and the remaining tasks still run;
    - {b sequential fidelity}: a pool created with [jobs = 1] spawns no
      domains at all and runs each task inline on the calling domain at
      submission, making [~jobs:1] executions indistinguishable from
      code that never heard of the pool;
    - {b bounded waiting} (opt-in): with [?deadline_s], awaiting a task
      that runs past the wall-clock deadline returns a structured
      {!Deadline_exceeded} failure instead of blocking forever, and
      {!shutdown} declines to join a worker still stuck past the
      deadline (that one domain leaks; the process does not wedge).
      Tasks themselves are never interrupted — OCaml cannot cancel a
      domain — so with [jobs = 1] (inline execution) a deadline is only
      observable after the task returns. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], floored at 1 — the default
    worker count everywhere a [--jobs] flag is offered. *)

val create : ?jobs:int -> ?deadline_s:float -> unit -> t
(** Spawn a pool of [jobs] worker domains (default {!default_jobs}).
    [jobs = 1] is the inline pool: no domains are spawned.
    [deadline_s] bounds each task's wall-clock time as observed by
    {!await}. Raises [Invalid_argument] if [jobs < 1] or
    [deadline_s <= 0]. *)

val jobs : t -> int

val shutdown : t -> unit
(** Stop accepting tasks, run any still-queued tasks on the calling
    domain, and join every worker — except workers stuck on a task past
    the pool deadline, which are abandoned. Idempotent. *)

val with_pool : ?jobs:int -> ?deadline_s:float -> (t -> 'a) -> 'a
(** [create], apply, [shutdown] (also on exception). *)

type failure = {
  f_exn : exn;  (** the exception the task raised *)
  f_backtrace : string;  (** its raw backtrace, captured in the worker *)
}

exception Deadline_exceeded of { label : string; elapsed_s : float }
(** The failure a task that outlived the pool deadline resolves to.
    The task itself may still be running — only the wait ends. *)

exception Task_failed of string
(** A task failed in another process, where the original exception
    cannot travel: only its rendering comes back. Raised by remote
    executors inside the {!failure} they report. *)

type 'a cell
(** A pending result, filled by a worker (or by {!await} itself on
    deadline expiry — first writer wins). *)

val submit : ?label:string -> t -> (unit -> 'a) -> 'a cell
(** Enqueue one task ([jobs = 1]: run it now, inline). [label] names
    the task in deadline failures. Raises [Invalid_argument] after
    [shutdown]. *)

val await : 'a cell -> ('a, failure) result
(** Block until the cell fills. With a pool deadline this polls and,
    past the deadline (anchored at task start, or at await entry if the
    task is still queued), fills the cell with {!Deadline_exceeded}. *)

val run :
  ?progress:(int -> unit) -> t -> (unit -> 'a) list -> ('a, failure) result list
(** Submit every thunk, wait for them all, and return their results in
    submission order. [progress i] is called on the {e calling} domain
    once task [i] and every earlier task have finished — in index
    order — so callers can stream deterministic per-task output.
    Raises [Invalid_argument] after [shutdown]. *)

val map : ?progress:(int -> unit) -> t -> ('a -> 'b) -> 'a list -> ('b, failure) result list

val map_exn : t -> ('a -> 'b) -> 'a list -> 'b list
(** Like {!map} but re-raises the first (in submission order) failing
    task's exception, after all tasks have finished — matching what a
    plain [List.map] would have raised sequentially. *)

(** {1 Executors}

    One submission surface over the in-process pool and the remote
    process supervisor ({!Remote}). A surface that can describe its
    work as {!Task.t} values runs them through whichever executor the
    user asked for and decodes the encoded results, which arrive in
    submission order under every executor. *)

type executor = {
  ex_mode : string;  (** ["inline"], ["domains"] or ["remote"] *)
  ex_parallelism : int;
  ex_run : Task.t list -> (string, failure) result list;
      (** run tasks, results in submission order; [Ok] carries the
          interpreter's encoded result bytes *)
  ex_stats : unit -> Executor_stats.t;
}

val task_executor :
  ?deadline_s:float -> jobs:int -> run:(Task.t -> string) -> unit -> executor
(** In-process executor: each [ex_run] call wraps {!with_pool} around
    the task interpreter [run]. Mode is ["inline"] for [jobs <= 1],
    ["domains"] otherwise. *)

val run_tasks_exn : executor -> Task.t list -> string list
(** [ex_run] but re-raising the first failing task's exception. *)
