(* Self-contained task descriptions — the unit of work an executor may
   hand to another process. Every constructor carries only basic data
   (names, counts, flags), never closures or simulation objects, so a
   task can be marshaled to a worker that rebuilds everything itself;
   this is the same "build everything inside the task" contract the
   in-process pool already imposed (docs/PARALLEL.md), made explicit as
   a datatype.

   The vocabulary covers the existing row-builders (tables, figures,
   protocol/fault/ablation sweeps, bench sweep points, equivalence
   combos) plus a [Probe] used by the executor's own test suite. The
   interpreter that turns a task into a result lives above this library
   (Core.Tasks, plus per-binary extensions such as the equivalence
   combos); this module is pure vocabulary and codec.

   Encoded tasks embed [codec_version]: a worker from a different
   protocol era refuses the task rather than misinterpreting it. *)

(* [sim_jobs] on the simulation-running constructors is the intra-run
   parallelism knob (Config.sim_jobs): results are byte-identical for
   every value, so it changes only how fast a worker turns the task
   around. Fault sweeps deliberately omit it — their faulted runs use
   the transport (ineligible for sharding), and sharding only the
   reliable baseline would compare two differently-scheduled runs. *)
type t =
  | Probe of { reply : string; spin_ms : int; sleep_ms : int }
  | Table1_row of {
      scale : string;
      nprocs : int;
      app : string;
      backend : string;
      sim_jobs : int option;
    }
  | Table2_row of { scale : string; app : string }
  | Table3_row of {
      scale : string;
      nprocs : int;
      app : string;
      backend : string;
      sim_jobs : int option;
    }
  | Figure3_row of {
      scale : string;
      nprocs : int;
      app : string;
      backend : string;
      sim_jobs : int option;
    }
  | Figure4_point of {
      scale : string;
      nprocs : int;
      app : string;
      backend : string;
      sim_jobs : int option;
    }
  | Figure5 of { protocol : string; sim_jobs : int option }
  | Protocol_row of {
      scale : string;
      nprocs : int;
      app : string;
      protocol : string;
      sim_jobs : int option;
    }
  | Fault_app_sweep of { scale : string; nprocs : int; drops : float list; app : string }
  | Ablation_row of { scale : string; nprocs : int; app : string; sim_jobs : int option }
  | Retention_row of { scale : string; nprocs : int; app : string; sim_jobs : int option }
  | Bench_point of {
      scale : string;
      nprocs : int;
      detect : bool;
      elide : bool;
      app : string;
      backend : string;
      sim_jobs : int option;
    }
  | Equiv_combo of { label : string }

let codec_version = 3

exception Corrupt of string

(* label suffix for a non-default backend, so progress lines disambiguate *)
let bk = function "lrc" -> "" | backend -> "-" ^ backend

let label = function
  | Probe { reply; _ } -> Printf.sprintf "probe:%s" reply
  | Table1_row { app; nprocs; backend; _ } ->
      Printf.sprintf "table1:%s-p%d%s" app nprocs (bk backend)
  | Table2_row { app; _ } -> Printf.sprintf "table2:%s" app
  | Table3_row { app; nprocs; backend; _ } ->
      Printf.sprintf "table3:%s-p%d%s" app nprocs (bk backend)
  | Figure3_row { app; nprocs; backend; _ } ->
      Printf.sprintf "figure3:%s-p%d%s" app nprocs (bk backend)
  | Figure4_point { app; nprocs; backend; _ } ->
      Printf.sprintf "figure4:%s-p%d%s" app nprocs (bk backend)
  | Figure5 { protocol; _ } -> Printf.sprintf "figure5:%s" protocol
  | Protocol_row { app; nprocs; protocol; _ } ->
      Printf.sprintf "protocol:%s-%s-p%d" app protocol nprocs
  | Fault_app_sweep { app; nprocs; _ } -> Printf.sprintf "faults:%s-p%d" app nprocs
  | Ablation_row { app; nprocs; _ } -> Printf.sprintf "ablation:%s-p%d" app nprocs
  | Retention_row { app; nprocs; _ } -> Printf.sprintf "retention:%s-p%d" app nprocs
  | Bench_point { app; nprocs; detect; elide; backend; _ } ->
      Printf.sprintf "bench:%s-p%d-%s%s" app nprocs
        (if detect && elide then "det+elide" else if detect then "detect" else "no-detect")
        (bk backend)
  | Equiv_combo { label } -> Printf.sprintf "equiv:%s" label

let encode t = Marshal.to_string (codec_version, t) []

let decode s =
  let version, task =
    try (Marshal.from_string s 0 : int * t)
    with _ -> raise (Corrupt "undecodable task payload")
  in
  if version <> codec_version then
    raise (Corrupt (Printf.sprintf "task codec version %d (speaking %d)" version codec_version));
  task
