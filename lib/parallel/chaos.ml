(* Seeded failure plans for the remote executor, mirroring the style of
   [Sim.Fault]: a plan is deterministic data, parsed from a compact
   spec string so the CLI and CI smokes can inject the same failures
   reproducibly. The plan is evaluated entirely on the *worker* side
   (it rides to the worker in an environment variable), so the
   supervisor's detection and recovery paths are exercised for real:
   a killed worker really is an EOF on the pipe, a hung worker really
   does blow its task deadline, a corrupted frame really does fail the
   checksum.

   Deterministic triggers are keyed by (worker slot, spawn generation,
   per-incarnation task ordinal); probabilistic triggers draw from a
   splitmix-style hash of (seed, slot, generation, ordinal), so a plan
   plus a dispatch history fully determines every failure.

   Spec syntax (comma-separated, order-free):

     seed=N             hash seed for the p-* probabilities
     kill-after=K       generation-0 workers die instead of answering
                        their K-th task (so the task is genuinely lost)
     hang=W:G:K         worker W, generation G sleeps forever on its
                        K-th task; heartbeats continue (deadline path)
     mute=W:G:K         like hang, but heartbeats stop too (heartbeat-
                        grace path)
     corrupt=W:G:K      flip a payload byte in the K-th result frame
     truncate=W:G:K     write half of the K-th result frame, then exit
     spawn-crash=W:G    worker W's generation G exits at startup
     crash-loop=W       worker W exits at startup on *every* spawn
                        (drives the crash-loop breaker)
     poison=LABEL       die instead of answering any task whose label
                        is LABEL, every generation (drives the per-task
                        retry cap into the inline fallback)
     p-kill=F p-hang=F p-corrupt=F
                        per-task probabilities of the same failures *)

type plan = {
  seed : int;
  kill_after : int option;
  hang : (int * int * int) option;
  mute : (int * int * int) option;
  corrupt : (int * int * int) option;
  truncate : (int * int * int) option;
  spawn_crash : (int * int) option;
  crash_loop : int option;
  poison : string option;
  p_kill : float;
  p_hang : float;
  p_corrupt : float;
}

let none =
  {
    seed = 0;
    kill_after = None;
    hang = None;
    mute = None;
    corrupt = None;
    truncate = None;
    spawn_crash = None;
    crash_loop = None;
    poison = None;
    p_kill = 0.0;
    p_hang = 0.0;
    p_corrupt = 0.0;
  }

let active p = p <> none && p <> { none with seed = p.seed }

(* ------------------------------------------------------------------ *)
(* Spec string round-trip *)

let to_spec p =
  let parts = ref [] in
  let add fmt = Printf.ksprintf (fun s -> parts := s :: !parts) fmt in
  if p.seed <> 0 then add "seed=%d" p.seed;
  (match p.kill_after with Some k -> add "kill-after=%d" k | None -> ());
  let triple name = function Some (w, g, k) -> add "%s=%d:%d:%d" name w g k | None -> () in
  triple "hang" p.hang;
  triple "mute" p.mute;
  triple "corrupt" p.corrupt;
  triple "truncate" p.truncate;
  (match p.spawn_crash with Some (w, g) -> add "spawn-crash=%d:%d" w g | None -> ());
  (match p.crash_loop with Some w -> add "crash-loop=%d" w | None -> ());
  (match p.poison with Some l -> add "poison=%s" l | None -> ());
  if p.p_kill > 0.0 then add "p-kill=%g" p.p_kill;
  if p.p_hang > 0.0 then add "p-hang=%g" p.p_hang;
  if p.p_corrupt > 0.0 then add "p-corrupt=%g" p.p_corrupt;
  String.concat "," (List.rev !parts)

let parse spec =
  let parse_triple v =
    match String.split_on_char ':' v with
    | [ w; g; k ] -> (
        match (int_of_string_opt w, int_of_string_opt g, int_of_string_opt k) with
        | Some w, Some g, Some k -> Some (w, g, k)
        | _ -> None)
    | _ -> None
  in
  let parse_pair v =
    match String.split_on_char ':' v with
    | [ w; g ] -> (
        match (int_of_string_opt w, int_of_string_opt g) with
        | Some w, Some g -> Some (w, g)
        | _ -> None)
    | _ -> None
  in
  let apply plan kv =
    match String.index_opt kv '=' with
    | None -> Error (Printf.sprintf "chaos: %S is not key=value" kv)
    | Some i -> (
        let key = String.sub kv 0 i in
        let v = String.sub kv (i + 1) (String.length kv - i - 1) in
        let int_v () =
          match int_of_string_opt v with
          | Some n -> Ok n
          | None -> Error (Printf.sprintf "chaos: %s wants an integer, got %S" key v)
        in
        let float_v () =
          match float_of_string_opt v with
          | Some f when f >= 0.0 && f <= 1.0 -> Ok f
          | _ -> Error (Printf.sprintf "chaos: %s wants a probability, got %S" key v)
        in
        let triple_v () =
          match parse_triple v with
          | Some t -> Ok t
          | None -> Error (Printf.sprintf "chaos: %s wants WORKER:GEN:TASK, got %S" key v)
        in
        match key with
        | "seed" -> Result.map (fun n -> { plan with seed = n }) (int_v ())
        | "kill-after" -> Result.map (fun n -> { plan with kill_after = Some n }) (int_v ())
        | "hang" -> Result.map (fun t -> { plan with hang = Some t }) (triple_v ())
        | "mute" -> Result.map (fun t -> { plan with mute = Some t }) (triple_v ())
        | "corrupt" -> Result.map (fun t -> { plan with corrupt = Some t }) (triple_v ())
        | "truncate" -> Result.map (fun t -> { plan with truncate = Some t }) (triple_v ())
        | "spawn-crash" -> (
            match parse_pair v with
            | Some p -> Ok { plan with spawn_crash = Some p }
            | None -> Error (Printf.sprintf "chaos: spawn-crash wants WORKER:GEN, got %S" v))
        | "crash-loop" -> Result.map (fun n -> { plan with crash_loop = Some n }) (int_v ())
        | "poison" -> Ok { plan with poison = Some v }
        | "p-kill" -> Result.map (fun f -> { plan with p_kill = f }) (float_v ())
        | "p-hang" -> Result.map (fun f -> { plan with p_hang = f }) (float_v ())
        | "p-corrupt" -> Result.map (fun f -> { plan with p_corrupt = f }) (float_v ())
        | _ -> Error (Printf.sprintf "chaos: unknown key %S" key))
  in
  let trimmed = String.trim spec in
  if trimmed = "" then Ok none
  else
    List.fold_left
      (fun acc kv -> Result.bind acc (fun plan -> apply plan (String.trim kv)))
      (Ok none)
      (String.split_on_char ',' trimmed)

(* ------------------------------------------------------------------ *)
(* Worker-side decisions *)

(* 32-bit avalanche (lowbias32-style) over (seed, slot, gen, ordinal,
   stream): enough mixing that the three probability draws are
   independent. 32-bit constants keep every product inside OCaml's
   63-bit int. *)
let hash seed slot gen nth stream =
  let mix h =
    let h = h land 0xffffffff in
    let h = (h lxor (h lsr 16)) * 0x7feb352d land 0xffffffff in
    let h = (h lxor (h lsr 15)) * 0x846ca68b land 0xffffffff in
    h lxor (h lsr 16)
  in
  mix
    (seed
    + mix ((slot * 0x9e3779b9) + mix ((gen * 0x85ebca6b) + mix ((nth * 0xc2b2ae35) + mix stream))))

let draw plan ~slot ~gen ~nth ~stream =
  float_of_int (hash plan.seed slot gen nth stream land 0xffffff) /. 16777216.0

type action =
  | Run  (** behave *)
  | Die  (** exit abruptly instead of answering — the task is lost *)
  | Hang of { mute : bool }  (** never answer; [mute] also stops heartbeats *)
  | Corrupt_result  (** flip a payload byte in the result frame *)
  | Truncate_result  (** write half the result frame, then exit *)

let spawn_crashes plan ~slot ~gen =
  plan.crash_loop = Some slot || plan.spawn_crash = Some (slot, gen)

let decide plan ~slot ~gen ~nth ~label =
  let at = Some (slot, gen, nth) in
  if plan.poison = Some label then Die
  else if plan.kill_after = Some nth && gen = 0 then Die
  else if plan.hang = at then Hang { mute = false }
  else if plan.mute = at then Hang { mute = true }
  else if plan.corrupt = at then Corrupt_result
  else if plan.truncate = at then Truncate_result
  else if plan.p_kill > 0.0 && draw plan ~slot ~gen ~nth ~stream:1 < plan.p_kill then Die
  else if plan.p_hang > 0.0 && draw plan ~slot ~gen ~nth ~stream:2 < plan.p_hang then
    Hang { mute = false }
  else if plan.p_corrupt > 0.0 && draw plan ~slot ~gen ~nth ~stream:3 < plan.p_corrupt then
    Corrupt_result
  else Run
