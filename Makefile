# Convenience targets; the source of truth is dune.

.PHONY: all build test check bench faults clean

all: build

build:
	dune build

test:
	dune runtest

# The tier-1 gate: build, tests, the static-analysis report
# (classification, batching, lint) over every application — plus the
# MHP pair analysis diffed against the checked-in expected-warnings
# baseline (test/analyze_expect.txt), so a new static race warning or
# a silently vanished one fails CI — a
# lossy-network smoke test (20% drop must reproduce the clean run's
# races and survive retransmission), record->replay smoke tests
# (a lossy run's trace log and an interval-GC run's trace log must both
# verify cleanly on re-execution, with the identical race set and
# memory checksum), cache-coherent-backend smokes (app runs under
# --backend mesi AND --backend dragon cross-checked against the offline
# oracle, plus record->replay round-trips through both bus trace
# paths), an adversarial-workload smoke (a corpus trace file run
# end-to-end via --trace-file, and a short differential fuzz: seeded
# random programs, detector vs oracle vs by-construction ground truth
# across every backend — the long nightly range lives in CI's fuzz
# job), and the benchmark regression gate: a CI-sized sweep
# whose deterministic outcomes (races, checksums, simulated time, wire
# bytes) must match the checked-in baseline exactly. The wall-clock
# threshold is loose (50%) because the gate runs on heterogeneous
# machines; bench/compare.exe's default 15% is for like-for-like
# comparisons (see docs/BENCH.md). The gate sweep runs at --jobs 1
# because its baseline was recorded sequentially and per-entry
# wall-clock under parallelism includes domain contention — wall is
# only comparable like-for-like. The work pool is gated separately: a
# --jobs 4 sweep is diffed against a --jobs 1 sweep with --ignore-wall,
# proving the fan-out changes nothing observable. Intra-run parallelism
# is gated the same way: a --sim-jobs 2 sweep at p16 (Water and the
# rest) diffed against the same sweep at --sim-jobs 1 with
# --ignore-wall --ignore-sim-jobs — the sharded engine's contract is
# that the domain count is unobservable in every deterministic field,
# and sim_jobs must be erased from the match key for that comparison
# to exist at all. The remote executor
# is gated the same way but under CHAOS: a --workers 2 sweep with a
# seeded plan that kills each gen-0 worker at its 3rd task AND hangs
# one task past a 5 s deadline must still produce a JSON identical
# (minus wall) to the sequential sweep, with the retries/respawns
# visible on stderr; and the 62-combo equivalence matrix regenerated
# through chaos workers must be byte-identical to the checked-in
# golden.
check:
	dune build
	dune runtest
	dune exec bin/cvm_race.exe -- analyze --all
	dune exec bin/cvm_race.exe -- analyze --all --mhp --json _build/analyze.json --expect test/analyze_expect.txt
	dune exec bin/cvm_race.exe -- run sor --scale small -p 4 --drop 0.2 --watchdog 500
	dune exec bin/cvm_race.exe -- run water --scale small -p 4 --elide
	dune exec bin/cvm_race.exe -- record sor --scale small -p 4 --drop 0.2 -o _build/sor.cvmt
	dune exec bin/cvm_race.exe -- replay _build/sor.cvmt
	dune exec bin/cvm_race.exe -- replay --log-only _build/sor.cvmt
	dune exec bin/cvm_race.exe -- record sor --scale small -p 4 --protocol mw --gc-epochs 2 -o _build/sor_gc.cvmt
	dune exec bin/cvm_race.exe -- replay _build/sor_gc.cvmt
	dune exec bin/cvm_race.exe -- run fft --scale small -p 4 --backend mesi --oracle
	dune exec bin/cvm_race.exe -- record sor --scale small -p 4 --backend mesi -o _build/sor_mesi.cvmt
	dune exec bin/cvm_race.exe -- replay _build/sor_mesi.cvmt
	dune exec bin/cvm_race.exe -- run fft --scale small -p 4 --backend dragon --oracle
	dune exec bin/cvm_race.exe -- record sor --scale small -p 4 --backend dragon -o _build/sor_dragon.cvmt
	dune exec bin/cvm_race.exe -- replay _build/sor_dragon.cvmt
	dune exec bin/cvm_race.exe -- run --trace-file test/corpus/mp-unsync.trace --oracle
	dune exec bin/cvm_race.exe -- fuzz --seed 1 --count 15 --json _build/fuzz_smoke.json
	dune exec bench/main.exe -- --small --jobs 1 sweep --json _build/bench_ci.json
	dune exec bench/compare.exe -- bench/baseline_small.json _build/bench_ci.json --threshold 50
	dune exec bench/main.exe -- --small --jobs 1 --procs 4 sweep --json _build/bench_j1.json
	dune exec bench/main.exe -- --small --jobs 4 --procs 4 sweep --json _build/bench_j4.json
	dune exec bench/compare.exe -- _build/bench_j1.json _build/bench_j4.json --ignore-wall
	dune exec bench/main.exe -- --small --jobs 1 --procs 16 --sim-jobs 1 sweep --json _build/bench_sj1.json
	dune exec bench/main.exe -- --small --jobs 1 --procs 16 --sim-jobs 2 sweep --json _build/bench_sj2.json
	dune exec bench/compare.exe -- _build/bench_sj1.json _build/bench_sj2.json --ignore-wall --ignore-sim-jobs
	dune exec bench/main.exe -- --small --workers 2 --procs 4 --chaos "seed=7,kill-after=3,hang=0:1:2" --task-deadline 5 sweep --json _build/bench_w2.json
	dune exec bench/compare.exe -- _build/bench_j1.json _build/bench_w2.json --ignore-wall
	dune exec test/gen_equiv_golden.exe -- --workers 2 --chaos "seed=11,kill-after=5" _build/perf_equiv_w2.json
	cmp test/golden/perf_equiv.json _build/perf_equiv_w2.json

# The full drop-rate sweep over every application (slow; paper scale).
faults:
	dune exec bench/main.exe -- faults

bench:
	dune exec bench/main.exe

clean:
	dune clean
