# Convenience targets; the source of truth is dune.

.PHONY: all build test check bench clean

all: build

build:
	dune build

test:
	dune runtest

# The tier-1 gate: build, tests, and the static-analysis report
# (classification, batching, lint) over every application.
check:
	dune build
	dune runtest
	dune exec bin/cvm_race.exe -- analyze --all

bench:
	dune exec bench/main.exe

clean:
	dune clean
