(* cvm_race — command-line front end.

   Subcommands:
     run     run one application with online race detection and print the
             races, dynamic statistics, and (optionally) the slowdown
     hunt    the full section 6.1 flow: a detection run, then a replayed
             run with a watch list that maps each racy address to the
             source sites that touched it
     record  run with the deterministic trace recorder and save the
             binary event log
     replay  re-execute a recorded run and verify the event streams are
             identical (or pinpoint the first divergence); --log-only
             reconstructs the outcome from the log without re-executing
     trace   inspect a binary log: summary, per-tag statistics, or a
             Chrome trace-event JSON export
     table   regenerate one of the paper's tables/figures (see bench/ for
             the full harness)
     sweep   apps x processor-counts overhead sweep over --jobs domains
     analyze run only the static elimination pass: classification,
             redundant-check batching and lockset lint per application
     litmus  explore memory-model litmus tests under a protocol
     fuzz    differential fuzzing: seeded random programs with
             by-construction ground truth, detector vs oracle across
             every backend, mismatches shrunk to trace-file repros

   `run --trace-file FILE` executes an external per-proc access/sync
   stream (docs/FUZZING.md has the grammar) instead of a named app.
*)

open Cmdliner

let app_arg =
  let doc = "Application to run: fft, sor, tsp or water." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP" ~doc)

let app_or_trace_arg =
  let doc = "Application to run: fft, sor, tsp or water (or use $(b,--trace-file))." in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"APP" ~doc)

let trace_file_arg =
  let doc =
    "Run a workload trace file (per-processor access/sync streams; grammar in \
     docs/FUZZING.md) instead of a named application. The processor count comes from the \
     file's $(b,procs) directive; $(b,--procs) is ignored."
  in
  Arg.(value & opt (some string) None & info [ "trace-file" ] ~docv:"FILE" ~doc)

let procs_arg =
  let doc = "Number of simulated processors." in
  Arg.(value & opt int 8 & info [ "p"; "procs" ] ~docv:"N" ~doc)

let scale_arg =
  let doc =
    "Input scale: 'paper' (evaluation-sized), 'small' (seconds), or 'large' (the benchmark \
     pipeline's enlarged SOR/FFT/Water tier)."
  in
  Arg.(value
      & opt
          (enum
             [
               ("paper", Apps.Registry.Paper);
               ("small", Apps.Registry.Small);
               ("large", Apps.Registry.Large);
             ])
          Apps.Registry.Paper
      & info [ "scale" ] ~docv:"SCALE" ~doc)

let backend_arg =
  let backend_conv =
    let parse name =
      if Backends.known name then Ok name
      else
        Error
          (`Msg
            (Printf.sprintf "unknown backend %S (available: %s)" name
               (String.concat ", " Backends.all)))
    in
    Arg.conv (parse, Format.pp_print_string)
  in
  let doc =
    "Coherence backend: lrc (message-passing DSM), mesi (snooping bus, \
     write-invalidate) or dragon (snooping bus, write-update). $(b,--list-backends) \
     prints the registry."
  in
  Arg.(value & opt backend_conv "lrc" & info [ "backend" ] ~docv:"BACKEND" ~doc)

let protocol_arg =
  let doc = "Coherence protocol: sw (single-writer), mw (multi-writer), hb (home-based), sc." in
  Arg.(value
      & opt (enum
            [ ("sw", Lrc.Config.Single_writer);
              ("mw", Lrc.Config.Multi_writer);
              ("hb", Lrc.Config.Home_based);
              ("sc", Lrc.Config.Seq_consistent);
            ]) Lrc.Config.Single_writer
      & info [ "protocol" ] ~docv:"PROTO" ~doc)

let no_detect_arg =
  let doc = "Disable instrumentation and race detection (baseline CVM)." in
  Arg.(value & flag & info [ "no-detect" ] ~doc)

let first_race_arg =
  let doc = "Report only the first racy barrier epoch (section 6.4)." in
  Arg.(value & flag & info [ "first-race-only" ] ~doc)

let diff_stores_arg =
  let doc =
    "With the multi-writer protocol, derive write bitmaps from diffs instead of store \
     instrumentation (section 6.5)."
  in
  Arg.(value & flag & info [ "stores-from-diffs" ] ~doc)

let gc_epochs_arg =
  let doc =
    "Interval garbage collection: every $(docv) barrier epochs, validate invalid pages \
     and reclaim unreachable diffs. Bounds diff storage on long runs; races and the \
     final memory image are unaffected."
  in
  Arg.(value & opt (some int) None & info [ "gc-epochs" ] ~docv:"K" ~doc)

let slowdown_arg =
  let doc = "Also run the uninstrumented baseline and report the slowdown." in
  Arg.(value & flag & info [ "slowdown" ] ~doc)

let oracle_arg =
  let doc = "Record the full access trace and cross-check against the offline oracle." in
  Arg.(value & flag & info [ "oracle" ] ~doc)

(* Lossy-network flags. Any nonzero fault probability implies the
   reliable transport; [--transport] runs it over a fault-free wire. *)

let drop_arg =
  let doc = "Per-frame wire drop probability (0.0-1.0). Implies the transport." in
  Arg.(value & opt float 0.0 & info [ "drop" ] ~docv:"P" ~doc)

let dup_arg =
  let doc = "Per-frame wire duplication probability (0.0-1.0). Implies the transport." in
  Arg.(value & opt float 0.0 & info [ "dup" ] ~docv:"P" ~doc)

let reorder_arg =
  let doc =
    "Per-frame reorder probability (0.0-1.0): a chosen frame is held back by a random \
     slice of the reorder window. Implies the transport."
  in
  Arg.(value & opt float 0.0 & info [ "reorder" ] ~docv:"P" ~doc)

let partition_arg =
  let doc =
    "One-shot link partition: frames between nodes $(i)A$(i) and $(i)B$(i) (both \
     directions) are dropped while simulated time is in [$(i)T0$(i), $(i)T1$(i)) \
     nanoseconds. Repeatable. Implies the transport."
  in
  Arg.(value & opt_all (t4 int int int int) [] & info [ "partition" ] ~docv:"A,B,T0,T1" ~doc)

let net_seed_arg =
  let doc = "Seed for the network RNG streams (jitter + faults); defaults to the run seed." in
  Arg.(value & opt (some int) None & info [ "net-seed" ] ~docv:"N" ~doc)

let watchdog_arg =
  let doc =
    "Deadlock watchdog: abort with a structured diagnosis if this many simulated \
     milliseconds pass without any process making progress."
  in
  Arg.(value & opt (some float) None & info [ "watchdog" ] ~docv:"MS" ~doc)

let max_retries_arg =
  let doc = "Transport retry cap per frame before a link is declared failed." in
  Arg.(value & opt (some int) None & info [ "max-retries" ] ~docv:"N" ~doc)

let transport_arg =
  let doc = "Run the reliable transport even over a fault-free wire." in
  Arg.(value & flag & info [ "transport" ] ~doc)

let jobs_arg =
  let doc =
    "Number of independent simulation runs to execute in parallel (worker domains). \
     Output is identical whatever $(docv) is; only wall-clock changes."
  in
  Arg.(value & opt int (Parallel.Pool.default_jobs ()) & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let sim_jobs_arg =
  let doc =
    "Intra-run parallelism: shard the simulation itself over $(docv) domains \
     (conservative parallel discrete-event execution). Races, statistics, traces and \
     checksums are byte-identical whatever $(docv) is; only wall-clock changes. Only the \
     lrc backend over a fault-free, jitter-free, transport-less wire parallelizes; other \
     configurations fall back to the sequential engine. Composes with $(b,--jobs): that \
     flag parallelizes across independent runs, this one inside each run."
  in
  Arg.(value & opt (some int) None & info [ "sim-jobs" ] ~docv:"N" ~doc)

let elide_arg =
  let doc =
    "Skip the runtime race check at sites the static MHP analysis proves race-free \
     (instrumentation elision). Race reports are unchanged; only the check cost drops."
  in
  Arg.(value & flag & info [ "elide" ] ~doc)

let workers_arg =
  let doc =
    "Fan the experiment's independent runs over $(docv) separate worker $(i,processes) \
     (the fault-tolerant remote executor) instead of in-process domains. Output is \
     identical to $(b,--jobs 1); executor statistics go to stderr."
  in
  Arg.(value & opt int 0 & info [ "workers" ] ~docv:"N" ~doc)

let chaos_arg =
  let doc =
    "Seeded failure plan injected into the remote executor's workers (testing the \
     degradation ladder; e.g. 'seed=7,kill-after=3'). Grammar in docs/PARALLEL.md."
  in
  Arg.(value & opt string "" & info [ "chaos" ] ~docv:"SPEC" ~doc)

let task_deadline_arg =
  let doc = "Remote executor: per-task wall-clock deadline in seconds." in
  Arg.(value & opt float 600.0 & info [ "task-deadline" ] ~docv:"S" ~doc)

let ppf = Format.std_formatter

let parse_chaos spec =
  match Parallel.Chaos.parse spec with
  | Ok plan -> plan
  | Error msg ->
      Format.eprintf "%s@." msg;
      exit 2

(* Experiment fan-outs run through an executor: in-process (inline or
   domains) by default, worker processes with [--workers N]. Stats go
   to stderr so stdout stays byte-comparable across executors. *)
let with_executor ~jobs ~workers ~chaos ~task_deadline f =
  let run = Core.Tasks.runner () in
  if workers > 0 then begin
    let config =
      {
        (Parallel.Remote.default_config ~workers) with
        Parallel.Remote.task_deadline_s = task_deadline;
        chaos = parse_chaos chaos;
      }
    in
    Parallel.Remote.with_executor ~config ~run (fun ex ->
        let result = f ex in
        Format.eprintf "%a@." Parallel.Executor_stats.pp (ex.Parallel.Pool.ex_stats ());
        result)
  end
  else f (Parallel.Pool.task_executor ~jobs ~run ())

let config ~backend ~protocol ~no_detect ~first_race_only ~stores_from_diffs ~oracle
    ~gc_epochs ~elide ~sim_jobs =
  {
    Lrc.Config.default with
    backend;
    protocol;
    detect = not no_detect;
    first_race_only;
    stores_from_diffs;
    record_trace = oracle;
    gc_epochs;
    elide_sites = (if elide then Some [] else None);
    sim_jobs;
  }

let net_config cfg ~drop ~dup ~reorder ~partitions ~net_seed ~watchdog_ms ~max_retries
    ~transport =
  let fault =
    {
      Sim.Fault.none with
      Sim.Fault.drop;
      duplicate = dup;
      reorder;
      partitions =
        List.map
          (fun (a, b, t0, t1) ->
            { Sim.Fault.p_a = a; p_b = b; p_from_ns = t0; p_until_ns = t1 })
          partitions;
    }
  in
  let transport_cfg =
    if transport || Sim.Fault.active fault then
      let base = Sim.Transport.default_config in
      Some
        (match max_retries with
        | Some n -> { base with Sim.Transport.max_retries = n }
        | None -> base)
    else None
  in
  {
    cfg with
    Lrc.Config.fault;
    transport = transport_cfg;
    net_seed;
    watchdog_ns =
      (match watchdog_ms with Some ms -> Some (int_of_float (ms *. 1e6)) | None -> None);
  }

let print_outcome (outcome : Core.Driver.outcome) =
  Format.fprintf ppf "== %s on %d processors (detect %s) ==@." outcome.Core.Driver.app_name
    outcome.Core.Driver.nprocs
    (if outcome.Core.Driver.detect then "on" else "off");
  Format.fprintf ppf "simulated time: %.3f ms@."
    (float_of_int outcome.Core.Driver.sim_time_ns /. 1e6);
  Core.Report.races ~symtab:outcome.Core.Driver.symtab ppf outcome.Core.Driver.races;
  Format.fprintf ppf "@[<v 2>statistics:@ %a@]@." Sim.Stats.pp outcome.Core.Driver.stats

(* resolve the run target: a registry application, or a trace-file
   workload (which fixes its own processor count) *)
let resolve_workload ~scale ~procs app_name trace_file =
  match (trace_file, app_name) with
  | Some path, _ -> (
      if app_name <> None then begin
        Format.eprintf "cannot give both APP and --trace-file@.";
        exit 2
      end;
      try
        let program = Workload.Trace_file.parse_file path in
        (Workload.Program.to_app program, program.Workload.Program.nprocs)
      with
      | Workload.Trace_file.Parse_error { line; msg } ->
          if line > 0 then Format.eprintf "%s:%d: %s@." path line msg
          else Format.eprintf "%s: %s@." path msg;
          exit 2
      | Sys_error msg ->
          Format.eprintf "%s@." msg;
          exit 2)
  | None, Some name -> (Apps.Registry.make ~scale name, procs)
  | None, None ->
      Format.eprintf "give an APP name or --trace-file FILE@.";
      exit 2

let run_command =
  let run app_name trace_file procs scale backend protocol no_detect first_race_only
      stores_from_diffs gc_epochs elide sim_jobs slowdown oracle drop dup reorder
      partitions net_seed watchdog_ms max_retries transport =
    let app, procs = resolve_workload ~scale ~procs app_name trace_file in
    let cfg =
      config ~backend ~protocol ~no_detect ~first_race_only ~stores_from_diffs ~oracle
        ~gc_epochs ~elide ~sim_jobs
    in
    let cfg =
      net_config cfg ~drop ~dup ~reorder ~partitions ~net_seed ~watchdog_ms ~max_retries
        ~transport
    in
    if Sim.Fault.active cfg.Lrc.Config.fault then
      Format.fprintf ppf "wire faults: %s@." (Sim.Fault.describe cfg.Lrc.Config.fault);
    if slowdown then begin
      let sd = Core.Driver.measure_slowdown ~cfg ~app ~nprocs:procs () in
      print_outcome sd.Core.Driver.instrumented;
      Format.fprintf ppf "baseline: %.3f ms, slowdown factor: %.2f@."
        (float_of_int sd.Core.Driver.base.Core.Driver.sim_time_ns /. 1e6)
        sd.Core.Driver.factor
    end
    else begin
      let outcome = Core.Driver.run ~cfg ~app ~nprocs:procs () in
      print_outcome outcome;
      if oracle then begin
        let expected = Core.Driver.oracle_addrs outcome in
        let detected = Core.Driver.racy_addrs outcome in
        if expected = detected then Format.fprintf ppf "oracle cross-check: agreement@."
        else begin
          Format.fprintf ppf "oracle cross-check: MISMATCH (%d vs %d addresses)@."
            (List.length detected) (List.length expected);
          exit 1
        end
      end
    end
  in
  let run app_name trace_file procs scale backend protocol no_detect first_race_only
      stores_from_diffs gc_epochs elide sim_jobs slowdown oracle drop dup reorder
      partitions net_seed watchdog_ms max_retries transport =
    try
      run app_name trace_file procs scale backend protocol no_detect first_race_only
        stores_from_diffs gc_epochs elide sim_jobs slowdown oracle drop dup reorder
        partitions net_seed watchdog_ms max_retries transport
    with Sim.Engine.Deadlock diagnosis ->
      Format.fprintf ppf "DEADLOCK@.%s@." (Sim.Engine.diagnosis_to_string diagnosis);
      exit 2
  in
  let term =
    Term.(const run $ app_or_trace_arg $ trace_file_arg $ procs_arg $ scale_arg
        $ backend_arg $ protocol_arg $ no_detect_arg $ first_race_arg $ diff_stores_arg
        $ gc_epochs_arg $ elide_arg $ sim_jobs_arg $ slowdown_arg $ oracle_arg $ drop_arg
        $ dup_arg $ reorder_arg $ partition_arg $ net_seed_arg $ watchdog_arg
        $ max_retries_arg $ transport_arg)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run an application (or a $(b,--trace-file) workload) under online race detection.")
    term

let hunt_command =
  let hunt app_name procs scale =
    let app = Apps.Registry.make ~scale app_name in
    Format.fprintf ppf "run 1: detecting races and recording synchronization order...@.";
    let cfg1 = { Lrc.Config.default with record_sync = true } in
    let run1 = Core.Driver.run ~cfg:cfg1 ~app ~nprocs:procs () in
    let racy = Core.Driver.racy_addrs run1 in
    Core.Report.races ~symtab:run1.Core.Driver.symtab ppf run1.Core.Driver.races;
    if racy = [] then Format.fprintf ppf "nothing to hunt.@."
    else begin
      Format.fprintf ppf
        "run 2: replaying the recorded order with a watch on %d address(es)...@."
        (List.length racy);
      let cfg2 = { Lrc.Config.default with replay = run1.Core.Driver.sync_trace } in
      let run2 = Core.Driver.run ~cfg:cfg2 ~app ~nprocs:procs ~watch_addrs:racy () in
      Format.fprintf ppf "source sites involved in the races:@.";
      List.iter
        (fun hit -> Format.fprintf ppf "  %a@." Instrument.Watch.pp_hit hit)
        run2.Core.Driver.watch_hits
    end
  in
  let term = Term.(const hunt $ app_arg $ procs_arg $ scale_arg) in
  Cmd.v
    (Cmd.info "hunt"
       ~doc:
         "Two-run race hunt (section 6.1): detect races, then replay under the recorded \
          synchronization order to identify the source sites.")
    term

let record_command =
  let out_arg =
    let doc = "Output file for the binary trace log." in
    Arg.(value & opt string "run.cvmt" & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let record app_name procs scale backend protocol no_detect first_race_only
      stores_from_diffs gc_epochs elide sim_jobs drop dup reorder partitions net_seed
      watchdog_ms max_retries transport out =
    let cfg =
      config ~backend ~protocol ~no_detect ~first_race_only ~stores_from_diffs
        ~oracle:false ~gc_epochs ~elide ~sim_jobs
    in
    let cfg =
      net_config cfg ~drop ~dup ~reorder ~partitions ~net_seed ~watchdog_ms ~max_retries
        ~transport
    in
    if Sim.Fault.active cfg.Lrc.Config.fault then
      Format.fprintf ppf "wire faults: %s@." (Sim.Fault.describe cfg.Lrc.Config.fault);
    let outcome, log = Core.Trace_run.record ~cfg ~app_name ~scale ~nprocs:procs () in
    Core.Trace_run.save out log;
    print_outcome outcome;
    let decoded = Trace.Codec.decode log in
    Format.fprintf ppf "trace: %d event(s), %d bytes -> %s@."
      (Array.length decoded.Trace.Codec.events)
      (String.length log) out
  in
  let record app_name procs scale backend protocol no_detect first_race_only
      stores_from_diffs gc_epochs elide sim_jobs drop dup reorder partitions net_seed
      watchdog_ms max_retries transport out =
    try
      record app_name procs scale backend protocol no_detect first_race_only
        stores_from_diffs gc_epochs elide sim_jobs drop dup reorder partitions net_seed
        watchdog_ms max_retries transport out
    with Sim.Engine.Deadlock diagnosis ->
      Format.fprintf ppf "DEADLOCK@.%s@." (Sim.Engine.diagnosis_to_string diagnosis);
      exit 2
  in
  let term =
    Term.(const record $ app_arg $ procs_arg $ scale_arg $ backend_arg $ protocol_arg
        $ no_detect_arg $ first_race_arg $ diff_stores_arg $ gc_epochs_arg $ elide_arg
        $ sim_jobs_arg $ drop_arg $ dup_arg $ reorder_arg $ partition_arg $ net_seed_arg
        $ watchdog_arg $ max_retries_arg $ transport_arg $ out_arg)
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:
         "Run an application with the deterministic trace recorder and save the binary \
          event log (replay it with $(b,cvm_race replay)).")
    term

let log_arg =
  let doc = "Binary trace log produced by $(b,cvm_race record)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"LOG" ~doc)

let replay_command =
  let log_only_arg =
    let doc =
      "Do not re-execute: reconstruct the race set and final memory checksum from the \
       log alone."
    in
    Arg.(value & flag & info [ "log-only" ] ~doc)
  in
  let replay log_path log_only =
    let log = Core.Trace_run.load log_path in
    if log_only then begin
      let decoded = Trace.Codec.decode log in
      let m = decoded.Trace.Codec.meta in
      Format.fprintf ppf "== %s on %d processors (%s, from log only) ==@."
        m.Trace.Codec.m_app m.Trace.Codec.m_nprocs m.Trace.Codec.m_protocol;
      Core.Report.races ppf (Trace.Replay.races_of_log decoded);
      (match Trace.Replay.checksum_of_log decoded with
      | Some c -> Format.fprintf ppf "memory checksum: %x@." c
      | None -> Format.fprintf ppf "memory checksum: (log has no run-end event)@.");
      match Trace.Replay.sim_time_of_log decoded with
      | Some ns -> Format.fprintf ppf "simulated time: %.3f ms@." (float_of_int ns /. 1e6)
      | None -> ()
    end
    else begin
      let result = Core.Trace_run.replay log in
      let m = result.Core.Trace_run.rr_meta in
      Format.fprintf ppf "== replaying %s on %d processors (%s, scale %s) ==@."
        m.Trace.Codec.m_app m.Trace.Codec.m_nprocs m.Trace.Codec.m_protocol
        m.Trace.Codec.m_scale;
      match result.Core.Trace_run.rr_divergence with
      | Some d ->
          Format.fprintf ppf "%a@." Trace.Replay.pp_divergence d;
          exit 1
      | None ->
          if not (Core.Trace_run.clean result) then begin
            Format.fprintf ppf
              "event streams identical but outcome mismatch (races %s, checksum %s)@."
              (if result.Core.Trace_run.rr_races_match then "match" else "DIFFER")
              (if result.Core.Trace_run.rr_checksum_match then "matches" else "DIFFERS");
            exit 1
          end;
          print_outcome result.Core.Trace_run.rr_outcome;
          Format.fprintf ppf
            "replay verified: event streams, race set and memory checksum identical@."
    end
  in
  let replay log_path log_only =
    try replay log_path log_only with
    | Sim.Engine.Deadlock diagnosis ->
        Format.fprintf ppf "DEADLOCK@.%s@." (Sim.Engine.diagnosis_to_string diagnosis);
        exit 2
    | Trace.Codec.Corrupt msg ->
        Format.fprintf ppf "corrupt trace log: %s@." msg;
        exit 3
  in
  let term = Term.(const replay $ log_arg $ log_only_arg) in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-execute a recorded run and verify both event streams are identical; on a \
          mismatch, report the first divergence and exit nonzero.")
    term

let trace_command =
  let chrome_arg =
    let doc = "Write a Chrome trace-event JSON file (load in chrome://tracing or Perfetto)." in
    Arg.(value & opt (some string) None & info [ "chrome" ] ~docv:"FILE" ~doc)
  in
  let stats_arg =
    let doc = "Print per-tag event counts and encoded bytes." in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  let events_arg =
    let doc = "Print the first $(docv) decoded events." in
    Arg.(value & opt int 0 & info [ "events" ] ~docv:"N" ~doc)
  in
  let trace log_path chrome stats events =
    let log = Core.Trace_run.load log_path in
    let decoded = Trace.Codec.decode log in
    let m = decoded.Trace.Codec.meta in
    Format.fprintf ppf
      "%s: %s on %d processors, protocol %s, scale %s, seed %d, %d event(s), %d bytes@."
      log_path m.Trace.Codec.m_app m.Trace.Codec.m_nprocs m.Trace.Codec.m_protocol
      m.Trace.Codec.m_scale m.Trace.Codec.m_seed
      (Array.length decoded.Trace.Codec.events)
      (String.length log);
    if m.Trace.Codec.m_drop > 0.0 || m.Trace.Codec.m_dup > 0.0
       || m.Trace.Codec.m_reorder > 0.0
       || m.Trace.Codec.m_partitions <> []
    then
      Format.fprintf ppf
        "faults: drop %.1f%%, dup %.1f%%, reorder %.1f%%, %d partition window(s)@."
        (100. *. m.Trace.Codec.m_drop)
        (100. *. m.Trace.Codec.m_dup)
        (100. *. m.Trace.Codec.m_reorder)
        (List.length m.Trace.Codec.m_partitions);
    if stats then begin
      Format.fprintf ppf "%-16s %10s %12s@." "tag" "count" "bytes";
      List.iter
        (fun (s : Trace.Replay.tag_stats) ->
          Format.fprintf ppf "%-16s %10d %12d@." s.Trace.Replay.ts_tag
            s.Trace.Replay.ts_count s.Trace.Replay.ts_bytes)
        (Trace.Replay.stats_of_log decoded)
    end;
    if events > 0 then
      Array.iteri
        (fun i (time, event) ->
          if i < events then
            Format.fprintf ppf "%8d  %10d ns  %a@." i time Trace.Event.pp event)
        decoded.Trace.Codec.events;
    match chrome with
    | Some out ->
        Core.Trace_run.save out (Trace.Chrome.export decoded);
        Format.fprintf ppf "chrome trace -> %s@." out
    | None -> ()
  in
  let trace log_path chrome stats events =
    try trace log_path chrome stats events
    with Trace.Codec.Corrupt msg ->
      Format.fprintf ppf "corrupt trace log: %s@." msg;
      exit 3
  in
  let term = Term.(const trace $ log_arg $ chrome_arg $ stats_arg $ events_arg) in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Inspect a binary trace log: run summary, per-tag statistics ($(b,--stats)), \
          the first events ($(b,--events)), or a Chrome trace-event export \
          ($(b,--chrome)).")
    term

let table_command =
  let which_arg =
    let doc = "Which experiment: table1, table2, table3, figure3, figure4, figure5, faults." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let table which scale backend sim_jobs jobs workers chaos task_deadline =
    (* figure5, protocols and faults are DSM-mechanism experiments
       (LRC-internal protocol variants, wire faults); --backend does not
       apply to them *)
    let lrc_only = [ "figure5"; "protocols"; "faults" ] in
    if backend <> "lrc" && List.mem which lrc_only then
      Format.fprintf ppf "note: %s is DSM-specific; --backend %s ignored@." which backend;
    with_executor ~jobs ~workers ~chaos ~task_deadline (fun ex ->
        match which with
        | "table1" ->
            Core.Report.table1 ppf (Core.Tasks.table1 ~scale ~backend ?sim_jobs ~ex ())
        | "table2" -> Core.Report.table2 ppf (Core.Tasks.table2 ~scale ~ex ())
        | "table3" ->
            Core.Report.table3 ppf (Core.Tasks.table3 ~scale ~backend ?sim_jobs ~ex ())
        | "figure3" ->
            Core.Report.figure3 ppf (Core.Tasks.figure3 ~scale ~backend ?sim_jobs ~ex ())
        | "figure4" ->
            Core.Report.figure4 ppf (Core.Tasks.figure4 ~scale ~backend ?sim_jobs ~ex ())
        | "figure5" -> Core.Report.figure5 ppf (Core.Tasks.figure5_both ?sim_jobs ~ex ())
        | "protocols" ->
            Core.Report.protocols ppf
              (Core.Tasks.protocol_comparison_all ~scale ?sim_jobs ~ex ())
        | "faults" -> Core.Report.faults ppf (Core.Tasks.fault_sweep_all ~scale ~ex ())
        | other -> Format.fprintf ppf "unknown experiment %S@." other)
  in
  let term =
    Term.(const table $ which_arg $ scale_arg $ backend_arg $ sim_jobs_arg $ jobs_arg
        $ workers_arg $ chaos_arg $ task_deadline_arg)
  in
  Cmd.v (Cmd.info "table" ~doc:"Regenerate one of the paper's tables or figures.") term

let sweep_command =
  let apps_arg =
    let doc = "Applications to sweep (default: the paper's four)." in
    Arg.(value & pos_all string [] & info [] ~docv:"APP" ~doc)
  in
  let procs_list_arg =
    let doc = "Comma-separated processor counts." in
    Arg.(value & opt (list int) [ 2; 4; 8 ] & info [ "p"; "procs" ] ~docv:"N,N,..." ~doc)
  in
  let sweep apps procs scale backend sim_jobs jobs workers chaos task_deadline =
    let names = match apps with [] -> Apps.Registry.all_names | names -> names in
    with_executor ~jobs ~workers ~chaos ~task_deadline (fun ex ->
        Core.Report.figure4 ppf
          (Core.Tasks.figure4 ~scale ~procs ~names ~backend ?sim_jobs ~ex ()))
  in
  let term =
    Term.(const sweep $ apps_arg $ procs_list_arg $ scale_arg $ backend_arg $ sim_jobs_arg
        $ jobs_arg $ workers_arg $ chaos_arg $ task_deadline_arg)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Sweep applications across processor counts (instrumented vs baseline, with \
          overheads), fanning the independent runs over $(b,--jobs) domains. The full \
          timed harness with JSON output lives in bench/main.exe.")
    term

(* --- analyze: static pass, MHP pair report, JSON and baseline modes --- *)

let json_of_warning (w : Instrument.Static_analysis.warning) =
  Bench_json.Obj
    [
      ("proc", Bench_json.String w.Instrument.Static_analysis.w_proc);
      ("site", Bench_json.String w.Instrument.Static_analysis.w_site);
      ( "kind",
        Bench_json.String
          (match w.Instrument.Static_analysis.w_kind with
          | Instrument.Binary.Load -> "load"
          | Instrument.Binary.Store -> "store") );
      ("region", Bench_json.String w.Instrument.Static_analysis.w_region);
      ("other_site", Bench_json.String w.Instrument.Static_analysis.w_other_site);
      ( "other_locks",
        Bench_json.List
          (List.map (fun l -> Bench_json.Int l) w.Instrument.Static_analysis.w_other_locks)
      );
    ]

let json_of_side (s : Instrument.Mhp.side) =
  Bench_json.Obj
    [
      ("site", Bench_json.String s.Instrument.Mhp.s_site);
      ( "kind",
        Bench_json.String
          (match s.Instrument.Mhp.s_kind with
          | Instrument.Binary.Load -> "load"
          | Instrument.Binary.Store -> "store") );
      ("locks", Bench_json.List (List.map (fun l -> Bench_json.Int l) s.Instrument.Mhp.s_locks));
    ]

let json_of_mhp (r : Instrument.Mhp.report) =
  let sites ss = Bench_json.List (List.map (fun s -> Bench_json.String s) ss) in
  Bench_json.Obj
    [
      ( "pairs",
        Bench_json.List
          (List.map
             (fun (p : Instrument.Mhp.pair) ->
               Bench_json.Obj
                 [
                   ("proc", Bench_json.String p.Instrument.Mhp.p_proc);
                   ( "severity",
                     Bench_json.String
                       (Instrument.Mhp.severity_name p.Instrument.Mhp.p_severity) );
                   ("region", Bench_json.String p.Instrument.Mhp.p_region);
                   ( "phases",
                     Bench_json.List
                       (List.map (fun ph -> Bench_json.Int ph) p.Instrument.Mhp.p_phases) );
                   ("a", json_of_side p.Instrument.Mhp.p_a);
                   ("b", json_of_side p.Instrument.Mhp.p_b);
                 ])
             r.Instrument.Mhp.pairs) );
      ("may_race_sites", sites r.Instrument.Mhp.may_race_sites);
      ("race_free_sites", sites r.Instrument.Mhp.race_free_sites);
      ("shared_sites", sites r.Instrument.Mhp.shared_sites);
    ]

let json_of_analysis ~name (result : Instrument.Static_analysis.result) mhp =
  let c = result.Instrument.Static_analysis.classification in
  Bench_json.Obj
    [
      ("app", Bench_json.String name);
      ( "classification",
        Bench_json.Obj
          [
            ("stack", Bench_json.Int c.Instrument.Static_analysis.stack);
            ("static", Bench_json.Int c.Instrument.Static_analysis.static_data);
            ("proven_private", Bench_json.Int c.Instrument.Static_analysis.proven_private);
            ("library", Bench_json.Int c.Instrument.Static_analysis.library);
            ("cvm", Bench_json.Int c.Instrument.Static_analysis.cvm);
            ("instrumented", Bench_json.Int c.Instrument.Static_analysis.instrumented);
          ] );
      ("batched_checks", Bench_json.Int result.Instrument.Static_analysis.batched_checks);
      ( "check_cost_scale",
        Bench_json.Float result.Instrument.Static_analysis.check_cost_scale );
      ( "warnings",
        Bench_json.List
          (List.map json_of_warning result.Instrument.Static_analysis.warnings) );
      ("mhp", match mhp with Some r -> json_of_mhp r | None -> Bench_json.Null);
    ]

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      List.rev (List.filter (fun l -> String.trim l <> "") !lines))

let analyze_command =
  let app_opt_arg =
    let doc = "Application to analyze: fft, sor, tsp, water or lu." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"APP" ~doc)
  in
  let all_arg =
    let doc = "Analyze every application, including the extra workloads." in
    Arg.(value & flag & info [ "all" ] ~doc)
  in
  let mhp_arg =
    let doc =
      "Also run the whole-program may-happen-in-parallel analysis and print the pairwise \
       static race report (witness region, phases and locksets per pair)."
    in
    Arg.(value & flag & info [ "mhp" ] ~doc)
  in
  let json_arg =
    let doc = "Write the full analysis (classification, warnings, MHP report) as JSON." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let expect_arg =
    let doc =
      "Baseline mode for CI: compare the emitted warning lines against $(docv) (one \
       warning per line) and exit nonzero on any drift — a new warning, a vanished \
       warning, or a changed message."
    in
    Arg.(value & opt (some string) None & info [ "expect" ] ~docv:"FILE" ~doc)
  in
  let analyze app_name all scale mhp json expect =
    let names =
      match (app_name, all) with
      | _, true -> Apps.Registry.extended_names
      | Some name, false -> [ name ]
      | None, false -> Apps.Registry.all_names
    in
    let any_warnings = ref false in
    let warning_lines = ref [] in
    let json_apps = ref [] in
    List.iter
      (fun name ->
        let app = Apps.Registry.make ~scale name in
        let binary = app.Apps.App.binary () in
        let result = Instrument.Static_analysis.analyze binary in
        Core.Report.analysis ppf ~name:app.Apps.App.name result;
        if result.Instrument.Static_analysis.warnings <> [] then any_warnings := true;
        List.iter
          (fun w ->
            warning_lines :=
              Format.asprintf "%s: %a" app.Apps.App.name
                Instrument.Static_analysis.pp_warning w
              :: !warning_lines)
          result.Instrument.Static_analysis.warnings;
        let report =
          if mhp || json <> None then Some (Instrument.Mhp.analyze binary) else None
        in
        (match report with
        | Some r when mhp ->
            Format.fprintf ppf "@[<v 2>%s may-happen-in-parallel:@ %a@]@.@."
              app.Apps.App.name Instrument.Mhp.pp_report r
        | _ -> ());
        if json <> None then
          json_apps := json_of_analysis ~name:app.Apps.App.name result report :: !json_apps)
      names;
    let warning_lines = List.rev !warning_lines in
    (match json with
    | Some path ->
        Bench_json.to_file path
          (Bench_json.Obj
             [
               ("schema", Bench_json.String "cvm-race-analyze/1");
               ("apps", Bench_json.List (List.rev !json_apps));
             ]);
        Format.fprintf ppf "analysis JSON -> %s@." path
    | None -> ());
    let drifted =
      match expect with
      | None -> false
      | Some path ->
          let expected = read_lines path in
          let missing = List.filter (fun l -> not (List.mem l warning_lines)) expected in
          let unexpected = List.filter (fun l -> not (List.mem l expected)) warning_lines in
          List.iter (fun l -> Format.fprintf ppf "MISSING (expected, not emitted): %s@." l) missing;
          List.iter (fun l -> Format.fprintf ppf "UNEXPECTED (emitted, not in baseline): %s@." l) unexpected;
          if missing = [] && unexpected = [] then begin
            Format.fprintf ppf "warning set matches baseline %s (%d line(s))@." path
              (List.length expected);
            false
          end
          else true
    in
    if !any_warnings && expect = None then
      Format.fprintf ppf
        "note: lint findings are static suspicions; `cvm_race run` confirms them dynamically@.";
    if drifted then exit 1
  in
  let term =
    Term.(const analyze $ app_opt_arg $ all_arg $ scale_arg $ mhp_arg $ json_arg
        $ expect_arg)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Run the static passes alone: per-application access classification, \
          redundant-check batching, lockset lint warnings, and (with $(b,--mhp)) the \
          whole-program may-happen-in-parallel pair report. $(b,--expect) compares the \
          warning lines to a checked-in baseline and exits nonzero on drift; \
          $(b,--json) writes the full report for tooling.")
    term

let litmus_command =
  let litmus protocol =
    List.iter
      (fun test ->
        let outcomes = Litmus.explore ~protocol test in
        Format.fprintf ppf "%-16s: %s@." test.Litmus.name
          (String.concat " | "
             (List.map
                (fun registers ->
                  match registers with
                  | [] -> "(no registers)"
                  | _ ->
                      String.concat ","
                        (List.map (fun (r, v) -> Printf.sprintf "%s=%d" r v) registers))
                outcomes)))
      Litmus.all
  in
  let term = Term.(const litmus $ protocol_arg) in
  Cmd.v
    (Cmd.info "litmus"
       ~doc:
         "Explore the observable outcomes of classic memory-model litmus tests (MP, SB, \
          coherence) under the chosen protocol.")
    term

let fuzz_command =
  let seed_arg =
    let doc = "Base seed; program $(i,i) is drawn from (seed, i)." in
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc)
  in
  let count_arg =
    let doc = "Number of programs to generate and check." in
    Arg.(value & opt int 50 & info [ "count" ] ~docv:"N" ~doc)
  in
  let no_shrink_arg =
    let doc = "Report mismatches as generated, without minimizing them." in
    Arg.(value & flag & info [ "no-shrink" ] ~doc)
  in
  let repro_dir_arg =
    let doc = "Write each mismatch's (minimized) program as a trace file under $(docv)." in
    Arg.(value & opt (some string) None & info [ "repro-dir" ] ~docv:"DIR" ~doc)
  in
  let json_arg =
    let doc = "Write the fuzz report (generator statistics and mismatches) as JSON." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let backends_arg =
    let doc = "Comma-separated backends to cross-check (default: every registered one)." in
    Arg.(value & opt (list string) Workload.Harness.all_backends
        & info [ "backends" ] ~docv:"B,B,..." ~doc)
  in
  let fuzz seed count no_shrink repro_dir json backends =
    List.iter
      (fun b ->
        if not (Backends.known b) then begin
          Format.eprintf "unknown backend %S (available: %s)@." b
            (String.concat ", " Backends.all);
          exit 2
        end)
      backends;
    let report =
      Workload.Harness.fuzz ~backends ?repro_dir ~seed ~count ~shrink:(not no_shrink) ()
    in
    Format.fprintf ppf
      "fuzz seed %d: %d program(s), %d event(s), %d race(s) planted, %d found, %d clean \
       program(s), %d shrink step(s)@."
      seed report.Workload.Harness.programs report.Workload.Harness.events
      report.Workload.Harness.planted report.Workload.Harness.found
      report.Workload.Harness.clean_programs report.Workload.Harness.shrink_steps;
    List.iter
      (fun (m : Workload.Harness.mismatch) ->
        Format.fprintf ppf "MISMATCH [%s] %s@.%a@."
          (Workload.Harness.kind_name m.Workload.Harness.kind)
          m.Workload.Harness.detail Workload.Program.pp m.Workload.Harness.program)
      report.Workload.Harness.mismatches;
    List.iter
      (fun path -> Format.fprintf ppf "repro -> %s@." path)
      report.Workload.Harness.repro_files;
    (match json with
    | Some path ->
        let mismatch_json (m : Workload.Harness.mismatch) =
          Bench_json.Obj
            [
              ("kind", Bench_json.String (Workload.Harness.kind_name m.Workload.Harness.kind));
              ("detail", Bench_json.String m.Workload.Harness.detail);
              ( "program",
                Bench_json.String
                  (Workload.Trace_file.to_string m.Workload.Harness.program) );
              ("events", Bench_json.Int (Workload.Program.size m.Workload.Harness.program));
            ]
        in
        Bench_json.to_file path
          (Bench_json.Obj
             [
               ("schema", Bench_json.String "cvm-race-fuzz/1");
               ("seed", Bench_json.Int seed);
               ("count", Bench_json.Int count);
               ("backends", Bench_json.List (List.map (fun b -> Bench_json.String b) backends));
               ("programs", Bench_json.Int report.Workload.Harness.programs);
               ("events", Bench_json.Int report.Workload.Harness.events);
               ("races_planted", Bench_json.Int report.Workload.Harness.planted);
               ("races_found", Bench_json.Int report.Workload.Harness.found);
               ("clean_programs", Bench_json.Int report.Workload.Harness.clean_programs);
               ("shrink_steps", Bench_json.Int report.Workload.Harness.shrink_steps);
               ( "mismatches",
                 Bench_json.List
                   (List.map mismatch_json report.Workload.Harness.mismatches) );
               ( "repro_files",
                 Bench_json.List
                   (List.map
                      (fun p -> Bench_json.String p)
                      report.Workload.Harness.repro_files) );
             ]);
        Format.fprintf ppf "fuzz report JSON -> %s@." path
    | None -> ());
    if report.Workload.Harness.mismatches <> [] then exit 1
  in
  let term =
    Term.(const fuzz $ seed_arg $ count_arg $ no_shrink_arg $ repro_dir_arg $ json_arg
        $ backends_arg)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generate seeded random concurrent programs with \
          by-construction ground-truth racy sets, run the online detector (with and \
          without elision) against the offline oracle across every backend, and shrink \
          any mismatch to a minimized trace-file repro. Exits nonzero on any mismatch.")
    term

let () =
  (* Spawned as a remote-executor worker? Serve tasks and exit — before
     any output or argument parsing. *)
  Parallel.Remote.maybe_worker ~run:(Core.Tasks.runner ()) ();
  (* registry listing; handled before Cmdliner so it works from any
     subcommand position *)
  if Array.exists (String.equal "--list-backends") Sys.argv then begin
    List.iter
      (fun name ->
        Printf.printf "%-8s %s\n" name
          (Option.value ~default:"" (Backends.describe name)))
      Backends.all;
    exit 0
  end;
  let doc = "online data-race detection via coherency guarantees (OSDI '96 reproduction)" in
  let info = Cmd.info "cvm_race" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_command;
            hunt_command;
            record_command;
            replay_command;
            trace_command;
            table_command;
            sweep_command;
            analyze_command;
            litmus_command;
            fuzz_command;
          ]))
