(* Tests for the register-transfer IR and the provenance data-flow pass:
   lattice laws, transfer functions, the worklist fixpoint on looping
   CFGs, redundant-check batching, the lockset lint, and the per-app
   results the static elimination derives from the synthetic CFGs. *)

let check = Alcotest.check

open Instrument

(* ------------------------------------------------------------------ *)
(* Lattice laws                                                        *)

let gen_prov =
  let open QCheck.Gen in
  let regions = list_size (int_range 0 3) (oneofl [ "a"; "b"; "c"; "d" ]) in
  oneof
    [
      return Dataflow.Stack;
      return Dataflow.Static;
      return Dataflow.Private_heap;
      map (fun names -> Dataflow.Shared_heap (Dataflow.Regions.of_list names)) regions;
      return Dataflow.Unknown;
    ]

let arb_prov = QCheck.make ~print:(Format.asprintf "%a" Dataflow.pp_prov) gen_prov

let prop_join_commutative =
  QCheck.Test.make ~name:"prov join is commutative" ~count:200
    QCheck.(pair arb_prov arb_prov)
    (fun (a, b) -> Dataflow.prov_equal (Dataflow.join a b) (Dataflow.join b a))

let prop_join_associative =
  QCheck.Test.make ~name:"prov join is associative" ~count:200
    QCheck.(triple arb_prov arb_prov arb_prov)
    (fun (a, b, c) ->
      Dataflow.prov_equal
        (Dataflow.join a (Dataflow.join b c))
        (Dataflow.join (Dataflow.join a b) c))

let prop_join_idempotent =
  QCheck.Test.make ~name:"prov join is idempotent" ~count:200 arb_prov (fun a ->
      Dataflow.prov_equal (Dataflow.join a a) a)

let prop_join_top =
  QCheck.Test.make ~name:"Unknown absorbs every join" ~count:200 arb_prov (fun a ->
      Dataflow.prov_equal (Dataflow.join a Dataflow.Unknown) Dataflow.Unknown)

(* ------------------------------------------------------------------ *)
(* Transfer functions                                                  *)

let test_transfer () =
  let open Ir in
  let s = Dataflow.initial_state in
  let s = Dataflow.transfer_op s (malloc_shared ~dst:0 "grid") in
  let s = Dataflow.transfer_op s (malloc_private ~dst:1 "arena") in
  let s = Dataflow.transfer_op s (mov ~dst:2 ~src:0) in
  let s = Dataflow.transfer_op s (lea ~dst:3 (Reg 1) ~offset:64) in
  let s = Dataflow.transfer_op s (lea ~dst:4 (Fp 8)) in
  let s = Dataflow.transfer_op s (load ~dst:5 (Reg 0) ~site:"ptr") in
  let prov = Alcotest.testable Dataflow.pp_prov Dataflow.prov_equal in
  check prov "dsm_malloc result" (Dataflow.Shared_heap (Dataflow.Regions.singleton "grid"))
    (Dataflow.lookup s 0);
  check prov "private malloc result" Dataflow.Private_heap (Dataflow.lookup s 1);
  check prov "mov copies provenance"
    (Dataflow.Shared_heap (Dataflow.Regions.singleton "grid"))
    (Dataflow.lookup s 2);
  check prov "lea keeps the region" Dataflow.Private_heap (Dataflow.lookup s 3);
  check prov "lea of a stack slot" Dataflow.Stack (Dataflow.lookup s 4);
  check prov "pointer loaded from memory" Dataflow.Unknown (Dataflow.lookup s 5);
  check prov "undefined register" Dataflow.Unknown (Dataflow.lookup s 9)

let test_transfer_locks () =
  let open Ir in
  let s = Dataflow.initial_state in
  let s = Dataflow.transfer_op s (acquire 3) in
  let s = Dataflow.transfer_op s (acquire 7) in
  let s = Dataflow.transfer_op s (release 3) in
  check (Alcotest.list Alcotest.int) "must-hold lockset" [ 7 ]
    (Dataflow.Intset.elements s.Dataflow.locks)

(* ------------------------------------------------------------------ *)
(* Fixpoint on a looping CFG                                           *)

let test_fixpoint_loop_joins_regions () =
  (* a loop body swaps two pointers to different shared allocations: the
     fixpoint must terminate and both registers must converge to the
     union of the two regions *)
  let open Ir in
  let p =
    proc ~name:"swap" ~entry:"head"
      [
        block "head"
          [ malloc_shared ~dst:0 "red"; malloc_shared ~dst:1 "black" ]
          ~succs:[ "loop" ];
        block "loop"
          [ mov ~dst:2 ~src:0; mov ~dst:0 ~src:1; mov ~dst:1 ~src:2 ]
          ~succs:[ "loop"; "exit" ];
        block "exit" [ store (Reg 0) ~site:"st" ];
      ]
  in
  let states = Dataflow.fixpoint p in
  let at_exit = Hashtbl.find states "exit" in
  let both = Dataflow.Regions.of_list [ "red"; "black" ] in
  let prov = Alcotest.testable Dataflow.pp_prov Dataflow.prov_equal in
  check prov "r0 joins both regions" (Dataflow.Shared_heap both)
    (Dataflow.lookup at_exit 0);
  check prov "r1 joins both regions" (Dataflow.Shared_heap both)
    (Dataflow.lookup at_exit 1)

let test_fixpoint_lockset_intersects () =
  (* two branches acquire different locks; only the common one is
     must-hold at the join *)
  let open Ir in
  let p =
    proc ~name:"branchy" ~entry:"e"
      [
        block "e" [ malloc_shared ~dst:0 "g" ] ~succs:[ "l"; "r" ];
        block "l" [ acquire 1; acquire 2 ] ~succs:[ "j" ];
        block "r" [ acquire 1; acquire 3 ] ~succs:[ "j" ];
        block "j" [ store (Reg 0) ~site:"st" ];
      ]
  in
  let at_join = Hashtbl.find (Dataflow.fixpoint p) "j" in
  check (Alcotest.list Alcotest.int) "intersection at the join" [ 1 ]
    (Dataflow.Intset.elements at_join.Dataflow.locks)

let test_unreachable_block () =
  let open Ir in
  let p =
    proc ~name:"dead" ~entry:"e"
      [ block "e" [ malloc_shared ~dst:0 "g" ]; block "orphan" [ store (Reg 0) ~site:"st" ] ]
  in
  let a =
    List.find (fun a -> a.Dataflow.a_block = "orphan") (Dataflow.analyze p)
  in
  check Alcotest.bool "orphan block is unreachable" false a.Dataflow.a_reachable

(* ------------------------------------------------------------------ *)
(* Redundant-check batching                                            *)

let accesses_of ops = Dataflow.analyze (Ir.proc ~name:"p" ~entry:"b" [ Ir.block "b" ops ])

let find_site site accesses = List.find (fun a -> a.Dataflow.a_site = site) accesses

let test_batching_same_page () =
  let open Ir in
  let accesses =
    accesses_of
      [
        malloc_shared ~dst:0 "g";
        load (Reg 0) ~stride:8 ~count:10 ~site:"first";
        store (Reg 0) ~stride:8 ~count:10 ~site:"second";
      ]
  in
  (* 10 stride-8 words span one page: the first access checks it, the
     other 9 batch; the store's 10 all batch onto the load's check *)
  check Alcotest.int "intra-op batching" 9 (find_site "first" accesses).Dataflow.a_batched;
  check Alcotest.int "cross-op batching" 10 (find_site "second" accesses).Dataflow.a_batched

let test_batching_page_spread () =
  let open Ir in
  let accesses =
    accesses_of
      [ malloc_shared ~dst:0 "g"; load (Reg 0) ~stride:4096 ~count:10 ~site:"spread" ]
  in
  check Alcotest.int "page-stride accesses never batch" 0
    (find_site "spread" accesses).Dataflow.a_batched

let test_batching_cleared_by_redefinition () =
  let open Ir in
  let accesses =
    accesses_of
      [
        malloc_shared ~dst:0 "g";
        load (Reg 0) ~site:"before";
        malloc_shared ~dst:0 "h";
        load (Reg 0) ~site:"after";
      ]
  in
  check Alcotest.int "redefinition invalidates the dominating check" 0
    (find_site "after" accesses).Dataflow.a_batched

let test_batching_cleared_by_sync () =
  let open Ir in
  let accesses =
    accesses_of
      [
        malloc_shared ~dst:0 "g";
        load (Reg 0) ~site:"before";
        acquire 1;
        load (Reg 0) ~site:"after";
      ]
  in
  check Alcotest.int "synchronization invalidates the dominating check" 0
    (find_site "after" accesses).Dataflow.a_batched

let test_private_accesses_not_counted () =
  let open Ir in
  let accesses =
    accesses_of
      [ malloc_private ~dst:0 "arena"; load (Reg 0) ~stride:8 ~count:10 ~site:"private" ]
  in
  check Alcotest.int "proven-private accesses need no checks to batch" 0
    (find_site "private" accesses).Dataflow.a_batched

(* ------------------------------------------------------------------ *)
(* The lockset lint                                                    *)

let warnings_of proc =
  (Static_analysis.analyze (Binary.make ~name:"t" ~procs:[ proc ] [])).Static_analysis.warnings

let test_lint_flags_unlocked_store () =
  let open Ir in
  let p =
    proc ~name:"p" ~entry:"e"
      [
        block "e" [ malloc_shared ~dst:0 "acc" ] ~succs:[ "racy"; "locked" ];
        block "racy" [ store (Reg 0) ~site:"racy_store" ] ~succs:[ "tail" ];
        block "locked"
          [ acquire 1; store (Reg 0) ~site:"locked_store"; release 1 ]
          ~succs:[ "tail" ];
        block "tail" [ barrier ];
      ]
  in
  match warnings_of p with
  | [ w ] ->
      check Alcotest.string "the unlocked side is reported" "racy_store"
        w.Static_analysis.w_site;
      check Alcotest.string "against the locked conflict" "locked_store"
        w.Static_analysis.w_other_site;
      check (Alcotest.list Alcotest.int) "with its lockset" [ 1 ]
        w.Static_analysis.w_other_locks
  | ws -> Alcotest.fail (Printf.sprintf "expected exactly one warning, got %d" (List.length ws))

let test_lint_barrier_discipline_silent () =
  (* all-empty locksets: barrier-phase discipline, not lint's business *)
  let open Ir in
  let p =
    proc ~name:"p" ~entry:"e"
      [
        block "e" [ malloc_shared ~dst:0 "grid" ] ~succs:[ "a"; "b" ];
        block "a" [ store (Reg 0) ~site:"writer_a" ] ~succs:[ "t" ];
        block "b" [ store (Reg 0) ~site:"writer_b" ] ~succs:[ "t" ];
        block "t" [ barrier ];
      ]
  in
  check Alcotest.int "no warning without a lock-discipline mismatch" 0
    (List.length (warnings_of p))

let test_lint_barrier_separates_phases () =
  (* the unlocked store happens in a different barrier phase than the
     locked accesses: no statically concurrent pair, no warning *)
  let open Ir in
  let p =
    proc ~name:"p" ~entry:"e"
      [
        block "e" [ malloc_shared ~dst:0 "acc"; store (Reg 0) ~site:"init"; barrier ]
          ~succs:[ "locked" ];
        block "locked"
          [ acquire 1; store (Reg 0) ~site:"locked_store"; release 1 ]
      ]
  in
  check Alcotest.int "barrier separation suppresses the pair" 0
    (List.length (warnings_of p))

let test_lint_disjoint_regions_silent () =
  let open Ir in
  let p =
    proc ~name:"p" ~entry:"e"
      [
        block "e" [ malloc_shared ~dst:0 "red"; malloc_shared ~dst:1 "black" ]
          ~succs:[ "w" ];
        block "w"
          [ store (Reg 0) ~site:"unlocked"; acquire 1; store (Reg 1) ~site:"locked";
            release 1 ]
      ]
  in
  check Alcotest.int "different regions never pair" 0 (List.length (warnings_of p))

(* ------------------------------------------------------------------ *)
(* Whole-binary invariants (qcheck over random flat+CFG binaries)      *)

let gen_binary =
  let open QCheck.Gen in
  map
    (fun ((fp, gp, lib, cvm), (shared_count, private_count, stride, locked)) ->
      let open Ir in
      let body =
        [
          load (Fp 0) ~count:fp ~site:"fp";
          store (Gp "bss") ~count:gp ~site:"gp";
          load (Reg 0) ~stride ~count:shared_count ~site:"shared_ld";
          store (Reg 0) ~stride ~count:shared_count ~site:"shared_st";
          load (Reg 1) ~count:private_count ~site:"private_ld";
        ]
      in
      let body = if locked then (acquire 1 :: body) @ [ release 1 ] else body in
      let p =
        proc ~name:"p" ~entry:"e"
          [
            block "e" [ malloc_shared ~dst:0 "g"; malloc_private ~dst:1 "a" ] ~succs:[ "w" ];
            block "w" body ~succs:[ "w"; "x" ];
            block "x" [ barrier ];
          ]
      in
      Binary.make ~name:"rand" ~procs:[ p ]
        (Binary.section ~origin:(Binary.Library "libc") ~prefix:"lib" ~loads:lib ~stores:0
        @ Binary.section ~origin:Binary.Cvm_runtime ~prefix:"cvm" ~loads:cvm ~stores:0))
    (pair
       (quad (int_range 0 40) (int_range 0 40) (int_range 0 200) (int_range 0 50))
       (quad (int_range 1 60) (int_range 0 30) (oneofl [ 8; 64; 4096 ]) bool))

let arb_binary = QCheck.make gen_binary

let prop_sites_match_classification =
  QCheck.Test.make ~name:"instrumented_sites length = classification.instrumented" ~count:100
    arb_binary (fun binary ->
      let r = Static_analysis.analyze binary in
      List.length r.Static_analysis.sites
      = r.Static_analysis.classification.Static_analysis.instrumented)

let prop_eliminated_fraction_bounded =
  QCheck.Test.make ~name:"eliminated_fraction stays within [0,1]" ~count:100 arb_binary
    (fun binary ->
      let c = Static_analysis.classify binary in
      let f = Static_analysis.eliminated_fraction c in
      f >= 0.0 && f <= 1.0)

let prop_scale_bounded =
  QCheck.Test.make ~name:"check_cost_scale stays within (0,1]" ~count:100 arb_binary
    (fun binary ->
      let r = Static_analysis.analyze binary in
      let s = r.Static_analysis.check_cost_scale in
      s > 0.0 && s <= 1.0)

(* ------------------------------------------------------------------ *)
(* The shipped applications                                            *)

let analyze_app name =
  let app = Apps.Registry.make ~scale:Apps.Registry.Small name in
  Static_analysis.analyze (app.Apps.App.binary ())

let test_apps_race_free_lint_clean () =
  List.iter
    (fun name ->
      let r = analyze_app name in
      match r.Static_analysis.warnings with
      | [] -> ()
      | w :: _ ->
          Alcotest.fail
            (Format.asprintf "%s should lint clean, got: %a" name Static_analysis.pp_warning w))
    [ "sor"; "fft"; "lu" ]

let test_water_bug_flagged () =
  let r = analyze_app "water" in
  match r.Static_analysis.warnings with
  | [ w ] ->
      check Alcotest.string "the racy potential update" "water:pot_racy"
        w.Static_analysis.w_site;
      check Alcotest.string "conflicts with the locked version" "water:pot_locked"
        w.Static_analysis.w_other_site
  | ws ->
      Alcotest.fail (Printf.sprintf "water: expected exactly one warning, got %d" (List.length ws))

let test_tsp_bound_read_flagged () =
  let r = analyze_app "tsp" in
  match r.Static_analysis.warnings with
  | [ w ] ->
      check Alcotest.string "the unsynchronized bound read" "tsp:bound_prune"
        w.Static_analysis.w_site;
      check Alcotest.string "conflicts with the locked update" "tsp:bound_update"
        w.Static_analysis.w_other_site
  | ws ->
      Alcotest.fail (Printf.sprintf "tsp: expected exactly one warning, got %d" (List.length ws))

let test_apps_batching_scale () =
  List.iter
    (fun name ->
      let r = analyze_app name in
      if r.Static_analysis.batched_checks <= 0 then
        Alcotest.fail (name ^ ": no checks batched");
      let s = r.Static_analysis.check_cost_scale in
      if not (s > 0.0 && s < 1.0) then
        Alcotest.fail (Printf.sprintf "%s: scale %.3f outside (0,1)" name s))
    [ "fft"; "sor"; "tsp"; "water"; "lu" ]

let test_apps_elimination_ordering () =
  (* the paper's Table 2 ordering of eliminated fractions must survive
     the computed analysis (LU slots between SOR and Water) *)
  let fraction name =
    Static_analysis.eliminated_fraction (analyze_app name).Static_analysis.classification
  in
  let ranked = List.map (fun n -> (n, fraction n)) [ "fft"; "sor"; "lu"; "water"; "tsp" ] in
  let rec monotone = function
    | (a, fa) :: ((b, fb) :: _ as rest) ->
        if fa <= fb then
          Alcotest.fail (Printf.sprintf "%s (%.4f) should eliminate more than %s (%.4f)" a fa b fb);
        monotone rest
    | _ -> ()
  in
  monotone ranked

let suite =
  [
    ( "dataflow",
      [
        QCheck_alcotest.to_alcotest prop_join_commutative;
        QCheck_alcotest.to_alcotest prop_join_associative;
        QCheck_alcotest.to_alcotest prop_join_idempotent;
        QCheck_alcotest.to_alcotest prop_join_top;
        Alcotest.test_case "transfer functions" `Quick test_transfer;
        Alcotest.test_case "lock transfer" `Quick test_transfer_locks;
        Alcotest.test_case "looping fixpoint joins regions" `Quick
          test_fixpoint_loop_joins_regions;
        Alcotest.test_case "locksets intersect at joins" `Quick test_fixpoint_lockset_intersects;
        Alcotest.test_case "unreachable block" `Quick test_unreachable_block;
        Alcotest.test_case "batching: same page" `Quick test_batching_same_page;
        Alcotest.test_case "batching: page spread" `Quick test_batching_page_spread;
        Alcotest.test_case "batching: redefinition" `Quick test_batching_cleared_by_redefinition;
        Alcotest.test_case "batching: synchronization" `Quick test_batching_cleared_by_sync;
        Alcotest.test_case "batching: private exempt" `Quick test_private_accesses_not_counted;
        Alcotest.test_case "lint: unlocked store flagged" `Quick test_lint_flags_unlocked_store;
        Alcotest.test_case "lint: barrier discipline silent" `Quick
          test_lint_barrier_discipline_silent;
        Alcotest.test_case "lint: barrier separates phases" `Quick
          test_lint_barrier_separates_phases;
        Alcotest.test_case "lint: disjoint regions silent" `Quick
          test_lint_disjoint_regions_silent;
        QCheck_alcotest.to_alcotest prop_sites_match_classification;
        QCheck_alcotest.to_alcotest prop_eliminated_fraction_bounded;
        QCheck_alcotest.to_alcotest prop_scale_bounded;
        Alcotest.test_case "apps: race-free lint clean" `Quick test_apps_race_free_lint_clean;
        Alcotest.test_case "apps: water bug flagged" `Quick test_water_bug_flagged;
        Alcotest.test_case "apps: tsp bound read flagged" `Quick test_tsp_bound_read_flagged;
        Alcotest.test_case "apps: batching scale" `Quick test_apps_batching_scale;
        Alcotest.test_case "apps: elimination ordering" `Quick test_apps_elimination_ordering;
      ] );
  ]
