(* Differential performance-equivalence suite.

   The golden file (golden/perf_equiv.json) was recorded from the
   pre-optimization protocol core. Every combo run here must reproduce
   that recorded outcome — race set, memory checksum, simulated time and
   wire totals — exactly, which is what makes the hot-path optimization a
   pure performance change.

   Two layers:
   - the combo matrix: a handful of pinned combos (one per combo family)
     give named, fast-failing coverage, and the FULL combo space then
     runs fanned out over a Parallel.Pool — every combo, every
     `dune runtest`, not a random sample;
   - cross-version replay: binary trace logs recorded by the
     pre-optimization build replay against the current build and must
     produce identical event streams, races and checksums. *)

let check = Alcotest.check

let result_t =
  Alcotest.testable Equiv_combos.pp_result ( = )

(* `dune runtest` runs with the test directory as cwd; `dune exec
   test/test_main.exe` runs from the workspace root *)
let golden_file name =
  let local = Filename.concat "golden" name in
  if Sys.file_exists local then local else Filename.concat "test/golden" name

let golden = lazy (Equiv_combos.load_golden (golden_file "perf_equiv.json"))

let golden_for label =
  match List.assoc_opt label (Lazy.force golden) with
  | Some result -> result
  | None ->
      Alcotest.fail
        (Printf.sprintf
           "combo %S has no golden entry — regenerate with `dune exec \
            test/gen_equiv_golden.exe` from a known-good build (see docs/BENCH.md)"
           label)

let run_label label =
  match Equiv_combos.find label with
  | Some combo -> Equiv_combos.run combo
  | None -> Alcotest.fail (Printf.sprintf "no combo labelled %S" label)

let test_combo label () = check result_t label (golden_for label) (run_label label)

(* One pinned combo per family: base protocol grid, detection-flag
   variants, lossy wire, alternate scheduling seed. These always run, so
   a behavior change in any family fails even if the random sample
   happens to miss it. *)
let pinned =
  [
    "fft-sw-p4";
    "sor-mw-p8";
    "water-hb-p4";
    "water-mw-diffs-p4";
    "tsp-first-race-p4";
    "sor-nodetect-p4";
    "tsp-drop20-net1312-p4";
    "water-seed99-p8";
  ]

let test_golden_is_complete () =
  (* every combo must have a golden: an unrecorded combo is a hole the
     sampler cannot see into *)
  let golden = Lazy.force golden in
  let missing =
    List.filter_map
      (fun (c : Equiv_combos.combo) ->
        if List.mem_assoc c.Equiv_combos.label golden then None
        else Some c.Equiv_combos.label)
      Equiv_combos.all
  in
  check (Alcotest.list Alcotest.string) "combos without goldens" [] missing

let test_full_matrix () =
  (* the whole combo space, one pool task per combo. [Equiv_combos.run]
     builds the app and cluster inside the task and the golden lookup
     happens back on this domain, so the matrix is safe at any job
     count; on a many-core host it finishes in wall-clock over jobs. *)
  let combos = Equiv_combos.all in
  let results =
    Parallel.Pool.with_pool ~jobs:(Parallel.Pool.default_jobs ()) (fun pool ->
        Parallel.Pool.map_exn pool Equiv_combos.run combos)
  in
  let diverged =
    List.filter_map
      (fun ((c : Equiv_combos.combo), actual) ->
        let label = c.Equiv_combos.label in
        if golden_for label = actual then None else Some label)
      (List.combine combos results)
  in
  check (Alcotest.list Alcotest.string) "combos diverging from pre-optimization golden" []
    diverged

(* ------------------------------------------------------------------ *)
(* Interval GC is a storage policy: with any cadence, the race set must
   match the no-GC golden. Timing and wire totals legitimately differ
   (the GC's validation traffic is real). The memory checksum is only
   required to match for barrier-structured apps: the extra traffic
   shifts lock-grant order, and an app that accumulates floats in lock
   arrival order (water's force merge) then rounds differently at the
   last few ULPs — a schedule change, not a value bug. *)

let test_gc_matches_golden ~checksum label () =
  let combo =
    match Equiv_combos.find label with
    | Some c -> c
    | None -> Alcotest.fail (Printf.sprintf "no combo labelled %S" label)
  in
  let gced =
    {
      combo with
      Equiv_combos.cfg = { combo.Equiv_combos.cfg with Lrc.Config.gc_epochs = Some 2 };
    }
  in
  let expected = golden_for label and actual = Equiv_combos.run gced in
  check (Alcotest.list Alcotest.string) "race set unchanged by GC"
    expected.Equiv_combos.races actual.Equiv_combos.races;
  if checksum then
    check Alcotest.int "memory checksum unchanged by GC"
      expected.Equiv_combos.mem_checksum actual.Equiv_combos.mem_checksum

(* ------------------------------------------------------------------ *)
(* The --sim-jobs axis: the window-sharded engine's contract is that
   the outcome — race set, checksum, simulated time, wire totals, and
   the recorded trace byte-for-byte — is identical for every domain
   count. The anchor is the same combo at sim_jobs = 1 (one domain,
   same windowed engine), NOT the golden: window barriers quantize
   event times differently from the legacy single-heap loop, so the
   sharded engine is its own baseline. The sample below is one combo
   per family among the sharding-eligible ones (no reliable transport,
   zero jitter — the faulty/transport families are exactly the ones the
   degradation ladder excludes). *)

let sim_jobs_sample =
  [ "fft-sw-p4"; "sor-mw-p8"; "water-hb-p4"; "water-mw-diffs-p4"; "tsp-first-race-p4" ]

let with_sim_jobs (combo : Equiv_combos.combo) jobs =
  {
    combo with
    Equiv_combos.cfg =
      { combo.Equiv_combos.cfg with Lrc.Config.sim_jobs = Some jobs };
  }

let test_sim_jobs_outcome_invariant label () =
  let combo =
    match Equiv_combos.find label with
    | Some c -> c
    | None -> Alcotest.fail (Printf.sprintf "no combo labelled %S" label)
  in
  let anchor = Equiv_combos.run (with_sim_jobs combo 1) in
  List.iter
    (fun jobs ->
      check result_t
        (Printf.sprintf "%s: sim-jobs %d = sim-jobs 1" label jobs)
        anchor
        (Equiv_combos.run (with_sim_jobs combo jobs)))
    [ 2; 4 ]

let test_sim_jobs_trace_identical () =
  (* recorded .cvmt logs must agree byte-for-byte across domain counts:
     not just the same outcome, the same event stream at the same
     times in the same order *)
  let record jobs =
    let cfg = { Lrc.Config.default with Lrc.Config.sim_jobs = Some jobs } in
    snd
      (Core.Trace_run.record ~cfg ~app_name:"water" ~scale:Apps.Registry.Small ~nprocs:4
         ())
  in
  let log1 = record 1 in
  check Alcotest.bool "sim-jobs 2 records the identical log" true (record 2 = log1);
  check Alcotest.bool "sim-jobs 4 records the identical log" true (record 4 = log1)

let test_sim_jobs_record_then_replay () =
  (* a log recorded at sim-jobs 4 must replay clean: replay rebuilds
     the cluster from the metadata and runs it sequentially (one
     domain, same windowed engine) *)
  let cfg = { Lrc.Config.default with Lrc.Config.sim_jobs = Some 4 } in
  let _, log =
    Core.Trace_run.record ~cfg ~app_name:"sor" ~scale:Apps.Registry.Small ~nprocs:4 ()
  in
  let result = Core.Trace_run.replay log in
  check
    (Alcotest.option Alcotest.int)
    "the log carries the sharded-engine marker" (Some 1)
    result.Core.Trace_run.rr_meta.Trace.Codec.m_sim_jobs;
  (match result.Core.Trace_run.rr_divergence with
  | None -> ()
  | Some d ->
      Alcotest.fail
        (Format.asprintf "sim-jobs 4 recording diverged on replay: %a"
           Trace.Replay.pp_divergence d));
  check Alcotest.bool "races match" true result.Core.Trace_run.rr_races_match;
  check Alcotest.bool "checksum matches" true result.Core.Trace_run.rr_checksum_match

(* ------------------------------------------------------------------ *)
(* Cross-version replay: logs recorded by the pre-optimization build    *)

let test_pre_opt_replay log () =
  let result = Core.Trace_run.replay (Core.Trace_run.load (golden_file log)) in
  (match result.Core.Trace_run.rr_divergence with
  | None -> ()
  | Some d ->
      Alcotest.fail
        (Format.asprintf "pre-optimization log diverged: %a" Trace.Replay.pp_divergence d));
  check Alcotest.bool "races match recorded run" true result.Core.Trace_run.rr_races_match;
  check Alcotest.bool "checksum matches recorded run" true
    result.Core.Trace_run.rr_checksum_match

let suite =
  [
    ( "perf-equiv",
      [ Alcotest.test_case "golden covers every combo" `Quick test_golden_is_complete ]
      @ List.map
          (fun label -> Alcotest.test_case ("pinned " ^ label) `Quick (test_combo label))
          pinned
      @ [ Alcotest.test_case "full combo matrix matches golden" `Quick test_full_matrix ]
      @ List.map
          (fun (label, checksum) ->
            Alcotest.test_case ("gc-differential " ^ label) `Quick
              (test_gc_matches_golden ~checksum label))
          [
            (* barrier-structured apps: bit-identical memory required *)
            ("sor-mw-p4", true);
            ("fft-mw-p8", true);
            (* lock-order-sensitive float accumulation: race set only *)
            ("water-mw-p8", false);
          ]
      @ List.map
          (fun label ->
            Alcotest.test_case ("sim-jobs axis " ^ label) `Quick
              (test_sim_jobs_outcome_invariant label))
          sim_jobs_sample
      @ [
          Alcotest.test_case "sim-jobs trace byte-identical" `Quick
            test_sim_jobs_trace_identical;
          Alcotest.test_case "sim-jobs record then sequential replay" `Quick
            test_sim_jobs_record_then_replay;
        ]
      @ List.map
          (fun log ->
            Alcotest.test_case ("cross-version replay " ^ log) `Quick
              (test_pre_opt_replay log))
          [ "pre_opt_sor_drop.cvmt"; "pre_opt_water.cvmt"; "pre_opt_tsp.cvmt" ] );
  ]
