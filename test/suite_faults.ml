(* Lossy-network mode, end to end: the DSM protocols and the race
   detector running over Sim.Transport on a faulty wire must behave
   exactly as they do over the reliable wire — same detector = oracle
   agreement, same racy addresses, and (for barrier-deterministic apps)
   the same reports and final memory image bit for bit. *)

let check = Alcotest.check

let lossy_plan drop =
  { Sim.Fault.none with Sim.Fault.drop; duplicate = drop /. 4.0; reorder = drop /. 2.0 }

let fault_cfg ?(drop = 0.2) ?watchdog_ns ?transport seed =
  {
    Testutil.detect_cfg with
    Lrc.Config.seed;
    fault = lossy_plan drop;
    transport =
      (match transport with Some _ as t -> t | None -> Some Sim.Transport.default_config);
    watchdog_ns;
  }

(* ------------------------------------------------------------------ *)
(* Coherence and detection correctness on a lossy wire                  *)

let test_lossy_coherence protocol () =
  (* the jitter-coherence scenario, with 20% of wire frames dropped and
     more duplicated/reordered: locked increments must not be lost, and
     the detector must still agree with the offline oracle *)
  List.iter
    (fun seed ->
      let cfg = { (fault_cfg seed) with Lrc.Config.protocol } in
      let cluster = Lrc.Cluster.create ~cfg ~nprocs:4 ~pages:4 () in
      let counter = Lrc.Cluster.alloc cluster 8 in
      let racy = Lrc.Cluster.alloc cluster 8 in
      let body node =
        let open Lrc.Dsm in
        barrier node;
        for _ = 1 to 5 do
          with_lock node 3 (fun () ->
              let v = read_int node counter in
              compute node 20_000.0;
              write_int node counter (v + 1))
        done;
        if pid node = 0 then write_int node racy 1;
        if pid node = 3 then ignore (read_int node racy);
        barrier node;
        if pid node = 0 then begin
          let total = read_int node counter in
          if total <> 20 then failwith (Printf.sprintf "lossy wire lost updates: %d" total)
        end;
        barrier node
      in
      Lrc.Cluster.run cluster ~body;
      let detected = Testutil.racy_addrs_of cluster in
      let oracle = Racedetect.Oracle.racy_addrs ~nprocs:4 (Lrc.Cluster.trace cluster) in
      check Testutil.addr_list "detector = oracle under loss" oracle detected;
      check Testutil.addr_list "exactly the racy word" [ racy ] detected;
      let stats = Lrc.Cluster.stats cluster in
      check Alcotest.bool "wire was lossy" true (stats.Sim.Stats.frames_dropped > 0);
      check Alcotest.bool "retransmissions repaired it" true
        (stats.Sim.Stats.retransmits > 0))
    [ 1; 7; 23 ]

(* ------------------------------------------------------------------ *)
(* Report stability: 0% drop vs 20% drop                                *)

let run_app ~name ~drop =
  let app = Apps.Registry.make ~scale:Apps.Registry.Small name in
  let cfg =
    {
      Lrc.Config.default with
      Lrc.Config.fault = lossy_plan drop;
      transport = Some Sim.Transport.default_config;
    }
  in
  Core.Driver.run ~cfg ~app ~nprocs:4 ()

let test_sor_reports_stable () =
  (* SOR is barrier-only, hence fully deterministic: a 20%-drop run must
     reproduce the 0%-drop run's races AND memory image bit for bit *)
  let clean = run_app ~name:"sor" ~drop:0.0 in
  let lossy = run_app ~name:"sor" ~drop:0.2 in
  check Alcotest.int "same race count" (List.length clean.Core.Driver.races)
    (List.length lossy.Core.Driver.races);
  check Testutil.addr_list "same racy addresses" (Core.Driver.racy_addrs clean)
    (Core.Driver.racy_addrs lossy);
  check Alcotest.bool "identical race reports" true
    (clean.Core.Driver.races = lossy.Core.Driver.races);
  check Alcotest.int "identical memory image" clean.Core.Driver.mem_checksum
    lossy.Core.Driver.mem_checksum;
  check Alcotest.bool "clean transport never retransmits" true
    (clean.Core.Driver.stats.Sim.Stats.retransmits = 0);
  check Alcotest.bool "lossy run retransmits" true
    (lossy.Core.Driver.stats.Sim.Stats.retransmits > 0)

let test_tsp_racy_set_stable () =
  (* TSP is lock-based: retransmission delays may permute lock grants, so
     only the racy-address set is required to be stable *)
  let clean = run_app ~name:"tsp" ~drop:0.0 in
  let lossy = run_app ~name:"tsp" ~drop:0.2 in
  check Testutil.addr_list "same racy addresses" (Core.Driver.racy_addrs clean)
    (Core.Driver.racy_addrs lossy)

(* ------------------------------------------------------------------ *)
(* Watchdog and capped retries at the cluster level                     *)

let severed = { Sim.Fault.p_a = 0; p_b = 1; p_from_ns = 0; p_until_ns = max_int }

let test_capped_retries_structured_diagnosis () =
  (* node 1 is permanently partitioned from the manager: the transport
     exhausts its retry cap and the run ends in a structured diagnosis
     naming the blocked processes and the dead link — not a livelock *)
  let cfg =
    {
      Testutil.detect_cfg with
      Lrc.Config.fault = { Sim.Fault.none with Sim.Fault.partitions = [ severed ] };
      transport = Some { Sim.Transport.default_config with Sim.Transport.max_retries = 5 };
    }
  in
  let cluster = Lrc.Cluster.create ~cfg ~nprocs:2 ~pages:2 () in
  match Lrc.Cluster.run cluster ~body:(fun node -> Lrc.Dsm.barrier node) with
  | () -> Alcotest.fail "expected Deadlock"
  | exception Sim.Engine.Deadlock diagnosis ->
      let text = Sim.Engine.diagnosis_to_string diagnosis in
      check Alcotest.bool "not a stall: retries capped, queue drained" false
        diagnosis.Sim.Engine.diag_stalled;
      check Alcotest.int "both processes still live" 2 diagnosis.Sim.Engine.diag_live;
      check Alcotest.bool "reports the dead link" true (Testutil.contains text "FAILED");
      check Alcotest.bool "reports the half-arrived barrier" true
        (Testutil.contains text "1 of 2 arrival(s)");
      check Alcotest.bool "link failure counted" true
        ((Lrc.Cluster.stats cluster).Sim.Stats.link_failures > 0)

let test_watchdog_breaks_retransmission_livelock () =
  (* with an effectively unbounded retry cap the timers alone would spin
     forever; the virtual-time watchdog must cut the run short *)
  let cfg =
    {
      (fault_cfg 3) with
      Lrc.Config.fault = { Sim.Fault.none with Sim.Fault.partitions = [ severed ] };
      transport =
        Some { Sim.Transport.default_config with Sim.Transport.max_retries = max_int };
      watchdog_ns = Some 200_000_000;
    }
  in
  let cluster = Lrc.Cluster.create ~cfg ~nprocs:2 ~pages:2 () in
  match Lrc.Cluster.run cluster ~body:(fun node -> Lrc.Dsm.barrier node) with
  | () -> Alcotest.fail "expected stall Deadlock"
  | exception Sim.Engine.Deadlock diagnosis ->
      check Alcotest.bool "watchdog verdict" true diagnosis.Sim.Engine.diag_stalled;
      check Alcotest.bool "transport state in the diagnosis" true
        (Testutil.contains (Sim.Engine.diagnosis_to_string diagnosis) "unacked")

let test_watchdog_quiet_on_healthy_run () =
  (* a tight watchdog must not fire on a healthy lossy run *)
  let cfg = fault_cfg ~watchdog_ns:50_000_000 5 in
  let cluster = Lrc.Cluster.create ~cfg ~nprocs:4 ~pages:4 () in
  let counter = Lrc.Cluster.alloc cluster 8 in
  Lrc.Cluster.run cluster ~body:(fun node ->
      let open Lrc.Dsm in
      barrier node;
      with_lock node 0 (fun () ->
          write_int node counter (read_int node counter + 1));
      barrier node);
  check Alcotest.bool "completed" true (Lrc.Cluster.sim_time cluster > 0)

(* ------------------------------------------------------------------ *)
(* RNG stream independence                                              *)

let test_fault_rng_does_not_perturb_jitter () =
  (* same seed, jitter on: enabling the transport + fault machinery must
     not change which jitter values the reliable-path draws would see.
     We verify the seam at the Net layer: two reliable runs with the same
     net seed are identical, and a lossy run with the same seed still
     converges to the same final memory (SOR is barrier-deterministic). *)
  let run ~drop ~transport =
    let app = Apps.Registry.make ~scale:Apps.Registry.Small "sor" in
    let cost = { Sim.Cost.default with Sim.Cost.jitter_ns = 300_000 } in
    let cfg =
      {
        Lrc.Config.default with
        Lrc.Config.fault = lossy_plan drop;
        transport = (if transport then Some Sim.Transport.default_config else None);
        net_seed = Some 99;
      }
    in
    Core.Driver.run ~cost ~cfg ~app ~nprocs:4 ()
  in
  let a = run ~drop:0.0 ~transport:false in
  let b = run ~drop:0.0 ~transport:false in
  check Alcotest.int "reliable runs reproducible" a.Core.Driver.sim_time_ns
    b.Core.Driver.sim_time_ns;
  let c = run ~drop:0.2 ~transport:true in
  check Alcotest.int "lossy converges to the same memory" a.Core.Driver.mem_checksum
    c.Core.Driver.mem_checksum;
  check Alcotest.bool "lossy races match" true
    (Core.Driver.racy_addrs a = Core.Driver.racy_addrs c)

let suite =
  [
    ( "faults:coherence",
      [
        Alcotest.test_case "lossy: single-writer" `Quick
          (test_lossy_coherence Lrc.Config.Single_writer);
        Alcotest.test_case "lossy: multi-writer" `Quick
          (test_lossy_coherence Lrc.Config.Multi_writer);
        Alcotest.test_case "lossy: home-based" `Quick
          (test_lossy_coherence Lrc.Config.Home_based);
      ] );
    ( "faults:stability",
      [
        Alcotest.test_case "sor bit-identical at 20% drop" `Quick test_sor_reports_stable;
        Alcotest.test_case "tsp racy set stable at 20% drop" `Quick test_tsp_racy_set_stable;
        Alcotest.test_case "fault rng independent of jitter" `Quick
          test_fault_rng_does_not_perturb_jitter;
      ] );
    ( "faults:watchdog",
      [
        Alcotest.test_case "capped retries diagnosed" `Quick
          test_capped_retries_structured_diagnosis;
        Alcotest.test_case "watchdog breaks livelock" `Quick
          test_watchdog_breaks_retransmission_livelock;
        Alcotest.test_case "watchdog quiet when healthy" `Quick
          test_watchdog_quiet_on_healthy_run;
      ] );
  ]
