(* Golden-file generator for the differential performance-equivalence
   suite. Runs every combo in [Equiv_combos.all] against the CURRENT
   library and records the observable outcome. The checked-in golden file
   (test/golden/perf_equiv.json) was generated from the pre-optimization
   protocol core, so the suite proves the optimized hot paths behaviorally
   identical to the implementation they replaced.

     dune exec test/gen_equiv_golden.exe -- [--jobs N] [OUT.json]

   Combos are independent simulation runs, so they fan out over a
   Parallel.Pool; results are harvested and written in combo order, so
   the file is identical whatever --jobs is.

   Regenerate only when a combo definition or an intended behavior change
   makes the old goldens stale — never to paper over a mismatch. *)

let () =
  let usage () =
    prerr_endline "usage: gen_equiv_golden.exe [--jobs N] [OUT.json]";
    exit 2
  in
  let jobs = ref (Parallel.Pool.default_jobs ()) in
  let rec parse out = function
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> jobs := n
        | _ -> usage ());
        parse out rest
    | "--jobs" :: [] -> usage ()
    | path :: rest -> (
        match out with None -> parse (Some path) rest | Some _ -> usage ())
    | [] -> out
  in
  let out =
    match parse None (List.tl (Array.to_list Sys.argv)) with
    | None -> Equiv_combos.golden_path
    | Some path -> path
  in
  let combos = Equiv_combos.all in
  Printf.printf "running %d combos on %d domain(s)...\n%!" (List.length combos) !jobs;
  let results =
    Parallel.Pool.with_pool ~jobs:!jobs (fun pool ->
        Parallel.Pool.map_exn pool Equiv_combos.run combos)
  in
  let entries =
    List.map2
      (fun (combo : Equiv_combos.combo) (result : Equiv_combos.result) ->
        Printf.printf "  %-24s %d race(s), checksum %d\n%!" combo.Equiv_combos.label
          (List.length result.Equiv_combos.races)
          result.Equiv_combos.mem_checksum;
        Bench_json.Obj
          [
            ("label", Bench_json.String combo.Equiv_combos.label);
            ("result", Equiv_combos.result_to_json result);
          ])
      combos results
  in
  Bench_json.to_file out
    (Bench_json.Obj
       [
         ("schema", Bench_json.String "cvm-race-equiv/1");
         ("combos", Bench_json.List entries);
       ]);
  Printf.printf "wrote %s\n" out
