(* Golden-file generator for the differential performance-equivalence
   suite. Runs every combo in [Equiv_combos.all] against the CURRENT
   library and records the observable outcome. The checked-in golden file
   (test/golden/perf_equiv.json) was generated from the pre-optimization
   protocol core, so the suite proves the optimized hot paths behaviorally
   identical to the implementation they replaced.

     dune exec test/gen_equiv_golden.exe -- [OUT.json]

   Regenerate only when a combo definition or an intended behavior change
   makes the old goldens stale — never to paper over a mismatch. *)

let () =
  let out =
    match Array.to_list Sys.argv with
    | [ _ ] -> Equiv_combos.golden_path
    | [ _; path ] -> path
    | _ ->
        prerr_endline "usage: gen_equiv_golden.exe [OUT.json]";
        exit 2
  in
  let combos = Equiv_combos.all in
  Printf.printf "running %d combos...\n%!" (List.length combos);
  let entries =
    List.map
      (fun (combo : Equiv_combos.combo) ->
        let result = Equiv_combos.run combo in
        Printf.printf "  %-24s %d race(s), checksum %d\n%!" combo.Equiv_combos.label
          (List.length result.Equiv_combos.races)
          result.Equiv_combos.mem_checksum;
        Bench_json.Obj
          [
            ("label", Bench_json.String combo.Equiv_combos.label);
            ("result", Equiv_combos.result_to_json result);
          ])
      combos
  in
  Bench_json.to_file out
    (Bench_json.Obj
       [
         ("schema", Bench_json.String "cvm-race-equiv/1");
         ("combos", Bench_json.List entries);
       ]);
  Printf.printf "wrote %s\n" out
