(* Golden-file generator for the differential performance-equivalence
   suite. Runs every combo in [Equiv_combos.all] against the CURRENT
   library and records the observable outcome. The checked-in golden file
   (test/golden/perf_equiv.json) was generated from the pre-optimization
   protocol core, so the suite proves the optimized hot paths behaviorally
   identical to the implementation they replaced.

     dune exec test/gen_equiv_golden.exe -- [--jobs N] [--workers N] [--chaos SPEC] [OUT.json]

   Combos are independent simulation runs, so they fan out over a
   Parallel.Pool ([--jobs]) or over worker processes ([--workers], with
   [--chaos] injecting seeded failures — the make-check smoke kills
   workers mid-run and cmps the output against the checked-in golden);
   results are harvested and written in combo order, so the file is
   identical whichever executor ran it.

   Regenerate only when a combo definition or an intended behavior change
   makes the old goldens stale — never to paper over a mismatch. *)

(* combo results cross the worker pipe as Marshal bytes; same-binary
   spawning makes that safe, exactly as in Parallel.Task's own codec *)
let serve_combo = function
  | Parallel.Task.Equiv_combo { label } ->
      let combo =
        match Equiv_combos.find label with
        | Some c -> c
        | None -> failwith (Printf.sprintf "unknown equiv combo %S" label)
      in
      Some (Marshal.to_string (Equiv_combos.run combo) [])
  | _ -> None

let () =
  Parallel.Remote.maybe_worker ~run:(Core.Tasks.runner ~extra:serve_combo ()) ();
  let usage () =
    prerr_endline
      "usage: gen_equiv_golden.exe [--jobs N] [--workers N] [--chaos SPEC] [OUT.json]";
    exit 2
  in
  let jobs = ref (Parallel.Pool.default_jobs ()) in
  let workers = ref 0 in
  let chaos_spec = ref "" in
  let rec parse out = function
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> jobs := n
        | _ -> usage ());
        parse out rest
    | "--jobs" :: [] -> usage ()
    | "--workers" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> workers := n
        | _ -> usage ());
        parse out rest
    | "--workers" :: [] -> usage ()
    | "--chaos" :: spec :: rest ->
        chaos_spec := spec;
        parse out rest
    | "--chaos" :: [] -> usage ()
    | path :: rest -> (
        match out with None -> parse (Some path) rest | Some _ -> usage ())
    | [] -> out
  in
  let out =
    match parse None (List.tl (Array.to_list Sys.argv)) with
    | None -> Equiv_combos.golden_path
    | Some path -> path
  in
  let combos = Equiv_combos.all in
  let results =
    if !workers > 0 then begin
      Printf.printf "running %d combos on %d worker process(es)...\n%!" (List.length combos)
        !workers;
      let chaos =
        match Parallel.Chaos.parse !chaos_spec with
        | Ok plan -> plan
        | Error msg ->
            prerr_endline msg;
            exit 2
      in
      let config = { (Parallel.Remote.default_config ~workers:!workers) with chaos } in
      Parallel.Remote.with_executor ~config ~run:(Core.Tasks.runner ~extra:serve_combo ())
        (fun ex ->
          let tasks =
            List.map
              (fun (c : Equiv_combos.combo) ->
                Parallel.Task.Equiv_combo { label = c.Equiv_combos.label })
              combos
          in
          let rows =
            Parallel.Pool.run_tasks_exn ex tasks
            |> List.map (fun bytes -> (Marshal.from_string bytes 0 : Equiv_combos.result))
          in
          Format.eprintf "%a@." Parallel.Executor_stats.pp (ex.Parallel.Pool.ex_stats ());
          rows)
    end
    else begin
      Printf.printf "running %d combos on %d domain(s)...\n%!" (List.length combos) !jobs;
      Parallel.Pool.with_pool ~jobs:!jobs (fun pool ->
          Parallel.Pool.map_exn pool Equiv_combos.run combos)
    end
  in
  let entries =
    List.map2
      (fun (combo : Equiv_combos.combo) (result : Equiv_combos.result) ->
        Printf.printf "  %-24s %d race(s), checksum %d\n%!" combo.Equiv_combos.label
          (List.length result.Equiv_combos.races)
          result.Equiv_combos.mem_checksum;
        Bench_json.Obj
          [
            ("label", Bench_json.String combo.Equiv_combos.label);
            ("result", Equiv_combos.result_to_json result);
          ])
      combos results
  in
  Bench_json.to_file out
    (Bench_json.Obj
       [
         ("schema", Bench_json.String "cvm-race-equiv/1");
         ("combos", Bench_json.List entries);
       ]);
  Printf.printf "wrote %s\n" out
